// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5) plus the discussion-section experiments (§4). Each benchmark runs
// the corresponding experiment and reports the headline quantities as
// benchmark metrics, so `go test -bench=. -benchmem` reproduces the whole
// evaluation. The printed metric names mirror the paper's claims, e.g.
// fig1's aged-WineFS-vs-aged-NOVA bandwidth ratio.
//
// Benchmarks run the experiments in Quick mode so the full suite finishes
// in minutes; cmd/winebench runs the full-size versions and prints the
// paper-style tables.
package repro

import (
	"testing"

	"repro/internal/crashmonkey"
	"repro/internal/experiments"
)

func benchCfg() experiments.Config {
	return experiments.Config{Quick: true, CPUs: 4, Seed: 42}.Defaults()
}

// BenchmarkFig1AgedBandwidth regenerates Figure 1: mmap write bandwidth on
// un-aged vs aged file systems across utilisation levels.
func BenchmarkFig1AgedBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unaged, aged, err := experiments.Fig1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range aged {
			last := s.Points[len(s.Points)-1].Y
			b.ReportMetric(last, "aged90-"+s.Label+"-GB/s")
		}
		for _, s := range unaged {
			if s.Label == "WineFS" {
				b.ReportMetric(s.Points[len(s.Points)-1].Y, "unaged90-WineFS-GB/s")
			}
		}
	}
}

// BenchmarkFig2MmapOverhead regenerates Figure 2: time to mmap+write a
// 2MiB file with hugepages vs base pages, with the copy/fault breakdown.
func BenchmarkFig2MmapOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TotalUS, "huge-total-us")
		b.ReportMetric(rows[1].TotalUS, "base-total-us")
		b.ReportMetric(rows[1].FaultUS, "base-fault-us")
	}
}

// BenchmarkFig3Fragmentation regenerates Figure 3: % of free space in
// aligned 2MiB regions as utilisation rises under aging.
func BenchmarkFig3Fragmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.ReportMetric(s.Points[len(s.Points)-1].Y, s.Label+"-aligned-pct-at-90")
		}
	}
}

// BenchmarkFig4TLBMisses regenerates Figure 4: pre-faulted random-read
// latency, base pages vs hugepages.
func BenchmarkFig4TLBMisses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Huge.Median()), "huge-median-ns")
		b.ReportMetric(float64(res.Base.Median()), "base-median-ns")
		b.ReportMetric(res.MedianRatio(), "median-ratio")
	}
}

// BenchmarkFig6Throughput regenerates Figure 6: read/write throughput for
// mmap and POSIX access on aged file systems.
func BenchmarkFig6Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Mmap["WineFS"][0], "mmap-seqwrite-WineFS-GB/s")
		b.ReportMetric(res.Mmap["NOVA"][0], "mmap-seqwrite-NOVA-GB/s")
		b.ReportMetric(res.Mmap["ext4-DAX"][0], "mmap-seqwrite-ext4-GB/s")
		b.ReportMetric(res.Strong["WineFS"][1], "posix-randwrite-WineFS-GB/s")
		b.ReportMetric(res.Strong["NOVA"][1], "posix-randwrite-NOVA-GB/s")
	}
}

// BenchmarkFig7AgedApps regenerates Figure 7: RocksDB/YCSB, LMDB and
// PmemKV throughput on aged file systems.
func BenchmarkFig7AgedApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LMDB["WineFS"]/res.LMDB["NOVA"], "lmdb-WineFS/NOVA")
		b.ReportMetric(res.LMDB["WineFS"]/res.LMDB["ext4-DAX"], "lmdb-WineFS/ext4")
		b.ReportMetric(res.PmemKV["WineFS"]/res.PmemKV["ext4-DAX"], "pmemkv-WineFS/ext4")
		b.ReportMetric(res.YCSB["WineFS"]["A"]/res.YCSB["ext4-DAX"]["A"], "ycsbA-WineFS/ext4")
	}
}

// BenchmarkTable2PageFaults regenerates Table 2: page-fault counts per
// application per aged file system (ratios over WineFS).
func BenchmarkTable2PageFaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		wf := res.Faults["WineFS"]["lmdb-fillseqbatch"]
		if wf > 0 {
			b.ReportMetric(float64(res.Faults["ext4-DAX"]["lmdb-fillseqbatch"])/float64(wf), "lmdb-faults-ext4/WineFS")
			b.ReportMetric(float64(res.Faults["NOVA"]["lmdb-fillseqbatch"])/float64(wf), "lmdb-faults-NOVA/WineFS")
		}
		b.ReportMetric(float64(wf), "lmdb-faults-WineFS")
	}
}

// BenchmarkFig8PARTLookup regenerates Figure 8: P-ART lookup latency
// distribution per file system.
func BenchmarkFig8PARTLookup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Hist["WineFS"].Median()), "WineFS-median-ns")
		b.ReportMetric(float64(res.Hist["NOVA"].Median()), "NOVA-median-ns")
		b.ReportMetric(float64(res.Hist["ext4-DAX"].Median()), "ext4-median-ns")
	}
}

// BenchmarkFig9PosixApps regenerates Figure 9: Filebench, PostgreSQL and
// WiredTiger on clean file systems.
func BenchmarkFig9PosixApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchCfg(), []string{"ext4-DAX", "NOVA", "WineFS", "WineFS-relaxed"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Filebench["WineFS-relaxed"]["varmail"], "varmail-WineFSr-ops/s")
		b.ReportMetric(res.Filebench["ext4-DAX"]["varmail"], "varmail-ext4-ops/s")
		b.ReportMetric(res.Pgbench["WineFS"]/res.Pgbench["NOVA"], "pgbench-WineFS/NOVA")
		b.ReportMetric(res.WTFill["WineFS"]/res.WTFill["NOVA"], "wtfill-WineFS/NOVA")
	}
}

// BenchmarkFig10Scalability regenerates Figure 10: create/append/fsync/
// unlink throughput vs thread count.
func BenchmarkFig10Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			b.ReportMetric(s.Points[len(s.Points)-1].Y, s.Label+"-kIOPS-16thr")
		}
	}
}

// BenchmarkRecovery regenerates §5.2's recovery measurement: virtual
// recovery time vs file count, plus data-volume independence.
func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Recovery(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(float64(last.RecoveryNS)/1e3, "recovery-us")
		b.ReportMetric(float64(last.Files), "files")
	}
}

// BenchmarkDefragInterference regenerates §4's defragmentation experiment:
// foreground mmap-read slowdown while the rewriter runs.
func BenchmarkDefragInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Defrag(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SlowdownPct, "slowdown-pct")
	}
}

// BenchmarkHPCProfile regenerates §4's Wang-HPC-profile fragmentation
// comparison at 50% utilisation.
func BenchmarkHPCProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.HPC(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ext4*100, "ext4-aligned-pct")
		b.ReportMetric(res.WineFS*100, "WineFS-aligned-pct")
	}
}

// BenchmarkCrashMonkey regenerates §5.2's crash-consistency result: every
// explored crash state recovers consistently.
func BenchmarkCrashMonkey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		states := 0
		for _, w := range crashmonkey.GenerateSeq1() {
			res := crashmonkey.Run(w, crashmonkey.Config{MaxSubsets: 64, Seed: 42})
			if !res.OK() {
				b.Fatalf("%s: %v", w.Name, res.Failures[0])
			}
			states += res.CrashStates
		}
		b.ReportMetric(float64(states), "crash-states")
	}
}

// BenchmarkAblationAlignment quantifies the paper's central design choice:
// WineFS with the aligned-extent pool disabled loses its aged hugepage
// advantage (DESIGN.md's design-choice ablation).
func BenchmarkAblationAlignment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		frac := map[bool]float64{}
		for _, ablate := range []bool{false, true} {
			dev := NewDevice(512 << 20)
			ctx := NewThread(1, 0)
			fs, err := MkfsWineFS(ctx, dev, WineFSOptions{CPUs: 4, AblateAlignment: ablate})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Age(ctx, fs, AgingConfig{TargetUtil: 0.7, ChurnFactor: 1, Seed: 5}); err != nil {
				b.Fatal(err)
			}
			frac[ablate] = alignedFreeFraction(fs)
		}
		b.ReportMetric(frac[false]*100, "aligned-pct")
		b.ReportMetric(frac[true]*100, "ablated-aligned-pct")
	}
}

// BenchmarkAblationPerCPUJournal quantifies the per-CPU-journal choice:
// the same metadata workload on 8 threads with per-CPU journals vs one
// shared journal.
func BenchmarkAblationPerCPUJournal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tput := map[bool]float64{}
		for _, ablate := range []bool{false, true} {
			dev := NewDevice(512 << 20)
			ctx := NewThread(1, 0)
			fs, err := MkfsWineFS(ctx, dev, WineFSOptions{CPUs: 8, AblateSingleJournal: ablate})
			if err != nil {
				b.Fatal(err)
			}
			v, err := scalabilityProbe(fs, ctx)
			if err != nil {
				b.Fatal(err)
			}
			tput[ablate] = v
		}
		b.ReportMetric(tput[false]/1000, "percpu-kIOPS")
		b.ReportMetric(tput[true]/1000, "single-journal-kIOPS")
	}
}

// BenchmarkNUMAHomeNode quantifies §3.6's NUMA policy: remote-write
// fraction and write time with the home-node routing off vs on.
func BenchmarkNUMAHomeNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.NUMA(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.RemoteFracOff*100, "remote-pct-off")
		b.ReportMetric(res.RemoteFracOn*100, "remote-pct-on")
	}
}
