// Command winefsd serves a simulated persistent-memory device image over
// TCP using the fileserver wire protocol, turning the in-process WineFS
// reproduction into a multi-client network file server.
//
// Usage:
//
//	winefsd [-img wine.img] [-size 1g] [-cpus 8] [-relaxed]
//	        [-addr 127.0.0.1:7070] [-stats 127.0.0.1:7071] [-window 32]
//
// With -img the image (created by mkfs) is loaded, mounted and saved back
// on clean shutdown; without it a fresh volatile device of -size bytes is
// formatted. -stats starts an HTTP endpoint whose /stats page reports the
// server-wide aggregate of every session's perf counters, the request
// latency digest and the mount's degradation state as JSON.
//
// winefsd -smoke runs the self-contained smoke test: boot a server on a
// loopback port, run a small multi-client workload through
// fileserver.Client over real TCP, then verify the stats endpoint. It
// exits non-zero on any failure (the make serve-smoke target).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/fileserver"
	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult = 1 << 30
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult = 1 << 10
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

// statsPage is the JSON document /stats serves.
type statsPage struct {
	FS       string
	Mode     string
	Sessions struct {
		Active int
		Total  uint64
	}
	OpenHandles int
	Ops         int64
	Latency     perf.LatencySummary
	Counters    perf.Counters
	Degraded    bool
	Reason      string `json:",omitempty"`
}

func buildStats(srv *fileserver.Server) statsPage {
	st := srv.Stats()
	var p statsPage
	fs := srv.FS()
	p.FS = fs.Name()
	p.Mode = fs.Mode().String()
	p.Sessions.Active = st.ActiveSessions
	p.Sessions.Total = st.TotalSessions
	p.OpenHandles = st.OpenHandles
	p.Ops = st.Ops
	p.Latency = st.Lat.Summary()
	p.Counters = st.Counters
	if d, ok := fs.(interface{ Degraded() (string, bool) }); ok {
		p.Reason, p.Degraded = d.Degraded()
	}
	return p
}

// serveStats starts the HTTP stats endpoint on addr; it returns the bound
// address (addr may carry port 0).
func serveStats(srv *fileserver.Server, addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(buildStats(srv))
	})
	go http.Serve(l, mux)
	return l.Addr().String(), nil
}

func main() {
	img := flag.String("img", "", "device image to serve (empty: fresh volatile device)")
	size := flag.String("size", "1g", "device size when no image is given (k/m/g suffixes)")
	cpus := flag.Int("cpus", 8, "simulated CPUs sessions are pinned across")
	relaxed := flag.Bool("relaxed", false, "metadata-only consistency mode")
	addr := flag.String("addr", "127.0.0.1:7070", "serving address")
	stats := flag.String("stats", "", "HTTP stats endpoint address (empty: disabled)")
	window := flag.Int("window", 32, "per-session pipelined-request window")
	smoke := flag.Bool("smoke", false, "run the loopback smoke test and exit")
	flag.Parse()

	if *smoke {
		if err := runSmoke(*cpus); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("winefsd: smoke OK")
		return
	}

	mode := vfs.Strict
	if *relaxed {
		mode = vfs.Relaxed
	}
	ctx := sim.NewCtx(1, 0)
	var dev *pmem.Device
	var fs *winefs.FS
	var err error
	if *img != "" {
		if dev, err = pmem.Load(*img); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: %v\n", err)
			os.Exit(1)
		}
		if fs, err = winefs.Mount(ctx, dev, winefs.Options{Mode: mode}); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: mount %s: %v\n", *img, err)
			os.Exit(1)
		}
	} else {
		bytes, perr := parseSize(*size)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "winefsd: bad size: %v\n", perr)
			os.Exit(2)
		}
		dev = pmem.New(bytes)
		if fs, err = winefs.Mkfs(ctx, dev, winefs.Options{CPUs: *cpus, Mode: mode}); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: mkfs: %v\n", err)
			os.Exit(1)
		}
	}
	if reason, degraded := fs.Degraded(); degraded {
		fmt.Fprintf(os.Stderr, "winefsd: WARNING: serving read-only (degraded): %s\n", reason)
	}

	srv := fileserver.New(fs, fileserver.Config{CPUs: *cpus, Window: *window})
	l, err := fileserver.ListenTCP(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "winefsd: listen: %v\n", err)
		os.Exit(1)
	}
	if *stats != "" {
		bound, serr := serveStats(srv, *stats)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "winefsd: stats listen: %v\n", serr)
			os.Exit(1)
		}
		fmt.Printf("winefsd: stats on http://%s/stats\n", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	// Serve returns nil once Shutdown drains, which can happen before the
	// handler has unmounted and saved — main must wait for shutdownDone or
	// the process exits with the image unsaved.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-sig
		fmt.Println("winefsd: draining...")
		srv.Shutdown()
		uctx := sim.NewCtx(2, 0)
		if err := fs.Unmount(uctx); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: unmount: %v\n", err)
		}
		if *img != "" {
			if err := dev.Save(*img); err != nil {
				fmt.Fprintf(os.Stderr, "winefsd: save %s: %v\n", *img, err)
				os.Exit(1)
			}
			fmt.Printf("winefsd: saved %s\n", *img)
		}
	}()

	fmt.Printf("winefsd: serving %s (%s) on %s\n", fs.Name(), fs.Mode(), l.Addr())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintf(os.Stderr, "winefsd: serve: %v\n", err)
		os.Exit(1)
	}
	<-shutdownDone
}

// runSmoke boots a full server + stats endpoint on loopback ports, drives
// a small multi-client workload over TCP and checks the stats endpoint
// agrees work happened.
func runSmoke(cpus int) error {
	const clients = 4
	dev := pmem.New(256 << 20)
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cpus, Mode: vfs.Strict})
	if err != nil {
		return fmt.Errorf("mkfs: %w", err)
	}
	srv := fileserver.New(fs, fileserver.Config{CPUs: cpus})
	l, err := fileserver.ListenTCP("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	statsAddr, err := serveStats(srv, "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("stats listen: %w", err)
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	var totalOps int64
	var opsMu sync.Mutex
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := fileserver.DialTCP(l.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			cl, err := fileserver.Dial(conn)
			if err != nil {
				errs[i] = err
				return
			}
			cctx := sim.NewCtx(100+i, i%cpus)
			res, err := workloads.ServerMixClient(cctx, cl, i, workloads.ServerMixConfig{Ops: 48, Seed: 7})
			if err != nil {
				errs[i] = err
				return
			}
			opsMu.Lock()
			totalOps += res.Ops
			opsMu.Unlock()
			errs[i] = cl.Unmount(cctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}

	resp, err := http.Get("http://" + statsAddr + "/stats")
	if err != nil {
		return fmt.Errorf("stats endpoint: %w", err)
	}
	defer resp.Body.Close()
	var page statsPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return fmt.Errorf("stats decode: %w", err)
	}
	if page.FS != fs.Name() {
		return fmt.Errorf("stats FS = %q, want %q", page.FS, fs.Name())
	}
	if page.Sessions.Total != clients {
		return fmt.Errorf("stats sessions.total = %d, want %d", page.Sessions.Total, clients)
	}
	// Ops includes the hello/detach frames; it must cover at least the
	// workload's own syscalls.
	if page.Ops < totalOps {
		return fmt.Errorf("stats ops = %d, want >= %d", page.Ops, totalOps)
	}
	if page.Counters.Syscalls == 0 || page.Latency.Count == 0 {
		return fmt.Errorf("stats counters empty: %+v", page)
	}
	if page.Degraded {
		return fmt.Errorf("unexpected degraded mount: %s", page.Reason)
	}

	srv.Shutdown()
	if err := <-serveErr; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Printf("winefsd: smoke: %d clients, %d server ops, p99=%dns\n",
		clients, page.Ops, page.Latency.P99NS)
	return nil
}
