// Command winefsd serves a simulated persistent-memory device image over
// TCP using the fileserver wire protocol, turning the in-process WineFS
// reproduction into a multi-client network file server.
//
// Usage:
//
//	winefsd [-img wine.img] [-size 1g] [-cpus 8] [-relaxed]
//	        [-addr 127.0.0.1:7070] [-stats 127.0.0.1:7071] [-window 32]
//	        [-replicas host:port,...] [-replica-of primary] [-epoch 1]
//
// Replication: a primary started with -replicas streams its committed
// write log to each listed replica daemon; replicas are winefsd processes
// started with -replica-of, which serve the replication protocol on -addr
// instead of the client protocol. -epoch sets the primary epoch announced
// to clients and replicas (bump it when restarting a promoted replica as
// the new primary so stale primaries are fenced). -sync-repl makes every
// acknowledged write wait for replica durability; without it the stream
// is asynchronous and lag shows up in /metrics as cluster_replica_lag.
//
// With -img the image (created by mkfs) is loaded, mounted and saved back
// on clean shutdown; without it a fresh volatile device of -size bytes is
// formatted. -stats starts an HTTP endpoint whose /stats page reports the
// server-wide aggregate of every session's perf counters, the request
// latency digest and the mount's degradation state as JSON; the same
// listener serves /metrics in the Prometheus text exposition format, both
// sampled from the identical fileserver.Server.Stats() snapshot path so the
// two views can never drift apart.
//
// -trace FILE streams every request span (with its virtual-time breakdown)
// as JSON Lines; -slow NS additionally logs any request slower than NS
// virtual nanoseconds to stderr, one line per op.
//
// winefsd -smoke runs the self-contained smoke test: boot a server on a
// loopback port, run a small multi-client workload through
// fileserver.Client over real TCP, then verify the stats endpoint. It
// exits non-zero on any failure (the make serve-smoke target).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/defrag"
	"repro/internal/fileserver"
	"repro/internal/metrics"
	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult = 1 << 30
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult = 1 << 10
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

// statsPage is the JSON document /stats serves.
type statsPage struct {
	FS       string
	Mode     string
	Sessions struct {
		Active int
		Total  uint64
	}
	OpenHandles int
	Ops         int64
	Latency     perf.LatencySummary
	Counters    perf.Counters
	Degraded    bool
	Reason      string `json:",omitempty"`
}

func buildStats(srv *fileserver.Server) statsPage {
	st := srv.Stats()
	var p statsPage
	fs := srv.FS()
	p.FS = fs.Name()
	p.Mode = fs.Mode().String()
	p.Sessions.Active = st.ActiveSessions
	p.Sessions.Total = st.TotalSessions
	p.OpenHandles = st.OpenHandles
	p.Ops = st.Ops
	p.Latency = st.Lat.Summary()
	p.Counters = st.Counters
	if d, ok := fs.(interface{ Degraded() (string, bool) }); ok {
		p.Reason, p.Degraded = d.Degraded()
	}
	return p
}

// replStatsSource adapts a primary's replicator to the cluster metrics
// collector (winefsd has no Cluster object; epoch and failover counters
// live in the replicator itself).
type replStatsSource struct{ r *cluster.Replicator }

func (s replStatsSource) Stats() cluster.Stats {
	st := s.r.Stats()
	return cluster.Stats{Epoch: st.Epoch, Repl: st}
}

// newRegistry builds the winefsd metric registry: one collector that samples
// the server at scrape time. It reads through the same Stats() path as the
// /stats JSON page, so there is no second bookkeeping that could drift from
// the in-process perf counters.
func newRegistry(srv *fileserver.Server) *metrics.Registry {
	reg := metrics.NewRegistry()
	reg.Register(metrics.CollectorFunc(func() []metrics.Family {
		st := srv.Stats()
		degraded := 0.0
		if d, ok := srv.FS().(interface{ Degraded() (string, bool) }); ok {
			if _, bad := d.Degraded(); bad {
				degraded = 1
			}
		}
		fams := []metrics.Family{
			metrics.Gauge("winefsd_sessions_active", "Client sessions currently attached.", float64(st.ActiveSessions)),
			metrics.Counter("winefsd_sessions_total", "Client sessions ever attached.", float64(st.TotalSessions)),
			metrics.Gauge("winefsd_open_handles", "File handles currently open across sessions.", float64(st.OpenHandles)),
			metrics.Counter("winefsd_ops_total", "Wire requests dispatched, including hello/detach.", float64(st.Ops)),
			metrics.Gauge("winefsd_degraded", "1 when the mount fell back to read-only.", degraded),
			metrics.SummaryFamily("winefsd_request_latency_ns",
				"Per-request server-side latency in virtual nanoseconds.", st.Lat.Summary()),
		}
		// Canonical vmm_* names for the mapping subsystem (maps, hugepage
		// vs base-page faults, promotions, msyncs, CoW breaks) alongside
		// the prefixed full dump below.
		fams = append(fams, metrics.VMMFamilies(&st.Counters)...)
		return append(fams, metrics.CountersFamilies("winefsd_perf", &st.Counters)...)
	}))
	return reg
}

// serveStats starts the HTTP stats endpoint on addr, serving /stats (JSON)
// and /metrics (Prometheus text); it returns the bound address (addr may
// carry port 0). Extra collectors (the replication stats of a primary)
// join the same registry and scrape path.
func serveStats(srv *fileserver.Server, addr string, extra ...metrics.Collector) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	reg := newRegistry(srv)
	for _, c := range extra {
		reg.Register(c)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(buildStats(srv))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	go http.Serve(l, mux)
	return l.Addr().String(), nil
}

// buildTracer wires the -trace / -slow flags into a trace.Tracer (nil when
// both are off). The returned closer flushes the trace file.
func buildTracer(traceOut string, slowNS int64) (*trace.Tracer, func(), error) {
	if traceOut == "" && slowNS <= 0 {
		return nil, func() {}, nil
	}
	var sink trace.Sink = trace.NopSink{}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return nil, nil, err
		}
		// The sink owns f: Tracer.Close flushes and closes it.
		sink = trace.NewJSONL(f)
	}
	tr := trace.New(sink)
	if slowNS > 0 {
		tr.SetSlowLog(os.Stderr, slowNS)
	}
	return tr, func() { tr.Close() }, nil
}

func main() {
	img := flag.String("img", "", "device image to serve (empty: fresh volatile device)")
	size := flag.String("size", "1g", "device size when no image is given (k/m/g suffixes)")
	cpus := flag.Int("cpus", 8, "simulated CPUs sessions are pinned across")
	relaxed := flag.Bool("relaxed", false, "metadata-only consistency mode")
	addr := flag.String("addr", "127.0.0.1:7070", "serving address")
	stats := flag.String("stats", "", "HTTP stats endpoint address (empty: disabled)")
	window := flag.Int("window", 32, "per-session pipelined-request window")
	traceOut := flag.String("trace", "", "stream request spans as JSON Lines to this file")
	slow := flag.Int64("slow", 0, "log requests slower than this many virtual ns to stderr")
	smoke := flag.Bool("smoke", false, "run the loopback smoke test and exit")
	replicas := flag.String("replicas", "", "comma-separated replica addresses to stream the write log to")
	replicaOf := flag.String("replica-of", "", "run as a replica of this primary: apply its stream on -addr instead of serving clients")
	epoch := flag.Uint64("epoch", 1, "primary epoch announced to clients and replicas (bump after promoting a replica)")
	syncRepl := flag.Bool("sync-repl", false, "acknowledged writes wait for replica durability")
	doDefrag := flag.Bool("defrag", false, "run the online background defragmenter (§3.5)")
	defragBudget := flag.Float64("defrag-budget", 0.1, "defragmenter duty-cycle fraction of device bandwidth (1 = unthrottled)")
	slowSize := flag.String("slow-size", "", "attach a simulated slow (SSD) tier of this size; new data spills to it when PM fills (empty: untiered)")
	tierHigh := flag.Float64("tier-high", 0.90, "PM occupancy fraction above which allocations spill and passes demote")
	tierLow := flag.Float64("tier-low", 0.80, "PM occupancy fraction demotion passes drain down to")
	tierInterval := flag.Duration("tier-interval", 250*time.Millisecond, "wall-clock period of the background tier-migration pass")
	flag.Parse()

	if *replicaOf != "" && *replicas != "" {
		fmt.Fprintln(os.Stderr, "winefsd: -replica-of and -replicas are mutually exclusive")
		os.Exit(2)
	}
	if *replicaOf != "" {
		if err := runReplica(*addr, *img, *size, *replicaOf); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: replica: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *smoke {
		if err := runSmoke(*cpus); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: smoke FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("winefsd: smoke OK")
		return
	}

	mode := vfs.Strict
	if *relaxed {
		mode = vfs.Relaxed
	}

	// Tiered storage: -slow-size attaches a simulated SSD behind the PM
	// device. The slow tier is volatile between runs (its pool is rebuilt
	// from the extent scan at every mount), so a tiered -img daemon must be
	// restarted with the same -slow-size.
	var topts *winefs.TierOptions
	var slowDev *tier.SlowDevice
	if *slowSize != "" {
		bytes, perr := parseSize(*slowSize)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "winefsd: bad slow-size: %v\n", perr)
			os.Exit(2)
		}
		slowDev = tier.NewSlow(tier.DefaultSlowConfig(bytes))
		topts = &winefs.TierOptions{Slow: slowDev, HighWater: *tierHigh, LowWater: *tierLow}
	}

	ctx := sim.NewCtx(1, 0)
	var dev *pmem.Device
	var fs *winefs.FS
	var err error
	if *img != "" {
		if dev, err = pmem.Load(*img); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: %v\n", err)
			os.Exit(1)
		}
		if fs, err = winefs.Mount(ctx, dev, winefs.Options{Mode: mode, Tier: topts}); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: mount %s: %v\n", *img, err)
			os.Exit(1)
		}
	} else {
		bytes, perr := parseSize(*size)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "winefsd: bad size: %v\n", perr)
			os.Exit(2)
		}
		dev = pmem.New(bytes)
		if fs, err = winefs.Mkfs(ctx, dev, winefs.Options{CPUs: *cpus, Mode: mode, Tier: topts}); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: mkfs: %v\n", err)
			os.Exit(1)
		}
	}
	if reason, degraded := fs.Degraded(); degraded {
		fmt.Fprintf(os.Stderr, "winefsd: WARNING: serving read-only (degraded): %s\n", reason)
	}

	tracer, closeTracer, err := buildTracer(*traceOut, *slow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "winefsd: trace: %v\n", err)
		os.Exit(1)
	}

	// Replication: a primary streams its write log to each -replicas
	// address. Attach before serving so no client write escapes the log.
	var repl *cluster.Replicator
	scfg := fileserver.Config{CPUs: *cpus, Window: *window, Tracer: tracer, Epoch: *epoch}
	if *replicas != "" {
		repl = cluster.NewReplicator(fs, cluster.ReplicatorConfig{
			Epoch: *epoch,
			Sync:  *syncRepl,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "winefsd: repl: "+format+"\n", args...)
			},
		})
		for _, raddr := range strings.Split(*replicas, ",") {
			raddr = strings.TrimSpace(raddr)
			if raddr == "" {
				continue
			}
			target := raddr
			repl.AddReplica(target, func() (fileserver.Conn, error) {
				return fileserver.DialTCP(target)
			})
		}
		repl.Attach()
		scfg.PostMutate = repl.PostMutate
		fmt.Printf("winefsd: replicating to %s (epoch %d, sync=%v)\n", *replicas, *epoch, *syncRepl)
	}

	srv := fileserver.New(fs, scfg)
	l, err := fileserver.ListenTCP(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "winefsd: listen: %v\n", err)
		os.Exit(1)
	}

	// Online background defragmenter (§3.5): a maintenance goroutine runs
	// throttled passes on its own simulated thread, pinned to the last
	// CPU. Each pass interleaves with client operations through the
	// ordinary lock table; the pacer bounds its share of device bandwidth.
	var defragRunner *defrag.Runner
	var defragStop chan struct{}
	var defragDone chan struct{}
	if *doDefrag {
		defragRunner = defrag.New(fs, defrag.Config{Budget: *defragBudget})
		defragStop = make(chan struct{})
		defragDone = make(chan struct{})
		dctx := sim.NewCtx(3, *cpus-1)
		go func() {
			defer close(defragDone)
			tick := time.NewTicker(250 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-defragStop:
					return
				case <-tick.C:
					if _, err := defragRunner.Step(dctx); err != nil {
						// Read-only (degraded) or unmounted: nothing left
						// for a defragmenter to do.
						return
					}
				}
			}
		}()
		fmt.Printf("winefsd: online defrag enabled (budget %.0f%%)\n", 100**defragBudget)
	}

	// Tier migration: a maintenance goroutine runs periodic TierPass calls
	// on its own simulated thread — demoting cold extents when PM is above
	// the high-water mark, promoting reheated ones back. Its counters are
	// snapshotted under a mutex after each pass so the metrics registry
	// never races the migration thread.
	var tierCtrMu sync.Mutex
	var tierCounters perf.Counters
	var tierStop, tierDone chan struct{}
	if slowDev != nil {
		tierStop = make(chan struct{})
		tierDone = make(chan struct{})
		tctx := sim.NewCtx(4, *cpus-1)
		go func() {
			defer close(tierDone)
			tick := time.NewTicker(*tierInterval)
			defer tick.Stop()
			for {
				select {
				case <-tierStop:
					return
				case <-tick.C:
					if _, err := fs.TierPass(tctx, winefs.TierPassOptions{}); err != nil {
						// Read-only (degraded) or unmounted: migration has
						// nothing left to do.
						return
					}
					tierCtrMu.Lock()
					tierCounters = *tctx.Counters
					tierCtrMu.Unlock()
				}
			}
		}()
		fmt.Printf("winefsd: slow tier %s attached (high water %.2f, low water %.2f)\n",
			*slowSize, *tierHigh, *tierLow)
	}

	if *stats != "" {
		var extra []metrics.Collector
		if repl != nil {
			extra = append(extra, cluster.MetricsCollector(replStatsSource{repl}))
		}
		if defragRunner != nil {
			extra = append(extra, metrics.CollectorFunc(func() []metrics.Family {
				c := defragRunner.Counters()
				return metrics.DefragFamilies(&c)
			}))
		}
		if slowDev != nil {
			extra = append(extra, metrics.CollectorFunc(func() []metrics.Family {
				// Session counters carry the allocation-spill and slow-device
				// traffic; the maintenance thread's carry the migrations.
				// Aggregate both so tier_* and alloc_spill_* tell the whole
				// story at one scrape point.
				st := srv.Stats()
				c := st.Counters
				tierCtrMu.Lock()
				c.Add(&tierCounters)
				tierCtrMu.Unlock()
				fams := metrics.TierFamilies(&c)
				if ts, ok := fs.TierStats(); ok {
					fams = append(fams,
						metrics.Gauge("tier_pm_free_blocks", "Free 4KiB blocks on the PM tier.", float64(ts.PMFreeBlocks)),
						metrics.Gauge("tier_pm_total_blocks", "Total data blocks on the PM tier.", float64(ts.PMTotalBlocks)),
						metrics.Gauge("tier_slow_free_blocks", "Free 4KiB blocks on the slow tier.", float64(ts.SlowFreeBlocks)),
						metrics.Gauge("tier_slow_total_blocks", "Total blocks on the slow tier.", float64(ts.SlowTotalBlocks)))
				}
				return fams
			}))
		}
		bound, serr := serveStats(srv, *stats, extra...)
		if serr != nil {
			fmt.Fprintf(os.Stderr, "winefsd: stats listen: %v\n", serr)
			os.Exit(1)
		}
		fmt.Printf("winefsd: stats on http://%s/stats\n", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	// Serve returns nil once Shutdown drains, which can happen before the
	// handler has unmounted and saved — main must wait for shutdownDone or
	// the process exits with the image unsaved.
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-sig
		fmt.Println("winefsd: draining...")
		// Bounded drain: a wedged client must not hold the process hostage
		// past the lease grace period.
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := srv.ShutdownCtx(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: drain: %v\n", err)
		}
		cancel()
		if repl != nil {
			repl.Close()
		}
		if defragStop != nil {
			close(defragStop)
			<-defragDone
		}
		if tierStop != nil {
			close(tierStop)
			<-tierDone
		}
		closeTracer()
		uctx := sim.NewCtx(2, 0)
		if err := fs.Unmount(uctx); err != nil {
			fmt.Fprintf(os.Stderr, "winefsd: unmount: %v\n", err)
		}
		if slowDev != nil {
			slowDev.Release()
		}
		if *img != "" {
			if err := dev.Save(*img); err != nil {
				fmt.Fprintf(os.Stderr, "winefsd: save %s: %v\n", *img, err)
				os.Exit(1)
			}
			fmt.Printf("winefsd: saved %s\n", *img)
		}
	}()

	fmt.Printf("winefsd: serving %s (%s) on %s\n", fs.Name(), fs.Mode(), l.Addr())
	if err := srv.Serve(l); err != nil {
		fmt.Fprintf(os.Stderr, "winefsd: serve: %v\n", err)
		os.Exit(1)
	}
	<-shutdownDone
}

// runReplica runs the daemon as a passive replica: it serves the
// replication protocol on addr, applying the primary's stream (with CRC
// checking, epoch fencing and resync) to its local device. With -img the
// applied image is saved on shutdown, ready to be promoted by restarting
// winefsd against it as a primary with a bumped -epoch.
func runReplica(addr, img, size, primary string) error {
	var dev *pmem.Device
	var err error
	if img != "" {
		if dev, err = pmem.Load(img); err != nil {
			// A replica may start from nothing: a missing image is a fresh
			// device that the first resync baselines.
			bytes, perr := parseSize(size)
			if perr != nil {
				return fmt.Errorf("bad size: %w", perr)
			}
			dev = pmem.New(bytes)
		}
	} else {
		bytes, perr := parseSize(size)
		if perr != nil {
			return fmt.Errorf("bad size: %w", perr)
		}
		dev = pmem.New(bytes)
	}

	rep := cluster.NewReplica(addr, dev, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "winefsd: "+format+"\n", args...)
	})
	lst, err := fileserver.ListenTCP(addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("winefsd: replica shutting down...")
		lst.Close()
	}()
	fmt.Printf("winefsd: replica of %s, applying on %s\n", primary, lst.Addr())
	rep.Serve(lst)

	st := rep.Stats()
	fmt.Printf("winefsd: replica applied seq %d (%d records, %d bad, %d resyncs)\n",
		st.AppliedSeq, st.RecordsApplied, st.BadRecords, st.Resyncs)
	if img != "" {
		if err := dev.Save(img); err != nil {
			return fmt.Errorf("save %s: %w", img, err)
		}
		fmt.Printf("winefsd: saved %s\n", img)
	}
	return nil
}

// runSmoke boots a full server + stats endpoint on loopback ports, drives
// a small multi-client workload over TCP and checks the stats endpoint
// agrees work happened.
func runSmoke(cpus int) error {
	const clients = 4
	dev := pmem.New(256 << 20)
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cpus, Mode: vfs.Strict})
	if err != nil {
		return fmt.Errorf("mkfs: %w", err)
	}
	srv := fileserver.New(fs, fileserver.Config{CPUs: cpus})
	l, err := fileserver.ListenTCP("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	statsAddr, err := serveStats(srv, "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("stats listen: %w", err)
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	var totalOps int64
	var opsMu sync.Mutex
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := fileserver.DialTCP(l.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			cl, err := fileserver.Dial(conn)
			if err != nil {
				errs[i] = err
				return
			}
			cctx := sim.NewCtx(100+i, i%cpus)
			res, err := workloads.ServerMixClient(cctx, cl, i, workloads.ServerMixConfig{Ops: 48, Seed: 7})
			if err != nil {
				errs[i] = err
				return
			}
			opsMu.Lock()
			totalOps += res.Ops
			opsMu.Unlock()
			errs[i] = cl.Unmount(cctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}

	resp, err := http.Get("http://" + statsAddr + "/stats")
	if err != nil {
		return fmt.Errorf("stats endpoint: %w", err)
	}
	defer resp.Body.Close()
	var page statsPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return fmt.Errorf("stats decode: %w", err)
	}
	if page.FS != fs.Name() {
		return fmt.Errorf("stats FS = %q, want %q", page.FS, fs.Name())
	}
	if page.Sessions.Total != clients {
		return fmt.Errorf("stats sessions.total = %d, want %d", page.Sessions.Total, clients)
	}
	// Ops includes the hello/detach frames; it must cover at least the
	// workload's own syscalls.
	if page.Ops < totalOps {
		return fmt.Errorf("stats ops = %d, want >= %d", page.Ops, totalOps)
	}
	if page.Counters.Syscalls == 0 || page.Latency.Count == 0 {
		return fmt.Errorf("stats counters empty: %+v", page)
	}
	if page.Degraded {
		return fmt.Errorf("unexpected degraded mount: %s", page.Reason)
	}

	// The Prometheus endpoint must agree with /stats exactly: both sample
	// the same Stats() snapshot path, and with every client detached the
	// counters are stable between the two scrapes.
	mresp, err := http.Get("http://" + statsAddr + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics endpoint: %w", err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics read: %w", err)
	}
	prom := parsePromValues(string(body))
	for _, f := range page.Counters.Fields() {
		name := "winefsd_perf_" + metrics.SnakeCase(f.Name) + "_total"
		v, ok := prom[name]
		if !ok {
			return fmt.Errorf("metrics missing %s", name)
		}
		if v != float64(f.Value) {
			return fmt.Errorf("metrics %s = %v, /stats says %d", name, v, f.Value)
		}
	}
	// The mapping subsystem's canonical families must be on the page even
	// when idle (zero-valued counters still export).
	for _, name := range []string{"vmm_maps_total", "vmm_huge_faults_total", "vmm_cow_breaks_total"} {
		if _, ok := prom[name]; !ok {
			return fmt.Errorf("metrics missing %s", name)
		}
	}
	if got := prom["winefsd_ops_total"]; got != float64(page.Ops) {
		return fmt.Errorf("metrics ops_total = %v, /stats says %d", got, page.Ops)
	}
	if got := prom["winefsd_sessions_total"]; got != clients {
		return fmt.Errorf("metrics sessions_total = %v, want %d", got, clients)
	}
	if got := prom["winefsd_request_latency_ns_count"]; got != float64(page.Latency.Count) {
		return fmt.Errorf("metrics latency count = %v, /stats says %d", got, page.Latency.Count)
	}

	srv.Shutdown()
	if err := <-serveErr; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Printf("winefsd: smoke: %d clients, %d server ops, p99=%dns\n",
		clients, page.Ops, page.Latency.P99NS)
	return nil
}

// parsePromValues extracts unlabelled sample lines ("name value") from a
// Prometheus text page into a name → value map.
func parsePromValues(text string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.IndexByte(line, ' ')
		if i < 0 || strings.ContainsRune(line[:i], '{') {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			out[line[:i]] = v
		}
	}
	return out
}
