// Command agefs ages a WineFS image with the Geriatrix protocol (§5.1):
// create/delete churn following a realistic file-size profile until the
// target utilisation is reached in a naturally fragmented state.
//
// Usage:
//
//	agefs -img wine.img [-util 0.75] [-churn 2.0] [-profile agrawal|wang-hpc] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/alloc"
	"repro/internal/geriatrix"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

func main() {
	img := flag.String("img", "", "image path (required)")
	util := flag.Float64("util", 0.75, "target utilisation")
	churn := flag.Float64("churn", 2.0, "churn volume as multiple of capacity")
	profile := flag.String("profile", "agrawal", "aging profile: agrawal | wang-hpc")
	seed := flag.Uint64("seed", 42, "random seed")
	cpus := flag.Int("cpus", 8, "CPUs the image was formatted with")
	flag.Parse()
	if *img == "" {
		flag.Usage()
		os.Exit(2)
	}
	dev, err := pmem.Load(*img)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agefs: %v\n", err)
		os.Exit(1)
	}
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mount(ctx, dev, winefs.Options{CPUs: *cpus})
	if err != nil {
		fmt.Fprintf(os.Stderr, "agefs: mount: %v\n", err)
		os.Exit(1)
	}
	var p geriatrix.Profile
	switch *profile {
	case "agrawal":
		p = geriatrix.Agrawal()
	case "wang-hpc":
		p = geriatrix.WangHPC()
	default:
		fmt.Fprintf(os.Stderr, "agefs: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	ager := geriatrix.New(fs, geriatrix.Config{
		TargetUtil:  *util,
		ChurnFactor: *churn,
		Profile:     p,
		Seed:        *seed,
	})
	st, err := ager.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "agefs: %v\n", err)
		os.Exit(1)
	}
	if err := fs.Unmount(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "agefs: unmount: %v\n", err)
		os.Exit(1)
	}
	if err := dev.Save(*img); err != nil {
		fmt.Fprintf(os.Stderr, "agefs: save: %v\n", err)
		os.Exit(1)
	}
	frac := alloc.AlignedFreeFraction(fs.FreeExtents())
	fmt.Printf("agefs: %s profile, %.0f%% util, %.1fx churn: %d created, %d deleted, %d live files\n",
		p.Name, st.FinalUtil*100, *churn, st.Created, st.Deleted, st.LiveFiles)
	fmt.Printf("agefs: %.1f%% of free space remains in aligned 2MiB regions\n", frac*100)
}
