package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Host-side profiling of the simulator itself (-cpuprofile/-memprofile/
// -blockprofile). These observe the engine's host CPU, allocation and
// blocking behaviour; they never touch virtual time, so a profiled run
// produces bit-identical BENCH reports to an unprofiled one.

var profiles struct {
	cpu   *os.File
	mem   string
	block string
}

// startProfiles begins the requested pprof captures. Empty paths are
// skipped. The block profiler samples every blocking event so contended
// sim.Resource mutexes and channel waits show up with true weight.
func startProfiles(cpu, mem, block string) error {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		profiles.cpu = f
	}
	profiles.mem = mem
	profiles.block = block
	if block != "" {
		runtime.SetBlockProfileRate(1)
	}
	return nil
}

// stopProfiles flushes every active capture. Safe to call more than once.
func stopProfiles() {
	if profiles.cpu != nil {
		pprof.StopCPUProfile()
		profiles.cpu.Close()
		profiles.cpu = nil
	}
	if profiles.mem != "" {
		f, err := os.Create(profiles.mem)
		if err == nil {
			runtime.GC() // flush pending frees so inuse numbers are exact
			_ = pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}
		profiles.mem = ""
	}
	if profiles.block != "" {
		f, err := os.Create(profiles.block)
		if err == nil {
			_ = pprof.Lookup("block").WriteTo(f, 0)
			f.Close()
		}
		profiles.block = ""
	}
}

// exit flushes profiles before terminating: bench failures still deserve
// their captures.
func exit(code int) {
	stopProfiles()
	os.Exit(code)
}
