package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"repro/internal/experiments"
	"repro/internal/fileserver"
	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

// winebench -scaling: the fxmark-style concurrency scalability suite.
// Every (case, transport, threads) point boots a fresh strict-mode WineFS
// on scalingCPUs simulated CPUs and runs `threads` concurrent workers,
// thread t pinned to CPU t — that 1:1 pinning is what makes the work
// counters exactly reproducible, so BENCH_scaling.json can gate on them.
// Threads sweep 1→scalingCPUs; the interesting signal is the shape:
// shared reads, disjoint-range writes and private appends speed up with
// thread count until the device ports saturate, while overlapping writes
// and single-directory metadata churn serialise on the contended lock.

const scalingCPUs = 128

func scalingThreadCounts() []int { return []int{1, 2, 4, 8, 16, 32, 64, 128} }

// scalingPoint is one (case, transport, threads) measurement.
type scalingPoint struct {
	Case      string
	Transport string // "local" (direct calls) or "server" (through winefsd)
	Threads   int
	// Ops and Bytes are summed over threads and exactly reproducible.
	Ops   int64
	Bytes int64
	// SpanNS is the slowest thread's virtual time; OpsPerSec is
	// Ops/SpanNS in virtual seconds. Contention-derived, so
	// baseline-checked with tolerance rather than exactly.
	SpanNS     int64
	OpsPerSec  float64
	LockWaitNS int64
	// Counters merges the worker threads' counters (local) or the server
	// sessions' (server). Setup work is excluded in both transports.
	Counters perf.Counters
}

// scalingReport is the machine-readable BENCH_scaling.json schema.
type scalingReport struct {
	Bench        string // report schema tag, "scaling/v1"
	CPUs         int
	OpsPerThread int
	Seed         uint64
	Points       []scalingPoint
}

// runScalingBench sweeps every fxmark case over both transports and all
// thread counts, prints ops/s tables, and optionally writes/checks the
// JSON report.
func runScalingBench(ops int, quick bool, seed uint64, jsonOut, baseline string) error {
	if ops <= 0 {
		ops = 200
		if quick {
			ops = 64
		}
	}
	rep := scalingReport{Bench: "scaling/v1", CPUs: scalingCPUs, OpsPerThread: ops, Seed: seed}
	// Points are independent — each boots a fresh device and file system —
	// so they run concurrently via sim.ParallelRunner into per-index slots;
	// the report order is the job-list order regardless of host scheduling,
	// and every point's numbers are identical to a sequential sweep's.
	type scalingJob struct {
		c         workloads.FxmarkCase
		transport string
		threads   int
	}
	var jobs []scalingJob
	for _, c := range workloads.FxmarkCases() {
		for _, transport := range []string{"local", "server"} {
			for _, threads := range scalingThreadCounts() {
				jobs = append(jobs, scalingJob{c, transport, threads})
			}
		}
	}
	pts := make([]scalingPoint, len(jobs))
	errs := make([]error, len(jobs))
	// Each in-flight point backs its own device (hundreds of MiB at high
	// thread counts), so cap the workers rather than matching host cores.
	pr := sim.ParallelRunner{Workers: min(runtime.GOMAXPROCS(0), 4)}
	pr.Run(len(jobs), func(i int) {
		j := jobs[i]
		pts[i], errs[i] = runScalingPoint(j.c, j.transport, j.threads, ops, seed)
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%s/%s/%d threads: %w", jobs[i].c, jobs[i].transport, jobs[i].threads, err)
		}
	}
	rep.Points = pts

	for _, transport := range []string{"local", "server"} {
		t := &experiments.Table{
			Title:  fmt.Sprintf("Scalability (%s transport): virtual kops/s vs threads, %d CPUs", transport, scalingCPUs),
			Header: []string{"case"},
		}
		for _, n := range scalingThreadCounts() {
			t.Header = append(t.Header, fmt.Sprintf("%d", n))
		}
		t.Header = append(t.Header, "hit%")
		for _, c := range workloads.FxmarkCases() {
			row := []string{string(c)}
			// The trailing hit% column aggregates the client page-cache hit
			// ratio over the case's points; plain fileserver clients take no
			// leases, so it renders "-" unless a cache sits in the stack.
			var caseCounters perf.Counters
			for _, n := range scalingThreadCounts() {
				for i := range rep.Points {
					pt := &rep.Points[i]
					if pt.Case == string(c) && pt.Transport == transport && pt.Threads == n {
						row = append(row, fmt.Sprintf("%.1f", pt.OpsPerSec/1e3))
						caseCounters.Add(&pt.Counters)
					}
				}
			}
			row = append(row, fmtHitRatio(&caseCounters))
			t.Rows = append(t.Rows, row)
		}
		t.Print(os.Stdout)
	}

	if jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Printf("wrote scaling report to %s\n", jsonOut)
	}
	if baseline != "" {
		if err := checkScalingBaseline(rep, baseline); err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		fmt.Printf("baseline check OK against %s\n", baseline)
	}
	return nil
}

// runScalingPoint measures one (case, transport, threads) cell on a fresh
// file system. Setup always runs single-threaded directly against the FS;
// only the measured loops go through the transport under test.
func runScalingPoint(c workloads.FxmarkCase, transport string, threads, ops int, seed uint64) (scalingPoint, error) {
	pt := scalingPoint{Case: string(c), Transport: transport, Threads: threads}
	cfg := workloads.FxmarkConfig{Ops: ops, Seed: seed}
	// The sweep never snapshots its devices; NoSnapshot drops the
	// snapshot-lock round trip from every store on the measured path.
	dev := pmem.NewWithConfig(pmem.Config{Size: 1 << 30, NoSnapshot: true})
	setupCtx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(setupCtx, dev, winefs.Options{CPUs: scalingCPUs, Mode: vfs.Strict})
	if err != nil {
		return pt, fmt.Errorf("mkfs: %w", err)
	}
	if err := workloads.FxmarkSetup(setupCtx, fs, c, threads, cfg); err != nil {
		return pt, err
	}

	// Lock and device-port calendars extend to setup's virtual frontier;
	// workers start there, not at 0, or their first acquisition would charge
	// the whole setup history as phantom lock wait.
	epoch := setupCtx.Now()
	var srv *fileserver.Server
	serveErr := make(chan error, 1)
	targets := make([]vfs.FS, threads)
	switch transport {
	case "local":
		for t := range targets {
			targets[t] = fs
		}
	case "server":
		srv = fileserver.New(fs, fileserver.Config{CPUs: scalingCPUs, BaseNS: epoch})
		pl := fileserver.NewPipeListener()
		go func() { serveErr <- srv.Serve(pl) }()
		// Dial sequentially: session ids assign in accept order and pin
		// sessions to CPU id%CPUs, so this is what pins thread t's server
		// session to CPU t.
		for t := range targets {
			conn, err := pl.Dial()
			if err != nil {
				return pt, fmt.Errorf("dial %d: %w", t, err)
			}
			cl, err := fileserver.Dial(conn)
			if err != nil {
				return pt, fmt.Errorf("dial %d: %w", t, err)
			}
			targets[t] = cl
		}
	default:
		return pt, fmt.Errorf("unknown transport %q", transport)
	}

	var wg sync.WaitGroup
	errs := make([]error, threads)
	results := make([]workloads.FxmarkThreadResult, threads)
	ctxs := make([]*sim.Ctx, threads)
	for t := 0; t < threads; t++ {
		ctxs[t] = sim.NewCtx(100+t, t)
		ctxs[t].AdvanceTo(epoch)
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			results[t], errs[t] = workloads.FxmarkThread(ctxs[t], targets[t], t, c, threads, cfg)
		}(t)
	}
	wg.Wait()
	for t, err := range errs {
		if err != nil {
			return pt, fmt.Errorf("thread %d: %w", t, err)
		}
	}
	if srv != nil {
		srv.Shutdown()
		if err := <-serveErr; err != nil {
			return pt, fmt.Errorf("serve: %w", err)
		}
	}

	for t := 0; t < threads; t++ {
		pt.Ops += results[t].Ops
		pt.Bytes += results[t].Bytes
		if results[t].VirtualNS > pt.SpanNS {
			pt.SpanNS = results[t].VirtualNS
		}
		pt.Counters.Add(ctxs[t].Counters)
	}
	if srv != nil {
		// Through winefsd the file-system work (and so the lock waiting)
		// happens on the server sessions, not the client threads.
		st := srv.Stats()
		pt.Counters.Add(&st.Counters)
	}
	pt.LockWaitNS = pt.Counters.LockWaitNS
	if pt.SpanNS > 0 {
		pt.OpsPerSec = float64(pt.Ops) / (float64(pt.SpanNS) / 1e9)
	}
	// Everything that could touch the device is torn down (threads joined,
	// server drained), so its chunks go back to the allocator pool for the
	// next point. Skipped on error paths: an aborting sweep may still have
	// a live server writing.
	dev.Release()
	return pt, nil
}

// lockWaitFloorNS exempts tiny LockWaitNS values from the relative
// tolerance: a single displaced lock booking shifts the total by a few
// hundred virtual ns, which is a huge relative error on a near-zero
// baseline but means nothing.
const lockWaitFloorNS = 20000

// strictTimingThreads bounds the regime where contention-derived numbers
// (SpanNS, OpsPerSec, LockWaitNS, allocation-placement counters) are gated
// with tolerance. They are deterministic in distribution, and up to this
// thread count the distribution is tight enough for lockWaitTolerance to
// hold across runs. Beyond it — 32+ virtual threads multiplexed onto a
// handful of host cores — which thread wins each calendar slot varies
// enough run-to-run that the span of the slowest thread is bimodal; there
// the gate keeps every exact work counter (ops, bytes, faults, journal
// traffic are interleaving-independent at every scale) and lets the
// timing distribution float.
const strictTimingThreads = 16

// checkScalingBaseline compares a finished sweep against a committed
// scaling report: configuration, point set and every work counter must
// match exactly; contention-derived timings get lockWaitTolerance slack.
func checkScalingBaseline(rep scalingReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base scalingReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Bench != base.Bench || rep.CPUs != base.CPUs ||
		rep.OpsPerThread != base.OpsPerThread || rep.Seed != base.Seed {
		return fmt.Errorf("configuration mismatch: run (%s, %d cpus, %d ops, seed %d) vs baseline (%s, %d cpus, %d ops, seed %d)",
			rep.Bench, rep.CPUs, rep.OpsPerThread, rep.Seed,
			base.Bench, base.CPUs, base.OpsPerThread, base.Seed)
	}
	if len(rep.Points) != len(base.Points) {
		return fmt.Errorf("point count mismatch: %d vs baseline %d", len(rep.Points), len(base.Points))
	}
	var bad []string
	for i := range rep.Points {
		got, want := rep.Points[i], base.Points[i]
		id := fmt.Sprintf("%s/%s/%d", got.Case, got.Transport, got.Threads)
		if got.Case != want.Case || got.Transport != want.Transport || got.Threads != want.Threads {
			return fmt.Errorf("point %d is %s, baseline has %s/%s/%d", i, id, want.Case, want.Transport, want.Threads)
		}
		exact := func(name string, g, w int64) {
			if g != w {
				bad = append(bad, fmt.Sprintf("%s: %s = %d, baseline %d", id, name, g, w))
			}
		}
		within := func(name string, g, w float64) {
			if w == 0 && g == 0 {
				return
			}
			if w == 0 || g < w*(1-lockWaitTolerance) || g > w*(1+lockWaitTolerance) {
				bad = append(bad, fmt.Sprintf("%s: %s = %g, baseline %g (>%.0f%% off)", id, name, g, w, lockWaitTolerance*100))
			}
		}
		exact("Ops", got.Ops, want.Ops)
		exact("Bytes", got.Bytes, want.Bytes)
		strict := got.Threads <= strictTimingThreads
		if strict {
			within("SpanNS", float64(got.SpanNS), float64(want.SpanNS))
			within("OpsPerSec", got.OpsPerSec, want.OpsPerSec)
			if got.LockWaitNS > lockWaitFloorNS || want.LockWaitNS > lockWaitFloorNS {
				within("LockWaitNS", float64(got.LockWaitNS), float64(want.LockWaitNS))
			}
		}
		gotFields, wantFields := got.Counters.Fields(), want.Counters.Fields()
		for j, f := range gotFields {
			switch f.Name {
			case "LockWaitNS":
				// Checked above, with tolerance, in the strict regime.
			case "AllocSteals", "AllocSplits":
				// Placement counters: WHERE an allocation lands (local pool,
				// remote steal, broken hugepage) depends on which group has
				// the most free space at that instant, which shifts with
				// host-order ties exactly like lock waits. The amounts
				// allocated stay exact (Bytes and the byte counters above).
				if strict && (f.Value > 16 || wantFields[j].Value > 16) {
					within("Counters."+f.Name, float64(f.Value), float64(wantFields[j].Value))
				}
			default:
				exact("Counters."+f.Name, f.Value, wantFields[j].Value)
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("%d regressions:\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
