// winebench -replicated: the replication-overhead benchmark. The same
// ServerMix fan-out runs twice — once against a plain single-node server,
// once against a 1-primary/N-replica cluster with synchronous replication
// — and the virtual makespans are compared. The run fails if replication
// costs more than replicatedOverheadLimit on the ServerMix span, or if the
// replicas do not end byte-identical to the primary.
//
// The committed BENCH_replicated.json gates op counts and resyncs exactly
// and the record stream and spans with the usual contention tolerance
// (group-commit batching follows real scheduler interleaving).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/fileserver"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

// replicatedOverheadLimit is the hard gate on synchronous-replication
// overhead over the plain serving baseline, in percent of the summed
// per-client ServerMix spans. The sum (equivalently the mean) is the
// gated statistic because the makespan — the slowest of 8 contended
// clients — is an extreme-value statistic whose run-to-run spread under
// host scheduling is wider than any honest limit; the mean absorbs the
// extremes while still charging every nanosecond replication adds.
//
// The limit prices the model, not a wish: sync mode charges
// LatencyNS + bytes·NSPerByte per mutating request (the modeled wait for
// replica durability), which on the write-heavy ServerMix costs ≈55% of
// the plain per-client span. The old 15% limit on the makespan ratio
// only held because pre-fast-path contention inflated the plain span —
// the replication charges hid inside lock-wait time the engine no longer
// fabricates. 65% gates real regressions (a charge-model or batching
// slip) without re-burying the cost.
const replicatedOverheadLimit = 65.0

// replicatedReport is the BENCH_replicated.json schema.
type replicatedReport struct {
	Bench        string // "server-mix-replicated/v1"
	Clients      int
	OpsPerClient int
	CPUs         int
	Replicas     int
	Seed         uint64
	ClientOps    int64
	// PlainSpanNS / ReplicatedSpanNS are the virtual makespans (slowest
	// client) of the unreplicated and replicated runs; PlainSumNS /
	// ReplicatedSumNS are the summed per-client spans, and OverheadPct —
	// the relative cost of synchronous replication — is computed on the
	// sums (see replicatedOverheadLimit for why).
	PlainSpanNS      int64
	ReplicatedSpanNS int64
	PlainSumNS       int64
	ReplicatedSumNS  int64
	OverheadPct      float64
	// RecordsLogged/BytesLogged/Commits track the workload's write stream
	// closely but not exactly: journal group-commit batching follows real
	// scheduler interleaving, so they wobble a fraction of a percent and
	// are gated with the contention tolerance. Resyncs is the per-replica
	// baseline image transfer (== Replicas), gated exactly.
	RecordsLogged int64
	BytesLogged   int64
	Commits       int64
	Resyncs       int64
}

// mixFanout drives `clients` concurrent ServerMix clients against dial and
// returns (total client ops, virtual makespan, summed client spans).
func mixFanout(dial func() (fileserver.Conn, error), clients, cpus, ops int, seed uint64) (int64, int64, int64, error) {
	var wg sync.WaitGroup
	errs := make([]error, clients)
	results := make([]workloads.ServerMixResult, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := dial()
			if err != nil {
				errs[i] = err
				return
			}
			cl, err := fileserver.Dial(conn)
			if err != nil {
				errs[i] = err
				return
			}
			cctx := sim.NewCtx(5000+i, i%cpus)
			results[i], errs[i] = workloads.ServerMixClient(cctx, cl, i,
				workloads.ServerMixConfig{Ops: ops, Seed: seed})
			if errs[i] == nil {
				errs[i] = cl.Unmount(cctx)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return 0, 0, 0, fmt.Errorf("client %d: %w", i, err)
		}
	}
	var totalOps, spanNS, sumNS int64
	for _, r := range results {
		totalOps += r.Ops
		sumNS += r.VirtualNS
		if r.VirtualNS > spanNS {
			spanNS = r.VirtualNS
		}
	}
	return totalOps, spanNS, sumNS, nil
}

// runReplicatedBench measures synchronous-replication overhead on the
// ServerMix serving baseline and gates it at replicatedOverheadLimit.
func runReplicatedBench(clients, cpus int, size int64, ops int, quick bool, seed uint64, jsonOut, baseline string) error {
	const nReplicas = 2
	if ops <= 0 {
		ops = 200
		if quick {
			ops = 50
		}
	}
	if size == 0 {
		size = 1 << 30
	}

	// Plain baseline: one server, no replication.
	dev := pmem.New(size)
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cpus, Mode: vfs.Strict})
	if err != nil {
		return fmt.Errorf("mkfs: %w", err)
	}
	srv := fileserver.New(fs, fileserver.Config{CPUs: cpus})
	pl := fileserver.NewPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(pl) }()
	plainOps, plainSpan, plainSum, err := mixFanout(pl.Dial, clients, cpus, ops, seed)
	if err != nil {
		return fmt.Errorf("plain run: %w", err)
	}
	srv.Shutdown()
	if err := <-serveErr; err != nil {
		return fmt.Errorf("plain serve: %w", err)
	}

	// Replicated run: same workload through a synchronous 2-replica
	// cluster; every acknowledged write waited for replica durability.
	cctx := sim.NewCtx(2, 0)
	cl, err := cluster.New(cctx, cluster.Config{
		Replicas:   nReplicas,
		DeviceSize: size,
		FSOpts:     winefs.Options{CPUs: cpus, Mode: vfs.Strict},
		Server:     fileserver.Config{CPUs: cpus},
		Repl:       cluster.ReplicatorConfig{Sync: true, Seed: seed},
	})
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	defer cl.Shutdown()
	replOps, replSpan, replSum, err := mixFanout(cl.DialPrimary, clients, cpus, ops, seed)
	if err != nil {
		return fmt.Errorf("replicated run: %w", err)
	}
	if replOps != plainOps {
		return fmt.Errorf("op-count mismatch: plain %d vs replicated %d", plainOps, replOps)
	}
	// Integrity before performance: every replica must end byte-identical
	// to the primary, or the overhead number is meaningless.
	if !cl.AwaitConverged(30 * time.Second) {
		return fmt.Errorf("replicas did not converge with the primary after the run")
	}
	st := cl.Stats()

	overhead := 0.0
	if plainSum > 0 {
		overhead = (float64(replSum) - float64(plainSum)) / float64(plainSum) * 100
	}

	t := &experiments.Table{
		Title:  fmt.Sprintf("Replication overhead: %d clients x %d iterations, %d sync replicas", clients, ops, nReplicas),
		Header: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"client ops", fmt.Sprintf("%d", plainOps)},
		[]string{"plain span", fmt.Sprintf("%dns (sum %dns)", plainSpan, plainSum)},
		[]string{"replicated span", fmt.Sprintf("%dns (sum %dns)", replSpan, replSum)},
		[]string{"overhead", fmt.Sprintf("%.2f%% of summed spans (limit %.0f%%)", overhead, replicatedOverheadLimit)},
		[]string{"records logged", fmt.Sprintf("%d", st.Repl.RecordsLogged)},
		[]string{"bytes logged", fmt.Sprintf("%d", st.Repl.BytesLogged)},
		[]string{"commits", fmt.Sprintf("%d", st.Repl.Commits)},
		[]string{"resyncs", fmt.Sprintf("%d (baseline image per replica)", st.Repl.Resyncs)},
	)
	t.Print(os.Stdout)

	if overhead > replicatedOverheadLimit {
		return fmt.Errorf("synchronous replication costs %.2f%% on summed ServerMix spans, limit %.0f%%", overhead, replicatedOverheadLimit)
	}
	if st.Repl.Resyncs != nReplicas {
		return fmt.Errorf("resyncs = %d, want exactly the %d baseline transfers", st.Repl.Resyncs, nReplicas)
	}
	for _, rs := range st.ReplicaSide {
		if rs.BadRecords != 0 || rs.Gaps != 0 {
			return fmt.Errorf("replica saw %d bad records, %d gaps on a clean in-memory stream", rs.BadRecords, rs.Gaps)
		}
	}

	rep := replicatedReport{
		Bench:            "server-mix-replicated/v1",
		Clients:          clients,
		OpsPerClient:     ops,
		CPUs:             cpus,
		Replicas:         nReplicas,
		Seed:             seed,
		ClientOps:        plainOps,
		PlainSpanNS:      plainSpan,
		ReplicatedSpanNS: replSpan,
		PlainSumNS:       plainSum,
		ReplicatedSumNS:  replSum,
		OverheadPct:      overhead,
		RecordsLogged:    st.Repl.RecordsLogged,
		BytesLogged:      st.Repl.BytesLogged,
		Commits:          st.Repl.Commits,
		Resyncs:          st.Repl.Resyncs,
	}
	if jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Printf("wrote BENCH report to %s\n", jsonOut)
	}
	if baseline != "" {
		if err := checkReplicatedBaseline(rep, baseline); err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		fmt.Printf("baseline check OK against %s\n", baseline)
	}
	return nil
}

// checkReplicatedBaseline diffs a run against the committed
// BENCH_replicated.json: configuration and work counters exactly, spans
// and the overhead ratio with the usual contention tolerance.
func checkReplicatedBaseline(rep replicatedReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base replicatedReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Bench != base.Bench || rep.Clients != base.Clients ||
		rep.OpsPerClient != base.OpsPerClient || rep.CPUs != base.CPUs ||
		rep.Replicas != base.Replicas || rep.Seed != base.Seed {
		return fmt.Errorf("configuration mismatch: run (%d clients x %d ops, %d cpus, %d replicas, seed %d) vs baseline (%d x %d, %d cpus, %d replicas, seed %d)",
			rep.Clients, rep.OpsPerClient, rep.CPUs, rep.Replicas, rep.Seed,
			base.Clients, base.OpsPerClient, base.CPUs, base.Replicas, base.Seed)
	}
	var bad []string
	exact := func(name string, got, want int64) {
		if got != want {
			bad = append(bad, fmt.Sprintf("%s = %d, baseline %d", name, got, want))
		}
	}
	within := func(name string, got, want float64) {
		if want == 0 && got == 0 {
			return
		}
		if want == 0 || got < want*(1-lockWaitTolerance) || got > want*(1+lockWaitTolerance) {
			bad = append(bad, fmt.Sprintf("%s = %g, baseline %g (>%.0f%% off)", name, got, want, lockWaitTolerance*100))
		}
	}
	exact("ClientOps", rep.ClientOps, base.ClientOps)
	exact("Resyncs", rep.Resyncs, base.Resyncs)
	// The record stream tracks the workload but group-commit batching
	// follows real scheduler interleaving — tolerance, not exact.
	within("RecordsLogged", float64(rep.RecordsLogged), float64(base.RecordsLogged))
	within("BytesLogged", float64(rep.BytesLogged), float64(base.BytesLogged))
	within("Commits", float64(rep.Commits), float64(base.Commits))
	within("PlainSpanNS", float64(rep.PlainSpanNS), float64(base.PlainSpanNS))
	within("ReplicatedSpanNS", float64(rep.ReplicatedSpanNS), float64(base.ReplicatedSpanNS))
	within("PlainSumNS", float64(rep.PlainSumNS), float64(base.PlainSumNS))
	within("ReplicatedSumNS", float64(rep.ReplicatedSumNS), float64(base.ReplicatedSumNS))
	if len(bad) > 0 {
		return fmt.Errorf("%d regressions:\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
