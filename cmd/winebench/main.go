// Command winebench runs the paper's evaluation (§4–§5) and prints each
// table and figure as text, in the same rows/series the paper reports.
//
// Usage:
//
//	winebench [-quick] [-cpus N] [-size BYTES] [-seed N] [-run fig1,fig3,...]
//	winebench -server [-clients N] [-server-ops N]
//	          [-json FILE] [-trace FILE] [-metrics-out FILE]
//	winebench -scaling [-scaling-ops N] [-json FILE] [-check-against FILE]
//	winebench -cache [-clients N] [-json FILE] [-check-against FILE]
//	winebench -mmap [-quick] [-json FILE] [-check-against FILE]
//	winebench -defrag [-quick] [-json FILE] [-check-against FILE]
//
// -run selects experiments (comma-separated from: fig1 fig2 fig3 fig4 fig6
// fig7 table2 fig8 fig9 fig10 recovery defrag hpc crashmonkey; default all).
//
// -server runs the serving-throughput baseline instead: N concurrent
// clients drive one winefsd-style server through the deterministic
// in-memory transport and the merged latency digest plus virtual ops/s are
// reported. In this mode three machine-readable outputs are available:
// -json writes the run as a BENCH report (throughput, latency summary and
// the full merged perf counter set — everything is virtual time, so the
// file is bit-identical across runs with the same seed and makes a
// committable regression baseline); -trace captures every request span as
// a Chrome trace-event file loadable in chrome://tracing or Perfetto;
// -metrics-out dumps the final server counters in the Prometheus text
// format, exactly as a live winefsd /metrics scrape would render them.
//
// -scaling runs the fxmark-style concurrency scalability suite instead:
// each sharing case (shared-read, disjoint-write, overlap-write,
// private-append, meta-contended) sweeps 1→128 threads on a fresh 128-CPU
// file system, both with direct calls and through the winefsd transport.
// -json writes the committable BENCH_scaling.json report; -check-against
// regression-checks a run against one (work counters exact, contention
// timings with tolerance).
//
// -cache runs the client page-cache effectiveness sweep instead: the
// CachedMix workload (populate, re-read, rewrite-in-place) runs once with
// bare clients and once with every client wrapped in internal/pagecache,
// and the re-read phase's virtual cost per read is compared. The run
// fails unless the cached configuration is at least 5x cheaper per
// re-read. -json writes the committable BENCH_cache.json report;
//
// -mmap runs the zero-copy mapped-read sweep instead: a 32MiB file is
// mapped through internal/vmm on a freshly filled (unaged) image and on a
// Geriatrix-aged image at the same utilisation, for both WineFS and
// ext4-DAX, and the per-access cost plus hugepage coverage are compared.
// The run fails unless unaged hugepage coverage is at least 90% and aged
// ext4-DAX mapped reads cost at least 3x the unaged ones (the paper's
// Figure 1 aging gap at the mmap API). -json writes the committable
// BENCH_mmap.json report; -check-against regression-checks a run.
//
// -defrag runs the online-defragmenter bench (§3.5) instead: an
// adversarially aged image (zero free aligned extents) is mapped, the
// background defragmenter re-forms 2MiB extents and re-promotes the live
// mapping, and recovered hugepage coverage is gated at >=90% of the
// unaged control. A second phase measures foreground mmap interference
// while the defragmenter runs, unthrottled (must land in the paper's
// 25-40% band, §4) and duty-cycle paced (must stay <=10%). -json writes
// the committable BENCH_defrag.json report; -check-against
// regression-checks a run.
//
// -check-against regression-checks a run against one. In -server mode the
// -cached flag wraps each client in the page cache too (incompatible with
// -check-against, since the committed server baseline is uncached).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/crashmonkey"
	"repro/internal/experiments"
	"repro/internal/fileserver"
	"repro/internal/metrics"
	"repro/internal/pagecache"
	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

func main() {
	quick := flag.Bool("quick", false, "reduced workload sizes (seconds instead of minutes)")
	cpus := flag.Int("cpus", 8, "logical CPUs per file system")
	size := flag.Int64("size", 0, "device size in bytes (0 = default)")
	seed := flag.Uint64("seed", 42, "random seed")
	run := flag.String("run", "all", "comma-separated experiment list")
	server := flag.Bool("server", false, "run the serving-throughput baseline and exit")
	replicated := flag.Bool("replicated", false, "run the replication-overhead benchmark and exit")
	scaling := flag.Bool("scaling", false, "run the fxmark-style scalability suite and exit")
	cache := flag.Bool("cache", false, "run the client page-cache effectiveness sweep and exit")
	mmap := flag.Bool("mmap", false, "run the zero-copy mapped-read sweep (unaged vs aged) and exit")
	tierBench := flag.Bool("tier", false, "run the tiered-storage working-set sweep (PM+SSD vs all-PM) and exit")
	defragBench := flag.Bool("defrag", false, "run the online-defragmenter recovery and interference bench and exit")
	cached := flag.Bool("cached", false, "-server: wrap every client in the internal/pagecache client cache")
	scalingOps := flag.Int("scaling-ops", 0, "loop iterations per thread in -scaling mode (0 = 200, 64 with -quick)")
	clients := flag.Int("clients", 8, "concurrent clients in -server mode")
	serverOps := flag.Int("server-ops", 0, "loop iterations per client in -server mode (0 = 200, 50 with -quick)")
	jsonOut := flag.String("json", "", "-server: write the BENCH report as JSON to this file")
	traceOut := flag.String("trace", "", "-server: write request spans as a Chrome trace-event file")
	metricsOut := flag.String("metrics-out", "", "-server: dump final counters in Prometheus text format to this file")
	baseline := flag.String("check-against", "", "-server: compare the run against this BENCH report and fail on regression")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile at exit to this file")
	blockProfile := flag.String("blockprofile", "", "write a pprof blocking profile at exit to this file")
	flag.Parse()

	if err := startProfiles(*cpuProfile, *memProfile, *blockProfile); err != nil {
		fmt.Fprintf(os.Stderr, "winebench: profile: %v\n", err)
		exit(1)
	}
	defer stopProfiles()

	if *mmap {
		if err := runMmapBench(*cpus, *quick, *seed, *jsonOut, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "winebench: mmap: %v\n", err)
			exit(1)
		}
		return
	}
	if *tierBench {
		if err := runTierBench(*cpus, *quick, *seed, *jsonOut, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "winebench: tier: %v\n", err)
			exit(1)
		}
		return
	}
	if *defragBench {
		if err := runDefragBench(*cpus, *quick, *seed, *jsonOut, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "winebench: defrag: %v\n", err)
			exit(1)
		}
		return
	}
	if *cache {
		if err := runCacheBench(*clients, *cpus, *quick, *seed, *jsonOut, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "winebench: cache: %v\n", err)
			exit(1)
		}
		return
	}
	if *scaling {
		if err := runScalingBench(*scalingOps, *quick, *seed, *jsonOut, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "winebench: scaling: %v\n", err)
			exit(1)
		}
		return
	}
	if *replicated {
		if err := runReplicatedBench(*clients, *cpus, *size, *serverOps, *quick, *seed, *jsonOut, *baseline); err != nil {
			fmt.Fprintf(os.Stderr, "winebench: replicated: %v\n", err)
			exit(1)
		}
		return
	}
	if *server {
		out := benchOutputs{JSON: *jsonOut, Trace: *traceOut, Metrics: *metricsOut, Baseline: *baseline}
		if err := runServerBench(*clients, *cpus, *size, *serverOps, *quick, *cached, *seed, out); err != nil {
			fmt.Fprintf(os.Stderr, "winebench: server: %v\n", err)
			exit(1)
		}
		return
	}

	cfg := experiments.Config{
		Quick:      *quick,
		CPUs:       *cpus,
		DeviceSize: *size,
		Seed:       *seed,
	}.Defaults()

	want := map[string]bool{}
	for _, n := range strings.Split(*run, ",") {
		want[strings.TrimSpace(n)] = true
	}
	sel := func(name string) bool { return want["all"] || want[name] }
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "winebench: %s: %v\n", name, err)
		exit(1)
	}

	if sel("fig1") {
		unaged, aged, err := experiments.Fig1(cfg)
		if err != nil {
			fail("fig1", err)
		}
		experiments.SeriesTable("Figure 1(a): un-aged mmap write bandwidth (GB/s) vs utilisation (%)",
			"util%", unaged, experiments.FmtGBs).Print(os.Stdout)
		experiments.SeriesTable("Figure 1(b): aged mmap write bandwidth (GB/s) vs utilisation (%)",
			"util%", aged, experiments.FmtGBs).Print(os.Stdout)
	}
	if sel("fig2") {
		rows, err := experiments.Fig2(cfg)
		if err != nil {
			fail("fig2", err)
		}
		t := &experiments.Table{
			Title:  "Figure 2: memory-map + write a 2MiB file (microseconds)",
			Header: []string{"config", "total", "copy", "fault+pagetable"},
		}
		for _, r := range rows {
			t.Rows = append(t.Rows, []string{r.Config,
				fmt.Sprintf("%.0f", r.TotalUS), fmt.Sprintf("%.0f", r.CopyUS),
				fmt.Sprintf("%.0f", r.FaultUS)})
		}
		t.Print(os.Stdout)
	}
	if sel("fig3") {
		series, err := experiments.Fig3(cfg)
		if err != nil {
			fail("fig3", err)
		}
		experiments.SeriesTable("Figure 3: free space in aligned+contiguous 2MiB regions (%) vs utilisation (%)",
			"util%", series, func(v float64) string { return fmt.Sprintf("%.1f", v) }).Print(os.Stdout)
	}
	if sel("fig4") {
		res, err := experiments.Fig4(cfg)
		if err != nil {
			fail("fig4", err)
		}
		t := &experiments.Table{
			Title:  "Figure 4: pre-faulted random-read latency (ns)",
			Header: []string{"pages", "median", "p90", "p99"},
		}
		for _, row := range []struct {
			name string
			h    *perf.Histogram
		}{{"2MB-pages", &res.Huge}, {"4KB-pages", &res.Base}} {
			t.Rows = append(t.Rows, []string{row.name,
				fmt.Sprintf("%d", row.h.Median()),
				fmt.Sprintf("%d", row.h.Quantile(0.9)),
				fmt.Sprintf("%d", row.h.Quantile(0.99))})
		}
		t.Rows = append(t.Rows, []string{"ratio", fmt.Sprintf("%.1fx", res.MedianRatio()), "", ""})
		t.Print(os.Stdout)
	}
	if sel("fig6") {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			fail("fig6", err)
		}
		printFig6 := func(title string, data map[string][]float64) {
			t := &experiments.Table{Title: title,
				Header: append([]string{"fs"}, res.Patterns...)}
			for fs, vals := range data {
				row := []string{fs}
				for _, v := range vals {
					row = append(row, experiments.FmtGBs(v))
				}
				t.Rows = append(t.Rows, row)
			}
			t.Print(os.Stdout)
		}
		printFig6("Figure 6(a): aged mmap throughput (GB/s)", res.Mmap)
		printFig6("Figure 6(b): POSIX weak (metadata consistency) throughput (GB/s)", res.Weak)
		printFig6("Figure 6(c): POSIX strong (data consistency) throughput (GB/s)", res.Strong)
	}
	var fig7res *experiments.Fig7Result
	if sel("fig7") || sel("table2") {
		var err error
		fig7res, err = experiments.Fig7(cfg)
		if err != nil {
			fail("fig7", err)
		}
	}
	if sel("fig7") {
		experiments.Fig7Table(fig7res).Print(os.Stdout)
	}
	if sel("table2") {
		experiments.Table2(fig7res).Print(os.Stdout)
	}
	if sel("fig8") {
		res, err := experiments.Fig8(cfg)
		if err != nil {
			fail("fig8", err)
		}
		t := &experiments.Table{
			Title:  "Figure 8: P-ART lookup latency (ns), pre-faulted pool",
			Header: []string{"fs", "median", "p90", "p99"},
		}
		for fs, h := range res.Hist {
			t.Rows = append(t.Rows, []string{fs,
				fmt.Sprintf("%d", h.Median()),
				fmt.Sprintf("%d", h.Quantile(0.9)),
				fmt.Sprintf("%d", h.Quantile(0.99))})
		}
		t.Print(os.Stdout)
	}
	if sel("fig9") {
		relaxed := experiments.RelaxedGroup()
		strict := experiments.StrictGroup()
		res, err := experiments.Fig9(cfg, append(append([]string{}, relaxed...), strict...))
		if err != nil {
			fail("fig9", err)
		}
		experiments.Fig9Table(res, relaxed,
			"Figure 9(a-c): POSIX applications, metadata consistency (clean FS)").Print(os.Stdout)
		experiments.Fig9Table(res, strict,
			"Figure 9(d-f): POSIX applications, data+metadata consistency (clean FS)").Print(os.Stdout)
	}
	if sel("fig10") {
		series, err := experiments.Fig10(cfg)
		if err != nil {
			fail("fig10", err)
		}
		experiments.SeriesTable("Figure 10: scalability (kIOPS) vs threads",
			"threads", series, func(v float64) string { return fmt.Sprintf("%.0f", v) }).Print(os.Stdout)
	}
	if sel("recovery") {
		pts, err := experiments.Recovery(cfg)
		if err != nil {
			fail("recovery", err)
		}
		t := &experiments.Table{
			Title:  "§5.2: crash-recovery time vs file count (virtual time)",
			Header: []string{"files", "recovery"},
		}
		for _, p := range pts {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", p.Files),
				fmt.Sprintf("%.2fms", float64(p.RecoveryNS)/1e6)})
		}
		small, large, err := experiments.RecoveryDataIndependence(cfg)
		if err != nil {
			fail("recovery", err)
		}
		t.Rows = append(t.Rows, []string{"(same files, 64x data)",
			fmt.Sprintf("%.2fms vs %.2fms", float64(small)/1e6, float64(large)/1e6)})
		t.Print(os.Stdout)
	}
	if sel("defrag") {
		res, err := experiments.Defrag(cfg)
		if err != nil {
			fail("defrag", err)
		}
		t := &experiments.Table{
			Title:  "§4: background defragmentation interference",
			Header: []string{"condition", "fg mmap read GB/s"},
		}
		t.Rows = append(t.Rows,
			[]string{"alone", experiments.FmtGBs(res.BaselineGBs)},
			[]string{"with rewriter", experiments.FmtGBs(res.WithDefragGBs)},
			[]string{"slowdown", fmt.Sprintf("%.1f%% (paper: 25-40%%)", res.SlowdownPct)})
		t.Print(os.Stdout)
	}
	if sel("hpc") {
		res, err := experiments.HPC(cfg)
		if err != nil {
			fail("hpc", err)
		}
		t := &experiments.Table{
			Title:  "§4: Wang-HPC profile, aligned free space at 50% utilisation",
			Header: []string{"fs", "aligned free %"},
		}
		t.Rows = append(t.Rows,
			[]string{"ext4-DAX", fmt.Sprintf("%.0f%%", res.Ext4*100)},
			[]string{"WineFS", fmt.Sprintf("%.0f%%", res.WineFS*100)})
		t.Print(os.Stdout)
	}
	if sel("numa") {
		res, err := experiments.NUMA(cfg)
		if err != nil {
			fail("numa", err)
		}
		t := &experiments.Table{
			Title:  "§3.6: NUMA home-node policy (writer on a remote-heavy CPU)",
			Header: []string{"policy", "remote-write fraction", "write time"},
		}
		t.Rows = append(t.Rows,
			[]string{"off", fmt.Sprintf("%.0f%%", res.RemoteFracOff*100), fmt.Sprintf("%.2fms", float64(res.WriteNSOff)/1e6)},
			[]string{"on", fmt.Sprintf("%.0f%%", res.RemoteFracOn*100), fmt.Sprintf("%.2fms", float64(res.WriteNSOn)/1e6)})
		t.Print(os.Stdout)
	}
	if sel("crashmonkey") {
		total, failures := 0, 0
		for _, w := range append(crashmonkey.GenerateSeq1(), crashmonkey.GenerateSeq2()...) {
			res := crashmonkey.Run(w, crashmonkey.Config{Seed: *seed})
			total += res.CrashStates
			failures += len(res.Failures)
			for _, f := range res.Failures {
				fmt.Fprintf(os.Stderr, "  FAIL %s: %s\n", w.Name, f)
			}
		}
		fmt.Printf("\n=== §5.2: CrashMonkey ===\n  %d crash states explored, %d failures\n", total, failures)
		if failures > 0 {
			exit(1)
		}
	}
}

// benchOutputs names the optional machine-readable artifacts of a -server
// run; empty fields are skipped.
type benchOutputs struct {
	JSON     string // BENCH report
	Trace    string // Chrome trace-event file
	Metrics  string // Prometheus text dump
	Baseline string // committed BENCH report to regression-check against
}

// benchReport is the machine-readable BENCH_*.json schema. For a given
// (clients, ops, cpus, seed) tuple every work counter — ops, bytes moved,
// journal commits, faults — is exactly reproducible; only the
// contention-derived timings (SpanNS, the latency digest, LockWaitNS) wobble
// about a percent with host goroutine scheduling, because tied virtual-time
// lock arrivals are booked in real arrival order. checkAgainstBaseline
// encodes exactly that split when diffing a run against a committed
// baseline.
type benchReport struct {
	Bench        string // report schema tag, "server-mix/v1"
	Clients      int
	OpsPerClient int
	CPUs         int
	Seed         uint64
	ClientOps    int64
	ServerOps    int64
	// SpanNS is the virtual makespan (slowest client); OpsPerSec is
	// ClientOps/SpanNS in virtual seconds.
	SpanNS    int64
	OpsPerSec float64
	Latency   perf.LatencySummary
	Counters  perf.Counters
	// ClientCounters merges the client threads' perf counters; with -cached
	// this is where the page-cache hit/miss/flush activity lands. It is not
	// baseline-checked.
	ClientCounters perf.Counters
}

// runServerBench is winebench -server: the serving-throughput baseline.
// It boots one server over the in-memory transport, fans out `clients`
// concurrent ServerMix clients, and reports virtual ops/s plus the merged
// latency digest — the numbers ROADMAP's serving milestone tracks.
func runServerBench(clients, cpus int, size int64, ops int, quick, cached bool, seed uint64, out benchOutputs) error {
	if cached && out.Baseline != "" {
		return fmt.Errorf("-cached changes the op mix seen by the server; it cannot be combined with -check-against")
	}
	if ops <= 0 {
		ops = 200
		if quick {
			ops = 50
		}
	}
	if size == 0 {
		size = 2 << 30
	}
	dev := pmem.New(size)
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cpus, Mode: vfs.Strict})
	if err != nil {
		return fmt.Errorf("mkfs: %w", err)
	}
	var tracer *trace.Tracer
	if out.Trace != "" {
		f, err := os.Create(out.Trace)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		// The sink owns f: Tracer.Close writes the document and closes it.
		tracer = trace.New(trace.NewChrome(f))
	}
	srv := fileserver.New(fs, fileserver.Config{CPUs: cpus, Tracer: tracer})
	pl := fileserver.NewPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(pl) }()

	var wg sync.WaitGroup
	errs := make([]error, clients)
	results := make([]workloads.ServerMixResult, clients)
	ctxs := make([]*sim.Ctx, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := pl.Dial()
			if err != nil {
				errs[i] = err
				return
			}
			cl, err := fileserver.Dial(conn)
			if err != nil {
				errs[i] = err
				return
			}
			var target vfs.FS = cl
			if cached {
				target = pagecache.New(cl, pagecache.Config{})
			}
			cctx := sim.NewCtx(5000+i, i%cpus)
			ctxs[i] = cctx
			results[i], errs[i] = workloads.ServerMixClient(cctx, target, i,
				workloads.ServerMixConfig{Ops: ops, Seed: seed})
			if errs[i] == nil {
				errs[i] = target.Unmount(cctx)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
	}
	srv.Shutdown()
	if err := <-serveErr; err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if tracer != nil {
		if err := tracer.Close(); err != nil {
			return fmt.Errorf("trace close: %w", err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", out.Trace)
	}

	var lat perf.Histogram
	var totalOps, spanNS int64
	var clientCounters perf.Counters
	for i, r := range results {
		lat.Merge(&r.Lat)
		totalOps += r.Ops
		if r.VirtualNS > spanNS {
			spanNS = r.VirtualNS
		}
		clientCounters.Add(ctxs[i].Counters)
	}
	opsPerSec := 0.0
	if spanNS > 0 {
		// Clients run concurrently in virtual time, so the span is the
		// slowest client, not the sum.
		opsPerSec = float64(totalOps) / (float64(spanNS) / 1e9)
	}
	sum := lat.Summary()
	st := srv.Stats()
	t := &experiments.Table{
		Title:  fmt.Sprintf("Serving baseline: %d clients x %d iterations (in-memory transport)", clients, ops),
		Header: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"client ops", fmt.Sprintf("%d", totalOps)},
		[]string{"server ops", fmt.Sprintf("%d", st.Ops)},
		[]string{"throughput", fmt.Sprintf("%.0f ops/s (virtual)", opsPerSec)},
		[]string{"latency p50", fmt.Sprintf("%dns", sum.P50NS)},
		[]string{"latency p90", fmt.Sprintf("%dns", sum.P90NS)},
		[]string{"latency p99", fmt.Sprintf("%dns", sum.P99NS)},
		[]string{"latency max", fmt.Sprintf("%dns", sum.MaxNS)},
		[]string{"sessions", fmt.Sprintf("%d", st.TotalSessions)},
		[]string{"cache hit ratio", fmtHitRatio(&clientCounters)},
	)
	t.Print(os.Stdout)

	rep := benchReport{
		Bench:          "server-mix/v1",
		Clients:        clients,
		OpsPerClient:   ops,
		CPUs:           cpus,
		Seed:           seed,
		ClientOps:      totalOps,
		ServerOps:      st.Ops,
		SpanNS:         spanNS,
		OpsPerSec:      opsPerSec,
		Latency:        sum,
		Counters:       st.Counters,
		ClientCounters: clientCounters,
	}
	if out.JSON != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out.JSON, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Printf("wrote BENCH report to %s\n", out.JSON)
	}
	if out.Metrics != "" {
		reg := metrics.NewRegistry()
		reg.Register(metrics.CollectorFunc(func() []metrics.Family {
			fams := []metrics.Family{
				metrics.Counter("winebench_ops_total", "Wire requests the server dispatched.", float64(st.Ops)),
				metrics.SummaryFamily("winebench_request_latency_ns",
					"Client-observed request latency in virtual nanoseconds.", sum),
			}
			return append(fams, metrics.CountersFamilies("winebench_perf", &st.Counters)...)
		}))
		f, err := os.Create(out.Metrics)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		if err := reg.WritePrometheus(f); err != nil {
			f.Close()
			return fmt.Errorf("metrics: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		fmt.Printf("wrote Prometheus dump to %s\n", out.Metrics)
	}
	if out.Baseline != "" {
		if err := checkAgainstBaseline(rep, out.Baseline); err != nil {
			return fmt.Errorf("baseline %s: %w", out.Baseline, err)
		}
		fmt.Printf("baseline check OK against %s\n", out.Baseline)
	}
	return nil
}

// lockWaitTolerance bounds how far the contention-derived numbers (span,
// latency digest, LockWaitNS) may drift from the baseline: tied virtual-time
// lock arrivals are booked in real arrival order, so these wobble about a
// percent run to run. Everything else must match exactly.
const lockWaitTolerance = 0.25

// checkAgainstBaseline compares a finished run against a committed BENCH
// report: configuration and every work counter must match exactly, while
// contention-derived timings get lockWaitTolerance of slack.
func checkAgainstBaseline(rep benchReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Bench != base.Bench || rep.Clients != base.Clients ||
		rep.OpsPerClient != base.OpsPerClient || rep.CPUs != base.CPUs || rep.Seed != base.Seed {
		return fmt.Errorf("configuration mismatch: run (%s %d clients x %d ops, %d cpus, seed %d) vs baseline (%s %d x %d, %d cpus, seed %d)",
			rep.Bench, rep.Clients, rep.OpsPerClient, rep.CPUs, rep.Seed,
			base.Bench, base.Clients, base.OpsPerClient, base.CPUs, base.Seed)
	}
	var bad []string
	exact := func(name string, got, want int64) {
		if got != want {
			bad = append(bad, fmt.Sprintf("%s = %d, baseline %d", name, got, want))
		}
	}
	within := func(name string, got, want float64) {
		if want == 0 && got == 0 {
			return
		}
		if want == 0 || got < want*(1-lockWaitTolerance) || got > want*(1+lockWaitTolerance) {
			bad = append(bad, fmt.Sprintf("%s = %g, baseline %g (>%.0f%% off)", name, got, want, lockWaitTolerance*100))
		}
	}
	exact("ClientOps", rep.ClientOps, base.ClientOps)
	exact("ServerOps", rep.ServerOps, base.ServerOps)
	exact("Latency.Count", rep.Latency.Count, base.Latency.Count)
	within("SpanNS", float64(rep.SpanNS), float64(base.SpanNS))
	within("OpsPerSec", rep.OpsPerSec, base.OpsPerSec)
	within("Latency.MeanNS", rep.Latency.MeanNS, base.Latency.MeanNS)
	within("Latency.P50NS", float64(rep.Latency.P50NS), float64(base.Latency.P50NS))
	within("Latency.P99NS", float64(rep.Latency.P99NS), float64(base.Latency.P99NS))
	gotFields, wantFields := rep.Counters.Fields(), base.Counters.Fields()
	for i, f := range gotFields {
		if f.Name == "LockWaitNS" {
			within("Counters.LockWaitNS", float64(f.Value), float64(wantFields[i].Value))
			continue
		}
		exact("Counters."+f.Name, f.Value, wantFields[i].Value)
	}
	if len(bad) > 0 {
		return fmt.Errorf("%d regressions:\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
