package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/fstest"
	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// The -mmap sweep measures the subsystem the paper motivates in Figure 1:
// mapped reads over an unaged image (extents tile 2MiB chunks, faults are
// hugepage faults) versus the same sweep over a Geriatrix-aged image at
// identical utilisation (fragmented extents, 4KiB base faults, page-walk
// traffic on every access). WineFS and ext4-DAX run both conditions:
// ext4-DAX shows the aging collapse the gate enforces, WineFS the
// graceful-aging contrast (its aligned/unaligned allocator split keeps
// hugepage coverage high even aged).

// mmapMinUnagedCoverage gates hugepage coverage of the unaged sweeps.
const mmapMinUnagedCoverage = 0.90

// mmapMinAgedSlowdown gates how much more an aged ext4-DAX mapped read
// must cost relative to unaged (the paper's motivating gap).
const mmapMinAgedSlowdown = 3.0

// mmapVariant is one {file system, image age} sweep.
type mmapVariant struct {
	FS   string
	Aged bool

	// Work done (baseline-gated exactly).
	Reads       int64
	ReadBytes   int64
	HugeChunks  int
	TotalChunks int

	// Contention-free virtual timings (tolerance-checked).
	SetupNS   int64
	MapNS     int64
	SweepNS   int64
	WriteNS   int64
	NSPerRead float64

	HugeCoverage float64
	Counters     perf.Counters
}

// mmapReport is the machine-readable BENCH_mmap.json schema.
type mmapReport struct {
	Bench    string // report schema tag, "mmap/v1"
	FileMB   int
	Reads    int
	ReadSize int
	Util     float64
	CPUs     int
	Seed     uint64
	Variants []mmapVariant
	// AgedSlowdown is ext4-DAX aged NSPerRead / unaged NSPerRead.
	AgedSlowdown float64
}

// runMmapBench sweeps the four variants, prints the comparison, enforces
// the coverage and slowdown gates and optionally writes/checks the JSON
// report.
func runMmapBench(cpus int, quick bool, seed uint64, jsonOut, baseline string) error {
	cfg := workloads.MmapSweepConfig{
		FileBytes:  32 << 20,
		Reads:      10000,
		Util:       0.6,
		WritePhase: true,
		Seed:       seed,
	}
	devSize := int64(512 << 20)
	if quick {
		cfg.FileBytes = 16 << 20
		cfg.Reads = 5000
		devSize = 256 << 20
	}
	rep := mmapReport{
		Bench: "mmap/v1", FileMB: int(cfg.FileBytes >> 20), Reads: cfg.Reads,
		ReadSize: 64, Util: cfg.Util, CPUs: cpus, Seed: seed,
	}

	for _, fsName := range []string{"WineFS", "ext4-DAX"} {
		for _, aged := range []bool{false, true} {
			v, err := runMmapVariant(fsName, aged, cpus, devSize, cfg)
			if err != nil {
				return fmt.Errorf("%s aged=%v: %w", fsName, aged, err)
			}
			rep.Variants = append(rep.Variants, v)
		}
	}
	if ext4Unaged, ok := rep.variant("ext4-DAX", false); ok {
		if ext4Aged, ok := rep.variant("ext4-DAX", true); ok && ext4Unaged.NSPerRead > 0 {
			rep.AgedSlowdown = ext4Aged.NSPerRead / ext4Unaged.NSPerRead
		}
	}

	t := &experiments.Table{
		Title: fmt.Sprintf("Mapped reads, unaged vs aged at %.0f%% util: %dMiB file, %d reads x %dB",
			100*rep.Util, rep.FileMB, rep.Reads, rep.ReadSize),
		Header: []string{"metric", "winefs", "winefs-aged", "ext4-dax", "ext4-dax-aged"},
	}
	row := func(name string, f func(v *mmapVariant) string) {
		r := []string{name}
		for i := range rep.Variants {
			r = append(r, f(&rep.Variants[i]))
		}
		t.Rows = append(t.Rows, r)
	}
	row("read cost", func(v *mmapVariant) string { return fmt.Sprintf("%.0fns/read", v.NSPerRead) })
	row("hugepage coverage", func(v *mmapVariant) string { return fmt.Sprintf("%.0f%%", 100*v.HugeCoverage) })
	row("huge faults", func(v *mmapVariant) string { return fmt.Sprintf("%d", v.Counters.VMMHugeFaults) })
	row("base faults", func(v *mmapVariant) string { return fmt.Sprintf("%d", v.Counters.VMMBaseFaults) })
	row("msync bytes", func(v *mmapVariant) string { return fmt.Sprintf("%dB", v.Counters.VMMMsyncBytes) })
	t.Rows = append(t.Rows, []string{"ext4 aged slowdown", "", "", fmt.Sprintf("%.1fx", rep.AgedSlowdown), ""})
	t.Print(os.Stdout)

	for i := range rep.Variants {
		v := &rep.Variants[i]
		if !v.Aged && v.HugeCoverage < mmapMinUnagedCoverage {
			return fmt.Errorf("%s unaged hugepage coverage %.0f%% below required %.0f%%",
				v.FS, 100*v.HugeCoverage, 100*mmapMinUnagedCoverage)
		}
	}
	if rep.AgedSlowdown < mmapMinAgedSlowdown {
		return fmt.Errorf("ext4-DAX aged slowdown %.2fx below required %.1fx",
			rep.AgedSlowdown, mmapMinAgedSlowdown)
	}

	if jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Printf("wrote mmap report to %s\n", jsonOut)
	}
	if baseline != "" {
		if err := checkMmapBaseline(rep, baseline); err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		fmt.Printf("baseline check OK against %s\n", baseline)
	}
	return nil
}

func (r *mmapReport) variant(fs string, aged bool) (*mmapVariant, bool) {
	for i := range r.Variants {
		if r.Variants[i].FS == fs && r.Variants[i].Aged == aged {
			return &r.Variants[i], true
		}
	}
	return nil, false
}

// runMmapVariant makes a fresh file system and runs one sweep on it.
func runMmapVariant(fsName string, aged bool, cpus int, devSize int64, cfg workloads.MmapSweepConfig) (mmapVariant, error) {
	v := mmapVariant{FS: fsName, Aged: aged}
	maker, ok := fstest.ByName(fsName, cpus)
	if !ok {
		return v, fmt.Errorf("unknown file system %q", fsName)
	}
	dev := pmem.New(devSize)
	ctx := sim.NewCtx(1, 0)
	fs, err := maker.Make(ctx, dev)
	if err != nil {
		return v, err
	}
	cfg.Aged = aged
	res, err := workloads.RunMmapSweep(ctx, fs, cfg)
	if err != nil {
		return v, err
	}
	v.Reads, v.ReadBytes = res.Reads, res.ReadBytes
	v.HugeChunks, v.TotalChunks = res.HugeChunks, res.TotalChunks
	v.SetupNS, v.MapNS, v.SweepNS, v.WriteNS = res.SetupNS, res.MapNS, res.SweepNS, res.WriteNS
	v.NSPerRead = res.NSPerRead
	v.HugeCoverage = res.HugeCoverage()
	v.Counters = res.Counters
	return v, nil
}

// checkMmapBaseline compares a finished sweep against the committed
// BENCH_mmap.json: configuration and work counters exact, virtual timings
// within lockWaitTolerance.
func checkMmapBaseline(rep mmapReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base mmapReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Bench != base.Bench || rep.FileMB != base.FileMB || rep.Reads != base.Reads ||
		rep.ReadSize != base.ReadSize || rep.Util != base.Util || rep.CPUs != base.CPUs ||
		rep.Seed != base.Seed || len(rep.Variants) != len(base.Variants) {
		return fmt.Errorf("configuration mismatch: run (%s %dMiB x %d reads, util %.2f, %d cpus, seed %d, %d variants) vs baseline (%s %dMiB x %d, util %.2f, %d cpus, seed %d, %d variants)",
			rep.Bench, rep.FileMB, rep.Reads, rep.Util, rep.CPUs, rep.Seed, len(rep.Variants),
			base.Bench, base.FileMB, base.Reads, base.Util, base.CPUs, base.Seed, len(base.Variants))
	}
	var bad []string
	exact := func(name string, got, want int64) {
		if got != want {
			bad = append(bad, fmt.Sprintf("%s = %d, baseline %d", name, got, want))
		}
	}
	within := func(name string, got, want float64) {
		if want == 0 && got == 0 {
			return
		}
		if want == 0 || got < want*(1-lockWaitTolerance) || got > want*(1+lockWaitTolerance) {
			bad = append(bad, fmt.Sprintf("%s = %g, baseline %g (>%.0f%% off)", name, got, want, lockWaitTolerance*100))
		}
	}
	for i := range rep.Variants {
		got, want := &rep.Variants[i], &base.Variants[i]
		name := fmt.Sprintf("%s/aged=%v", got.FS, got.Aged)
		if got.FS != want.FS || got.Aged != want.Aged {
			bad = append(bad, fmt.Sprintf("variant %d is %s/aged=%v, baseline %s/aged=%v",
				i, got.FS, got.Aged, want.FS, want.Aged))
			continue
		}
		exact(name+".Reads", got.Reads, want.Reads)
		exact(name+".ReadBytes", got.ReadBytes, want.ReadBytes)
		exact(name+".HugeChunks", int64(got.HugeChunks), int64(want.HugeChunks))
		exact(name+".TotalChunks", int64(got.TotalChunks), int64(want.TotalChunks))
		within(name+".SetupNS", float64(got.SetupNS), float64(want.SetupNS))
		within(name+".MapNS", float64(got.MapNS), float64(want.MapNS))
		within(name+".SweepNS", float64(got.SweepNS), float64(want.SweepNS))
		within(name+".WriteNS", float64(got.WriteNS), float64(want.WriteNS))
		within(name+".NSPerRead", got.NSPerRead, want.NSPerRead)
		gotFields, wantFields := got.Counters.Fields(), want.Counters.Fields()
		for j, f := range gotFields {
			if f.Name == "LockWaitNS" {
				within(name+".Counters.LockWaitNS", float64(f.Value), float64(wantFields[j].Value))
				continue
			}
			exact(name+".Counters."+f.Name, f.Value, wantFields[j].Value)
		}
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "  regression: %s\n", b)
		}
		return fmt.Errorf("%d regressions vs baseline", len(bad))
	}
	return nil
}
