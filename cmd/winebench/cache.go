package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/experiments"
	"repro/internal/fileserver"
	"repro/internal/pagecache"
	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

// winebench -cache: the client-cache effectiveness sweep. The CachedMix
// workload (populate, re-read rounds, in-place rewrite) runs twice on
// identical fresh servers — once with bare fileserver clients, once with
// each client wrapped in internal/pagecache — and the re-read phase's
// virtual cost per read is compared. The acceptance gate is hard-coded:
// the cached configuration must serve re-reads at least cacheMinSpeedup
// times cheaper, on top of whatever the committed BENCH_cache.json
// baseline pins.

// cacheMinSpeedup is the required uncached/cached per-read cost ratio.
const cacheMinSpeedup = 5.0

// cacheVariant is one configuration's aggregate over all clients.
type cacheVariant struct {
	// Exactly reproducible work numbers.
	Reads        int64
	ReadBytes    int64
	BytesWritten int64
	ServerOps    int64
	// Contention-derived virtual timings (tolerance-checked).
	ReadNS        int64
	PopulateNS    int64
	RewriteNS     int64
	ReadNSPerRead float64
	// Counters merges the client threads' perf counters; the cache hit and
	// miss counts in it are exactly reproducible.
	HitRatio float64
	Counters perf.Counters
}

// cacheReport is the machine-readable BENCH_cache.json schema.
type cacheReport struct {
	Bench       string // report schema tag, "cache/v1"
	Clients     int
	Files       int
	FileKB      int
	Rounds      int
	CPUs        int
	Seed        uint64
	Uncached    cacheVariant
	Cached      cacheVariant
	ReadSpeedup float64 // uncached per-read cost / cached per-read cost
}

// runCacheBench runs both variants, prints the comparison, enforces the
// speedup gate and optionally writes/checks the JSON report.
func runCacheBench(clients, cpus int, quick bool, seed uint64, jsonOut, baseline string) error {
	cfg := workloads.CachedMixConfig{Files: 24, FileKB: 8, Rounds: 3, Seed: seed}
	if quick {
		cfg.Files = 12
	}
	rep := cacheReport{
		Bench: "cache/v1", Clients: clients, Files: cfg.Files, FileKB: cfg.FileKB,
		Rounds: cfg.Rounds, CPUs: cpus, Seed: seed,
	}
	var err error
	if rep.Uncached, err = runCacheVariant(false, clients, cpus, cfg); err != nil {
		return fmt.Errorf("uncached: %w", err)
	}
	if rep.Cached, err = runCacheVariant(true, clients, cpus, cfg); err != nil {
		return fmt.Errorf("cached: %w", err)
	}
	if rep.Cached.ReadNSPerRead > 0 {
		rep.ReadSpeedup = rep.Uncached.ReadNSPerRead / rep.Cached.ReadNSPerRead
	}

	t := &experiments.Table{
		Title: fmt.Sprintf("Client page cache: %d clients x %d files x %dKiB, %d re-read rounds",
			clients, cfg.Files, cfg.FileKB, cfg.Rounds),
		Header: []string{"metric", "uncached", "cached"},
	}
	row := func(name string, f func(v *cacheVariant) string) {
		t.Rows = append(t.Rows, []string{name, f(&rep.Uncached), f(&rep.Cached)})
	}
	row("re-reads", func(v *cacheVariant) string { return fmt.Sprintf("%d", v.Reads) })
	row("read cost", func(v *cacheVariant) string { return fmt.Sprintf("%.0fns/read", v.ReadNSPerRead) })
	row("cache hit ratio", func(v *cacheVariant) string { return fmtHitRatio(&v.Counters) })
	row("server ops", func(v *cacheVariant) string { return fmt.Sprintf("%d", v.ServerOps) })
	row("flushed", func(v *cacheVariant) string { return fmt.Sprintf("%dB", v.Counters.CacheFlushBytes) })
	t.Rows = append(t.Rows, []string{"re-read speedup", fmt.Sprintf("%.1fx", rep.ReadSpeedup), ""})
	t.Print(os.Stdout)

	if rep.ReadSpeedup < cacheMinSpeedup {
		return fmt.Errorf("re-read speedup %.2fx below required %.1fx", rep.ReadSpeedup, cacheMinSpeedup)
	}
	if jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Printf("wrote cache report to %s\n", jsonOut)
	}
	if baseline != "" {
		if err := checkCacheBaseline(rep, baseline); err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		fmt.Printf("baseline check OK against %s\n", baseline)
	}
	return nil
}

// runCacheVariant boots a fresh strict-mode server over the in-memory
// transport and fans out `clients` concurrent CachedMix clients, cached or
// not.
func runCacheVariant(cached bool, clients, cpus int, cfg workloads.CachedMixConfig) (cacheVariant, error) {
	var v cacheVariant
	dev := pmem.New(1 << 30)
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cpus, Mode: vfs.Strict})
	if err != nil {
		return v, fmt.Errorf("mkfs: %w", err)
	}
	srv := fileserver.New(fs, fileserver.Config{CPUs: cpus})
	pl := fileserver.NewPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(pl) }()

	var wg sync.WaitGroup
	errs := make([]error, clients)
	results := make([]workloads.CachedMixResult, clients)
	ctxs := make([]*sim.Ctx, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := pl.Dial()
			if err != nil {
				errs[i] = err
				return
			}
			cl, err := fileserver.Dial(conn)
			if err != nil {
				errs[i] = err
				return
			}
			var target vfs.FS = cl
			if cached {
				target = pagecache.New(cl, pagecache.Config{})
			}
			ctxs[i] = sim.NewCtx(5000+i, i%cpus)
			results[i], errs[i] = workloads.CachedMixClient(ctxs[i], target, i, cfg)
			if errs[i] == nil {
				errs[i] = target.Unmount(ctxs[i])
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return v, fmt.Errorf("client %d: %w", i, err)
		}
	}
	srv.Shutdown()
	if err := <-serveErr; err != nil {
		return v, fmt.Errorf("serve: %w", err)
	}

	for i, r := range results {
		v.Reads += r.Reads
		v.ReadBytes += r.ReadBytes
		v.BytesWritten += r.BytesWritten
		if r.ReadNS > v.ReadNS {
			v.ReadNS = r.ReadNS
		}
		if r.PopulateNS > v.PopulateNS {
			v.PopulateNS = r.PopulateNS
		}
		if r.RewriteNS > v.RewriteNS {
			v.RewriteNS = r.RewriteNS
		}
		v.Counters.Add(ctxs[i].Counters)
	}
	if v.Reads > 0 {
		// Per-read cost uses the summed (not makespan) read time: clients
		// are independent, so the mean per-read cost is what the cache
		// changes.
		var sumNS int64
		for _, r := range results {
			sumNS += r.ReadNS
		}
		v.ReadNSPerRead = float64(sumNS) / float64(v.Reads)
	}
	hits, misses := v.Counters.CacheHits, v.Counters.CacheMisses
	if hits+misses > 0 {
		v.HitRatio = float64(hits) / float64(hits+misses)
	}
	v.ServerOps = srv.Stats().Ops
	return v, nil
}

// fmtHitRatio renders a counter set's cache hit ratio for human tables;
// "-" when the run had no cache activity at all.
func fmtHitRatio(c *perf.Counters) string {
	total := c.CacheHits + c.CacheMisses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(c.CacheHits)/float64(total))
}

// checkCacheBaseline compares a finished sweep against the committed
// BENCH_cache.json: configuration and work counters exact, virtual
// timings within lockWaitTolerance.
func checkCacheBaseline(rep cacheReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base cacheReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Bench != base.Bench || rep.Clients != base.Clients || rep.Files != base.Files ||
		rep.FileKB != base.FileKB || rep.Rounds != base.Rounds || rep.CPUs != base.CPUs ||
		rep.Seed != base.Seed {
		return fmt.Errorf("configuration mismatch: run (%s %d clients x %d files x %dKiB x %d rounds, %d cpus, seed %d) vs baseline (%s %d x %d x %d x %d, %d cpus, seed %d)",
			rep.Bench, rep.Clients, rep.Files, rep.FileKB, rep.Rounds, rep.CPUs, rep.Seed,
			base.Bench, base.Clients, base.Files, base.FileKB, base.Rounds, base.CPUs, base.Seed)
	}
	var bad []string
	exact := func(name string, got, want int64) {
		if got != want {
			bad = append(bad, fmt.Sprintf("%s = %d, baseline %d", name, got, want))
		}
	}
	within := func(name string, got, want float64) {
		if want == 0 && got == 0 {
			return
		}
		if want == 0 || got < want*(1-lockWaitTolerance) || got > want*(1+lockWaitTolerance) {
			bad = append(bad, fmt.Sprintf("%s = %g, baseline %g (>%.0f%% off)", name, got, want, lockWaitTolerance*100))
		}
	}
	variant := func(name string, got, want *cacheVariant) {
		exact(name+".Reads", got.Reads, want.Reads)
		exact(name+".ReadBytes", got.ReadBytes, want.ReadBytes)
		exact(name+".BytesWritten", got.BytesWritten, want.BytesWritten)
		exact(name+".ServerOps", got.ServerOps, want.ServerOps)
		within(name+".ReadNS", float64(got.ReadNS), float64(want.ReadNS))
		within(name+".PopulateNS", float64(got.PopulateNS), float64(want.PopulateNS))
		within(name+".RewriteNS", float64(got.RewriteNS), float64(want.RewriteNS))
		within(name+".ReadNSPerRead", got.ReadNSPerRead, want.ReadNSPerRead)
		gotFields, wantFields := got.Counters.Fields(), want.Counters.Fields()
		for i, f := range gotFields {
			if f.Name == "LockWaitNS" {
				within(name+".Counters.LockWaitNS", float64(f.Value), float64(wantFields[i].Value))
				continue
			}
			exact(name+".Counters."+f.Name, f.Value, wantFields[i].Value)
		}
	}
	variant("Uncached", &rep.Uncached, &base.Uncached)
	variant("Cached", &rep.Cached, &base.Cached)
	within("ReadSpeedup", rep.ReadSpeedup, base.ReadSpeedup)
	if len(bad) > 0 {
		return fmt.Errorf("%d regressions:\n  %s", len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
