package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/defrag"
	"repro/internal/experiments"
	"repro/internal/fstest"
	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

// The -defrag bench exercises the §3.5 online defragmenter end to end
// and gates both halves of its contract:
//
//   - Recovery: on an adversarially aged image (zero free aligned
//     extents) a live mapping that faulted in entirely as base pages
//     must, after the defragmenter converges, recover at least 90% of
//     the hugepage coverage the same workload gets on an unaged image —
//     without a single refault (migrations re-form aligned extents, the
//     reactive rewrite re-lands the file on them, and the promotion
//     notification upgrades the live mapping in place).
//   - Interference: the maintenance work must cost what the paper says
//     it costs. Unthrottled, a concurrent defragmentation steals 25–40%
//     of a foreground mmap reader's bandwidth (§4); under the duty-cycle
//     pacer it must steal at most 10%.

// defragMinRecovery gates recovered coverage relative to unaged.
const defragMinRecovery = 0.90

// defragUnthrottledMin/Max bound the §4 unthrottled interference band.
const (
	defragUnthrottledMin = 25.0
	defragUnthrottledMax = 40.0
)

// defragThrottledMax bounds slowdown under the paced duty cycle.
const defragThrottledMax = 10.0

// defragThrottleBudget is the paced duty cycle the throttled
// interference variant runs at.
const defragThrottleBudget = 0.08

// defragSoakOut is the recovery half of the report.
type defragSoakOut struct {
	// Coverage per condition (exact).
	UnagedHuge, UnagedTotal int
	AgedHuge, AgedTotal     int
	DefragHuge, DefragTotal int
	RecoveredCoverage       float64

	// Defrag work done (exact).
	Passes         int64
	MigratedBlocks int64
	Recovered2M    int64
	Rewrites       int64
	Repromoted     int64

	// Virtual timings (tolerance-checked).
	SetupNS  int64
	DefragNS int64

	Counters perf.Counters
}

// defragInterfVariant is one interference run at a given budget.
type defragInterfVariant struct {
	// Budget is the defragmenter duty cycle (1 = unthrottled).
	Budget float64

	// Work done (exact).
	Rewrites       int64
	MigratedBlocks int64

	// Bandwidths in bytes per virtual ns (tolerance-checked) and the
	// derived slowdown percentage.
	BaselineBW  float64
	ContendedBW float64
	SlowdownPct float64
}

// defragReport is the machine-readable BENCH_defrag.json schema.
type defragReport struct {
	Bench        string // report schema tag, "defrag/v1"
	SoakFileMB   int
	FgMB         int
	VictimMB     int
	CPUs         int
	Seed         uint64
	Soak         defragSoakOut
	Interference []defragInterfVariant
}

// runDefragBench runs the soak and both interference variants, prints
// the comparison, enforces the gates and optionally writes/checks the
// JSON report.
func runDefragBench(cpus int, quick bool, seed uint64, jsonOut, baseline string) error {
	soakFile := int64(32 << 20)
	fgSize := int64(64 << 20)
	vicSize := int64(160 << 20)
	devSize := int64(512 << 20)
	if quick {
		soakFile = 16 << 20
		fgSize = 16 << 20
		vicSize = 32 << 20
		devSize = 256 << 20
	}
	rep := defragReport{
		Bench: "defrag/v1", SoakFileMB: int(soakFile >> 20),
		FgMB: int(fgSize >> 20), VictimMB: int(vicSize >> 20),
		CPUs: cpus, Seed: seed,
	}

	// Part A: aged-image coverage recovery.
	maker, ok := fstest.ByName("WineFS", cpus)
	if !ok {
		return fmt.Errorf("WineFS maker not registered")
	}
	mk := func(ctx *sim.Ctx) (*winefs.FS, error) {
		fs, err := maker.Make(ctx, pmem.New(devSize))
		if err != nil {
			return nil, err
		}
		return fs.(*winefs.FS), nil
	}
	soak, err := workloads.RunDefragSoak(mk, cpus, workloads.DefragSoakConfig{
		FileBytes: soakFile, Seed: seed,
	})
	if err != nil {
		return fmt.Errorf("soak: %w", err)
	}
	rep.Soak = defragSoakOut{
		UnagedHuge: soak.UnagedHuge, UnagedTotal: soak.UnagedTotal,
		AgedHuge: soak.AgedHuge, AgedTotal: soak.AgedTotal,
		DefragHuge: soak.DefragHuge, DefragTotal: soak.DefragTotal,
		RecoveredCoverage: soak.RecoveredCoverage(),
		Passes:            soak.Passes,
		MigratedBlocks:    soak.MigratedBlocks,
		Recovered2M:       soak.Recovered2M,
		Rewrites:          soak.Rewrites,
		Repromoted:        soak.Repromoted,
		SetupNS:           soak.SetupNS,
		DefragNS:          soak.DefragNS,
		Counters:          soak.Counters,
	}

	// Part B: foreground interference, unthrottled then paced.
	for _, budget := range []float64{1, defragThrottleBudget} {
		v, err := runDefragInterference(maker, cpus, devSize, fgSize, vicSize, budget)
		if err != nil {
			return fmt.Errorf("interference budget=%g: %w", budget, err)
		}
		rep.Interference = append(rep.Interference, v)
	}

	t := &experiments.Table{
		Title: fmt.Sprintf("Online defrag: %dMiB mapped file on an aged image, %dMiB foreground vs %dMiB victim",
			rep.SoakFileMB, rep.FgMB, rep.VictimMB),
		Header: []string{"metric", "value"},
	}
	cover := func(h, t int) string { return fmt.Sprintf("%d/%d chunks", h, t) }
	t.Rows = append(t.Rows,
		[]string{"unaged hugepage coverage", cover(rep.Soak.UnagedHuge, rep.Soak.UnagedTotal)},
		[]string{"aged hugepage coverage", cover(rep.Soak.AgedHuge, rep.Soak.AgedTotal)},
		[]string{"after defrag", cover(rep.Soak.DefragHuge, rep.Soak.DefragTotal)},
		[]string{"recovered coverage", fmt.Sprintf("%.0f%%", 100*rep.Soak.RecoveredCoverage)},
		[]string{"defrag passes", fmt.Sprintf("%d", rep.Soak.Passes)},
		[]string{"2MiB extents re-formed", fmt.Sprintf("%d", rep.Soak.Recovered2M)},
		[]string{"blocks migrated", fmt.Sprintf("%d", rep.Soak.MigratedBlocks)},
		[]string{"files rewritten", fmt.Sprintf("%d", rep.Soak.Rewrites)},
		[]string{"chunks re-promoted live", fmt.Sprintf("%d", rep.Soak.Repromoted)},
	)
	for _, v := range rep.Interference {
		name := "unthrottled"
		if v.Budget < 1 {
			name = fmt.Sprintf("throttled (budget %.0f%%)", 100*v.Budget)
		}
		t.Rows = append(t.Rows, []string{
			"fg slowdown, " + name, fmt.Sprintf("%.1f%%", v.SlowdownPct)})
	}
	t.Print(os.Stdout)

	// Gates.
	unaged := rep.Soak.RecoveredCoverage / covOr1(rep.Soak.UnagedHuge, rep.Soak.UnagedTotal)
	if unaged < defragMinRecovery {
		return fmt.Errorf("defrag recovered %.0f%% of unaged hugepage coverage, below required %.0f%%",
			100*unaged, 100*defragMinRecovery)
	}
	for _, v := range rep.Interference {
		if v.Budget >= 1 {
			if v.SlowdownPct < defragUnthrottledMin || v.SlowdownPct > defragUnthrottledMax {
				return fmt.Errorf("unthrottled defrag slowdown %.1f%% outside the paper's %g-%g%% band",
					v.SlowdownPct, defragUnthrottledMin, defragUnthrottledMax)
			}
		} else if v.SlowdownPct > defragThrottledMax {
			return fmt.Errorf("throttled defrag slowdown %.1f%% above the %.0f%% bound",
				v.SlowdownPct, defragThrottledMax)
		}
	}

	if jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Printf("wrote defrag report to %s\n", jsonOut)
	}
	if baseline != "" {
		if err := checkDefragBaseline(rep, baseline); err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		fmt.Printf("baseline check OK against %s\n", baseline)
	}
	return nil
}

func covOr1(huge, total int) float64 {
	if total == 0 || huge == 0 {
		return 1
	}
	return float64(huge) / float64(total)
}

// runDefragInterference mirrors the §4 experiment (internal/experiments
// Defrag) with the full online defragmenter as the background thread: a
// pre-faulted foreground mapping sweeps while the maintenance thread
// migrates and rewrites a fragmented victim, and the foreground's
// bandwidth loss is measured against an uncontended baseline.
func runDefragInterference(maker fstest.Maker, cpus int, devSize, fgSize, vicSize int64, budget float64) (defragInterfVariant, error) {
	v := defragInterfVariant{Budget: budget}
	ctx := sim.NewCtx(1, 0)
	fs, err := maker.Make(ctx, pmem.New(devSize))
	if err != nil {
		return v, err
	}
	wfs := fs.(*winefs.FS)

	// Foreground file: aligned, mapped, pre-faulted.
	fg, err := fs.Create(ctx, "/foreground")
	if err != nil {
		return v, err
	}
	if err := fg.Fallocate(ctx, 0, fgSize); err != nil {
		return v, err
	}
	fgMap, err := fg.Mmap(ctx, fgSize)
	if err != nil {
		return v, err
	}
	if err := fgMap.Prefault(ctx); err != nil {
		return v, err
	}

	// Victim file: fragmented (built from small writes), large; mapping
	// it queues the reactive rewrite the defragmenter will drain.
	vic, err := fs.Create(ctx, "/victim")
	if err != nil {
		return v, err
	}
	chunk := make([]byte, 64<<10)
	for off := int64(0); off < vicSize; off += int64(len(chunk)) {
		if _, err := vic.WriteAt(ctx, chunk, off); err != nil {
			return v, err
		}
	}
	if _, err := vic.Mmap(ctx, vicSize); err != nil {
		return v, err
	}

	read := func(c *sim.Ctx) (float64, error) {
		start := c.Now()
		passes := int64(3)
		for p := int64(0); p < passes; p++ {
			if err := fgMap.Touch(c, 0, fgSize, false); err != nil {
				return 0, err
			}
		}
		return float64(fgSize*passes) / float64(c.Now()-start), nil
	}

	// Baseline: foreground alone, starting after every setup booking.
	bctx := sim.NewCtx(100, 0)
	bctx.AdvanceTo(ctx.Now())
	base, err := read(bctx)
	if err != nil {
		return v, err
	}

	// Contended: the defragmenter and the foreground reads share the
	// same virtual-time window, starting together. The maintenance
	// thread's device-port occupations are booked first; the foreground
	// reads weave into the remaining gaps — unthrottled those gaps are
	// the §4 25-40% loss, paced they are bounded by the duty cycle.
	bg := sim.NewCtx(101, cpus-1)
	bg.AdvanceTo(bctx.Now())
	r := defrag.New(wfs, defrag.Config{Budget: budget, MaxPasses: 1})
	st, err := r.Run(bg)
	if err != nil {
		return v, err
	}
	fgc := sim.NewCtx(102, 0)
	fgc.AdvanceTo(bctx.Now())
	cont, err := read(fgc)
	if err != nil {
		return v, err
	}

	v.Rewrites = int64(st.Rewrites)
	v.MigratedBlocks = st.MigratedBlocks
	v.BaselineBW = base
	v.ContendedBW = cont
	if base > 0 {
		v.SlowdownPct = (1 - cont/base) * 100
	}
	return v, nil
}

// checkDefragBaseline compares a finished run against the committed
// BENCH_defrag.json: configuration and work counters exact, virtual
// timings and bandwidths within lockWaitTolerance.
func checkDefragBaseline(rep defragReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base defragReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Bench != base.Bench || rep.SoakFileMB != base.SoakFileMB || rep.FgMB != base.FgMB ||
		rep.VictimMB != base.VictimMB || rep.CPUs != base.CPUs || rep.Seed != base.Seed ||
		len(rep.Interference) != len(base.Interference) {
		return fmt.Errorf("configuration mismatch: run (%s soak %dMiB, fg %dMiB, victim %dMiB, %d cpus, seed %d, %d interference variants) vs baseline (%s %dMiB/%dMiB/%dMiB, %d cpus, seed %d, %d variants)",
			rep.Bench, rep.SoakFileMB, rep.FgMB, rep.VictimMB, rep.CPUs, rep.Seed, len(rep.Interference),
			base.Bench, base.SoakFileMB, base.FgMB, base.VictimMB, base.CPUs, base.Seed, len(base.Interference))
	}
	var bad []string
	exact := func(name string, got, want int64) {
		if got != want {
			bad = append(bad, fmt.Sprintf("%s = %d, baseline %d", name, got, want))
		}
	}
	within := func(name string, got, want float64) {
		if want == 0 && got == 0 {
			return
		}
		if want == 0 || got < want*(1-lockWaitTolerance) || got > want*(1+lockWaitTolerance) {
			bad = append(bad, fmt.Sprintf("%s = %g, baseline %g (>%.0f%% off)", name, got, want, lockWaitTolerance*100))
		}
	}
	g, w := &rep.Soak, &base.Soak
	exact("Soak.UnagedHuge", int64(g.UnagedHuge), int64(w.UnagedHuge))
	exact("Soak.UnagedTotal", int64(g.UnagedTotal), int64(w.UnagedTotal))
	exact("Soak.AgedHuge", int64(g.AgedHuge), int64(w.AgedHuge))
	exact("Soak.AgedTotal", int64(g.AgedTotal), int64(w.AgedTotal))
	exact("Soak.DefragHuge", int64(g.DefragHuge), int64(w.DefragHuge))
	exact("Soak.DefragTotal", int64(g.DefragTotal), int64(w.DefragTotal))
	exact("Soak.Passes", g.Passes, w.Passes)
	exact("Soak.MigratedBlocks", g.MigratedBlocks, w.MigratedBlocks)
	exact("Soak.Recovered2M", g.Recovered2M, w.Recovered2M)
	exact("Soak.Rewrites", g.Rewrites, w.Rewrites)
	exact("Soak.Repromoted", g.Repromoted, w.Repromoted)
	within("Soak.SetupNS", float64(g.SetupNS), float64(w.SetupNS))
	within("Soak.DefragNS", float64(g.DefragNS), float64(w.DefragNS))
	gotFields, wantFields := g.Counters.Fields(), w.Counters.Fields()
	for j, f := range gotFields {
		if f.Name == "LockWaitNS" {
			within("Soak.Counters.LockWaitNS", float64(f.Value), float64(wantFields[j].Value))
			continue
		}
		exact("Soak.Counters."+f.Name, f.Value, wantFields[j].Value)
	}
	for i := range rep.Interference {
		gv, wv := &rep.Interference[i], &base.Interference[i]
		name := fmt.Sprintf("Interference[budget=%g]", gv.Budget)
		if gv.Budget != wv.Budget {
			bad = append(bad, fmt.Sprintf("interference %d budget %g, baseline %g", i, gv.Budget, wv.Budget))
			continue
		}
		exact(name+".Rewrites", gv.Rewrites, wv.Rewrites)
		exact(name+".MigratedBlocks", gv.MigratedBlocks, wv.MigratedBlocks)
		within(name+".BaselineBW", gv.BaselineBW, wv.BaselineBW)
		within(name+".ContendedBW", gv.ContendedBW, wv.ContendedBW)
		within(name+".SlowdownPct", gv.SlowdownPct, wv.SlowdownPct)
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "  regression: %s\n", b)
		}
		return fmt.Errorf("%d regressions vs baseline", len(bad))
	}
	return nil
}
