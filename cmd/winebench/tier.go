package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

// The -tier sweep measures the graceful-degradation curve of the PM+SSD
// tiering policy: the same zipfian read/write mix runs at working sets of
// {0.5, 1, 1.5, 2}x the PM tier's data capacity, once on a tiered mount
// (PM + simulated slow device, interleaved migration passes) and once on
// an all-in-PM control big enough to hold everything. At <=1x the tiers
// should be indistinguishable; past 1x the skewed access pattern keeps
// the hot head PM-resident and throughput must degrade with the miss
// ratio instead of collapsing to raw SSD speed — the gate below holds the
// 2x point to at least a quarter of the all-PM control.

// tierMinDegradedRatio gates tiered/control throughput for every
// working set at or past PM capacity, 2x included.
const tierMinDegradedRatio = 0.25

// tierMinFitRatio gates the working sets that fit in PM (<1x): tiering
// machinery that slows the fitting case down materially is a bug. The
// exactly-1x point is NOT held to this: a working set equal to the PM
// data capacity cannot be fully PM-resident under the water-mark policy
// (the high-low band keeps ~20%% of PM as spill headroom by design), so
// 1x is judged as the first degraded point instead.
const tierMinFitRatio = 0.75

// tierVariant is one {working-set fraction, tiered?} sweep.
type tierVariant struct {
	Frac   float64
	Tiered bool

	// Work done (baseline-gated exactly).
	Files           int
	WorkingSetBytes int64
	Ops             int64
	Bytes           int64
	Passes          int64

	// Contention-free virtual timings (tolerance-checked).
	SetupNS int64
	SweepNS int64
	NSPerOp float64

	// GBps is Bytes/SweepNS — the headline curve.
	GBps float64

	// End-of-sweep occupancy (tiered variants only).
	PMFreeBlocks   int64
	SlowFreeBlocks int64

	// SetupCounters covers laying out the working set (allocation spill
	// lives here); Counters covers the measured sweep thread (cold-miss
	// slow-device traffic, faults); MigrCounters covers the background
	// migration thread (demotions/promotions and their copy traffic).
	SetupCounters perf.Counters
	Counters      perf.Counters
	MigrCounters  perf.Counters
}

// tierReport is the machine-readable BENCH_tier.json schema.
type tierReport struct {
	Bench     string // report schema tag, "tier/v1"
	PMMB      int    // tiered variants' PM device size
	SlowMB    int    // slow device size
	ControlMB int    // all-in-PM control device size
	Ops       int
	OpSize    int
	ReadFrac  float64
	HotData   float64
	HotAccess float64
	PassEvery int
	CPUs      int
	Seed      uint64
	Variants  []tierVariant
	// Ratios[i] is tiered GBps / control GBps at Fracs[i].
	Fracs  []float64
	Ratios []float64
}

// runTierBench sweeps the working-set fractions, prints the degradation
// curve, enforces the gates and optionally writes/checks the JSON report.
func runTierBench(cpus int, quick bool, seed uint64, jsonOut, baseline string) error {
	devSize := int64(256 << 20)
	cfg := workloads.TieredSweepConfig{Ops: 20000, Seed: seed}
	if quick {
		devSize = 128 << 20
		cfg.Ops = 8000
	}
	slowSize := 2 * devSize
	controlSize := 3 * devSize
	fracs := []float64{0.5, 1.0, 1.5, 2.0}

	rep := tierReport{
		Bench: "tier/v1",
		PMMB:  int(devSize >> 20), SlowMB: int(slowSize >> 20), ControlMB: int(controlSize >> 20),
		Ops: cfg.Ops, OpSize: 4096, ReadFrac: 0.9, HotData: 0.1, HotAccess: 0.9, PassEvery: 2000,
		CPUs: cpus, Seed: seed, Fracs: fracs,
	}

	for _, frac := range fracs {
		tv, cv, err := runTierPair(frac, cpus, devSize, slowSize, controlSize, cfg)
		if err != nil {
			return fmt.Errorf("frac %.1f: %w", frac, err)
		}
		rep.Variants = append(rep.Variants, tv, cv)
		ratio := 0.0
		if cv.GBps > 0 {
			ratio = tv.GBps / cv.GBps
		}
		rep.Ratios = append(rep.Ratios, ratio)
	}

	t := &experiments.Table{
		Title: fmt.Sprintf("Tiered PM+SSD vs all-in-PM: 90/10 hotspot, %d ops x %dB, %d%% reads, PM %dMiB + slow %dMiB",
			rep.Ops, rep.OpSize, int(100*rep.ReadFrac), rep.PMMB, rep.SlowMB),
		Header: []string{"working set", "tiered GB/s", "all-PM GB/s", "ratio", "spilled blks", "slow reads", "demoted", "promoted"},
	}
	for i, frac := range fracs {
		tv := &rep.Variants[2*i]
		cv := &rep.Variants[2*i+1]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1fx PM", frac),
			fmt.Sprintf("%.3f", tv.GBps),
			fmt.Sprintf("%.3f", cv.GBps),
			fmt.Sprintf("%.0f%%", 100*rep.Ratios[i]),
			fmt.Sprintf("%d", tv.SetupCounters.AllocSpillBlocks+tv.Counters.AllocSpillBlocks),
			fmt.Sprintf("%d", tv.Counters.SlowReads),
			fmt.Sprintf("%d", tv.MigrCounters.TierDemotedBlocks),
			fmt.Sprintf("%d", tv.MigrCounters.TierPromotedBlocks),
		})
	}
	t.Print(os.Stdout)

	// Gates. The 2x point is the headline: PM completely full, half the
	// working set cold on the SSD tier, and the zipfian hot head still has
	// to be served at PM speed.
	readLat := tier.DefaultSlowConfig(1).ReadLatNS
	for i, frac := range fracs {
		tv := &rep.Variants[2*i]
		ratio := rep.Ratios[i]
		if frac < 1.0 && ratio < tierMinFitRatio {
			return fmt.Errorf("working set %.1fx PM fits, but tiered throughput is %.0f%% of all-PM (want >= %.0f%%)",
				frac, 100*ratio, 100*tierMinFitRatio)
		}
		if frac >= 1.0 && ratio < tierMinDegradedRatio {
			return fmt.Errorf("graceful degradation gate: at %.1fx PM tiered throughput is %.0f%% of all-PM (want >= %.0f%%)",
				frac, 100*ratio, 100*tierMinDegradedRatio)
		}
		if frac >= 2.0 && tv.SetupCounters.AllocSpillBlocks == 0 {
			return fmt.Errorf("at %.1fx PM no allocation spilled to the slow tier", frac)
		}
		if frac > 1.0 {
			if tv.Counters.SlowReadBytes == 0 {
				return fmt.Errorf("at %.1fx PM the sweep never read the slow tier (cold misses uncharged?)", frac)
			}
			// Every slow-tier read advances the accessing thread's clock by
			// at least the device's command latency, so the sweep time must
			// cover SlowReads * ReadLatNS — the "cold reads really pay
			// slow-tier costs" invariant.
			if minNS := tv.Counters.SlowReads * readLat; tv.SweepNS < minNS {
				return fmt.Errorf("at %.1fx PM sweep took %dns but %d slow reads cost at least %dns — slow tier undercharged",
					frac, tv.SweepNS, tv.Counters.SlowReads, minNS)
			}
		}
	}

	if jsonOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(buf, '\n'), 0o644); err != nil {
			return fmt.Errorf("json: %w", err)
		}
		fmt.Printf("wrote tier report to %s\n", jsonOut)
	}
	if baseline != "" {
		if err := checkTierBaseline(rep, baseline); err != nil {
			return fmt.Errorf("baseline %s: %w", baseline, err)
		}
		fmt.Printf("baseline check OK against %s\n", baseline)
	}
	return nil
}

// runTierPair runs one working-set fraction on a fresh tiered mount and a
// fresh all-in-PM control. The working set is derived from the tiered
// mount's PM data capacity and reused verbatim for the control, so both
// sweeps touch exactly the same bytes.
func runTierPair(frac float64, cpus int, devSize, slowSize, controlSize int64, cfg workloads.TieredSweepConfig) (tierVariant, tierVariant, error) {
	var tv, cv tierVariant

	dev := pmem.New(devSize)
	slow := tier.NewSlow(tier.DefaultSlowConfig(slowSize))
	defer slow.Release()
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cpus, Tier: &winefs.TierOptions{Slow: slow}})
	if err != nil {
		return tv, cv, fmt.Errorf("tiered mkfs: %w", err)
	}
	st, _ := fs.TierStats()
	cfg.WorkingSetBytes = int64(frac * float64(st.PMTotalBlocks*winefs.BlockSize))

	res, err := workloads.RunTieredSweep(ctx, fs, cfg)
	if err != nil {
		return tv, cv, fmt.Errorf("tiered sweep: %w", err)
	}
	tv = tierVariantFrom(frac, true, res)

	cdev := pmem.New(controlSize)
	cctx := sim.NewCtx(1, 0)
	cfs, err := winefs.Mkfs(cctx, cdev, winefs.Options{CPUs: cpus})
	if err != nil {
		return tv, cv, fmt.Errorf("control mkfs: %w", err)
	}
	cres, err := workloads.RunTieredSweep(cctx, cfs, cfg)
	if err != nil {
		return tv, cv, fmt.Errorf("control sweep: %w", err)
	}
	cv = tierVariantFrom(frac, false, cres)
	return tv, cv, nil
}

func tierVariantFrom(frac float64, tiered bool, res workloads.TieredSweepResult) tierVariant {
	v := tierVariant{
		Frac: frac, Tiered: tiered,
		Files: res.Files, WorkingSetBytes: res.WorkingSetBytes,
		Ops: res.Ops, Bytes: res.Bytes, Passes: res.Passes,
		SetupNS: res.SetupNS, SweepNS: res.SweepNS, NSPerOp: res.NSPerOp,
		GBps:          res.GBps(),
		SetupCounters: res.SetupCounters, Counters: res.Counters, MigrCounters: res.MigrCounters,
	}
	if res.TierOK {
		v.PMFreeBlocks = res.Tier.PMFreeBlocks
		v.SlowFreeBlocks = res.Tier.SlowFreeBlocks
	}
	return v
}

// checkTierBaseline compares a finished sweep against the committed
// BENCH_tier.json: configuration and work counters exact, virtual timings
// within lockWaitTolerance.
func checkTierBaseline(rep tierReport, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base tierReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Bench != base.Bench || rep.PMMB != base.PMMB || rep.SlowMB != base.SlowMB ||
		rep.ControlMB != base.ControlMB || rep.Ops != base.Ops || rep.OpSize != base.OpSize ||
		rep.ReadFrac != base.ReadFrac || rep.HotData != base.HotData || rep.HotAccess != base.HotAccess ||
		rep.PassEvery != base.PassEvery ||
		rep.CPUs != base.CPUs || rep.Seed != base.Seed || len(rep.Variants) != len(base.Variants) {
		return fmt.Errorf("configuration mismatch: run (%s PM %dMiB + slow %dMiB, %d ops, %d cpus, seed %d, %d variants) vs baseline (%s PM %dMiB + slow %dMiB, %d ops, %d cpus, seed %d, %d variants)",
			rep.Bench, rep.PMMB, rep.SlowMB, rep.Ops, rep.CPUs, rep.Seed, len(rep.Variants),
			base.Bench, base.PMMB, base.SlowMB, base.Ops, base.CPUs, base.Seed, len(base.Variants))
	}
	var bad []string
	exact := func(name string, got, want int64) {
		if got != want {
			bad = append(bad, fmt.Sprintf("%s = %d, baseline %d", name, got, want))
		}
	}
	within := func(name string, got, want float64) {
		if want == 0 && got == 0 {
			return
		}
		if want == 0 || got < want*(1-lockWaitTolerance) || got > want*(1+lockWaitTolerance) {
			bad = append(bad, fmt.Sprintf("%s = %g, baseline %g (>%.0f%% off)", name, got, want, lockWaitTolerance*100))
		}
	}
	for i := range rep.Variants {
		got, want := &rep.Variants[i], &base.Variants[i]
		name := fmt.Sprintf("%.1fx/tiered=%v", got.Frac, got.Tiered)
		if got.Frac != want.Frac || got.Tiered != want.Tiered {
			bad = append(bad, fmt.Sprintf("variant %d is %.1fx/tiered=%v, baseline %.1fx/tiered=%v",
				i, got.Frac, got.Tiered, want.Frac, want.Tiered))
			continue
		}
		exact(name+".Files", int64(got.Files), int64(want.Files))
		exact(name+".WorkingSetBytes", got.WorkingSetBytes, want.WorkingSetBytes)
		exact(name+".Ops", got.Ops, want.Ops)
		exact(name+".Bytes", got.Bytes, want.Bytes)
		exact(name+".Passes", got.Passes, want.Passes)
		exact(name+".PMFreeBlocks", got.PMFreeBlocks, want.PMFreeBlocks)
		exact(name+".SlowFreeBlocks", got.SlowFreeBlocks, want.SlowFreeBlocks)
		within(name+".SetupNS", float64(got.SetupNS), float64(want.SetupNS))
		within(name+".SweepNS", float64(got.SweepNS), float64(want.SweepNS))
		within(name+".NSPerOp", got.NSPerOp, want.NSPerOp)
		for _, pair := range []struct {
			label string
			g, w  *perf.Counters
		}{{".Setup.", &got.SetupCounters, &want.SetupCounters}, {".Sweep.", &got.Counters, &want.Counters},
			{".Migr.", &got.MigrCounters, &want.MigrCounters}} {
			gf, wf := pair.g.Fields(), pair.w.Fields()
			for j, f := range gf {
				if f.Name == "LockWaitNS" {
					within(name+pair.label+f.Name, float64(f.Value), float64(wf[j].Value))
					continue
				}
				exact(name+pair.label+f.Name, f.Value, wf[j].Value)
			}
		}
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintf(os.Stderr, "  regression: %s\n", b)
		}
		return fmt.Errorf("%d regressions vs baseline", len(bad))
	}
	return nil
}
