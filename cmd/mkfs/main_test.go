package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"1024", 1024, false},
		{"4k", 4 << 10, false},
		{"16M", 16 << 20, false},
		{"2g", 2 << 30, false},
		{" 1G ", 1 << 30, false},
		{"", 0, true},
		{"abc", 0, true},
		{"1.5g", 0, true},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseSize(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("parseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}
