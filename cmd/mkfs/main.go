// Command mkfs creates a simulated persistent-memory device image and
// formats it with WineFS.
//
// Usage:
//
//	mkfs -img wine.img [-size 1g] [-cpus 8] [-inodes N] [-relaxed]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

func parseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "g"):
		mult = 1 << 30
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult = 1 << 20
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult = 1 << 10
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

func main() {
	img := flag.String("img", "", "output image path (required)")
	size := flag.String("size", "1g", "device size (k/m/g suffixes)")
	cpus := flag.Int("cpus", 8, "per-CPU journals and pools")
	inodes := flag.Int64("inodes", 0, "inodes per CPU (0 = auto)")
	relaxed := flag.Bool("relaxed", false, "metadata-only consistency mode")
	flag.Parse()
	if *img == "" {
		flag.Usage()
		os.Exit(2)
	}
	bytes, err := parseSize(*size)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkfs: bad size: %v\n", err)
		os.Exit(2)
	}
	dev := pmem.New(bytes)
	ctx := sim.NewCtx(1, 0)
	mode := vfs.Strict
	if *relaxed {
		mode = vfs.Relaxed
	}
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{
		CPUs: *cpus, Mode: mode, InodesPerCPU: *inodes,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mkfs: %v\n", err)
		os.Exit(1)
	}
	if err := fs.Unmount(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "mkfs: unmount: %v\n", err)
		os.Exit(1)
	}
	if err := dev.Save(*img); err != nil {
		fmt.Fprintf(os.Stderr, "mkfs: save: %v\n", err)
		os.Exit(1)
	}
	st := fs.StatFS(ctx)
	fmt.Printf("mkfs: WineFS (%s) on %s: %d blocks, %d free, %d aligned 2MiB extents\n",
		mode, *img, st.TotalBlocks, st.FreeBlocks, st.FreeAligned2M)
}
