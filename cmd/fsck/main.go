// Command fsck checks a WineFS image for structural consistency: journal
// quiescence after recovery, extent ownership, directory connectivity and
// link counts.
//
// Usage:
//
//	fsck -img wine.img [-recover]
//
// With -recover, uncommitted journal transactions are rolled back (a real
// mount) before checking, and the recovered image is saved back.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

func main() {
	img := flag.String("img", "", "image path (required)")
	doRecover := flag.Bool("recover", false, "run journal recovery before checking")
	cpus := flag.Int("cpus", 8, "CPUs the image was formatted with")
	flag.Parse()
	if *img == "" {
		flag.Usage()
		os.Exit(2)
	}
	dev, err := pmem.Load(*img)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
		os.Exit(1)
	}
	if *doRecover {
		ctx := sim.NewCtx(1, 0)
		fs, err := winefs.Mount(ctx, dev, winefs.Options{CPUs: *cpus})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsck: recovery mount failed: %v\n", err)
			os.Exit(1)
		}
		if err := fs.Unmount(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fsck: unmount: %v\n", err)
			os.Exit(1)
		}
		if err := dev.Save(*img); err != nil {
			fmt.Fprintf(os.Stderr, "fsck: save: %v\n", err)
			os.Exit(1)
		}
	}
	rep := winefs.Check(dev)
	fmt.Printf("fsck: %d files, %d dirs, %d used blocks\n", rep.Files, rep.Dirs, rep.UsedBlocks)
	if rep.OK() {
		fmt.Println("fsck: clean")
		return
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(os.Stderr, "fsck: %s\n", e)
	}
	os.Exit(1)
}
