// Command fsck checks a WineFS image for structural consistency: journal
// quiescence after recovery, extent ownership, directory connectivity and
// link counts.
//
// Usage:
//
//	fsck -img wine.img [-recover] [-repair] [-json]
//
// With -recover, uncommitted journal transactions are rolled back (a real
// mount) before checking, and the recovered image is saved back.
//
// With -repair, the offline repairing fsck runs first: poisoned journal
// tails are cleared, unreadable inode slots zeroed, corrupt extent lists
// truncated, unreachable inodes quarantined into /lost+found, and link
// counts recomputed; the repaired image is saved back.
//
// With -json, the report(s) are printed as a single JSON object on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

// report is the -json output shape.
type report struct {
	Files      int                  `json:"files"`
	Dirs       int                  `json:"dirs"`
	UsedBlocks int64                `json:"used_blocks"`
	Clean      bool                 `json:"clean"`
	Degraded   string               `json:"degraded,omitempty"`
	Errors     []string             `json:"errors,omitempty"`
	Repair     *winefs.RepairReport `json:"repair,omitempty"`
}

func main() {
	img := flag.String("img", "", "image path (required)")
	doRecover := flag.Bool("recover", false, "run journal recovery before checking")
	doRepair := flag.Bool("repair", false, "run the offline repairing fsck before checking")
	asJSON := flag.Bool("json", false, "emit the report as JSON")
	cpus := flag.Int("cpus", 8, "CPUs the image was formatted with")
	flag.Parse()
	if *img == "" {
		flag.Usage()
		os.Exit(2)
	}
	dev, err := pmem.Load(*img)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
		os.Exit(1)
	}
	var repairRep *winefs.RepairReport
	if *doRepair {
		repairRep, err = winefs.Repair(dev)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsck: repair failed: %v\n", err)
			os.Exit(1)
		}
		if err := dev.Save(*img); err != nil {
			fmt.Fprintf(os.Stderr, "fsck: save: %v\n", err)
			os.Exit(1)
		}
	}
	degradedReason := ""
	if *doRecover {
		ctx := sim.NewCtx(1, 0)
		fs, err := winefs.Mount(ctx, dev, winefs.Options{CPUs: *cpus})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fsck: recovery mount failed: %v\n", err)
			os.Exit(1)
		}
		if reason, degraded := fs.Degraded(); degraded {
			degradedReason = reason
			fmt.Fprintf(os.Stderr, "fsck: mount degraded to read-only: %s (try -repair)\n", reason)
		} else if err := fs.Unmount(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fsck: unmount: %v\n", err)
			os.Exit(1)
		}
		if err := dev.Save(*img); err != nil {
			fmt.Fprintf(os.Stderr, "fsck: save: %v\n", err)
			os.Exit(1)
		}
	}
	rep := winefs.Check(dev)
	if *asJSON {
		out := report{
			Files:      rep.Files,
			Dirs:       rep.Dirs,
			UsedBlocks: rep.UsedBlocks,
			Clean:      rep.OK() && degradedReason == "",
			Degraded:   degradedReason,
			Errors:     rep.Errors,
			Repair:     repairRep,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "fsck: %v\n", err)
			os.Exit(1)
		}
		if !out.Clean {
			os.Exit(1)
		}
		return
	}
	fmt.Printf("fsck: %d files, %d dirs, %d used blocks\n", rep.Files, rep.Dirs, rep.UsedBlocks)
	if repairRep != nil {
		fmt.Printf("fsck: repair: %d journals rolled back, %d cleared, %d inodes zeroed, %d extent lists truncated, %d orphans quarantined, %d nlinks fixed\n",
			repairRep.JournalsRolledBack, len(repairRep.JournalsCleared), len(repairRep.InodesZeroed),
			len(repairRep.ExtentsTruncated), len(repairRep.Orphans), repairRep.NlinksFixed)
		for _, n := range repairRep.Notes {
			fmt.Printf("fsck: repair: %s\n", n)
		}
	}
	if rep.OK() && degradedReason == "" {
		fmt.Println("fsck: clean")
		return
	}
	for _, e := range rep.Errors {
		fmt.Fprintf(os.Stderr, "fsck: %s\n", e)
	}
	os.Exit(1)
}
