// Package splitfs models SplitFS (in its default POSIX mode): a user-space
// layer that accelerates data operations — appends go to staged memory
// with no journal work, relinked into the file at fsync — on top of
// ext4-DAX, from which it inherits the JBD2 journal for all namespace
// operations ("SplitFS inherits low scalability for creates and deletes as
// it relies on ext4-DAX's JBD2 journal", §5.5) and ext4's allocation and
// fault behaviour.
package splitfs

import (
	"repro/internal/alloc"
	"repro/internal/fsbase"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

const dataStartBlk = 37

// New mounts a fresh SplitFS (over a modelled ext4-DAX) on dev.
func New(dev *pmem.Device) *fsbase.FS {
	total := dev.Size()/fsbase.BlockSize - dataStartBlk
	h := &hooks{
		model: dev.Model(),
		pool:  fsbase.NewLockedPool(dataStartBlk, total),
		jbd2:  fsbase.NewJBD2(dev.Model()),
	}
	return fsbase.New(dev, h)
}

type hooks struct {
	model *pmem.CostModel
	pool  *fsbase.LockedPool
	jbd2  *fsbase.JBD2
}

func (h *hooks) Name() string                { return "SplitFS" }
func (h *hooks) Mode() vfs.ConsistencyMode   { return vfs.Relaxed }
func (h *hooks) TotalBlocks() int64          { return h.pool.Total() }
func (h *hooks) FreeBlocks() int64           { return h.pool.Free() }
func (h *hooks) FreeExtents() []alloc.Extent { return h.pool.Extents() }

func (h *hooks) Alloc(ctx *sim.Ctx, blocks int64, hint fsbase.AllocHint) ([]alloc.Extent, error) {
	// ext4-DAX allocation underneath.
	ex, ok := h.pool.Take(ctx, blocks, fsbase.Strategy{Goal: hint.Goal, TryAligned: hint.Large, AlignWindow: 16 * alloc.BlocksPerHuge, NextFit: true})
	if !ok {
		return nil, vfs.ErrNoSpace
	}
	return ex, nil
}

func (h *hooks) Free(ctx *sim.Ctx, ex []alloc.Extent) { h.pool.Release(ctx, ex) }

func (h *hooks) MetaOp(ctx *sim.Ctx, n *fsbase.Node, entries int, kind fsbase.MetaKind) {
	if kind == fsbase.MetaData {
		// Data-path metadata is staged in user space: a cheap logged write,
		// paid for properly at fsync's relink.
		ctx.Advance(int64(entries) * h.model.WriteLat64 / 2)
		ctx.Counters.JournalBytes += int64(entries) * 64
		return
	}
	// Namespace operations fall through to ext4's JBD2.
	h.jbd2.Log(ctx, entries)
}

func (h *hooks) DirLookup(ctx *sim.Ctx, entries int) { ctx.Advance(180) }

func (h *hooks) Overwrite(ctx *sim.Ctx, n *fsbase.Node, off, length int64) fsbase.OverwriteAction {
	return fsbase.InPlace
}

func (h *hooks) DataWrite(ctx *sim.Ctx, n *fsbase.Node, length int64) {}

// relinkFixedNS is the fixed cost of SplitFS's relink call at fsync.
const relinkFixedNS = 1500

func (h *hooks) Fsync(ctx *sim.Ctx, n *fsbase.Node, dirty int64) {
	// Relink staged data via the ext4 journal.
	ctx.Advance(relinkFixedNS)
	h.jbd2.Commit(ctx, dirty/8) // staged writes were already persistent
}

func (h *hooks) ZeroOnFault() bool                     { return true }
func (h *hooks) OnCreate(ctx *sim.Ctx, n *fsbase.Node) {}
func (h *hooks) OnDelete(ctx *sim.Ctx, n *fsbase.Node) {}
