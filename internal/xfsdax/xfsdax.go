// Package xfsdax models xfs with DAX. Per the paper's footnote 1, xfs-DAX
// "completely disregards alignment even for large extents" and so cannot
// obtain hugepages even on a clean file system; it shares the
// stop-the-world-log fsync behaviour and relaxed guarantees of ext4-DAX.
package xfsdax

import (
	"repro/internal/alloc"
	"repro/internal/fsbase"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// dataStartBlk mirrors xfs AG headers: the data area begins off-boundary.
const dataStartBlk = 41

// New mounts a fresh xfs-DAX instance over dev.
func New(dev *pmem.Device) *fsbase.FS {
	total := dev.Size()/fsbase.BlockSize - dataStartBlk
	h := &hooks{
		model: dev.Model(),
		pool:  fsbase.NewLockedPool(dataStartBlk, total),
		log:   fsbase.NewJBD2(dev.Model()),
	}
	return fsbase.New(dev, h)
}

type hooks struct {
	model *pmem.CostModel
	pool  *fsbase.LockedPool
	log   *fsbase.JBD2
}

func (h *hooks) Name() string                { return "xfs-DAX" }
func (h *hooks) Mode() vfs.ConsistencyMode   { return vfs.Relaxed }
func (h *hooks) TotalBlocks() int64          { return h.pool.Total() }
func (h *hooks) FreeBlocks() int64           { return h.pool.Free() }
func (h *hooks) FreeExtents() []alloc.Extent { return h.pool.Extents() }

func (h *hooks) Alloc(ctx *sim.Ctx, blocks int64, hint fsbase.AllocHint) ([]alloc.Extent, error) {
	// Contiguity only — never any alignment attempt (footnote 1).
	ex, ok := h.pool.Take(ctx, blocks, fsbase.Strategy{Goal: hint.Goal, NextFit: true})
	if !ok {
		return nil, vfs.ErrNoSpace
	}
	return ex, nil
}

func (h *hooks) Free(ctx *sim.Ctx, ex []alloc.Extent) { h.pool.Release(ctx, ex) }

func (h *hooks) MetaOp(ctx *sim.Ctx, n *fsbase.Node, entries int, kind fsbase.MetaKind) {
	h.log.Log(ctx, entries)
}

func (h *hooks) DirLookup(ctx *sim.Ctx, entries int) { ctx.Advance(190) }

func (h *hooks) Overwrite(ctx *sim.Ctx, n *fsbase.Node, off, length int64) fsbase.OverwriteAction {
	return fsbase.InPlace
}

func (h *hooks) DataWrite(ctx *sim.Ctx, n *fsbase.Node, length int64) {}

func (h *hooks) Fsync(ctx *sim.Ctx, n *fsbase.Node, dirty int64) {
	h.log.Commit(ctx, dirty)
}

func (h *hooks) ZeroOnFault() bool                     { return true }
func (h *hooks) OnCreate(ctx *sim.Ctx, n *fsbase.Node) {}
func (h *hooks) OnDelete(ctx *sim.Ctx, n *fsbase.Node) {}
