package perf

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestCountersAddReset(t *testing.T) {
	a := &Counters{PageFaults: 3, TLBMisses: 7, PMWriteBytes: 100, LockWaitNS: 5}
	b := &Counters{PageFaults: 2, HugeFaults: 1, LLCMisses: 4}
	a.Add(b)
	if a.PageFaults != 5 || a.HugeFaults != 1 || a.TLBMisses != 7 || a.LLCMisses != 4 {
		t.Fatalf("add: %+v", a)
	}
	if a.TotalFaults() != 6 {
		t.Fatalf("total faults = %d", a.TotalFaults())
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
	a.Reset()
	if a.PageFaults != 0 || a.PMWriteBytes != 0 {
		t.Fatal("reset incomplete")
	}
}

// TestCountersAddExhaustive is the regression test for the silent-counter-
// loss bug: Add used to hand-enumerate fields, so any newly added field was
// dropped from cross-thread aggregation. Every field is set to a distinct
// nonzero value via reflection; after Add each must have doubled.
func TestCountersAddExhaustive(t *testing.T) {
	mk := func() *Counters {
		c := &Counters{}
		cv := reflect.ValueOf(c).Elem()
		for i := 0; i < cv.NumField(); i++ {
			cv.Field(i).SetInt(int64(i + 1))
		}
		return c
	}
	a, b := mk(), mk()
	a.Add(b)
	av := reflect.ValueOf(a).Elem()
	at := av.Type()
	for i := 0; i < av.NumField(); i++ {
		if got, want := av.Field(i).Int(), int64(2*(i+1)); got != want {
			t.Errorf("Add dropped Counters.%s: got %d, want %d", at.Field(i).Name, got, want)
		}
	}
}

// TestCountersFields: Fields must cover the whole struct, in order, with
// live values.
func TestCountersFields(t *testing.T) {
	c := &Counters{PageFaults: 7, Rewrites: 3, SyscallNS: 11}
	fields := c.Fields()
	if want := reflect.TypeOf(Counters{}).NumField(); len(fields) != want {
		t.Fatalf("Fields() covers %d of %d fields", len(fields), want)
	}
	byName := map[string]int64{}
	for _, f := range fields {
		byName[f.Name] = f.Value
	}
	if byName["PageFaults"] != 7 || byName["Rewrites"] != 3 || byName["SyscallNS"] != 11 {
		t.Fatalf("Fields() values wrong: %+v", byName)
	}
}

// TestQuantileExactRanks is the regression test for the rank off-by-one:
// with 99 samples at 10 and one at 1e6, P99 is the 99th smallest sample —
// 10 — while the buggy selection returned the max bucket.
func TestQuantileExactRanks(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		q       float64
		want    int64
	}{
		{"p99-of-100-skewed", append(repeat(10, 99), 1e6), 0.99, 10},
		{"p100-of-100-skewed", append(repeat(10, 99), 1e6), 1.0, 1e6},
		{"single-sample-median", []int64{7}, 0.5, 7},
		{"single-sample-p99", []int64{7}, 0.99, 7},
		{"two-samples-p50-is-first", []int64{10, 1000}, 0.5, 10},
		{"two-samples-p51-is-second", []int64{10, 1000}, 0.51, 1000},
		{"four-modes-p25", []int64{10, 100, 1000, 10000}, 0.25, 10},
		{"four-modes-p75", []int64{10, 100, 1000, 10000}, 0.75, 1000},
	}
	for _, tc := range cases {
		h := &Histogram{}
		for _, s := range tc.samples {
			h.Record(s)
		}
		got := h.Quantile(tc.q)
		// Bucketed values carry ≤ ~5% relative error; exact-rank selection
		// must land in the right mode.
		lo, hi := tc.want-tc.want/20-1, tc.want+tc.want/20+1
		if got < lo || got > hi {
			t.Errorf("%s: Quantile(%g) = %d, want ≈%d", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestQuantileClamped: the geometric bucket midpoint must never escape the
// recorded [Min, Max] range. An all-9s histogram's bucket midpoint is 8,
// which the unclamped code reported as the median.
func TestQuantileClamped(t *testing.T) {
	for _, v := range []int64{3, 9, 13, 1000, 999983} {
		h := &Histogram{}
		for i := 0; i < 10; i++ {
			h.Record(v)
		}
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
			if got := h.Quantile(q); got != v {
				t.Errorf("constant histogram of %d: Quantile(%g) = %d", v, q, got)
			}
		}
	}
	// Mixed histogram: every quantile stays within [Min, Max].
	h := &Histogram{}
	for i := int64(1); i <= 137; i++ {
		h.Record(i * 13)
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < h.Min() || v > h.Max() {
			t.Fatalf("Quantile(%g) = %d outside [%d, %d]", q, v, h.Min(), h.Max())
		}
	}
}

func repeat(v int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Median() != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	med := h.Median()
	if med < 400 || med > 600 {
		t.Fatalf("median = %d, want ≈500", med)
	}
	if m := h.Mean(); m < 450 || m > 550 {
		t.Fatalf("mean = %f", m)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900 || p99 > 1100 {
		t.Fatalf("p99 = %d", p99)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 1000 {
		t.Fatal("extreme quantiles")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Min() != 10 || a.Max() != 1000 {
		t.Fatalf("merged range [%d,%d]", a.Min(), a.Max())
	}
	// Median of a 50/50 mix sits at one of the two modes.
	med := a.Median()
	if med > 12 && (med < 950 || med > 1050) {
		t.Fatalf("merged median = %d", med)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 10; i++ {
		h.Record(100)
	}
	for i := 0; i < 90; i++ {
		h.Record(10000)
	}
	cdf := h.CDF()
	if len(cdf) < 2 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Fatalf("cdf does not end at 1: %f", cdf[len(cdf)-1].Fraction)
	}
	// The first mode holds 10% of mass.
	if cdf[0].Fraction < 0.09 || cdf[0].Fraction > 0.11 {
		t.Fatalf("first fraction = %f", cdf[0].Fraction)
	}
}

// TestHistogramQuantileProperty: quantiles are monotone and bounded by the
// recorded range (within bucket resolution).
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := &Histogram{}
		for _, s := range samples {
			h.Record(int64(s%1000000) + 1)
		}
		prev := int64(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		// Bucketed values carry ≤ ~5% relative error.
		return float64(h.Quantile(0.999)) <= float64(h.Max())*1.05+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesSort(t *testing.T) {
	s := Series{Label: "x", Points: []Point{{3, 1}, {1, 2}, {2, 3}}}
	s.SortByX()
	if s.Points[0].X != 1 || s.Points[2].X != 3 {
		t.Fatalf("sorted: %+v", s.Points)
	}
}
