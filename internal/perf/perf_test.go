package perf

import (
	"testing"
	"testing/quick"
)

func TestCountersAddReset(t *testing.T) {
	a := &Counters{PageFaults: 3, TLBMisses: 7, PMWriteBytes: 100, LockWaitNS: 5}
	b := &Counters{PageFaults: 2, HugeFaults: 1, LLCMisses: 4}
	a.Add(b)
	if a.PageFaults != 5 || a.HugeFaults != 1 || a.TLBMisses != 7 || a.LLCMisses != 4 {
		t.Fatalf("add: %+v", a)
	}
	if a.TotalFaults() != 6 {
		t.Fatalf("total faults = %d", a.TotalFaults())
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
	a.Reset()
	if a.PageFaults != 0 || a.PMWriteBytes != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := &Histogram{}
	if h.Median() != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	med := h.Median()
	if med < 400 || med > 600 {
		t.Fatalf("median = %d, want ≈500", med)
	}
	if m := h.Mean(); m < 450 || m > 550 {
		t.Fatalf("mean = %f", m)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900 || p99 > 1100 {
		t.Fatalf("p99 = %d", p99)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 1000 {
		t.Fatal("extreme quantiles")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Min() != 10 || a.Max() != 1000 {
		t.Fatalf("merged range [%d,%d]", a.Min(), a.Max())
	}
	// Median of a 50/50 mix sits at one of the two modes.
	med := a.Median()
	if med > 12 && (med < 950 || med > 1050) {
		t.Fatalf("merged median = %d", med)
	}
}

func TestHistogramCDF(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 10; i++ {
		h.Record(100)
	}
	for i := 0; i < 90; i++ {
		h.Record(10000)
	}
	cdf := h.CDF()
	if len(cdf) < 2 {
		t.Fatalf("cdf points = %d", len(cdf))
	}
	if cdf[len(cdf)-1].Fraction != 1.0 {
		t.Fatalf("cdf does not end at 1: %f", cdf[len(cdf)-1].Fraction)
	}
	// The first mode holds 10% of mass.
	if cdf[0].Fraction < 0.09 || cdf[0].Fraction > 0.11 {
		t.Fatalf("first fraction = %f", cdf[0].Fraction)
	}
}

// TestHistogramQuantileProperty: quantiles are monotone and bounded by the
// recorded range (within bucket resolution).
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		h := &Histogram{}
		for _, s := range samples {
			h.Record(int64(s%1000000) + 1)
		}
		prev := int64(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		// Bucketed values carry ≤ ~5% relative error.
		return float64(h.Quantile(0.999)) <= float64(h.Max())*1.05+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesSort(t *testing.T) {
	s := Series{Label: "x", Points: []Point{{3, 1}, {1, 2}, {2, 3}}}
	s.SortByX()
	if s.Points[0].X != 1 || s.Points[2].X != 3 {
		t.Fatalf("sorted: %+v", s.Points)
	}
}
