// Package perf holds the performance-event accounting used by every
// experiment: hardware-style counters (page faults, TLB misses, LLC misses,
// persistent-memory traffic) and latency histograms for CDF figures.
package perf

import (
	"fmt"
	"math"
	"reflect"
	"sort"
)

// Counters accumulates performance events for one simulated thread. Fields
// are plain int64s — a Counters value belongs to a single simulated thread
// and is never written concurrently. Aggregate across threads with Add.
type Counters struct {
	// Memory-mapped access events.
	PageFaults     int64 // faults taken on 4KiB base pages
	HugeFaults     int64 // faults taken on 2MiB hugepages
	SoftFaults     int64 // faults that only installed a PTE (no allocation)
	TLBMisses      int64
	TLBHits        int64
	LLCMisses      int64
	LLCHits        int64
	PageWalkNS     int64 // time spent walking page tables
	FaultNS        int64 // time spent in the fault handler
	CopyNS         int64 // time spent moving user data to/from PM
	ZeroNS         int64 // time spent zero-filling newly allocated pages
	PMReadBytes    int64
	PMWriteBytes   int64
	JournalBytes   int64 // bytes written to any journal/log
	JournalCommits int64
	JournalAborts  int64 // transactions rolled back via their undo log
	LockWaitNS     int64 // virtual time lost waiting on shared resources
	JournalNS      int64 // time spent appending/flushing/committing journal entries
	Syscalls       int64
	SyscallNS      int64 // time charged for syscall entry/exit
	AllocSplits    int64 // aligned extents broken up to serve small requests
	AllocSteals    int64 // allocations served from a remote CPU's pool
	CoWCopies      int64 // copy-on-write block copies
	GCWork         int64 // log-cleaning/garbage-collection block moves
	Rewrites       int64 // files reactively rewritten for alignment

	// Client page-cache events (internal/pagecache).
	CacheHits       int64 // data/attr requests served from the client cache
	CacheMisses     int64 // data/attr requests that went to the server
	CacheHitBytes   int64 // bytes served from cached pages
	CacheMissBytes  int64 // bytes fetched from the server on misses
	CacheFlushes    int64 // write-back flush batches
	CacheFlushBytes int64 // dirty bytes written back to the server
	CacheEvictions  int64 // pages dropped by LRU pressure
	CacheRevokes    int64 // leases revoked because of a conflicting access

	// Zero-copy mapping subsystem (internal/vmm) events.
	VMMMaps         int64 // mappings established (vmm.Map)
	VMMUnmaps       int64 // mappings torn down (vmm.Mapping.Close)
	VMMHugeFaults   int64 // mapping faults satisfied with a 2MiB hugepage
	VMMBaseFaults   int64 // mapping faults satisfied with a 4KiB base page
	VMMPromotions   int64 // base-faulted chunks later promoted huge (refault or explicit notify)
	VMMMsyncs       int64 // msync calls that reached the backing store
	VMMMsyncBytes   int64 // bytes made durable by msync
	VMMCowBreaks    int64 // private-mapping pages copied on first store
	VMMWindowRemaps int64 // window slides on mappings larger than the address budget

	// Online background defragmenter (internal/defrag) events.
	DefragPasses         int64 // defragmentation passes completed
	DefragChunksScanned  int64 // candidate 2MiB chunks examined
	DefragMigratedBlocks int64 // file blocks copied out of fragmented chunks
	DefragMigratedBytes  int64 // bytes moved by defrag migrations
	DefragRecovered2M    int64 // 2MiB-aligned free extents re-formed by migration
	DefragRewrites       int64 // queued fragmented files rewritten during a pass
	DefragRepromotions   int64 // live-mapping chunks re-promoted by notification
	DefragThrottleNS     int64 // idle virtual time injected by the bandwidth budget
	DefragSkippedBusy    int64 // candidates abandoned because the layout changed underneath
	DefragSkippedMeta    int64 // candidates skipped because metadata blocks pin the chunk

	// Tiered storage (internal/tier + winefs tier hooks) events.
	SlowReads           int64 // commands issued to the slow tier for reads
	SlowWrites          int64 // commands issued to the slow tier for writes
	SlowReadBytes       int64 // bytes transferred from the slow tier (page-rounded)
	SlowWriteBytes      int64 // bytes transferred to the slow tier (page-rounded)
	AllocSpillExtents   int64 // data allocations redirected from full/near-full PM to the slow tier
	AllocSpillBlocks    int64 // blocks those spilled allocations covered
	TierPasses          int64 // tier-migration passes completed
	TierDemotions       int64 // extents migrated PM -> slow
	TierDemotedBlocks   int64 // blocks those demotions moved
	TierPromotions      int64 // extents migrated slow -> PM by the pass policy
	TierPromotedBlocks  int64 // blocks those promotions moved
	TierFaultPromotions int64 // slow extents pulled up synchronously by an mmap fault
}

// Reset zeroes every counter.
func (c *Counters) Reset() { *c = Counters{} }

// counterFields caches the reflected field list of Counters so Add and
// Fields never silently drop a newly added field: every exported int64
// field participates automatically. Any non-int64 field is a programming
// error caught at init.
var counterFields = func() []reflect.StructField {
	t := reflect.TypeOf(Counters{})
	fields := make([]reflect.StructField, 0, t.NumField())
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			panic(fmt.Sprintf("perf: Counters.%s is %s, want int64", f.Name, f.Type))
		}
		fields = append(fields, f)
	}
	return fields
}()

// Add accumulates o into c. Used to merge per-thread counters after a
// multi-threaded run. It is reflection-backed over every field of Counters,
// so a newly added counter can never be silently dropped from cross-thread
// aggregation.
func (c *Counters) Add(o *Counters) {
	cv := reflect.ValueOf(c).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := range counterFields {
		f := cv.Field(i)
		f.SetInt(f.Int() + ov.Field(i).Int())
	}
}

// Sub removes o from c — the inverse of Add, used to isolate one phase's
// counters from a shared context by subtracting the snapshot taken at the
// phase boundary. Reflection-backed for the same can't-lag-the-struct
// reason.
func (c *Counters) Sub(o *Counters) {
	cv := reflect.ValueOf(c).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := range counterFields {
		f := cv.Field(i)
		f.SetInt(f.Int() - ov.Field(i).Int())
	}
}

// Field is one named counter value, as enumerated by Fields.
type Field struct {
	Name  string
	Value int64
}

// Fields enumerates every counter as a (name, value) pair in struct order.
// Like Add it is reflection-backed, so monitoring exports (the Prometheus
// endpoint, winebench dumps) always cover the full counter set.
func (c *Counters) Fields() []Field {
	cv := reflect.ValueOf(c).Elem()
	out := make([]Field, len(counterFields))
	for i, f := range counterFields {
		out[i] = Field{Name: f.Name, Value: cv.Field(i).Int()}
	}
	return out
}

// TotalFaults is the count of all hard page faults, base and huge.
func (c *Counters) TotalFaults() int64 { return c.PageFaults + c.HugeFaults }

// String renders the most commonly inspected counters on one line.
func (c *Counters) String() string {
	return fmt.Sprintf("faults=%d(huge=%d) tlbMiss=%d llcMiss=%d pmW=%dB pmR=%dB jnl=%dB",
		c.PageFaults, c.HugeFaults, c.TLBMisses, c.LLCMisses,
		c.PMWriteBytes, c.PMReadBytes, c.JournalBytes)
}

// Histogram is a log-bucketed latency histogram supporting the quantile
// queries the paper's CDF figures need (Figures 4 and 8). Buckets grow
// geometrically from 1ns so that relative error stays bounded (~4%) from
// nanoseconds to seconds while memory stays constant.
type Histogram struct {
	buckets [bucketCount]int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

const (
	bucketsPerOctave = 16
	octaves          = 40 // covers 1ns .. ~1100s
	bucketCount      = bucketsPerOctave * octaves
)

func bucketIndex(v int64) int {
	if v < 1 {
		v = 1
	}
	f := math.Log2(float64(v))
	i := int(f * bucketsPerOctave)
	if i >= bucketCount {
		i = bucketCount - 1
	}
	return i
}

// bucketValue returns a representative latency (geometric midpoint) for a
// bucket index.
func bucketValue(i int) int64 {
	return int64(math.Exp2((float64(i) + 0.5) / bucketsPerOctave))
}

// Record adds one sample with the given latency in nanoseconds.
func (h *Histogram) Record(ns int64) {
	h.buckets[bucketIndex(ns)]++
	h.count++
	h.sum += ns
	if h.count == 1 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the arithmetic mean of samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest recorded sample.
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the latency at quantile q in [0, 1]: the value of the
// ceil(q*count)-th smallest sample, bucket-quantized. The result is clamped
// to [Min(), Max()] so a bucket midpoint can never report a latency outside
// the recorded range.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Rank of the sample the quantile falls on, 1-based. ceil, not floor:
	// P99 of 100 samples is the 99th smallest, not the 100th.
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen int64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			return h.clamp(bucketValue(i))
		}
	}
	return h.max
}

// clamp bounds a bucket-midpoint estimate by the true recorded extremes.
func (h *Histogram) clamp(v int64) int64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// Median is Quantile(0.5).
func (h *Histogram) Median() int64 { return h.Quantile(0.5) }

// Merge accumulates o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// CDF returns (latency, cumulative fraction) points suitable for plotting,
// one per non-empty bucket.
func (h *Histogram) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	var pts []CDFPoint
	var seen int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		seen += n
		pts = append(pts, CDFPoint{
			LatencyNS: h.clamp(bucketValue(i)),
			Fraction:  float64(seen) / float64(h.count),
		})
	}
	return pts
}

// CDFPoint is one point of a cumulative latency distribution.
type CDFPoint struct {
	LatencyNS int64
	Fraction  float64
}

// LatencySummary is the fixed-quantile digest of a histogram that
// monitoring surfaces (the winefsd stats endpoint, the serving-throughput
// baseline) report. All latencies are virtual nanoseconds.
type LatencySummary struct {
	Count  int64
	MeanNS float64
	P50NS  int64
	P90NS  int64
	P99NS  int64
	MaxNS  int64
}

// Summary digests the histogram into its commonly reported quantiles.
func (h *Histogram) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanNS: h.Mean(),
		P50NS:  h.Median(),
		P90NS:  h.Quantile(0.9),
		P99NS:  h.Quantile(0.99),
		MaxNS:  h.Max(),
	}
}

// Series is a labelled sequence of (x, y) points — the common currency the
// experiment runners hand to the table printer.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y) sample of an experiment series.
type Point struct {
	X float64
	Y float64
}

// SortByX orders the series' points by ascending X.
func (s *Series) SortByX() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}
