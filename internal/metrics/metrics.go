// Package metrics is a small pull-based metric registry rendered in the
// Prometheus text exposition format (version 0.0.4). Collectors are sampled
// at scrape time, so exported values are always a consistent snapshot of
// whatever the collector reads (winefsd collects over fileserver.Server
// Stats(), winebench over a finished run's merged counters) — there is no
// second bookkeeping path that could drift from the in-process perf
// counters.
//
// Counter names derived from perf.Counters fields are the camelCase field
// name converted to snake_case with a `_total` suffix, e.g. TLBMisses →
// <prefix>_tlb_misses_total.
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"unicode"

	"repro/internal/perf"
)

// Sample is one exposed time-series value.
type Sample struct {
	// Suffix is appended to the family name (e.g. "_count"); usually empty.
	Suffix string
	// Labels render inside {}; may be nil.
	Labels map[string]string
	Value  float64
}

// Family is one named metric with help text, a Prometheus type
// ("counter", "gauge", "summary" or "untyped") and its samples.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Collector produces metric families at scrape time.
type Collector interface {
	Collect() []Family
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func() []Family

// Collect calls f.
func (f CollectorFunc) Collect() []Family { return f() }

// Registry is a set of collectors scraped together.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector to the registry.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// WritePrometheus scrapes every collector and renders the result in the
// Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	cs := make([]Collector, len(r.collectors))
	copy(cs, r.collectors)
	r.mu.Unlock()
	for _, c := range cs {
		for _, f := range c.Collect() {
			if err := writeFamily(w, f); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeFamily(w io.Writer, f Family) error {
	typ := f.Type
	if typ == "" {
		typ = "untyped"
	}
	if f.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, typ); err != nil {
		return err
	}
	for _, s := range f.Samples {
		if _, err := fmt.Fprintf(w, "%s%s%s %s\n",
			f.Name, s.Suffix, renderLabels(s.Labels), formatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// SnakeCase converts a Go exported identifier to a Prometheus-style metric
// name component: TLBMisses → tlb_misses, PageWalkNS → page_walk_ns.
func SnakeCase(name string) string {
	runes := []rune(name)
	var b strings.Builder
	for i, r := range runes {
		if unicode.IsUpper(r) && i > 0 {
			prevLower := unicode.IsLower(runes[i-1])
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			if prevLower || (unicode.IsUpper(runes[i-1]) && nextLower) {
				b.WriteByte('_')
			}
		}
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}

// CountersFamilies renders every perf counter as a Prometheus counter
// family named <prefix>_<snake_case_field>_total. Because the field list is
// enumerated by reflection (perf.Counters.Fields), a newly added counter is
// exported automatically — the exporter can never silently lag the struct.
func CountersFamilies(prefix string, c *perf.Counters) []Family {
	fields := c.Fields()
	out := make([]Family, 0, len(fields))
	for _, f := range fields {
		out = append(out, Family{
			Name:    prefix + "_" + SnakeCase(f.Name) + "_total",
			Help:    "perf.Counters." + f.Name + " aggregated across simulated threads.",
			Type:    "counter",
			Samples: []Sample{{Value: float64(f.Value)}},
		})
	}
	return out
}

// VMMFamilies renders just the zero-copy mapping subsystem's counters
// (the perf.Counters VMM* fields) as canonically named vmm_* families:
// vmm_maps_total, vmm_huge_faults_total, vmm_cow_breaks_total, … — the
// stable names dashboards alert on, independent of whatever prefix the
// embedding server uses for the full counter dump.
func VMMFamilies(c *perf.Counters) []Family {
	fields := c.Fields()
	out := make([]Family, 0, 9)
	for _, f := range fields {
		if !strings.HasPrefix(f.Name, "VMM") {
			continue
		}
		out = append(out, Family{
			Name:    SnakeCase(f.Name) + "_total",
			Help:    "Zero-copy mapping subsystem: perf.Counters." + f.Name + ".",
			Type:    "counter",
			Samples: []Sample{{Value: float64(f.Value)}},
		})
	}
	return out
}

// DefragFamilies renders the online defragmenter's counters (the
// perf.Counters Defrag* fields) as canonically named defrag_* families:
// defrag_passes_total, defrag_recovered2m_total, … — same contract as
// VMMFamilies, so dashboards can alert on stable names regardless of the
// embedding server's counter-dump prefix.
func DefragFamilies(c *perf.Counters) []Family {
	fields := c.Fields()
	out := make([]Family, 0, 10)
	for _, f := range fields {
		if !strings.HasPrefix(f.Name, "Defrag") {
			continue
		}
		out = append(out, Family{
			Name:    SnakeCase(f.Name) + "_total",
			Help:    "Online defragmenter: perf.Counters." + f.Name + ".",
			Type:    "counter",
			Samples: []Sample{{Value: float64(f.Value)}},
		})
	}
	return out
}

// TierFamilies renders the tiered-storage counters (the perf.Counters
// Tier*, Slow* and AllocSpill* fields) as canonically named families:
// tier_passes_total, tier_demoted_blocks_total, slow_read_bytes_total,
// alloc_spill_extents_total, … — same contract as VMMFamilies, so
// dashboards can alert on stable names regardless of the embedding
// server's counter-dump prefix.
func TierFamilies(c *perf.Counters) []Family {
	fields := c.Fields()
	out := make([]Family, 0, 12)
	for _, f := range fields {
		if !strings.HasPrefix(f.Name, "Tier") &&
			!strings.HasPrefix(f.Name, "Slow") &&
			!strings.HasPrefix(f.Name, "AllocSpill") {
			continue
		}
		out = append(out, Family{
			Name:    SnakeCase(f.Name) + "_total",
			Help:    "Tiered storage: perf.Counters." + f.Name + ".",
			Type:    "counter",
			Samples: []Sample{{Value: float64(f.Value)}},
		})
	}
	return out
}

// SummaryFamily renders a latency digest as a Prometheus summary with
// quantile labels plus _sum and _count samples. Latencies are virtual
// nanoseconds.
func SummaryFamily(name, help string, s perf.LatencySummary) Family {
	return Family{
		Name: name,
		Help: help,
		Type: "summary",
		Samples: []Sample{
			{Labels: map[string]string{"quantile": "0.5"}, Value: float64(s.P50NS)},
			{Labels: map[string]string{"quantile": "0.9"}, Value: float64(s.P90NS)},
			{Labels: map[string]string{"quantile": "0.99"}, Value: float64(s.P99NS)},
			{Labels: map[string]string{"quantile": "1"}, Value: float64(s.MaxNS)},
			{Suffix: "_sum", Value: s.MeanNS * float64(s.Count)},
			{Suffix: "_count", Value: float64(s.Count)},
		},
	}
}

// Gauge renders one instantaneous value.
func Gauge(name, help string, v float64) Family {
	return Family{Name: name, Help: help, Type: "gauge",
		Samples: []Sample{{Value: v}}}
}

// Counter renders one monotonically increasing value. The name should
// already carry its _total suffix.
func Counter(name, help string, v float64) Family {
	return Family{Name: name, Help: help, Type: "counter",
		Samples: []Sample{{Value: v}}}
}
