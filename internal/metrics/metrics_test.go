package metrics

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/perf"
)

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"PageFaults":   "page_faults",
		"TLBMisses":    "tlb_misses",
		"LLCHits":      "llc_hits",
		"PageWalkNS":   "page_walk_ns",
		"PMWriteBytes": "pm_write_bytes",
		"GCWork":       "gc_work",
		"Syscalls":     "syscalls",
		"FaultNS":      "fault_ns",
		"X":            "x",
	}
	for in, want := range cases {
		if got := SnakeCase(in); got != want {
			t.Errorf("SnakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Register(CollectorFunc(func() []Family {
		return []Family{
			Counter("winefs_ops_total", "Total ops.", 42),
			Gauge("winefs_sessions_active", "Live sessions.", 3),
			{
				Name: "winefs_latency_ns",
				Type: "summary",
				Samples: []Sample{
					{Labels: map[string]string{"quantile": "0.5"}, Value: 120},
					{Suffix: "_count", Value: 10},
				},
			},
		}
	}))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP winefs_ops_total Total ops.\n",
		"# TYPE winefs_ops_total counter\n",
		"winefs_ops_total 42\n",
		"# TYPE winefs_sessions_active gauge\n",
		"winefs_sessions_active 3\n",
		"# TYPE winefs_latency_ns summary\n",
		"winefs_latency_ns{quantile=\"0.5\"} 120\n",
		"winefs_latency_ns_count 10\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestCountersFamiliesExhaustiveAndExact: every perf.Counters field must be
// exported, with exactly the in-process value — the acceptance criterion for
// the winefsd /metrics endpoint.
func TestCountersFamiliesExhaustiveAndExact(t *testing.T) {
	c := &perf.Counters{}
	cv := reflect.ValueOf(c).Elem()
	for i := 0; i < cv.NumField(); i++ {
		cv.Field(i).SetInt(int64(1000 + i))
	}
	fams := CountersFamilies("winefs", c)
	if len(fams) != cv.NumField() {
		t.Fatalf("exported %d families for %d counter fields", len(fams), cv.NumField())
	}
	byName := map[string]float64{}
	for _, f := range fams {
		if f.Type != "counter" || !strings.HasSuffix(f.Name, "_total") || !strings.HasPrefix(f.Name, "winefs_") {
			t.Errorf("bad counter family %q (%s)", f.Name, f.Type)
		}
		if len(f.Samples) != 1 {
			t.Fatalf("%s: %d samples", f.Name, len(f.Samples))
		}
		byName[f.Name] = f.Samples[0].Value
	}
	ct := cv.Type()
	for i := 0; i < cv.NumField(); i++ {
		name := "winefs_" + SnakeCase(ct.Field(i).Name) + "_total"
		if got, ok := byName[name]; !ok {
			t.Errorf("field %s not exported as %s", ct.Field(i).Name, name)
		} else if got != float64(1000+i) {
			t.Errorf("%s = %v, want %d", name, got, 1000+i)
		}
	}
}

func TestSummaryFamily(t *testing.T) {
	f := SummaryFamily("lat_ns", "Request latency.", perf.LatencySummary{
		Count: 100, MeanNS: 50, P50NS: 40, P90NS: 80, P99NS: 99, MaxNS: 200,
	})
	var buf bytes.Buffer
	if err := writeFamily(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_ns{quantile="0.5"} 40`,
		`lat_ns{quantile="0.99"} 99`,
		`lat_ns{quantile="1"} 200`,
		"lat_ns_sum 5000",
		"lat_ns_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatValue(t *testing.T) {
	if got := formatValue(5); got != "5" {
		t.Errorf("formatValue(5) = %q", got)
	}
	if got := formatValue(2.5); got != "2.5" {
		t.Errorf("formatValue(2.5) = %q", got)
	}
	// Large int64 counters must render without float rounding artifacts.
	big := float64(1 << 50)
	if _, err := strconv.ParseFloat(formatValue(big), 64); err != nil {
		t.Errorf("formatValue(2^50) = %q: %v", formatValue(big), err)
	}
}
