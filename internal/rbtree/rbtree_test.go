package rbtree_test

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rbtree"
)

func intLess(a, b int) bool { return a < b }

func TestBasicOps(t *testing.T) {
	tr := rbtree.New[int, string](intLess)
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if !tr.Set(1, "one") {
		t.Fatal("first Set reported existing")
	}
	if tr.Set(1, "uno") {
		t.Fatal("second Set reported new")
	}
	v, ok := tr.Get(1)
	if !ok || v != "uno" {
		t.Fatalf("Get(1) = %q, %v", v, ok)
	}
	if !tr.Delete(1) || tr.Delete(1) {
		t.Fatal("Delete semantics wrong")
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after delete", tr.Len())
	}
}

func TestOrderedIteration(t *testing.T) {
	tr := rbtree.New[int, int](intLess)
	vals := []int{5, 3, 9, 1, 7, 2, 8, 6, 4, 0}
	for _, v := range vals {
		tr.Set(v, v*10)
	}
	var got []int
	tr.Ascend(func(k, v int) bool {
		if v != k*10 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if !sort.IntsAreSorted(got) || len(got) != len(vals) {
		t.Fatalf("ascend order wrong: %v", got)
	}
}

func TestMinMaxFloorCeiling(t *testing.T) {
	tr := rbtree.New[int, int](intLess)
	for _, v := range []int{10, 20, 30, 40} {
		tr.Set(v, v)
	}
	if k, _, _ := tr.Min(); k != 10 {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := tr.Max(); k != 40 {
		t.Fatalf("Max = %d", k)
	}
	if k, _, ok := tr.Floor(25); !ok || k != 20 {
		t.Fatalf("Floor(25) = %d, %v", k, ok)
	}
	if k, _, ok := tr.Floor(10); !ok || k != 10 {
		t.Fatalf("Floor(10) = %d, %v", k, ok)
	}
	if _, _, ok := tr.Floor(5); ok {
		t.Fatal("Floor(5) should not exist")
	}
	if k, _, ok := tr.Ceiling(25); !ok || k != 30 {
		t.Fatalf("Ceiling(25) = %d, %v", k, ok)
	}
	if _, _, ok := tr.Ceiling(45); ok {
		t.Fatal("Ceiling(45) should not exist")
	}
}

func TestAscendFrom(t *testing.T) {
	tr := rbtree.New[int, int](intLess)
	for i := 0; i < 100; i += 10 {
		tr.Set(i, i)
	}
	var got []int
	tr.AscendFrom(35, func(k, v int) bool {
		got = append(got, k)
		return len(got) < 3
	})
	want := []int{40, 50, 60}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("AscendFrom = %v, want %v", got, want)
	}
}

func TestInvariantsUnderChurn(t *testing.T) {
	tr := rbtree.New[int, int](intLess)
	present := make(map[int]bool)
	rng := uint64(12345)
	next := func() int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int(rng>>33) % 2000
	}
	for i := 0; i < 20000; i++ {
		k := next()
		if present[k] {
			tr.Delete(k)
			delete(present, k)
		} else {
			tr.Set(k, k)
			present[k] = true
		}
		if i%500 == 0 {
			if tr.CheckInvariants() < 0 {
				t.Fatalf("red-black invariants violated at step %d", i)
			}
			if tr.Len() != len(present) {
				t.Fatalf("size mismatch: tree=%d map=%d", tr.Len(), len(present))
			}
		}
	}
	// Final full content check.
	count := 0
	tr.Ascend(func(k, v int) bool {
		if !present[k] {
			t.Fatalf("tree has unexpected key %d", k)
		}
		count++
		return true
	})
	if count != len(present) {
		t.Fatalf("iteration count %d != %d", count, len(present))
	}
}

func TestPropertySortedIteration(t *testing.T) {
	// Property: for any input sequence, iteration visits exactly the set of
	// distinct keys in sorted order and invariants hold.
	f := func(keys []int16) bool {
		tr := rbtree.New[int, bool](intLess)
		set := make(map[int]bool)
		for _, k16 := range keys {
			k := int(k16)
			tr.Set(k, true)
			set[k] = true
		}
		if tr.CheckInvariants() < 0 {
			return false
		}
		if tr.Len() != len(set) {
			return false
		}
		prev := -1 << 30
		ok := true
		tr.Ascend(func(k int, v bool) bool {
			if k <= prev || !set[k] {
				ok = false
				return false
			}
			prev = k
			return true
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeleteHalf(t *testing.T) {
	// Property: deleting any subset leaves exactly the complement, with
	// invariants intact.
	f := func(keys []uint8) bool {
		tr := rbtree.New[int, int](intLess)
		set := make(map[int]bool)
		for _, k := range keys {
			tr.Set(int(k), int(k))
			set[int(k)] = true
		}
		i := 0
		for k := range set {
			if i%2 == 0 {
				if !tr.Delete(k) {
					return false
				}
				delete(set, k)
			}
			i++
		}
		if tr.CheckInvariants() < 0 || tr.Len() != len(set) {
			return false
		}
		for k := range set {
			if _, ok := tr.Get(k); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
