package rbtree

// CheckInvariants exposes the red-black invariant checker to tests. It
// returns the tree's black-height, or -1 if any invariant is violated.
func (t *Tree[K, V]) CheckInvariants() int { return t.checkInvariants() }
