// Package rbtree implements a generic left-leaning-free, classic red-black
// binary search tree.
//
// WineFS (the paper, §3.6) reuses the Linux kernel's rbtree for two jobs and
// this package serves the same two here: tracking free unaligned extents
// keyed by block offset inside each per-CPU allocation group, and indexing
// directory entries in DRAM. The implementation is a textbook CLRS
// red-black tree with parent pointers so deletion and neighbour queries
// (Floor/Ceiling/Prev/Next) are O(log n) without allocation.
package rbtree

// Tree is an ordered map from K to V. The zero value is not usable; build
// trees with New. Not safe for concurrent mutation.
type Tree[K any, V any] struct {
	root *node[K, V]
	size int
	less func(a, b K) bool
}

type color bool

const (
	red   color = false
	black color = true
)

type node[K any, V any] struct {
	key                 K
	val                 V
	left, right, parent *node[K, V]
	color               color
}

// New returns an empty tree ordered by less.
func New[K any, V any](less func(a, b K) bool) *Tree[K, V] {
	return &Tree[K, V]{less: less}
}

// Len returns the number of entries.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored at key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.find(key)
	if n == nil {
		var zero V
		return zero, false
	}
	return n.val, true
}

func (t *Tree[K, V]) find(key K) *node[K, V] {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// Set inserts key=val, replacing any existing value at key. It reports
// whether a new entry was created.
func (t *Tree[K, V]) Set(key K, val V) bool {
	var parent *node[K, V]
	link := &t.root
	for *link != nil {
		parent = *link
		switch {
		case t.less(key, parent.key):
			link = &parent.left
		case t.less(parent.key, key):
			link = &parent.right
		default:
			parent.val = val
			return false
		}
	}
	n := &node[K, V]{key: key, val: val, parent: parent, color: red}
	*link = n
	t.size++
	t.insertFixup(n)
	return true
}

// Delete removes key. It reports whether the key was present.
func (t *Tree[K, V]) Delete(key K) bool {
	n := t.find(key)
	if n == nil {
		return false
	}
	t.deleteNode(n)
	return true
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.root.min()
	return n.key, n.val, true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.root.max()
	return n.key, n.val, true
}

// Floor returns the largest entry with key <= key.
func (t *Tree[K, V]) Floor(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(key, n.key) {
			n = n.left
		} else {
			best = n
			n = n.right
		}
	}
	if best == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best.key, best.val, true
}

// Ceiling returns the smallest entry with key >= key.
func (t *Tree[K, V]) Ceiling(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(n.key, key) {
			n = n.right
		} else {
			best = n
			n = n.left
		}
	}
	if best == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best.key, best.val, true
}

// Ascend calls fn on every entry in ascending key order until fn returns
// false.
func (t *Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	for n := t.root.min(); n != nil; n = n.next() {
		if !fn(n.key, n.val) {
			return
		}
	}
}

// AscendFrom calls fn on every entry with key >= start in ascending order
// until fn returns false.
func (t *Tree[K, V]) AscendFrom(start K, fn func(key K, val V) bool) {
	var n *node[K, V]
	c := t.root
	for c != nil {
		if t.less(c.key, start) {
			c = c.right
		} else {
			n = c
			c = c.left
		}
	}
	for ; n != nil; n = n.next() {
		if !fn(n.key, n.val) {
			return
		}
	}
}

func (n *node[K, V]) min() *node[K, V] {
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

func (n *node[K, V]) max() *node[K, V] {
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n
}

func (n *node[K, V]) next() *node[K, V] {
	if n.right != nil {
		return n.right.min()
	}
	p := n.parent
	for p != nil && n == p.right {
		n = p
		p = p.parent
	}
	return p
}

func (t *Tree[K, V]) rotateLeft(x *node[K, V]) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree[K, V]) rotateRight(x *node[K, V]) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *Tree[K, V]) insertFixup(z *node[K, V]) {
	for z.parent != nil && z.parent.color == red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.color = black
				gp.color = red
				t.rotateRight(gp)
			}
		} else {
			u := gp.left
			if u != nil && u.color == red {
				z.parent.color = black
				u.color = black
				gp.color = red
				z = gp
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.color = black
				gp.color = red
				t.rotateLeft(gp)
			}
		}
	}
	t.root.color = black
}

func nodeColor[K any, V any](n *node[K, V]) color {
	if n == nil {
		return black
	}
	return n.color
}

func (t *Tree[K, V]) transplant(u, v *node[K, V]) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *Tree[K, V]) deleteNode(z *node[K, V]) {
	t.size--
	y := z
	yColor := y.color
	var x *node[K, V]
	var xParent *node[K, V]
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = z.right.min()
		yColor = y.color
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.color = z.color
	}
	if yColor == black {
		t.deleteFixup(x, xParent)
	}
}

func (t *Tree[K, V]) deleteFixup(x *node[K, V], parent *node[K, V]) {
	for x != t.root && nodeColor(x) == black {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if nodeColor(w) == red {
				w.color = black
				parent.color = red
				t.rotateLeft(parent)
				w = parent.right
			}
			if nodeColor(w.left) == black && nodeColor(w.right) == black {
				w.color = red
				x = parent
				parent = x.parent
			} else {
				if nodeColor(w.right) == black {
					if w.left != nil {
						w.left.color = black
					}
					w.color = red
					t.rotateRight(w)
					w = parent.right
				}
				w.color = parent.color
				parent.color = black
				if w.right != nil {
					w.right.color = black
				}
				t.rotateLeft(parent)
				x = t.root
			}
		} else {
			w := parent.left
			if nodeColor(w) == red {
				w.color = black
				parent.color = red
				t.rotateRight(parent)
				w = parent.left
			}
			if nodeColor(w.right) == black && nodeColor(w.left) == black {
				w.color = red
				x = parent
				parent = x.parent
			} else {
				if nodeColor(w.left) == black {
					if w.right != nil {
						w.right.color = black
					}
					w.color = red
					t.rotateLeft(w)
					w = parent.left
				}
				w.color = parent.color
				parent.color = black
				if w.left != nil {
					w.left.color = black
				}
				t.rotateRight(parent)
				x = t.root
			}
		}
	}
	if x != nil {
		x.color = black
	}
}

// checkInvariants verifies red-black properties; it is exported to the test
// package via export_test.go and returns the black-height, or -1 on
// violation.
func (t *Tree[K, V]) checkInvariants() int {
	if t.root == nil {
		return 0
	}
	if t.root.color != black {
		return -1
	}
	return t.check(t.root)
}

func (t *Tree[K, V]) check(n *node[K, V]) int {
	if n == nil {
		return 1
	}
	if n.color == red {
		if nodeColor(n.left) == red || nodeColor(n.right) == red {
			return -1
		}
	}
	if n.left != nil {
		if n.left.parent != n || !t.less(n.left.key, n.key) {
			return -1
		}
	}
	if n.right != nil {
		if n.right.parent != n || !t.less(n.key, n.right.key) {
			return -1
		}
	}
	lh := t.check(n.left)
	rh := t.check(n.right)
	if lh == -1 || rh == -1 || lh != rh {
		return -1
	}
	if n.color == black {
		lh++
	}
	return lh
}
