package pagecache_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pagecache"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

// leaseFS adapts a plain local WineFS into a Leasable+RevokeSource backing
// store, standing in for fileserver.Client so the cache's own mechanics —
// LRU, dirty bound, sticky flush errors, revoke flush-and-invalidate —
// test without a server in the loop. Revocations are injected by the test
// through Revoke, and WriteAt failures are armed through failWith.
type leaseFS struct {
	vfs.FS
	mu      sync.Mutex
	handler func(ino uint64)
	deny    atomic.Bool // refuse all lease requests
	failErr atomic.Pointer[error]
}

func newLeaseFS(t *testing.T) *leaseFS {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, pmem.New(256<<20), winefs.Options{CPUs: 2, Mode: vfs.Strict})
	if err != nil {
		t.Fatalf("mkfs: %v", err)
	}
	return &leaseFS{FS: fs}
}

func (l *leaseFS) SetRevokeHandler(h func(ino uint64)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handler = h
}

// Revoke delivers a server-initiated lease revocation, synchronously like
// the real transport: the "server" waits for the flush before returning.
func (l *leaseFS) Revoke(ino uint64) {
	l.mu.Lock()
	h := l.handler
	l.mu.Unlock()
	if h != nil {
		h(ino)
	}
}

// failWith arms every subsequent WriteAt (including cache write-backs) to
// fail with err; nil disarms.
func (l *leaseFS) failWith(err error) {
	if err == nil {
		l.failErr.Store(nil)
		return
	}
	l.failErr.Store(&err)
}

func (l *leaseFS) Create(ctx *sim.Ctx, path string) (vfs.File, error) {
	f, err := l.FS.Create(ctx, path)
	if err != nil {
		return nil, err
	}
	return &leaseFile{File: f, fs: l}, nil
}

func (l *leaseFS) Open(ctx *sim.Ctx, path string) (vfs.File, error) {
	f, err := l.FS.Open(ctx, path)
	if err != nil {
		return nil, err
	}
	return &leaseFile{File: f, fs: l}, nil
}

type leaseFile struct {
	vfs.File
	fs *leaseFS
}

func (f *leaseFile) Lease(ctx *sim.Ctx, write bool) (bool, error) {
	return !f.fs.deny.Load(), nil
}

func (f *leaseFile) Unlease(ctx *sim.Ctx) error { return nil }

func (f *leaseFile) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	if ep := f.fs.failErr.Load(); ep != nil {
		return 0, *ep
	}
	return f.File.WriteAt(ctx, p, off)
}

var _ pagecache.Leasable = (*leaseFile)(nil)
var _ pagecache.RevokeSource = (*leaseFS)(nil)

func pattern(p []byte, salt int) {
	for i := range p {
		p[i] = byte(salt*37 + i*13 + 5)
	}
}

// TestHitServesFromCacheCheaper checks the core value proposition: the
// second read of a page is byte-identical and far cheaper in virtual time
// than the first (which paid the backing store's device cost).
func TestHitServesFromCacheCheaper(t *testing.T) {
	lfs := newLeaseFS(t)
	c := pagecache.New(lfs, pagecache.Config{})
	ctx := sim.NewCtx(100, 0)

	f, err := c.Create(ctx, "/f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	want := make([]byte, 2*pagecache.PageSize)
	pattern(want, 1)
	if _, err := f.Append(ctx, want); err != nil {
		t.Fatalf("append: %v", err)
	}

	// Drop the appended pages so the first read is a genuine miss.
	lfs.Revoke(f.Ino())
	f.Close(ctx)
	f, err = c.Open(ctx, "/f")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer f.Close(ctx)

	got := make([]byte, len(want))
	t0 := ctx.Now()
	if _, err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatalf("miss read: %v", err)
	}
	missNS := ctx.Now() - t0
	if !bytes.Equal(got, want) {
		t.Fatalf("miss read returned wrong bytes")
	}

	t0 = ctx.Now()
	if _, err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatalf("hit read: %v", err)
	}
	hitNS := ctx.Now() - t0
	if !bytes.Equal(got, want) {
		t.Fatalf("hit read returned wrong bytes")
	}
	if hitNS*5 > missNS {
		t.Fatalf("hit cost %dns is not ≥5x cheaper than miss cost %dns", hitNS, missNS)
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats did not record both hits and misses: %+v", st)
	}
}

// TestDeniedLeaseIsPassThrough checks that a refused lease leaves the file
// fully functional, just uncached.
func TestDeniedLeaseIsPassThrough(t *testing.T) {
	lfs := newLeaseFS(t)
	lfs.deny.Store(true)
	c := pagecache.New(lfs, pagecache.Config{})
	ctx := sim.NewCtx(100, 0)

	f, err := c.Create(ctx, "/f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	want := make([]byte, pagecache.PageSize)
	pattern(want, 2)
	if _, err := f.Append(ctx, want); err != nil {
		t.Fatalf("append: %v", err)
	}
	got := make([]byte, len(want))
	if _, err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("pass-through read returned wrong bytes")
	}
	if err := f.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Pages != 0 {
		t.Fatalf("unleased file left cache state behind: %+v", st)
	}
}

// TestCanonicalPathKeying is the regression test for cache keying: "/a//b"
// and "/a/b" must resolve to ONE attribute entry, and the messy spelling
// must hit the entry the clean spelling created.
func TestCanonicalPathKeying(t *testing.T) {
	lfs := newLeaseFS(t)
	c := pagecache.New(lfs, pagecache.Config{})
	ctx := sim.NewCtx(100, 0)

	if err := c.Mkdir(ctx, "/d"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	f, err := c.Create(ctx, "/d//f") // messy spelling at create time
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer f.Close(ctx)
	if _, err := f.Append(ctx, []byte("x")); err != nil {
		t.Fatalf("append: %v", err)
	}

	if _, err := c.Stat(ctx, "/d/f"); err != nil { // miss, fills the entry
		t.Fatalf("stat clean: %v", err)
	}
	before := c.Stats()
	fi, err := c.Stat(ctx, "/d//f") // must hit the same entry
	if err != nil {
		t.Fatalf("stat messy: %v", err)
	}
	after := c.Stats()
	if after.Hits != before.Hits+1 || after.Misses != before.Misses {
		t.Fatalf("messy spelling missed: before %+v after %+v", before, after)
	}
	if after.AttrEntries != 1 {
		t.Fatalf("AttrEntries = %d, want 1 (duplicate key for one file)", after.AttrEntries)
	}
	if fi.Size != 1 {
		t.Fatalf("stat size = %d, want 1", fi.Size)
	}
}

// TestLRUEvictsCleanPages checks the page bound: reading more pages than
// MaxPages evicts the least recently used clean ones and never exceeds the
// bound.
func TestLRUEvictsCleanPages(t *testing.T) {
	lfs := newLeaseFS(t)
	c := pagecache.New(lfs, pagecache.Config{MaxPages: 4, MaxDirty: 64})
	ctx := sim.NewCtx(100, 0)

	f, err := c.Create(ctx, "/f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer f.Close(ctx)
	const pages = 8
	want := make([]byte, pages*pagecache.PageSize)
	pattern(want, 3)
	if _, err := f.Append(ctx, want); err != nil {
		t.Fatalf("append: %v", err)
	}
	got := make([]byte, len(want))
	for round := 0; round < 2; round++ {
		if _, err := f.ReadAt(ctx, got, 0); err != nil {
			t.Fatalf("read round %d: %v", round, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("read round %d returned wrong bytes", round)
		}
	}
	st := c.Stats()
	if st.Pages > 4 {
		t.Fatalf("Pages = %d, exceeds MaxPages 4", st.Pages)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions despite %d pages through a 4-page cache", pages)
	}
}

// TestDirtyBoundFlushes checks the write-back bound: dirtying more than
// MaxDirty pages flushes the excess synchronously, and Fsync drains the
// rest so the backing store holds the full image.
func TestDirtyBoundFlushes(t *testing.T) {
	lfs := newLeaseFS(t)
	c := pagecache.New(lfs, pagecache.Config{MaxPages: 64, MaxDirty: 2})
	ctx := sim.NewCtx(100, 0)

	f, err := c.Create(ctx, "/f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	const pages = 5
	want := make([]byte, pages*pagecache.PageSize)
	pattern(want, 4)
	for i := 0; i < pages; i++ {
		chunk := want[i*pagecache.PageSize : (i+1)*pagecache.PageSize]
		if _, err := f.WriteAt(ctx, chunk, int64(i*pagecache.PageSize)); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.DirtyPages > 2 {
		t.Fatalf("DirtyPages = %d, exceeds MaxDirty 2", st.DirtyPages)
	}
	if st.FlushedBytes < (pages-2)*pagecache.PageSize {
		t.Fatalf("FlushedBytes = %d, want at least %d from threshold flushing",
			st.FlushedBytes, (pages-2)*pagecache.PageSize)
	}
	if err := f.Fsync(ctx); err != nil {
		t.Fatalf("fsync: %v", err)
	}
	if st := c.Stats(); st.DirtyPages != 0 || st.FlushedBytes != pages*pagecache.PageSize {
		t.Fatalf("after fsync: %+v, want 0 dirty and %d flushed", st, pages*pagecache.PageSize)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}

	// The backing store, read directly, holds the complete image.
	inner, err := lfs.FS.Open(ctx, "/f")
	if err != nil {
		t.Fatalf("open inner: %v", err)
	}
	defer inner.Close(ctx)
	got := make([]byte, len(want))
	if n, err := inner.ReadAt(ctx, got, 0); err != nil || n != len(want) {
		t.Fatalf("inner read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("backing store does not hold the flushed image")
	}
}

// TestPoisonedRevokeFlushSurfacesEIO is the media-fault satellite (and part
// of the fault-campaign make target): a revoke arrives while the client
// holds dirty pages, the write-back hits an uncorrectable media error, and
// the failure must surface to the writer as EIO on its next operation —
// never a silent drop.
func TestPoisonedRevokeFlushSurfacesEIO(t *testing.T) {
	lfs := newLeaseFS(t)
	c := pagecache.New(lfs, pagecache.Config{})
	ctx := sim.NewCtx(100, 0)

	f, err := c.Create(ctx, "/f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	buf := make([]byte, pagecache.PageSize)
	pattern(buf, 5)
	if _, err := f.WriteAt(ctx, buf, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if st := c.Stats(); st.DirtyPages != 1 {
		t.Fatalf("DirtyPages = %d, want 1 before the revoke", st.DirtyPages)
	}

	// The file's media goes bad, then the server revokes the lease: the
	// flush-and-invalidate write-back fails.
	media := &pmem.MediaError{Off: 0, Len: pagecache.PageSize, Line: 0}
	lfs.failWith(fmt.Errorf("%w: %v", vfs.ErrIO, media))
	lfs.Revoke(f.Ino())

	st := c.Stats()
	if st.FlushErrors != 1 {
		t.Fatalf("FlushErrors = %d, want 1", st.FlushErrors)
	}
	if st.DirtyPages != 0 || st.Pages != 0 {
		t.Fatalf("revoke left cached pages behind: %+v", st)
	}
	// The writer's next operation observes EIO; it is not dropped.
	if _, err := f.WriteAt(ctx, buf, 0); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("write after failed revoke flush: err = %v, want EIO", err)
	}
	lfs.failWith(nil)
	// The error was consumed; the file keeps working (pass-through now).
	if _, err := f.WriteAt(ctx, buf, 0); err != nil {
		t.Fatalf("write after surfacing the error: %v", err)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCloseFlushesAndReleases checks that the last close drains dirt to the
// backing store, releases state, and a reopened handle sees it.
func TestCloseFlushesAndReleases(t *testing.T) {
	lfs := newLeaseFS(t)
	c := pagecache.New(lfs, pagecache.Config{})
	ctx := sim.NewCtx(100, 0)

	f, err := c.Create(ctx, "/f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	want := make([]byte, 3*pagecache.PageSize)
	pattern(want, 6)
	if _, err := f.WriteAt(ctx, want, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if st := c.Stats(); st.Pages != 0 || st.DirtyPages != 0 || st.AttrEntries != 0 {
		t.Fatalf("close left state behind: %+v", st)
	}

	g, err := c.Open(ctx, "/f")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer g.Close(ctx)
	got := make([]byte, len(want))
	if n, err := g.ReadAt(ctx, got, 0); err != nil || n != len(want) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("reopened file does not hold the written image")
	}
}
