package pagecache

import (
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// cachedFile is an open handle on a leased file. Reads are served
// page-granular from the cache; writes upgrade to a write lease and go
// write-back. If the lease is lost (revoke) or was never upgraded, every
// operation passes through to the inner handle unchanged.
type cachedFile struct {
	c     *Cache
	st    *fileState
	inner vfs.File
	lf    Leasable
}

var _ vfs.File = (*cachedFile)(nil)

// Ino implements vfs.File.
func (f *cachedFile) Ino() uint64 { return f.inner.Ino() }

// Size implements vfs.File: the local leased size reflects buffered dirty
// extensions before the server learns about them.
func (f *cachedFile) Size() int64 {
	f.c.mu.Lock()
	defer f.c.mu.Unlock()
	if f.st.mode != modeNone {
		return f.st.size
	}
	return f.inner.Size()
}

// ReadAt implements vfs.File. Hits cost DRAM time on ctx; a missed page is
// fetched whole from the server (read-around) and inserted clean. Bytes in
// holes — regions inside the local size the server has never seen — read
// as zeros, exactly as they would from the server after a flush.
func (f *cachedFile) ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	c := f.c
	c.mu.Lock()
	if err := f.st.takeErrLocked(); err != nil {
		c.mu.Unlock()
		return 0, err
	}
	if f.st.mode == modeNone {
		c.mu.Unlock()
		return f.inner.ReadAt(ctx, p, off)
	}
	size := f.st.size
	c.mu.Unlock()
	if off < 0 || off >= size {
		return 0, nil
	}
	n := len(p)
	if off+int64(n) > size {
		n = int(size - off)
	}

	total := 0
	for total < n {
		cur := off + int64(total)
		idx := cur / PageSize
		pgOff := int(cur % PageSize)
		chunk := PageSize - pgOff
		if chunk > n-total {
			chunk = n - total
		}
		c.mu.Lock()
		if f.st.mode == modeNone {
			// Lease lost mid-read: fall through to the server for the rest.
			c.mu.Unlock()
			m, err := f.inner.ReadAt(ctx, p[total:n], cur)
			return total + m, err
		}
		if pg := f.st.pages[idx]; pg != nil {
			copy(p[total:total+chunk], pg.data[pgOff:pgOff+chunk])
			c.touchLocked(pg)
			c.stats.Hits++
			c.stats.HitBytes += int64(chunk)
			ctx.Counters.CacheHits++
			ctx.Counters.CacheHitBytes += int64(chunk)
			c.mu.Unlock()
			ctx.Advance(c.hitCost(chunk))
			total += chunk
			continue
		}
		c.mu.Unlock()

		var buf [PageSize]byte
		m, err := f.inner.ReadAt(ctx, buf[:], idx*PageSize)
		if err != nil {
			return total, err
		}
		ctx.Counters.CacheMisses++
		ctx.Counters.CacheMissBytes += int64(m)
		c.mu.Lock()
		c.stats.Misses++
		c.stats.MissBytes += int64(m)
		if f.st.mode != modeNone && f.st.pages[idx] == nil {
			pg := c.insertPageLocked(ctx, f.st, idx)
			copy(pg.data[:], buf[:])
		}
		c.mu.Unlock()
		copy(p[total:total+chunk], buf[pgOff:pgOff+chunk])
		total += chunk
	}
	return total, nil
}

// WriteAt implements vfs.File: write-back under a write lease. The first
// write upgrades the read lease; if the server refuses (bounded revoke
// retries), the write goes through synchronously instead — correctness
// never depends on the grant.
func (f *cachedFile) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	c := f.c
	c.mu.Lock()
	if err := f.st.takeErrLocked(); err != nil {
		c.mu.Unlock()
		return 0, err
	}
	mode := f.st.mode
	c.mu.Unlock()
	if off < 0 {
		return 0, vfs.ErrClosed
	}
	if mode == modeNone {
		return f.writeThrough(ctx, p, off)
	}
	if mode == modeRead {
		granted, err := f.lf.Lease(ctx, true)
		if err != nil {
			return 0, err
		}
		if !granted {
			return f.writeThrough(ctx, p, off)
		}
		c.mu.Lock()
		if f.st.mode == modeRead {
			f.st.mode = modeWrite
		}
		mode = f.st.mode
		c.mu.Unlock()
		if mode != modeWrite {
			// Revoked between grant and recording: stay pass-through.
			return f.writeThrough(ctx, p, off)
		}
	}

	// Dirty the covered pages at DRAM cost. A partially covered page whose
	// uncovered part holds live data must be read-modify-write filled
	// first.
	total := 0
	for total < len(p) {
		cur := off + int64(total)
		idx := cur / PageSize
		pgOff := int(cur % PageSize)
		chunk := PageSize - pgOff
		if chunk > len(p)-total {
			chunk = len(p) - total
		}
		c.mu.Lock()
		if f.st.mode != modeWrite {
			// Revoked mid-write: push the remainder through synchronously.
			c.mu.Unlock()
			m, err := f.writeThrough(ctx, p[total:], cur)
			return total + m, err
		}
		pg := f.st.pages[idx]
		if pg == nil {
			pageStart := idx * PageSize
			pageEnd := pageStart + PageSize
			validEnd := f.st.size
			if validEnd > pageEnd {
				validEnd = pageEnd
			}
			covers := cur <= pageStart && cur+int64(chunk) >= validEnd
			if !covers {
				// Fetch the page's live bytes before overlaying.
				c.mu.Unlock()
				var buf [PageSize]byte
				if _, err := f.inner.ReadAt(ctx, buf[:], pageStart); err != nil {
					return total, err
				}
				ctx.Counters.CacheMisses++
				c.mu.Lock()
				c.stats.Misses++
				if f.st.mode != modeWrite {
					c.mu.Unlock()
					m, err := f.writeThrough(ctx, p[total:], cur)
					return total + m, err
				}
				pg = f.st.pages[idx]
				if pg == nil {
					pg = c.insertPageLocked(ctx, f.st, idx)
					copy(pg.data[:], buf[:])
				}
			} else {
				pg = c.insertPageLocked(ctx, f.st, idx)
			}
		} else {
			c.touchLocked(pg)
		}
		copy(pg.data[pgOff:pgOff+chunk], p[total:total+chunk])
		if !pg.dirty {
			pg.dirty = true
			f.st.dirty++
			c.dirtyTotal++
		}
		if cur+int64(chunk) > f.st.size {
			f.st.size = cur + int64(chunk)
		}
		over := c.dirtyTotal > c.cfg.MaxDirty
		c.mu.Unlock()
		ctx.Advance(c.hitCost(chunk))
		total += chunk
		if over {
			if err := c.flushExcess(ctx); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// writeThrough sends a write straight to the server and keeps any cached
// copy of the covered pages coherent by overlaying the written bytes.
func (f *cachedFile) writeThrough(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	n, err := f.inner.WriteAt(ctx, p, off)
	if n > 0 {
		c := f.c
		c.mu.Lock()
		c.stats.WriteThroughBytes += int64(n)
		c.overlayLocked(f.st, p[:n], off)
		if f.st.mode != modeNone && off+int64(n) > f.st.size {
			f.st.size = off + int64(n)
		}
		c.mu.Unlock()
	}
	return n, err
}

// overlayLocked copies freshly written bytes over any cached pages they
// intersect, leaving dirtiness unchanged: the server already has the data.
func (c *Cache) overlayLocked(st *fileState, p []byte, off int64) {
	for done := 0; done < len(p); {
		cur := off + int64(done)
		idx := cur / PageSize
		pgOff := int(cur % PageSize)
		chunk := PageSize - pgOff
		if chunk > len(p)-done {
			chunk = len(p) - done
		}
		if pg := st.pages[idx]; pg != nil {
			copy(pg.data[pgOff:pgOff+chunk], p[done:done+chunk])
		}
		done += chunk
	}
}

// Append implements vfs.File. Appends are write-through — the server owns
// end-of-file placement — but the appended bytes fill the cache clean, so
// the populate-then-reread pattern hits from the first read. Any buffered
// dirty extension is flushed first so local and server EOF agree.
func (f *cachedFile) Append(ctx *sim.Ctx, p []byte) (int, error) {
	c := f.c
	c.mu.Lock()
	if err := f.st.takeErrLocked(); err != nil {
		c.mu.Unlock()
		return 0, err
	}
	mode := f.st.mode
	needFlush := f.st.dirty > 0
	c.mu.Unlock()
	if mode == modeNone {
		return f.inner.Append(ctx, p)
	}
	if needFlush {
		if err := c.flushFile(ctx, f.st); err != nil {
			return 0, err
		}
	}
	n, err := f.inner.Append(ctx, p)
	if n > 0 {
		newEnd := f.inner.Size()
		start := newEnd - int64(n)
		c.mu.Lock()
		c.stats.WriteThroughBytes += int64(n)
		if f.st.mode != modeNone {
			c.fillCleanLocked(f.st, p[:n], start, ctx)
			if newEnd > f.st.size {
				f.st.size = newEnd
			}
		}
		c.mu.Unlock()
	}
	return n, err
}

// fillCleanLocked inserts server-confirmed bytes [off, off+len(p)) as
// clean pages. A page with an unknown live prefix (data before off that is
// not cached) is skipped — it would need a fetch to reconstruct, and a
// later read will miss-fill it correctly.
func (c *Cache) fillCleanLocked(st *fileState, p []byte, off int64, ctx *sim.Ctx) {
	oldSize := off
	for done := 0; done < len(p); {
		cur := off + int64(done)
		idx := cur / PageSize
		pgOff := int(cur % PageSize)
		chunk := PageSize - pgOff
		if chunk > len(p)-done {
			chunk = len(p) - done
		}
		pg := st.pages[idx]
		if pg == nil {
			pageStart := idx * PageSize
			if pageStart < oldSize && cur > pageStart {
				// Unknown live prefix; skip this page.
				done += chunk
				continue
			}
			if pageStart >= cur || pageStart >= oldSize {
				pg = c.insertPageLocked(ctx, st, idx)
			} else {
				done += chunk
				continue
			}
		} else {
			c.touchLocked(pg)
		}
		copy(pg.data[pgOff:pgOff+chunk], p[done:done+chunk])
		done += chunk
	}
}

// Truncate implements vfs.File: flush, drop, pass through. Truncation is
// rare enough that invalidating beats tracking partial-page validity.
func (f *cachedFile) Truncate(ctx *sim.Ctx, size int64) error {
	c := f.c
	c.mu.Lock()
	err0 := f.st.takeErrLocked()
	mode := f.st.mode
	c.mu.Unlock()
	if err0 != nil {
		return err0
	}
	if mode == modeNone {
		return f.inner.Truncate(ctx, size)
	}
	if err := c.flushFile(ctx, f.st); err != nil {
		return err
	}
	c.mu.Lock()
	c.dropPagesLocked(f.st)
	c.mu.Unlock()
	if err := f.inner.Truncate(ctx, size); err != nil {
		return err
	}
	c.mu.Lock()
	if f.st.mode != modeNone {
		f.st.size = f.inner.Size()
	}
	c.mu.Unlock()
	return nil
}

// Fallocate implements vfs.File (pass-through; preallocation is a
// server-side concern).
func (f *cachedFile) Fallocate(ctx *sim.Ctx, off, n int64) error {
	if err := f.inner.Fallocate(ctx, off, n); err != nil {
		return err
	}
	c := f.c
	c.mu.Lock()
	if f.st.mode != modeNone && off+n > f.st.size {
		f.st.size = off + n
	}
	c.mu.Unlock()
	return nil
}

// Fsync implements vfs.File: every dirty page reaches the server, then the
// server persists. A prior failed write-back surfaces here.
func (f *cachedFile) Fsync(ctx *sim.Ctx) error {
	c := f.c
	c.mu.Lock()
	err0 := f.st.takeErrLocked()
	c.mu.Unlock()
	if err0 != nil {
		return err0
	}
	if err := c.flushFile(ctx, f.st); err != nil {
		return err
	}
	return f.inner.Fsync(ctx)
}

// Mmap implements vfs.File (pass-through; the cache has no address space).
func (f *cachedFile) Mmap(ctx *sim.Ctx, length int64) (*mmu.Mapping, error) {
	return f.inner.Mmap(ctx, length)
}

// Extents implements vfs.File.
func (f *cachedFile) Extents() []mmu.Extent { return f.inner.Extents() }

// SetXattr implements vfs.File.
func (f *cachedFile) SetXattr(ctx *sim.Ctx, name string, value []byte) error {
	return f.inner.SetXattr(ctx, name, value)
}

// GetXattr implements vfs.File.
func (f *cachedFile) GetXattr(ctx *sim.Ctx, name string) ([]byte, bool) {
	return f.inner.GetXattr(ctx, name)
}

// Close implements vfs.File. The last handle on an ino flushes whatever is
// still dirty, releases the lease and drops the cached state; a sticky
// write-back error surfaces here rather than vanishing with the handle.
func (f *cachedFile) Close(ctx *sim.Ctx) error {
	c := f.c
	c.flushMu.Lock()
	c.mu.Lock()
	st := f.st
	delete(st.handles, f)
	st.refs--
	last := st.refs <= 0
	err0 := st.takeErrLocked()
	var batch []writeback
	hadLease := st.mode != modeNone
	if last {
		batch = c.collectDirtyLocked(st)
		// Flush through this handle: it is the one still open.
		for i := range batch {
			batch[i].wf = f.inner
		}
		st.mode = modeNone
		c.dropPagesLocked(st)
		c.attrDropInoLocked(st.ino)
		delete(c.files, st.ino)
	} else if st.flushFile == f.inner {
		st.flushFile = nil
		for h := range st.handles {
			st.flushFile = h.inner
			break
		}
	}
	c.mu.Unlock()
	werr := c.writeBack(ctx, batch)
	c.flushMu.Unlock()
	if last && hadLease {
		f.lf.Unlease(ctx) // best-effort; teardown reaps leases regardless
	}
	cerr := f.inner.Close(ctx)
	if err0 != nil {
		return err0
	}
	if werr != nil {
		return werr
	}
	return cerr
}
