package pagecache

import (
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// vfs.Mapper delegation: a cached handle can be memory-mapped iff the
// inner file can (a local FS under the cache — remote mounts aren't
// Mappers and vmm.Map reports ErrNotSupported). The coherence rule is
// "Mmap bypasses the lease": attaching a mapping flushes and drops every
// cached page for the ino, releases the client lease, and pins the ino
// in pass-through until the last mapping detaches. Stores through the
// mapping hit PM directly, so the only coherent cache is no cache.

func (f *cachedFile) innerMapper() vfs.Mapper {
	m, _ := f.inner.(vfs.Mapper)
	return m
}

// Fault implements mmu.FaultHandler by delegation.
func (f *cachedFile) Fault(ctx *sim.Ctx, pageOff int64) (mmu.FaultResult, error) {
	if m := f.innerMapper(); m != nil {
		return m.Fault(ctx, pageOff)
	}
	return mmu.FaultResult{}, vfs.ErrNotSupported
}

// MapSpace implements vfs.Mapper; nil when the inner file cannot map.
func (f *cachedFile) MapSpace() *mmu.AddressSpace {
	if m := f.innerMapper(); m != nil {
		return m.MapSpace()
	}
	return nil
}

// MapSyscallNS implements vfs.Mapper.
func (f *cachedFile) MapSyscallNS() int64 {
	if m := f.innerMapper(); m != nil {
		return m.MapSyscallNS()
	}
	return 0
}

// AttachMapping implements vfs.Mapper: step the cache aside, then attach
// on the inner file.
func (f *cachedFile) AttachMapping(m *mmu.Mapping) {
	im := f.innerMapper()
	if im == nil {
		return
	}
	f.c.mapAttach(f)
	im.AttachMapping(m)
}

// DetachMapping implements vfs.Mapper.
func (f *cachedFile) DetachMapping(m *mmu.Mapping) {
	im := f.innerMapper()
	if im == nil {
		return
	}
	im.DetachMapping(m)
	f.c.mapDetach(f.st.ino)
}

// MsyncRange implements vfs.Mapper by delegation (the cache holds no
// pages for a mapped ino, so there is nothing of its own to flush).
func (f *cachedFile) MsyncRange(ctx *sim.Ctx, off, n int64) error {
	if m := f.innerMapper(); m != nil {
		return m.MsyncRange(ctx, off, n)
	}
	return vfs.ErrNotSupported
}

// mapAttach enforces the bypass rule for one new mapping over f's ino:
// flush dirty pages, drop the rest, release the lease, and pin bypass.
func (c *Cache) mapAttach(f *cachedFile) {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	c.mu.Lock()
	st := f.st
	wasLeased := st.mode != modeNone
	st.mode = modeNone
	batch := c.collectDirtyLocked(st)
	c.attrDropInoLocked(st.ino)
	c.mapped[st.ino]++
	c.stats.MapBypasses++
	c.mu.Unlock()
	// writeBack records failures as the ino's sticky flushErr; the pages
	// are dropped regardless — the mapping is about to become the only
	// truth for those bytes.
	c.writeBack(c.flushCtx, batch)
	c.mu.Lock()
	c.dropPagesLocked(st)
	c.mu.Unlock()
	if wasLeased {
		f.lf.Unlease(c.flushCtx)
	}
}

// mapDetach drops one mapping's pin on the ino.
func (c *Cache) mapDetach(ino uint64) {
	c.mu.Lock()
	if c.mapped[ino] > 1 {
		c.mapped[ino]--
	} else {
		delete(c.mapped, ino)
	}
	c.mu.Unlock()
}
