package pagecache_test

import (
	"bytes"
	"sync/atomic"
	"testing"

	"repro/internal/mmu"
	"repro/internal/pagecache"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vmm"
	"repro/internal/winefs"
)

// mapFS adapts a local WineFS into a Leasable backing store whose files
// also forward the vfs.Mapper surface, so a cached handle above it can be
// memory-mapped. Unleases are counted to observe the bypass.
type mapFS struct {
	vfs.FS
	unleases atomic.Int64
}

func newMapFS(t *testing.T) *mapFS {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, pmem.New(256<<20), winefs.Options{CPUs: 2, Mode: vfs.Strict})
	if err != nil {
		t.Fatalf("mkfs: %v", err)
	}
	return &mapFS{FS: fs}
}

func (l *mapFS) wrap(f vfs.File, err error) (vfs.File, error) {
	if err != nil {
		return nil, err
	}
	return &mapFile{File: f, fs: l, mp: f.(vfs.Mapper)}, nil
}

func (l *mapFS) Create(ctx *sim.Ctx, path string) (vfs.File, error) {
	return l.wrap(l.FS.Create(ctx, path))
}

func (l *mapFS) Open(ctx *sim.Ctx, path string) (vfs.File, error) {
	return l.wrap(l.FS.Open(ctx, path))
}

type mapFile struct {
	vfs.File
	fs *mapFS
	mp vfs.Mapper
}

func (f *mapFile) Lease(ctx *sim.Ctx, write bool) (bool, error) { return true, nil }

func (f *mapFile) Unlease(ctx *sim.Ctx) error {
	f.fs.unleases.Add(1)
	return nil
}

func (f *mapFile) Fault(ctx *sim.Ctx, pageOff int64) (mmu.FaultResult, error) {
	return f.mp.Fault(ctx, pageOff)
}
func (f *mapFile) MapSpace() *mmu.AddressSpace  { return f.mp.MapSpace() }
func (f *mapFile) MapSyscallNS() int64          { return f.mp.MapSyscallNS() }
func (f *mapFile) AttachMapping(m *mmu.Mapping) { f.mp.AttachMapping(m) }
func (f *mapFile) DetachMapping(m *mmu.Mapping) { f.mp.DetachMapping(m) }
func (f *mapFile) MsyncRange(ctx *sim.Ctx, off, n int64) error {
	return f.mp.MsyncRange(ctx, off, n)
}

var _ pagecache.Leasable = (*mapFile)(nil)
var _ vfs.Mapper = (*mapFile)(nil)

// TestMmapBypassesLease is the coherence regression test for shared
// mappings over the lease-coherent client cache: attaching a mapping must
// flush the cached dirty pages, drop the rest, release the lease and pin
// the ino in pass-through — afterwards stores through the mapping and
// reads through any cached handle see one store order, not two.
func TestMmapBypassesLease(t *testing.T) {
	lfs := newMapFS(t)
	c := pagecache.New(lfs, pagecache.Config{})
	ctx := sim.NewCtx(100, 0)

	f, err := c.Create(ctx, "/m")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Dirty data that exists only in the cache until the map attaches.
	want := make([]byte, 4*pagecache.PageSize)
	pattern(want, 3)
	if _, err := f.Append(ctx, want); err != nil {
		t.Fatalf("append: %v", err)
	}

	m, err := vmm.Map(ctx, f, int64(len(want)), vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	defer m.Close(ctx)

	if got := c.Stats().MapBypasses; got < 1 {
		t.Fatalf("MapBypasses = %d, want >= 1", got)
	}
	if got := lfs.unleases.Load(); got < 1 {
		t.Fatalf("unleases = %d, want >= 1 (lease must be released on map attach)", got)
	}

	// The mapping reads the bytes that were dirty in the cache: the
	// attach flushed them to the backing store.
	got := make([]byte, len(want))
	if err := m.Read(ctx, got, 0); err != nil {
		t.Fatalf("mapped read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mapped read diverges from data written through the cache before mapping")
	}

	// A store through the mapping is immediately visible to the cached
	// handle (pass-through, no stale cached page).
	upd := make([]byte, pagecache.PageSize)
	pattern(upd, 9)
	if err := m.Write(ctx, upd, pagecache.PageSize); err != nil {
		t.Fatalf("mapped write: %v", err)
	}
	rd := make([]byte, pagecache.PageSize)
	if _, err := f.ReadAt(ctx, rd, pagecache.PageSize); err != nil {
		t.Fatalf("cached read: %v", err)
	}
	if !bytes.Equal(rd, upd) {
		t.Fatal("cached handle read stale bytes after a store through the mapping")
	}

	// A write through the handle is visible to the mapping too.
	pattern(upd, 21)
	if _, err := f.WriteAt(ctx, upd, 2*pagecache.PageSize); err != nil {
		t.Fatalf("handle write: %v", err)
	}
	if err := m.Read(ctx, rd, 2*pagecache.PageSize); err != nil {
		t.Fatalf("mapped read: %v", err)
	}
	if !bytes.Equal(rd, upd) {
		t.Fatal("mapping read stale bytes after a write through the cached handle")
	}

	// While the ino is mapped, fresh opens are uncached pass-through: a
	// read through a second handle costs backing-store reads, not hits.
	g, err := c.Open(ctx, "/m")
	if err != nil {
		t.Fatalf("open while mapped: %v", err)
	}
	hitsBefore := c.Stats().Hits
	if _, err := g.ReadAt(ctx, rd, 0); err != nil {
		t.Fatalf("second handle read: %v", err)
	}
	if _, err := g.ReadAt(ctx, rd, 0); err != nil {
		t.Fatalf("second handle reread: %v", err)
	}
	if hits := c.Stats().Hits; hits != hitsBefore {
		t.Fatalf("cache hits grew %d -> %d for a mapped ino, want pass-through", hitsBefore, hits)
	}
	g.Close(ctx)
}
