// Package pagecache is the client-side caching subsystem of the serving
// stack: it wraps any vfs.FS — in practice a fileserver.Client — and keeps
// 4KiB-aligned data pages plus attribute entries in one bounded LRU, so a
// hot working set is served at DRAM cost instead of paying the full
// RPC + device cost on every access (the SplitFS observation: route the
// data path around the server, keep the server authoritative for
// metadata).
//
// Coherence comes from server leases, not timeouts. A cached file holds a
// read or write lease granted through the wrapped file's Lease method; the
// server revokes the lease (a statusRevoke push, delivered through
// RevokeSource) before any conflicting access from another session is
// allowed to proceed, and the revoke handler here flushes every dirty page
// and drops every cached byte for the ino before acking. While no lease is
// held the cache is a pure pass-through, so it can never serve a stale
// byte: cached state is only ever consulted under a lease (DESIGN.md §9).
//
// Writes are write-back within a bounded dirty set: WriteAt on a
// write-leased file dirties cached pages at DRAM cost and the data reaches
// the server on Fsync/Close/lease-revoke, or earlier when the dirty bound
// overflows. A failed write-back is never silent — the error sticks to the
// file and surfaces on the writer's next operation (EIO semantics).
//
// Virtual-time accounting: hits advance the caller's clock by a DRAM-class
// cost (HitLatNS + HitNSPerByte·n, no syscall — the point of a user-level
// cache); misses and flushes go through the wrapped FS and pay whatever
// the server charges.
package pagecache

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// PageSize is the cache granule. 4KiB matches the base page the rest of
// the simulation accounts in.
const PageSize = 4096

// flusherThreadBase keeps revoke-flush sim threads disjoint from workload
// drivers (100–5000), server sessions (9000+) and cleanup threads (12000+).
const flusherThreadBase = 15000

var flusherSeq atomic.Int64

// Leasable is the lease surface the wrapped FS's files must expose for
// their data to be cached; fileserver's remote files implement it. Files
// that don't are served pass-through, uncached.
type Leasable interface {
	// Lease acquires a shared (write=false) or exclusive (write=true)
	// cache lease on the file, reporting whether it was granted.
	Lease(ctx *sim.Ctx, write bool) (bool, error)
	// Unlease voluntarily releases the lease.
	Unlease(ctx *sim.Ctx) error
}

// RevokeSource is how the transport delivers server-initiated lease
// revocations; fileserver.Client implements it.
type RevokeSource interface {
	SetRevokeHandler(func(ino uint64))
}

// Config bounds and prices the cache.
type Config struct {
	// MaxPages bounds cached pages (LRU evicts clean pages beyond it).
	// Default 4096 (16MiB).
	MaxPages int
	// MaxDirty bounds the dirty set across all files; exceeding it flushes
	// the oldest dirty pages synchronously on the writer's clock. Default
	// MaxPages/8.
	MaxDirty int
	// HitLatNS and HitNSPerByte price a cache hit (DRAM-class: no syscall,
	// no device). Defaults 60ns + 0.025ns/B.
	HitLatNS     int64
	HitNSPerByte float64
}

func (c Config) withDefaults() Config {
	if c.MaxPages <= 0 {
		c.MaxPages = 4096
	}
	if c.MaxDirty <= 0 {
		c.MaxDirty = c.MaxPages / 8
		if c.MaxDirty < 1 {
			c.MaxDirty = 1
		}
	}
	if c.HitLatNS <= 0 {
		c.HitLatNS = 60
	}
	if c.HitNSPerByte <= 0 {
		c.HitNSPerByte = 0.025
	}
	return c
}

// Stats is a point-in-time snapshot of cache effectiveness, used by the
// winebench -cache sweep and the no-lost-writeback audit cross-check.
type Stats struct {
	Hits, Misses       int64
	HitBytes           int64
	MissBytes          int64
	FlushedBytes       int64 // dirty bytes written back to the server
	WriteThroughBytes  int64 // bytes written synchronously (appends, unleased writes)
	Evictions, Revokes int64
	FlushErrors        int64
	// MapBypasses counts memory mappings attached through cached handles:
	// each one flushed and dropped the ino's pages and released its lease
	// (DAX stores bypass the lease protocol, so the cache must step aside).
	MapBypasses       int64
	Pages, DirtyPages int
	AttrEntries       int
}

// maxAttrs bounds the attribute map; overflowing clears it (attribute
// entries are cheap to refill and only servable under a lease anyway).
const maxAttrs = 4096

// Cache wraps inner with the page/attribute cache. One Cache corresponds
// to one client session; it is safe for concurrent use by the session's
// goroutines.
type Cache struct {
	inner vfs.FS
	cfg   Config

	// flushMu serialises write-back batches (threshold flush, fsync,
	// close, revoke) so dirty data reaches the server in collection order.
	// Lock order: flushMu before mu; mu is never held across an RPC.
	flushMu  sync.Mutex
	flushCtx *sim.Ctx // clock for revoke-driven flushes; guarded by flushMu

	mu         sync.Mutex
	files      map[uint64]*fileState
	lru        *list.List // of *page; front = most recently used
	dirtyTotal int
	attrs      map[string]vfs.FileInfo
	attrsByIno map[uint64]map[string]struct{}
	// mapped counts live memory mappings per ino (mmap.go): while
	// non-zero the ino is served pass-through and new opens don't lease.
	mapped map[uint64]int
	stats  Stats
}

var _ vfs.FS = (*Cache)(nil)

// New wraps inner. When inner can deliver revocations (fileserver.Client),
// the cache's flush-and-invalidate handler is installed; otherwise leases
// can still be held but never revoked, which is only sound for
// single-mount use — the tests' stub FS.
func New(inner vfs.FS, cfg Config) *Cache {
	c := &Cache{
		inner:      inner,
		cfg:        cfg.withDefaults(),
		flushCtx:   sim.NewCtx(flusherThreadBase+int(flusherSeq.Add(1)), 0),
		files:      make(map[uint64]*fileState),
		lru:        list.New(),
		attrs:      make(map[string]vfs.FileInfo),
		attrsByIno: make(map[uint64]map[string]struct{}),
		mapped:     make(map[uint64]int),
	}
	if rs, ok := inner.(RevokeSource); ok {
		rs.SetRevokeHandler(c.revoked)
	}
	return c
}

// Stats snapshots effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Pages = c.lru.Len()
	st.DirtyPages = c.dirtyTotal
	st.AttrEntries = len(c.attrs)
	return st
}

// Lease modes as the cache tracks them client-side.
const (
	modeNone uint8 = iota
	modeRead
	modeWrite
)

// fileState is the cached view of one leased ino.
type fileState struct {
	ino   uint64
	refs  int   // open cachedFile handles
	mode  uint8 // client-side lease view; modeNone = pass-through
	size  int64 // local authoritative size while leased
	pages map[int64]*page
	dirty int
	// flushFile is the open inner file write-backs go through; reassigned
	// when the handle it came from closes before the others.
	flushFile vfs.File
	handles   map[*cachedFile]struct{}
	// flushErr is a failed write-back, held until the next operation on
	// the file observes it: dirty pages are never dropped silently.
	flushErr error
}

func (st *fileState) takeErrLocked() error {
	err := st.flushErr
	st.flushErr = nil
	return err
}

// page is one cached 4KiB-aligned granule. Bytes past the file size are
// zero, matching hole semantics, and the valid length is governed by the
// fileState's size at read time.
type page struct {
	st    *fileState
	idx   int64
	dirty bool
	elem  *list.Element
	data  [PageSize]byte
}

func (c *Cache) hitCost(n int) int64 {
	return c.cfg.HitLatNS + int64(float64(n)*c.cfg.HitNSPerByte)
}

// --- vfs.FS ---

// Name reports the wrapped file system's name: the cache is transparent.
func (c *Cache) Name() string { return c.inner.Name() }

// Mode implements vfs.FS.
func (c *Cache) Mode() vfs.ConsistencyMode { return c.inner.Mode() }

// Create implements vfs.FS.
func (c *Cache) Create(ctx *sim.Ctx, path string) (vfs.File, error) {
	return c.openLike(ctx, path, true)
}

// Open implements vfs.FS.
func (c *Cache) Open(ctx *sim.Ctx, path string) (vfs.File, error) {
	return c.openLike(ctx, path, false)
}

// openLike opens/creates through the inner FS and, when the file supports
// leases and the server grants one, registers cached state for its ino.
// Every path is canonicalized with vfs.Clean before it is used as a cache
// key, so "/a//b" and "/a/b" can never produce two entries for one file.
func (c *Cache) openLike(ctx *sim.Ctx, path string, create bool) (vfs.File, error) {
	path = vfs.Clean(path)
	var f vfs.File
	var err error
	if create {
		f, err = c.inner.Create(ctx, path)
	} else {
		f, err = c.inner.Open(ctx, path)
	}
	if err != nil {
		return nil, err
	}
	if create {
		c.mu.Lock()
		c.attrDropLocked(path)
		c.mu.Unlock()
	}
	lf, ok := f.(Leasable)
	if !ok {
		return f, nil
	}
	// A live local mapping pins the ino in bypass: no lease, no caching,
	// every access passes through (coherent with DAX stores by
	// construction).
	c.mu.Lock()
	bypass := c.mapped[f.Ino()] > 0
	c.mu.Unlock()
	if bypass {
		return f, nil
	}
	granted, lerr := lf.Lease(ctx, false)
	if lerr != nil || !granted {
		return f, nil // refused or transport trouble: serve uncached
	}
	c.mu.Lock()
	st := c.files[f.Ino()]
	if st == nil {
		st = &fileState{
			ino:     f.Ino(),
			mode:    modeRead,
			size:    f.Size(),
			pages:   make(map[int64]*page),
			handles: make(map[*cachedFile]struct{}),
		}
		c.files[st.ino] = st
	}
	st.refs++
	if st.flushFile == nil {
		st.flushFile = f
	}
	cf := &cachedFile{c: c, st: st, inner: f, lf: lf}
	st.handles[cf] = struct{}{}
	c.mu.Unlock()
	return cf, nil
}

// Mkdir implements vfs.FS.
func (c *Cache) Mkdir(ctx *sim.Ctx, path string) error {
	return c.inner.Mkdir(ctx, vfs.Clean(path))
}

// Unlink implements vfs.FS.
func (c *Cache) Unlink(ctx *sim.Ctx, path string) error {
	path = vfs.Clean(path)
	err := c.inner.Unlink(ctx, path)
	if err == nil {
		c.mu.Lock()
		c.attrDropLocked(path)
		c.mu.Unlock()
	}
	return err
}

// Rmdir implements vfs.FS.
func (c *Cache) Rmdir(ctx *sim.Ctx, path string) error {
	path = vfs.Clean(path)
	err := c.inner.Rmdir(ctx, path)
	if err == nil {
		c.mu.Lock()
		c.attrDropPrefixLocked(path)
		c.mu.Unlock()
	}
	return err
}

// Rename implements vfs.FS. Attribute entries under either name are
// dropped: a rename moves whole subtrees, so prefix entries die too.
func (c *Cache) Rename(ctx *sim.Ctx, oldPath, newPath string) error {
	oldPath, newPath = vfs.Clean(oldPath), vfs.Clean(newPath)
	err := c.inner.Rename(ctx, oldPath, newPath)
	if err == nil {
		c.mu.Lock()
		c.attrDropPrefixLocked(oldPath)
		c.attrDropPrefixLocked(newPath)
		c.mu.Unlock()
	}
	return err
}

// Stat implements vfs.FS. An attribute entry is served only while its ino
// is leased — that is what keeps it coherent: any other session's change
// would have revoked the lease (and dropped the entry) first. The size
// reported is the local leased size, which reflects buffered dirty
// extensions.
func (c *Cache) Stat(ctx *sim.Ctx, path string) (vfs.FileInfo, error) {
	path = vfs.Clean(path)
	c.mu.Lock()
	if fi, ok := c.attrs[path]; ok {
		if st := c.files[fi.Ino]; st != nil && st.mode != modeNone {
			fi.Size = st.size
			c.stats.Hits++
			ctx.Counters.CacheHits++
			c.mu.Unlock()
			ctx.Advance(c.cfg.HitLatNS)
			return fi, nil
		}
	}
	c.mu.Unlock()
	fi, err := c.inner.Stat(ctx, path)
	if err != nil {
		return fi, err
	}
	ctx.Counters.CacheMisses++
	c.mu.Lock()
	c.stats.Misses++
	if !fi.IsDir {
		c.attrPutLocked(path, fi)
	}
	c.mu.Unlock()
	return fi, nil
}

// ReadDir implements vfs.FS (pass-through; listings are not cached).
func (c *Cache) ReadDir(ctx *sim.Ctx, path string) ([]vfs.DirEntry, error) {
	return c.inner.ReadDir(ctx, vfs.Clean(path))
}

// StatFS implements vfs.FS.
func (c *Cache) StatFS(ctx *sim.Ctx) vfs.StatFS { return c.inner.StatFS(ctx) }

// FreeExtents implements vfs.FS.
func (c *Cache) FreeExtents() []alloc.Extent { return c.inner.FreeExtents() }

// Unmount flushes every dirty page, drops all cached state and unmounts
// the wrapped FS.
func (c *Cache) Unmount(ctx *sim.Ctx) error {
	c.flushMu.Lock()
	c.mu.Lock()
	var batch []writeback
	var ferr error
	for _, st := range c.files {
		batch = append(batch, c.collectDirtyLocked(st)...)
		if st.flushErr != nil && ferr == nil {
			ferr = st.takeErrLocked()
		}
		st.mode = modeNone
		c.dropPagesLocked(st)
	}
	c.files = make(map[uint64]*fileState)
	c.attrs = make(map[string]vfs.FileInfo)
	c.attrsByIno = make(map[uint64]map[string]struct{})
	c.mu.Unlock()
	werr := c.writeBack(ctx, batch)
	c.flushMu.Unlock()
	uerr := c.inner.Unmount(ctx)
	if ferr != nil {
		return ferr
	}
	if werr != nil {
		return werr
	}
	return uerr
}

// --- attribute cache (guarded by mu) ---

func (c *Cache) attrPutLocked(path string, fi vfs.FileInfo) {
	if len(c.attrs) >= maxAttrs {
		c.attrs = make(map[string]vfs.FileInfo)
		c.attrsByIno = make(map[uint64]map[string]struct{})
	}
	c.attrs[path] = fi
	set := c.attrsByIno[fi.Ino]
	if set == nil {
		set = make(map[string]struct{})
		c.attrsByIno[fi.Ino] = set
	}
	set[path] = struct{}{}
}

func (c *Cache) attrDropLocked(path string) {
	if fi, ok := c.attrs[path]; ok {
		delete(c.attrs, path)
		if set := c.attrsByIno[fi.Ino]; set != nil {
			delete(set, path)
			if len(set) == 0 {
				delete(c.attrsByIno, fi.Ino)
			}
		}
	}
}

func (c *Cache) attrDropPrefixLocked(path string) {
	c.attrDropLocked(path)
	prefix := path + "/"
	if path == "/" {
		prefix = "/"
	}
	for p := range c.attrs {
		if len(p) > len(prefix) && p[:len(prefix)] == prefix {
			c.attrDropLocked(p)
		}
	}
}

func (c *Cache) attrDropInoLocked(ino uint64) {
	for p := range c.attrsByIno[ino] {
		delete(c.attrs, p)
	}
	delete(c.attrsByIno, ino)
}

// --- page LRU (guarded by mu) ---

func (c *Cache) touchLocked(pg *page) { c.lru.MoveToFront(pg.elem) }

// insertPageLocked adds a page for (st, idx), evicting the least recently
// used clean pages when over MaxPages. Dirty pages are never evicted —
// the dirty bound plus synchronous threshold flushing keeps their count
// bounded separately. Evictions are charged to the inserting thread's
// counters.
func (c *Cache) insertPageLocked(ctx *sim.Ctx, st *fileState, idx int64) *page {
	for c.lru.Len() >= c.cfg.MaxPages {
		if !c.evictOneLocked(ctx) {
			break
		}
	}
	pg := &page{st: st, idx: idx}
	pg.elem = c.lru.PushFront(pg)
	st.pages[idx] = pg
	return pg
}

func (c *Cache) evictOneLocked(ctx *sim.Ctx) bool {
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		pg := e.Value.(*page)
		if pg.dirty {
			continue
		}
		c.removePageLocked(pg)
		c.stats.Evictions++
		ctx.Counters.CacheEvictions++
		return true
	}
	return false
}

func (c *Cache) removePageLocked(pg *page) {
	if pg.dirty {
		pg.dirty = false
		pg.st.dirty--
		c.dirtyTotal--
	}
	c.lru.Remove(pg.elem)
	delete(pg.st.pages, pg.idx)
}

func (c *Cache) dropPagesLocked(st *fileState) {
	for _, pg := range st.pages {
		if pg.dirty {
			pg.dirty = false
			st.dirty--
			c.dirtyTotal--
		}
		c.lru.Remove(pg.elem)
	}
	st.pages = make(map[int64]*page)
}

// --- write-back ---

// writeback is one flushable unit: a page's valid byte range, copied out
// under mu so the RPC can run without it.
type writeback struct {
	st   *fileState
	wf   vfs.File
	off  int64
	data []byte
}

// collectDirtyLocked clears the dirty mark on every dirty page of st and
// returns their valid ranges in ascending offset order (so any holes the
// server materialises match what direct pass-through writes would have
// produced). Pages stay cached as clean copies.
func (c *Cache) collectDirtyLocked(st *fileState) []writeback {
	var out []writeback
	for _, pg := range st.pages {
		if !pg.dirty {
			continue
		}
		pg.dirty = false
		st.dirty--
		c.dirtyTotal--
		out = append(out, c.extractLocked(pg))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].off < out[j].off })
	return out
}

// extractLocked copies a page's valid range for write-back. The caller has
// already cleared the dirty bookkeeping.
func (c *Cache) extractLocked(pg *page) writeback {
	off := pg.idx * PageSize
	n := int64(PageSize)
	if off+n > pg.st.size {
		n = pg.st.size - off
	}
	data := make([]byte, n)
	copy(data, pg.data[:n])
	return writeback{st: pg.st, wf: pg.st.flushFile, off: off, data: data}
}

// writeBack pushes a batch to the server on ctx's clock. Failures stick to
// the owning file (surfaced on its next operation) and drop the failed
// page — visibly, via the error, never silently. Caller holds flushMu and
// must NOT hold mu.
func (c *Cache) writeBack(ctx *sim.Ctx, batch []writeback) error {
	if len(batch) > 0 {
		sp := ctx.StartSpan("cache.writeback")
		defer ctx.EndSpan(sp)
	}
	var first error
	for _, b := range batch {
		if len(b.data) == 0 {
			continue
		}
		var err error
		if b.wf == nil {
			err = vfs.ErrClosed
		} else {
			_, err = b.wf.WriteAt(ctx, b.data, b.off)
		}
		c.mu.Lock()
		if err != nil {
			b.st.flushErr = err
			c.stats.FlushErrors++
			if pg := b.st.pages[b.off/PageSize]; pg != nil {
				c.removePageLocked(pg)
			}
			if first == nil {
				first = err
			}
		} else {
			c.stats.FlushedBytes += int64(len(b.data))
			ctx.Counters.CacheFlushBytes += int64(len(b.data))
		}
		c.mu.Unlock()
	}
	if len(batch) > 0 {
		ctx.Counters.CacheFlushes++
	}
	return first
}

// flushExcess flushes oldest-first until the dirty set is back under
// MaxDirty. Runs on the writer's clock: exceeding the dirty bound is what
// makes write-back caching pay its device cost.
func (c *Cache) flushExcess(ctx *sim.Ctx) error {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	var first error
	for {
		c.mu.Lock()
		if c.dirtyTotal <= c.cfg.MaxDirty {
			c.mu.Unlock()
			return first
		}
		var victim *page
		for e := c.lru.Back(); e != nil; e = e.Prev() {
			if pg := e.Value.(*page); pg.dirty {
				victim = pg
				break
			}
		}
		if victim == nil {
			c.mu.Unlock()
			return first
		}
		victim.dirty = false
		victim.st.dirty--
		c.dirtyTotal--
		b := c.extractLocked(victim)
		c.mu.Unlock()
		if err := c.writeBack(ctx, []writeback{b}); err != nil && first == nil {
			first = err
		}
	}
}

// flushFile synchronously writes back every dirty page of st.
func (c *Cache) flushFile(ctx *sim.Ctx, st *fileState) error {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	c.mu.Lock()
	batch := c.collectDirtyLocked(st)
	c.mu.Unlock()
	return c.writeBack(ctx, batch)
}

// revoked is the lease-revocation handler installed on the transport: the
// server is holding a conflicting request until this returns. Flush every
// dirty page, then drop everything cached for the ino; the file reverts to
// pass-through until reopened. Flushes run on the cache's own flusher
// clock — the session's workload threads are mid-operation on theirs.
func (c *Cache) revoked(ino uint64) {
	c.flushMu.Lock()
	defer c.flushMu.Unlock()
	sp := c.flushCtx.StartSpan("cache.revoke")
	defer c.flushCtx.EndSpan(sp)
	c.mu.Lock()
	st := c.files[ino]
	if st == nil {
		c.mu.Unlock()
		return
	}
	st.mode = modeNone
	batch := c.collectDirtyLocked(st)
	c.attrDropInoLocked(ino)
	c.stats.Revokes++
	c.flushCtx.Counters.CacheRevokes++
	c.mu.Unlock()
	c.writeBack(c.flushCtx, batch)
	c.mu.Lock()
	c.dropPagesLocked(st)
	c.mu.Unlock()
}
