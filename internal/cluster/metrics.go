package cluster

import (
	"repro/internal/metrics"
)

// StatsSource is anything that can snapshot cluster statistics — the
// in-process Cluster here, or a daemon's periodically refreshed copy.
type StatsSource interface {
	Stats() Stats
}

// MetricsCollector exposes replication health on /metrics: stream volume,
// per-replica lag, retries/resyncs, failovers, and — most importantly for
// the robustness story — divergences found. A non-zero
// cluster_divergences_total with zero cluster_failovers_total is the
// page-worthy signal.
func MetricsCollector(src StatsSource) metrics.Collector {
	return metrics.CollectorFunc(func() []metrics.Family {
		st := src.Stats()
		fams := []metrics.Family{
			metrics.Gauge("cluster_epoch", "Current primary epoch.", float64(st.Epoch)),
			metrics.Counter("cluster_failovers_total", "Primary handovers performed.", float64(st.Failovers)),
			metrics.Counter("cluster_divergences_total", "Replica divergences detected by the checker.", float64(st.Divergences)),
			metrics.Counter("cluster_records_logged_total", "Replication records appended to the ring.", float64(st.Repl.RecordsLogged)),
			metrics.Counter("cluster_bytes_logged_total", "Payload bytes appended to the replication ring.", float64(st.Repl.BytesLogged)),
			metrics.Counter("cluster_commits_total", "Journal commit barriers replicated.", float64(st.Repl.Commits)),
			metrics.Counter("cluster_records_streamed_total", "Replication records sent over links (includes retries and resyncs).", float64(st.Repl.RecordsStreamed)),
			metrics.Counter("cluster_bytes_streamed_total", "Payload bytes sent over replication links.", float64(st.Repl.BytesStreamed)),
			metrics.Counter("cluster_retries_total", "Replication link reconnect attempts.", float64(st.Repl.Retries)),
			metrics.Counter("cluster_resyncs_total", "Full-image replica resyncs.", float64(st.Repl.Resyncs)),
			metrics.Counter("cluster_ring_overruns_total", "Ring evictions that forced a replica resync.", float64(st.Repl.RingOverruns)),
			metrics.Counter("cluster_degrades_total", "Links dropped to degraded (divergence window opened).", float64(st.Repl.Degrades)),
			metrics.Counter("cluster_heartbeats_total", "Heartbeat frames sent on idle links.", float64(st.Repl.Heartbeats)),
			metrics.Counter("cluster_sync_waits_total", "Synchronous-mode durability waits.", float64(st.Repl.SyncWaits)),
			metrics.Counter("cluster_sync_timeouts_total", "Durability waits that timed out into degraded mode.", float64(st.Repl.SyncTimeouts)),
		}
		lag := metrics.Family{
			Name: "cluster_replica_lag_records",
			Help: "Records each replica trails the primary by.",
			Type: "gauge",
		}
		state := metrics.Family{
			Name: "cluster_replica_streaming",
			Help: "1 when the replica link is streaming, 0 otherwise.",
			Type: "gauge",
		}
		for _, l := range st.Repl.Links {
			lag.Samples = append(lag.Samples, metrics.Sample{
				Labels: map[string]string{"replica": l.Name},
				Value:  float64(l.Lag),
			})
			v := 0.0
			if l.State == LinkStreaming.String() {
				v = 1
			}
			state.Samples = append(state.Samples, metrics.Sample{
				Labels: map[string]string{"replica": l.Name, "state": l.State},
				Value:  v,
			})
		}
		if len(lag.Samples) > 0 {
			fams = append(fams, lag, state)
		}
		return fams
	})
}
