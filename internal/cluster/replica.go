package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fileserver"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

// ReplicaStats is a point-in-time snapshot of one replica's applier.
type ReplicaStats struct {
	Epoch          uint64
	AppliedSeq     uint64
	AppliedTx      uint64
	RecordsApplied int64
	BytesApplied   int64
	BadRecords     int64 // decode failures (torn/corrupt stream)
	Gaps           int64 // sequence gaps detected
	Rejects        int64 // stale-primary links fenced
	Resyncs        int64 // full-image resyncs completed
	Heartbeats     int64
}

// Replica applies a primary's replication stream to its own device. It is
// passive: the primary dials it (Serve/HandleConn) and drives the
// conversation. One Replica accepts any number of sequential link
// incarnations — reconnects after a transport fault, or a new primary
// after failover — and fences stale epochs.
type Replica struct {
	name string
	dev  *pmem.Device

	// applyDelay, when non-zero, stalls each record batch (wall clock) —
	// the campaign's replica-lag injection.
	applyDelay atomic.Int64

	mu         sync.Mutex
	epoch      uint64
	appliedSeq uint64
	appliedTx  uint64
	resyncing  bool
	promoted   bool
	stats      ReplicaStats
	logf       func(string, ...any)
}

// NewReplica returns a replica applying to dev. logf (nil for silent)
// receives divergence and fencing events.
func NewReplica(name string, dev *pmem.Device, logf func(string, ...any)) *Replica {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Replica{name: name, dev: dev, logf: logf}
}

// Name returns the replica's name.
func (r *Replica) Name() string { return r.name }

// Device returns the replica's backing device.
func (r *Replica) Device() *pmem.Device { return r.dev }

// SetApplyDelay injects a per-batch wall-clock stall (0 disables) — the
// fault campaign's replica-lag scenario.
func (r *Replica) SetApplyDelay(d time.Duration) { r.applyDelay.Store(int64(d)) }

// Stats snapshots the applier counters.
func (r *Replica) Stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.Epoch = r.epoch
	st.AppliedSeq = r.appliedSeq
	st.AppliedTx = r.appliedTx
	return st
}

// AppliedSeq reports the highest contiguous sequence number applied.
func (r *Replica) AppliedSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appliedSeq
}

// WithQuiesced runs f while record application is paused (the applier lock
// is held), giving f a race-free window to inspect the replica's device —
// the divergence checker's entry point against a live replica.
func (r *Replica) WithQuiesced(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f()
}

// Promotable reports whether this replica's image is a complete copy of
// some primary state: the baseline resync finished and no resync is in
// flight. A mid-resync image is a wiped device with a partial snapshot —
// promoting it would mount garbage.
func (r *Replica) Promotable() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats.Resyncs > 0 && !r.resyncing
}

// Promote mounts the replica's image as a live WineFS. The image is a
// crash-consistent copy of the primary's (the stream carries raw stores in
// order), so Mount takes the ordinary recovery path — journal replay plus
// rebuild — exactly as the crashed primary itself would. After Promote the
// replica stops accepting replication links.
func (r *Replica) Promote(ctx *sim.Ctx, opts winefs.Options) (*winefs.FS, error) {
	r.mu.Lock()
	r.promoted = true
	r.mu.Unlock()
	return winefs.Mount(ctx, r.dev, opts)
}

// Serve accepts replication links until the listener closes. Each link is
// handled synchronously per connection but connections are accepted
// concurrently; epoch fencing in HandleConn keeps only the newest primary
// effective.
func (r *Replica) Serve(l fileserver.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			r.HandleConn(conn)
		}()
	}
}

// HandleConn runs one replication link to completion. It returns when the
// transport dies, the primary is fenced, or the replica is promoted; the
// error is diagnostic only (the primary's retry loop owns recovery).
func (r *Replica) HandleConn(conn fileserver.Conn) error {
	var linkEpoch uint64
	helloDone := false
	for {
		id, code, payload, err := fileserver.ReadFrame(conn)
		if err != nil {
			return err
		}
		if !helloDone && code != repHello {
			return fmt.Errorf("cluster: replica %s: first frame %d is not hello", r.name, code)
		}
		switch code {
		case repHello:
			ok, reply, rid, rcode := r.hello(id, payload)
			if werr := fileserver.WriteFrame(conn, rid, rcode, reply); werr != nil {
				return werr
			}
			if !ok {
				return fmt.Errorf("cluster: replica %s: rejected epoch %d", r.name, id)
			}
			linkEpoch = id
			helloDone = true

		case repRecords, repResyncBegin, repResyncEnd, repHeartbeat:
			if d := time.Duration(r.applyDelay.Load()); d > 0 && code == repRecords {
				time.Sleep(d)
			}
			ack, fenced := r.apply(linkEpoch, code, id, payload)
			if fenced {
				// A newer primary took over mid-link: stop acking so the
				// stale one cannot mistake us for durable storage.
				return fmt.Errorf("cluster: replica %s: link epoch %d fenced", r.name, linkEpoch)
			}
			if werr := fileserver.WriteFrame(conn, ack.id, repAck, ack.payload); werr != nil {
				return werr
			}

		default:
			return fmt.Errorf("cluster: replica %s: unknown frame code %d", r.name, code)
		}
	}
}

// hello validates a primary's opening frame under the replica lock.
func (r *Replica) hello(epoch uint64, payload []byte) (ok bool, reply []byte, rid uint64, rcode uint8) {
	d := newFrameDec(payload)
	name := d.str()
	size := d.i64()
	startSeq := d.u64()
	r.mu.Lock()
	defer r.mu.Unlock()
	reject := func(reason string) (bool, []byte, uint64, uint8) {
		r.stats.Rejects++
		r.logf("replica %s: reject %s: %s", r.name, name, reason)
		var e frameEnc
		e.str(reason)
		return false, e.b, r.epoch, repReject
	}
	if !d.ok() {
		return reject("malformed hello")
	}
	if r.promoted {
		return reject("replica promoted")
	}
	if epoch < r.epoch {
		return reject(fmt.Sprintf("stale epoch %d < %d", epoch, r.epoch))
	}
	if size != r.dev.Size() {
		return reject(fmt.Sprintf("device size %d != %d", size, r.dev.Size()))
	}
	r.epoch = epoch
	var flags uint8
	if startSeq != r.appliedSeq+1 {
		// The primary's stream and our applied prefix do not meet; a
		// resync must precede any records.
		flags |= flagGap
	}
	var e frameEnc
	e.u64(r.appliedSeq)
	e.u8(flags)
	return true, e.b, epoch, repHelloAck
}

type ackFrame struct {
	id      uint64
	payload []byte
}

// apply processes one stream frame under the replica lock and builds the
// ack. fenced reports that a newer epoch displaced this link.
func (r *Replica) apply(linkEpoch uint64, code uint8, id uint64, payload []byte) (ackFrame, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if linkEpoch < r.epoch || r.promoted {
		return ackFrame{}, true
	}
	var flags uint8
	switch code {
	case repHeartbeat:
		r.stats.Heartbeats++

	case repResyncBegin:
		d := newFrameDec(payload)
		size := d.i64()
		if !d.ok() || size != r.dev.Size() {
			flags |= flagGap | flagBadRecord
			break
		}
		// Clean slate: the snapshot stream only carries backed chunks, so
		// everything else must read zero, as on the primary.
		r.dev.ZeroRange(0, r.dev.Size())
		r.resyncing = true
		r.stats.Resyncs++

	case repResyncEnd:
		r.resyncing = false
		r.appliedSeq = id
		r.logf("replica %s: resync complete at seq %d", r.name, id)

	case repRecords:
		flags = r.applyBatch(payload)
	}

	var e frameEnc
	e.u64(r.appliedSeq)
	e.u64(r.appliedTx)
	e.u8(flags)
	return ackFrame{id: r.appliedSeq, payload: e.b}, false
}

// applyBatch decodes and applies a repRecords payload. Malformed bytes or
// gaps stop the batch and flag the ack; they never panic and never apply
// out of order.
func (r *Replica) applyBatch(payload []byte) uint8 {
	var flags uint8
	for len(payload) > 0 {
		rec, n, err := DecodeRecord(payload)
		if err != nil {
			r.stats.BadRecords++
			r.logf("replica %s: bad record: %v", r.name, err)
			return flags | flagGap | flagBadRecord
		}
		payload = payload[n:]
		if rec.Seq == 0 {
			// Resync record: apply unsequenced.
			if !r.applyRecord(&rec) {
				return flags | flagGap | flagBadRecord
			}
			continue
		}
		if rec.Seq <= r.appliedSeq {
			continue // duplicate after a retry; idempotent skip
		}
		if rec.Seq != r.appliedSeq+1 {
			r.stats.Gaps++
			r.logf("replica %s: gap: want seq %d got %d", r.name, r.appliedSeq+1, rec.Seq)
			return flags | flagGap
		}
		if !r.applyRecord(&rec) {
			return flags | flagGap | flagBadRecord
		}
		r.appliedSeq = rec.Seq
	}
	return flags
}

// applyRecord lands one record on the device, bounds-checked so a corrupt
// offset cannot panic the applier.
func (r *Replica) applyRecord(rec *Record) bool {
	size := r.dev.Size()
	switch rec.Type {
	case RecCommit:
		r.appliedTx++
		return true
	case RecStore, RecZero, RecDiscard:
		if rec.Off < 0 || rec.N < 0 || rec.Off > size || size-rec.Off < rec.N {
			r.stats.BadRecords++
			r.logf("replica %s: record range [%d,+%d) outside device", r.name, rec.Off, rec.N)
			return false
		}
	}
	switch rec.Type {
	case RecStore:
		r.dev.WriteAt(rec.Data, rec.Off)
		r.stats.BytesApplied += int64(len(rec.Data))
	case RecZero:
		r.dev.ZeroRange(rec.Off, rec.N)
	case RecDiscard:
		r.dev.DiscardRange(rec.Off, rec.N)
	}
	r.stats.RecordsApplied++
	return true
}
