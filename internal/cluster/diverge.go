package cluster

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

// The divergence checker is the cluster's truth oracle: it decides whether
// a replica's image really is the primary's, first byte-for-byte (the
// replication stream promises a physical mirror), then — for images that
// differ physically, e.g. after independent recovery — logically, by
// mounting clones of both and walking the namespace with exact content
// comparison, cross-checked by winefs.Audit on each side.

// Diff is one diverging byte range.
type Diff struct {
	Off int64
	Len int64
}

// maxDiffs caps reported ranges; divergence is a yes/no with examples, not
// an exhaustive delta.
const maxDiffs = 16

// CompareDevices byte-compares two device images chunk by chunk (unbacked
// chunks read as zero on both sides). It returns the first maxDiffs
// diverging ranges; empty means the images are identical.
func CompareDevices(a, b *pmem.Device) []Diff {
	if a.Size() != b.Size() {
		return []Diff{{Off: 0, Len: a.Size()}}
	}
	ia, ib := a.Snapshot(), b.Snapshot()
	chunks := map[int64]struct{}{}
	ia.ForEachChunk(func(off int64, _ []byte) { chunks[off] = struct{}{} })
	ib.ForEachChunk(func(off int64, _ []byte) { chunks[off] = struct{}{} })
	offs := make([]int64, 0, len(chunks))
	for off := range chunks {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })

	var diffs []Diff
	bufA := make([]byte, pmem.ChunkSize)
	bufB := make([]byte, pmem.ChunkSize)
	for _, off := range offs {
		if len(diffs) >= maxDiffs {
			break
		}
		a.ReadAt(bufA, off)
		b.ReadAt(bufB, off)
		if bytes.Equal(bufA, bufB) {
			continue
		}
		// Narrow to the diverging span inside the chunk.
		lo := 0
		for lo < len(bufA) && bufA[lo] == bufB[lo] {
			lo++
		}
		hi := len(bufA)
		for hi > lo && bufA[hi-1] == bufB[hi-1] {
			hi--
		}
		diffs = append(diffs, Diff{Off: off + int64(lo), Len: int64(hi - lo)})
	}
	return diffs
}

// LogicalReport is the outcome of a logical comparison.
type LogicalReport struct {
	// Equal: both clones mounted, audited clean, and hold identical trees.
	Equal bool
	// Diffs lists human-readable mismatches (capped).
	Diffs []string
	// AuditErrs holds Audit failures per side ("a: ...", "b: ...").
	AuditErrs []string
}

func (lr *LogicalReport) diff(format string, args ...any) {
	if len(lr.Diffs) < maxDiffs {
		lr.Diffs = append(lr.Diffs, fmt.Sprintf(format, args...))
	}
	lr.Equal = false
}

// CompareLogical clones both devices (the originals are untouched), mounts
// each clone through the recovery path, runs winefs.Audit on both, and
// walks the namespaces comparing entries and file contents exactly.
func CompareLogical(ctx *sim.Ctx, a, b *pmem.Device, opts winefs.Options) *LogicalReport {
	rep := &LogicalReport{Equal: true}
	fa, err := mountClone(ctx, a, opts)
	if err != nil {
		rep.diff("a: mount failed: %v", err)
		return rep
	}
	defer fa.Unmount(ctx)
	fb, err := mountClone(ctx, b, opts)
	if err != nil {
		rep.diff("b: mount failed: %v", err)
		return rep
	}
	defer fb.Unmount(ctx)
	if err := fa.Audit(ctx); err != nil {
		rep.AuditErrs = append(rep.AuditErrs, fmt.Sprintf("a: %v", err))
		rep.Equal = false
	}
	if err := fb.Audit(ctx); err != nil {
		rep.AuditErrs = append(rep.AuditErrs, fmt.Sprintf("b: %v", err))
		rep.Equal = false
	}
	compareTree(ctx, rep, fa, fb, "/")
	return rep
}

// mountClone mounts a snapshot copy of dev so recovery cannot disturb the
// original image.
func mountClone(ctx *sim.Ctx, dev *pmem.Device, opts winefs.Options) (*winefs.FS, error) {
	clone := pmem.New(dev.Size())
	clone.Restore(dev.Snapshot())
	return winefs.Mount(ctx, clone, opts)
}

// compareTree recursively compares one directory across both mounts.
func compareTree(ctx *sim.Ctx, rep *LogicalReport, fa, fb vfs.FS, dir string) {
	if len(rep.Diffs) >= maxDiffs {
		return
	}
	ea, errA := fa.ReadDir(ctx, dir)
	eb, errB := fb.ReadDir(ctx, dir)
	if (errA == nil) != (errB == nil) {
		rep.diff("%s: readdir a=%v b=%v", dir, errA, errB)
		return
	}
	if errA != nil {
		return
	}
	names := map[string][2]bool{}
	for _, e := range ea {
		v := names[e.Name]
		v[0] = true
		names[e.Name] = v
	}
	for _, e := range eb {
		v := names[e.Name]
		v[1] = true
		names[e.Name] = v
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		v := names[n]
		path := dir + n
		if dir != "/" {
			path = dir + "/" + n
		}
		if !v[0] || !v[1] {
			rep.diff("%s: present a=%v b=%v", path, v[0], v[1])
			continue
		}
		sa, errA := fa.Stat(ctx, path)
		sb, errB := fb.Stat(ctx, path)
		if errA != nil || errB != nil {
			rep.diff("%s: stat a=%v b=%v", path, errA, errB)
			continue
		}
		if sa.IsDir != sb.IsDir {
			rep.diff("%s: isdir a=%v b=%v", path, sa.IsDir, sb.IsDir)
			continue
		}
		if sa.IsDir {
			compareTree(ctx, rep, fa, fb, path)
			continue
		}
		if sa.Size != sb.Size {
			rep.diff("%s: size a=%d b=%d", path, sa.Size, sb.Size)
			continue
		}
		if !compareContent(ctx, fa, fb, path, sa.Size) {
			rep.diff("%s: content differs", path)
		}
	}
}

// compareContent reads both files in chunks and compares exactly.
func compareContent(ctx *sim.Ctx, fa, fb vfs.FS, path string, size int64) bool {
	ha, errA := fa.Open(ctx, path)
	hb, errB := fb.Open(ctx, path)
	if errA != nil || errB != nil {
		return errA == nil && errB == nil
	}
	defer ha.Close(ctx)
	defer hb.Close(ctx)
	const chunk = 64 << 10
	bufA := make([]byte, chunk)
	bufB := make([]byte, chunk)
	for off := int64(0); off < size; off += chunk {
		n := size - off
		if n > chunk {
			n = chunk
		}
		na, errA := ha.ReadAt(ctx, bufA[:n], off)
		nb, errB := hb.ReadAt(ctx, bufB[:n], off)
		if errA != nil || errB != nil || na != nb || !bytes.Equal(bufA[:na], bufB[:nb]) {
			return false
		}
	}
	return true
}

// ConvergeOutcome names the repair-ladder rung that produced convergence.
type ConvergeOutcome string

const (
	// ConvergedClean: the images were already byte-identical.
	ConvergedClean ConvergeOutcome = "clean"
	// ConvergedLogical: bytes differed (divergence detected) but the
	// mounted trees matched — benign physical skew, e.g. independent
	// journal replay.
	ConvergedLogical ConvergeOutcome = "logical"
	// ConvergedRepair: winefs.Repair on the replica restored a clean,
	// logically matching image.
	ConvergedRepair ConvergeOutcome = "repair"
	// ConvergedResync: only restoring the primary's snapshot converged
	// the replica (real divergence, repaired by resync).
	ConvergedResync ConvergeOutcome = "resync"
)

// ConvergeReport describes how a replica reached the primary's image.
type ConvergeReport struct {
	Outcome ConvergeOutcome
	// Detected is true when any rung below "clean" ran — the divergence
	// was seen, not silently absorbed.
	Detected  bool
	ByteDiffs int
	Log       []string
}

// Converge runs the campaign's repair ladder against a replica device:
// byte-compare → logical compare → winefs.Repair + logical compare →
// resync from the primary image. It always converges (the last rung is a
// copy), and the report says how loudly the road there was.
func Converge(ctx *sim.Ctx, primary, replica *pmem.Device, opts winefs.Options) *ConvergeReport {
	rep := &ConvergeReport{}
	diffs := CompareDevices(primary, replica)
	rep.ByteDiffs = len(diffs)
	if len(diffs) == 0 {
		rep.Outcome = ConvergedClean
		return rep
	}
	rep.Detected = true
	rep.Log = append(rep.Log, fmt.Sprintf("byte divergence: %d ranges, first at %d (+%d)", len(diffs), diffs[0].Off, diffs[0].Len))

	if lr := CompareLogical(ctx, primary, replica, opts); lr.Equal {
		rep.Outcome = ConvergedLogical
		return rep
	}

	if _, err := winefs.Repair(replica); err == nil {
		if lr := CompareLogical(ctx, primary, replica, opts); lr.Equal {
			rep.Outcome = ConvergedRepair
			rep.Log = append(rep.Log, "repair converged the replica")
			return rep
		}
	} else {
		rep.Log = append(rep.Log, fmt.Sprintf("repair failed: %v", err))
	}

	replica.Restore(primary.Snapshot())
	rep.Outcome = ConvergedResync
	rep.Log = append(rep.Log, "resynced replica from primary image")
	return rep
}
