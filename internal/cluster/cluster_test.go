package cluster

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/fileserver"
	"repro/internal/pagecache"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newTestCluster(t *testing.T, replicas int, rcfg ReplicatorConfig) (*Cluster, *sim.Ctx) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	c, err := New(ctx, Config{
		Replicas:   replicas,
		DeviceSize: 128 << 20,
		Repl:       rcfg,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(c.Shutdown)
	return c, ctx
}

func pattern(tag byte, i, n int) []byte {
	data := make([]byte, n)
	for j := range data {
		data[j] = tag + byte(i)*7 + byte(j%13)
	}
	return data
}

func writeFiles(t *testing.T, ctx *sim.Ctx, fs vfs.FS, n int, tag byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/f-%c-%02d", tag, i)
		f, err := fs.Create(ctx, path)
		if err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
		data := pattern(tag, i, 3000)
		if _, err := f.Append(ctx, data); err != nil {
			t.Fatalf("append %s: %v", path, err)
		}
		if err := f.Fsync(ctx); err != nil {
			t.Fatalf("fsync %s: %v", path, err)
		}
		if err := f.Close(ctx); err != nil {
			t.Fatalf("close %s: %v", path, err)
		}
	}
}

func verifyFiles(t *testing.T, ctx *sim.Ctx, fs vfs.FS, n int, tag byte) {
	t.Helper()
	for i := 0; i < n; i++ {
		path := fmt.Sprintf("/f-%c-%02d", tag, i)
		f, err := fs.Open(ctx, path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		want := pattern(tag, i, 3000)
		got := make([]byte, len(want))
		if _, err := f.ReadAt(ctx, got, 0); err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: content mismatch after failover", path)
		}
		if err := f.Close(ctx); err != nil {
			t.Fatalf("close %s: %v", path, err)
		}
	}
}

// requireConverged polls until every replica's device byte-matches the
// primary's (links may still be in a backoff sleep when the caller gets
// here, e.g. right after a partition heals).
func requireConverged(t *testing.T, c *Cluster) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.WaitReplicated(200 * time.Millisecond)
		bad := ""
		for _, rep := range c.Replicas() {
			rep.WithQuiesced(func() {
				if diffs := CompareDevices(c.PrimaryDevice(), rep.Device()); len(diffs) != 0 {
					bad = fmt.Sprintf("%s diverged: first range at %d (+%d), %d ranges",
						rep.Name(), diffs[0].Off, diffs[0].Len, len(diffs))
				}
			})
		}
		if bad == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(bad)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterBasicReplication: a synchronous 1-primary/2-replica cluster
// whose replicas end byte-identical to the primary after a write burst
// (including the Mkfs baseline they never saw live, via initial resync).
func TestClusterBasicReplication(t *testing.T) {
	c, ctx := newTestCluster(t, 2, ReplicatorConfig{Sync: true})
	conn, err := c.DialPrimary()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cli, err := fileserver.Dial(conn)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	defer cli.Close()
	if cli.ServerEpoch() != 1 {
		t.Fatalf("epoch = %d, want 1", cli.ServerEpoch())
	}

	writeFiles(t, ctx, cli, 8, 'a')
	if !c.WaitReplicated(10 * time.Second) {
		t.Fatal("replicas did not catch up")
	}
	requireConverged(t, c)

	st := c.Stats()
	if st.Repl.RecordsLogged == 0 || st.Repl.Commits == 0 {
		t.Fatalf("no replication traffic logged: %+v", st.Repl)
	}
	if st.Repl.Resyncs < 2 {
		t.Fatalf("expected one baseline resync per replica, got %d", st.Repl.Resyncs)
	}
	for _, rs := range st.ReplicaSide {
		if rs.BadRecords != 0 {
			t.Fatalf("replica reported %d bad records on a clean stream", rs.BadRecords)
		}
	}
}

// TestClusterFailoverTransparent: kill the primary, promote a replica, and
// keep using the same FailoverClient — pre-failover files must read back
// intact and new writes must land, without the caller seeing an error.
func TestClusterFailoverTransparent(t *testing.T) {
	c, ctx := newTestCluster(t, 2, ReplicatorConfig{Sync: true})
	fc, err := DialFailover(c.DialPrimary, FailoverConfig{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	writeFiles(t, ctx, fc, 6, 'a')
	if !c.WaitReplicated(10 * time.Second) {
		t.Fatal("replicas did not catch up before the kill")
	}

	c.KillPrimary()
	if err := c.FailOver(ctx); err != nil {
		t.Fatalf("failover: %v", err)
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("cluster epoch = %d, want 2", got)
	}

	verifyFiles(t, ctx, fc, 6, 'a')
	writeFiles(t, ctx, fc, 4, 'x')
	verifyFiles(t, ctx, fc, 4, 'x')

	if fc.Failovers() == 0 {
		t.Fatal("client reports zero failovers after the primary died")
	}
	if fc.Epoch() != 2 {
		t.Fatalf("client epoch = %d, want 2", fc.Epoch())
	}
	requireConverged(t, c)
}

// TestFailoverLeaseReestablished (satellite): a page-cache lease taken
// before the failover is silently re-established on the new primary.
func TestFailoverLeaseReestablished(t *testing.T) {
	c, ctx := newTestCluster(t, 1, ReplicatorConfig{Sync: true})
	fc, err := DialFailover(c.DialPrimary, FailoverConfig{})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cache := pagecache.New(fc, pagecache.Config{})

	f, err := cache.Create(ctx, "/leased")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	data := pattern('L', 0, 8192)
	if _, err := f.Append(ctx, data); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := f.Fsync(ctx); err != nil {
		t.Fatalf("fsync: %v", err)
	}
	buf := make([]byte, len(data))
	if _, err := f.ReadAt(ctx, buf, 0); err != nil {
		t.Fatalf("read: %v", err)
	}

	leaseMode := func() uint8 {
		fc.mu.Lock()
		defer fc.mu.Unlock()
		for ff := range fc.files {
			if ff.path == "/leased" {
				ff.mu.Lock()
				defer ff.mu.Unlock()
				return ff.lease
			}
		}
		return 0
	}
	if leaseMode() == 0 {
		t.Fatal("page cache took no lease before failover")
	}

	if !c.WaitReplicated(10 * time.Second) {
		t.Fatal("replica did not catch up before the kill")
	}
	c.KillPrimary()
	if err := c.FailOver(ctx); err != nil {
		t.Fatalf("failover: %v", err)
	}

	// Force a server round-trip so the client notices the dead primary.
	if err := f.Fsync(ctx); err != nil {
		t.Fatalf("fsync after failover: %v", err)
	}
	if got := fc.Failovers(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	if leaseMode() == 0 {
		t.Fatal("lease was not re-established on the new primary")
	}
	got := make([]byte, len(data))
	if _, err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatalf("read after failover: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("leased file content changed across failover")
	}
	if err := f.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestClusterDegradedMode: a replication partition must not block the
// primary — synchronous writes time out into degraded mode, loudly, and
// the replica converges again (via resync) once the partition heals.
func TestClusterDegradedMode(t *testing.T) {
	c, ctx := newTestCluster(t, 1, ReplicatorConfig{
		Sync:         true,
		SyncTimeout:  100 * time.Millisecond,
		DegradeAfter: 2,
		RetryMin:     5 * time.Millisecond,
		RetryMax:     20 * time.Millisecond,
		AckTimeout:   200 * time.Millisecond,
	})
	conn, err := c.DialPrimary()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	cli, err := fileserver.Dial(conn)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	defer cli.Close()

	writeFiles(t, ctx, cli, 2, 'a')
	if !c.WaitReplicated(10 * time.Second) {
		t.Fatal("replica did not catch up")
	}

	c.Partition(true)
	writeFiles(t, ctx, cli, 2, 'p') // must complete despite the partition

	repl, _ := c.Primary()
	if reason, ok := repl.Degraded(); !ok {
		t.Fatal("replicator not degraded during partition")
	} else {
		t.Logf("degraded: %s", reason)
	}
	if st := repl.Stats(); st.Degrades == 0 {
		t.Fatalf("no degrade recorded: %+v", st)
	}

	c.Partition(false)
	requireConverged(t, c)
	verifyFiles(t, ctx, cli, 2, 'p')
}
