package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fileserver"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

// Config sizes an in-process cluster (the orchestration used by tests, the
// fault campaign and winebench -replicated; winefsd wires the same pieces
// over TCP by hand).
type Config struct {
	// Replicas is the number of replica nodes behind the primary.
	// Default 2.
	Replicas int
	// DeviceSize is each node's simulated pmem size (sparse, so big sizes
	// are cheap). Default 256 MiB.
	DeviceSize int64
	// FSOpts configures every node's WineFS identically (a replica's
	// image must mount with the primary's geometry).
	FSOpts winefs.Options
	// Server configures the client-facing primary server.
	Server fileserver.Config
	// Repl configures the replication engine (Epoch is overridden by the
	// cluster's own epoch counter).
	Repl ReplicatorConfig
	// WrapReplConn, when non-nil, wraps the primary side of each
	// replication connection — the fault campaign's torn-stream hook.
	WrapReplConn func(replica string, c fileserver.Conn) fileserver.Conn
	// Logf (nil for silent) narrates cluster events.
	Logf func(string, ...any)
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.DeviceSize <= 0 {
		c.DeviceSize = 256 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// nodeRole is a node's current cluster position.
type nodeRole int32

const (
	rolePrimary nodeRole = iota
	roleReplica
	roleDead // killed primary, image retained for divergence checks
)

// node is one daemon: a device plus either the primary serving stack or a
// replica applier.
type node struct {
	name string
	dev  *pmem.Device

	// Replica side (valid while role == roleReplica).
	rep     *Replica
	replLst *fileserver.PipeListener

	// Primary side (valid while role == rolePrimary).
	fs        *winefs.FS
	srv       *fileserver.Server
	clientLst *fileserver.PipeListener
	repl      *Replicator
	serveDone chan struct{}

	role nodeRole
}

// Cluster wires a primary winefsd and N replicas over in-memory pipes:
// clients dial the current primary (DialPrimary), the primary streams its
// write log to every replica, and failover promotes the most caught-up
// replica under a bumped epoch.
type Cluster struct {
	cfg Config

	mu          sync.Mutex
	nodes       []*node
	primaryIdx  int
	epoch       uint64
	failovers   int64
	divergences int64
	partitioned atomic.Bool
	closed      bool
}

// New builds and starts the cluster: node0 is formatted (Mkfs) and serves
// as the first primary under epoch 1; the rest start as empty replicas
// (their first hello triggers a resync, which for a fresh image is cheap).
func New(ctx *sim.Ctx, cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, epoch: 1}
	for i := 0; i <= cfg.Replicas; i++ {
		n := &node{
			name: fmt.Sprintf("node%d", i),
			dev:  pmem.New(cfg.DeviceSize),
			role: roleReplica,
		}
		c.nodes = append(c.nodes, n)
	}
	primary := c.nodes[0]
	fs, err := winefs.Mkfs(ctx, primary.dev, cfg.FSOpts)
	if err != nil {
		return nil, fmt.Errorf("cluster: mkfs: %w", err)
	}
	for _, n := range c.nodes[1:] {
		c.startReplica(n)
	}
	c.startPrimary(ctx, primary, fs)
	return c, nil
}

// startReplica attaches an applier and a replication listener to n. Takes
// c.mu itself (callers must not hold it): node fields are read under the
// lock by DialPrimary/Replicas/Stats, possibly concurrently with failover
// rewiring.
func (c *Cluster) startReplica(n *node) {
	rep := NewReplica(n.name, n.dev, c.cfg.Logf)
	lst := fileserver.NewPipeListener()
	c.mu.Lock()
	n.role = roleReplica
	n.rep = rep
	n.replLst = lst
	c.mu.Unlock()
	go rep.Serve(lst)
}

// startPrimary stands up the serving stack on n over the already mounted
// fs and links every current replica. Takes c.mu itself (callers must not
// hold it): node fields are read under the lock by DialPrimary/Stats,
// possibly concurrently with failover clients redialing.
func (c *Cluster) startPrimary(ctx *sim.Ctx, n *node, fs *winefs.FS) {
	c.mu.Lock()
	rcfg := c.cfg.Repl
	rcfg.Epoch = c.epoch
	if rcfg.Logf == nil {
		rcfg.Logf = c.cfg.Logf
	}
	repl := NewReplicator(fs, rcfg)
	for _, other := range c.nodes {
		if other == n || other.role != roleReplica {
			continue
		}
		repl.AddReplica(other.name, c.replDial(other))
	}

	scfg := c.cfg.Server
	scfg.Epoch = c.epoch
	scfg.BaseNS = ctx.Now()
	scfg.PostMutate = repl.PostMutate
	srv := fileserver.New(fs, scfg)
	lst := fileserver.NewPipeListener()
	done := make(chan struct{})
	c.mu.Unlock()

	// Hook replication before the node is published as primary: a client
	// write landing before Attach would escape the record log.
	repl.Attach()

	c.mu.Lock()
	n.role = rolePrimary
	n.fs = fs
	n.repl = repl
	n.srv = srv
	n.clientLst = lst
	n.serveDone = done
	c.mu.Unlock()

	go func() {
		srv.Serve(lst)
		close(done)
	}()
}

// replDial builds the primary-side dial function for one replica,
// honouring partition injection and the torn-stream wrapper.
func (c *Cluster) replDial(target *node) func() (fileserver.Conn, error) {
	return func() (fileserver.Conn, error) {
		if c.partitioned.Load() {
			return nil, fmt.Errorf("cluster: replication partitioned")
		}
		conn, err := target.replLst.Dial()
		if err != nil {
			return nil, err
		}
		if c.cfg.WrapReplConn != nil {
			conn = c.cfg.WrapReplConn(target.name, conn)
		}
		return conn, nil
	}
}

// Epoch reports the current primary epoch.
func (c *Cluster) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Primary returns the current primary node's replicator and FS (nil, nil
// if the primary is dead).
func (c *Cluster) Primary() (*Replicator, *winefs.FS) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.nodes[c.primaryIdx]
	if p.role != rolePrimary {
		return nil, nil
	}
	return p.repl, p.fs
}

// PrimaryDevice returns the current primary's device.
func (c *Cluster) PrimaryDevice() *pmem.Device {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[c.primaryIdx].dev
}

// PrimaryName returns the current primary node's name (still the old
// primary's name between KillPrimary and FailOver).
func (c *Cluster) PrimaryName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[c.primaryIdx].name
}

// AwaitConverged polls until every replica's device is byte-identical to
// the primary's (with appliers quiesced during each comparison), or the
// timeout expires. It rides out backoff sleeps and in-flight resyncs that
// a bare WaitReplicated can miss.
func (c *Cluster) AwaitConverged(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.WaitReplicated(100 * time.Millisecond)
		equal := true
		for _, rep := range c.Replicas() {
			rep.WithQuiesced(func() {
				if len(CompareDevices(c.PrimaryDevice(), rep.Device())) != 0 {
					equal = false
				}
			})
		}
		if equal {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Replicas returns the current replica appliers.
func (c *Cluster) Replicas() []*Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Replica
	for _, n := range c.nodes {
		if n.role == roleReplica {
			out = append(out, n.rep)
		}
	}
	return out
}

// Nodes returns every node's name and device (dead ones included) for
// divergence checking.
func (c *Cluster) Nodes() map[string]*pmem.Device {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*pmem.Device, len(c.nodes))
	for _, n := range c.nodes {
		out[n.name] = n.dev
	}
	return out
}

// DialPrimary connects a client to the current primary. During a failover
// window (primary dead, successor not yet promoted) it fails; failover
// clients retry until the new primary listens.
func (c *Cluster) DialPrimary() (fileserver.Conn, error) {
	c.mu.Lock()
	p := c.nodes[c.primaryIdx]
	lst := p.clientLst
	dead := p.role != rolePrimary || c.closed
	c.mu.Unlock()
	if dead || lst == nil {
		return nil, fileserver.ErrShutdown
	}
	return lst.Dial()
}

// Partition cuts (or heals) the replication network: active links are
// severed and, while cut, redials fail. The client-facing side is
// untouched — the primary keeps serving, degrading loudly.
func (c *Cluster) Partition(cut bool) {
	c.partitioned.Store(cut)
	c.mu.Lock()
	p := c.nodes[c.primaryIdx]
	repl := p.repl
	c.mu.Unlock()
	if cut && repl != nil {
		repl.SeverLinks()
	}
	c.cfg.Logf("cluster: replication partition=%v", cut)
}

// KillPrimary crashes the current primary abruptly: replication hooks are
// detached, the client listener closes and every session connection dies
// mid-whatever-it-was-doing. The device image is left exactly as the
// crash left it — the divergence checker's raw material. Returns the dead
// node's device.
func (c *Cluster) KillPrimary() *pmem.Device {
	c.mu.Lock()
	p := c.nodes[c.primaryIdx]
	if p.role != rolePrimary {
		c.mu.Unlock()
		return p.dev
	}
	p.role = roleDead
	repl := p.repl
	srv := p.srv
	lst := p.clientLst
	done := p.serveDone
	c.mu.Unlock()

	c.cfg.Logf("cluster: killing primary %s (epoch %d)", p.name, repl.Epoch())
	// Client side dies first: once sessions are severed no more acks can
	// escape, so every acknowledged write has already cleared its
	// synchronous-replication wait. (Replication torn down first would
	// open a window where the server acks writes that never replicate —
	// acknowledged-write loss the failover clients would then observe.)
	if lst != nil {
		lst.Close()
	}
	// Server shutdown severs sessions; clients see ErrServerGone. The
	// served FS dies with the "process" — its device image stays put.
	srv.Shutdown()
	if done != nil {
		<-done
	}
	repl.Close()
	return p.dev
}

// FailOver promotes the most caught-up replica to primary under a bumped
// epoch. The old primary must already be dead or partitioned (a live,
// reachable primary is not failed over — callers model the failure first).
// Every remaining replica is re-linked to the new primary; their stale
// sequence spaces force resyncs via the hello handshake. A dead old
// primary can be rejoined as a replica with RejoinDead.
func (c *Cluster) FailOver(ctx *sim.Ctx) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: closed")
	}
	var successor *node
	var best uint64
	for _, n := range c.nodes {
		if n.role != roleReplica {
			continue
		}
		// A mid-resync replica holds a wiped device with a partial
		// snapshot — never a promotion candidate, whatever its seq says.
		if !n.rep.Promotable() {
			continue
		}
		if s := n.rep.AppliedSeq(); successor == nil || s > best {
			successor, best = n, s
		}
	}
	if successor == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no in-sync replica to promote")
	}
	c.epoch++
	c.failovers++
	epoch := c.epoch
	c.mu.Unlock()

	c.cfg.Logf("cluster: failing over to %s at applied seq %d, epoch %d", successor.name, best, epoch)
	// Stop accepting replication: a stale primary reconnecting after the
	// promotion must find a server that fences, not an applier. Closing
	// the listener makes its dials fail; the epoch check fences any link
	// already established.
	successor.replLst.Close()
	fs, err := successor.rep.Promote(ctx, c.cfg.FSOpts)
	if err != nil {
		return fmt.Errorf("cluster: promote %s: %w", successor.name, err)
	}

	c.mu.Lock()
	for i, n := range c.nodes {
		if n == successor {
			c.primaryIdx = i
		}
	}
	c.mu.Unlock()
	c.startPrimary(ctx, successor, fs)
	return nil
}

// RejoinDead turns a dead ex-primary into a replica of the current
// primary. Its diverged image is detected by the hello handshake (its
// applied prefix is from an older epoch's sequence space) and resynced —
// the split-brain heal path.
func (c *Cluster) RejoinDead(name string) error {
	c.mu.Lock()
	var target *node
	for _, n := range c.nodes {
		if n.name == name {
			target = n
		}
	}
	p := c.nodes[c.primaryIdx]
	c.mu.Unlock()
	if target == nil {
		return fmt.Errorf("cluster: no node %q", name)
	}
	if target.role != roleDead {
		return fmt.Errorf("cluster: node %q is not dead", name)
	}
	if p.role != rolePrimary || p.repl == nil {
		return fmt.Errorf("cluster: no live primary to rejoin")
	}
	c.startReplica(target)
	p.repl.AddReplica(target.name, c.replDial(target))
	c.cfg.Logf("cluster: %s rejoined as replica", name)
	return nil
}

// Stats aggregates cluster-level counters with the current primary's
// replicator stats (zero value when the primary is dead).
type Stats struct {
	Epoch       uint64
	Failovers   int64
	Divergences int64
	Repl        ReplicatorStats
	ReplicaSide []ReplicaStats
}

// Stats snapshots the cluster.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	p := c.nodes[c.primaryIdx]
	st := Stats{Epoch: c.epoch, Failovers: c.failovers, Divergences: c.divergences}
	var repl *Replicator
	if p.role == rolePrimary {
		repl = p.repl
	}
	var reps []*Replica
	for _, n := range c.nodes {
		if n.role == roleReplica {
			reps = append(reps, n.rep)
		}
	}
	c.mu.Unlock()
	if repl != nil {
		st.Repl = repl.Stats()
	}
	for _, r := range reps {
		st.ReplicaSide = append(st.ReplicaSide, r.Stats())
	}
	return st
}

// NoteDivergence counts an externally detected divergence (the checker
// runs outside the cluster; this feeds the metric).
func (c *Cluster) NoteDivergence(n int64) {
	c.mu.Lock()
	c.divergences += n
	c.mu.Unlock()
}

// WaitReplicated blocks until every live replica of the current primary
// has acked everything logged, or the timeout expires. It reports whether
// full sync was reached — the quiesce step before divergence checks.
func (c *Cluster) WaitReplicated(timeout time.Duration) bool {
	c.mu.Lock()
	p := c.nodes[c.primaryIdx]
	repl := p.repl
	alive := p.role == rolePrimary
	c.mu.Unlock()
	if !alive || repl == nil {
		return false
	}
	repl.mu.Lock()
	target := repl.next - 1
	repl.mu.Unlock()
	return repl.WaitDurable(target, timeout)
}

// Shutdown stops everything: the primary drains (bounded), replicas'
// listeners close.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	nodes := c.nodes
	c.mu.Unlock()
	for _, n := range nodes {
		if n.role == rolePrimary {
			n.repl.Close()
			n.clientLst.Close()
			n.srv.Shutdown()
			<-n.serveDone
		}
		if n.replLst != nil {
			n.replLst.Close()
		}
	}
}
