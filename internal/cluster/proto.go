package cluster

// Replication stream frame codes. They reuse fileserver's length-prefixed
// framing (fileserver.WriteFrame/ReadFrame) but live in their own 200+
// range so a replication frame arriving on a client session — or vice
// versa — is rejected as an unknown code instead of misparsed.
//
// The stream is a synchronous half-duplex RPC: the primary sends one frame
// and waits for the replica's repAck (or repHelloAck/repReject) before
// sending the next. That keeps the link free of demultiplexing machinery
// and makes per-batch failure detection trivial: a missing ack is a dead
// or wedged replica.
const (
	// repHello: primary → replica on connect. Frame id is the primary's
	// epoch; payload: str primaryName | i64 deviceSize | u64 startSeq
	// (first sequence number the primary would stream next).
	repHello uint8 = 200 + iota
	// repHelloAck: replica accepts. Frame id echoes the epoch; payload:
	// u64 appliedSeq | u8 flags.
	repHelloAck
	// repReject: replica refuses the link (stale epoch, size mismatch).
	// Frame id is the replica's current epoch; payload: str reason.
	repReject
	// repRecords: a batch of encoded records, concatenated. Frame id is
	// the first record's seq (0 for resync batches).
	repRecords
	// repResyncBegin: a full-image resync follows. Frame id is the
	// snapshot's sequence number; payload: i64 deviceSize. The replica
	// zeroes its device and applies the following unsequenced batches.
	repResyncBegin
	// repResyncEnd: resync complete; the replica's appliedSeq becomes the
	// frame id (the snapshot seq).
	repResyncEnd
	// repHeartbeat: liveness probe while the stream is idle; the replica
	// answers with repAck.
	repHeartbeat
	// repAck: replica → primary after every repRecords / repResyncBegin /
	// repResyncEnd / repHeartbeat. Frame id is appliedSeq; payload:
	// u64 appliedSeq | u64 appliedTx | u8 flags.
	repAck
)

// repAck / repHelloAck flag bits.
const (
	// flagGap: the replica saw a sequence gap or an unappliable record and
	// needs a resync before it can make progress.
	flagGap uint8 = 1 << iota
	// flagBadRecord: at least one record in the last batch failed to
	// decode (torn or corrupted stream). Implies flagGap.
	flagBadRecord
)
