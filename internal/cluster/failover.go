package cluster

import (
	"errors"
	"fmt"
	"time"

	"sync"

	"repro/internal/alloc"
	"repro/internal/fileserver"
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// FailoverClient is a vfs.FS over a replicated cluster: it wraps a
// fileserver.Client and, when the transport dies with ErrServerGone (or
// the server drains with ErrShutdown), transparently redials "the current
// primary", re-opens every tracked file by path, re-establishes cache
// leases, and retries the interrupted operation with per-op adjudication
// of whether the first attempt already landed.
//
// Epoch fencing: the client remembers the highest server epoch it has
// seen and refuses to adopt a connection announcing a lower one — a stale
// primary resurfacing after failover cannot capture clients.
//
// Adjudication is at-least-once with single-writer files (the ServerMix
// contract): Create returns the existing file untruncated, deletes and
// renames map not-found on retry to success, and Append compares the
// file's server-side size against the pre-append size to decide landed /
// partial / lost.
type FailoverClient struct {
	dial func() (fileserver.Conn, error)
	cfg  FailoverConfig

	name string
	mode vfs.ConsistencyMode

	// fmu single-flights recovery; ops snapshot (cli, gen) and call
	// recover(gen) on transport death — whoever wins redials, everyone
	// else observes the bumped gen and just retries.
	fmu   sync.Mutex
	cli   *fileserver.Client
	gen   uint64
	epoch uint64

	revokeMu sync.Mutex
	onRevoke func(ino uint64)

	mu        sync.Mutex
	files     map[*failoverFile]struct{}
	failovers int64
	closed    bool
}

// FailoverConfig tunes the recovery loop.
type FailoverConfig struct {
	// MaxAttempts bounds redials per recovery (covering the failover
	// window while a successor is promoted). Default 400.
	MaxAttempts int
	// RetryDelay is the wall pause between redials. Default 10ms.
	RetryDelay time.Duration
	// OpRetries bounds recover-and-retry cycles per operation. Default 3.
	OpRetries int
	// Logf (nil for silent) narrates recoveries.
	Logf func(string, ...any)
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 400
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 10 * time.Millisecond
	}
	if c.OpRetries <= 0 {
		c.OpRetries = 3
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

var _ vfs.FS = (*FailoverClient)(nil)

// DialFailover connects to the cluster's current primary.
func DialFailover(dial func() (fileserver.Conn, error), cfg FailoverConfig) (*FailoverClient, error) {
	c := &FailoverClient{
		dial:  dial,
		cfg:   cfg.withDefaults(),
		files: make(map[*failoverFile]struct{}),
	}
	cli, epoch, err := c.dialOnce()
	if err != nil {
		return nil, err
	}
	c.cli = cli
	c.epoch = epoch
	c.name = cli.Name()
	c.mode = cli.Mode()
	cli.SetRevokeHandler(c.forwardRevoke)
	return c, nil
}

func (c *FailoverClient) dialOnce() (*fileserver.Client, uint64, error) {
	conn, err := c.dial()
	if err != nil {
		return nil, 0, err
	}
	cli, err := fileserver.Dial(conn)
	if err != nil {
		return nil, 0, err
	}
	return cli, cli.ServerEpoch(), nil
}

// Failovers reports how many recoveries this client performed.
func (c *FailoverClient) Failovers() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failovers
}

// Epoch reports the highest primary epoch seen.
func (c *FailoverClient) Epoch() uint64 {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.epoch
}

// SetRevokeHandler implements pagecache.RevokeSource.
func (c *FailoverClient) SetRevokeHandler(h func(ino uint64)) {
	c.revokeMu.Lock()
	c.onRevoke = h
	c.revokeMu.Unlock()
}

func (c *FailoverClient) forwardRevoke(ino uint64) {
	c.revokeMu.Lock()
	h := c.onRevoke
	c.revokeMu.Unlock()
	if h != nil {
		h(ino)
	}
}

// current snapshots the active client and its generation.
func (c *FailoverClient) current() (*fileserver.Client, uint64) {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.cli, c.gen
}

// gone reports whether err is a lost-primary error worth a recovery.
func gone(err error) bool {
	return errors.Is(err, fileserver.ErrServerGone) || errors.Is(err, fileserver.ErrShutdown)
}

// recover redials the cluster until a primary with a current-or-newer
// epoch answers, then re-opens tracked files and re-establishes leases.
// genSeen is the generation the caller's failed attempt used; if another
// caller already recovered past it, recover returns immediately.
func (c *FailoverClient) recover(ctx *sim.Ctx, genSeen uint64) error {
	c.fmu.Lock()
	if c.gen != genSeen {
		c.fmu.Unlock()
		return nil
	}
	var lostLeases []uint64
	var err error
	defer func() {
		c.fmu.Unlock()
		// Fire lease-loss notifications outside fmu: the page cache's
		// handler flushes through this very client and may need recovery
		// itself.
		for _, ino := range lostLeases {
			c.forwardRevoke(ino)
		}
	}()

	old := c.cli
	if old != nil {
		old.Close()
	}
	var cli *fileserver.Client
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		var epoch uint64
		cli, epoch, err = c.dialOnce()
		if err != nil {
			time.Sleep(c.cfg.RetryDelay)
			continue
		}
		if epoch < c.epoch {
			// A stale primary answered — fence it and keep looking.
			c.cfg.Logf("failover: rejecting stale primary epoch %d < %d", epoch, c.epoch)
			cli.Close()
			cli = nil
			time.Sleep(c.cfg.RetryDelay)
			continue
		}
		c.epoch = epoch
		break
	}
	if cli == nil {
		if err == nil {
			err = fileserver.ErrServerGone
		}
		return fmt.Errorf("cluster: failover exhausted %d attempts: %w", c.cfg.MaxAttempts, err)
	}
	c.cli = cli
	c.gen++
	cli.SetRevokeHandler(c.forwardRevoke)
	c.mu.Lock()
	c.failovers++
	files := make([]*failoverFile, 0, len(c.files))
	for f := range c.files {
		files = append(files, f)
	}
	c.mu.Unlock()
	c.cfg.Logf("failover: reconnected at epoch %d, re-opening %d files", c.epoch, len(files))
	for _, f := range files {
		if ino, lost := f.reestablish(ctx, cli, c.gen); lost {
			lostLeases = append(lostLeases, ino)
		}
	}
	return nil
}

// run executes op with recover-and-retry. retried is invoked (instead of
// op) on attempts after a recovery, letting callers adjudicate effects of
// the possibly-landed first attempt; nil means "same as op".
func (c *FailoverClient) run(ctx *sim.Ctx, op func(cli *fileserver.Client) error, retried func(cli *fileserver.Client) error) error {
	if retried == nil {
		retried = op
	}
	cli, gen := c.current()
	err := op(cli)
	for i := 0; gone(err) && i < c.cfg.OpRetries; i++ {
		if rerr := c.recover(ctx, gen); rerr != nil {
			return rerr
		}
		cli, gen = c.current()
		err = retried(cli)
	}
	return err
}

// --- vfs.FS ----------------------------------------------------------------

// Name implements vfs.FS.
func (c *FailoverClient) Name() string { return c.name }

// Mode implements vfs.FS.
func (c *FailoverClient) Mode() vfs.ConsistencyMode { return c.mode }

func (c *FailoverClient) openLike(ctx *sim.Ctx, path string, create bool) (vfs.File, error) {
	var inner vfs.File
	err := c.run(ctx, func(cli *fileserver.Client) (err error) {
		// Create on an existing file returns it untruncated (WineFS
		// semantics), so a retried create adjudicates itself.
		if create {
			inner, err = cli.Create(ctx, path)
		} else {
			inner, err = cli.Open(ctx, path)
		}
		return err
	}, nil)
	if err != nil {
		return nil, err
	}
	_, gen := c.current()
	f := &failoverFile{c: c, path: path, f: inner, gen: gen}
	c.mu.Lock()
	c.files[f] = struct{}{}
	c.mu.Unlock()
	return f, nil
}

// Create implements vfs.FS.
func (c *FailoverClient) Create(ctx *sim.Ctx, path string) (vfs.File, error) {
	return c.openLike(ctx, path, true)
}

// Open implements vfs.FS.
func (c *FailoverClient) Open(ctx *sim.Ctx, path string) (vfs.File, error) {
	return c.openLike(ctx, path, false)
}

// Mkdir implements vfs.FS. A retried attempt maps ErrExist to success:
// the first attempt may have landed before the crash.
func (c *FailoverClient) Mkdir(ctx *sim.Ctx, path string) error {
	return c.run(ctx,
		func(cli *fileserver.Client) error { return cli.Mkdir(ctx, path) },
		func(cli *fileserver.Client) error {
			err := cli.Mkdir(ctx, path)
			if errors.Is(err, vfs.ErrExist) {
				return nil
			}
			return err
		})
}

// Unlink implements vfs.FS; retried not-found means the first attempt
// landed.
func (c *FailoverClient) Unlink(ctx *sim.Ctx, path string) error {
	return c.run(ctx,
		func(cli *fileserver.Client) error { return cli.Unlink(ctx, path) },
		func(cli *fileserver.Client) error {
			err := cli.Unlink(ctx, path)
			if errors.Is(err, vfs.ErrNotExist) {
				return nil
			}
			return err
		})
}

// Rmdir implements vfs.FS.
func (c *FailoverClient) Rmdir(ctx *sim.Ctx, path string) error {
	return c.run(ctx,
		func(cli *fileserver.Client) error { return cli.Rmdir(ctx, path) },
		func(cli *fileserver.Client) error {
			err := cli.Rmdir(ctx, path)
			if errors.Is(err, vfs.ErrNotExist) {
				return nil
			}
			return err
		})
}

// Rename implements vfs.FS; a retried not-found is success iff the new
// name exists (the first attempt moved it).
func (c *FailoverClient) Rename(ctx *sim.Ctx, oldPath, newPath string) error {
	return c.run(ctx,
		func(cli *fileserver.Client) error { return cli.Rename(ctx, oldPath, newPath) },
		func(cli *fileserver.Client) error {
			err := cli.Rename(ctx, oldPath, newPath)
			if errors.Is(err, vfs.ErrNotExist) {
				if _, serr := cli.Stat(ctx, newPath); serr == nil {
					return nil
				}
			}
			return err
		})
}

// Stat implements vfs.FS.
func (c *FailoverClient) Stat(ctx *sim.Ctx, path string) (vfs.FileInfo, error) {
	var fi vfs.FileInfo
	err := c.run(ctx, func(cli *fileserver.Client) (err error) {
		fi, err = cli.Stat(ctx, path)
		return err
	}, nil)
	return fi, err
}

// ReadDir implements vfs.FS.
func (c *FailoverClient) ReadDir(ctx *sim.Ctx, path string) ([]vfs.DirEntry, error) {
	var ents []vfs.DirEntry
	err := c.run(ctx, func(cli *fileserver.Client) (err error) {
		ents, err = cli.ReadDir(ctx, path)
		return err
	}, nil)
	return ents, err
}

// StatFS implements vfs.FS.
func (c *FailoverClient) StatFS(ctx *sim.Ctx) vfs.StatFS {
	cli, _ := c.current()
	return cli.StatFS(ctx)
}

// FreeExtents implements vfs.FS.
func (c *FailoverClient) FreeExtents() []alloc.Extent { return nil }

// Unmount implements vfs.FS.
func (c *FailoverClient) Unmount(ctx *sim.Ctx) error {
	c.mu.Lock()
	c.closed = true
	c.files = make(map[*failoverFile]struct{})
	c.mu.Unlock()
	cli, _ := c.current()
	return cli.Unmount(ctx)
}

func (c *FailoverClient) unregister(f *failoverFile) {
	c.mu.Lock()
	delete(c.files, f)
	c.mu.Unlock()
}

// --- failoverFile ----------------------------------------------------------

// failoverFile wraps one remote handle with by-path re-opening. mu guards
// the fields only — never held across an RPC.
type failoverFile struct {
	c    *FailoverClient
	path string

	mu    sync.Mutex
	f     vfs.File
	gen   uint64
	lease uint8 // 0 none, 1 read, 2 write — re-established on recovery
	stale bool  // re-open failed (e.g. unlinked meanwhile)
}

var _ vfs.File = (*failoverFile)(nil)

// reestablish re-opens the file on the new primary and re-acquires its
// lease. Returns (ino, true) when a held lease could not be re-established
// — the page cache must be told to drop its pages.
func (f *failoverFile) reestablish(ctx *sim.Ctx, cli *fileserver.Client, gen uint64) (uint64, bool) {
	f.mu.Lock()
	lease := f.lease
	prevIno := uint64(0)
	if f.f != nil {
		prevIno = f.f.Ino()
	}
	f.mu.Unlock()

	nf, err := cli.Open(ctx, f.path)
	if err != nil {
		f.mu.Lock()
		f.stale = true
		f.gen = gen
		f.lease = 0
		f.mu.Unlock()
		return prevIno, lease != 0
	}
	lost := false
	if lease != 0 {
		granted, lerr := leaseOf(nf).Lease(ctx, lease == 2)
		if lerr != nil || !granted {
			lost = true
			lease = 0
		}
	}
	f.mu.Lock()
	f.f = nf
	f.gen = gen
	f.stale = false
	f.lease = lease
	f.mu.Unlock()
	return nf.Ino(), lost
}

func leaseOf(f vfs.File) interface {
	Lease(ctx *sim.Ctx, write bool) (bool, error)
	Unlease(ctx *sim.Ctx) error
} {
	l, _ := f.(interface {
		Lease(ctx *sim.Ctx, write bool) (bool, error)
		Unlease(ctx *sim.Ctx) error
	})
	return l
}

// snapshot returns the current inner file and generation, or an error for
// a stale handle.
func (f *failoverFile) snapshot() (vfs.File, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stale || f.f == nil {
		return nil, f.gen, vfs.ErrNotExist
	}
	return f.f, f.gen, nil
}

// run executes op on the inner file with recover-and-retry; retried (nil
// = op) adjudicates post-recovery.
func (f *failoverFile) run(ctx *sim.Ctx, op func(vfs.File) error, retried func(vfs.File) error) error {
	if retried == nil {
		retried = op
	}
	inner, gen, err := f.snapshot()
	if err != nil {
		return err
	}
	err = op(inner)
	for i := 0; gone(err) && i < f.c.cfg.OpRetries; i++ {
		if rerr := f.c.recover(ctx, gen); rerr != nil {
			return rerr
		}
		inner, gen, err = f.snapshot()
		if err != nil {
			return err
		}
		err = retried(inner)
	}
	return err
}

// Ino implements vfs.File. Inode numbers are stable across failover: a
// replica's image is byte-identical, so the same path resolves to the
// same ino on the successor.
func (f *failoverFile) Ino() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f == nil {
		return 0
	}
	return f.f.Ino()
}

// Size implements vfs.File.
func (f *failoverFile) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f == nil {
		return 0
	}
	return f.f.Size()
}

// ReadAt implements vfs.File (idempotent: plain retry).
func (f *failoverFile) ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	var n int
	err := f.run(ctx, func(inner vfs.File) (err error) {
		n, err = inner.ReadAt(ctx, p, off)
		return err
	}, nil)
	return n, err
}

// WriteAt implements vfs.File (idempotent: same bytes, same offset).
func (f *failoverFile) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	var n int
	err := f.run(ctx, func(inner vfs.File) (err error) {
		n, err = inner.WriteAt(ctx, p, off)
		return err
	}, nil)
	return n, err
}

// Append implements vfs.File with size adjudication: the pre-append size
// tells a retried attempt whether the bytes landed (size advanced by
// len(p)), were lost (size unchanged — re-append), or landed partially
// (append the tail). Sound for single-writer files, which is the
// workloads' contract.
func (f *failoverFile) Append(ctx *sim.Ctx, p []byte) (int, error) {
	inner, gen, err := f.snapshot()
	if err != nil {
		return 0, err
	}
	base := inner.Size()
	var n int
	n, err = inner.Append(ctx, p)
	for i := 0; gone(err) && i < f.c.cfg.OpRetries; i++ {
		if rerr := f.c.recover(ctx, gen); rerr != nil {
			return 0, rerr
		}
		inner, gen, err = f.snapshot()
		if err != nil {
			return 0, err
		}
		cur := inner.Size() // refreshed by the re-open
		switch {
		case cur >= base+int64(len(p)):
			return len(p), nil
		case cur <= base:
			n, err = inner.Append(ctx, p)
		default:
			var m int
			m, err = inner.Append(ctx, p[cur-base:])
			n = int(cur-base) + m
		}
	}
	return n, err
}

// Truncate implements vfs.File (idempotent).
func (f *failoverFile) Truncate(ctx *sim.Ctx, size int64) error {
	return f.run(ctx, func(inner vfs.File) error { return inner.Truncate(ctx, size) }, nil)
}

// Fallocate implements vfs.File (idempotent).
func (f *failoverFile) Fallocate(ctx *sim.Ctx, off, n int64) error {
	return f.run(ctx, func(inner vfs.File) error { return inner.Fallocate(ctx, off, n) }, nil)
}

// Fsync implements vfs.File. With synchronous replication a positive ack
// means the data is on every live replica; after failover the successor
// has it, so a retried fsync is a plain retry.
func (f *failoverFile) Fsync(ctx *sim.Ctx) error {
	return f.run(ctx, func(inner vfs.File) error { return inner.Fsync(ctx) }, nil)
}

// Mmap implements vfs.File.
func (f *failoverFile) Mmap(ctx *sim.Ctx, length int64) (*mmu.Mapping, error) {
	return nil, fileserver.ErrNotSupported
}

// Extents implements vfs.File.
func (f *failoverFile) Extents() []mmu.Extent { return nil }

// SetXattr implements vfs.File (idempotent: last-writer-wins).
func (f *failoverFile) SetXattr(ctx *sim.Ctx, name string, value []byte) error {
	return f.run(ctx, func(inner vfs.File) error { return inner.SetXattr(ctx, name, value) }, nil)
}

// GetXattr implements vfs.File.
func (f *failoverFile) GetXattr(ctx *sim.Ctx, name string) ([]byte, bool) {
	inner, _, err := f.snapshot()
	if err != nil {
		return nil, false
	}
	return inner.GetXattr(ctx, name)
}

// Lease implements pagecache.Leasable, remembering the mode so recovery
// can re-establish it on the new primary.
func (f *failoverFile) Lease(ctx *sim.Ctx, write bool) (bool, error) {
	var granted bool
	err := f.run(ctx, func(inner vfs.File) error {
		l := leaseOf(inner)
		if l == nil {
			return fileserver.ErrNotSupported
		}
		var lerr error
		granted, lerr = l.Lease(ctx, write)
		return lerr
	}, nil)
	if err == nil && granted {
		f.mu.Lock()
		if write {
			f.lease = 2
		} else {
			f.lease = 1
		}
		f.mu.Unlock()
	}
	return granted, err
}

// Unlease implements pagecache.Leasable.
func (f *failoverFile) Unlease(ctx *sim.Ctx) error {
	f.mu.Lock()
	f.lease = 0
	f.mu.Unlock()
	return f.run(ctx, func(inner vfs.File) error {
		l := leaseOf(inner)
		if l == nil {
			return nil
		}
		return l.Unlease(ctx)
	}, nil)
}

// Close implements vfs.File. A close interrupted by a crash is complete
// by definition: the dead server closed every handle in teardown.
func (f *failoverFile) Close(ctx *sim.Ctx) error {
	f.c.unregister(f)
	inner, _, err := f.snapshot()
	if err != nil {
		return nil // stale handle: the server-side close already happened
	}
	cerr := inner.Close(ctx)
	if gone(cerr) {
		return nil
	}
	return cerr
}
