package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fileserver"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

// LinkState is a replica link's lifecycle position.
type LinkState int32

const (
	// LinkConnecting: dialing or backing off between attempts.
	LinkConnecting LinkState = iota
	// LinkStreaming: connected and shipping records.
	LinkStreaming
	// LinkDegraded: too many consecutive failures or a durability-wait
	// timeout; the primary keeps serving and keeps retrying, but no
	// longer counts this replica towards synchronous durability.
	LinkDegraded
	// LinkFenced: the replica rejected us as a stale primary. Terminal —
	// a fenced primary must never be trusted with this replica again.
	LinkFenced
	// LinkStopped: the replicator shut down.
	LinkStopped
)

func (s LinkState) String() string {
	switch s {
	case LinkConnecting:
		return "connecting"
	case LinkStreaming:
		return "streaming"
	case LinkDegraded:
		return "degraded"
	case LinkFenced:
		return "fenced"
	case LinkStopped:
		return "stopped"
	}
	return fmt.Sprintf("state%d", int32(s))
}

// ReplicatorConfig tunes a primary's replication engine. All durations are
// wall-clock: replication liveness (like the lease RevokeTimeout) is a
// property of the real execution, not of simulated time.
type ReplicatorConfig struct {
	// Epoch is this primary's incarnation number, announced in every
	// hello and checked by replicas against newer primaries.
	Epoch uint64
	// RingRecords bounds the in-memory record ring (the bounded
	// replication queue). A replica that falls behind by more than the
	// ring is resynced from a device snapshot rather than buffering
	// without limit. Default 16384.
	RingRecords int
	// BatchRecords / BatchBytes bound one repRecords frame. Defaults
	// 256 records / 1MiB.
	BatchRecords int
	BatchBytes   int
	// HeartbeatEvery is the idle interval after which a heartbeat probes
	// the link. Default 50ms.
	HeartbeatEvery time.Duration
	// AckTimeout bounds the wait for a replica's ack before the link is
	// declared dead and redialed. Default 2s.
	AckTimeout time.Duration
	// RetryMin/RetryMax bound the exponential backoff between dial
	// attempts; each delay gets ±50% deterministic jitter. Defaults
	// 5ms / 500ms.
	RetryMin time.Duration
	RetryMax time.Duration
	// DegradeAfter is the consecutive-failure count that flips a link to
	// LinkDegraded (retrying continues forever regardless). Default 4.
	DegradeAfter int
	// Sync, when true, makes mutating requests wait (via the server's
	// PostMutate hook) until every live replica has acked the mutation's
	// records — synchronous replication. Timeouts degrade laggards
	// instead of blocking the client forever.
	Sync bool
	// SyncTimeout bounds one synchronous-durability wait. Default 2s.
	SyncTimeout time.Duration
	// LatencyNS and NSPerByte price replication in virtual time: every
	// mutating request is charged LatencyNS + bytes*NSPerByte when Sync
	// is on, whether or not the wall-clock wait was long. Defaults
	// 1200ns + 0.25ns/B (one round trip to a DRAM-speed peer).
	LatencyNS int64
	NSPerByte float64
	// Seed feeds the jitter RNG (deterministic backoff schedules).
	Seed uint64
	// Logf (nil for silent) receives degradation/divergence events.
	Logf func(string, ...any)
}

func (c ReplicatorConfig) withDefaults() ReplicatorConfig {
	if c.RingRecords <= 0 {
		c.RingRecords = 16384
	}
	if c.BatchRecords <= 0 {
		c.BatchRecords = 256
	}
	if c.BatchBytes <= 0 {
		c.BatchBytes = 1 << 20
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = 2 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 5 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 500 * time.Millisecond
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 4
	}
	if c.SyncTimeout <= 0 {
		c.SyncTimeout = 2 * time.Second
	}
	if c.LatencyNS <= 0 {
		c.LatencyNS = 1200
	}
	if c.NSPerByte <= 0 {
		c.NSPerByte = 0.25
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// LinkStats snapshots one replica link.
type LinkStats struct {
	Name       string
	State      string
	AppliedSeq uint64
	// Lag is the record count the replica trails the primary by.
	Lag     uint64
	Retries int64
	Resyncs int64
}

// ReplicatorStats aggregates the engine.
type ReplicatorStats struct {
	Epoch uint64
	// RecordsLogged counts records appended to the ring — a pure function
	// of the workload, so benchmarks can gate it exactly.
	RecordsLogged int64
	BytesLogged   int64
	Commits       int64
	// RecordsStreamed counts records actually sent (includes retries and
	// resync records, so it is timing-dependent).
	RecordsStreamed int64
	BytesStreamed   int64
	Retries         int64
	Resyncs         int64
	RingOverruns    int64
	Degrades        int64
	Heartbeats      int64
	SyncWaits       int64
	SyncTimeouts    int64
	Links           []LinkStats
}

// link is the per-replica sender state. cursor/appliedSeq/state are
// guarded by the replicator mutex; the sender goroutine owns the conn.
type link struct {
	name string
	dial func() (fileserver.Conn, error)

	state      LinkState
	cursor     uint64 // next seq to send
	appliedSeq uint64 // last acked
	needResync bool
	retries    int64
	resyncs    int64

	wake chan struct{} // 1-buffered nudge when records arrive
	conn fileserver.Conn
}

// Replicator taps a primary's device + journal and streams the mutation
// record log to its replicas. Install with Attach, which wires the
// pmem.WriteObserver and winefs.CommitHook; Detach unwires them (the
// primary "crashing" or being fenced).
type Replicator struct {
	dev *pmem.Device
	fs  *winefs.FS
	cfg ReplicatorConfig

	mu   sync.Mutex
	cond *sync.Cond // broadcast on ack progress and shutdown
	// ring[i] holds seq start+i+1... in ring order; start is the seq of
	// the oldest retained record minus one (i.e. records (start, next)
	// are retained, next is the next seq to assign).
	ring    []Record
	ringOff int // index of the oldest record
	start   uint64
	next    uint64
	links   []*link
	closed  bool
	stats   ReplicatorStats

	wg sync.WaitGroup
}

// NewReplicator builds the engine for a mounted primary fs. Call Attach to
// start observing and AddReplica per replica before Attach (links added
// later start streaming immediately).
func NewReplicator(fs *winefs.FS, cfg ReplicatorConfig) *Replicator {
	r := &Replicator{
		dev:  fs.Device(),
		fs:   fs,
		cfg:  cfg.withDefaults(),
		next: 1,
	}
	r.cond = sync.NewCond(&r.mu)
	r.ring = make([]Record, 0, r.cfg.RingRecords)
	return r
}

// Epoch returns the primary epoch this replicator announces.
func (r *Replicator) Epoch() uint64 { return r.cfg.Epoch }

// AddReplica registers a replica endpoint and starts its sender.
func (r *Replicator) AddReplica(name string, dial func() (fileserver.Conn, error)) {
	l := &link{
		name: name,
		dial: dial,
		// A new link's replica image is unknown to this primary (empty,
		// stale, or from another epoch's sequence space), and the primary's
		// own pre-Attach writes — Mkfs at the very least — were never
		// logged. The first conversation therefore always baselines with a
		// snapshot resync; stream-position tracking takes over from there.
		needResync: true,
		cursor:     1,
		wake:       make(chan struct{}, 1),
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.links = append(r.links, l)
	r.wg.Add(1)
	r.mu.Unlock()
	go r.sender(l)
}

// Attach starts observing the primary's device and journal. The device
// snapshot taken by any subsequent resync is ordered after every record
// already in the ring, so Attach must run before the FS serves traffic.
func (r *Replicator) Attach() {
	r.fs.SetCommitHook(func(txid uint64) {
		r.append(Record{Type: RecCommit, Off: int64(txid)})
		r.mu.Lock()
		r.stats.Commits++
		r.mu.Unlock()
	})
	r.dev.SetWriteObserver(r)
}

// Detach stops observing (the hooks become no-ops). Streaming of already
// logged records continues until Close.
func (r *Replicator) Detach() {
	r.dev.SetWriteObserver(nil)
	r.fs.SetCommitHook(nil)
}

// ObserveWrite implements pmem.WriteObserver.
func (r *Replicator) ObserveWrite(off int64, data []byte) {
	// Records cap their payload; split rare giant stores.
	for len(data) > 0 {
		n := len(data)
		if n > maxRecData {
			n = maxRecData
		}
		r.append(Record{Type: RecStore, Off: off, N: int64(n), Data: append([]byte(nil), data[:n]...)})
		off += int64(n)
		data = data[n:]
	}
}

// ObserveZero implements pmem.WriteObserver.
func (r *Replicator) ObserveZero(off, n int64) {
	r.append(Record{Type: RecZero, Off: off, N: n})
}

// ObserveDiscard implements pmem.WriteObserver.
func (r *Replicator) ObserveDiscard(off, n int64) {
	r.append(Record{Type: RecDiscard, Off: off, N: n})
}

// append assigns the next sequence number and retains the record in the
// bounded ring. When the ring is full the oldest record is dropped and
// every link still needing it is marked for resync — bounded memory, never
// unbounded buffering.
func (r *Replicator) append(rec Record) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	rec.Seq = r.next
	r.next++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, rec)
	} else {
		// Overwrite the oldest slot.
		evicted := r.start + 1
		r.ring[r.ringOff] = rec
		r.ringOff = (r.ringOff + 1) % len(r.ring)
		r.start = evicted
		r.stats.RingOverruns++
		for _, l := range r.links {
			if l.cursor <= evicted && !l.needResync && l.state != LinkFenced {
				l.needResync = true
				r.cfg.Logf("replicator: %s overran the ring at seq %d; resync scheduled", l.name, evicted)
			}
		}
	}
	r.stats.RecordsLogged++
	r.stats.BytesLogged += int64(len(rec.Data))
	links := r.links
	r.mu.Unlock()
	for _, l := range links {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
}

// recordAt returns the retained record with the given seq; the caller must
// hold r.mu and guarantee start < seq < next.
func (r *Replicator) recordAt(seq uint64) *Record {
	idx := (r.ringOff + int(seq-r.start-1)) % len(r.ring)
	return &r.ring[idx]
}

// Stats snapshots the engine.
func (r *Replicator) Stats() ReplicatorStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.stats
	st.Epoch = r.cfg.Epoch
	st.Links = make([]LinkStats, 0, len(r.links))
	for _, l := range r.links {
		st.Links = append(st.Links, LinkStats{
			Name:       l.name,
			State:      l.state.String(),
			AppliedSeq: l.appliedSeq,
			Lag:        r.next - 1 - l.appliedSeq,
			Retries:    l.retries,
			Resyncs:    l.resyncs,
		})
	}
	return st
}

// Degraded reports whether any link is degraded or fenced — the primary is
// serving without full redundancy.
func (r *Replicator) Degraded() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.links {
		if l.state == LinkDegraded || l.state == LinkFenced {
			return fmt.Sprintf("replica %s %s", l.name, l.state), true
		}
	}
	return "", false
}

// PostMutate is the fileserver.Config hook: it charges the deterministic
// virtual cost of replicating bytes and, in Sync mode, wall-waits until
// every live replica has acked everything logged so far.
func (r *Replicator) PostMutate(ctx *sim.Ctx, bytes int64) {
	if !r.cfg.Sync {
		return
	}
	// Virtual cost is charged unconditionally and deterministically; the
	// wall wait below affects only real time.
	ctx.Advance(r.cfg.LatencyNS + int64(float64(bytes)*r.cfg.NSPerByte))
	r.mu.Lock()
	target := r.next - 1
	r.stats.SyncWaits++
	r.mu.Unlock()
	r.WaitDurable(target, r.cfg.SyncTimeout)
}

// WaitDurable blocks until every non-degraded, non-fenced link has acked
// seq, or the timeout expires — in which case the laggards are degraded
// (the degraded-mode contract: availability over redundancy, loudly).
// It reports whether full durability was reached in time.
func (r *Replicator) WaitDurable(seq uint64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	timedOut := false
	timer := time.AfterFunc(timeout, func() {
		r.mu.Lock()
		timedOut = true
		r.mu.Unlock()
		r.cond.Broadcast()
	})
	defer timer.Stop()

	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		pending := 0
		for _, l := range r.links {
			if l.state == LinkDegraded || l.state == LinkFenced || l.state == LinkStopped {
				continue
			}
			if l.appliedSeq < seq {
				pending++
			}
		}
		if pending == 0 || r.closed {
			return pending == 0
		}
		if timedOut || !time.Now().Before(deadline) {
			for _, l := range r.links {
				if l.state != LinkDegraded && l.state != LinkFenced && l.state != LinkStopped && l.appliedSeq < seq {
					l.state = LinkDegraded
					r.stats.Degrades++
					r.cfg.Logf("replicator: %s degraded: no ack for seq %d within %v (divergence window open)", l.name, seq, timeout)
				}
			}
			return false
		}
		r.cond.Wait()
	}
}

// SeverLinks abruptly closes every live link connection (fault injection:
// a network partition). Senders observe transport errors and enter their
// retry loops; whether they ever reconnect is up to the dial functions.
func (r *Replicator) SeverLinks() {
	r.mu.Lock()
	conns := make([]fileserver.Conn, 0, len(r.links))
	for _, l := range r.links {
		if l.conn != nil {
			conns = append(conns, l.conn)
		}
	}
	r.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Close stops every sender and waits for them. The observers should be
// Detached first (Close does it as a belt-and-braces measure).
func (r *Replicator) Close() {
	r.Detach()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	conns := make([]fileserver.Conn, 0, len(r.links))
	for _, l := range r.links {
		if l.conn != nil {
			conns = append(conns, l.conn)
		}
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	r.mu.Unlock()
	r.cond.Broadcast()
	for _, c := range conns {
		c.Close()
	}
	r.wg.Wait()
}

// sender is the per-link goroutine: dial with backoff+jitter, handshake,
// resync if needed, stream batches, heartbeat when idle.
func (r *Replicator) sender(l *link) {
	defer r.wg.Done()
	rng := sim.NewRand(r.cfg.Seed ^ hashName(l.name))
	failures := 0
	for {
		r.mu.Lock()
		if r.closed || l.state == LinkFenced {
			if l.state != LinkFenced {
				l.state = LinkStopped
			}
			r.mu.Unlock()
			return
		}
		l.state = LinkConnecting
		r.mu.Unlock()

		conn, err := l.dial()
		progressed := false
		if err == nil {
			progressed, err = r.runLink(l, conn)
			conn.Close()
			r.mu.Lock()
			l.conn = nil
			fenced := l.state == LinkFenced
			closed := r.closed
			r.mu.Unlock()
			if fenced || closed {
				continue // top of loop exits
			}
		}
		if progressed {
			// The link streamed before failing; this is a fresh outage,
			// not another attempt in an ongoing one.
			failures = 0
		}
		failures++
		r.mu.Lock()
		l.retries++
		r.stats.Retries++
		if failures >= r.cfg.DegradeAfter && l.state != LinkDegraded {
			l.state = LinkDegraded
			r.stats.Degrades++
			r.cfg.Logf("replicator: %s degraded after %d consecutive failures (%v)", l.name, failures, err)
		}
		closed := r.closed
		r.mu.Unlock()
		r.cond.Broadcast()
		if closed {
			continue
		}
		// Exponential backoff with ±50% jitter, deterministic per link.
		delay := r.cfg.RetryMin << uint(min(failures-1, 16))
		if delay > r.cfg.RetryMax || delay <= 0 {
			delay = r.cfg.RetryMax
		}
		jitter := time.Duration(float64(delay) * (0.5 + rng.Float64()))
		time.Sleep(jitter)
	}
}

// runLink drives one connected incarnation of a link until a transport or
// protocol failure. progressed reports whether the handshake completed
// (the failure counter resets on progress); fencing is signalled via
// l.state.
func (r *Replicator) runLink(l *link, conn fileserver.Conn) (progressed bool, _ error) {
	r.mu.Lock()
	l.conn = conn
	r.mu.Unlock()

	// Handshake. startSeq is where our stream would resume; the replica
	// tells us whether that meets its applied prefix.
	r.mu.Lock()
	startSeq := l.cursor
	r.mu.Unlock()
	var e frameEnc
	e.str("primary")
	e.i64(r.dev.Size())
	e.u64(startSeq)
	if err := r.sendFrame(conn, r.cfg.Epoch, repHello, e.b); err != nil {
		return false, err
	}
	id, code, payload, err := r.readAck(conn)
	if err != nil {
		return false, err
	}
	switch code {
	case repReject:
		r.mu.Lock()
		l.state = LinkFenced
		r.mu.Unlock()
		r.cond.Broadcast()
		d := newFrameDec(payload)
		reason := d.str()
		r.cfg.Logf("replicator: %s fenced us (epoch %d): %s — writes since the last common seq are divergent", l.name, id, reason)
		return false, fmt.Errorf("cluster: fenced: %s", reason)
	case repHelloAck:
		d := newFrameDec(payload)
		applied := d.u64()
		flags := d.u8()
		if !d.ok() {
			return false, fmt.Errorf("cluster: malformed hello ack")
		}
		r.mu.Lock()
		l.appliedSeq = applied
		if flags&flagGap != 0 || l.cursor != applied+1 || applied+1 <= r.start {
			l.needResync = true
		}
		r.mu.Unlock()
	default:
		return false, fmt.Errorf("cluster: unexpected handshake code %d", code)
	}

	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return true, nil
		}
		if l.needResync {
			r.mu.Unlock()
			if err := r.resync(l, conn); err != nil {
				return true, err
			}
			continue
		}
		// Collect one batch.
		var batch []byte
		var first uint64
		nrec := 0
		for l.cursor < r.next && nrec < r.cfg.BatchRecords && len(batch) < r.cfg.BatchBytes {
			if l.cursor <= r.start {
				// Fell out of the ring while batching: resync.
				l.needResync = true
				break
			}
			rec := r.recordAt(l.cursor)
			if first == 0 {
				first = rec.Seq
			}
			batch = AppendRecord(batch, rec)
			l.cursor++
			nrec++
		}
		if l.needResync {
			r.mu.Unlock()
			continue
		}
		streaming := l.state != LinkDegraded
		l.state = LinkStreaming
		if !streaming {
			r.cfg.Logf("replicator: %s recovered, streaming from seq %d", l.name, first)
		}
		r.mu.Unlock()

		if nrec == 0 {
			// Idle: wait for work or heartbeat the link.
			select {
			case <-l.wake:
				continue
			case <-time.After(r.cfg.HeartbeatEvery):
			}
			r.mu.Lock()
			r.stats.Heartbeats++
			r.mu.Unlock()
			if err := r.sendFrame(conn, 0, repHeartbeat, nil); err != nil {
				return true, err
			}
			if err := r.consumeAck(l, conn); err != nil {
				return true, err
			}
			continue
		}

		if err := r.sendFrame(conn, first, repRecords, batch); err != nil {
			r.rewind(l, first)
			return true, err
		}
		r.mu.Lock()
		r.stats.RecordsStreamed += int64(nrec)
		r.stats.BytesStreamed += int64(len(batch))
		r.mu.Unlock()
		if err := r.consumeAck(l, conn); err != nil {
			r.rewind(l, first)
			return true, err
		}
	}
}

// rewind resets the cursor after a failed send so the records are retried
// on the next incarnation (the replica skips duplicates by seq).
func (r *Replicator) rewind(l *link, to uint64) {
	r.mu.Lock()
	if !l.needResync && to > 0 && to > r.start {
		l.cursor = to
	} else if to <= r.start {
		l.needResync = true
	}
	r.mu.Unlock()
}

// resync streams a full device snapshot: everything the ring no longer
// retains, compressed to the chunks that exist. The snapshot is taken
// under the replicator lock, so it is consistent with a seq boundary:
// records ≤ snapSeq are included in (or superseded by) the image, records
// > snapSeq stream after it and re-apply idempotently.
func (r *Replicator) resync(l *link, conn fileserver.Conn) error {
	r.mu.Lock()
	snapSeq := r.next - 1
	img := r.dev.Snapshot()
	l.needResync = false
	l.resyncs++
	r.stats.Resyncs++
	r.mu.Unlock()
	r.cfg.Logf("replicator: resyncing %s at seq %d", l.name, snapSeq)

	var e frameEnc
	e.i64(img.Size())
	if err := r.sendFrame(conn, snapSeq, repResyncBegin, e.b); err != nil {
		return err
	}
	if err := r.consumeAck(l, conn); err != nil {
		return err
	}
	var batch []byte
	var batchErr error
	nrec := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := r.sendFrame(conn, 0, repRecords, batch); err != nil {
			return err
		}
		r.mu.Lock()
		r.stats.RecordsStreamed += int64(nrec)
		r.stats.BytesStreamed += int64(len(batch))
		r.mu.Unlock()
		batch, nrec = batch[:0], 0
		return r.consumeAck(l, conn)
	}
	img.ForEachChunk(func(off int64, data []byte) {
		if batchErr != nil {
			return
		}
		rec := Record{Type: RecStore, Off: off, N: int64(len(data)), Data: data}
		batch = AppendRecord(batch, &rec)
		nrec++
		if nrec >= r.cfg.BatchRecords || len(batch) >= r.cfg.BatchBytes {
			batchErr = flush()
		}
	})
	if batchErr != nil {
		return batchErr
	}
	if err := flush(); err != nil {
		return err
	}
	if err := r.sendFrame(conn, snapSeq, repResyncEnd, nil); err != nil {
		return err
	}
	if err := r.consumeAck(l, conn); err != nil {
		return err
	}
	r.mu.Lock()
	if l.cursor < snapSeq+1 {
		l.cursor = snapSeq + 1
	}
	r.mu.Unlock()
	return nil
}

// sendFrame writes one frame with the ack timeout armed: the pipe
// transport is a rendezvous, so a replica that stopped reading would wedge
// the write itself — the AfterFunc severs the conn and fails the write.
func (r *Replicator) sendFrame(conn fileserver.Conn, id uint64, code uint8, payload []byte) error {
	timer := time.AfterFunc(r.cfg.AckTimeout, func() { conn.Close() })
	defer timer.Stop()
	return fileserver.WriteFrame(conn, id, code, payload)
}

// readAck reads one replica frame with the ack timeout armed.
func (r *Replicator) readAck(conn fileserver.Conn) (uint64, uint8, []byte, error) {
	timer := time.AfterFunc(r.cfg.AckTimeout, func() { conn.Close() })
	defer timer.Stop()
	return fileserver.ReadFrame(conn)
}

// consumeAck reads the replica's repAck and folds it into link state. A
// gap/bad-record flag schedules a resync.
func (r *Replicator) consumeAck(l *link, conn fileserver.Conn) error {
	_, code, payload, err := r.readAck(conn)
	if err != nil {
		return err
	}
	if code != repAck {
		return fmt.Errorf("cluster: expected ack, got frame %d", code)
	}
	d := newFrameDec(payload)
	applied := d.u64()
	d.u64() // appliedTx (informational)
	flags := d.u8()
	if !d.ok() {
		return fmt.Errorf("cluster: malformed ack")
	}
	r.mu.Lock()
	l.appliedSeq = applied
	if flags&(flagGap|flagBadRecord) != 0 {
		l.needResync = true
		if flags&flagBadRecord != 0 {
			r.cfg.Logf("replicator: %s reported corrupt records; resync scheduled", l.name)
		}
	}
	r.mu.Unlock()
	r.cond.Broadcast()
	return nil
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
