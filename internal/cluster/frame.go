package cluster

// Minimal payload encoder/decoder for the replication control frames,
// mirroring fileserver's unexported enc/dec: little-endian, length-prefixed
// strings, and a sticky out-of-bounds flag checked once via ok().

type frameEnc struct{ b []byte }

func (e *frameEnc) u8(v uint8) { e.b = append(e.b, v) }

func (e *frameEnc) u32(v uint32) {
	var b [4]byte
	le32(b[:], v)
	e.b = append(e.b, b[:]...)
}

func (e *frameEnc) u64(v uint64) {
	var b [8]byte
	le64(b[:], v)
	e.b = append(e.b, b[:]...)
}

func (e *frameEnc) i64(v int64) { e.u64(uint64(v)) }

func (e *frameEnc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

type frameDec struct {
	b   []byte
	pos int
	bad bool
}

func newFrameDec(b []byte) *frameDec { return &frameDec{b: b} }

func (d *frameDec) take(n int) []byte {
	if d.bad || n < 0 || d.pos+n > len(d.b) {
		d.bad = true
		return nil
	}
	p := d.b[d.pos : d.pos+n]
	d.pos += n
	return p
}

func (d *frameDec) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *frameDec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return rd32(p)
}

func (d *frameDec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return rd64(p)
}

func (d *frameDec) i64() int64 { return int64(d.u64()) }

func (d *frameDec) str() string {
	n := d.u32()
	return string(d.take(int(n)))
}

func (d *frameDec) ok() bool { return !d.bad }
