// Package cluster replicates a primary winefsd onto N replica daemons.
//
// The replication unit is the primary device's physical write stream —
// every pmem store, zero and discard, tapped via pmem.WriteObserver —
// punctuated by commit barriers from the WineFS journal (winefs.CommitHook).
// Records are sequence-numbered, framed over the fileserver wire protocol,
// and applied by replicas to their own simulated devices, so a replica's
// image converges byte-for-byte on the primary's and can be promoted
// through the ordinary winefs.Mount recovery path, exactly as a crashed
// primary would remount itself.
//
// Robustness model (DESIGN.md §10): bounded in-memory record ring with
// resync (snapshot streaming) when a replica falls behind it, per-link
// retry with exponential backoff and jitter, heartbeat failure detection,
// epoch-numbered primaries so stale ones are fenced, and a degraded mode
// where the primary keeps serving with divergence logged rather than
// blocking on dead replicas.
package cluster

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// Record types. RecStore/RecZero/RecDiscard mirror the three mutating
// entry points of pmem.Device; RecCommit is a journal commit barrier (its
// Off field carries the transaction id).
const (
	RecStore uint8 = iota + 1
	RecZero
	RecDiscard
	RecCommit
)

// recMagic guards against misframed byte streams: a decoder landing at a
// wrong offset fails loudly instead of applying garbage.
const recMagic uint16 = 0xCB07

// recHeaderSize is the fixed prefix before the data payload:
//
//	magic u16 | type u8 | reserved u8 | seq u64 | off i64 | n i64 | dlen u32
const recHeaderSize = 2 + 1 + 1 + 8 + 8 + 8 + 4

// recTrailerSize is the CRC32 (IEEE) over header+data.
const recTrailerSize = 4

// maxRecData bounds one record's payload so a corrupt length cannot make a
// replica allocate unbounded memory. Stores bigger than this are split by
// the observer before encoding.
const maxRecData = 8 << 20

// Record is one replicated mutation (or commit barrier).
type Record struct {
	// Type is one of RecStore/RecZero/RecDiscard/RecCommit.
	Type uint8
	// Seq is the primary-assigned sequence number, contiguous from 1.
	// Seq 0 marks an unsequenced resync record (snapshot chunk), applied
	// without gap checking.
	Seq uint64
	// Off is the device offset (RecCommit: the journal transaction id).
	Off int64
	// N is the range length. For RecStore it must equal len(Data).
	N int64
	// Data is the stored bytes (RecStore only).
	Data []byte
}

// ErrBadRecord reports a record that failed structural validation or its
// CRC. The decoder never panics: torn, truncated and bit-flipped inputs
// all land here.
var ErrBadRecord = errors.New("cluster: bad replication record")

// ErrShortRecord reports a byte stream that ends mid-record; the caller
// should read more bytes and retry.
var ErrShortRecord = errors.New("cluster: truncated replication record")

func le16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }

func le32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func le64(b []byte, v uint64) {
	le32(b, uint32(v))
	le32(b[4:], uint32(v>>32))
}

func rd16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func rd32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func rd64(b []byte) uint64 { return uint64(rd32(b)) | uint64(rd32(b[4:]))<<32 }

// EncodedLen reports the wire size of r.
func (r *Record) EncodedLen() int {
	return recHeaderSize + len(r.Data) + recTrailerSize
}

// AppendRecord encodes r onto buf and returns the extended slice.
func AppendRecord(buf []byte, r *Record) []byte {
	start := len(buf)
	var hdr [recHeaderSize]byte
	le16(hdr[0:], recMagic)
	hdr[2] = r.Type
	hdr[3] = 0
	le64(hdr[4:], r.Seq)
	le64(hdr[12:], uint64(r.Off))
	le64(hdr[20:], uint64(r.N))
	le32(hdr[28:], uint32(len(r.Data)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, r.Data...)
	crc := crc32.ChecksumIEEE(buf[start:])
	var tr [recTrailerSize]byte
	le32(tr[:], crc)
	return append(buf, tr[:]...)
}

// DecodeRecord decodes one record from the front of b, returning the
// record and the bytes consumed. It validates magic, type, length bounds
// and CRC; malformed input returns ErrBadRecord (or ErrShortRecord when b
// simply ends early) — never a panic, whatever the bytes are.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < recHeaderSize {
		return Record{}, 0, ErrShortRecord
	}
	if rd16(b) != recMagic {
		return Record{}, 0, fmt.Errorf("%w: bad magic %#x", ErrBadRecord, rd16(b))
	}
	r := Record{
		Type: b[2],
		Seq:  rd64(b[4:]),
		Off:  int64(rd64(b[12:])),
		N:    int64(rd64(b[20:])),
	}
	dlen := rd32(b[28:])
	if r.Type < RecStore || r.Type > RecCommit {
		return Record{}, 0, fmt.Errorf("%w: unknown type %d", ErrBadRecord, r.Type)
	}
	if dlen > maxRecData {
		return Record{}, 0, fmt.Errorf("%w: data length %d exceeds limit", ErrBadRecord, dlen)
	}
	if r.Type != RecStore && dlen != 0 {
		return Record{}, 0, fmt.Errorf("%w: type %d carries data", ErrBadRecord, r.Type)
	}
	total := recHeaderSize + int(dlen) + recTrailerSize
	if len(b) < total {
		return Record{}, 0, ErrShortRecord
	}
	body := b[:recHeaderSize+int(dlen)]
	want := rd32(b[recHeaderSize+int(dlen):])
	if crc32.ChecksumIEEE(body) != want {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrBadRecord)
	}
	if r.Type == RecStore {
		if r.N != int64(dlen) {
			return Record{}, 0, fmt.Errorf("%w: store length %d != data %d", ErrBadRecord, r.N, dlen)
		}
		r.Data = append([]byte(nil), b[recHeaderSize:recHeaderSize+int(dlen)]...)
	}
	if r.N < 0 || r.Off < 0 && r.Type != RecCommit {
		return Record{}, 0, fmt.Errorf("%w: negative range", ErrBadRecord)
	}
	return r, total, nil
}
