package cluster

import (
	"bytes"
	"errors"
	"hash/crc32"
	"testing"
)

// fixRecordCRC recomputes the trailer CRC of a single encoded record after
// a test mutated its header.
func fixRecordCRC(b []byte) {
	body := b[:len(b)-recTrailerSize]
	le32(b[len(b)-recTrailerSize:], crc32.ChecksumIEEE(body))
}

func sampleRecords() []Record {
	return []Record{
		{Type: RecStore, Seq: 1, Off: 0, N: 5, Data: []byte("hello")},
		{Type: RecStore, Seq: 2, Off: 1 << 20, N: 0, Data: nil},
		{Type: RecZero, Seq: 3, Off: 4096, N: 8192},
		{Type: RecDiscard, Seq: 4, Off: 1 << 21, N: 1 << 21},
		{Type: RecCommit, Seq: 5, Off: 42 /* txid */},
		{Type: RecStore, Seq: 0 /* unsequenced resync */, Off: 262144, N: 3, Data: []byte{0, 1, 2}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	recs := sampleRecords()
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	for i := range recs {
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		want := recs[i]
		if got.Type != want.Type || got.Seq != want.Seq || got.Off != want.Off || got.N != want.N || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		if n != want.EncodedLen() {
			t.Fatalf("record %d: consumed %d want %d", i, n, want.EncodedLen())
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after decoding all records", len(buf))
	}
}

// TestRecordTruncation decodes every proper prefix of an encoded record:
// each must fail cleanly with ErrShortRecord or ErrBadRecord, never panic.
func TestRecordTruncation(t *testing.T) {
	r := Record{Type: RecStore, Seq: 7, Off: 12345, N: 16, Data: []byte("0123456789abcdef")}
	full := AppendRecord(nil, &r)
	for cut := 0; cut < len(full); cut++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("cut=%d: panic: %v", cut, p)
				}
			}()
			_, _, err := DecodeRecord(full[:cut])
			if err == nil {
				t.Fatalf("cut=%d: truncated record decoded successfully", cut)
			}
			if !errors.Is(err, ErrShortRecord) && !errors.Is(err, ErrBadRecord) {
				t.Fatalf("cut=%d: unexpected error %v", cut, err)
			}
		}()
	}
}

// TestRecordCorruption flips every single bit of an encoded record: each
// mutation must either fail decode (almost always, via CRC) or decode to
// the identical record (impossible for a single flip, but the invariant we
// assert is the safe one: no panic and no silently wrong record).
func TestRecordCorruption(t *testing.T) {
	r := Record{Type: RecZero, Seq: 99, Off: 8192, N: 4096}
	full := AppendRecord(nil, &r)
	for bit := 0; bit < len(full)*8; bit++ {
		mut := append([]byte(nil), full...)
		mut[bit/8] ^= 1 << (bit % 8)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("bit=%d: panic: %v", bit, p)
				}
			}()
			got, _, err := DecodeRecord(mut)
			if err == nil {
				t.Fatalf("bit=%d: corrupted record decoded as %+v", bit, got)
			}
		}()
	}
}

// TestRecordGarbage feeds random-ish garbage and pathological headers.
func TestRecordGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		bytes.Repeat([]byte{0xFF}, recHeaderSize+recTrailerSize),
		bytes.Repeat([]byte{0x00}, recHeaderSize+recTrailerSize),
		// Valid magic, absurd dlen.
		func() []byte {
			b := make([]byte, recHeaderSize+recTrailerSize)
			le16(b, recMagic)
			b[2] = RecStore
			le32(b[28:], 0xFFFFFFF0)
			return b
		}(),
		// Valid magic, type out of range.
		func() []byte {
			b := make([]byte, recHeaderSize+recTrailerSize)
			le16(b, recMagic)
			b[2] = 200
			return b
		}(),
	}
	for i, c := range cases {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("case %d: panic: %v", i, p)
				}
			}()
			if _, _, err := DecodeRecord(c); err == nil {
				t.Fatalf("case %d: garbage decoded successfully", i)
			}
		}()
	}
}

// TestRecordStoreLengthMismatch ensures a Store whose N disagrees with its
// payload length is rejected (the replica trusts N for bounds checks).
func TestRecordStoreLengthMismatch(t *testing.T) {
	r := Record{Type: RecStore, Seq: 1, Off: 0, N: 4, Data: []byte("abcd")}
	full := AppendRecord(nil, &r)
	// Rewrite N to 8 and fix the CRC so only the semantic check can catch it.
	le64(full[20:], 8)
	fixRecordCRC(full)
	if _, _, err := DecodeRecord(full); err == nil {
		t.Fatal("store with N != len(Data) decoded successfully")
	}
}
