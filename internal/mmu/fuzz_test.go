package mmu

import (
	"testing"
)

// buildExtents turns fuzz bytes into a well-formed extent list: sorted by
// file offset, non-overlapping, block-granular — the shape every file
// system's extent metadata has when it calls HugeEligible.
func buildExtents(data []byte) []Extent {
	var exts []Extent
	fileOff := int64(0)
	phys := int64(0)
	for i := 0; i+3 <= len(data) && len(exts) < 64; i += 3 {
		gap := int64(data[i]%8) * BasePage
		physGap := int64(data[i+1]%16) * BasePage
		length := (int64(data[i+2]%200) + 1) * BasePage
		fileOff += gap
		phys += physGap
		exts = append(exts, Extent{FileOff: fileOff, Phys: phys, Len: length})
		fileOff += length
		phys += length
	}
	return exts
}

// FuzzHugeEligible checks the eligibility predicate against its spec: a
// chunk reported eligible must be backed by one physically contiguous,
// 2MiB-aligned run (every byte's PhysAt agrees with the chunk phys), and a
// chunk backed by such a run must be reported eligible — the predicate can
// neither hand out a hugepage that would expose wrong physical memory nor
// refuse one the extent layout permits.
func FuzzHugeEligible(f *testing.F) {
	f.Add([]byte{0, 0, 199, 0, 0, 50}, uint16(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(1))
	f.Add([]byte{0, 0, 255, 0, 0, 255, 0, 0, 255}, uint16(2))
	f.Add([]byte{3, 1, 100}, uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, chunkSel uint16) {
		exts := buildExtents(data)
		chunkOff := int64(chunkSel%1024) * HugePage

		phys, ok := HugeEligible(exts, chunkOff)
		if ok {
			if phys%HugePage != 0 {
				t.Fatalf("eligible chunk at %d has misaligned phys %d", chunkOff, phys)
			}
			for k := int64(0); k < PagesPerHuge; k++ {
				off := chunkOff + k*BasePage
				p, found := PhysAt(exts, off)
				if !found {
					t.Fatalf("eligible chunk at %d: no backing for page %d", chunkOff, off)
				}
				if p != phys+k*BasePage {
					t.Fatalf("eligible chunk at %d: page %d at phys %d, want contiguous %d",
						chunkOff, off, p, phys+k*BasePage)
				}
			}
			return
		}
		// Completeness: if one extent covers the whole chunk with an
		// aligned physical base, refusing it is a bug.
		for _, e := range exts {
			if chunkOff >= e.FileOff && chunkOff+HugePage <= e.FileOff+e.Len {
				if p := e.Phys + (chunkOff - e.FileOff); p%HugePage == 0 {
					t.Fatalf("chunk at %d fully inside extent %+v with aligned phys %d but not eligible",
						chunkOff, e, p)
				}
			}
		}
	})
}
