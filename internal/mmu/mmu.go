// Package mmu simulates the virtual-memory hardware whose behaviour drives
// every headline result in the paper: page tables with 4KiB base pages and
// 2MiB hugepages, a TLB, and a last-level cache polluted by page-table
// entries on TLB misses.
//
// The central rule (paper §2.2) is structural and enforced in exactly one
// place, HugeEligible: a 2MiB region of a file can be mapped with a
// hugepage if and only if it is backed by one physically contiguous extent
// whose start is 2MiB-aligned, with the file offset also 2MiB-aligned.
// "Even a single byte offset from alignment forces the operating system to
// fall back to base pages."
//
// File systems implement FaultHandler; the Mapping implements the
// OS+hardware side: faults, TLB lookups, page walks, and the cache effects
// of walking.
package mmu

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
)

const (
	// BasePage is the base page size (4KiB).
	BasePage = 4096
	// HugePage is the hugepage size (2MiB).
	HugePage = 2 << 20
	// PagesPerHuge is the number of base pages per hugepage.
	PagesPerHuge = HugePage / BasePage
)

// Extent is a physically contiguous run of bytes backing a portion of a
// file, in file-offset order.
type Extent struct {
	FileOff int64
	Phys    int64
	Len     int64
}

// HugeEligible reports whether the 2MiB file chunk starting at chunkOff
// (which must be HugePage-aligned) is backed by extents such that a
// hugepage mapping is permitted, and if so returns the physical address of
// the chunk. The condition is the paper's: a single extent must cover the
// whole chunk and the backing physical address must be 2MiB-aligned.
func HugeEligible(extents []Extent, chunkOff int64) (int64, bool) {
	for _, e := range extents {
		if chunkOff >= e.FileOff && chunkOff < e.FileOff+e.Len {
			phys := e.Phys + (chunkOff - e.FileOff)
			if phys%HugePage != 0 {
				return 0, false
			}
			if e.FileOff+e.Len < chunkOff+HugePage {
				return 0, false // chunk spans an extent boundary
			}
			return phys, true
		}
	}
	return 0, false
}

// PhysAt resolves the physical address backing file offset off in the
// extent list, if present.
func PhysAt(extents []Extent, off int64) (int64, bool) {
	for _, e := range extents {
		if off >= e.FileOff && off < e.FileOff+e.Len {
			return e.Phys + (off - e.FileOff), true
		}
	}
	return 0, false
}

// FaultResult is a file system's answer to a page fault.
type FaultResult struct {
	// Huge indicates a hugepage mapping was established; Phys is then the
	// 2MiB-aligned physical address of the whole chunk. Otherwise Phys is
	// the physical address of the faulting 4KiB page.
	Huge bool
	Phys int64
}

// FaultHandler is implemented by each file system: resolve the fault for
// the base page at file offset pageOff (4KiB-aligned). The handler performs
// any allocation/zeroing its design requires (charging the cost to ctx) and
// decides — via HugeEligible on its own extent metadata — whether a
// hugepage mapping is possible.
type FaultHandler interface {
	Fault(ctx *sim.Ctx, pageOff int64) (FaultResult, error)
}

// ErrOutOfRange is returned for accesses beyond a mapping's length.
var ErrOutOfRange = errors.New("mmu: access outside mapping")

// AddressSpace models one process' virtual memory: a TLB and a share of
// the machine's last-level cache. Mappings are carved from a single
// monotonically growing virtual address range so TLB keys never collide
// across mappings.
type AddressSpace struct {
	dev   *pmem.Device
	model *pmem.CostModel

	tlb4k *assoc
	tlb2m *assoc
	llc   *assoc

	// Exact forces the reference per-cache-line accounting loop instead of
	// the batched run accounting. Both produce bit-identical virtual-time
	// results (the determinism golden test proves it); Exact exists as that
	// test's reference arm and as an escape hatch for debugging.
	Exact bool

	mu     sync.Mutex
	nextVA int64
}

// NewAddressSpace creates a process address space on dev with a private
// LLC simulation sized from the device model.
func NewAddressSpace(dev *pmem.Device) *AddressSpace {
	m := dev.Model()
	return &AddressSpace{
		dev:    dev,
		model:  m,
		tlb4k:  newAssoc(m.TLBEntries4K, 4),
		tlb2m:  newAssoc(m.TLBEntries2M, 4),
		llc:    newAssoc(int(m.LLCBytes/pmem.CacheLine), m.LLCWays),
		nextVA: 1 << 40, // arbitrary non-zero base
	}
}

// FlushTLB empties both TLBs (e.g. after munmap or for experiment setup).
func (as *AddressSpace) FlushTLB() {
	as.tlb4k.flushAll()
	as.tlb2m.flushAll()
}

// FlushCache empties the LLC simulation.
func (as *AddressSpace) FlushCache() { as.llc.flushAll() }

// Mapping is one mmap'ed file region.
type Mapping struct {
	as      *AddressSpace
	dev     *pmem.Device
	model   *pmem.CostModel
	handler FaultHandler
	va      int64
	length  int64

	mu     sync.Mutex
	chunks []chunk

	// shootMu and shootGen are the wait-for-in-flight-accesses half of a
	// TLB shootdown. Accesses resolve a translation under mu, then touch
	// the device outside it; Invalidate bumps shootGen and takes shootMu
	// exclusively, so it cannot return while an access that resolved
	// against the old page tables is still moving bytes — the model of a
	// shootdown IPI waiting for every core's acknowledgement. Without it
	// the caller could free and recycle the displaced blocks under a
	// still-running access.
	shootMu  sync.RWMutex
	shootGen atomic.Uint64

	// promoteHook is set by the mapping's owner (internal/vmm): the file
	// system invokes it, via NotifyPromote, after a layout change that can
	// only improve hugepage eligibility (reactive rewrite, online defrag),
	// so live mappings re-promote without waiting for a refault.
	promoteHook atomic.Pointer[func(ctx *sim.Ctx)]
}

// chunk tracks the mapping state of one 2MiB-aligned slice of the file.
type chunk struct {
	huge     bool
	hugePhys int64
	pages    []int64 // lazily allocated; phys+1 per 4KiB page, 0 = unmapped
}

// NewMapping memory-maps length bytes of a file whose faults are served by
// handler. No pages are mapped until touched (or Prefault is called);
// mmap() itself costs one syscall, charged by the caller.
func (as *AddressSpace) NewMapping(length int64, handler FaultHandler) *Mapping {
	if length <= 0 {
		panic("mmu: non-positive mapping length")
	}
	nchunks := (length + HugePage - 1) / HugePage
	as.mu.Lock()
	va := as.nextVA
	as.nextVA += nchunks * HugePage
	as.mu.Unlock()
	return &Mapping{
		as:      as,
		dev:     as.dev,
		model:   as.model,
		handler: handler,
		va:      va,
		length:  length,
		chunks:  make([]chunk, nchunks),
	}
}

// Len returns the mapping length in bytes.
func (m *Mapping) Len() int64 { return m.length }

// MappedPages reports how many base pages and hugepages are currently
// mapped — used by tests and by the Figure 1/Table 2 analyses.
func (m *Mapping) MappedPages() (base, huge int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.chunks {
		c := &m.chunks[i]
		if c.huge {
			huge++
			continue
		}
		for _, p := range c.pages {
			if p != 0 {
				base++
			}
		}
	}
	return base, huge
}

// SetPromoteHook registers (or, with nil, clears) the owner's promotion
// callback; see NotifyPromote.
func (m *Mapping) SetPromoteHook(h func(ctx *sim.Ctx)) {
	if h == nil {
		m.promoteHook.Store(nil)
		return
	}
	m.promoteHook.Store(&h)
}

// NotifyPromote tells the mapping's owner that the backing layout
// improved (the khugepaged wakeup of the paper's §3.5 defragmenter). The
// caller must hold no file-system locks: the hook re-probes eligibility
// through the file. Costs accrue to ctx — the maintenance thread, not
// the foreground.
func (m *Mapping) NotifyPromote(ctx *sim.Ctx) {
	if h := m.promoteHook.Load(); h != nil {
		(*h)(ctx)
	}
}

// PromoteChunk collapses the 2MiB mapping chunk at off (mapping-relative,
// hugepage-aligned) to a single hugepage translation backed by the
// physical byte address phys. Unlike a fault, it never allocates or
// zeroes — the caller proved the chunk HugeEligible, so the data is
// already in place. Returns false if the chunk was already huge or off is
// out of range.
func (m *Mapping) PromoteChunk(ctx *sim.Ctx, off, phys int64) bool {
	if off < 0 || off%HugePage != 0 || off >= m.length {
		return false
	}
	m.mu.Lock()
	c := &m.chunks[int(off/HugePage)]
	if c.huge {
		m.mu.Unlock()
		return false
	}
	c.huge = true
	c.hugePhys = phys
	c.pages = nil
	m.mu.Unlock()
	// The collapse swaps up to 512 PTEs for one PMD: stale base-page
	// translations must leave the TLB, and installing the PMD costs one
	// soft fault's worth of page-table work.
	m.as.FlushTLB()
	ctx.Counters.SoftFaults++
	ctx.Counters.FaultNS += m.model.HugeFaultNS
	ctx.Advance(m.model.HugeFaultNS)
	return true
}

// pageState resolves the mapping state for the page containing off.
// Returns the chunk index and base-page index within the chunk.
func (m *Mapping) locate(off int64) (ci int, pi int) {
	return int(off / HugePage), int(off % HugePage / BasePage)
}

// ensureMapped guarantees the page containing off is mapped, taking a
// fault if needed. Returns the physical address of byte off, whether the
// translation is a hugepage, and the shootdown generation the translation
// was read under — devAccess revalidates against it before touching the
// device, since an Invalidate may land between resolution and access.
func (m *Mapping) ensureMapped(ctx *sim.Ctx, off int64) (phys int64, huge bool, gen uint64, err error) {
	ci, pi := m.locate(off)
	m.mu.Lock()
	c := &m.chunks[ci]
	if c.huge {
		phys := c.hugePhys + off%HugePage
		gen := m.shootGen.Load()
		m.mu.Unlock()
		return phys, true, gen, nil
	}
	if c.pages != nil && c.pages[pi] != 0 {
		phys := c.pages[pi] - 1 + off%BasePage
		gen := m.shootGen.Load()
		m.mu.Unlock()
		return phys, false, gen, nil
	}
	m.mu.Unlock()

	// Page fault. The handler may allocate and zero; its costs accrue to ctx.
	sp := ctx.StartSpan("mmu.fault")
	pageOff := off / BasePage * BasePage
	res, ferr := m.handler.Fault(ctx, pageOff)
	if ferr != nil {
		ctx.EndSpan(sp)
		return 0, false, 0, ferr
	}
	defer ctx.EndSpan(sp)
	m.mu.Lock()
	defer m.mu.Unlock()
	gen = m.shootGen.Load()
	c = &m.chunks[ci]
	if res.Huge {
		if !c.huge {
			c.huge = true
			c.hugePhys = res.Phys
			c.pages = nil
			ctx.Counters.HugeFaults++
			ctx.Counters.FaultNS += m.model.HugeFaultNS
			ctx.Advance(m.model.HugeFaultNS)
		}
		return c.hugePhys + off%HugePage, true, gen, nil
	}
	if c.pages == nil {
		c.pages = make([]int64, PagesPerHuge)
	}
	if c.pages[pi] == 0 {
		c.pages[pi] = res.Phys + 1
		ctx.Counters.PageFaults++
		ctx.Counters.FaultNS += m.model.BaseFaultNS
		ctx.Advance(m.model.BaseFaultNS)
	}
	return c.pages[pi] - 1 + off%BasePage, false, gen, nil
}

// devAccess moves bytes against a translation resolved by ensureMapped,
// holding the shootdown read-lock for the duration. Returns false without
// touching the device when the translation went stale (an Invalidate ran
// since resolution) — the caller re-resolves and retries. The accounting
// for the granule is charged only after the access succeeds, so a retry
// never double-charges.
func (m *Mapping) devAccess(p []byte, phys int64, gen uint64, write bool) bool {
	m.shootMu.RLock()
	defer m.shootMu.RUnlock()
	if m.shootGen.Load() != gen {
		return false
	}
	if write {
		m.dev.WriteAt(p, phys)
	} else {
		m.dev.ReadAt(p, phys)
	}
	return true
}

// translate charges TLB/page-walk costs for accessing the page containing
// virtual offset off, given its mapping kind.
func (m *Mapping) translate(ctx *sim.Ctx, off int64, huge bool) {
	var key uint64
	var tlb *assoc
	if huge {
		key = uint64((m.va + off) / HugePage)
		tlb = m.as.tlb2m
	} else {
		key = uint64((m.va + off) / BasePage)
		tlb = m.as.tlb4k
	}
	if tlb.touch(key) {
		ctx.Counters.TLBHits++
		return
	}
	ctx.Counters.TLBMisses++
	// Page walk: the leaf PTE line and its parent directory entry are
	// fetched through the cache hierarchy, polluting the LLC — this is the
	// mechanism behind Figure 4 ("the array element that is read has been
	// knocked out of the processor cache by page table entries").
	var walk int64
	if m.as.llc.touch(pteLineKey(key, huge)) {
		walk += m.model.PageWalkNS
	} else {
		walk += m.model.PageWalkMemNS
	}
	if m.as.llc.touch(pmdLineKey(key, huge)) {
		walk += m.model.PageWalkNS / 2
	} else {
		walk += m.model.PageWalkMemNS
	}
	ctx.Counters.PageWalkNS += walk
	ctx.Advance(walk)
}

// pteLineKey gives the synthetic cache-line address of the leaf page-table
// entry for a virtual page. Eight 8-byte PTEs share a 64-byte line, so
// sequential 4KiB pages share walk lines — matching real page-table
// locality. Hugepage PMD entries live in a disjoint key space.
func pteLineKey(vpn uint64, huge bool) uint64 {
	const pteSpace = 1 << 62
	if huge {
		return pteSpace | (1 << 61) | vpn/8
	}
	return pteSpace | vpn/8
}

// pmdLineKey is the cache line of the next walk level (512 leaf entries
// per directory line-group).
func pmdLineKey(vpn uint64, huge bool) uint64 {
	const pmdSpace = 1 << 60
	if huge {
		return pmdSpace | (1 << 59) | vpn/(8*512)
	}
	return pmdSpace | vpn/(8*512)
}

// dataLine charges cache/memory costs for touching the 64B line at phys.
// Loads that miss the LLC pay the PM read latency; stores are posted
// (write-combining) and pay the PM write latency without allocating.
func (m *Mapping) dataLine(ctx *sim.Ctx, phys int64, write bool) {
	if write {
		ctx.Advance(m.model.WriteLat64)
		ctx.Counters.PMWriteBytes += pmem.CacheLine
		// Written lines are cached (write-back) — they may serve later reads.
		m.as.llc.touch(uint64(phys / pmem.CacheLine))
		return
	}
	if m.as.llc.touch(uint64(phys / pmem.CacheLine)) {
		ctx.Counters.LLCHits++
		ctx.Advance(m.model.LLCHitNS)
		return
	}
	ctx.Counters.LLCMisses++
	ctx.Counters.PMReadBytes += pmem.CacheLine
	ctx.Advance(m.model.ReadLat64)
}

// Read copies n = len(p) bytes at mapping offset off into p, simulating
// the full load path. Small accesses (< 2KiB) model each cache line;
// larger ones use the streaming path.
func (m *Mapping) Read(ctx *sim.Ctx, p []byte, off int64) error {
	return m.access(ctx, p, off, false)
}

// Write stores p at mapping offset off, simulating the full store path.
func (m *Mapping) Write(ctx *sim.Ctx, p []byte, off int64) error {
	return m.access(ctx, p, off, true)
}

const streamThreshold = 2048

func (m *Mapping) access(ctx *sim.Ctx, p []byte, off int64, write bool) error {
	n := int64(len(p))
	if off < 0 || off+n > m.length {
		return ErrOutOfRange
	}
	if n == 0 {
		return nil
	}
	if n >= streamThreshold {
		return m.stream(ctx, p, off, write)
	}
	if m.as.Exact {
		return m.accessFineExact(ctx, p, off, write)
	}
	return m.accessFine(ctx, p, off, write)
}

// accessFine is the cache-line-accurate path for small accesses, batched by
// translation granule. It is bit-identical to accessFineExact because every
// batch step is an exact algebraic collapse of the per-line loop:
//
//   - All lines inside one granule share a translation: after the first
//     line's ensureMapped the page cannot unmap mid-run, and repeat lookups
//     return the same phys with no cost, so one call suffices.
//   - All lines inside one granule share one TLB key. The first translate
//     inserts/promotes it to MRU; every later line's touch would hit the
//     MRU way, which moves nothing — so TLB state is unchanged and the
//     hits are counted arithmetically.
//   - The LLC sees the same touch sequence in the same order: (on a TLB
//     miss) pte line, pmd line, then data lines first..last, only under one
//     lock via touchRun instead of n. Per-line hit/miss costs are summed
//     into one Advance — int64 addition commutes.
//   - The device sees one ReadAt/WriteAt covering the run instead of one
//     per line; bytes and offsets are identical (phys is contiguous within
//     a granule). Only crash-trace record granularity could differ, and
//     the fine path is not used while crash tracing is armed.
func (m *Mapping) accessFine(ctx *sim.Ctx, p []byte, off int64, write bool) error {
	pos := off
	rem := p
	for len(rem) > 0 {
		phys, huge, gen, err := m.ensureMapped(ctx, pos)
		if err != nil {
			return err
		}
		granule := int64(BasePage)
		if huge {
			granule = HugePage
		}
		granEnd := (pos/granule + 1) * granule
		k := granEnd - pos
		if k > int64(len(rem)) {
			k = int64(len(rem))
		}
		if !m.devAccess(rem[:k], phys, gen, write) {
			continue // shot down since resolution: re-fault this granule
		}
		m.translate(ctx, pos, huge)
		firstLine := phys / pmem.CacheLine
		nLines := (phys+k-1)/pmem.CacheLine - firstLine + 1
		ctx.Counters.TLBHits += nLines - 1
		hits := int64(m.as.llc.touchRun(uint64(firstLine), int(nLines)))
		if write {
			ctx.Counters.PMWriteBytes += nLines * pmem.CacheLine
			ctx.Advance(nLines * m.model.WriteLat64)
		} else {
			misses := nLines - hits
			ctx.Counters.LLCHits += hits
			ctx.Counters.LLCMisses += misses
			ctx.Counters.PMReadBytes += misses * pmem.CacheLine
			ctx.Advance(hits*m.model.LLCHitNS + misses*m.model.ReadLat64)
		}
		rem = rem[k:]
		pos += k
	}
	return nil
}

// accessFineExact is the reference per-cache-line loop: every line pays its
// own translation lookup, LLC touch and device segment. accessFine must
// stay bit-identical to this.
func (m *Mapping) accessFineExact(ctx *sim.Ctx, p []byte, off int64, write bool) error {
	pos := off
	rem := p
	for len(rem) > 0 {
		phys, huge, gen, err := m.ensureMapped(ctx, pos)
		if err != nil {
			return err
		}
		// Bytes until end of this cache line.
		lineEnd := (phys/pmem.CacheLine + 1) * pmem.CacheLine
		k := lineEnd - phys
		if k > int64(len(rem)) {
			k = int64(len(rem))
		}
		if !m.devAccess(rem[:k], phys, gen, write) {
			continue // shot down since resolution: re-fault this line
		}
		m.translate(ctx, pos, huge)
		m.dataLine(ctx, phys, write)
		rem = rem[k:]
		pos += k
	}
	return nil
}

// stream is the bulk path: per-page translation costs plus streaming
// copy bandwidth, without per-line cache simulation.
func (m *Mapping) stream(ctx *sim.Ctx, p []byte, off int64, write bool) error {
	pos := off
	rem := p
	for len(rem) > 0 {
		phys, huge, gen, err := m.ensureMapped(ctx, pos)
		if err != nil {
			return err
		}
		// Run to the end of the current translation granule.
		granule := int64(BasePage)
		if huge {
			granule = HugePage
		}
		granEnd := (pos/granule + 1) * granule
		k := granEnd - pos
		if k > int64(len(rem)) {
			k = int64(len(rem))
		}
		if !m.devAccess(rem[:k], phys, gen, write) {
			continue // shot down since resolution: re-fault this granule
		}
		m.translate(ctx, pos, huge)
		m.chargeStream(ctx, phys, k, write)
		rem = rem[k:]
		pos += k
	}
	return nil
}

// Touch performs the cost accounting of Read/Write without moving bytes.
// Bandwidth-oriented experiments use it to keep host time reasonable.
func (m *Mapping) Touch(ctx *sim.Ctx, off, n int64, write bool) error {
	if off < 0 || off+n > m.length {
		return ErrOutOfRange
	}
	pos := off
	for n > 0 {
		phys, huge, _, err := m.ensureMapped(ctx, pos)
		if err != nil {
			return err
		}
		m.translate(ctx, pos, huge)
		granule := int64(BasePage)
		if huge {
			granule = HugePage
		}
		granEnd := (pos/granule + 1) * granule
		k := granEnd - pos
		if k > n {
			k = n
		}
		m.chargeStream(ctx, phys, k, write)
		pos += k
		n -= k
	}
	return nil
}

func (m *Mapping) chargeStream(ctx *sim.Ctx, phys, n int64, write bool) {
	if write {
		ns := int64(float64(n) * m.model.CopyWriteNSPerByte)
		ctx.Advance(ns)
		ctx.Counters.CopyNS += ns
		ctx.Counters.PMWriteBytes += n
	} else {
		ns := int64(float64(n) * m.model.CopyReadNSPerByte)
		ctx.Advance(ns)
		ctx.Counters.CopyNS += ns
		ctx.Counters.PMReadBytes += n
	}
	m.chargeBW(ctx, phys, n, write)
}

func (m *Mapping) chargeBW(ctx *sim.Ctx, phys, n int64, write bool) {
	// Share the device's aggregate bandwidth; reuse the device-side
	// bookkeeping by issuing a zero-copy transfer.
	if write {
		m.dev.TransferWrite(ctx, phys, n)
	} else {
		m.dev.TransferRead(ctx, phys, n)
	}
}

// Invalidate unmaps every page of the mapping (a page-table shootdown):
// subsequent accesses re-fault and the handler resolves them against the
// file's current layout. WineFS's reactive rewriter calls this after
// swapping a file's extents so stale translations never reach freed
// blocks. The TLB entries for this mapping die with the page tables (the
// whole-TLB flush is the conservative model of an invlpg storm).
func (m *Mapping) Invalidate() {
	m.mu.Lock()
	for i := range m.chunks {
		m.chunks[i] = chunk{}
	}
	m.shootGen.Add(1)
	m.mu.Unlock()
	// Drain: an access that resolved a translation before the generation
	// bump may still be moving bytes under the read side of shootMu. Do
	// not return (and let the caller free the displaced blocks) until
	// every such access has finished — the shootdown's IPI-acknowledgement
	// wait. Accesses that resolve after the bump re-fault and never see
	// the old physical blocks.
	m.shootMu.Lock()
	//lint:ignore SA2001 empty critical section is the drain barrier
	m.shootMu.Unlock()
	m.as.FlushTLB()
}

// Prefault touches every page of the mapping once (read access pattern),
// taking all faults up front — the paper's §2.4 pre-faulted configuration.
func (m *Mapping) Prefault(ctx *sim.Ctx) error {
	for off := int64(0); off < m.length; off += BasePage {
		if _, _, _, err := m.ensureMapped(ctx, off); err != nil {
			return err
		}
	}
	return nil
}

// Counters is a convenience accessor for tests.
func (m *Mapping) Counters(ctx *sim.Ctx) *perf.Counters { return ctx.Counters }
