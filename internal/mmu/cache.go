package mmu

import "sync"

// assoc is a set-associative LRU array used for both the TLB and the
// last-level cache simulation. Each set keeps its keys in MRU-first order.
// It is safe for concurrent use; the lock is per-structure, which is
// adequate for the access rates of the experiments.
type assoc struct {
	mu   sync.Mutex
	ways int
	mask uint64
	sets [][]uint64
}

// newAssoc builds an array with the given total entry count and way count.
// The set count is rounded down to a power of two (minimum 1).
func newAssoc(entries, ways int) *assoc {
	if ways <= 0 {
		ways = 1
	}
	if entries < ways {
		entries = ways
	}
	nsets := 1
	for nsets*2 <= entries/ways {
		nsets *= 2
	}
	a := &assoc{ways: ways, mask: uint64(nsets - 1)}
	a.sets = make([][]uint64, nsets)
	for i := range a.sets {
		a.sets[i] = make([]uint64, 0, ways)
	}
	return a
}

// mix hashes the key to spread sequential keys across sets while staying
// deterministic.
func mix(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return key
}

// touch looks key up, promoting it to MRU on hit and inserting it (evicting
// the LRU way if needed) on miss. Returns whether the access hit.
func (a *assoc) touch(key uint64) bool {
	set := &a.sets[mix(key)&a.mask]
	a.mu.Lock()
	defer a.mu.Unlock()
	s := *set
	for i, k := range s {
		if k == key {
			// Move to front (MRU).
			copy(s[1:i+1], s[:i])
			s[0] = key
			return true
		}
	}
	if len(s) < a.ways {
		s = append(s, 0)
	}
	copy(s[1:], s[:len(s)-1])
	s[0] = key
	*set = s
	return false
}

// touchRun touches n sequential keys (key, key+1, ..., key+n-1) under one
// lock acquisition, returning how many hit. The state changes are exactly
// those of n individual touch calls in the same order — the keys are
// distinct, so each lands in its set independently and batching only
// amortises the lock. Callers use this for the cache lines of one
// contiguous access run.
func (a *assoc) touchRun(key uint64, n int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	hits := 0
	for j := 0; j < n; j++ {
		k := key + uint64(j)
		set := &a.sets[mix(k)&a.mask]
		s := *set
		hit := false
		for i, kk := range s {
			if kk == k {
				copy(s[1:i+1], s[:i])
				s[0] = k
				hits++
				hit = true
				break
			}
		}
		if !hit {
			if len(s) < a.ways {
				s = append(s, 0)
			}
			copy(s[1:], s[:len(s)-1])
			s[0] = k
			*set = s
		}
	}
	return hits
}

// contains reports whether key is present without changing LRU state.
func (a *assoc) contains(key uint64) bool {
	set := a.sets[mix(key)&a.mask]
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, k := range set {
		if k == key {
			return true
		}
	}
	return false
}

// flushAll empties the array (e.g. TLB shootdown on munmap).
func (a *assoc) flushAll() {
	a.mu.Lock()
	for i := range a.sets {
		a.sets[i] = a.sets[i][:0]
	}
	a.mu.Unlock()
}

// size returns the number of resident entries.
func (a *assoc) size() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, s := range a.sets {
		n += len(s)
	}
	return n
}
