package mmu

import (
	"bytes"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
)

// testHandler serves faults from a static extent list, modelling a file
// whose blocks are already allocated.
type testHandler struct {
	extents []Extent
	faults  int
}

func (h *testHandler) Fault(ctx *sim.Ctx, pageOff int64) (FaultResult, error) {
	h.faults++
	chunkOff := pageOff / HugePage * HugePage
	if phys, ok := HugeEligible(h.extents, chunkOff); ok {
		return FaultResult{Huge: true, Phys: phys}, nil
	}
	phys, ok := PhysAt(h.extents, pageOff)
	if !ok {
		return FaultResult{}, ErrOutOfRange
	}
	return FaultResult{Phys: phys}, nil
}

func newEnv(size int64) (*pmem.Device, *AddressSpace) {
	d := pmem.New(size)
	return d, NewAddressSpace(d)
}

func TestHugeEligible(t *testing.T) {
	cases := []struct {
		name    string
		extents []Extent
		chunk   int64
		want    bool
	}{
		{"aligned single extent", []Extent{{0, 0, HugePage}}, 0, true},
		{"unaligned phys", []Extent{{0, 4096, HugePage}}, 0, false},
		{"one byte short", []Extent{{0, 0, HugePage - 1}}, 0, false},
		{"spans two extents", []Extent{{0, 0, HugePage / 2}, {HugePage / 2, HugePage, HugePage / 2}}, 0, false},
		{"second chunk aligned", []Extent{{0, 0, 2 * HugePage}}, HugePage, true},
		{"large extent covers chunk", []Extent{{0, 2 * HugePage, 8 * HugePage}}, HugePage, true},
		{"hole before chunk", []Extent{{HugePage, HugePage, HugePage}}, 0, false},
	}
	for _, c := range cases {
		_, got := HugeEligible(c.extents, c.chunk)
		if got != c.want {
			t.Errorf("%s: HugeEligible = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMappingReadWriteRoundTrip(t *testing.T) {
	d, as := newEnv(64 << 20)
	h := &testHandler{extents: []Extent{{0, 0, 4 * HugePage}}}
	m := as.NewMapping(4*HugePage, h)
	ctx := sim.NewCtx(1, 0)

	data := []byte("the quick brown fox")
	if err := m.Write(ctx, data, 12345); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Read(ctx, got, 12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: %q", got)
	}
	// Data must land on the device at the right physical address.
	devGot := make([]byte, len(data))
	d.ReadAt(devGot, 12345)
	if !bytes.Equal(devGot, data) {
		t.Fatalf("device content: %q", devGot)
	}
}

func TestHugepageMappingFaultsOnce(t *testing.T) {
	_, as := newEnv(64 << 20)
	h := &testHandler{extents: []Extent{{0, 0, HugePage}}}
	m := as.NewMapping(HugePage, h)
	ctx := sim.NewCtx(1, 0)

	buf := make([]byte, 64)
	for off := int64(0); off < HugePage; off += BasePage {
		if err := m.Read(ctx, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if ctx.Counters.HugeFaults != 1 {
		t.Fatalf("huge faults = %d, want 1", ctx.Counters.HugeFaults)
	}
	if ctx.Counters.PageFaults != 0 {
		t.Fatalf("base faults = %d, want 0", ctx.Counters.PageFaults)
	}
	base, huge := m.MappedPages()
	if base != 0 || huge != 1 {
		t.Fatalf("mapped pages = %d base, %d huge", base, huge)
	}
}

func TestBasePageMappingFaultsPerPage(t *testing.T) {
	_, as := newEnv(64 << 20)
	// Physically unaligned backing: hugepage forbidden.
	h := &testHandler{extents: []Extent{{0, BasePage, HugePage}}}
	m := as.NewMapping(HugePage, h)
	ctx := sim.NewCtx(1, 0)

	buf := make([]byte, 64)
	for off := int64(0); off < HugePage; off += BasePage {
		if err := m.Write(ctx, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if ctx.Counters.PageFaults != PagesPerHuge {
		t.Fatalf("base faults = %d, want %d", ctx.Counters.PageFaults, PagesPerHuge)
	}
	if ctx.Counters.HugeFaults != 0 {
		t.Fatal("unexpected huge fault")
	}
}

func TestBasePagesCost512xFaults(t *testing.T) {
	// The paper's core observation: base pages take 512× the faults and
	// meaningfully more total time for the same 2MiB of writes.
	_, as := newEnv(64 << 20)

	hugeH := &testHandler{extents: []Extent{{0, 0, HugePage}}}
	hugeM := as.NewMapping(HugePage, hugeH)
	hugeCtx := sim.NewCtx(1, 0)
	if err := hugeM.Touch(hugeCtx, 0, HugePage, true); err != nil {
		t.Fatal(err)
	}

	baseH := &testHandler{extents: []Extent{{0, BasePage, HugePage}}}
	baseM := as.NewMapping(HugePage, baseH)
	baseCtx := sim.NewCtx(2, 0)
	if err := baseM.Touch(baseCtx, 0, HugePage, true); err != nil {
		t.Fatal(err)
	}

	if baseCtx.Counters.PageFaults != 512*hugeCtx.Counters.HugeFaults {
		t.Fatalf("fault ratio: base=%d huge=%d",
			baseCtx.Counters.PageFaults, hugeCtx.Counters.HugeFaults)
	}
	slowdown := float64(baseCtx.Now()) / float64(hugeCtx.Now())
	if slowdown < 1.5 || slowdown > 4 {
		t.Fatalf("base-page slowdown %.2fx outside the paper's ~2x regime", slowdown)
	}
	// Fig 2's breakdown: with base pages most time is fault handling.
	if baseCtx.Counters.FaultNS < baseCtx.Counters.CopyNS {
		t.Fatalf("expected fault time to dominate: fault=%d copy=%d",
			baseCtx.Counters.FaultNS, baseCtx.Counters.CopyNS)
	}
}

func TestTLBMissesReducedByHugepages(t *testing.T) {
	_, as := newEnv(256 << 20)
	const size = 64 << 20 // far beyond 4K TLB reach (1536*4K = 6MB)

	hugeH := &testHandler{extents: []Extent{{0, 0, size}}}
	hugeM := as.NewMapping(size, hugeH)
	hctx := sim.NewCtx(1, 0)
	if err := hugeM.Prefault(hctx); err != nil {
		t.Fatal(err)
	}

	baseH := &testHandler{extents: []Extent{{0, BasePage, size}}}
	baseM := as.NewMapping(size, baseH)
	bctx := sim.NewCtx(2, 0)
	if err := baseM.Prefault(bctx); err != nil {
		t.Fatal(err)
	}

	// Random 64B reads over the whole region, pre-faulted (§2.4 setup).
	hctx.Reset()
	bctx.Reset()
	as.FlushTLB()
	as.FlushCache()
	rng := sim.NewRand(99)
	buf := make([]byte, 8)
	for i := 0; i < 20000; i++ {
		off := rng.Int63n(size/8) * 8
		if err := hugeM.Read(hctx, buf, off); err != nil {
			t.Fatal(err)
		}
		if err := baseM.Read(bctx, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if bctx.Counters.TLBMisses < 2*hctx.Counters.TLBMisses {
		t.Fatalf("TLB misses: base=%d huge=%d — hugepages should win",
			bctx.Counters.TLBMisses, hctx.Counters.TLBMisses)
	}
}

func TestSparseFaultHandlerInvoked(t *testing.T) {
	// Sparse mapping: the handler is only called for touched pages.
	_, as := newEnv(64 << 20)
	h := &testHandler{extents: []Extent{{0, BasePage, 4 * HugePage}}}
	m := as.NewMapping(4*HugePage, h)
	ctx := sim.NewCtx(1, 0)
	buf := make([]byte, 10)
	if err := m.Read(ctx, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Read(ctx, buf, 3*HugePage); err != nil {
		t.Fatal(err)
	}
	if h.faults != 2 {
		t.Fatalf("handler called %d times, want 2", h.faults)
	}
	if ctx.Counters.PageFaults != 2 {
		t.Fatalf("page faults = %d, want 2", ctx.Counters.PageFaults)
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	_, as := newEnv(16 << 20)
	h := &testHandler{extents: []Extent{{0, 0, HugePage}}}
	m := as.NewMapping(HugePage, h)
	ctx := sim.NewCtx(1, 0)
	if err := m.Read(ctx, make([]byte, 10), HugePage-5); err != ErrOutOfRange {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := m.Write(ctx, make([]byte, 1), -1); err != ErrOutOfRange {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestStreamCrossesExtents(t *testing.T) {
	// A bulk write spanning two discontiguous extents must land at the
	// right physical addresses.
	d, as := newEnv(64 << 20)
	h := &testHandler{extents: []Extent{
		{0, 8 << 20, HugePage},     // chunk 0 at 8MiB (aligned: huge)
		{HugePage, 4096, HugePage}, // chunk 1 unaligned: base pages
	}}
	m := as.NewMapping(2*HugePage, h)
	ctx := sim.NewCtx(1, 0)
	data := make([]byte, 2*HugePage)
	for i := range data {
		data[i] = byte(i / 1000)
	}
	if err := m.Write(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 100)
	d.ReadAt(got, 8<<20)
	if !bytes.Equal(got, data[:100]) {
		t.Fatal("chunk 0 bytes wrong")
	}
	d.ReadAt(got, 4096+100)
	if !bytes.Equal(got, data[HugePage+100:HugePage+200]) {
		t.Fatal("chunk 1 bytes wrong")
	}
	base, huge := m.MappedPages()
	if huge != 1 || base != PagesPerHuge {
		t.Fatalf("pages = %d base %d huge", base, huge)
	}
}

func TestPrefaultEliminatesFaultsInCriticalPath(t *testing.T) {
	_, as := newEnv(64 << 20)
	h := &testHandler{extents: []Extent{{0, BasePage, 8 * HugePage}}}
	m := as.NewMapping(8*HugePage, h)
	ctx := sim.NewCtx(1, 0)
	if err := m.Prefault(ctx); err != nil {
		t.Fatal(err)
	}
	faults := ctx.Counters.PageFaults
	if faults != 8*PagesPerHuge {
		t.Fatalf("prefault took %d faults", faults)
	}
	// Subsequent accesses: zero faults.
	ctx.Reset()
	buf := make([]byte, 64)
	for off := int64(0); off < 8*HugePage; off += 1 << 20 {
		if err := m.Read(ctx, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if ctx.Counters.PageFaults != 0 {
		t.Fatalf("faults after prefault: %d", ctx.Counters.PageFaults)
	}
}

func TestAssocLRU(t *testing.T) {
	a := newAssoc(8, 2) // 4 sets × 2 ways
	if a.touch(1) {
		t.Fatal("first touch hit")
	}
	if !a.touch(1) {
		t.Fatal("second touch missed")
	}
	if a.size() != 1 {
		t.Fatalf("size = %d", a.size())
	}
	a.flushAll()
	if a.touch(1) {
		t.Fatal("hit after flush")
	}
}

func TestCachePollutionFromPageWalks(t *testing.T) {
	// With a tiny LLC, base-page random reads should show markedly more
	// LLC misses than hugepage reads on a hot working set that would
	// otherwise fit — the Figure 4 mechanism.
	model := pmem.DefaultModel()
	model.LLCBytes = 256 << 10 // 4096 lines
	model.TLBEntries4K = 64
	model.TLBEntries2M = 64
	d := pmem.NewWithConfig(pmem.Config{Size: 256 << 20, Model: &model})
	as := NewAddressSpace(d)

	const region = 32 << 20
	hugeM := as.NewMapping(region, &testHandler{extents: []Extent{{0, 0, region}}})
	baseM := as.NewMapping(region, &testHandler{extents: []Extent{{0, BasePage, region}}})
	hctx := sim.NewCtx(1, 0)
	bctx := sim.NewCtx(2, 0)
	if err := hugeM.Prefault(hctx); err != nil {
		t.Fatal(err)
	}
	if err := baseM.Prefault(bctx); err != nil {
		t.Fatal(err)
	}

	// Hot set: 2048 lines × 64B = 128KiB — half the LLC.
	hot := make([]int64, 2048)
	rng := sim.NewRand(5)
	for i := range hot {
		hot[i] = rng.Int63n(region/64) * 64
	}
	run := func(m *Mapping, ctx *sim.Ctx) {
		ctx.Reset()
		as.FlushTLB()
		as.FlushCache()
		buf := make([]byte, 8)
		for pass := 0; pass < 20; pass++ {
			for _, off := range hot {
				if err := m.Read(ctx, buf, off); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	run(hugeM, hctx)
	run(baseM, bctx)
	if bctx.Counters.LLCMisses <= hctx.Counters.LLCMisses {
		t.Fatalf("LLC misses: base=%d huge=%d — PTE pollution should hurt base pages",
			bctx.Counters.LLCMisses, hctx.Counters.LLCMisses)
	}
	if bctx.Now() <= hctx.Now() {
		t.Fatalf("latency: base=%d huge=%d", bctx.Now(), hctx.Now())
	}
}
