package mmu

import (
	"testing"

	"repro/internal/sim"
)

// Engine microbenchmarks for the MMU hot paths: the LLC/TLB assoc cache
// (every simulated memory line funnels through touch/touchRun), the fault
// path, and the batched fine-access path. Run via `make bench-engine`.

func BenchmarkAssocTouch(b *testing.B) {
	a := newAssoc(1536, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// 16-key working set: mostly MRU hits, some reordering — the shape
		// of a TLB under a loop over a few pages.
		a.touch(uint64(i & 15))
	}
}

// BenchmarkAssocTouchRun charges a 64-line run (one 4KiB page of cache
// lines) per iteration — the unit the batched access path hands to the
// LLC. Compare against 64 individual touch calls: the run takes the set
// lock once instead of 64 times.
func BenchmarkAssocTouchRun(b *testing.B) {
	a := newAssoc(8<<20/64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.touchRun(uint64(i&7)*64, 64)
	}
}

func BenchmarkAssocTouchLoop64(b *testing.B) {
	a := newAssoc(8<<20/64, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := uint64(i&7) * 64
		for j := uint64(0); j < 64; j++ {
			a.touch(base + j)
		}
	}
}

// BenchmarkMappingFault measures the minor-fault path: TLB flush forces
// every access to re-fault, so each iteration pays ensureMapped + fault
// handler + page-table charging.
func BenchmarkMappingFault(b *testing.B) {
	d, as := newEnv(64 << 20)
	h := &testHandler{extents: []Extent{{0, 0, 64 << 20}}}
	m := as.NewMapping(64<<20, h)
	ctx := sim.NewCtx(1, 0)
	buf := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Invalidate()
		as.FlushTLB()
		if err := m.Read(ctx, buf, int64(i&7)*HugePage); err != nil {
			b.Fatal(err)
		}
	}
	_ = d
}

// BenchmarkMappingRead1K is the batched fine-access path on a warm
// mapping: one translate per granule, arithmetic TLB hits, one LLC
// touchRun, one device copy. 1KiB stays under streamThreshold so the
// fine path (not the streaming path) runs.
func BenchmarkMappingRead1K(b *testing.B) {
	benchMappingAccess(b, false, false)
}

func BenchmarkMappingWrite1K(b *testing.B) {
	benchMappingAccess(b, true, false)
}

// BenchmarkMappingRead1KExact is the per-line reference arm — the loop
// the batched path replaced. The ratio of this to BenchmarkMappingRead1K
// is the batching speedup.
func BenchmarkMappingRead1KExact(b *testing.B) {
	benchMappingAccess(b, false, true)
}

func benchMappingAccess(b *testing.B, write, exact bool) {
	d, as := newEnv(64 << 20)
	as.Exact = exact
	h := &testHandler{extents: []Extent{{0, 0, 64 << 20}}}
	m := as.NewMapping(64<<20, h)
	ctx := sim.NewCtx(1, 0)
	buf := make([]byte, 1024)
	// Warm the mapping so iterations measure access, not faults. Keep the
	// span under streamThreshold's granule count so the fine path runs.
	if err := m.Touch(ctx, 0, 16*HugePage, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i&255) * 1024
		var err error
		if write {
			err = m.Write(ctx, buf, off)
		} else {
			err = m.Read(ctx, buf, off)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = d
}
