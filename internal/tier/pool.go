package tier

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/alloc"
)

// Pool is the slow tier's free-space allocator. Unlike the PM allocator it
// has no alignment tiers, per-CPU pools or hugepage promotion: the slow
// device has no TLB, so the only goals are contiguity (fewer extents per
// file) and O(log n) operations. It is a sorted free list with first-fit
// allocation and coalescing free, addressing blocks in the file system's
// global block space [start, start+blocks).
//
// The pool is volatile: it is rebuilt from the inode extent scan at every
// mount (see winefs rebuildSlowPool), so there is no on-device free-state
// record to keep crash-consistent.
type Pool struct {
	mu    sync.Mutex
	start int64 // first block of the slow region (global block space)
	end   int64 // one past the last block
	free  []alloc.Extent
	freeN int64 // total free blocks, maintained incrementally
}

// NewPool creates a pool covering [start, start+blocks), all free.
func NewPool(start, blocks int64) *Pool {
	if blocks < 0 {
		blocks = 0
	}
	p := &Pool{start: start, end: start + blocks, freeN: blocks}
	if blocks > 0 {
		p.free = []alloc.Extent{{Start: start, Len: blocks}}
	}
	return p
}

// Start returns the first block of the slow region.
func (p *Pool) Start() int64 { return p.start }

// Blocks returns the region's total size in blocks.
func (p *Pool) Blocks() int64 { return p.end - p.start }

// Contains reports whether the global block number falls in this region.
func (p *Pool) Contains(blk int64) bool { return blk >= p.start && blk < p.end }

// FreeBlocks returns the number of free blocks.
func (p *Pool) FreeBlocks() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.freeN
}

// Alloc carves n blocks from the pool, preferring a single first-fit
// extent and falling back to gathering smaller ones. Returns nil when the
// pool cannot cover the request (nothing is allocated in that case).
func (p *Pool) Alloc(n int64) []alloc.Extent {
	if n <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n > p.freeN {
		return nil
	}
	// First fit: a single extent large enough.
	for i := range p.free {
		if p.free[i].Len >= n {
			out := []alloc.Extent{{Start: p.free[i].Start, Len: n}}
			p.free[i].Start += n
			p.free[i].Len -= n
			if p.free[i].Len == 0 {
				p.free = append(p.free[:i], p.free[i+1:]...)
			}
			p.freeN -= n
			return out
		}
	}
	// Gather: take whole extents front to back until covered.
	var out []alloc.Extent
	remain := n
	for remain > 0 {
		e := p.free[0]
		take := e.Len
		if take > remain {
			take = remain
		}
		out = append(out, alloc.Extent{Start: e.Start, Len: take})
		p.free[0].Start += take
		p.free[0].Len -= take
		if p.free[0].Len == 0 {
			p.free = p.free[1:]
		}
		remain -= take
	}
	p.freeN -= n
	return out
}

// Free returns [start, start+length) to the pool, coalescing with
// neighbours. Freeing blocks outside the region or already free is a
// caller bug and panics — the same invariant style the PM allocator uses.
func (p *Pool) Free(start, length int64) {
	if length <= 0 {
		return
	}
	if start < p.start || start+length > p.end {
		panic(fmt.Sprintf("tier: free [%d,%d) outside slow region [%d,%d)", start, start+length, p.start, p.end))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	i := sort.Search(len(p.free), func(i int) bool { return p.free[i].Start >= start })
	if i > 0 && p.free[i-1].End() > start {
		panic(fmt.Sprintf("tier: double free at block %d", start))
	}
	if i < len(p.free) && start+length > p.free[i].Start {
		panic(fmt.Sprintf("tier: double free at block %d", start))
	}
	// Try to merge with the left and/or right neighbour.
	mergeLeft := i > 0 && p.free[i-1].End() == start
	mergeRight := i < len(p.free) && p.free[i].Start == start+length
	switch {
	case mergeLeft && mergeRight:
		p.free[i-1].Len += length + p.free[i].Len
		p.free = append(p.free[:i], p.free[i+1:]...)
	case mergeLeft:
		p.free[i-1].Len += length
	case mergeRight:
		p.free[i].Start = start
		p.free[i].Len += length
	default:
		p.free = append(p.free, alloc.Extent{})
		copy(p.free[i+1:], p.free[i:])
		p.free[i] = alloc.Extent{Start: start, Len: length}
	}
	p.freeN += length
}

// MarkUsed removes [start, start+length) from the free space; used by the
// mount-time rebuild that replays the inode extent scan. Panics if any of
// the range is not currently free (two inodes claiming the same slow
// blocks — the corruption Audit exists to catch).
func (p *Pool) MarkUsed(start, length int64) {
	if length <= 0 {
		return
	}
	if start < p.start || start+length > p.end {
		panic(fmt.Sprintf("tier: markUsed [%d,%d) outside slow region [%d,%d)", start, start+length, p.start, p.end))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	i := sort.Search(len(p.free), func(i int) bool { return p.free[i].End() > start })
	if i == len(p.free) || p.free[i].Start > start || p.free[i].End() < start+length {
		panic(fmt.Sprintf("tier: markUsed [%d,%d) not free", start, start+length))
	}
	e := p.free[i]
	leftLen := start - e.Start
	rightLen := e.End() - (start + length)
	switch {
	case leftLen == 0 && rightLen == 0:
		p.free = append(p.free[:i], p.free[i+1:]...)
	case leftLen == 0:
		p.free[i] = alloc.Extent{Start: start + length, Len: rightLen}
	case rightLen == 0:
		p.free[i].Len = leftLen
	default:
		p.free[i].Len = leftLen
		p.free = append(p.free, alloc.Extent{})
		copy(p.free[i+2:], p.free[i+1:])
		p.free[i+1] = alloc.Extent{Start: start + length, Len: rightLen}
	}
	p.freeN -= length
}

// FreeExtents returns a sorted copy of the free list (for Audit and
// stats).
func (p *Pool) FreeExtents() []alloc.Extent {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]alloc.Extent, len(p.free))
	copy(out, p.free)
	return out
}

// Reset returns the pool to the all-free state (mount-time rebuild).
func (p *Pool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.free = p.free[:0]
	if p.end > p.start {
		p.free = append(p.free, alloc.Extent{Start: p.start, Len: p.end - p.start})
	}
	p.freeN = p.end - p.start
}
