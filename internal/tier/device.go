// Package tier generalises the storage layer behind a BlockDevice
// interface and provides the slow second tier WineFS spills cold data to:
// an SSD-like device with per-command latency, per-byte bandwidth and a
// bounded command queue, but no byte-addressability — every access is
// charged at 4KiB-page granularity, the way a block device sees it.
//
// The PM device (pmem.Device) satisfies BlockDevice natively; SlowDevice
// is the second implementation. A tiered WineFS keeps all metadata and
// hot data on PM and routes cold extents here (winefs/tier.go).
package tier

import (
	"repro/internal/pmem"
	"repro/internal/sim"
)

// BlockDevice is the device surface the file system's data path needs:
// charged accessors that model the device's cost in virtual time, and
// uncharged host-side accessors for snapshots, recovery scans and test
// setup. Offsets are byte offsets from the start of the device.
type BlockDevice interface {
	// Size is the device capacity in bytes.
	Size() int64

	// Charged accessors: advance the calling thread's virtual clock by
	// the modelled device cost and account traffic to its counters.
	Read(ctx *sim.Ctx, buf []byte, off int64)
	Write(ctx *sim.Ctx, data []byte, off int64)
	Zero(ctx *sim.Ctx, off, n int64)
	Flush(ctx *sim.Ctx, off, n int64)
	Fence(ctx *sim.Ctx)

	// Uncharged host-side accessors.
	ReadAt(buf []byte, off int64)
	WriteAt(data []byte, off int64)
	ZeroRange(off, n int64)
	DiscardRange(off, n int64)
}

// Both the PM device and the slow tier implement BlockDevice.
var (
	_ BlockDevice = (*pmem.Device)(nil)
	_ BlockDevice = (*SlowDevice)(nil)
)

// PageSize is the slow device's I/O granularity: commands address whole
// 4KiB pages, never bytes — the defining difference from PM.
const PageSize = 4096

// SlowConfig holds the cost model of the simulated SSD tier.
type SlowConfig struct {
	// Size is the capacity in bytes (rounded up to a page multiple).
	Size int64
	// ReadLatNS / WriteLatNS are the per-command latencies: the fixed
	// cost of one I/O regardless of length (queueing, translation,
	// media access). Writes are cheaper than reads on SSDs with a
	// power-protected write buffer.
	ReadLatNS  int64
	WriteLatNS int64
	// ReadNSPerByte / WriteNSPerByte are the inverse bandwidths of the
	// transfer itself.
	ReadNSPerByte  float64
	WriteNSPerByte float64
	// QueueDepth is the number of commands the device services
	// concurrently; excess commands queue in virtual time.
	QueueDepth int
	// NoSnapshot passes through to the backing store (benchmark runs
	// that never snapshot skip the reader-lock round trip).
	NoSnapshot bool
}

// DefaultSlowConfig returns an NVMe-flash-calibrated model: ~50µs random
// reads, ~15µs buffered writes, ~3 GB/s read / 2 GB/s write streaming,
// 16-deep queue. Roughly two decimal orders of magnitude slower than the
// Optane PM model for small accesses — the gap the tiering policy exists
// to hide.
func DefaultSlowConfig(size int64) SlowConfig {
	return SlowConfig{
		Size:           size,
		ReadLatNS:      50_000,
		WriteLatNS:     15_000,
		ReadNSPerByte:  0.33, // ~3 GB/s
		WriteNSPerByte: 0.5,  // ~2 GB/s
		QueueDepth:     16,
	}
}

// SlowDevice simulates the SSD tier. Contents live in a sparse
// chunk-backed store (reusing the PM device's host-memory management via
// its uncharged accessors); every charged access books one of QueueDepth
// command channels for latency + transfer time, so a queue-depth worth of
// commands proceeds in parallel and anything beyond that waits.
//
// Durability model: the device has a power-protected write buffer, so a
// completed Write is durable — Flush and Fence are free. This is what
// makes crash reasoning for tier migration simple: the slow-tier copy is
// stable the moment it is written, and only the PM-side extent-map commit
// decides which copy a recovery sees.
type SlowDevice struct {
	cfg   SlowConfig
	store *pmem.Device
	ports []*sim.Resource
}

// NewSlow creates a slow device with the given cost model.
func NewSlow(cfg SlowConfig) *SlowDevice {
	if cfg.Size <= 0 {
		cfg.Size = 64 << 20
	}
	cfg.Size = (cfg.Size + PageSize - 1) / PageSize * PageSize
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	// The backing store is pure host memory: a zeroed cost model (non-nil,
	// so NewWithConfig does not substitute the Optane defaults) makes its
	// charged paths free, and SlowDevice only uses the uncharged ones.
	d := &SlowDevice{
		cfg: cfg,
		store: pmem.NewWithConfig(pmem.Config{
			Size:       cfg.Size,
			Model:      &pmem.CostModel{},
			NoSnapshot: cfg.NoSnapshot,
		}),
	}
	for i := 0; i < cfg.QueueDepth; i++ {
		d.ports = append(d.ports, &sim.Resource{})
	}
	return d
}

// Size implements BlockDevice.
func (d *SlowDevice) Size() int64 { return d.cfg.Size }

// Config returns the device's cost model.
func (d *SlowDevice) Config() SlowConfig { return d.cfg }

// Release returns the backing store's chunks to the host pool.
func (d *SlowDevice) Release() { d.store.Release() }

// Snapshot captures the device contents (uncharged, host-side). Crash
// harnesses pair it with the PM image: slow writes are durable on
// completion, so rewinding a run to an earlier point must rewind the
// slow store too or writes from the abandoned future would leak into
// the recovered past.
func (d *SlowDevice) Snapshot() *pmem.Image { return d.store.Snapshot() }

// Restore rewrites the device to an earlier Snapshot.
func (d *SlowDevice) Restore(img *pmem.Image) { d.store.Restore(img) }

// pageSpan returns the number of whole 4KiB pages the byte range
// [off, off+n) touches — the unit the device charges in.
func pageSpan(off, n int64) int64 {
	if n <= 0 {
		return 0
	}
	first := off / PageSize
	last := (off + n - 1) / PageSize
	return last - first + 1
}

// charge books one command channel for the access and advances the
// thread's clock to its completion. The channel is chosen by the first
// page touched, so commands to different regions spread across the queue
// deterministically while same-page commands serialise.
func (d *SlowDevice) charge(ctx *sim.Ctx, off, n int64, write bool) {
	pages := pageSpan(off, n)
	if pages == 0 {
		return
	}
	bytes := pages * PageSize
	var hold int64
	if write {
		hold = d.cfg.WriteLatNS + int64(float64(bytes)*d.cfg.WriteNSPerByte)
	} else {
		hold = d.cfg.ReadLatNS + int64(float64(bytes)*d.cfg.ReadNSPerByte)
	}
	port := d.ports[(off/PageSize)%int64(len(d.ports))]
	port.Use(ctx, hold)
	if ctx.Counters != nil {
		if write {
			ctx.Counters.SlowWrites++
			ctx.Counters.SlowWriteBytes += bytes
		} else {
			ctx.Counters.SlowReads++
			ctx.Counters.SlowReadBytes += bytes
		}
	}
}

// Read implements BlockDevice: a charged read of len(buf) bytes.
func (d *SlowDevice) Read(ctx *sim.Ctx, buf []byte, off int64) {
	d.charge(ctx, off, int64(len(buf)), false)
	d.store.ReadAt(buf, off)
}

// Write implements BlockDevice: a charged write, durable on completion.
func (d *SlowDevice) Write(ctx *sim.Ctx, data []byte, off int64) {
	d.charge(ctx, off, int64(len(data)), true)
	d.store.WriteAt(data, off)
}

// Zero implements BlockDevice: charged like a write of n bytes (the
// command still transfers/updates whole pages on the device).
func (d *SlowDevice) Zero(ctx *sim.Ctx, off, n int64) {
	d.charge(ctx, off, n, true)
	d.store.ZeroRange(off, n)
}

// Flush implements BlockDevice. Completed writes are already durable
// (power-protected write buffer), so flushing costs nothing.
func (d *SlowDevice) Flush(ctx *sim.Ctx, off, n int64) {}

// Fence implements BlockDevice; free for the same reason as Flush.
func (d *SlowDevice) Fence(ctx *sim.Ctx) {}

// ReadAt implements BlockDevice (uncharged).
func (d *SlowDevice) ReadAt(buf []byte, off int64) { d.store.ReadAt(buf, off) }

// WriteAt implements BlockDevice (uncharged).
func (d *SlowDevice) WriteAt(data []byte, off int64) { d.store.WriteAt(data, off) }

// ZeroRange implements BlockDevice (uncharged).
func (d *SlowDevice) ZeroRange(off, n int64) { d.store.ZeroRange(off, n) }

// DiscardRange implements BlockDevice (uncharged): freed pages return
// their host backing.
func (d *SlowDevice) DiscardRange(off, n int64) { d.store.DiscardRange(off, n) }

// Cost returns the uncontended virtual-time cost of one n-byte access at
// off — the price a cache-miss pays when it has to go to this tier.
// Exposed for benchmark gates that assert cold reads really were charged
// slow-tier costs.
func (d *SlowDevice) Cost(off, n int64, write bool) int64 {
	bytes := pageSpan(off, n) * PageSize
	if bytes == 0 {
		return 0
	}
	if write {
		return d.cfg.WriteLatNS + int64(float64(bytes)*d.cfg.WriteNSPerByte)
	}
	return d.cfg.ReadLatNS + int64(float64(bytes)*d.cfg.ReadNSPerByte)
}
