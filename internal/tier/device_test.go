package tier

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestSlowDeviceRoundTrip(t *testing.T) {
	d := NewSlow(DefaultSlowConfig(1 << 20))
	defer d.Release()
	ctx := sim.NewCtx(1, 0)

	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	d.Write(ctx, data, 2*PageSize)

	got := make([]byte, len(data))
	d.Read(ctx, got, 2*PageSize)
	if !bytes.Equal(got, data) {
		t.Fatal("read back wrong data")
	}

	// Uncharged path sees the same bytes.
	got2 := make([]byte, len(data))
	d.ReadAt(got2, 2*PageSize)
	if !bytes.Equal(got2, data) {
		t.Fatal("ReadAt sees different data than charged Read")
	}

	d.Zero(ctx, 2*PageSize, PageSize)
	d.ReadAt(got2, 2*PageSize)
	if !bytes.Equal(got2[:PageSize], make([]byte, PageSize)) {
		t.Fatal("Zero did not clear page")
	}
}

func TestSlowDeviceCharging(t *testing.T) {
	cfg := DefaultSlowConfig(1 << 20)
	d := NewSlow(cfg)
	defer d.Release()
	ctx := sim.NewCtx(1, 0)

	// A one-byte read still costs a full page: latency + one page transfer.
	buf := make([]byte, 1)
	before := ctx.Now()
	d.Read(ctx, buf, 0)
	elapsed := ctx.Now() - before
	want := cfg.ReadLatNS + int64(float64(PageSize)*cfg.ReadNSPerByte)
	if elapsed != want {
		t.Fatalf("1-byte read cost %dns, want %dns (page-granular)", elapsed, want)
	}
	if ctx.Counters.SlowReads != 1 || ctx.Counters.SlowReadBytes != PageSize {
		t.Fatalf("counters: reads=%d readBytes=%d, want 1/%d",
			ctx.Counters.SlowReads, ctx.Counters.SlowReadBytes, PageSize)
	}

	// A straddling 2-byte read at a page boundary costs two pages.
	before = ctx.Now()
	d.Read(ctx, make([]byte, 2), PageSize-1)
	elapsed = ctx.Now() - before
	want = cfg.ReadLatNS + int64(float64(2*PageSize)*cfg.ReadNSPerByte)
	if elapsed != want {
		t.Fatalf("straddling read cost %dns, want %dns", elapsed, want)
	}

	// Cost() matches what charge actually books when uncontended.
	if got := d.Cost(0, 1, false); got != cfg.ReadLatNS+int64(float64(PageSize)*cfg.ReadNSPerByte) {
		t.Fatalf("Cost mismatch: %d", got)
	}

	// Flush and Fence are free (durable-on-completion model).
	before = ctx.Now()
	d.Flush(ctx, 0, PageSize)
	d.Fence(ctx)
	if ctx.Now() != before {
		t.Fatal("Flush/Fence charged time on the slow device")
	}
}

func TestSlowDeviceQueueDepth(t *testing.T) {
	cfg := DefaultSlowConfig(1 << 20)
	cfg.QueueDepth = 2
	d := NewSlow(cfg)
	defer d.Release()

	// Two threads hitting pages that map to the same port serialise; a
	// third on the other port proceeds in parallel.
	perOp := cfg.ReadLatNS + int64(float64(PageSize)*cfg.ReadNSPerByte)
	buf := make([]byte, 1)

	a := sim.NewCtx(1, 0)
	b := sim.NewCtx(2, 1)
	c := sim.NewCtx(3, 2)
	d.Read(a, buf, 0)        // port 0
	d.Read(b, buf, 2*PageSize) // page 2 -> port 0: queues behind a
	d.Read(c, buf, PageSize) // page 1 -> port 1: uncontended

	if a.Now() != perOp {
		t.Fatalf("first op finished at %d, want %d", a.Now(), perOp)
	}
	if b.Now() != 2*perOp {
		t.Fatalf("same-port op finished at %d, want %d (queued)", b.Now(), 2*perOp)
	}
	if c.Now() != perOp {
		t.Fatalf("other-port op finished at %d, want %d (parallel)", c.Now(), perOp)
	}
	if b.Counters.LockWaitNS == 0 {
		t.Fatal("queued command did not record queue wait")
	}
}
