package tier

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/sim"
)

func poolTotal(exts []alloc.Extent) int64 {
	var n int64
	for _, e := range exts {
		n += e.Len
	}
	return n
}

func TestPoolAllocFree(t *testing.T) {
	p := NewPool(1000, 100)
	if p.FreeBlocks() != 100 {
		t.Fatalf("fresh pool free=%d", p.FreeBlocks())
	}
	a := p.Alloc(40)
	if poolTotal(a) != 40 || p.FreeBlocks() != 60 {
		t.Fatalf("alloc 40: got %v free=%d", a, p.FreeBlocks())
	}
	if a[0].Start < 1000 || a[0].End() > 1100 {
		t.Fatalf("alloc outside region: %v", a)
	}
	b := p.Alloc(60)
	if poolTotal(b) != 60 || p.FreeBlocks() != 0 {
		t.Fatalf("alloc 60: got %v free=%d", b, p.FreeBlocks())
	}
	if p.Alloc(1) != nil {
		t.Fatal("alloc from empty pool succeeded")
	}
	for _, e := range a {
		p.Free(e.Start, e.Len)
	}
	for _, e := range b {
		p.Free(e.Start, e.Len)
	}
	if p.FreeBlocks() != 100 {
		t.Fatalf("after free all: free=%d", p.FreeBlocks())
	}
	fe := p.FreeExtents()
	if len(fe) != 1 || fe[0].Start != 1000 || fe[0].Len != 100 {
		t.Fatalf("free list did not coalesce: %v", fe)
	}
}

func TestPoolGatherAndMarkUsed(t *testing.T) {
	p := NewPool(0, 30)
	// Fragment the pool: allocate all, free alternating 5-block runs.
	all := p.Alloc(30)
	if poolTotal(all) != 30 {
		t.Fatal("full alloc failed")
	}
	for start := int64(0); start < 30; start += 10 {
		p.Free(start, 5)
	}
	// 15 free blocks in three 5-block fragments; a 12-block request must
	// gather across fragments.
	got := p.Alloc(12)
	if poolTotal(got) != 12 {
		t.Fatalf("gather alloc returned %v", got)
	}
	if len(got) < 3 {
		t.Fatalf("expected gather across fragments, got %v", got)
	}
	if p.FreeBlocks() != 3 {
		t.Fatalf("free after gather=%d", p.FreeBlocks())
	}

	// Rebuild-style MarkUsed: reset then replay the allocation.
	p.Reset()
	for _, e := range got {
		p.MarkUsed(e.Start, e.Len)
	}
	if p.FreeBlocks() != 18 {
		t.Fatalf("free after replay=%d", p.FreeBlocks())
	}
	// The replayed blocks must not be handed out again.
	seen := map[int64]bool{}
	for _, e := range got {
		for b := e.Start; b < e.End(); b++ {
			seen[b] = true
		}
	}
	rest := p.Alloc(18)
	for _, e := range rest {
		for b := e.Start; b < e.End(); b++ {
			if seen[b] {
				t.Fatalf("block %d double-allocated after MarkUsed replay", b)
			}
		}
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	p := NewPool(0, 10)
	p.Alloc(10)
	p.Free(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	p.Free(3, 2)
}

func TestPoolRandomizedInvariant(t *testing.T) {
	rng := sim.NewRand(7)
	p := NewPool(512, 4096)
	type held struct{ start, length int64 }
	var live []held
	for i := 0; i < 2000; i++ {
		if rng.Int63n(2) == 0 && p.FreeBlocks() > 0 {
			n := rng.Int63n(64) + 1
			if n > p.FreeBlocks() {
				n = p.FreeBlocks()
			}
			for _, e := range p.Alloc(n) {
				live = append(live, held{e.Start, e.Len})
			}
		} else if len(live) > 0 {
			j := rng.Int63n(int64(len(live)))
			h := live[j]
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			p.Free(h.start, h.length)
		}
		var liveN int64
		for _, h := range live {
			liveN += h.length
		}
		if p.FreeBlocks()+liveN != 4096 {
			t.Fatalf("iter %d: free %d + live %d != 4096", i, p.FreeBlocks(), liveN)
		}
	}
}
