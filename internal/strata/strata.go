// Package strata models Strata's kernel-bypass design as the paper
// characterises it: writes go first to a per-process log and are later
// digested (copied) into the shared PM region — "Strata has to perform
// expensive data copies from its per-process logs to the shared PM region
// for making data visible to other processes" (§5.3). The log-structured
// layout fragments free space like NOVA's (§6), and guarantees are strict
// (data + metadata).
package strata

import (
	"repro/internal/alloc"
	"repro/internal/fsbase"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

const dataStartBlk = 29

// New mounts a fresh Strata instance over dev.
func New(dev *pmem.Device) *fsbase.FS {
	total := dev.Size()/fsbase.BlockSize - dataStartBlk
	h := &hooks{
		model: dev.Model(),
		pool:  fsbase.NewLockedPool(dataStartBlk, total),
		log:   fsbase.NewPerInodeLog(dev.Model()),
		// digestBW models the digestion path's share of write bandwidth.
		digestBW: sim.NewBandwidth(dev.Model().WriteBandwidth / 2),
	}
	return fsbase.New(dev, h)
}

type hooks struct {
	model    *pmem.CostModel
	pool     *fsbase.LockedPool
	log      *fsbase.PerInodeLog
	digestBW *sim.Bandwidth
}

func (h *hooks) Name() string                { return "Strata" }
func (h *hooks) Mode() vfs.ConsistencyMode   { return vfs.Strict }
func (h *hooks) TotalBlocks() int64          { return h.pool.Total() }
func (h *hooks) FreeBlocks() int64           { return h.pool.Free() }
func (h *hooks) FreeExtents() []alloc.Extent { return h.pool.Extents() }

func (h *hooks) Alloc(ctx *sim.Ctx, blocks int64, hint fsbase.AllocHint) ([]alloc.Extent, error) {
	// Digestion writes sequentially into the shared area: contiguity only.
	ex, ok := h.pool.Take(ctx, blocks, fsbase.Strategy{Goal: hint.Goal, NextFit: true})
	if !ok {
		return nil, vfs.ErrNoSpace
	}
	return ex, nil
}

func (h *hooks) Free(ctx *sim.Ctx, ex []alloc.Extent) { h.pool.Release(ctx, ex) }

func (h *hooks) MetaOp(ctx *sim.Ctx, n *fsbase.Node, entries int, kind fsbase.MetaKind) {
	// Operation log append in the private log: uncontended, synchronous.
	h.log.Append(ctx, entries)
}

func (h *hooks) DirLookup(ctx *sim.Ctx, entries int) { ctx.Advance(170) }

func (h *hooks) Overwrite(ctx *sim.Ctx, n *fsbase.Node, off, length int64) fsbase.OverwriteAction {
	return fsbase.CoW // log-structured updates never go in place
}

// DataWrite charges the digestion copy: data written once to the private
// log (charged by the base write path) is copied again into the shared
// region.
func (h *hooks) DataWrite(ctx *sim.Ctx, n *fsbase.Node, length int64) {
	ns := int64(float64(length) * h.model.CopyWriteNSPerByte)
	ctx.Advance(ns)
	ctx.Counters.CopyNS += ns
	ctx.Counters.PMWriteBytes += length
	ctx.Counters.JournalBytes += length
	h.digestBW.Transfer(ctx, length)
}

func (h *hooks) Fsync(ctx *sim.Ctx, n *fsbase.Node, dirty int64) {
	// The log is already durable.
	ctx.Advance(h.model.FenceLat)
}

func (h *hooks) ZeroOnFault() bool                     { return false }
func (h *hooks) OnCreate(ctx *sim.Ctx, n *fsbase.Node) {}
func (h *hooks) OnDelete(ctx *sim.Ctx, n *fsbase.Node) {}
