package vmm_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vmm"
	"repro/internal/winefs"
)

func newFS(t *testing.T) (*sim.Ctx, *winefs.FS) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, pmem.New(256<<20), winefs.Options{CPUs: 2, Mode: vfs.Strict})
	if err != nil {
		t.Fatal(err)
	}
	return ctx, fs
}

func mkFile(t *testing.T, ctx *sim.Ctx, fs *winefs.FS, path string, pattern byte, n int64) vfs.File {
	t.Helper()
	f, err := fs.Create(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = pattern
	}
	if _, err := f.WriteAt(ctx, buf, 0); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestReadOnlyMappingRefusesStores(t *testing.T) {
	ctx, fs := newFS(t)
	f := mkFile(t, ctx, fs, "/ro", 0x61, 1<<20)
	m, err := vmm.Map(ctx, f, 0, vmm.Config{Mode: vmm.ModeReadOnly, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)

	buf := make([]byte, 128)
	if err := m.Read(ctx, buf, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{0x61}, 128)) {
		t.Fatalf("read %x, want 0x61", buf[:8])
	}
	if err := m.Write(ctx, buf, 0); !errors.Is(err, vmm.ErrReadOnlyMapping) {
		t.Fatalf("store to PROT_READ mapping: err = %v, want ErrReadOnlyMapping", err)
	}
	if err := m.Touch(ctx, 0, 4096, true); !errors.Is(err, vmm.ErrReadOnlyMapping) {
		t.Fatalf("write-touch of PROT_READ mapping: err = %v, want ErrReadOnlyMapping", err)
	}
}

// TestPrivateMappingCopyOnWrite: MAP_PRIVATE stores break the page into a
// DRAM shadow, stay visible through the mapping, and never reach the file.
func TestPrivateMappingCopyOnWrite(t *testing.T) {
	ctx, fs := newFS(t)
	f := mkFile(t, ctx, fs, "/priv", 0x62, 1<<20)
	m, err := vmm.Map(ctx, f, 0, vmm.Config{Mode: vmm.ModePrivate, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)

	upd := bytes.Repeat([]byte{0x99}, 256)
	if err := m.Write(ctx, upd, 8192); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Counters.VMMCowBreaks; got != 1 {
		t.Fatalf("VMMCowBreaks = %d, want 1", got)
	}
	// The store is visible through the mapping, merged with the
	// unmodified bytes around it on the same page.
	buf := make([]byte, 512)
	if err := m.Read(ctx, buf, 8192-128); err != nil {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte{0x62}, 128), upd...)
	want = append(want, bytes.Repeat([]byte{0x62}, 128)...)
	if !bytes.Equal(buf, want) {
		t.Fatal("private mapping read does not merge the CoW shadow with the page")
	}
	// The file never sees it.
	if _, err := f.ReadAt(ctx, buf[:256], 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:256], bytes.Repeat([]byte{0x62}, 256)) {
		t.Fatal("private-mapping store leaked into the backing file")
	}
	// Msync on a private mapping is a no-op: nothing shared to sync.
	if err := m.Msync(ctx, 0, -1); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Counters.VMMMsyncBytes; got != 0 {
		t.Fatalf("VMMMsyncBytes = %d for private mapping, want 0", got)
	}
}

// TestSharedMsyncCounters: shared stores mark dirty pages; Msync flushes
// exactly the dirty range once and the counters say so.
func TestSharedMsyncCounters(t *testing.T) {
	ctx, fs := newFS(t)
	f := mkFile(t, ctx, fs, "/sh", 0x63, 1<<20)
	m, err := vmm.Map(ctx, f, 0, vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)

	upd := bytes.Repeat([]byte{0x70}, 100)
	if err := m.Write(ctx, upd, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(ctx, upd, 5*4096); err != nil {
		t.Fatal(err)
	}
	if err := m.Msync(ctx, 0, -1); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Counters.VMMMsyncs; got != 1 {
		t.Fatalf("VMMMsyncs = %d, want 1", got)
	}
	if got := ctx.Counters.VMMMsyncBytes; got != 2*4096 {
		t.Fatalf("VMMMsyncBytes = %d, want %d (two dirty pages)", got, 2*4096)
	}
	// Dirt is gone: a second msync flushes nothing.
	if err := m.Msync(ctx, 0, -1); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Counters.VMMMsyncBytes; got != 2*4096 {
		t.Fatalf("VMMMsyncBytes after clean msync = %d, want unchanged %d", got, 2*4096)
	}
	// The stores are durable in the file.
	buf := make([]byte, 100)
	if _, err := f.ReadAt(ctx, buf, 5*4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, upd) {
		t.Fatal("file missing bytes stored through the shared mapping")
	}
}

// TestSyncImmediatePolicy: every store through a SyncImmediate mapping
// reaches the device without an explicit Msync.
func TestSyncImmediatePolicy(t *testing.T) {
	ctx, fs := newFS(t)
	f := mkFile(t, ctx, fs, "/imm", 0x64, 1<<20)
	m, err := vmm.Map(ctx, f, 0, vmm.Config{Mode: vmm.ModeShared, Sync: vmm.SyncImmediate, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)
	if err := m.Write(ctx, make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Counters.VMMMsyncBytes; got == 0 {
		t.Fatal("SyncImmediate store produced no msync bytes")
	}
}

// TestCloseFlushesDirt: unflushed shared stores are made durable by the
// implicit msync in Close, and the mapping is dead afterwards.
func TestCloseFlushesDirt(t *testing.T) {
	ctx, fs := newFS(t)
	f := mkFile(t, ctx, fs, "/cl", 0x65, 1<<20)
	m, err := vmm.Map(ctx, f, 0, vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(ctx, make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Counters.VMMMsyncBytes; got == 0 {
		t.Fatal("Close flushed nothing despite dirty pages")
	}
	if err := m.Close(ctx); !errors.Is(err, vmm.ErrClosed) {
		t.Fatalf("double close: err = %v, want ErrClosed", err)
	}
	if err := m.Read(ctx, make([]byte, 8), 0); !errors.Is(err, vmm.ErrClosed) {
		t.Fatalf("read after munmap: err = %v, want ErrClosed", err)
	}
}

// TestWindowedMappingSlides: a mapping narrower than the file slides its
// window on demand, counts the remaps, and reads correct bytes at every
// position.
func TestWindowedMappingSlides(t *testing.T) {
	ctx, fs := newFS(t)
	const size = 16 << 20
	f, err := fs.Create(ctx, "/win")
	if err != nil {
		t.Fatal(err)
	}
	// Distinct pattern per MiB so window translation errors are visible.
	chunk := make([]byte, 1<<20)
	for mb := int64(0); mb < size>>20; mb++ {
		for i := range chunk {
			chunk[i] = byte(mb)
		}
		if _, err := f.WriteAt(ctx, chunk, mb<<20); err != nil {
			t.Fatal(err)
		}
	}

	m, err := vmm.Map(ctx, f, size, vmm.Config{Mode: vmm.ModeReadOnly, AddressBudget: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)

	buf := make([]byte, 64)
	for _, mb := range []int64{0, 3, 15, 1, 14, 0} {
		if err := m.Read(ctx, buf, mb<<20); err != nil {
			t.Fatalf("read at %dMiB: %v", mb, err)
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte(mb)}, 64)) {
			t.Fatalf("read at %dMiB got byte %#x, want %#x", mb, buf[0], byte(mb))
		}
	}
	if got := ctx.Counters.VMMWindowRemaps; got < 3 {
		t.Fatalf("VMMWindowRemaps = %d, want >= 3 for the out-of-window hops", got)
	}
}

func TestMapPathAndPreload(t *testing.T) {
	ctx, fs := newFS(t)
	mkFile(t, ctx, fs, "/mp", 0x66, 4<<20).Close(ctx)

	m, err := vmm.MapPath(ctx, fs, "/mp", 0, vmm.Config{
		Mode: vmm.ModeReadOnly, MapFullFile: true, Preload: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Preload faulted everything up front.
	if huge, total := m.FaultedChunks(); total == 0 || huge != total {
		t.Fatalf("FaultedChunks = %d/%d after preload of an aligned file, want all huge", huge, total)
	}
	buf := make([]byte, 64)
	if err := m.Read(ctx, buf, 3<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{0x66}, 64)) {
		t.Fatalf("read %x, want 0x66", buf[:8])
	}
	// MapPath owns the file handle: Close tears both down.
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestMapRequiresMapper(t *testing.T) {
	ctx, _ := newFS(t)
	if _, err := vmm.Map(ctx, nonMapper{}, 4096, vmm.Config{}); !errors.Is(err, vfs.ErrNotSupported) {
		t.Fatalf("map of non-Mapper file: err = %v, want ErrNotSupported", err)
	}
}

// nonMapper is a vfs.File that does not implement vfs.Mapper.
type nonMapper struct{ vfs.File }

func (nonMapper) Size() int64 { return 4096 }
