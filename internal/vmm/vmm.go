// Package vmm is the zero-copy memory-mapping subsystem: it turns a
// vfs.File into a window of directly addressable persistent memory, the
// DAX mmap path of the paper (§2.2). A mapping is backed by internal/mmu
// page tables — 2MiB hugepages wherever the backing extent satisfies
// HugeEligible, 4KiB base pages otherwise — so applications pay
// fault/TLB/page-walk/LLC costs per access instead of a syscall plus a
// kernel copy per read/write.
//
// The file system under the mapping only has to implement vfs.Mapper
// (winefs and every fsbase-derived FS do); remote mounts don't, and
// Map returns ErrNotSupported for them. Modes follow POSIX mmap:
// read-only, shared (stores go straight to PM; Msync makes them
// durable), and private copy-on-write (first store copies the page to a
// DRAM shadow; the file is never modified). Files larger than the
// address budget are mapped through a sliding 2MiB-aligned window.
package vmm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Typed mapping errors.
var (
	// ErrNotSupported: the file cannot be memory-mapped (no vfs.Mapper —
	// e.g. a remote mount or failover proxy). Wraps vfs.ErrNotSupported
	// so errors.Is works against either.
	ErrNotSupported = fmt.Errorf("vmm: file does not support memory mapping: %w", vfs.ErrNotSupported)
	// ErrReadOnlyMapping is the SIGSEGV analogue: a store through a
	// mapping created with ModeReadOnly.
	ErrReadOnlyMapping = errors.New("vmm: store to read-only mapping (SIGSEGV)")
	// ErrClosed: access through a mapping after Close (use-after-munmap).
	ErrClosed = errors.New("vmm: mapping closed (use after munmap)")
)

// Mode selects the POSIX mapping semantics.
type Mode int

const (
	// ModeReadOnly: PROT_READ. Stores return ErrReadOnlyMapping.
	ModeReadOnly Mode = iota
	// ModeShared: MAP_SHARED. Stores go directly to the file's PM pages;
	// Msync (or the Sync policy) makes them durable.
	ModeShared
	// ModePrivate: MAP_PRIVATE. The first store to a page copies it to a
	// DRAM shadow (a CoW break); the backing file is never modified and
	// Msync is a no-op on private dirty pages.
	ModePrivate
)

// SyncPolicy says when stores through a shared mapping become durable.
type SyncPolicy int

const (
	// SyncLazy: only explicit Msync/Close flush (MAP_SHARED + msync).
	SyncLazy SyncPolicy = iota
	// SyncImmediate: every store is flushed to PM as it lands (the
	// eADR/clwb-per-store discipline); Msync then has nothing to do.
	SyncImmediate
	// SyncPeriodic: an implicit msync of all dirty pages fires every
	// SyncEveryBytes of stores (a background flusher).
	SyncPeriodic
)

// DefaultAddressBudget bounds how much of a file is mapped at once when
// MapFullFile is unset; larger files slide a window (64MiB keeps page
// tables and TLB pressure bounded the way a 47-bit VA budget would).
const DefaultAddressBudget = 64 << 20

// defaultSyncEvery is the SyncPeriodic flush threshold.
const defaultSyncEvery = 1 << 20

// Config tunes a mapping.
type Config struct {
	// Mode selects read-only / shared / private semantics.
	Mode Mode
	// Sync is the durability policy for ModeShared stores.
	Sync SyncPolicy
	// MapFullFile maps the whole file in one window regardless of
	// AddressBudget (LMDB-style: one contiguous map, no remaps).
	MapFullFile bool
	// Preload prefaults every page of the window at map time instead of
	// taking demand faults on first touch.
	Preload bool
	// AddressBudget caps the window size in bytes (rounded up to 2MiB);
	// zero means DefaultAddressBudget.
	AddressBudget int64
	// SyncEveryBytes is the SyncPeriodic threshold; zero means 1MiB.
	SyncEveryBytes int64
}

// Mapping is a live memory mapping over a file. All methods are safe for
// concurrent use by multiple sim threads.
type Mapping struct {
	f   vfs.File
	b   vfs.Mapper
	cfg Config
	// length is the mapped span of the file, fixed at Map time.
	length int64
	own    bool // close f when the mapping closes (MapPath)

	mu     sync.Mutex // guards win, closed, unsynced
	closed bool
	win    *window
	// unsynced counts ModeShared store bytes since the last durability
	// point (drives SyncPeriodic).
	unsynced int64

	// dirtyMu guards dirty: file page index -> dirty since last msync.
	dirtyMu sync.Mutex
	dirty   map[int64]struct{}

	// privMu guards priv: file page index -> DRAM shadow (ModePrivate).
	privMu sync.Mutex
	priv   map[int64][]byte

	// statMu guards chunkKind: file 2MiB-chunk index -> last fault kind
	// (kindBase/kindHuge), for promotion accounting and coverage.
	statMu    sync.Mutex
	chunkKind map[int64]uint8
}

const (
	kindBase = 1
	kindHuge = 2
)

// window is one mapped slice of the file: [base, base+m.Len()).
type window struct {
	base int64 // file offset of the window start, 2MiB-aligned
	m    *mmu.Mapping
}

// Map establishes a mapping over the first length bytes of f (length<=0
// maps the current size). The file must implement vfs.Mapper; otherwise
// ErrNotSupported is returned, which is what remote mounts yield.
func Map(ctx *sim.Ctx, f vfs.File, length int64, cfg Config) (*Mapping, error) {
	b, ok := f.(vfs.Mapper)
	if !ok || b.MapSpace() == nil {
		return nil, ErrNotSupported
	}
	if length <= 0 {
		length = f.Size()
	}
	if length <= 0 {
		return nil, fmt.Errorf("vmm: cannot map empty file: %w", mmu.ErrOutOfRange)
	}
	if cfg.AddressBudget <= 0 {
		cfg.AddressBudget = DefaultAddressBudget
	}
	// Round the budget up to a hugepage so window bases stay 2MiB-aligned
	// (HugeEligible needs file-offset alignment to hold through windows).
	cfg.AddressBudget = alignUp(cfg.AddressBudget, mmu.HugePage)
	if cfg.SyncEveryBytes <= 0 {
		cfg.SyncEveryBytes = defaultSyncEvery
	}
	ctx.Syscall(b.MapSyscallNS())
	ctx.Counters.VMMMaps++
	v := &Mapping{
		f:         f,
		b:         b,
		cfg:       cfg,
		length:    length,
		dirty:     make(map[int64]struct{}),
		priv:      make(map[int64][]byte),
		chunkKind: make(map[int64]uint8),
	}
	v.mu.Lock()
	_, err := v.windowForLocked(ctx, 0)
	v.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return v, nil
}

// MapPath opens path on fsys and maps it; the file handle is owned by
// the mapping and closed with it.
func MapPath(ctx *sim.Ctx, fsys vfs.FS, path string, length int64, cfg Config) (*Mapping, error) {
	f, err := fsys.Open(ctx, path)
	if err != nil {
		return nil, err
	}
	m, err := Map(ctx, f, length, cfg)
	if err != nil {
		f.Close(ctx)
		return nil, err
	}
	m.own = true
	return m, nil
}

// Len returns the mapped length.
func (v *Mapping) Len() int64 { return v.length }

// windowBounds computes the window [base, base+n) that serves an access
// at off into a mapping of the given length under budget bytes of
// address space. The base is always 2MiB-aligned (so hugepage
// eligibility is judged at the same file alignment in every window) and
// the window always contains off.
func windowBounds(off, length, budget int64, mapFull bool) (base, n int64) {
	if mapFull || length <= budget {
		return 0, length
	}
	base = off / mmu.HugePage * mmu.HugePage
	n = budget
	if base+n > length {
		n = length - base
	}
	return base, n
}

// windowForLocked returns the window covering off, sliding it if needed.
// Caller holds v.mu.
func (v *Mapping) windowForLocked(ctx *sim.Ctx, off int64) (*window, error) {
	if w := v.win; w != nil && off >= w.base && off < w.base+w.m.Len() {
		return w, nil
	}
	base, n := windowBounds(off, v.length, v.cfg.AddressBudget, v.cfg.MapFullFile)
	if v.win != nil {
		// Slide: munmap the old window (full shootdown) and map the new
		// one — one munmap plus one mmap worth of kernel entries.
		v.b.DetachMapping(v.win.m)
		v.win.m.Invalidate()
		ctx.Syscall(2 * v.b.MapSyscallNS())
		ctx.Counters.VMMWindowRemaps++
	}
	w := &window{base: base, m: v.b.MapSpace().NewMapping(n, &offsetHandler{v: v, base: base})}
	// Register the promotion hook before the file system learns about the
	// mapping, so a layout improvement can never slip between attach and
	// hook: the rewriter/defragmenter notifies every attached mapping.
	w.m.SetPromoteHook(func(hctx *sim.Ctx) { v.Repromote(hctx) })
	v.b.AttachMapping(w.m)
	v.win = w
	if v.cfg.Preload {
		if err := w.m.Prefault(ctx); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// offsetHandler adapts the file's mapping-relative fault handler to a
// window: mmu hands it window-relative page offsets, the file wants
// file offsets. It also enforces the SIGBUS rule — a fault past the
// file's current EOF is a typed error, never a stale extent — and keeps
// the per-chunk fault-kind history behind promotion accounting.
type offsetHandler struct {
	v    *Mapping
	base int64
}

func (h *offsetHandler) Fault(ctx *sim.Ctx, pageOff int64) (mmu.FaultResult, error) {
	fileOff := h.base + pageOff
	// SIGBUS past EOF: mmap rounds the file out to a page boundary, any
	// access beyond that faults. Size() is re-read on every fault, so a
	// truncate under the mapping turns later faults into errors rather
	// than resurrecting freed extents.
	if eof := alignUp(h.v.f.Size(), mmu.BasePage); fileOff >= eof {
		return mmu.FaultResult{}, fmt.Errorf("vmm: fault at %d past eof: %w", fileOff, vfs.ErrMapFault)
	}
	res, err := h.v.b.Fault(ctx, fileOff)
	if err != nil {
		return res, err
	}
	ck := fileOff / mmu.HugePage
	h.v.statMu.Lock()
	prev := h.v.chunkKind[ck]
	if res.Huge {
		if prev == kindBase {
			ctx.Counters.VMMPromotions++
		}
		h.v.chunkKind[ck] = kindHuge
		ctx.Counters.VMMHugeFaults++
	} else {
		h.v.chunkKind[ck] = kindBase
		ctx.Counters.VMMBaseFaults++
	}
	h.v.statMu.Unlock()
	return res, nil
}

// Read copies len(p) bytes at off through the mapping into p, taking
// faults and paging costs as a load would.
func (v *Mapping) Read(ctx *sim.Ctx, p []byte, off int64) error {
	return v.access(ctx, p, off, false)
}

// Write stores p at off through the mapping. ModeReadOnly rejects it;
// ModePrivate breaks the page to a DRAM shadow; ModeShared stores to PM
// and tracks dirt for Msync.
func (v *Mapping) Write(ctx *sim.Ctx, p []byte, off int64) error {
	return v.access(ctx, p, off, true)
}

func (v *Mapping) access(ctx *sim.Ctx, p []byte, off int64, write bool) error {
	if write && v.cfg.Mode == ModeReadOnly {
		return ErrReadOnlyMapping
	}
	if off < 0 || off+int64(len(p)) > v.length {
		return mmu.ErrOutOfRange
	}
	for len(p) > 0 {
		v.mu.Lock()
		if v.closed {
			v.mu.Unlock()
			return ErrClosed
		}
		w, err := v.windowForLocked(ctx, off)
		v.mu.Unlock()
		if err != nil {
			return err
		}
		n := w.base + w.m.Len() - off
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		seg := p[:n]
		if v.cfg.Mode == ModePrivate {
			err = v.accessPrivate(ctx, w, seg, off, write)
		} else if write {
			err = v.writeShared(ctx, w, seg, off)
		} else {
			err = w.m.Read(ctx, seg, off-w.base)
		}
		if err != nil {
			return err
		}
		p = p[n:]
		off += n
	}
	return nil
}

// writeShared stores seg at off through window w and records the dirty
// pages, then applies the Sync policy.
func (v *Mapping) writeShared(ctx *sim.Ctx, w *window, seg []byte, off int64) error {
	if err := w.m.Write(ctx, seg, off-w.base); err != nil {
		return err
	}
	n := int64(len(seg))
	v.dirtyMu.Lock()
	for pg := off / mmu.BasePage; pg*mmu.BasePage < off+n; pg++ {
		v.dirty[pg] = struct{}{}
	}
	v.dirtyMu.Unlock()
	switch v.cfg.Sync {
	case SyncImmediate:
		// clwb-as-you-go: flush exactly the stored range, no kernel entry.
		return v.msync(ctx, off, n, false)
	case SyncPeriodic:
		v.mu.Lock()
		v.unsynced += n
		due := v.unsynced >= v.cfg.SyncEveryBytes
		if due {
			v.unsynced = 0
		}
		v.mu.Unlock()
		if due {
			return v.msync(ctx, 0, v.length, false)
		}
	}
	return nil
}

// accessPrivate serves a read or write in copy-on-write mode: pages with
// a DRAM shadow are served from DRAM; a store to an unshadowed page
// first copies it from the file (the CoW break), then lands in DRAM.
func (v *Mapping) accessPrivate(ctx *sim.Ctx, w *window, p []byte, off int64, write bool) error {
	for len(p) > 0 {
		pg := off / mmu.BasePage
		pgOff := off - pg*mmu.BasePage
		n := mmu.BasePage - pgOff
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		v.privMu.Lock()
		shadow := v.priv[pg]
		v.privMu.Unlock()
		if shadow == nil && write {
			// CoW break: fault the file page in and copy it to DRAM.
			shadow = make([]byte, mmu.BasePage)
			pageStart := pg * mmu.BasePage
			pn := int64(mmu.BasePage)
			if pageStart+pn > v.length {
				pn = v.length - pageStart
			}
			if err := w.m.Read(ctx, shadow[:pn], pageStart-w.base); err != nil {
				return err
			}
			dramCost(ctx, mmu.BasePage)
			ctx.Counters.VMMCowBreaks++
			v.privMu.Lock()
			if cur := v.priv[pg]; cur != nil {
				shadow = cur // lost the race; use the winner's copy
			} else {
				v.priv[pg] = shadow
			}
			v.privMu.Unlock()
		}
		if shadow != nil {
			dramCost(ctx, n)
			if write {
				copy(shadow[pgOff:], p[:n])
			} else {
				copy(p[:n], shadow[pgOff:])
			}
		} else {
			// Clean read: straight through the file mapping.
			if err := w.m.Read(ctx, p[:n], off-w.base); err != nil {
				return err
			}
		}
		p = p[n:]
		off += n
	}
	return nil
}

// dramCost charges a DRAM access for n bytes of shadow-page traffic.
func dramCost(ctx *sim.Ctx, n int64) {
	// ~60ns first-touch latency amortised per call plus DRAM bandwidth
	// (~40GB/s -> 0.025ns/B), mirroring the page-cache hit pricing.
	ctx.Advance(60 + n/40)
}

// Touch charges the paging costs of accessing [off, off+n) without
// moving bytes — the bulk-sweep primitive benches use. Writes through a
// private mapping are not modelled here (Touch is cost accounting only).
func (v *Mapping) Touch(ctx *sim.Ctx, off, n int64, write bool) error {
	if write && v.cfg.Mode == ModeReadOnly {
		return ErrReadOnlyMapping
	}
	if off < 0 || off+n > v.length {
		return mmu.ErrOutOfRange
	}
	for n > 0 {
		v.mu.Lock()
		if v.closed {
			v.mu.Unlock()
			return ErrClosed
		}
		w, err := v.windowForLocked(ctx, off)
		v.mu.Unlock()
		if err != nil {
			return err
		}
		seg := w.base + w.m.Len() - off
		if seg > n {
			seg = n
		}
		if err := w.m.Touch(ctx, off-w.base, seg, write); err != nil {
			return err
		}
		if write && v.cfg.Mode == ModeShared {
			v.dirtyMu.Lock()
			for pg := off / mmu.BasePage; pg*mmu.BasePage < off+seg; pg++ {
				v.dirty[pg] = struct{}{}
			}
			v.dirtyMu.Unlock()
		}
		off += seg
		n -= seg
	}
	return nil
}

// Msync makes stores to [off, off+n) durable (n<0 syncs the whole
// mapping). Shared mappings flush their dirty pages through the file
// system's durability rules; private dirty pages are anonymous DRAM and
// are never written back (POSIX MAP_PRIVATE).
func (v *Mapping) Msync(ctx *sim.Ctx, off, n int64) error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	v.mu.Unlock()
	if n < 0 {
		off, n = 0, v.length
	}
	return v.msync(ctx, off, n, true)
}

// msync flushes the dirty pages intersecting [off, off+n). syscall says
// whether to charge a kernel entry (explicit msync does; the
// SyncImmediate store-side flush doesn't).
func (v *Mapping) msync(ctx *sim.Ctx, off, n int64, syscall bool) error {
	if syscall {
		ctx.Syscall(v.b.MapSyscallNS())
	}
	ctx.Counters.VMMMsyncs++
	if v.cfg.Mode != ModeShared {
		return nil
	}
	// Collect the dirty pages in range as contiguous runs.
	start := off / mmu.BasePage
	end := (off + n + mmu.BasePage - 1) / mmu.BasePage
	var runs [][2]int64
	v.dirtyMu.Lock()
	var runStart, runLen int64 = -1, 0
	for pg := start; pg < end; pg++ {
		if _, ok := v.dirty[pg]; ok {
			delete(v.dirty, pg)
			if runStart < 0 {
				runStart = pg
			}
			runLen++
		} else if runStart >= 0 {
			runs = append(runs, [2]int64{runStart, runLen})
			runStart, runLen = -1, 0
		}
	}
	if runStart >= 0 {
		runs = append(runs, [2]int64{runStart, runLen})
	}
	v.dirtyMu.Unlock()
	for _, r := range runs {
		rOff := r[0] * mmu.BasePage
		rN := r[1] * mmu.BasePage
		if rOff+rN > v.length {
			rN = v.length - rOff
		}
		if err := v.b.MsyncRange(ctx, rOff, rN); err != nil {
			return err
		}
		ctx.Counters.VMMMsyncBytes += rN
	}
	return nil
}

// Close unmaps: remaining shared dirt is flushed (so no acknowledged
// store is silently lost at munmap), translations are shot down, and
// the handle is detached from the file.
func (v *Mapping) Close(ctx *sim.Ctx) error {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return ErrClosed
	}
	v.closed = true
	w := v.win
	v.win = nil
	v.mu.Unlock()
	var err error
	if v.cfg.Mode == ModeShared {
		err = v.msync(ctx, 0, v.length, false)
	}
	if w != nil {
		v.b.DetachMapping(w.m)
		w.m.Invalidate()
	}
	ctx.Syscall(v.b.MapSyscallNS())
	ctx.Counters.VMMUnmaps++
	if v.own {
		if cerr := v.f.Close(ctx); err == nil {
			err = cerr
		}
	}
	return err
}

// MappedPages reports the live translations of the current window:
// resident 4KiB base pages and 2MiB hugepage chunks.
func (v *Mapping) MappedPages() (base, huge int) {
	v.mu.Lock()
	w := v.win
	v.mu.Unlock()
	if w == nil {
		return 0, 0
	}
	return w.m.MappedPages()
}

// Repromote re-examines every 2MiB chunk this mapping has faulted with
// base pages and, where the backing file has since become
// hugepage-eligible, upgrades the per-chunk accounting and collapses the
// live window's translation to a hugepage. This closes the promotion
// gap: before, a chunk whose layout was fixed after mapping stayed on
// base pages — and FaultedChunks/vmm_promotions_total undercounted —
// until some later refault happened to hit it. The file system invokes
// it through the mmu promote hook after reactive rewrites and online
// defrag passes; callers may also invoke it directly. Costs accrue to
// ctx (the maintenance thread, not the foreground). Returns the number
// of chunks promoted; backings without vfs.HugeProber are a no-op.
func (v *Mapping) Repromote(ctx *sim.Ctx) int {
	prober, ok := v.b.(vfs.HugeProber)
	if !ok {
		return 0
	}
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return 0
	}
	w := v.win
	v.mu.Unlock()

	v.statMu.Lock()
	cand := make([]int64, 0, len(v.chunkKind))
	for ck, k := range v.chunkKind {
		if k == kindBase {
			cand = append(cand, ck)
		}
	}
	v.statMu.Unlock()
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })

	promoted := 0
	for _, ck := range cand {
		fileOff := ck * mmu.HugePage
		if fileOff+mmu.HugePage > v.length {
			continue
		}
		// The translation is installed inside the probe, under the file's
		// layout read lock: a concurrent truncate/rewrite cannot free the
		// probed blocks before the hugepage PMD is in place (layout
		// changes take the write lock and invalidate mappings first).
		eligible := prober.ProbeHuge(fileOff, func(phys int64) {
			if w != nil && fileOff >= w.base && fileOff+mmu.HugePage <= w.base+w.m.Len() {
				w.m.PromoteChunk(ctx, fileOff-w.base, phys)
			}
		})
		if !eligible {
			continue
		}
		v.statMu.Lock()
		fresh := v.chunkKind[ck] == kindBase
		if fresh {
			v.chunkKind[ck] = kindHuge
		}
		v.statMu.Unlock()
		if fresh {
			promoted++
			ctx.Counters.VMMPromotions++
			ctx.Counters.DefragRepromotions++
		}
	}
	return promoted
}

// FaultedChunks reports, over the mapping's lifetime, how many distinct
// 2MiB file chunks have faulted and how many of them last faulted as a
// hugepage — the hugepage-coverage figure the paper's Figure 1 plots.
func (v *Mapping) FaultedChunks() (huge, total int) {
	v.statMu.Lock()
	defer v.statMu.Unlock()
	for _, k := range v.chunkKind {
		total++
		if k == kindHuge {
			huge++
		}
	}
	return huge, total
}

func alignUp(n, a int64) int64 { return (n + a - 1) / a * a }
