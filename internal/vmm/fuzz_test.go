package vmm

import (
	"testing"

	"repro/internal/mmu"
)

// FuzzWindowBounds checks the window-placement arithmetic for every
// (access offset, mapping length, address budget) combination: the chosen
// window must be hugepage-aligned, contain the faulting offset, stay
// inside the mapping, and never exceed the budget (except in full-file
// mode, where the window is the whole mapping by construction).
func FuzzWindowBounds(f *testing.F) {
	f.Add(int64(0), int64(1<<20), int64(64<<20), false)
	f.Add(int64(63<<20), int64(256<<20), int64(64<<20), false)
	f.Add(int64(200<<20), int64(256<<20), int64(64<<20), false)
	f.Add(int64(5), int64(256<<20), int64(2<<20), true)
	f.Add(int64(1<<30), int64(1<<30+1), int64(2<<20), false)
	f.Fuzz(func(t *testing.T, off, length, budget int64, mapFull bool) {
		// Constrain to the domain Map() establishes before any window is
		// computed: positive length, hugepage-multiple budget, offset
		// inside the mapping.
		if length <= 0 || length > 1<<40 {
			t.Skip()
		}
		if budget <= 0 || budget > 1<<40 {
			t.Skip()
		}
		budget = alignUp(budget, mmu.HugePage)
		if off < 0 || off >= length {
			t.Skip()
		}

		base, n := windowBounds(off, length, budget, mapFull)

		if base%mmu.HugePage != 0 {
			t.Fatalf("window base %d not hugepage-aligned (off=%d len=%d budget=%d)", base, off, length, budget)
		}
		if n <= 0 {
			t.Fatalf("empty window n=%d (off=%d len=%d budget=%d)", n, off, length, budget)
		}
		if off < base || off >= base+n {
			t.Fatalf("window [%d,%d) misses off %d (len=%d, budget=%d)", base, base+n, off, length, budget)
		}
		if base+n > length {
			t.Fatalf("window [%d,%d) past mapping length %d (off=%d, budget=%d)", base, base+n, length, off, budget)
		}
		full := mapFull || length <= budget
		if !full && n > budget {
			t.Fatalf("windowed mapping exceeded budget: n=%d budget=%d (off=%d len=%d)", n, budget, off, length)
		}
		if full && (base != 0 || n != length) {
			t.Fatalf("full-file mapping got window [%d,%d), want [0,%d)", base, base+n, length)
		}
	})
}
