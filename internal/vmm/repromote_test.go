package vmm_test

import (
	"bytes"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vmm"
	"repro/internal/winefs"
)

// TestRepromoteAfterLayoutFix closes the promotion gap: a mapping whose
// chunks were base-faulted over a fragmented layout is upgraded to
// hugepage translations when the file system announces the layout
// improved — no refault, and the per-chunk accounting (VMMPromotions,
// FaultedChunks coverage) reflects every upgraded chunk.
func TestRepromoteAfterLayoutFix(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(512 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create(ctx, "/frag")
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i >> 12)
	}
	for off := int64(0); off < int64(len(payload)); off += 64 << 10 {
		if _, err := f.WriteAt(ctx, payload[off:off+64<<10], off); err != nil {
			t.Fatal(err)
		}
	}

	m, err := vmm.Map(ctx, f, 0, vmm.Config{Mode: vmm.ModeReadOnly, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)
	if err := m.Touch(ctx, 0, int64(len(payload)), false); err != nil {
		t.Fatal(err)
	}
	hugeBefore, total := m.FaultedChunks()
	if total != 2 {
		t.Fatalf("faulted chunks = %d, want 2", total)
	}
	if hugeBefore == total {
		t.Skip("layout happened to be hugepage-eligible already")
	}

	// Fix the layout: the reactive rewriter swaps in aligned extents and
	// fires the promotion notification through the attach hook.
	bg := sim.NewCtx(2, 3)
	bg.AdvanceTo(ctx.Now())
	if n := fs.RunRewriter(bg); n != 1 {
		t.Fatalf("rewriter processed %d files, want 1", n)
	}
	hugeAfter, _ := m.FaultedChunks()
	if hugeAfter != total {
		t.Fatalf("coverage after notify = %d/%d chunks, want full", hugeAfter, total)
	}
	if got := bg.Counters.VMMPromotions; got != int64(total-hugeBefore) {
		t.Fatalf("VMMPromotions = %d, want %d (one per upgraded chunk)", got, total-hugeBefore)
	}
	if bg.Counters.DefragRepromotions != int64(total-hugeBefore) {
		t.Fatalf("DefragRepromotions = %d, want %d", bg.Counters.DefragRepromotions, total-hugeBefore)
	}

	// Explicit API is idempotent: nothing left to upgrade.
	again := sim.NewCtx(3, 0)
	again.AdvanceTo(bg.Now())
	if n := m.Repromote(again); n != 0 {
		t.Fatalf("second Repromote upgraded %d chunks, want 0", n)
	}

	// The application sees the same bytes, served without refaulting.
	post := sim.NewCtx(4, 0)
	post.AdvanceTo(bg.Now())
	buf := make([]byte, 4096)
	for _, off := range []int64{0, 2<<20 + 512} {
		if err := m.Read(post, buf, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload[off:off+4096]) {
			t.Fatalf("post-promotion read at %d corrupted", off)
		}
	}
	if post.Counters.PageFaults+post.Counters.HugeFaults > 0 {
		t.Fatalf("post-promotion reads refaulted (%d base, %d huge)",
			post.Counters.PageFaults, post.Counters.HugeFaults)
	}
}
