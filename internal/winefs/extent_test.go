package winefs_test

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

// TestIndirectExtentChain builds a file with far more extents than the
// inode's 12 inline slots by interleaving writes to two files (defeating
// extent merging), then verifies the extent records survive unmount,
// remount and crash recovery.
func TestIndirectExtentChain(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(512 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := fs.Create(ctx, "/a")
	b, _ := fs.Create(ctx, "/b")
	// Alternating appends interleave the two files' allocations so
	// neighbouring extents never merge.
	const rounds = 100
	payload := make([]byte, 8<<10)
	for i := 0; i < rounds; i++ {
		for j := range payload {
			payload[j] = byte(i)
		}
		if _, err := a.Append(ctx, payload); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Append(ctx, payload); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.Extents()) <= winefs.InlineExtents {
		t.Skipf("allocator kept the file in %d extents; interleave failed to fragment", len(a.Extents()))
	}

	verify := func(rfs *winefs.FS, rctx *sim.Ctx) {
		t.Helper()
		f, err := rfs.Open(rctx, "/a")
		if err != nil {
			t.Fatal(err)
		}
		if f.Size() != rounds*int64(len(payload)) {
			t.Fatalf("size = %d", f.Size())
		}
		got := make([]byte, len(payload))
		for _, i := range []int{0, 17, 50, rounds - 1} {
			if _, err := f.ReadAt(rctx, got, int64(i)*int64(len(payload))); err != nil {
				t.Fatal(err)
			}
			want := bytes.Repeat([]byte{byte(i)}, len(payload))
			if !bytes.Equal(got, want) {
				t.Fatalf("round %d content wrong (got %d)", i, got[0])
			}
		}
	}

	// Clean remount.
	if err := fs.Unmount(ctx); err != nil {
		t.Fatal(err)
	}
	rctx := sim.NewCtx(2, 0)
	rfs, err := winefs.Mount(rctx, dev, winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	verify(rfs, rctx)
	if rep := winefs.Check(dev); !rep.OK() {
		t.Fatalf("fsck after clean remount: %v", rep.Errors)
	}

	// Crash-mount (no unmount): the scan must rebuild the same state.
	cctx := sim.NewCtx(3, 0)
	cfs, err := winefs.Mount(cctx, dev, winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	verify(cfs, cctx)
}

// TestExtentMapProperty drives random writes/truncates against a WineFS
// file and an in-memory reference; contents must always agree (the extent
// machinery — splits, CoW swaps, record compaction — is the code under
// test).
func TestExtentMapProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		ctx := sim.NewCtx(1, 0)
		dev := pmem.New(256 << 20)
		fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2})
		if err != nil {
			return false
		}
		file, err := fs.Create(ctx, "/ref")
		if err != nil {
			return false
		}
		const maxSize = 1 << 20
		ref := make([]byte, 0, maxSize)
		for opi, op := range ops {
			kind := op % 4
			off := int64(op>>2) % maxSize
			size := int64(op>>12)%(64<<10) + 1
			switch kind {
			case 0, 1: // write
				if off+size > maxSize {
					size = maxSize - off
				}
				data := bytes.Repeat([]byte{byte(opi + 1)}, int(size))
				if _, err := file.WriteAt(ctx, data, off); err != nil {
					return false
				}
				if int64(len(ref)) < off+size {
					ref = append(ref, make([]byte, off+size-int64(len(ref)))...)
				}
				copy(ref[off:off+size], data)
			case 2: // truncate
				newSize := off % maxSize
				if err := file.Truncate(ctx, newSize); err != nil {
					return false
				}
				if int64(len(ref)) > newSize {
					ref = ref[:newSize]
				} else {
					ref = append(ref, make([]byte, newSize-int64(len(ref)))...)
				}
			case 3: // verify a random window
				if len(ref) == 0 {
					continue
				}
				ws := off % int64(len(ref))
				wl := size
				if ws+wl > int64(len(ref)) {
					wl = int64(len(ref)) - ws
				}
				got := make([]byte, wl)
				n, err := file.ReadAt(ctx, got, ws)
				if err != nil || int64(n) != wl {
					return false
				}
				if !bytes.Equal(got, ref[ws:ws+wl]) {
					return false
				}
			}
			if file.Size() != int64(len(ref)) {
				return false
			}
		}
		// Final full check.
		got := make([]byte, len(ref))
		if len(ref) > 0 {
			if _, err := file.ReadAt(ctx, got, 0); err != nil {
				return false
			}
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestSpaceConservationUnderChurn: allocated+free block counts stay
// consistent through arbitrary create/write/delete churn.
func TestSpaceConservationUnderChurn(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(512 << 20)
	fs, _ := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	total := fs.StatFS(ctx).TotalBlocks
	rng := sim.NewRand(77)
	live := map[string]bool{}
	for i := 0; i < 400; i++ {
		if len(live) < 10 || rng.Intn(2) == 0 {
			name := fmt.Sprintf("/c%d", i)
			f, err := fs.Create(ctx, name)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Fallocate(ctx, 0, int64(rng.Intn(4<<20))+1); err != nil {
				t.Fatal(err)
			}
			live[name] = true
		} else {
			for name := range live {
				if err := fs.Unlink(ctx, name); err != nil {
					t.Fatal(err)
				}
				delete(live, name)
				break
			}
		}
		st := fs.StatFS(ctx)
		if st.FreeBlocks < 0 || st.FreeBlocks > total {
			t.Fatalf("free blocks out of range: %d of %d", st.FreeBlocks, total)
		}
	}
	// fsck agrees with the DRAM accounting.
	st := fs.StatFS(ctx)
	rep := winefs.Check(dev)
	if !rep.OK() {
		t.Fatalf("fsck: %v", rep.Errors)
	}
	// used (per fsck) + free (per statfs) should cover the data pools
	// (dirent/indirect blocks are counted as used by fsck too).
	if rep.UsedBlocks+st.FreeBlocks > total+1024 || rep.UsedBlocks+st.FreeBlocks < total-1024 {
		t.Fatalf("accounting drift: used=%d free=%d total=%d", rep.UsedBlocks, st.FreeBlocks, total)
	}
}
