package winefs

import "sync"

// The DRAM inode map is sharded by owning per-CPU inode table: inode
// numbers are dense per CPU group (layout.go inoFor/cpuOfIno), so keying
// shards by cpuOfIno gives namespace traffic on different CPU groups its
// own map lock — the same reasoning that gives each group its own journal
// and allocator. A single global map lock was the last global
// serialisation point on the namespace hot path.
type inodeShard struct {
	mu sync.RWMutex
	m  map[uint64]*inode
}

func newShards(cpus int) []*inodeShard {
	shards := make([]*inodeShard, cpus)
	for i := range shards {
		shards[i] = &inodeShard{m: make(map[uint64]*inode)}
	}
	return shards
}

func (fs *FS) shardOf(ino uint64) *inodeShard {
	return fs.shards[fs.g.cpuOfIno(ino)]
}

func (fs *FS) getInode(ino uint64) *inode {
	sh := fs.shardOf(ino)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.m[ino]
}

func (fs *FS) putInode(ino *inode) {
	sh := fs.shardOf(ino.ino)
	sh.mu.Lock()
	sh.m[ino.ino] = ino
	sh.mu.Unlock()
}

func (fs *FS) delInode(ino uint64) {
	sh := fs.shardOf(ino)
	sh.mu.Lock()
	delete(sh.m, ino)
	sh.mu.Unlock()
}

// snapshotInodes returns a coherent snapshot of every live inode: all
// shard locks are held simultaneously (acquired in index order, so this
// cannot deadlock against another snapshot), preventing a concurrent
// create-on-shard-A/delete-on-shard-B from appearing half-applied. Audit's
// tiling phase and the unmount serialisation depend on this — a torn
// snapshot reads as a block leak.
func (fs *FS) snapshotInodes() []*inode {
	for _, sh := range fs.shards {
		sh.mu.RLock()
	}
	var n int
	for _, sh := range fs.shards {
		n += len(sh.m)
	}
	out := make([]*inode, 0, n)
	for _, sh := range fs.shards {
		for _, ino := range sh.m {
			out = append(out, ino)
		}
	}
	for i := len(fs.shards) - 1; i >= 0; i-- {
		fs.shards[i].mu.RUnlock()
	}
	return out
}

// inodeCount reports the number of live inodes, coherently across shards.
func (fs *FS) inodeCount() int {
	for _, sh := range fs.shards {
		sh.mu.RLock()
	}
	var n int
	for _, sh := range fs.shards {
		n += len(sh.m)
	}
	for i := len(fs.shards) - 1; i >= 0; i-- {
		fs.shards[i].mu.RUnlock()
	}
	return n
}
