package winefs

import (
	"fmt"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func mk(t *testing.T) (*FS, *sim.Ctx, *pmem.Device) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(128 << 20)
	fs, err := Mkfs(ctx, dev, Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	return fs, ctx, dev
}

func TestJournalEntryCodec(t *testing.T) {
	e := jentry{typ: entryData, n: 17, wrap: 3, txid: 42, addr: 0xdeadbeef}
	copy(e.data[:], "old-bytes")
	b := encodeEntry(&e)
	if len(b) != EntrySize {
		t.Fatalf("entry size %d", len(b))
	}
	got, ok := decodeEntry(b)
	if !ok {
		t.Fatal("decode failed")
	}
	if got.typ != e.typ || got.n != e.n || got.wrap != e.wrap || got.txid != e.txid || got.addr != e.addr {
		t.Fatalf("decoded %+v", got)
	}
	if string(got.data[:9]) != "old-bytes" {
		t.Fatal("payload lost")
	}
	if _, ok := decodeEntry(make([]byte, EntrySize)); ok {
		t.Fatal("zero entry decoded as valid")
	}
}

func TestTxnCommitReclaims(t *testing.T) {
	fs, ctx, _ := mk(t)
	j := fs.journals[0]
	tailBefore := j.tail
	tx := fs.beginTx(ctx, 0)
	tx.undo(ctx, fs.g.inodeAddr(1), 32)
	tx.commit(ctx)
	// After commit, the header's durable tail equals the DRAM tail and no
	// uncommitted transaction is found.
	if j.tail <= tailBefore {
		t.Fatal("tail did not advance")
	}
	if tx2, _, _ := j.scanJournal(); tx2 != nil {
		t.Fatalf("found uncommitted tx after commit: %+v", tx2)
	}
}

func TestUncommittedTxRollsBack(t *testing.T) {
	fs, ctx, dev := mk(t)
	addr := fs.g.inodeAddr(2)
	orig := []byte("ORIGINAL-CONTENT-32-BYTES-LONG!!")
	dev.WriteAt(orig, addr)

	// Start a transaction, log undo, clobber the region... then "crash"
	// before commit (simply don't commit).
	tx := fs.beginTx(ctx, 0)
	tx.undo(ctx, addr, 32)
	dev.WriteAt([]byte("GARBAGE-GARBAGE-GARBAGE-GARBAGE!"), addr)
	tx.j.res.Release(ctx) // release without committing (simulated crash)

	found, _, _ := fs.journals[0].scanJournal()
	if found == nil || found.txid != tx.id || len(found.undo) != 1 {
		t.Fatalf("scan found %+v", found)
	}
	n := fs.recoverJournals(ctx)
	if n != 1 {
		t.Fatalf("recovered %d txs", n)
	}
	got := make([]byte, 32)
	dev.ReadAt(got, addr)
	if string(got) != string(orig) {
		t.Fatalf("rollback failed: %q", got)
	}
	// After recovery the journal is empty again.
	if tx2, _, _ := fs.journals[0].scanJournal(); tx2 != nil {
		t.Fatal("journal not clean after recovery")
	}
}

func TestJournalWraparound(t *testing.T) {
	fs, ctx, _ := mk(t)
	j := fs.journals[0]
	entries := fs.g.journalEntries()
	// Run enough transactions to wrap several times.
	rounds := int(entries/3)*2 + 10
	for i := 0; i < rounds; i++ {
		tx := fs.beginTx(ctx, 0)
		tx.undo(ctx, fs.g.inodeAddr(1), 16)
		tx.commit(ctx)
	}
	if j.wrap < 2 {
		t.Fatalf("journal never wrapped: wrap=%d", j.wrap)
	}
	// Still consistent: no phantom uncommitted transactions.
	if tx, _, _ := j.scanJournal(); tx != nil {
		t.Fatalf("phantom tx after wraparound: %+v", tx)
	}
	// And an uncommitted tx right after a wrap is still found.
	j.tail = entries - 2 // force the next tx to wrap
	tx := fs.beginTx(ctx, 0)
	tx.undo(ctx, fs.g.inodeAddr(1), 8)
	tx.j.res.Release(ctx)
	found, _, _ := j.scanJournal()
	if found == nil || found.txid != tx.id {
		t.Fatalf("wrap-straddling tx not found: %+v", found)
	}
}

func TestRecoveryOrdersAcrossJournals(t *testing.T) {
	fs, ctx, dev := mk(t)
	addr := fs.g.inodeAddr(3)
	dev.WriteAt([]byte("VERSION0"), addr)

	// Tx A on CPU 0 logs VERSION0 then writes VERSION1; tx B on CPU 1 logs
	// VERSION1 then writes VERSION2. Neither commits. Rollback must apply
	// B's undo first (higher TxID), then A's — ending at VERSION0.
	txA := fs.beginTx(ctx, 0)
	txA.undo(ctx, addr, 8)
	dev.WriteAt([]byte("VERSION1"), addr)
	txA.j.res.Release(ctx)

	txB := fs.beginTx(ctx, 1)
	txB.undo(ctx, addr, 8)
	dev.WriteAt([]byte("VERSION2"), addr)
	txB.j.res.Release(ctx)

	if txB.id <= txA.id {
		t.Fatal("global TxIDs not increasing")
	}
	if n := fs.recoverJournals(ctx); n != 2 {
		t.Fatalf("recovered %d", n)
	}
	got := make([]byte, 8)
	dev.ReadAt(got, addr)
	if string(got) != "VERSION0" {
		t.Fatalf("cross-journal rollback order wrong: %q", got)
	}
}

func TestMaxTxEntriesRespected(t *testing.T) {
	// Every namespace operation must fit the paper's 10-entry budget in a
	// single journal transaction (no chaining) for representative shapes.
	fs, ctx, _ := mk(t)
	ops := []func() error{
		func() error { _, err := fs.Create(ctx, "/a"); return err },
		func() error { return fs.Mkdir(ctx, "/d") },
		func() error { _, err := fs.Create(ctx, "/d/x"); return err },
		func() error { return fs.Rename(ctx, "/d/x", "/d/y") },
		func() error { return fs.Unlink(ctx, "/d/y") },
		func() error { return fs.Rmdir(ctx, "/d") },
	}
	for i, op := range ops {
		commits := ctx.Counters.JournalCommits
		if err := op(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got := ctx.Counters.JournalCommits - commits; got != 1 {
			t.Fatalf("op %d used %d journal transactions, want 1", i, got)
		}
	}
}

func TestHeaderSurvivesReload(t *testing.T) {
	fs, ctx, _ := mk(t)
	for i := 0; i < 7; i++ {
		tx := fs.beginTx(ctx, 1)
		tx.undo(ctx, fs.g.inodeAddr(1), 8)
		tx.commit(ctx)
	}
	j := fs.journals[1]
	tail, wrap := j.tail, j.wrap
	j.tail, j.wrap = 0, 0
	j.load()
	if j.tail != tail || j.wrap != wrap {
		t.Fatalf("reload: tail=%d/%d wrap=%d/%d", j.tail, tail, j.wrap, wrap)
	}
}

func TestCrashDuringCreateIsAtomic(t *testing.T) {
	// End-to-end: snapshot the device, run a create, then restore crash
	// states that cut the store sequence at every fence epoch. After
	// recovery the file either fully exists or doesn't exist at all.
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(128 << 20)
	fs, err := Mkfs(ctx, dev, Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-populate so the create is a pure metadata op.
	if _, err := fs.Create(ctx, "/pre"); err != nil {
		t.Fatal(err)
	}
	base := dev.Snapshot()
	dev.StartTrace()
	if _, err := fs.Create(ctx, "/victim"); err != nil {
		t.Fatal(err)
	}
	trace := dev.StopTrace()
	if len(trace) == 0 {
		t.Fatal("create produced no stores")
	}
	maxEpoch := trace[len(trace)-1].Epoch
	for cut := 0; cut <= maxEpoch+1; cut++ {
		img := base.Clone()
		var applied []pmem.Store
		for _, s := range trace {
			if s.Epoch < cut {
				applied = append(applied, s)
			}
		}
		img.Apply(applied)
		dev.Restore(img)
		rctx := sim.NewCtx(2, 0)
		rfs, err := Mount(rctx, dev, Options{CPUs: 2})
		if err != nil {
			t.Fatalf("cut %d: mount: %v", cut, err)
		}
		_, errPre := rfs.Stat(rctx, "/pre")
		if errPre != nil {
			t.Fatalf("cut %d: /pre lost: %v", cut, errPre)
		}
		_, errV := rfs.Stat(rctx, "/victim")
		if errV != nil && errV != vfs.ErrNotExist {
			t.Fatalf("cut %d: inconsistent state: %v", cut, errV)
		}
		// If the file exists it must be fully usable.
		if errV == nil {
			if _, err := rfs.Open(rctx, "/victim"); err != nil {
				t.Fatalf("cut %d: victim exists but unusable: %v", cut, err)
			}
		}
	}
}

func TestCrashStatesOfUnlink(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(128 << 20)
	fs, _ := Mkfs(ctx, dev, Options{CPUs: 2})
	f, _ := fs.Create(ctx, "/doomed")
	f.WriteAt(ctx, []byte("data"), 0)
	base := dev.Snapshot()
	dev.StartTrace()
	if err := fs.Unlink(ctx, "/doomed"); err != nil {
		t.Fatal(err)
	}
	trace := dev.StopTrace()
	maxEpoch := trace[len(trace)-1].Epoch
	for cut := 0; cut <= maxEpoch+1; cut++ {
		img := base.Clone()
		var applied []pmem.Store
		for _, s := range trace {
			if s.Epoch < cut {
				applied = append(applied, s)
			}
		}
		img.Apply(applied)
		dev.Restore(img)
		rctx := sim.NewCtx(2, 0)
		rfs, err := Mount(rctx, dev, Options{CPUs: 2})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		_, errV := rfs.Stat(rctx, "/doomed")
		if errV == nil {
			// Still present: content must be intact.
			g, err := rfs.Open(rctx, "/doomed")
			if err != nil || g.Size() != 4 {
				t.Fatalf("cut %d: partial unlink: %v size=%d", cut, err, g.Size())
			}
		} else if errV != vfs.ErrNotExist {
			t.Fatalf("cut %d: %v", cut, errV)
		}
	}
}

func TestRecoveryTimeScalesWithFiles(t *testing.T) {
	// §5.2: recovery time depends on the number of files, not data volume.
	times := make(map[int]int64)
	for _, nFiles := range []int{10, 100} {
		ctx := sim.NewCtx(1, 0)
		dev := pmem.New(256 << 20)
		fs, _ := Mkfs(ctx, dev, Options{CPUs: 4})
		for i := 0; i < nFiles; i++ {
			f, _ := fs.Create(ctx, fmt.Sprintf("/f%d", i))
			f.WriteAt(ctx, make([]byte, 4096), 0)
		}
		rctx := sim.NewCtx(2, 0)
		if _, err := Mount(rctx, dev, Options{CPUs: 4}); err != nil {
			t.Fatal(err)
		}
		times[nFiles] = rctx.Now()
	}
	if times[100] <= times[10] {
		t.Fatalf("recovery time not increasing with files: %v", times)
	}
}
