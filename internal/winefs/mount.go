package winefs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mmu"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Mount attaches to an existing WineFS on dev. If the superblock records a
// clean unmount the serialised allocator state is loaded; otherwise the
// per-CPU journals are recovered (uncommitted transactions rolled back) and
// the allocator is rebuilt by scanning the per-CPU inode tables in
// parallel (§3.6, "Crash Recovery and unmount").
func Mount(ctx *sim.Ctx, dev *pmem.Device, opts Options) (*FS, error) {
	sbBuf := make([]byte, sbSize)
	// A poisoned superblock is not survivable: without the geometry nothing
	// else on the device can be located. Mount fails with EIO.
	if err := dev.ReadAtChecked(sbBuf, 0); err != nil {
		return nil, mapDevErr(err)
	}
	sb := decodeSuperblock(sbBuf)
	if sb.magic != Magic {
		return nil, fmt.Errorf("winefs: bad superblock magic %#x", sb.magic)
	}
	dev.Read(ctx, sbBuf, 0) // charge the superblock read

	fs := &FS{
		dev:    dev,
		as:     mmu.NewAddressSpace(dev),
		model:  dev.Model(),
		mode:   opts.Mode,
		g:      makeGeometry(sb.totalBlocks, int(sb.cpus), sb.inodesPerCPU),
		locks:  vfs.NewLockTable(),
		numaOn: opts.NUMAAware && dev.Nodes() > 1,
		homes:  make(map[int]int),
	}
	if err := fs.initTier(opts.Tier); err != nil {
		return nil, err
	}
	fs.shards = newShards(fs.g.cpus)
	fs.nextTxID = sb.nextTxID
	fs.alloc = newAllocator(fs)
	for c := 0; c < fs.g.cpus; c++ {
		j := &journal{fs: fs, cpu: c, base: fs.g.journalBase(c)}
		fs.journals = append(fs.journals, j)
		if err := j.load(); err != nil {
			fs.degrade("journal %d unreadable at mount: %v", c, err)
		}
	}

	rebuiltFree := false
	if !sb.clean {
		// Crash path: roll back in-flight transactions first, then rebuild
		// everything from the (now consistent) inode tables.
		fs.recoverJournals(ctx)
		fs.rebuildFromScan(ctx, true)
		rebuiltFree = true
	} else {
		// Clean path: the DRAM structures are deserialised from the
		// unmount area. (The host still walks the inode tables to build
		// its in-memory namespace, but the virtual-time cost charged is
		// the cheap freelist read — matching a real clean mount.)
		if !fs.loadFreeState(ctx) {
			fs.rebuildFromScan(ctx, true)
			rebuiltFree = true
		} else {
			fs.rebuildFromScan(ctx, false)
		}
	}
	// The slow-tier pool is DRAM-only: the free-rebuild path already
	// replayed slow extents through the routed markUsed; a clean mount
	// (PM freelist loaded, no free rebuild) replays them here.
	if fs.tier != nil && !rebuiltFree {
		fs.rebuildSlowPool()
	}
	// The mount is live: mark the superblock dirty so a crash triggers
	// recovery. A degraded mount never writes — it serves reads only.
	if fs.writable() == nil {
		fs.writeSuper(ctx, false)
	}
	return fs, nil
}

// Unmount implements vfs.FS: serialise the DRAM allocator state and mark
// the superblock clean. A degraded mount changes nothing: the superblock
// stays dirty so the next mount re-runs recovery (or fsck -repair).
func (fs *FS) Unmount(ctx *sim.Ctx) error {
	if err := fs.writable(); err != nil {
		return err
	}
	// Stop the background maintenance paths first: a rewrite or defrag
	// pass racing past this point would mutate the image after the
	// allocator state below is serialised. Entries still queued are
	// dropped — the queue is advisory (a fragmented file re-queues at its
	// next mmap after remount).
	fs.unmounted.Store(true)
	fs.rewriteMu.Lock()
	fs.rewriteQ = nil
	fs.rewriteQueued = nil
	fs.rewriteMu.Unlock()
	// Wait out an in-flight defrag pass (it checks unmounted between
	// candidates): a chunk still held during serialisation would leave
	// its free blocks out of the saved allocator state.
	fs.defragMu.Lock()
	fs.defragMu.Unlock()
	// Same for an in-flight tier migration pass.
	fs.tierMu.Lock()
	fs.tierMu.Unlock()
	fs.saveFreeState(ctx)
	fs.writeSuper(ctx, true)
	return nil
}

// inodeScanCost is the virtual-time cost of examining one inode slot
// during the recovery scan.
const inodeScanCost = 180

// rebuildFromScan walks every per-CPU inode table, reconstructing the
// DRAM inode cache, the directory indexes, and (when rebuildFree is true)
// the allocator free lists and inode free lists. The per-CPU scans run in
// parallel in virtual time: the charged cost is the maximum over CPUs.
func (fs *FS) rebuildFromScan(ctx *sim.Ctx, rebuildFree bool) {
	if rebuildFree {
		fs.alloc.initEmpty()
	}
	fs.initInodeFree()

	start := ctx.Now()
	var maxCPUCost int64
	for c := 0; c < fs.g.cpus; c++ {
		var cpuCost int64
		base := fs.g.inodeTableBase(c)
		g := fs.alloc.groups[c]
		for s := int64(0); s < fs.g.inodesPerCPU; s++ {
			cpuCost += inodeScanCost
			hdr := make([]byte, inoOffExtents)
			if err := fs.dev.ReadAtChecked(hdr, base+s*InodeSize); err != nil {
				// The slot may hold a live inode we can no longer prove
				// anything about: degrade rather than guess.
				fs.degrade("inode table cpu %d slot %d unreadable: %v", c, s, err)
				continue
			}
			di := decodeInodeHeader(hdr)
			if di.magic != inodeMagic || di.typ == typeFree {
				continue
			}
			// Live inode: remove the slot from the free list.
			for i, fslot := range g.inodeFree {
				if fslot == s {
					g.inodeFree = append(g.inodeFree[:i], g.inodeFree[i+1:]...)
					break
				}
			}
			inoNum := fs.g.inoFor(c, s)
			ino := &inode{
				fs:    fs,
				ino:   inoNum,
				typ:   di.typ,
				flags: di.flags,
				size:  di.size,
				nlink: di.nlink,
			}
			if di.typ == typeDir {
				ino.dir = newDirIndex()
			}
			cpuCost += fs.loadExtents(ino, di)
			if rebuildFree {
				for _, e := range ino.extents {
					fs.alloc.markUsed(e.blk, e.length)
				}
				for _, blk := range ino.indirect {
					fs.alloc.markUsed(blk, 1)
				}
			}
			fs.putInode(ino)
		}
		if cpuCost > maxCPUCost {
			maxCPUCost = cpuCost
		}
	}
	// Parallel scan: total time = slowest CPU.
	ctx.AdvanceTo(start + maxCPUCost)

	// Second pass: rebuild directory indexes from dirent blocks.
	for _, ino := range fs.snapshotInodes() {
		if ino.typ != typeDir {
			continue
		}
		fs.loadDirIndex(ctx, ino)
	}
	if fs.getInode(1) == nil {
		// A formatted FS always has a root; restore a fresh one if the
		// image predates any successful create (defensive).
		root := &inode{fs: fs, ino: 1, typ: typeDir, nlink: 2, dir: newDirIndex()}
		fs.putInode(root)
		fs.removeFreeIno(0, 0)
	}
}

// loadExtents reads an inode's extent records (inline + indirect chain)
// into DRAM; returns the virtual-time cost of the reads. A poisoned record
// or a corrupt chain pointer stops the walk and degrades the mount: the
// records already loaded stay usable, the rest of the file reads as EIO-free
// holes but the file system goes read-only.
func (fs *FS) loadExtents(ino *inode, di dinode) int64 {
	var cost int64
	n := int(di.extCount)
	ino.extents = make([]wextent, 0, n)
	ino.slots = make([]int, 0, n)
	if di.indirect != 0 {
		ino.indirect = []int64{di.indirect}
	}
	buf := make([]byte, extentSize)
	for i := 0; i < n; i++ {
		var addr int64
		if i < InlineExtents {
			addr = fs.g.inodeAddr(ino.ino) + inoOffExtents + int64(i)*extentSize
		} else {
			idx := i - InlineExtents
			chain := idx / extPerIndirect
			for len(ino.indirect) <= chain {
				// Follow the chain pointer at the start of the last block.
				last := ino.indirect[len(ino.indirect)-1]
				if err := fs.dev.CheckRange(last*BlockSize, 8); err != nil {
					fs.degrade("ino %d: corrupt indirect chain: %v", ino.ino, err)
					sortExtents(ino)
					return cost
				}
				var pb [8]byte
				if err := fs.dev.ReadAtChecked(pb[:], last*BlockSize); err != nil {
					fs.degrade("ino %d: indirect block unreadable: %v", ino.ino, err)
					sortExtents(ino)
					return cost
				}
				next := int64(binary.LittleEndian.Uint64(pb[:]))
				if next == 0 {
					sortExtents(ino)
					return cost
				}
				ino.indirect = append(ino.indirect, next)
				cost += int64(fs.model.ReadLat64)
			}
			addr = ino.indirect[chain]*BlockSize + 8 + int64(idx%extPerIndirect)*extentSize
		}
		if err := fs.dev.CheckRange(addr, extentSize); err != nil {
			fs.degrade("ino %d: extent record %d out of range: %v", ino.ino, i, err)
			break
		}
		if err := fs.dev.ReadAtChecked(buf, addr); err != nil {
			fs.degrade("ino %d: extent record %d unreadable: %v", ino.ino, i, err)
			break
		}
		cost += int64(fs.model.ReadLat64) / 4
		e := decodeExtent(buf)
		// Validate the decoded record before trusting it: a torn or stale
		// record can point anywhere.
		if e.length <= 0 || e.blk < 0 || fs.dataCheckRange(e.blk*BlockSize, e.length*BlockSize) != nil {
			fs.degrade("ino %d: extent record %d corrupt (blk=%d len=%d)", ino.ino, i, e.blk, e.length)
			break
		}
		ino.extents = append(ino.extents, wextent{fileBlk: e.fileBlk, blk: e.blk, length: e.length})
		ino.slots = append(ino.slots, i)
	}
	sortExtents(ino)
	return cost
}

// loadDirIndex rebuilds a directory's DRAM red-black tree from its dirent
// blocks.
func (fs *FS) loadDirIndex(ctx *sim.Ctx, dir *inode) {
	buf := make([]byte, BlockSize)
	for _, e := range dir.extents {
		for b := e.blk; b < e.blk+e.length; b++ {
			if err := fs.dev.ReadAtChecked(buf, b*BlockSize); err != nil {
				// The entries in this block are unknowable: the namespace may
				// be missing files, so the mount is read-only from here on.
				fs.degrade("dir %d: dirent block %d unreadable: %v", dir.ino, b, err)
				ctx.Advance(int64(fs.model.ReadLat64))
				continue
			}
			ctx.Advance(int64(fs.model.ReadLat64))
			for off := int64(0); off < BlockSize; off += DirentSize {
				addr := b*BlockSize + off
				ino, name, valid := decodeDirent(buf[off : off+DirentSize])
				if !valid || ino == 0 {
					dir.dir.freeSlots = append(dir.dir.freeSlots, addr)
					continue
				}
				if fs.getInode(ino) == nil {
					// Dangling entry (target rolled back): treat as free.
					dir.dir.freeSlots = append(dir.dir.freeSlots, addr)
					continue
				}
				dir.dir.tree.Set(name, dentry{ino: ino, addr: addr})
			}
		}
	}
}

// --- free-state serialisation ----------------------------------------------

const freeStateMagic = 0x46524545 // "FREE"

// saveFreeState serialises the per-CPU allocator pools into the unmount
// area. If the state doesn't fit, the area is invalidated so the next
// mount falls back to a scan.
func (fs *FS) saveFreeState(ctx *sim.Ctx) {
	var buf []byte
	u64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf = append(buf, b[:]...)
	}
	u64(freeStateMagic)
	u64(uint64(fs.g.cpus))
	// Hold every group lock at once (acquired in index order; group locks
	// are never nested elsewhere, so this cannot deadlock): a serialised
	// state that mixes a group's pre-move view with its neighbour's
	// post-move view would double-count or leak the moved blocks on the
	// next clean mount.
	for _, g := range fs.alloc.groups {
		g.mu.Lock()
	}
	for _, g := range fs.alloc.groups {
		u64(uint64(len(g.aligned)))
		for _, b := range g.aligned {
			u64(uint64(b))
		}
		type hole struct{ s, l int64 }
		var holes []hole
		g.holes.Ascend(func(s, l int64) bool {
			holes = append(holes, hole{s, l})
			return true
		})
		u64(uint64(len(holes)))
		for _, h := range holes {
			u64(uint64(h.s))
			u64(uint64(h.l))
		}
	}
	for i := len(fs.alloc.groups) - 1; i >= 0; i-- {
		fs.alloc.groups[i].mu.Unlock()
	}
	area := fs.g.unmountStart * BlockSize
	limit := fs.g.unmountBlocks * BlockSize
	if int64(len(buf)) > limit {
		// Doesn't fit: invalidate so mount rebuilds by scanning.
		fs.dev.Write(ctx, make([]byte, 8), area)
		fs.dev.Flush(ctx, area, 8)
		fs.dev.Fence(ctx)
		return
	}
	fs.dev.Write(ctx, buf, area)
	fs.dev.Flush(ctx, area, int64(len(buf)))
	fs.dev.Fence(ctx)
}

// loadFreeState deserialises the allocator pools; returns false if the
// area is invalid.
func (fs *FS) loadFreeState(ctx *sim.Ctx) bool {
	area := fs.g.unmountStart * BlockSize
	limit := fs.g.unmountBlocks * BlockSize
	raw := make([]byte, limit)
	if err := fs.dev.ReadAtChecked(raw, area); err != nil {
		// Poisoned unmount area: fall back to the scan (which also leaves
		// the stale freelist behind — it is rewritten on the next unmount).
		return false
	}
	pos := 0
	u64 := func() (uint64, bool) {
		if pos+8 > len(raw) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(raw[pos:])
		pos += 8
		return v, true
	}
	magic, ok := u64()
	if !ok || magic != freeStateMagic {
		return false
	}
	cpus, ok := u64()
	if !ok || int(cpus) != fs.g.cpus {
		return false
	}
	var totalRead int64 = 16
	for _, g := range fs.alloc.groups {
		na, ok := u64()
		if !ok {
			return false
		}
		g.aligned = g.aligned[:0]
		for i := uint64(0); i < na; i++ {
			b, ok := u64()
			if !ok {
				return false
			}
			g.aligned = append(g.aligned, int64(b))
		}
		nh, ok := u64()
		if !ok {
			return false
		}
		for i := uint64(0); i < nh; i++ {
			s, ok1 := u64()
			l, ok2 := u64()
			if !ok1 || !ok2 {
				return false
			}
			g.insertHoleLocked(int64(s), int64(l))
		}
		totalRead += int64(8 + na*8 + 8 + nh*16)
	}
	// Charge the freelist read (this is what makes clean mounts fast).
	fs.dev.Read(ctx, make([]byte, min64(totalRead, 4096)), area)
	ctx.Advance(totalRead / 64 * int64(fs.model.ReadLat64) / 8)
	return true
}

// FilesCount reports the number of live inodes (tests / recovery
// experiment).
func (fs *FS) FilesCount() int {
	return fs.inodeCount()
}
