package winefs

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/vfs"
)

// Tiered storage: WineFS can mount with a second, slow (SSD-like) device
// behind the PM partition. The global block space is extended past the PM
// partition: blocks [0, totalBlocks) are PM, blocks
// [slowBase, slowBase+slowBlocks) live on the slow device (slowBase is
// totalBlocks rounded up to a hugepage boundary so the two regions can
// never share a 2MiB chunk). Extent records address both regions with the
// same 3×uint32 encoding, so a file's map can mix tiers freely.
//
// Placement policy: all metadata (journals, inode tables, dirents,
// indirect blocks) is PM-only — the slow device is not byte-addressable
// and cannot hold in-place-updated 64-byte records. New data allocations
// prefer PM and spill to the slow tier when PM is past its high-water
// mark or out of space (allocData); per-extent heat counters track
// re-access, and TierPass migrates cold extents down / hot extents up
// through the same journaled CoW replaceRange machinery the defragmenter
// uses. An mmap fault on a slow extent promotes it synchronously — DAX
// mappings can only ever point at PM.
//
// Crash consistency: the slow pool is DRAM-only and rebuilt from the
// inode extent scan at every mount, so a crash mid-migration needs no
// slow-side recovery — the journaled extent-map commit is the only
// decision point, and slow blocks orphaned by a rolled-back demotion
// return to the pool automatically at the next mount.

// tierSwapFactor is the pairwise hysteresis for swap-mode migration: a
// slow extent is promoted only if its heat is at least this many times
// the heat of every PM extent demoted to make room for it.
const tierSwapFactor = 4

// tierPromoteDensityShift sets the size-proportional promotion bar: an
// extent qualifies only with heat >= length >> shift (one touch per 16
// blocks since the last aging). A swap copies the whole extent both
// ways, so the reheat has to scale with the copy or the swap can never
// pay for itself — a fixed bar lets background noise on big extents
// masquerade as heat.
const tierPromoteDensityShift = 4

// tierChunkBlocks bounds one migration copy (and thus one inode-lock
// hold and journal transaction): 128 blocks = 512KiB.
const tierChunkBlocks = 128

// TierOptions attaches a slow tier to a Mkfs/Mount.
type TierOptions struct {
	// Slow is the second-tier device. Required.
	Slow *tier.SlowDevice
	// HighWater is the PM used fraction above which new data spills to
	// the slow tier and TierPass starts demoting (default 0.90).
	HighWater float64
	// LowWater is the PM used fraction a demotion pass drives down to
	// (default 0.80).
	LowWater float64
	// PromoteMin is the extent heat at which TierPass migrates a slow
	// extent back to PM (default 2).
	PromoteMin int64
}

// tierState is the mounted form of TierOptions.
type tierState struct {
	dev        *tier.SlowDevice
	base       int64 // first slow block (global block space)
	blocks     int64
	baseByte   int64
	pool       *tier.Pool
	highWater  float64
	lowWater   float64
	promoteMin int64
}

// initTier wires a slow tier into the FS (Mkfs and Mount share it).
func (fs *FS) initTier(opts *TierOptions) error {
	if opts == nil || opts.Slow == nil {
		return nil
	}
	base := (fs.g.totalBlocks + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
	blocks := opts.Slow.Size() / BlockSize
	if blocks <= 0 {
		return fmt.Errorf("winefs: slow tier too small (%d bytes)", opts.Slow.Size())
	}
	// Extent records hold block numbers as uint32.
	if base+blocks > 1<<32 {
		return fmt.Errorf("winefs: slow tier too large (blocks %d..%d exceed 32-bit extent records)", base, base+blocks)
	}
	t := &tierState{
		dev:        opts.Slow,
		base:       base,
		blocks:     blocks,
		baseByte:   base * BlockSize,
		pool:       tier.NewPool(base, blocks),
		highWater:  opts.HighWater,
		lowWater:   opts.LowWater,
		promoteMin: opts.PromoteMin,
	}
	if t.highWater <= 0 || t.highWater > 1 {
		t.highWater = 0.90
	}
	if t.lowWater <= 0 || t.lowWater >= t.highWater {
		t.lowWater = t.highWater - 0.10
		if t.lowWater <= 0 {
			t.lowWater = t.highWater / 2
		}
	}
	if t.promoteMin <= 0 {
		t.promoteMin = 2
	}
	fs.tier = t
	return nil
}

// SetTierWaterMarks adjusts the spill/demotion thresholds of a live
// tiered mount (no-op when untiered). Out-of-range values fall back to
// the same defaults Mount applies. Callers serialise with their own
// TierPass invocations — the marks steer the next pass and the next
// allocation, they are not a synchronisation point.
func (fs *FS) SetTierWaterMarks(high, low float64) {
	t := fs.tier
	if t == nil {
		return
	}
	if high <= 0 || high > 1 {
		high = 0.90
	}
	if low <= 0 || low >= high {
		low = high - 0.10
		if low <= 0 {
			low = high / 2
		}
	}
	t.highWater, t.lowWater = high, low
}

// blkAt returns the physical block backing fileBlk, or -1 when unbacked.
// Caller holds ino.mu.
func blkAt(ino *inode, fileBlk int64) int64 {
	phys, _, ok := ino.findRun(fileBlk)
	if !ok {
		return -1
	}
	return phys
}

// isSlow reports whether a global block number lives on the slow tier.
func (fs *FS) isSlow(blk int64) bool {
	t := fs.tier
	return t != nil && blk >= t.base
}

// --- data-path device routing ----------------------------------------------
//
// Every data access goes through these helpers; metadata paths keep using
// fs.dev directly (metadata is PM-only by construction). An extent never
// straddles the PM/slow boundary — PM extents end at totalBlocks, slow
// extents start at the hugepage-rounded base — so routing by the first
// byte is exact.

func (fs *FS) dataWrite(ctx *sim.Ctx, p []byte, off int64) {
	if t := fs.tier; t != nil && off >= t.baseByte {
		t.dev.Write(ctx, p, off-t.baseByte)
		return
	}
	fs.dev.Write(ctx, p, off)
}

func (fs *FS) dataFlush(ctx *sim.Ctx, off, n int64) {
	if t := fs.tier; t != nil && off >= t.baseByte {
		return // slow-tier writes are durable on completion
	}
	fs.dev.Flush(ctx, off, n)
}

func (fs *FS) dataZero(ctx *sim.Ctx, off, n int64) {
	if t := fs.tier; t != nil && off >= t.baseByte {
		t.dev.Zero(ctx, off-t.baseByte, n)
		return
	}
	fs.dev.Zero(ctx, off, n)
}

// dataReadChecked reads data with media-fault checking on PM. The slow
// tier models no media faults (an SSD's internal ECC re-maps them), so
// slow reads only pay the device cost.
func (fs *FS) dataReadChecked(ctx *sim.Ctx, p []byte, off int64) error {
	if t := fs.tier; t != nil && off >= t.baseByte {
		t.dev.Read(ctx, p, off-t.baseByte)
		return nil
	}
	return fs.dev.ReadChecked(ctx, p, off)
}

// dataCheckRange validates that a byte range decoded from an extent
// record lies inside one of the two tiers.
func (fs *FS) dataCheckRange(off, n int64) error {
	if t := fs.tier; t != nil && off >= t.baseByte {
		if off+n > t.baseByte+t.blocks*BlockSize {
			return fmt.Errorf("winefs: range [%d,+%d) beyond slow tier end %d",
				off, n, t.baseByte+t.blocks*BlockSize)
		}
		return nil
	}
	return fs.dev.CheckRange(off, n)
}

// --- allocation with spill ---------------------------------------------------

// pmUsedBlocks returns (used, total) for the PM data pools.
func (fs *FS) pmUsedBlocks() (used, total int64) {
	free, _ := fs.alloc.stats()
	total = fs.g.poolBlocks * int64(fs.g.cpus)
	return total - free, total
}

// pmAboveHighWater reports whether PM occupancy (plus a pending
// allocation of `extra` blocks) exceeds the spill threshold.
func (fs *FS) pmAboveHighWater(extra int64) bool {
	t := fs.tier
	if t == nil {
		return false
	}
	used, total := fs.pmUsedBlocks()
	return float64(used+extra) > t.highWater*float64(total)
}

// allocData serves a file-data allocation with tier placement: PM first,
// spilling to the slow tier when PM is past the high-water mark or
// genuinely out of space. ErrNoSpace surfaces only when BOTH tiers are
// exhausted — PM-full with slow headroom is a spill, never an ENOSPC
// (the alloc_spill_* counters make the fallback visible in /metrics).
func (fs *FS) allocData(ctx *sim.Ctx, cpu int, blocks int64, wantAligned bool) ([]alloc.Extent, error) {
	t := fs.tier
	if t == nil {
		return fs.alloc.alloc(ctx, cpu, blocks, wantAligned)
	}
	if !fs.pmAboveHighWater(blocks) {
		exts, err := fs.alloc.alloc(ctx, cpu, blocks, wantAligned)
		if err == nil {
			return exts, nil
		}
		if !errors.Is(err, vfs.ErrNoSpace) {
			return nil, err
		}
	}
	if exts := t.pool.Alloc(blocks); exts != nil {
		ctx.Advance(allocCost)
		ctx.Counters.AllocSpillExtents += int64(len(exts))
		ctx.Counters.AllocSpillBlocks += blocks
		return exts, nil
	}
	// Slow tier full: PM may still have room (we skipped it above the
	// high-water mark — better some PM pressure than a spurious ENOSPC).
	return fs.alloc.alloc(ctx, cpu, blocks, wantAligned)
}

// allocDataSmall is allocData for the copy-on-write path (hole-sized
// pieces, bool result like allocSmall).
func (fs *FS) allocDataSmall(ctx *sim.Ctx, cpu int, need int64) ([]alloc.Extent, bool) {
	t := fs.tier
	if t == nil {
		return fs.alloc.allocSmall(ctx, cpu, need)
	}
	if !fs.pmAboveHighWater(need) {
		if exts, ok := fs.alloc.allocSmall(ctx, cpu, need); ok {
			return exts, true
		}
	}
	if exts := t.pool.Alloc(need); exts != nil {
		ctx.Advance(allocCost)
		ctx.Counters.AllocSpillExtents += int64(len(exts))
		ctx.Counters.AllocSpillBlocks += need
		return exts, true
	}
	return fs.alloc.allocSmall(ctx, cpu, need)
}

// --- heat tracking -----------------------------------------------------------

// touchExtent bumps the heat of the extent covering fileBlk. Caller holds
// ino.mu at least shared: the extent slice cannot be reshaped underneath,
// but concurrent readers race on the counter — hence the atomic. No-op on
// untiered mounts.
func (fs *FS) touchExtent(ino *inode, fileBlk int64) {
	if fs.tier == nil {
		return
	}
	exts := ino.extents
	i := sort.Search(len(exts), func(i int) bool {
		return exts[i].fileBlk+exts[i].length > fileBlk
	})
	if i == len(exts) || exts[i].fileBlk > fileBlk {
		return
	}
	atomic.AddInt64(&exts[i].heat, 1)
}

// --- migration ---------------------------------------------------------------

// TierPassOptions tunes one migration pass.
type TierPassOptions struct {
	// Pacer throttles migration copies to a duty-cycle budget (nil =
	// unthrottled).
	Pacer *sim.Pacer
	// MaxMigrateBlocks caps blocks moved per pass (0 = 16384).
	MaxMigrateBlocks int64
}

// TierPassStats summarises one migration pass.
type TierPassStats struct {
	Promotions     int64 // extent migrations slow -> PM
	PromotedBlocks int64
	Demotions      int64 // extent migrations PM -> slow
	DemotedBlocks  int64
	PMFree         int64 // PM free blocks after the pass
	SlowFree       int64 // slow free blocks after the pass
}

// tierCand is one migration candidate extent, snapshotted outside locks.
type tierCand struct {
	ino     *inode
	fileBlk int64
	length  int64
	heat    int64
}

// TierPass runs one bounded migration pass: hot slow extents (heat >=
// PromoteMin) move up while PM has headroom; if PM is above the
// high-water mark, the coldest PM extents move down until occupancy
// reaches the low-water mark. Extent heat is halved afterwards so the
// policy tracks the current working set rather than all of history.
// Passes serialise on fs.tierMu; each migration is individually
// journaled, so a crash mid-pass loses no data.
func (fs *FS) TierPass(ctx *sim.Ctx, opt TierPassOptions) (TierPassStats, error) {
	var st TierPassStats
	t := fs.tier
	if t == nil {
		return st, nil
	}
	if err := fs.writable(); err != nil {
		return st, err
	}
	fs.tierMu.Lock()
	defer fs.tierMu.Unlock()
	if fs.unmounted.Load() {
		return st, nil
	}
	sp := ctx.StartSpan("tier.pass")
	defer ctx.EndSpan(sp)

	budget := opt.MaxMigrateBlocks
	if budget <= 0 {
		budget = 16384
	}

	// Candidate snapshot: every data extent of every regular file, split
	// by tier. Heat reads are atomic (concurrent readers bump them).
	var pmCands, slowCands []tierCand
	for _, ino := range fs.snapshotInodes() {
		ino.mu.RLock()
		if ino.typ == typeFile {
			for i := range ino.extents {
				e := &ino.extents[i]
				c := tierCand{ino: ino, fileBlk: e.fileBlk, length: e.length, heat: atomic.LoadInt64(&e.heat)}
				if fs.isSlow(e.blk) {
					slowCands = append(slowCands, c)
				} else {
					pmCands = append(pmCands, c)
				}
			}
		}
		ino.mu.RUnlock()
	}

	// Sort both candidate lists once: promotion candidates hottest-first,
	// demotion victims coldest-first (ino/offset tiebreaks keep passes
	// deterministic for a given heat snapshot).
	sort.Slice(slowCands, func(i, j int) bool {
		a, b := slowCands[i], slowCands[j]
		if a.heat != b.heat {
			return a.heat > b.heat
		}
		if a.ino.ino != b.ino.ino {
			return a.ino.ino < b.ino.ino
		}
		return a.fileBlk < b.fileBlk
	})
	sort.Slice(pmCands, func(i, j int) bool {
		a, b := pmCands[i], pmCands[j]
		if a.heat != b.heat {
			return a.heat < b.heat
		}
		if a.ino.ino != b.ino.ino {
			return a.ino.ino < b.ino.ino
		}
		return a.fileBlk < b.fileBlk
	})

	used, total := fs.pmUsedBlocks()
	hwBlocks := int64(t.highWater * float64(total))
	lowBlocks := int64(t.lowWater * float64(total))

	// hotWant is how much slow-tier data has earned promotion this pass,
	// decided by pairing each candidate against the PM victims it would
	// displace: the candidate must be at least tierSwapFactor times hotter
	// than every one of them. An absolute threshold cannot work here —
	// with a uniform trickle over the whole data set every extent on both
	// tiers carries a little heat, and any fixed bar either vetoes real
	// promotions or green-lights noise-driven swaps forever (each one a
	// 2MiB copy under the inode lock, paid by whoever is touching the
	// file). The pairwise test is self-tuning: it scales with the access
	// rate and terminates in noise, because similar heats never justify a
	// swap. Existing headroom below the low mark counts as free victims.
	//
	// hotWant drives the swap mode below: a PM tier parked at the
	// high-water mark (the steady state after allocation spill) would
	// otherwise never demote — not above the mark — and never promote —
	// no headroom — leaving hot data stuck on the slow tier forever.
	promo := slowCands[:0:0]
	for _, c := range slowCands {
		if c.heat >= t.promoteMin && c.heat >= c.length>>tierPromoteDensityShift {
			promo = append(promo, c)
		}
	}
	var hotWant int64
	victimHeatCap := int64(-1) // hottest PM extent a swap may displace
	{
		pj := 0
		var avail int64
		if used < lowBlocks {
			avail = lowBlocks - used
		}
		for _, c := range promo {
			if hotWant >= budget {
				break
			}
			justified := true
			for avail < c.length && pj < len(pmCands) {
				v := pmCands[pj]
				if v.heat*tierSwapFactor > c.heat {
					justified = false
					break
				}
				avail += v.length
				victimHeatCap = v.heat
				pj++
			}
			if !justified || avail < c.length {
				break
			}
			avail -= c.length
			hotWant += c.length
		}
	}
	hotWant = min64(hotWant, budget)

	// Demotions first: above the high-water mark, shed the coldest
	// extents until occupancy reaches the low-water mark. Below it, if
	// justified promotions would not fit, open exactly enough room for
	// them (swap mode) — demoting only victims the pairing above already
	// judged clearly colder than what replaces them.
	var target int64
	if used > hwBlocks {
		target = used - lowBlocks
	}
	if hotWant > 0 {
		// Open room BELOW the low mark for the queued promotions: they
		// refill exactly to it. Draining only to the mark itself would
		// leave them no room at all.
		if swapTarget := used + hotWant - lowBlocks; swapTarget > target {
			target = swapTarget
		}
	}
	swapOnly := used <= hwBlocks
	if target > 0 {
		for _, c := range pmCands {
			if target <= 0 || budget <= 0 {
				break
			}
			if swapOnly && c.heat > victimHeatCap {
				break
			}
			fileLo, remaining := c.fileBlk, c.length
			counted := false
			for remaining > 0 && target > 0 && budget > 0 {
				if fs.unmounted.Load() || fs.writable() != nil {
					break
				}
				moved := fs.migrateRun(ctx, c.ino, fileLo, min64(remaining, min64(target, budget)), true, opt.Pacer)
				if moved == 0 {
					break
				}
				if !counted {
					st.Demotions++
					ctx.Counters.TierDemotions++
					counted = true
				}
				st.DemotedBlocks += moved
				target -= moved
				budget -= moved
				ctx.Counters.TierDemotedBlocks += moved
				fileLo += moved
				remaining -= moved
			}
		}
	}

	// Promotions: refaulted/re-read data earns its way back to PM while
	// there is headroom below the high-water mark (including the room the
	// swap demotions just opened).
	for _, c := range promo {
		if budget <= 0 {
			break
		}
		// migrateRun moves at most one hugepage per call: walk the whole
		// candidate extent in chunks.
		fileLo, remaining := c.fileBlk, c.length
		counted := false
		for remaining > 0 && budget > 0 {
			// Promote only what fits below the LOW water mark right now —
			// not the high one. Filling to the high mark would leave the
			// very next organic allocation to tip occupancy over it, and
			// the following pass would demote the whole high-low band
			// right back: a 10%-of-PM oscillation on every pass. Promoted
			// data stops at the low mark and the band stays a dead zone
			// that organic growth fills gradually. A partially promoted
			// extent is still a win (the hot pages move, the cold tail
			// follows on a later pass).
			usedNow, totalNow := fs.pmUsedBlocks()
			room := int64(t.lowWater*float64(totalNow)) - usedNow
			want := min64(min64(remaining, budget), room)
			if want <= 0 {
				break
			}
			moved := fs.migrateRun(ctx, c.ino, fileLo, want, false, opt.Pacer)
			if moved == 0 {
				break
			}
			if !counted {
				st.Promotions++
				ctx.Counters.TierPromotions++
				counted = true
			}
			st.PromotedBlocks += moved
			budget -= moved
			ctx.Counters.TierPromotedBlocks += moved
			fileLo += moved
			remaining -= moved
		}
	}

	// Age heat so the policy forgets last epoch's working set.
	for _, ino := range fs.snapshotInodes() {
		ino.mu.Lock()
		for i := range ino.extents {
			ino.extents[i].heat /= 2
		}
		ino.mu.Unlock()
	}

	free, _ := fs.alloc.stats()
	st.PMFree = free
	st.SlowFree = t.pool.FreeBlocks()
	ctx.Counters.TierPasses++
	return st, nil
}

// migrateRun takes the per-inode locks and migrates up to `want` blocks
// of the run starting at fileLo to the other tier. Returns blocks moved
// (0 when the layout changed underneath, the run is already on the
// target tier, or destination space ran out).
func (fs *FS) migrateRun(ctx *sim.Ctx, ino *inode, fileLo, want int64, toSlow bool, pacer *sim.Pacer) int64 {
	if fs.getInode(ino.ino) != ino { // unlinked and number reused
		return 0
	}
	h := fs.locks.Lock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.Lock()
	defer ino.mu.Unlock()
	if ino.typ != typeFile {
		return 0
	}
	moved, _ := fs.migrateRunLocked(ctx, ino, fileLo, want, toSlow, pacer)
	return moved
}

// migrateRunLocked is the core migration step: copy the run's data to
// freshly allocated space on the target tier, then swap the extent map in
// one journaled replaceRange (which shoots down live vmm mappings before
// the displaced blocks are freed). Caller holds the inode lock and
// ino.mu exclusively. One call moves at most tierChunkBlocks — larger
// runs migrate over several calls, so the lock is dropped and re-taken
// between chunks. That bound is the migration tail-latency knob: the
// slow device charges ~50us per 4KiB page either way, so a full-hugepage
// chunk would pin the inode lock (and the slow device ports) for ~26ms
// per promotion — and promotions, by definition, target the files
// readers are hammering right now.
func (fs *FS) migrateRunLocked(ctx *sim.Ctx, ino *inode, fileLo, want int64, toSlow bool, pacer *sim.Pacer) (int64, error) {
	t := fs.tier
	phys, run, found := ino.findRun(fileLo)
	if !found || fs.isSlow(phys) == toSlow {
		return 0, nil
	}
	n := min64(want, run)
	if n > tierChunkBlocks {
		n = tierChunkBlocks
	}
	if n <= 0 {
		return 0, nil
	}
	var newExts []alloc.Extent
	if toSlow {
		newExts = t.pool.Alloc(n)
		if newExts == nil {
			return 0, nil
		}
		ctx.Advance(allocCost)
	} else {
		var err error
		newExts, err = fs.alloc.alloc(ctx, fs.txCPU(ctx), n, false)
		if err != nil {
			return 0, nil
		}
	}
	burst := ctx.Now()
	rollback := func() {
		for _, e := range newExts {
			fs.alloc.free(ctx, e) // routed: returns slow blocks to the pool
		}
	}
	buf := make([]byte, n*BlockSize)
	if err := fs.readRangeLocked(ctx, ino, buf, fileLo*BlockSize); err != nil {
		rollback()
		return 0, err
	}
	var off int64
	for _, ne := range newExts {
		fs.dataWrite(ctx, buf[off:off+ne.Len*BlockSize], ne.StartByte())
		fs.dataFlush(ctx, ne.StartByte(), ne.Len*BlockSize)
		off += ne.Len * BlockSize
	}
	fs.dev.Fence(ctx)
	// The copy is durable on the target tier; only now does the journaled
	// extent-map swap decide which copy the file reads from. A crash
	// before the commit rolls back to the old mapping and the next mount
	// reclaims the copy's blocks via the extent-scan pool rebuild.
	tx := fs.begin(ctx)
	f := &File{fs: fs, ino: ino}
	if err := f.replaceRange(ctx, tx, fileLo, fileLo+n, newExts); err != nil {
		_ = fs.failTx(tx, "tier-migrate", err)
		rollback()
		return 0, err
	}
	tx.commit()
	pacer.Pace(ctx, ctx.Now()-burst)
	return n, nil
}

// promoteRunLocked pulls the slow run covering fileBlk up to PM — the
// mmap fault path (DAX mappings can only point at PM). Caller holds the
// inode lock and ino.mu exclusively. Returns whether the block is now
// PM-backed.
func (fs *FS) promoteRunLocked(ctx *sim.Ctx, ino *inode, fileBlk int64) bool {
	phys, _, found := ino.findRun(fileBlk)
	if !found || !fs.isSlow(phys) {
		return found
	}
	// Walk back to the start of the slow extent so the whole extent (up
	// to one hugepage) promotes at once; faulting page by page would
	// shred it.
	exts := ino.extents
	i := sort.Search(len(exts), func(i int) bool {
		return exts[i].fileBlk+exts[i].length > fileBlk
	})
	e := exts[i]
	lo := e.fileBlk
	if fileBlk-lo >= BlocksPerHuge {
		// Huge extent: promote the hugepage-sized piece containing fileBlk.
		lo = e.fileBlk + (fileBlk-e.fileBlk)/BlocksPerHuge*BlocksPerHuge
	}
	end := e.fileBlk + e.length
	if end > lo+BlocksPerHuge {
		end = lo + BlocksPerHuge
	}
	// migrateRunLocked moves at most tierChunkBlocks per call; walk the
	// piece so the faulting block is covered whatever its offset.
	for cur := lo; cur < end; {
		moved, err := fs.migrateRunLocked(ctx, ino, cur, end-cur, false, nil)
		if err != nil || moved == 0 {
			return false
		}
		cur += moved
	}
	ctx.Counters.TierFaultPromotions++
	phys, _, found = ino.findRun(fileBlk)
	return found && !fs.isSlow(phys)
}

// rebuildSlowPool resets the slow pool to all-free and replays every
// slow extent from the DRAM inode cache — the clean-mount counterpart of
// the crash path's routed markUsed (the PM freelist area only serialises
// the PM pools; the slow pool is always rebuilt from the extent scan).
func (fs *FS) rebuildSlowPool() {
	t := fs.tier
	if t == nil {
		return
	}
	t.pool.Reset()
	for _, ino := range fs.snapshotInodes() {
		ino.mu.RLock()
		for _, e := range ino.extents {
			if fs.isSlow(e.blk) {
				t.pool.MarkUsed(e.blk, e.length)
			}
		}
		ino.mu.RUnlock()
	}
}

// TierStats reports the two tiers' occupancy; ok is false on untiered
// mounts.
type TierStats struct {
	PMTotalBlocks   int64
	PMFreeBlocks    int64
	SlowTotalBlocks int64
	SlowFreeBlocks  int64
}

// TierStats returns current tier occupancy.
func (fs *FS) TierStats() (TierStats, bool) {
	t := fs.tier
	if t == nil {
		return TierStats{}, false
	}
	free, _ := fs.alloc.stats()
	return TierStats{
		PMTotalBlocks:   fs.g.poolBlocks * int64(fs.g.cpus),
		PMFreeBlocks:    free,
		SlowTotalBlocks: t.blocks,
		SlowFreeBlocks:  t.pool.FreeBlocks(),
	}, true
}

// Tiered reports whether a slow tier is attached.
func (fs *FS) Tiered() bool { return fs.tier != nil }

// SlowDevice exposes the slow tier device (benchmark cost gates).
func (fs *FS) SlowDevice() *tier.SlowDevice {
	if fs.tier == nil {
		return nil
	}
	return fs.tier.dev
}
