package winefs

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vmm"
)

func newMmapTestFS(t *testing.T) (*sim.Ctx, *FS) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	fs, err := Mkfs(ctx, pmem.New(256<<20), Options{CPUs: 4, Mode: vfs.Strict})
	if err != nil {
		t.Fatal(err)
	}
	return ctx, fs
}

func writeFileAt(t *testing.T, ctx *sim.Ctx, f vfs.File, pattern byte, off, n int64) {
	t.Helper()
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = pattern
	}
	if _, err := f.WriteAt(ctx, buf, off); err != nil {
		t.Fatal(err)
	}
}

// TestMmapTruncateFault shrinks a file under an active mapping: reads past
// the new EOF must fail with the typed fault error (SIGBUS), reads below
// it must return fresh translations — never the invalidated extent.
func TestMmapTruncateFault(t *testing.T) {
	ctx, fs := newMmapTestFS(t)
	f, err := fs.Create(ctx, "/a")
	if err != nil {
		t.Fatal(err)
	}
	writeFileAt(t, ctx, f, 0xab, 0, 4<<20)

	m, err := vmm.Map(ctx, f, 4<<20, vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)

	// Fault the whole file in, then shrink it to one block.
	buf := make([]byte, 64)
	if err := m.Read(ctx, buf, 3<<20); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(ctx, BlockSize); err != nil {
		t.Fatal(err)
	}

	// Access beyond the new EOF: typed fault, not stale data.
	if err := m.Read(ctx, buf, 3<<20); !errors.Is(err, vfs.ErrMapFault) {
		t.Fatalf("read past truncated EOF: err = %v, want ErrMapFault", err)
	}
	if err := m.Write(ctx, buf, 2<<20); !errors.Is(err, vfs.ErrMapFault) {
		t.Fatalf("write past truncated EOF: err = %v, want ErrMapFault", err)
	}
	// The surviving block refaults and still carries its data.
	if err := m.Read(ctx, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{0xab}, 64)) {
		t.Fatalf("surviving block read %x, want 0xab repeated", buf[:8])
	}
}

// TestMmapTruncateReclaim checks the invalidate-before-free ordering:
// after a shrink, blocks the mapping used to translate to are free for
// reallocation, and the old mapping cannot read the new owner's data.
func TestMmapTruncateReclaim(t *testing.T) {
	ctx, fs := newMmapTestFS(t)
	f, err := fs.Create(ctx, "/victim")
	if err != nil {
		t.Fatal(err)
	}
	writeFileAt(t, ctx, f, 0x11, 0, 2<<20)
	m, err := vmm.Map(ctx, f, 2<<20, vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)
	probe := make([]byte, 64)
	if err := m.Read(ctx, probe, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(ctx, 0); err != nil {
		t.Fatal(err)
	}

	// Reuse the space under a different file with different contents.
	g, err := fs.Create(ctx, "/thief")
	if err != nil {
		t.Fatal(err)
	}
	writeFileAt(t, ctx, g, 0x22, 0, 2<<20)

	if err := m.Read(ctx, probe, 1<<20); !errors.Is(err, vfs.ErrMapFault) {
		t.Fatalf("read of truncated-away page: err = %v, want ErrMapFault", err)
	}
}

// TestMmapUnlinkFault unlinks a mapped file: after the final close the
// inode is destroyed, its blocks are freed, and the mapping's faults must
// fail rather than resolve through freed extents.
func TestMmapUnlinkFault(t *testing.T) {
	ctx, fs := newMmapTestFS(t)
	f, err := fs.Create(ctx, "/gone")
	if err != nil {
		t.Fatal(err)
	}
	writeFileAt(t, ctx, f, 0x33, 0, 2<<20)
	m, err := vmm.Map(ctx, f, 2<<20, vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := m.Read(ctx, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink(ctx, "/gone"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Every translation died with the inode; a refault cannot succeed.
	if err := m.Read(ctx, buf, 0); err == nil {
		t.Fatal("read through mapping of destroyed inode succeeded")
	}
}

// TestMmapPunchHole punches a hole under an active mapping: the punched
// range must read back as zeroes through the mapping (fresh faults, not
// the invalidated translations) and the edges must keep their data.
func TestMmapPunchHole(t *testing.T) {
	ctx, fs := newMmapTestFS(t)
	f, err := fs.Create(ctx, "/holey")
	if err != nil {
		t.Fatal(err)
	}
	writeFileAt(t, ctx, f, 0x44, 0, 4<<20)
	m, err := vmm.Map(ctx, f, 4<<20, vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)
	buf := make([]byte, 64)
	if err := m.Read(ctx, buf, 1<<20); err != nil {
		t.Fatal(err)
	}

	hp, ok := f.(vfs.HolePuncher)
	if !ok {
		t.Fatal("winefs File does not implement vfs.HolePuncher")
	}
	// Punch [1MiB-1KiB, 3MiB+1KiB): unaligned edges exercise the partial
	// block zeroing, the middle drops whole blocks.
	off := int64(1<<20) - 1024
	n := int64(2<<20) + 2048
	if err := hp.PunchHole(ctx, off, n); err != nil {
		t.Fatal(err)
	}

	if err := m.Read(ctx, buf, 1<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 64)) {
		t.Fatalf("punched range reads %x through mapping, want zeroes", buf[:8])
	}
	if err := m.Read(ctx, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{0x44}, 64)) {
		t.Fatalf("data before hole reads %x, want 0x44 repeated", buf[:8])
	}
	if err := m.Read(ctx, buf, 3<<20+4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, bytes.Repeat([]byte{0x44}, 64)) {
		t.Fatalf("data after hole reads %x, want 0x44 repeated", buf[:8])
	}
}

// TestMmapRace8Threads is the `make mmap-race` workload: eight threads
// hammer one shared mapping with reads, writes and msyncs while truncate
// and re-extend churn the file underneath. Run under -race it checks the
// locking of the fault path, the dirty tracking and the invalidate paths;
// every access must either succeed or fail with the typed fault error.
func TestMmapRace8Threads(t *testing.T) {
	ctx, fs := newMmapTestFS(t)
	f, err := fs.Create(ctx, "/race")
	if err != nil {
		t.Fatal(err)
	}
	const size = 8 << 20
	writeFileAt(t, ctx, f, 0x55, 0, size)
	m, err := vmm.Map(ctx, f, size, vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)

	var wg sync.WaitGroup
	for th := 0; th < 8; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			tctx := sim.NewCtx(100+th, th%4)
			rng := sim.NewRand(uint64(th) * 7717)
			buf := make([]byte, 256)
			for i := 0; i < 400; i++ {
				off := rng.Int63n(size - int64(len(buf)))
				var err error
				switch {
				case th == 7 && i%50 == 25:
					// One thread churns the file size.
					if err := f.Truncate(tctx, size/2); err != nil {
						t.Error(err)
					}
					if err := f.Truncate(tctx, size); err != nil {
						t.Error(err)
					}
					continue
				case i%10 == 3:
					err = m.Write(tctx, buf, off)
				case i%25 == 7:
					err = m.Msync(tctx, 0, -1)
				default:
					err = m.Read(tctx, buf, off)
				}
				if err != nil && !errors.Is(err, vfs.ErrMapFault) {
					t.Errorf("thread %d op %d: %v", th, i, err)
				}
			}
		}(th)
	}
	wg.Wait()

	if _, total := m.FaultedChunks(); total == 0 {
		t.Fatal("race run faulted nothing")
	}
	if err := m.Msync(ctx, 0, -1); err != nil {
		t.Fatal(err)
	}
}
