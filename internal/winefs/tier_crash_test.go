package winefs

import (
	"bytes"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/tier"
)

// TestTierCrashMidMigration is the crashmonkey-style tier scenario: crash
// the PM image at every fence epoch of a demotion pass — including the
// window after the data has been copied to the slow tier but before the
// journaled extent-map commit — and verify each recovered state serves the
// exact file content with a clean audit and fsck. The slow device is NOT
// rolled back (its writes are durable on completion), which is precisely
// what makes the journal commit the single decision point: before it the
// file reads from the still-intact PM copy, after it from the slow copy.
func TestTierCrashMidMigration(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(64 << 20)
	slow := tier.NewSlow(tier.DefaultSlowConfig(32 << 20))
	defer slow.Release()
	topts := &TierOptions{Slow: slow}
	fs, err := Mkfs(ctx, dev, Options{CPUs: 1, InodesPerCPU: 512, Tier: topts})
	if err != nil {
		t.Fatal(err)
	}
	const fileBytes = 2 << 20
	data := patternBuf(fileBytes, 0x5a)
	f, err := fs.Create(ctx, "/victim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}

	base := dev.Snapshot()
	dev.StartTrace()
	fs.tier.highWater = 0.01
	fs.tier.lowWater = 0.005
	st, err := fs.TierPass(ctx, TierPassOptions{MaxMigrateBlocks: fileBytes / BlockSize})
	if err != nil {
		t.Fatal(err)
	}
	trace := dev.StopTrace()
	if st.DemotedBlocks == 0 {
		t.Fatal("setup: pass demoted nothing")
	}
	if len(trace) == 0 {
		t.Fatal("migration produced no PM stores")
	}

	maxEpoch := trace[len(trace)-1].Epoch
	slowBlocks := slow.Size() / BlockSize
	var sawPMBacked, sawSlowBacked bool
	for cut := 0; cut <= maxEpoch+1; cut++ {
		img := base.Clone()
		var applied []pmem.Store
		for _, s := range trace {
			if s.Epoch < cut {
				applied = append(applied, s)
			}
		}
		img.Apply(applied)
		dev.Restore(img)
		rctx := sim.NewCtx(10+cut, 0)
		rfs, err := Mount(rctx, dev, Options{CPUs: 1, InodesPerCPU: 512, Tier: topts})
		if err != nil {
			t.Fatalf("cut %d: mount: %v", cut, err)
		}
		if reason, degraded := rfs.Degraded(); degraded {
			t.Fatalf("cut %d: degraded: %s", cut, reason)
		}
		// Content oracle: whichever copy the recovered extent map picked,
		// the bytes must be exactly the pre-crash file.
		rf, err := rfs.Open(rctx, "/victim")
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got := make([]byte, fileBytes)
		if _, err := rf.ReadAt(rctx, got, 0); err != nil {
			t.Fatalf("cut %d: read: %v", cut, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("cut %d: silent corruption (content mismatch)", cut)
		}
		// Both-tier invariants hold in every recovered state.
		if err := rfs.Audit(rctx); err != nil {
			t.Fatalf("cut %d: audit: %v", cut, err)
		}
		if rep := CheckTiered(dev, slowBlocks); !rep.OK() {
			t.Fatalf("cut %d: fsck: %v", cut, rep.Errors)
		}
		ino := inoOf(t, rctx, rfs, "/victim")
		s, p := slowBlocksOf(rfs, ino)
		if s+p != fileBytes/BlockSize {
			t.Fatalf("cut %d: extent map covers %d blocks, want %d", cut, s+p, fileBytes/BlockSize)
		}
		if s == 0 {
			sawPMBacked = true
		}
		if s > 0 {
			sawSlowBacked = true
		}
	}
	// The sweep must actually cover both sides of a commit point: early
	// cuts recover to the all-PM layout, later cuts to a layout with
	// demoted extents (the pass stops at the low-water mark, so the final
	// state is mixed rather than all-slow).
	if !sawPMBacked || !sawSlowBacked {
		t.Fatalf("crash sweep did not straddle the commit point: pm=%v slow=%v", sawPMBacked, sawSlowBacked)
	}
}

// TestTierCrashRolledBackDemotionReclaimsSlowBlocks: a demotion that
// crashed before its commit leaves its slow-side copy orphaned; the
// mount-time pool rebuild must reclaim those blocks (the extent scan finds
// no owner) so they are allocatable again.
func TestTierCrashRolledBackDemotionReclaimsSlowBlocks(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(64 << 20)
	slow := tier.NewSlow(tier.DefaultSlowConfig(16 << 20))
	defer slow.Release()
	topts := &TierOptions{Slow: slow}
	fs, err := Mkfs(ctx, dev, Options{CPUs: 1, InodesPerCPU: 512, Tier: topts})
	if err != nil {
		t.Fatal(err)
	}
	data := patternBuf(1<<20, 0x77)
	f, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	base := dev.Snapshot()
	fs.tier.highWater = 0.01
	fs.tier.lowWater = 0.005
	if _, err := fs.TierPass(ctx, TierPassOptions{}); err != nil {
		t.Fatal(err)
	}

	// Crash to the pre-migration image: the slow device keeps the copy the
	// migration wrote, but no extent record references it.
	dev.Restore(base)
	rctx := sim.NewCtx(2, 0)
	rfs, err := Mount(rctx, dev, Options{CPUs: 1, InodesPerCPU: 512, Tier: topts})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := rfs.TierStats()
	if st.SlowFreeBlocks != st.SlowTotalBlocks {
		t.Fatalf("orphaned slow blocks not reclaimed: %d of %d free",
			st.SlowFreeBlocks, st.SlowTotalBlocks)
	}
	if err := rfs.Audit(rctx); err != nil {
		t.Fatal(err)
	}
}
