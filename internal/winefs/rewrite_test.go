package winefs_test

import (
	"bytes"
	"testing"

	"repro/internal/mmu"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

// TestRewriteInvalidatesLiveMappings covers the page-table shootdown: an
// application holding an mmap across a reactive rewrite must keep reading
// its data (re-faulted against the new layout), never the freed old
// blocks.
func TestRewriteInvalidatesLiveMappings(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(512 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Build a fragmented 4MiB file with recognisable content.
	f, _ := fs.Create(ctx, "/frag")
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i / 4096)
	}
	for off := int64(0); off < int64(len(payload)); off += 64 << 10 {
		if _, err := f.WriteAt(ctx, payload[off:off+64<<10], off); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := mmu.HugeEligible(f.Extents(), 0); ok {
		t.Skip("file happened to be aligned already")
	}

	// Map it and fault a few pages in (old translations).
	m, err := f.Mmap(ctx, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := m.Read(ctx, buf, 1<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload[1<<20:1<<20+4096]) {
		t.Fatal("pre-rewrite read wrong")
	}
	base0, _ := m.MappedPages()
	if base0 == 0 {
		t.Fatal("expected base-page mappings before rewrite")
	}

	// Rewrite in the background, then clobber the freed old blocks by
	// allocating and writing a filler file over them.
	bg := sim.NewCtx(2, 3)
	bg.AdvanceTo(ctx.Now())
	if n := fs.RunRewriter(bg); n != 1 {
		t.Fatalf("rewriter processed %d files", n)
	}
	filler, _ := fs.Create(ctx, "/filler")
	if _, err := filler.WriteAt(ctx, bytes.Repeat([]byte{0xFF}, 8<<20), 0); err != nil {
		t.Fatal(err)
	}

	// The same mapping must still read the original content, now through
	// hugepage translations on the new aligned layout.
	post := sim.NewCtx(3, 0)
	post.AdvanceTo(ctx.Now())
	for _, off := range []int64{0, 1 << 20, 3<<20 + 12345} {
		n := int64(len(buf))
		if err := m.Read(post, buf[:n], off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf[:n], payload[off:off+n]) {
			t.Fatalf("post-rewrite read at %d corrupted (stale translation?)", off)
		}
	}
	if post.Counters.HugeFaults == 0 {
		t.Fatal("post-rewrite faults should be hugepage faults")
	}
}

// TestRewriteSkipsDeletedFiles: queue a file, delete it, run the rewriter.
func TestRewriteSkipsDeletedFiles(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(256 << 20)
	fs, _ := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2})
	f, _ := fs.Create(ctx, "/doomed")
	for off := int64(0); off < 4<<20; off += 32 << 10 {
		f.WriteAt(ctx, make([]byte, 32<<10), off)
	}
	if _, err := f.Mmap(ctx, 4<<20); err != nil {
		t.Fatal(err)
	}
	queued := fs.RewriteQueueLen()
	if err := fs.Unlink(ctx, "/doomed"); err != nil {
		t.Fatal(err)
	}
	bg := sim.NewCtx(2, 1)
	if n := fs.RunRewriter(bg); n != 0 && queued > 0 {
		t.Fatalf("rewriter rewrote a deleted file (%d)", n)
	}
	if rep := winefs.Check(dev); !rep.OK() {
		t.Fatalf("fsck: %v", rep.Errors)
	}
}

// TestRewriteQueueDedup: mapping the same fragmented file repeatedly
// must enqueue it once — the guard stays set from enqueue until the
// rewrite completes.
func TestRewriteQueueDedup(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(256 << 20)
	fs, _ := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2})
	f, _ := fs.Create(ctx, "/dup")
	for off := int64(0); off < 4<<20; off += 32 << 10 {
		f.WriteAt(ctx, make([]byte, 32<<10), off)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Mmap(ctx, 4<<20); err != nil {
			t.Fatal(err)
		}
	}
	if n := fs.RewriteQueueLen(); n != 1 {
		t.Fatalf("queue holds %d entries after 3 mmaps of one file, want 1", n)
	}
	bg := sim.NewCtx(2, 1)
	if n := fs.RunRewriter(bg); n != 1 {
		t.Fatalf("rewriter processed %d files, want 1", n)
	}
}

// TestRewriteQueueInodeReuse: a file queued for rewriting is unlinked
// and its inode number recycled by a brand-new small file. The rewriter
// must recognise the queued object is dead — rewriting by number would
// churn (or corrupt) the unrelated new file.
func TestRewriteQueueInodeReuse(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(256 << 20)
	fs, _ := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2})
	f, _ := fs.Create(ctx, "/old")
	for off := int64(0); off < 4<<20; off += 32 << 10 {
		f.WriteAt(ctx, make([]byte, 32<<10), off)
	}
	if _, err := f.Mmap(ctx, 4<<20); err != nil {
		t.Fatal(err)
	}
	if fs.RewriteQueueLen() != 1 {
		t.Skip("file happened to be aligned; nothing queued")
	}
	if err := fs.Unlink(ctx, "/old"); err != nil {
		t.Fatal(err)
	}
	// The per-CPU inode free list is LIFO: the very next create on this
	// CPU reuses the freed number.
	nf, err := fs.Create(ctx, "/new")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 64<<10)
	if _, err := nf.WriteAt(ctx, payload, 0); err != nil {
		t.Fatal(err)
	}
	bg := sim.NewCtx(2, 1)
	if n := fs.RunRewriter(bg); n != 0 {
		t.Fatalf("rewriter rewrote %d files; the queued inode was recycled", n)
	}
	got := make([]byte, len(payload))
	if _, err := nf.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("recycled-inode file corrupted by stale rewrite entry")
	}
	if rep := winefs.Check(dev); !rep.OK() {
		t.Fatalf("fsck: %v", rep.Errors)
	}
}
