package winefs

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pmem"
)

// CheckReport is the result of an offline consistency check of a WineFS
// image.
type CheckReport struct {
	// Errors lists invariant violations. Empty means the image is
	// consistent.
	Errors []string
	// Files and Dirs count live inodes found.
	Files int
	Dirs  int
	// UsedBlocks is the number of data blocks referenced by live inodes.
	UsedBlocks int64
}

func (r *CheckReport) errf(format string, args ...interface{}) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
}

// OK reports whether the image passed all checks.
func (r *CheckReport) OK() bool { return len(r.Errors) == 0 }

// Check verifies the on-PM invariants of a WineFS image without mounting
// it (the journal must already be quiescent or recovered):
//
//   - the superblock is sane;
//   - every live inode's extents lie inside the data area and no block is
//     referenced twice;
//   - directory entries reference live inodes;
//   - every live non-root inode is referenced by at least one dirent, and
//     link counts are consistent for files;
//   - file sizes are consistent with the extent map (size covers at most
//     the mapped range plus sparse holes).
func Check(dev *pmem.Device) *CheckReport {
	return CheckTiered(dev, 0)
}

// CheckTiered is Check for a tiered image: extent records may additionally
// point into the slow region [slowBase, slowBase+slowBlocks), where
// slowBase is totalBlocks rounded up to a hugepage boundary — the same
// placement Mount computes. slowBlocks = 0 checks a pure-PM image.
func CheckTiered(dev *pmem.Device, slowBlocks int64) *CheckReport {
	r := &CheckReport{}
	sbBuf := make([]byte, sbSize)
	if err := dev.ReadAtChecked(sbBuf, 0); err != nil {
		r.errf("superblock unreadable: %v", err)
		return r
	}
	sb := decodeSuperblock(sbBuf)
	if sb.magic != Magic {
		r.errf("bad superblock magic %#x", sb.magic)
		return r
	}
	if sb.totalBlocks*BlockSize > dev.Size() || sb.cpus <= 0 {
		r.errf("superblock geometry invalid: blocks=%d cpus=%d", sb.totalBlocks, sb.cpus)
		return r
	}
	g := makeGeometry(sb.totalBlocks, int(sb.cpus), sb.inodesPerCPU)
	slowBase := (g.totalBlocks + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
	inSlow := func(blk, length int64) bool {
		return slowBlocks > 0 && blk >= slowBase && blk+length <= slowBase+slowBlocks
	}

	type inodeInfo struct {
		ino     uint64
		typ     uint8
		size    int64
		nlink   uint32
		extents []wextent
	}
	inodes := map[uint64]*inodeInfo{}
	blockOwner := map[int64]uint64{}

	// Pass 1: inode tables.
	for c := 0; c < int(sb.cpus); c++ {
		base := g.inodeTableBase(c)
		for s := int64(0); s < g.inodesPerCPU; s++ {
			hdr := make([]byte, inoOffExtents)
			if err := dev.ReadAtChecked(hdr, base+s*InodeSize); err != nil {
				r.errf("ino cpu=%d slot=%d: unreadable: %v", c, s, err)
				continue
			}
			di := decodeInodeHeader(hdr)
			if di.magic != inodeMagic || di.typ == typeFree {
				continue
			}
			if di.typ != typeFile && di.typ != typeDir {
				r.errf("ino cpu=%d slot=%d: invalid type %d", c, s, di.typ)
				continue
			}
			ino := g.inoFor(c, s)
			info := &inodeInfo{ino: ino, typ: di.typ, size: di.size, nlink: di.nlink}
			// Read extents (inline + indirect chain).
			indirect := []int64{}
			if di.indirect != 0 {
				indirect = append(indirect, di.indirect)
			}
			buf := make([]byte, extentSize)
			for i := 0; i < int(di.extCount); i++ {
				var addr int64
				if i < InlineExtents {
					addr = g.inodeAddr(ino) + inoOffExtents + int64(i)*extentSize
				} else {
					idx := i - InlineExtents
					chain := idx / extPerIndirect
					for len(indirect) <= chain {
						var pb [8]byte
						last := indirect[len(indirect)-1]
						if err := dev.CheckRange(last*BlockSize, 8); err != nil {
							r.errf("ino %d: indirect pointer %d out of range", ino, last)
							break
						}
						if err := dev.ReadAtChecked(pb[:], last*BlockSize); err != nil {
							r.errf("ino %d: indirect block %d unreadable: %v", ino, last, err)
							break
						}
						next := int64(binary.LittleEndian.Uint64(pb[:]))
						if next == 0 {
							r.errf("ino %d: broken indirect chain at record %d", ino, i)
							break
						}
						indirect = append(indirect, next)
					}
					if len(indirect) <= chain {
						break
					}
					addr = indirect[chain]*BlockSize + 8 + int64(idx%extPerIndirect)*extentSize
				}
				if err := dev.CheckRange(addr, extentSize); err != nil {
					r.errf("ino %d: extent record %d out of range", ino, i)
					break
				}
				if err := dev.ReadAtChecked(buf, addr); err != nil {
					r.errf("ino %d: extent record %d unreadable: %v", ino, i, err)
					break
				}
				e := decodeExtent(buf)
				if e.length <= 0 {
					r.errf("ino %d: extent %d has non-positive length %d", ino, i, e.length)
					continue
				}
				if (e.blk < g.dataStart || e.blk+e.length > g.totalBlocks) && !inSlow(e.blk, e.length) {
					r.errf("ino %d: extent %d [%d,%d) outside data area", ino, i, e.blk, e.blk+e.length)
					continue
				}
				for b := e.blk; b < e.blk+e.length; b++ {
					if owner, dup := blockOwner[b]; dup {
						r.errf("block %d referenced by both ino %d and ino %d", b, owner, ino)
					} else {
						blockOwner[b] = ino
						r.UsedBlocks++
					}
				}
				info.extents = append(info.extents, e)
			}
			// Indirect blocks are owned storage too.
			for _, ib := range indirect {
				if owner, dup := blockOwner[ib]; dup {
					r.errf("indirect block %d double-owned (also ino %d)", ib, owner)
				} else {
					blockOwner[ib] = ino
					r.UsedBlocks++
				}
			}
			inodes[ino] = info
			if di.typ == typeDir {
				r.Dirs++
			} else {
				r.Files++
			}
		}
	}
	if inodes[1] == nil || inodes[1].typ != typeDir {
		r.errf("root inode missing or not a directory")
		return r
	}

	// Pass 2: directory entries.
	refcount := map[uint64]int{}
	for _, info := range inodes {
		if info.typ != typeDir {
			continue
		}
		buf := make([]byte, BlockSize)
		for _, e := range info.extents {
			for b := e.blk; b < e.blk+e.length; b++ {
				if err := dev.ReadAtChecked(buf, b*BlockSize); err != nil {
					r.errf("dir %d: dirent block %d unreadable: %v", info.ino, b, err)
					continue
				}
				for off := int64(0); off < BlockSize; off += DirentSize {
					child, name, valid := decodeDirent(buf[off : off+DirentSize])
					if !valid || child == 0 {
						continue
					}
					ci := inodes[child]
					if ci == nil {
						r.errf("dir %d: entry %q references dead ino %d", info.ino, name, child)
						continue
					}
					refcount[child]++
				}
			}
		}
	}
	for ino, info := range inodes {
		if ino == 1 {
			continue
		}
		if refcount[ino] == 0 {
			r.errf("ino %d (%s, size=%d) is orphaned", ino, typeName(info.typ), info.size)
		}
		if info.typ == typeFile && refcount[ino] != int(info.nlink) {
			r.errf("ino %d: nlink=%d but %d references", ino, info.nlink, refcount[ino])
		}
	}
	return r
}

func typeName(t uint8) string {
	if t == typeDir {
		return "dir"
	}
	return "file"
}
