package winefs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/mmu"
	"repro/internal/pmem"
	"repro/internal/rbtree"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Options configure a WineFS instance.
type Options struct {
	// CPUs is the number of logical CPUs the partition is split across.
	// Default 8.
	CPUs int
	// Mode selects strict (default per the paper) or relaxed guarantees.
	Mode vfs.ConsistencyMode
	// InodesPerCPU sizes the per-CPU inode tables (0 = auto).
	InodesPerCPU int64
	// NUMAAware enables the home-node write-routing policy (§3.6). Only
	// meaningful on devices with more than one node.
	NUMAAware bool

	// Tier attaches a slow (SSD-like) capacity tier behind the PM
	// partition (tier.go). Nil mounts are pure-PM and behave exactly as
	// before. The same TierOptions must be passed to Mkfs and every
	// subsequent Mount of the image — the slow device holds data the
	// extent records point at.
	Tier *TierOptions

	// Ablations, for the design-choice benchmarks:

	// AblateAlignment disables the aligned-extent pool — every allocation
	// is served from holes and freed space is never promoted back to
	// aligned extents, i.e. WineFS with an alignment-blind allocator.
	AblateAlignment bool
	// AblateSingleJournal routes every transaction through CPU 0's
	// journal, i.e. WineFS with PMFS's single-journal concurrency.
	AblateSingleJournal bool
}

// dirLookupCost is the virtual-time cost of one DRAM red-black-tree
// directory lookup step (§3.5, "DRAM indexes").
const dirLookupCost = 150

// FS is a mounted WineFS instance.
type FS struct {
	dev   *pmem.Device
	as    *mmu.AddressSpace
	model *pmem.CostModel
	mode  vfs.ConsistencyMode
	g     geometry

	alloc    *allocator
	journals []*journal
	nextTxID uint64
	locks    *vfs.LockTable

	// shards hold the DRAM inode map, sharded by owning per-CPU inode
	// table (shard.go).
	shards []*inodeShard

	numaOn        bool
	homeMu        sync.Mutex
	homes         map[int]int // simulated thread → home NUMA node
	singleJournal bool

	// Reactive-rewrite queue (§3.6). The queue holds inode *objects*, not
	// bare numbers: an inode number freed while queued can be reused by a
	// brand-new file, and a number-keyed queue would then rewrite the
	// wrong file. rewriteQueued doubles as the in-flight guard — an entry
	// stays marked from enqueue until its rewrite finishes, so concurrent
	// mmaps can never double-enqueue.
	rewriteMu     sync.Mutex
	rewriteQ      []*inode
	rewriteQueued map[*inode]bool

	// Tiered storage (tier.go): nil on pure-PM mounts. tierMu serialises
	// migration passes the way defragMu serialises defrag passes.
	tier   *tierState
	tierMu sync.Mutex

	// Online defrag state (defrag.go): per-group scan cursors (DRAM-only —
	// crash recovery restarts the scan; each migration is already crash-
	// atomic through the journal) and the pass serialisation lock.
	defragMu     sync.Mutex
	defragCursor []int64

	// unmounted gates the background maintenance threads (rewriter,
	// defragmenter): after Unmount serialises the allocator state, a
	// still-queued rewrite or defrag pass must not mutate the image.
	unmounted atomic.Bool

	// Degradation ladder (media faults): a mount that hits unreadable or
	// corrupt metadata continues best-effort but falls back to read-only;
	// degradedFlag gates every mutating operation and degradedReasons
	// records why, for Degraded() and operators.
	degradedFlag    atomic.Bool
	degradedMu      sync.Mutex
	degradedReasons []string

	// commitHook, when set, fires for every resolved journal transaction
	// (repl.go); internal/cluster uses it as a replication commit barrier.
	commitHook atomic.Pointer[CommitHook]

	// mapHook, when set, fires with the inode number whenever a memory
	// mapping attaches (mmap.go); the file server uses it to revoke
	// client leases that would otherwise go stale under DAX stores.
	mapHook atomic.Pointer[func(ino uint64)]
}

// degrade switches the file system to read-only mode, recording why. It is
// idempotent and safe from any goroutine.
func (fs *FS) degrade(format string, args ...interface{}) {
	fs.degradedMu.Lock()
	fs.degradedReasons = append(fs.degradedReasons, fmt.Sprintf(format, args...))
	fs.degradedMu.Unlock()
	fs.degradedFlag.Store(true)
}

// Degraded reports whether the file system fell back to read-only mode
// because of media faults, and the first recorded reason.
func (fs *FS) Degraded() (reason string, degraded bool) {
	if !fs.degradedFlag.Load() {
		return "", false
	}
	fs.degradedMu.Lock()
	defer fs.degradedMu.Unlock()
	if len(fs.degradedReasons) > 0 {
		reason = fs.degradedReasons[0]
	}
	return reason, true
}

// DegradedReasons returns every recorded degradation reason.
func (fs *FS) DegradedReasons() []string {
	fs.degradedMu.Lock()
	defer fs.degradedMu.Unlock()
	return append([]string(nil), fs.degradedReasons...)
}

// writable gates mutating operations: a degraded file system returns
// ErrReadOnly instead of touching PM.
func (fs *FS) writable() error {
	if fs.degradedFlag.Load() {
		return vfs.ErrReadOnly
	}
	return nil
}

// mapDevErr translates device-level media/range errors into the vfs EIO
// error applications expect; other errors pass through.
func mapDevErr(err error) error {
	var me *pmem.MediaError
	var re *pmem.RangeError
	if errors.As(err, &me) || errors.As(err, &re) {
		return fmt.Errorf("%w: %v", vfs.ErrIO, err)
	}
	return err
}

// isMediaErr reports whether err originates from a media fault or a corrupt
// on-PM pointer (rather than, say, ENOSPC).
func isMediaErr(err error) bool {
	var me *pmem.MediaError
	var re *pmem.RangeError
	return errors.As(err, &me) || errors.As(err, &re)
}

// failTx handles an error raised in the middle of a journal transaction: the
// transaction is rolled back via its undo log, and if the failure was a media
// fault the file system degrades to read-only — DRAM bookkeeping touched
// before the fault (free-slot lists, extent growth) may no longer match the
// rolled-back PM state, so further mutation is unsafe.
func (fs *FS) failTx(tx *mtx, op string, err error) error {
	tx.abort()
	if isMediaErr(err) {
		fs.degrade("media error during %s: %v", op, err)
	}
	return mapDevErr(err)
}

// inode is the DRAM image of a file or directory.
type inode struct {
	fs  *FS
	ino uint64

	mu       sync.RWMutex // host-level consistency of the fields below
	typ      uint8
	flags    uint32
	size     int64
	nlink    uint32
	extents  []wextent // sorted by fileBlk; slot holds each record's PM index
	slots    []int     // parallel to extents: PM record slot
	indirect []int64   // indirect extent blocks, in chain order

	dir *dirIndex // directories only

	gen     uint64 // bumped on layout change (invalidates mmap extent cache)
	mmapGen uint64
	mmapExt []mmu.Extent

	// mappings are the live mmaps of this file; the reactive rewriter
	// shoots them down after swapping the extent map.
	mappings []*mmu.Mapping
}

// typNow reads the inode type under its lock: namespace pre-checks race
// with a concurrent unlink/rmdir/rename flipping the type to typeFree.
func (ino *inode) typNow() uint8 {
	ino.mu.RLock()
	t := ino.typ
	ino.mu.RUnlock()
	return t
}

type dentry struct {
	ino  uint64
	addr int64 // PM address of the dirent slot
}

type dirIndex struct {
	tree      *rbtree.Tree[string, dentry]
	freeSlots []int64 // PM addresses of reusable dirent slots
}

func newDirIndex() *dirIndex {
	return &dirIndex{tree: rbtree.New[string, dentry](func(a, b string) bool { return a < b })}
}

// Mkfs formats dev and returns a mounted, empty WineFS.
func Mkfs(ctx *sim.Ctx, dev *pmem.Device, opts Options) (*FS, error) {
	if opts.CPUs <= 0 {
		opts.CPUs = 8
	}
	fs := &FS{
		dev:           dev,
		as:            mmu.NewAddressSpace(dev),
		model:         dev.Model(),
		mode:          opts.Mode,
		g:             makeGeometry(dev.Size()/BlockSize, opts.CPUs, opts.InodesPerCPU),
		locks:         vfs.NewLockTable(),
		numaOn:        opts.NUMAAware && dev.Nodes() > 1,
		homes:         make(map[int]int),
		singleJournal: opts.AblateSingleJournal,
	}
	if fs.g.poolBlocks <= 0 {
		return nil, fmt.Errorf("winefs: device too small (%d blocks)", fs.g.totalBlocks)
	}
	if err := fs.initTier(opts.Tier); err != nil {
		return nil, err
	}
	fs.shards = newShards(fs.g.cpus)
	fs.alloc = newAllocator(fs)
	fs.alloc.noAlignment = opts.AblateAlignment
	fs.alloc.initEmpty()
	for c := 0; c < opts.CPUs; c++ {
		j := &journal{fs: fs, cpu: c, base: fs.g.journalBase(c)}
		fs.journals = append(fs.journals, j)
		j.format(ctx)
	}
	// Zero the inode tables so every slot reads as free.
	for c := 0; c < opts.CPUs; c++ {
		fs.dev.ZeroRange(fs.g.inodeTableBase(c), fs.g.inodesPerCPU*InodeSize)
	}
	fs.initInodeFree()
	// Root directory: ino 1 (CPU 0, slot 0).
	root := &inode{fs: fs, ino: 1, typ: typeDir, nlink: 2, dir: newDirIndex()}
	fs.putInode(root)
	fs.removeFreeIno(0, 0)
	fs.persistInodeRaw(ctx, root)
	fs.writeSuper(ctx, false)
	return fs, nil
}

func (fs *FS) initInodeFree() {
	for c := 0; c < fs.g.cpus; c++ {
		g := fs.alloc.groups[c]
		if int64(cap(g.inodeFree)) < fs.g.inodesPerCPU {
			g.inodeFree = make([]int64, 0, fs.g.inodesPerCPU)
		}
		g.inodeFree = g.inodeFree[:0]
		for s := int64(0); s < fs.g.inodesPerCPU; s++ {
			g.inodeFree = append(g.inodeFree, s)
		}
	}
}

func (fs *FS) removeFreeIno(cpu int, slot int64) {
	g := fs.alloc.groups[cpu]
	for i, s := range g.inodeFree {
		if s == slot {
			g.inodeFree = append(g.inodeFree[:i], g.inodeFree[i+1:]...)
			return
		}
	}
}

// allocIno takes a free inode slot, preferring the caller's CPU and
// stealing from the fullest table otherwise.
func (fs *FS) allocIno(ctx *sim.Ctx, cpu int) (uint64, error) {
	// Probe order: the caller's CPU first, then 0..cpus-1 skipping it —
	// generated on the fly rather than materialised into a slice (with 128
	// CPUs the order slice was a per-create 1KiB allocation).
	for k := -1; k < fs.g.cpus; k++ {
		c := k
		if k < 0 {
			c = cpu
		} else if k == cpu {
			continue
		}
		g := fs.alloc.groups[c]
		g.mu.Lock()
		if n := len(g.inodeFree); n > 0 {
			slot := g.inodeFree[n-1]
			g.inodeFree = g.inodeFree[:n-1]
			g.mu.Unlock()
			ctx.Advance(allocCost)
			return fs.g.inoFor(c, slot), nil
		}
		g.mu.Unlock()
	}
	return 0, vfs.ErrNoSpace
}

func (fs *FS) freeIno(ino uint64) {
	cpu := fs.g.cpuOfIno(ino)
	slot := int64(ino-1) % fs.g.inodesPerCPU
	g := fs.alloc.groups[cpu]
	g.mu.Lock()
	g.inodeFree = append(g.inodeFree, slot)
	g.mu.Unlock()
}

// --- PM persistence helpers ----------------------------------------------

func (fs *FS) writeSuper(ctx *sim.Ctx, clean bool) {
	sb := superblock{
		magic:        Magic,
		version:      1,
		totalBlocks:  fs.g.totalBlocks,
		cpus:         int32(fs.g.cpus),
		inodesPerCPU: fs.g.inodesPerCPU,
		clean:        clean,
		nextTxID:     fs.nextTxID,
	}
	fs.dev.Write(ctx, sb.encode(), 0)
	fs.dev.Flush(ctx, 0, sbSize)
	fs.dev.Fence(ctx)
}

// writeInodeHeader persists the inode's header piece, journaling the old
// contents first when tx != nil.
func (fs *FS) writeInodeHeader(ctx *sim.Ctx, tx *mtx, ino *inode) error {
	addr := fs.g.inodeAddr(ino.ino)
	di := dinode{
		magic:    inodeMagic,
		typ:      ino.typ,
		flags:    ino.flags,
		size:     ino.size,
		nlink:    ino.nlink,
		extCount: uint32(len(ino.extents)),
	}
	if len(ino.indirect) > 0 {
		di.indirect = ino.indirect[0]
	}
	if ino.typ == typeFree {
		di.magic = 0
	}
	b := di.encodeHeader()[:32]
	if tx != nil {
		if err := tx.undo(addr, 32); err != nil {
			return err
		}
	}
	fs.dev.Write(ctx, b, addr)
	fs.dev.Flush(ctx, addr, 32)
	return nil
}

// persistInodeRaw writes a full inode image without journaling (mkfs /
// rebuild paths).
func (fs *FS) persistInodeRaw(ctx *sim.Ctx, ino *inode) {
	_ = fs.writeInodeHeader(ctx, nil, ino) // nil tx: cannot fail
	for i := range ino.extents {
		_ = fs.writeExtentSlot(ctx, nil, ino, i)
	}
	fs.dev.Fence(ctx)
}

// extSlotAddr returns the PM address of extent record `slot`, following
// (and if tx != nil, extending) the indirect chain as needed.
func (fs *FS) extSlotAddr(ctx *sim.Ctx, tx *mtx, ino *inode, slot int) (int64, error) {
	if slot < InlineExtents {
		return fs.g.inodeAddr(ino.ino) + inoOffExtents + int64(slot)*extentSize, nil
	}
	idx := slot - InlineExtents
	chain := idx / extPerIndirect
	for len(ino.indirect) <= chain {
		if tx == nil {
			return 0, fmt.Errorf("winefs: missing indirect block %d for ino %d", chain, ino.ino)
		}
		// Extend the chain with a fresh metadata block from the hole pool.
		ext, ok := fs.alloc.allocSmall(ctx, tx.cpu, 1)
		if !ok {
			return 0, vfs.ErrNoSpace
		}
		blk := ext[0].Start
		fs.dev.ZeroRange(blk*BlockSize, BlockSize)
		if len(ino.indirect) == 0 {
			// Linked from the inode header (journaled with the header).
			ino.indirect = append(ino.indirect, blk)
		} else {
			prev := ino.indirect[len(ino.indirect)-1]
			ptrAddr := prev * BlockSize
			if err := tx.undo(ptrAddr, 8); err != nil {
				return 0, err
			}
			var pb [8]byte
			binary.LittleEndian.PutUint64(pb[:], uint64(blk))
			fs.dev.Write(ctx, pb[:], ptrAddr)
			fs.dev.Flush(ctx, ptrAddr, 8)
			ino.indirect = append(ino.indirect, blk)
		}
	}
	base := ino.indirect[chain] * BlockSize
	return base + 8 + int64(idx%extPerIndirect)*extentSize, nil
}

// writeExtentSlot persists extent record i of the inode.
func (fs *FS) writeExtentSlot(ctx *sim.Ctx, tx *mtx, ino *inode, i int) error {
	slot := i
	if len(ino.slots) > i {
		slot = ino.slots[i]
	}
	addr, err := fs.extSlotAddr(ctx, tx, ino, slot)
	if err != nil {
		return err
	}
	var b [extentSize]byte
	encodeExtent(b[:], ino.extents[i])
	if tx != nil {
		if err := tx.undo(addr, extentSize); err != nil {
			return err
		}
	}
	fs.dev.Write(ctx, b[:], addr)
	fs.dev.Flush(ctx, addr, extentSize)
	return nil
}

// mtx is a chaining transaction wrapper: it presents one logical
// transaction to the caller while never letting a single journal
// transaction exceed its reserved MaxTxEntries (the rare oversized
// operation — e.g. a copy-on-write spanning many extents — is split into
// consecutive journal transactions, each individually atomic).
type mtx struct {
	fs  *FS
	ctx *sim.Ctx
	cpu int
	tx  *txn
}

func (fs *FS) begin(ctx *sim.Ctx) *mtx {
	cpu := fs.txCPU(ctx)
	return &mtx{fs: fs, ctx: ctx, cpu: cpu, tx: fs.beginTx(ctx, cpu)}
}

// txCPU picks the journal for a new transaction: the thread's current CPU,
// possibly redirected to its NUMA home node (§3.6).
func (fs *FS) txCPU(ctx *sim.Ctx) int {
	if fs.singleJournal {
		return 0
	}
	cpu := ctx.CPU
	if fs.numaOn {
		cpu = fs.homeCPU(ctx)
	}
	if cpu >= fs.g.cpus {
		cpu %= fs.g.cpus
	}
	return cpu
}

func (m *mtx) undo(addr int64, n int) error {
	need := (n + undoBytes - 1) / undoBytes
	if m.tx.wrote+need > MaxTxEntries-1 {
		m.tx.commit(m.ctx)
		m.tx = m.fs.beginTx(m.ctx, m.cpu)
	}
	return m.tx.undo(m.ctx, addr, n)
}

func (m *mtx) commit() {
	m.tx.commit(m.ctx)
}

// abort rolls back the current journal transaction of the chain (earlier
// chained transactions have already committed; each link is individually
// atomic) and releases the journal.
func (m *mtx) abort() {
	m.tx.abort(m.ctx)
}

// --- path resolution -------------------------------------------------------

// resolve walks path to its inode, charging one DRAM index lookup per
// component.
func (fs *FS) resolve(ctx *sim.Ctx, path string) (*inode, error) {
	cur := fs.getInode(1)
	for _, comp := range vfs.Components(path) {
		ctx.Advance(dirLookupCost)
		cur.mu.RLock()
		if cur.typ != typeDir {
			cur.mu.RUnlock()
			return nil, vfs.ErrNotDir
		}
		de, ok := cur.dir.tree.Get(comp)
		cur.mu.RUnlock()
		if !ok {
			return nil, vfs.ErrNotExist
		}
		next := fs.getInode(de.ino)
		if next == nil {
			return nil, vfs.ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// resolveParent returns the parent directory inode and final name.
func (fs *FS) resolveParent(ctx *sim.Ctx, path string) (*inode, string, error) {
	dir, name, err := vfs.SplitParent(path)
	if err != nil {
		return nil, "", err // operating on root
	}
	if len(name) > MaxNameLen {
		return nil, "", fmt.Errorf("winefs: name %q too long", name)
	}
	p, err := fs.resolve(ctx, dir)
	if err != nil {
		return nil, "", err
	}
	if p.typNow() != typeDir {
		return nil, "", vfs.ErrNotDir
	}
	return p, name, nil
}

// --- directory entry persistence -------------------------------------------

// direntSlot obtains a free dirent slot address in dir, growing the
// directory by one hole block when needed.
func (fs *FS) direntSlot(ctx *sim.Ctx, tx *mtx, dir *inode) (int64, error) {
	if n := len(dir.dir.freeSlots); n > 0 {
		addr := dir.dir.freeSlots[n-1]
		dir.dir.freeSlots = dir.dir.freeSlots[:n-1]
		return addr, nil
	}
	// Grow the directory: dirent blocks come from the hole pool so that
	// metadata never consumes aligned extents ("controlled fragmentation").
	ext, ok := fs.alloc.allocSmall(ctx, tx.cpu, 1)
	if !ok {
		return 0, vfs.ErrNoSpace
	}
	blk := ext[0].Start
	fs.dev.Zero(ctx, blk*BlockSize, BlockSize)
	fileBlk := int64(0)
	if n := len(dir.extents); n > 0 {
		last := dir.extents[n-1]
		fileBlk = last.fileBlk + last.length
	}
	if err := fs.appendExtent(ctx, tx, dir, wextent{fileBlk: fileBlk, blk: blk, length: 1}); err != nil {
		return 0, err
	}
	base := blk * BlockSize
	for i := int64(DirentSize); i < BlockSize; i += DirentSize {
		dir.dir.freeSlots = append(dir.dir.freeSlots, base+i)
	}
	return base, nil
}

// writeDirent journals and persists a dirent at addr.
func (fs *FS) writeDirent(ctx *sim.Ctx, tx *mtx, addr int64, ino uint64, name string) error {
	var b [DirentSize]byte
	encodeDirent(b[:], ino, name)
	if err := tx.undo(addr, DirentSize); err != nil {
		return err
	}
	fs.dev.Write(ctx, b[:], addr)
	fs.dev.Flush(ctx, addr, DirentSize)
	return nil
}

// clearDirent journals and invalidates the dirent at addr.
func (fs *FS) clearDirent(ctx *sim.Ctx, tx *mtx, addr int64) error {
	if err := tx.undo(addr+8, 1); err != nil { // the valid byte
		return err
	}
	fs.dev.Write(ctx, []byte{0}, addr+8)
	fs.dev.Flush(ctx, addr+8, 1)
	return nil
}

// appendExtent adds a record to the inode's extent list, merging with the
// last record when physically and logically contiguous.
func (fs *FS) appendExtent(ctx *sim.Ctx, tx *mtx, ino *inode, e wextent) error {
	if n := len(ino.extents); n > 0 {
		last := &ino.extents[n-1]
		if last.fileBlk+last.length == e.fileBlk && last.blk+last.length == e.blk {
			last.length += e.length
			ino.gen++
			return fs.writeExtentSlot(ctx, tx, ino, n-1)
		}
	}
	ino.extents = append(ino.extents, e)
	ino.slots = append(ino.slots, len(ino.slots))
	ino.gen++
	return fs.writeExtentSlot(ctx, tx, ino, len(ino.extents)-1)
}

// --- vfs.FS implementation --------------------------------------------------

// Name implements vfs.FS.
func (fs *FS) Name() string {
	if fs.mode == vfs.Strict {
		return "WineFS"
	}
	return "WineFS-relaxed"
}

// Mode implements vfs.FS.
func (fs *FS) Mode() vfs.ConsistencyMode { return fs.mode }

// Create implements vfs.FS: it creates (or truncates-opens) a regular file.
func (fs *FS) Create(ctx *sim.Ctx, path string) (vfs.File, error) {
	ctx.Syscall(fs.model.SyscallNS)
	if err := fs.writable(); err != nil {
		return nil, err
	}
	parent, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return nil, err
	}
	h := fs.locks.Lock(ctx, parent.ino)
	defer h.Unlock(ctx)

	parent.mu.Lock()
	if de, ok := parent.dir.tree.Get(name); ok {
		parent.mu.Unlock()
		existing := fs.getInode(de.ino)
		if existing == nil || existing.typNow() == typeDir {
			return nil, vfs.ErrIsDir
		}
		return &File{fs: fs, ino: existing}, nil
	}
	parent.mu.Unlock()

	inoNum, err := fs.allocIno(ctx, fs.txCPU(ctx))
	if err != nil {
		return nil, err
	}
	child := &inode{fs: fs, ino: inoNum, typ: typeFile, nlink: 1}
	// §3.6: files directly within a directory inherit its alignment
	// attribute (rsync/cp receive-side behaviour).
	parent.mu.RLock()
	child.flags |= parent.flags & flagAligned
	parent.mu.RUnlock()

	tx := fs.begin(ctx)
	parent.mu.Lock()
	slotAddr, err := fs.direntSlot(ctx, tx, parent)
	if err == nil {
		err = fs.writeDirent(ctx, tx, slotAddr, inoNum, name)
	}
	if err == nil {
		err = fs.writeInodeHeader(ctx, tx, child)
	}
	if err == nil {
		err = fs.writeInodeHeader(ctx, tx, parent)
	}
	if err != nil {
		parent.mu.Unlock()
		fs.freeIno(inoNum)
		return nil, fs.failTx(tx, "create", err)
	}
	parent.dir.tree.Set(name, dentry{ino: inoNum, addr: slotAddr})
	parent.mu.Unlock()
	tx.commit()

	fs.putInode(child)
	return &File{fs: fs, ino: child}, nil
}

// Open implements vfs.FS.
func (fs *FS) Open(ctx *sim.Ctx, path string) (vfs.File, error) {
	ctx.Syscall(fs.model.SyscallNS)
	ino, err := fs.resolve(ctx, path)
	if err != nil {
		return nil, err
	}
	if ino.typNow() == typeDir {
		return nil, vfs.ErrIsDir
	}
	return &File{fs: fs, ino: ino}, nil
}

// Mkdir implements vfs.FS.
func (fs *FS) Mkdir(ctx *sim.Ctx, path string) error {
	ctx.Syscall(fs.model.SyscallNS)
	if err := fs.writable(); err != nil {
		return err
	}
	parent, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	h := fs.locks.Lock(ctx, parent.ino)
	defer h.Unlock(ctx)

	parent.mu.Lock()
	if _, ok := parent.dir.tree.Get(name); ok {
		parent.mu.Unlock()
		return vfs.ErrExist
	}
	parent.mu.Unlock()

	inoNum, err := fs.allocIno(ctx, fs.txCPU(ctx))
	if err != nil {
		return err
	}
	child := &inode{fs: fs, ino: inoNum, typ: typeDir, nlink: 2, dir: newDirIndex()}

	tx := fs.begin(ctx)
	parent.mu.Lock()
	slotAddr, err := fs.direntSlot(ctx, tx, parent)
	if err == nil {
		err = fs.writeDirent(ctx, tx, slotAddr, inoNum, name)
	}
	if err == nil {
		err = fs.writeInodeHeader(ctx, tx, child)
	}
	if err == nil {
		parent.nlink++
		if err = fs.writeInodeHeader(ctx, tx, parent); err != nil {
			parent.nlink--
		}
	}
	if err != nil {
		parent.mu.Unlock()
		fs.freeIno(inoNum)
		return fs.failTx(tx, "mkdir", err)
	}
	parent.dir.tree.Set(name, dentry{ino: inoNum, addr: slotAddr})
	parent.mu.Unlock()
	tx.commit()

	fs.putInode(child)
	return nil
}

// Unlink implements vfs.FS.
func (fs *FS) Unlink(ctx *sim.Ctx, path string) error {
	ctx.Syscall(fs.model.SyscallNS)
	if err := fs.writable(); err != nil {
		return err
	}
	parent, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	h := fs.locks.Lock(ctx, parent.ino)
	defer h.Unlock(ctx)

	parent.mu.Lock()
	de, ok := parent.dir.tree.Get(name)
	parent.mu.Unlock()
	if !ok {
		return vfs.ErrNotExist
	}
	target := fs.getInode(de.ino)
	if target == nil {
		return vfs.ErrNotExist
	}
	if target.typNow() == typeDir {
		return vfs.ErrIsDir
	}
	ht := fs.locks.Lock(ctx, target.ino)
	defer ht.Unlock(ctx)

	tx := fs.begin(ctx)
	if err := fs.clearDirent(ctx, tx, de.addr); err != nil {
		return fs.failTx(tx, "unlink", err)
	}
	target.mu.Lock()
	target.nlink--
	drop := target.nlink == 0
	if drop {
		target.typ = typeFree
	}
	if err := fs.writeInodeHeader(ctx, tx, target); err != nil {
		target.nlink++
		if drop {
			target.typ = typeFile
			drop = false
		}
		target.mu.Unlock()
		return fs.failTx(tx, "unlink", err)
	}
	target.mu.Unlock()
	tx.commit()

	parent.mu.Lock()
	parent.dir.tree.Delete(name)
	parent.dir.freeSlots = append(parent.dir.freeSlots, de.addr)
	parent.mu.Unlock()

	if drop {
		fs.destroyInode(ctx, target)
	}
	return nil
}

// destroyInode releases an unlinked inode's storage.
func (fs *FS) destroyInode(ctx *sim.Ctx, ino *inode) {
	ino.mu.Lock()
	exts := ino.extents
	indirect := ino.indirect
	maps := ino.mappings
	ino.extents = nil
	ino.slots = nil
	ino.indirect = nil
	ino.mappings = nil
	ino.size = 0
	ino.gen++
	ino.mu.Unlock()
	// Unlink-under-mmap: shoot down every live translation before the
	// blocks go back to the allocator. Size is now zero, so any later
	// fault through a surviving mapping reports vfs.ErrMapFault instead
	// of resurrecting freed storage.
	for _, m := range maps {
		m.Invalidate()
	}
	fs.alloc.freeAll(ctx, exts)
	for _, blk := range indirect {
		fs.alloc.free(ctx, alloc.Extent{Start: blk, Len: 1})
	}
	// A destroyed inode must leave the rewrite queue: the queue entry
	// would otherwise pin the dead object until the rewriter drains it
	// (the rewriter's identity check would skip it, but dropping it here
	// keeps the queue honest for RewriteQueueLen and frees the guard so a
	// reused number's new file can queue itself).
	fs.dropRewrite(ino)
	fs.delInode(ino.ino)
	fs.freeIno(ino.ino)
	// Callers still hold the inode lock at this point (their handle pins
	// the lock object); Drop means a reused inode number starts with a
	// fresh lock instead of inheriting this one's calendar.
	fs.locks.Drop(ino.ino)
}

// Rmdir implements vfs.FS.
func (fs *FS) Rmdir(ctx *sim.Ctx, path string) error {
	ctx.Syscall(fs.model.SyscallNS)
	if err := fs.writable(); err != nil {
		return err
	}
	parent, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	h := fs.locks.Lock(ctx, parent.ino)
	defer h.Unlock(ctx)

	parent.mu.Lock()
	de, ok := parent.dir.tree.Get(name)
	parent.mu.Unlock()
	if !ok {
		return vfs.ErrNotExist
	}
	target := fs.getInode(de.ino)
	if target == nil {
		return vfs.ErrNotExist
	}
	if target.typNow() != typeDir {
		return vfs.ErrNotDir
	}
	target.mu.RLock()
	empty := target.dir.tree.Len() == 0
	target.mu.RUnlock()
	if !empty {
		return vfs.ErrNotEmpty
	}

	tx := fs.begin(ctx)
	if err := fs.clearDirent(ctx, tx, de.addr); err != nil {
		return fs.failTx(tx, "rmdir", err)
	}
	target.mu.Lock()
	target.typ = typeFree
	if err := fs.writeInodeHeader(ctx, tx, target); err != nil {
		target.typ = typeDir
		target.mu.Unlock()
		return fs.failTx(tx, "rmdir", err)
	}
	target.mu.Unlock()
	parent.mu.Lock()
	parent.nlink--
	if err := fs.writeInodeHeader(ctx, tx, parent); err != nil {
		parent.nlink++
		parent.mu.Unlock()
		return fs.failTx(tx, "rmdir", err)
	}
	parent.dir.tree.Delete(name)
	parent.dir.freeSlots = append(parent.dir.freeSlots, de.addr)
	parent.mu.Unlock()
	tx.commit()

	fs.destroyInode(ctx, target)
	return nil
}

// Rename implements vfs.FS. Both parent directories are locked in inode
// order; the whole move is one journal transaction.
func (fs *FS) Rename(ctx *sim.Ctx, oldPath, newPath string) error {
	ctx.Syscall(fs.model.SyscallNS)
	if err := fs.writable(); err != nil {
		return err
	}
	oldParent, oldName, err := fs.resolveParent(ctx, oldPath)
	if err != nil {
		return err
	}
	newParent, newName, err := fs.resolveParent(ctx, newPath)
	if err != nil {
		return err
	}
	// Lock order by inode number to avoid deadlock.
	first, second := oldParent, newParent
	if first.ino > second.ino {
		first, second = second, first
	}
	h1 := fs.locks.Lock(ctx, first.ino)
	var h2 *vfs.LockHandle
	if second.ino != first.ino {
		h2 = fs.locks.Lock(ctx, second.ino)
	}
	defer func() {
		if h2 != nil {
			h2.Unlock(ctx)
		}
		h1.Unlock(ctx)
	}()

	oldParent.mu.Lock()
	de, ok := oldParent.dir.tree.Get(oldName)
	oldParent.mu.Unlock()
	if !ok {
		return vfs.ErrNotExist
	}
	moved := fs.getInode(de.ino)
	if moved == nil {
		return vfs.ErrNotExist
	}

	// An existing target is replaced atomically (POSIX rename).
	newParent.mu.Lock()
	oldDe, replacing := newParent.dir.tree.Get(newName)
	newParent.mu.Unlock()
	var victim *inode
	if replacing {
		victim = fs.getInode(oldDe.ino)
		if victim != nil && victim.typNow() == typeDir {
			victim.mu.RLock()
			empty := victim.dir.tree.Len() == 0
			victim.mu.RUnlock()
			if !empty {
				return vfs.ErrNotEmpty
			}
		}
	}

	tx := fs.begin(ctx)
	if err := fs.clearDirent(ctx, tx, de.addr); err != nil {
		return fs.failTx(tx, "rename", err)
	}
	var newAddr int64
	if replacing {
		// Reuse the victim's dirent slot: point it at the moved inode.
		newAddr = oldDe.addr
		if err := fs.writeDirent(ctx, tx, newAddr, moved.ino, newName); err != nil {
			return fs.failTx(tx, "rename", err)
		}
		if victim != nil {
			victim.mu.Lock()
			victim.nlink = 0
			victim.typ = typeFree
			err := fs.writeInodeHeader(ctx, tx, victim)
			victim.mu.Unlock()
			if err != nil {
				return fs.failTx(tx, "rename", err)
			}
		}
	} else {
		newParent.mu.Lock()
		newAddr, err = fs.direntSlot(ctx, tx, newParent)
		if err == nil {
			err = fs.writeDirent(ctx, tx, newAddr, moved.ino, newName)
		}
		if err == nil {
			err = fs.writeInodeHeader(ctx, tx, newParent)
		}
		newParent.mu.Unlock()
		if err != nil {
			return fs.failTx(tx, "rename", err)
		}
	}
	tx.commit()

	oldParent.mu.Lock()
	oldParent.dir.tree.Delete(oldName)
	oldParent.dir.freeSlots = append(oldParent.dir.freeSlots, de.addr)
	oldParent.mu.Unlock()
	newParent.mu.Lock()
	newParent.dir.tree.Set(newName, dentry{ino: moved.ino, addr: newAddr})
	newParent.mu.Unlock()
	if victim != nil {
		fs.destroyInode(ctx, victim)
	}
	return nil
}

// Stat implements vfs.FS.
func (fs *FS) Stat(ctx *sim.Ctx, path string) (vfs.FileInfo, error) {
	ctx.Syscall(fs.model.SyscallNS)
	ino, err := fs.resolve(ctx, path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	h := fs.locks.RLock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	return vfs.FileInfo{
		Ino:   ino.ino,
		Size:  ino.size,
		IsDir: ino.typ == typeDir,
		Nlink: int(ino.nlink),
	}, nil
}

// ReadDir implements vfs.FS.
func (fs *FS) ReadDir(ctx *sim.Ctx, path string) ([]vfs.DirEntry, error) {
	ctx.Syscall(fs.model.SyscallNS)
	dir, err := fs.resolve(ctx, path)
	if err != nil {
		return nil, err
	}
	if dir.typNow() != typeDir {
		return nil, vfs.ErrNotDir
	}
	h := fs.locks.RLock(ctx, dir.ino)
	defer h.Unlock(ctx)
	dir.mu.RLock()
	defer dir.mu.RUnlock()
	var out []vfs.DirEntry
	dir.dir.tree.Ascend(func(name string, de dentry) bool {
		ctx.Advance(dirLookupCost)
		child := fs.getInode(de.ino)
		isDir := child != nil && child.typ == typeDir
		out = append(out, vfs.DirEntry{Name: name, Ino: de.ino, IsDir: isDir})
		return true
	})
	return out, nil
}

// StatFS implements vfs.FS.
func (fs *FS) StatFS(ctx *sim.Ctx) vfs.StatFS {
	freeBlocks, alignedExtents := fs.alloc.stats()
	files := int64(fs.inodeCount())
	return vfs.StatFS{
		TotalBlocks:   fs.g.poolBlocks * int64(fs.g.cpus),
		FreeBlocks:    freeBlocks,
		FreeAligned2M: alignedExtents,
		Files:         files,
	}
}

// FreeExtents implements vfs.FS.
func (fs *FS) FreeExtents() []alloc.Extent { return fs.alloc.freeExtents() }

// AddressSpace exposes the FS's process address space for experiments that
// need direct TLB/LLC control.
func (fs *FS) AddressSpace() *mmu.AddressSpace { return fs.as }

// Journals returns the number of per-CPU journals (for tests).
func (fs *FS) Journals() int { return len(fs.journals) }

// sortExtents re-sorts an inode's extent list by file offset, keeping the
// slot mapping attached.
func sortExtents(ino *inode) {
	type pair struct {
		e wextent
		s int
	}
	ps := make([]pair, len(ino.extents))
	for i := range ino.extents {
		ps[i] = pair{ino.extents[i], ino.slots[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].e.fileBlk < ps[j].e.fileBlk })
	for i := range ps {
		ino.extents[i] = ps[i].e
		ino.slots[i] = ps[i].s
	}
}
