package winefs

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/sim"
)

// Journal entry types (§3.6: START, COMMIT or DATA).
const (
	entryStart  = 1
	entryCommit = 2
	entryData   = 3
)

const (
	entryMagic = 0x4A4E // "JN"
	// undoBytes is the old-data payload per DATA entry.
	undoBytes = 32
)

// journal is one per-CPU fine-grained undo journal (§3.5): a circular
// array of 64-byte entries on PM, preceded by a 64-byte header. Because
// every operation is synchronous, committed transactions are reclaimed
// immediately, so the live region is at most one transaction (≤ 10
// entries, §3.6).
//
// The header records (tail, wraparound counter, last committed TxID); a
// transaction never straddles the wraparound point, so recovery examines at
// most one contiguous run of entries per journal.
type journal struct {
	fs   *FS
	cpu  int
	base int64 // byte address of the header entry
	res  sim.Resource

	// DRAM cursor state (rebuilt from the header at mount).
	tail int64 // next entry slot to write, in [1, entries]
	wrap uint32
}

// journal header layout: magic u32 | wrap u32 | tail u64 | lastCommitted u64.
func (j *journal) writeHeader(ctx *sim.Ctx, lastCommitted uint64) {
	b := make([]byte, EntrySize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], entryMagic)
	le.PutUint32(b[4:], j.wrap)
	le.PutUint64(b[8:], uint64(j.tail))
	le.PutUint64(b[16:], lastCommitted)
	j.fs.dev.Write(ctx, b, j.base)
	j.fs.dev.Flush(ctx, j.base, EntrySize)
	ctx.Counters.JournalBytes += EntrySize
}

func (j *journal) readHeader() (wrap uint32, tail int64, lastCommitted uint64) {
	b := make([]byte, EntrySize)
	j.fs.dev.ReadAt(b, j.base)
	le := binary.LittleEndian
	return le.Uint32(b[4:]), int64(le.Uint64(b[8:])), le.Uint64(b[16:])
}

func (j *journal) entryAddr(slot int64) int64 { return j.base + slot*EntrySize }

// jentry is a decoded journal entry.
type jentry struct {
	typ  uint8
	n    uint8
	wrap uint32
	txid uint64
	addr int64
	data [undoBytes]byte
}

// entry layout: magic u16 | typ u8 | len u8 | wrap u32 | txid u64 |
// addr u64 | data[32] | pad[8].
func encodeEntry(e *jentry) []byte {
	b := make([]byte, EntrySize)
	le := binary.LittleEndian
	le.PutUint16(b[0:], entryMagic)
	b[2] = e.typ
	b[3] = e.n
	le.PutUint32(b[4:], e.wrap)
	le.PutUint64(b[8:], e.txid)
	le.PutUint64(b[16:], uint64(e.addr))
	copy(b[24:24+undoBytes], e.data[:])
	return b
}

func decodeEntry(b []byte) (jentry, bool) {
	le := binary.LittleEndian
	if le.Uint16(b[0:]) != entryMagic {
		return jentry{}, false
	}
	e := jentry{
		typ:  b[2],
		n:    b[3],
		wrap: le.Uint32(b[4:]),
		txid: le.Uint64(b[8:]),
		addr: int64(le.Uint64(b[16:])),
	}
	copy(e.data[:], b[24:24+undoBytes])
	return e, e.typ >= entryStart && e.typ <= entryData
}

// txn is an in-progress journal transaction. It is bound to the per-CPU
// journal it was created in even if the simulated thread migrates (§3.6,
// "Handling thread migrations").
type txn struct {
	j         *journal
	id        uint64
	wrote     int
	unflushed int
}

// begin starts a transaction in cpu's journal, reserving MaxTxEntries
// entries (§3.6: "every journal transaction reserves the maximum number of
// log entries that it requires ... before starting").
func (fs *FS) beginTx(ctx *sim.Ctx, cpu int) *txn {
	j := fs.journals[cpu]
	// Serialise transactions on this journal: holds both the host mutex
	// and the virtual-time resource until commit.
	j.res.Acquire(ctx)
	entries := fs.g.journalEntries()
	if j.tail+MaxTxEntries > entries {
		// Not enough contiguous room: wrap to the start. Transactions never
		// straddle the wrap point, which keeps recovery single-run. The
		// header is persisted only here (and at format time), so the
		// common-case commit stays header-free.
		j.tail = 1
		j.wrap++
		j.writeHeader(ctx, atomic.LoadUint64(&fs.nextTxID))
		fs.dev.Fence(ctx)
	}
	// §3.6: the shared transaction ID is an atomic counter incremented on
	// every transaction create, unique across all per-CPU journals.
	id := atomic.AddUint64(&fs.nextTxID, 1)
	tx := &txn{j: j, id: id}
	tx.append(ctx, &jentry{typ: entryStart, wrap: j.wrap, txid: id})
	return tx
}

func (tx *txn) append(ctx *sim.Ctx, e *jentry) {
	j := tx.j
	if tx.wrote >= MaxTxEntries {
		panic(fmt.Sprintf("winefs: transaction exceeded %d entries", MaxTxEntries))
	}
	b := encodeEntry(e)
	addr := j.entryAddr(j.tail)
	j.fs.dev.Write(ctx, b, addr)
	ctx.Counters.JournalBytes += EntrySize
	j.tail++
	tx.wrote++
	tx.unflushed++
}

// flushEntries flushes the journal entries appended since the last flush
// (one clwb pass over the contiguous run — cheaper than per-entry flushes).
func (tx *txn) flushEntries(ctx *sim.Ctx) {
	if tx.unflushed == 0 {
		return
	}
	start := tx.j.entryAddr(tx.j.tail - int64(tx.unflushed))
	tx.j.fs.dev.Flush(ctx, start, int64(tx.unflushed)*EntrySize)
	tx.unflushed = 0
}

// undo records the current contents of [addr, addr+n) so a crash before
// commit rolls the region back. n may exceed undoBytes; the range is split
// across entries. Call undo before modifying the region: the entries are
// fenced before undo returns, because an in-place update must never become
// durable ahead of its undo record.
func (tx *txn) undo(ctx *sim.Ctx, addr int64, n int) {
	for n > 0 {
		k := n
		if k > undoBytes {
			k = undoBytes
		}
		e := &jentry{typ: entryData, n: uint8(k), wrap: tx.j.wrap, txid: tx.id, addr: addr}
		buf := make([]byte, k)
		tx.j.fs.dev.Read(ctx, buf, addr)
		copy(e.data[:], buf)
		tx.append(ctx, e)
		addr += int64(k)
		n -= k
	}
	tx.flushEntries(ctx)
	tx.j.fs.dev.Fence(ctx)
}

// commit makes the transaction durable and reclaims its space. The caller
// must have flushed+fenced all its in-place updates first (undo journaling:
// COMMIT durable implies the updates are durable). The journal header is
// NOT rewritten per transaction — space reclamation is logical (the DRAM
// tail advances; recovery scans forward from the last persisted header and
// ignores committed transactions).
func (tx *txn) commit(ctx *sim.Ctx) {
	j := tx.j
	j.fs.dev.Fence(ctx) // order in-place updates before COMMIT
	tx.append(ctx, &jentry{typ: entryCommit, wrap: j.wrap, txid: tx.id})
	tx.flushEntries(ctx)
	j.fs.dev.Fence(ctx)
	ctx.Counters.JournalCommits++
	j.res.Release(ctx)
}

// uncommittedTx describes one in-flight transaction found during recovery.
type uncommittedTx struct {
	txid uint64
	undo []jentry // DATA entries in append order
}

// scanJournal walks the journal forward from the last persisted header
// (written at format and wrap time only) and returns the trailing
// uncommitted transaction, if any, plus the largest TxID observed.
func (j *journal) scanJournal() (*uncommittedTx, uint64) {
	wrap, tail, lastCommitted := j.readHeader()
	entries := j.fs.g.journalEntries()
	read := func(slot int64) (jentry, bool) {
		b := make([]byte, EntrySize)
		j.fs.dev.ReadAt(b, j.entryAddr(slot))
		return decodeEntry(b)
	}
	var maxSeen uint64
	tryRun := func(start int64, expectWrap uint32) *uncommittedTx {
		var tx *uncommittedTx
		for slot := start; slot < entries; slot++ {
			e, ok := read(slot)
			if !ok || e.wrap != expectWrap || e.txid <= lastCommitted {
				break
			}
			if e.txid > maxSeen {
				maxSeen = e.txid
			}
			switch e.typ {
			case entryStart:
				tx = &uncommittedTx{txid: e.txid}
			case entryData:
				if tx != nil && e.txid == tx.txid {
					tx.undo = append(tx.undo, e)
				}
			case entryCommit:
				if tx != nil && e.txid == tx.txid {
					tx = nil // complete transaction: nothing to roll back
				}
			}
		}
		return tx
	}
	if tail >= 1 && tail <= entries {
		if tx := tryRun(tail, wrap); tx != nil {
			return tx, maxSeen
		}
		// The in-flight transaction may have started right after a wrap
		// whose header write did not persist.
		if tx := tryRun(1, wrap+1); tx != nil {
			return tx, maxSeen
		}
		return nil, maxSeen
	}
	return nil, maxSeen
}

// recoverJournals rolls back every uncommitted transaction across all
// per-CPU journals, in descending global TxID order (§3.6, "Journal
// Recovery"). Returns the number of transactions rolled back.
func (fs *FS) recoverJournals(ctx *sim.Ctx) int {
	var pending []*uncommittedTx
	maxID := fs.nextTxID
	for _, j := range fs.journals {
		tx, seen := j.scanJournal()
		if tx != nil {
			pending = append(pending, tx)
		}
		if seen > maxID {
			maxID = seen
		}
		// Charge the scan: reading the header plus up to MaxTxEntries.
		fs.dev.Read(ctx, make([]byte, EntrySize), j.base)
	}
	sort.Slice(pending, func(i, k int) bool { return pending[i].txid > pending[k].txid })
	for _, tx := range pending {
		// Apply undo records in reverse order.
		for i := len(tx.undo) - 1; i >= 0; i-- {
			e := tx.undo[i]
			fs.dev.Write(ctx, e.data[:e.n], e.addr)
			fs.dev.Flush(ctx, e.addr, int64(e.n))
		}
		fs.dev.Fence(ctx)
	}
	// Reset every journal: mark all transactions resolved.
	for _, p := range pending {
		if p.txid > maxID {
			maxID = p.txid
		}
	}
	fs.nextTxID = maxID
	for _, j := range fs.journals {
		j.tail = 1
		j.wrap++
		j.writeHeader(ctx, maxID)
	}
	fs.dev.Fence(ctx)
	return len(pending)
}

// initJournal prepares a fresh journal at mkfs time.
func (j *journal) format(ctx *sim.Ctx) {
	j.fs.dev.ZeroRange(j.base, JournalBlocks*BlockSize)
	j.tail = 1
	j.wrap = 1
	j.writeHeader(ctx, 0)
}

// loadJournal restores the DRAM cursor at mount: the header gives the
// start of the current wrap segment; the cursor is the first slot after
// the entries already written in this segment.
func (j *journal) load() {
	wrap, tail, _ := j.readHeader()
	j.wrap = wrap
	j.tail = tail
	entries := j.fs.g.journalEntries()
	if j.tail < 1 || j.tail > entries {
		j.tail = 1
		j.wrap++
		return
	}
	b := make([]byte, EntrySize)
	for j.tail < entries {
		j.fs.dev.ReadAt(b, j.entryAddr(j.tail))
		e, ok := decodeEntry(b)
		if !ok || e.wrap != j.wrap {
			break
		}
		j.tail++
	}
}
