package winefs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/sim"
)

// ErrTxOverflow reports a journal transaction that tried to exceed its
// MaxTxEntries reservation. The transaction is aborted (rolled back via
// its undo log) and the operation fails; the process does not crash.
var ErrTxOverflow = errors.New("winefs: transaction exceeds reserved journal entries")

// Journal entry types (§3.6: START, COMMIT or DATA).
const (
	entryStart  = 1
	entryCommit = 2
	entryData   = 3
)

const (
	entryMagic = 0x4A4E // "JN"
	// undoBytes is the old-data payload per DATA entry.
	undoBytes = 32
)

// journal is one per-CPU fine-grained undo journal (§3.5): a circular
// array of 64-byte entries on PM, preceded by a 64-byte header. Because
// every operation is synchronous, committed transactions are reclaimed
// immediately, so the live region is at most one transaction (≤ 10
// entries, §3.6).
//
// The header records (tail, wraparound counter, last committed TxID); a
// transaction never straddles the wraparound point, so recovery examines at
// most one contiguous run of entries per journal.
type journal struct {
	fs   *FS
	cpu  int
	base int64 // byte address of the header entry
	res  sim.Resource

	// DRAM cursor state (rebuilt from the header at mount).
	tail int64 // next entry slot to write, in [1, entries]
	wrap uint32
}

// journal header layout: magic u32 | wrap u32 | tail u64 | lastCommitted u64.
func (j *journal) writeHeader(ctx *sim.Ctx, lastCommitted uint64) {
	b := make([]byte, EntrySize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], entryMagic)
	le.PutUint32(b[4:], j.wrap)
	le.PutUint64(b[8:], uint64(j.tail))
	le.PutUint64(b[16:], lastCommitted)
	j.fs.dev.Write(ctx, b, j.base)
	j.fs.dev.Flush(ctx, j.base, EntrySize)
	ctx.Counters.JournalBytes += EntrySize
}

func (j *journal) readHeader() (wrap uint32, tail int64, lastCommitted uint64, err error) {
	b := make([]byte, EntrySize)
	if err := j.fs.dev.ReadAtChecked(b, j.base); err != nil {
		return 0, 0, 0, err
	}
	le := binary.LittleEndian
	if m := le.Uint32(b[0:]); m != entryMagic {
		// A header with the wrong magic cannot be trusted to say whether an
		// uncommitted transaction is pending; the caller degrades or repairs.
		return 0, 0, 0, fmt.Errorf("winefs: journal %d header bad magic %#x", j.cpu, m)
	}
	return le.Uint32(b[4:]), int64(le.Uint64(b[8:])), le.Uint64(b[16:]), nil
}

func (j *journal) entryAddr(slot int64) int64 { return j.base + slot*EntrySize }

// jentry is a decoded journal entry.
type jentry struct {
	typ  uint8
	n    uint8
	wrap uint32
	txid uint64
	addr int64
	data [undoBytes]byte
}

// entry layout: magic u16 | typ u8 | len u8 | wrap u32 | txid u64 |
// addr u64 | data[32] | pad[8].
func encodeEntry(e *jentry) []byte {
	b := make([]byte, EntrySize)
	encodeEntryTo(b, e)
	return b
}

// encodeEntryTo encodes into a caller-owned EntrySize buffer, so the hot
// append path can reuse one scratch buffer per transaction.
func encodeEntryTo(b []byte, e *jentry) {
	le := binary.LittleEndian
	le.PutUint16(b[0:], entryMagic)
	b[2] = e.typ
	b[3] = e.n
	le.PutUint32(b[4:], e.wrap)
	le.PutUint64(b[8:], e.txid)
	le.PutUint64(b[16:], uint64(e.addr))
	copy(b[24:24+undoBytes], e.data[:])
	for i := 24 + undoBytes; i < EntrySize; i++ {
		b[i] = 0
	}
}

func decodeEntry(b []byte) (jentry, bool) {
	le := binary.LittleEndian
	if le.Uint16(b[0:]) != entryMagic {
		return jentry{}, false
	}
	e := jentry{
		typ:  b[2],
		n:    b[3],
		wrap: le.Uint32(b[4:]),
		txid: le.Uint64(b[8:]),
		addr: int64(le.Uint64(b[16:])),
	}
	copy(e.data[:], b[24:24+undoBytes])
	return e, e.typ >= entryStart && e.typ <= entryData
}

// txn is an in-progress journal transaction. It is bound to the per-CPU
// journal it was created in even if the simulated thread migrates (§3.6,
// "Handling thread migrations").
type txn struct {
	j         *journal
	id        uint64
	opened    int64 // virtual time the transaction was created (post-Acquire)
	wrote     int
	unflushed int
	// undoLog mirrors the DATA entries in DRAM so abort can roll the
	// covered regions back without re-reading the journal. It aliases
	// undoBuf, which is sized for the largest possible transaction
	// (MaxTxEntries minus the START and COMMIT slots), so recording undo
	// never allocates.
	undoLog []jentry
	undoBuf [MaxTxEntries - 2]jentry
	// scratch is the wire-encoding buffer reused by every append.
	scratch [EntrySize]byte
}

// begin starts a transaction in cpu's journal, reserving MaxTxEntries
// entries (§3.6: "every journal transaction reserves the maximum number of
// log entries that it requires ... before starting").
func (fs *FS) beginTx(ctx *sim.Ctx, cpu int) *txn {
	j := fs.journals[cpu]
	// Serialise transactions on this journal: holds both the host mutex
	// and the virtual-time resource until commit.
	j.res.Acquire(ctx)
	entries := fs.g.journalEntries()
	if j.tail+MaxTxEntries > entries {
		// Not enough contiguous room: wrap to the start. Transactions never
		// straddle the wrap point, which keeps recovery single-run. The
		// header is persisted only here (and at format time), so the
		// common-case commit stays header-free.
		j.tail = 1
		j.wrap++
		j.writeHeader(ctx, atomic.LoadUint64(&fs.nextTxID))
		fs.dev.Fence(ctx)
	}
	// §3.6: the shared transaction ID is an atomic counter incremented on
	// every transaction create, unique across all per-CPU journals.
	id := atomic.AddUint64(&fs.nextTxID, 1)
	tx := &txn{j: j, id: id, opened: ctx.Now()}
	tx.undoLog = tx.undoBuf[:0]
	// The START entry is the first of a fresh reservation; it cannot
	// overflow.
	_ = tx.append(ctx, &jentry{typ: entryStart, wrap: j.wrap, txid: id})
	ctx.Counters.JournalNS += ctx.Now() - tx.opened
	return tx
}

// append writes one entry into the transaction's reservation. The last
// reserved slot is held back for the COMMIT record, so an oversized
// transaction fails with ErrTxOverflow while it can still be resolved.
func (tx *txn) append(ctx *sim.Ctx, e *jentry) error {
	j := tx.j
	limit := MaxTxEntries - 1
	if e.typ == entryCommit {
		limit = MaxTxEntries
	}
	if tx.wrote >= limit {
		return fmt.Errorf("%w (%d entries)", ErrTxOverflow, MaxTxEntries)
	}
	b := tx.scratch[:]
	encodeEntryTo(b, e)
	addr := j.entryAddr(j.tail)
	j.fs.dev.Write(ctx, b, addr)
	ctx.Counters.JournalBytes += EntrySize
	j.tail++
	tx.wrote++
	tx.unflushed++
	return nil
}

// flushEntries flushes the journal entries appended since the last flush
// (one clwb pass over the contiguous run — cheaper than per-entry flushes).
func (tx *txn) flushEntries(ctx *sim.Ctx) {
	if tx.unflushed == 0 {
		return
	}
	start := tx.j.entryAddr(tx.j.tail - int64(tx.unflushed))
	tx.j.fs.dev.Flush(ctx, start, int64(tx.unflushed)*EntrySize)
	tx.unflushed = 0
}

// undo records the current contents of [addr, addr+n) so a crash before
// commit rolls the region back. n may exceed undoBytes; the range is split
// across entries. Call undo before modifying the region: the entries are
// fenced before undo returns, because an in-place update must never become
// durable ahead of its undo record.
func (tx *txn) undo(ctx *sim.Ctx, addr int64, n int) error {
	t0 := ctx.Now()
	defer func() { ctx.Counters.JournalNS += ctx.Now() - t0 }()
	for n > 0 {
		k := n
		if k > undoBytes {
			k = undoBytes
		}
		e := jentry{typ: entryData, n: uint8(k), wrap: tx.j.wrap, txid: tx.id, addr: addr}
		// The old contents come off the media; a poisoned line here means
		// the metadata about to be overwritten is unreadable, so the
		// operation must fail with EIO rather than log garbage. Reading
		// straight into the entry's data array skips a scratch allocation.
		if err := tx.j.fs.dev.ReadChecked(ctx, e.data[:k], addr); err != nil {
			return err
		}
		if err := tx.append(ctx, &e); err != nil {
			return err
		}
		tx.undoLog = append(tx.undoLog, e)
		addr += int64(k)
		n -= k
	}
	tx.flushEntries(ctx)
	tx.j.fs.dev.Fence(ctx)
	return nil
}

// commit makes the transaction durable and reclaims its space. The caller
// must have flushed+fenced all its in-place updates first (undo journaling:
// COMMIT durable implies the updates are durable). The journal header is
// NOT rewritten per transaction — space reclamation is logical (the DRAM
// tail advances; recovery scans forward from the last persisted header and
// ignores committed transactions).
func (tx *txn) commit(ctx *sim.Ctx) {
	sp := ctx.StartSpan("journal.commit")
	t0 := ctx.Now()
	j := tx.j
	j.fs.dev.Fence(ctx) // order in-place updates before COMMIT
	// The COMMIT slot is reserved by append's limit; this cannot fail.
	_ = tx.append(ctx, &jentry{typ: entryCommit, wrap: j.wrap, txid: tx.id})
	tx.flushEntries(ctx)
	j.fs.dev.Fence(ctx)
	ctx.Counters.JournalCommits++
	ctx.Counters.JournalNS += ctx.Now() - t0
	j.fs.notifyCommit(tx.id)
	j.res.Release(ctx)
	ctx.EndSpan(sp)
}

// abort rolls the transaction back: every journaled region is restored
// from the in-DRAM undo log in reverse order, then a COMMIT entry marks
// the transaction resolved (its net effect is nothing, so recovery must
// not roll it back again — the journaled regions may be rewritten by later
// transactions).
func (tx *txn) abort(ctx *sim.Ctx) {
	t0 := ctx.Now()
	defer func() { ctx.Counters.JournalNS += ctx.Now() - t0 }()
	j := tx.j
	for i := len(tx.undoLog) - 1; i >= 0; i-- {
		e := tx.undoLog[i]
		j.fs.dev.Write(ctx, e.data[:e.n], e.addr)
		j.fs.dev.Flush(ctx, e.addr, int64(e.n))
	}
	j.fs.dev.Fence(ctx)
	_ = tx.append(ctx, &jentry{typ: entryCommit, wrap: j.wrap, txid: tx.id})
	tx.flushEntries(ctx)
	j.fs.dev.Fence(ctx)
	ctx.Counters.JournalAborts++
	j.fs.notifyCommit(tx.id)
	j.res.Release(ctx)
}

// uncommittedTx describes one in-flight transaction found during recovery.
type uncommittedTx struct {
	txid uint64
	undo []jentry // DATA entries in append order
}

// scanJournal walks the journal forward from the last persisted header
// (written at format and wrap time only) and returns the trailing
// uncommitted transaction, if any, plus the largest TxID observed. A
// media error on the header or an entry ends the scan with the error; the
// caller decides whether to degrade.
func (j *journal) scanJournal() (*uncommittedTx, uint64, error) {
	wrap, tail, lastCommitted, hdrErr := j.readHeader()
	if hdrErr != nil {
		return nil, 0, hdrErr
	}
	entries := j.fs.g.journalEntries()
	var scanErr error
	read := func(slot int64) (jentry, bool) {
		b := make([]byte, EntrySize)
		if err := j.fs.dev.ReadAtChecked(b, j.entryAddr(slot)); err != nil {
			scanErr = err
			return jentry{}, false
		}
		return decodeEntry(b)
	}
	var maxSeen uint64
	tryRun := func(start int64, expectWrap uint32) *uncommittedTx {
		var tx *uncommittedTx
		for slot := start; slot < entries; slot++ {
			e, ok := read(slot)
			if !ok || e.wrap != expectWrap || e.txid <= lastCommitted {
				break
			}
			if e.txid > maxSeen {
				maxSeen = e.txid
			}
			switch e.typ {
			case entryStart:
				tx = &uncommittedTx{txid: e.txid}
			case entryData:
				if tx != nil && e.txid == tx.txid {
					tx.undo = append(tx.undo, e)
				}
			case entryCommit:
				if tx != nil && e.txid == tx.txid {
					tx = nil // complete transaction: nothing to roll back
				}
			}
		}
		return tx
	}
	if tail >= 1 && tail <= entries {
		if tx := tryRun(tail, wrap); tx != nil {
			return tx, maxSeen, scanErr
		}
		// The in-flight transaction may have started right after a wrap
		// whose header write did not persist.
		if tx := tryRun(1, wrap+1); tx != nil {
			return tx, maxSeen, scanErr
		}
		return nil, maxSeen, scanErr
	}
	return nil, maxSeen, scanErr
}

// recoverJournals rolls back every uncommitted transaction across all
// per-CPU journals, in descending global TxID order (§3.6, "Journal
// Recovery"). Returns the number of transactions rolled back. A journal
// whose entries are unreadable (media error) is skipped — its in-flight
// transaction cannot be rolled back safely — and the mount degrades to
// read-only with the error recorded.
func (fs *FS) recoverJournals(ctx *sim.Ctx) int {
	var pending []*uncommittedTx
	failed := make(map[int]bool)
	maxID := fs.nextTxID
	for _, j := range fs.journals {
		tx, seen, err := j.scanJournal()
		if err != nil {
			// The in-flight transaction (if any) cannot be rolled back
			// safely from a partial scan; leave the journal untouched so a
			// repaired mount can still see it, and degrade.
			failed[j.cpu] = true
			fs.degrade("journal %d unreadable during recovery: %v", j.cpu, err)
		} else if tx != nil {
			pending = append(pending, tx)
		}
		if seen > maxID {
			maxID = seen
		}
		// Charge the scan: reading the header plus up to MaxTxEntries.
		ctx.Counters.PMReadBytes += EntrySize
		ctx.Advance(fs.model.ReadLat64)
	}
	sort.Slice(pending, func(i, k int) bool { return pending[i].txid > pending[k].txid })
	for _, tx := range pending {
		// Apply undo records in reverse order.
		for i := len(tx.undo) - 1; i >= 0; i-- {
			e := tx.undo[i]
			fs.dev.Write(ctx, e.data[:e.n], e.addr)
			fs.dev.Flush(ctx, e.addr, int64(e.n))
		}
		fs.dev.Fence(ctx)
	}
	// Reset every journal: mark all transactions resolved.
	for _, p := range pending {
		if p.txid > maxID {
			maxID = p.txid
		}
	}
	fs.nextTxID = maxID
	for _, j := range fs.journals {
		if failed[j.cpu] {
			continue
		}
		j.tail = 1
		j.wrap++
		j.writeHeader(ctx, maxID)
	}
	fs.dev.Fence(ctx)
	return len(pending)
}

// initJournal prepares a fresh journal at mkfs time.
func (j *journal) format(ctx *sim.Ctx) {
	j.fs.dev.ZeroRange(j.base, JournalBlocks*BlockSize)
	j.tail = 1
	j.wrap = 1
	j.writeHeader(ctx, 0)
}

// loadJournal restores the DRAM cursor at mount: the header gives the
// start of the current wrap segment; the cursor is the first slot after
// the entries already written in this segment. A media error is returned
// so the mount can degrade; the cursor is left at a safe position (the
// journal will not be written in degraded mode).
func (j *journal) load() error {
	wrap, tail, _, err := j.readHeader()
	if err != nil {
		j.tail = 1
		j.wrap = 1
		return err
	}
	j.wrap = wrap
	j.tail = tail
	entries := j.fs.g.journalEntries()
	if j.tail < 1 || j.tail > entries {
		j.tail = 1
		j.wrap++
		return nil
	}
	b := make([]byte, EntrySize)
	for j.tail < entries {
		if err := j.fs.dev.ReadAtChecked(b, j.entryAddr(j.tail)); err != nil {
			return err
		}
		e, ok := decodeEntry(b)
		if !ok || e.wrap != j.wrap {
			break
		}
		j.tail++
	}
	return nil
}
