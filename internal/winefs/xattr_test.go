package winefs_test

import (
	"testing"

	"repro/internal/mmu"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

// TestDirectoryXattrInheritance covers §3.6's directory-level alignment
// attribute: files created directly inside a hinted directory inherit the
// hint, so even an rsync-style receiver doing small writes gets aligned
// extents.
func TestDirectoryXattrInheritance(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(512 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/incoming"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetPathXattr(ctx, "/incoming", vfs.XattrAligned, []byte("1")); err != nil {
		t.Fatal(err)
	}

	// rsync-style receive: many small sequential writes.
	f, err := fs.Create(ctx, "/incoming/restored")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.GetXattr(ctx, vfs.XattrAligned); !ok {
		t.Fatal("child did not inherit the directory's alignment attribute")
	}
	chunk := make([]byte, 32<<10)
	for off := int64(0); off < 4<<20; off += int64(len(chunk)) {
		if _, err := f.WriteAt(ctx, chunk, off); err != nil {
			t.Fatal(err)
		}
	}
	exts := f.Extents()
	for chunkOff := int64(0); chunkOff < 4<<20; chunkOff += mmu.HugePage {
		if _, ok := mmu.HugeEligible(exts, chunkOff); !ok {
			t.Fatalf("hinted file not hugepage-eligible at %d: %+v", chunkOff, exts)
		}
	}

	// A sibling directory without the hint gets hole-backed small files.
	if err := fs.Mkdir(ctx, "/plain"); err != nil {
		t.Fatal(err)
	}
	g, _ := fs.Create(ctx, "/plain/file")
	if _, ok := g.GetXattr(ctx, vfs.XattrAligned); ok {
		t.Fatal("unhinted directory leaked the attribute")
	}
}

// TestXattrSurvivesRemount: the hint is persistent metadata.
func TestXattrSurvivesRemount(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(256 << 20)
	fs, _ := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2})
	f, _ := fs.Create(ctx, "/hinted")
	if err := f.SetXattr(ctx, vfs.XattrAligned, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unmount(ctx); err != nil {
		t.Fatal(err)
	}
	rctx := sim.NewCtx(2, 0)
	rfs, err := winefs.Mount(rctx, dev, winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rfs.Open(rctx, "/hinted")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.GetXattr(rctx, vfs.XattrAligned); !ok {
		t.Fatal("alignment attribute lost across remount")
	}
}

// TestRsyncScenario is the paper's §3.6 end-to-end story: a file with
// aligned extents on partition A is copied (with its xattr) to partition
// B by a tool doing small writes; B's copy still gets aligned extents.
func TestRsyncScenario(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	devA := pmem.New(256 << 20)
	devB := pmem.New(256 << 20)
	fsA, _ := winefs.Mkfs(ctx, devA, winefs.Options{CPUs: 2})
	fsB, _ := winefs.Mkfs(ctx, devB, winefs.Options{CPUs: 2})

	src, _ := fsA.Create(ctx, "/big")
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	if _, err := src.WriteAt(ctx, payload, 0); err != nil {
		t.Fatal(err)
	}
	src.SetXattr(ctx, vfs.XattrAligned, []byte("1"))

	// "rsync": read source, create destination, copy the xattr first (as
	// rsync -X does), then stream in small chunks.
	dst, _ := fsB.Create(ctx, "/big")
	if val, ok := src.GetXattr(ctx, vfs.XattrAligned); ok {
		dst.SetXattr(ctx, vfs.XattrAligned, val)
	}
	buf := make([]byte, 16<<10)
	for off := int64(0); off < int64(len(payload)); off += int64(len(buf)) {
		if _, err := src.ReadAt(ctx, buf, off); err != nil {
			t.Fatal(err)
		}
		if _, err := dst.WriteAt(ctx, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	// The receiving partition allocated aligned extents despite the small
	// writes.
	exts := dst.Extents()
	for chunkOff := int64(0); chunkOff < 4<<20; chunkOff += mmu.HugePage {
		if _, ok := mmu.HugeEligible(exts, chunkOff); !ok {
			t.Fatalf("rsync'd file lost alignment at %d", chunkOff)
		}
	}
	// And the content survived.
	got := make([]byte, len(payload))
	if _, err := dst.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("content mismatch at %d", i)
		}
	}
}
