package winefs

import "repro/internal/pmem"

// Replication hooks. The journal stores undo records (old contents), so a
// replica cannot be built by shipping journal entries alone: the authoritative
// stream is the device's physical writes (pmem.WriteObserver). What the FS
// contributes is transaction boundaries: the commit hook fires once per
// resolved journal transaction — commit or abort — after its COMMIT entry is
// durable, letting a replicator emit an ordered commit barrier into the
// stream. Replica promotion needs no hook at all: it reuses the normal Mount
// recovery path (recoverJournals + rebuildFromScan) on the replicated image,
// exactly as a crashed primary would.

// CommitHook observes resolved journal transactions. It runs on the
// committing goroutine while the per-CPU journal is still held, so
// implementations must be fast and must not call back into the FS.
type CommitHook func(txid uint64)

// SetCommitHook installs (or, with nil, removes) the commit hook.
func (fs *FS) SetCommitHook(h CommitHook) {
	if h == nil {
		fs.commitHook.Store(nil)
		return
	}
	fs.commitHook.Store(&h)
}

func (fs *FS) notifyCommit(txid uint64) {
	if p := fs.commitHook.Load(); p != nil {
		(*p)(txid)
	}
}

// Device exposes the backing device (read-only use: replication, divergence
// checking, offline tooling).
func (fs *FS) Device() *pmem.Device { return fs.dev }
