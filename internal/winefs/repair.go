package winefs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/pmem"
)

// Repair is the offline repairing fsck (the last rung of the degradation
// ladder): it takes a WineFS image that a normal mount would refuse or
// degrade on — poisoned journal tails, unreadable inode slots, corrupt
// extent records, dangling dirents — and rewrites it into a mountable,
// structurally consistent image. The policy is conservative:
//
//   - readable uncommitted journal transactions are rolled back exactly as
//     mount recovery would; unreadable journals are cleared (their in-flight
//     transaction is lost, which the later structural passes then mend);
//   - every journal region is zeroed and re-formatted — zeroing is a
//     full-line store, so it also clears poison;
//   - unreadable inode slots are zeroed (the inode is lost; its storage is
//     reclaimed by the allocator scan at the next mount);
//   - an inode's extent list is truncated at the first unreadable or
//     out-of-range record (the tail of the file is lost, the head survives);
//   - unreadable dirent blocks are zeroed; dirents referencing dead inodes
//     are invalidated;
//   - live inodes no longer reachable from the root are quarantined into
//     /lost+found (created on demand) instead of being destroyed;
//   - link counts are recomputed;
//   - the serialised unmount freelist is invalidated so the next mount
//     rebuilds the allocator by scanning the (now consistent) inode tables;
//   - poison over *data* blocks is left alone: user data is never silently
//     zeroed — reads of those lines keep returning EIO until overwritten.
//
// Repair never panics on a corrupt image; it returns an error only when the
// superblock itself is unreadable or invalid (nothing on the device can be
// located without it).

// RepairReport summarises what Repair changed. Field names are stable JSON
// for `fsck -repair -json`.
type RepairReport struct {
	JournalsRolledBack int      `json:"journals_rolled_back"`
	JournalsCleared    []int    `json:"journals_cleared,omitempty"`
	InodesZeroed       []uint64 `json:"inodes_zeroed,omitempty"`
	ExtentsTruncated   []uint64 `json:"extents_truncated,omitempty"`
	DirentBlocksZeroed int      `json:"dirent_blocks_zeroed"`
	DirentsDropped     int      `json:"dirents_dropped"`
	Orphans            []uint64 `json:"orphans_quarantined,omitempty"`
	NlinksFixed        int      `json:"nlinks_fixed"`
	DataPoisonLines    int      `json:"data_poison_lines_left"`
	Notes              []string `json:"notes,omitempty"`
	PostErrors         []string `json:"post_errors,omitempty"`
	Clean              bool     `json:"clean"`
}

func (r *RepairReport) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// rnode is Repair's view of one live inode.
type rnode struct {
	ino      uint64
	typ      uint8
	flags    uint32
	size     int64
	nlink    uint32
	extents  []wextent
	extCount int   // surviving record count (== len(extents) slots on PM)
	indirect int64 // first indirect block, 0 = none
}

// Repair fixes dev in place and reports what it did. See the package-level
// policy comment above.
func Repair(dev *pmem.Device) (*RepairReport, error) {
	return RepairTiered(dev, 0)
}

// RepairTiered is Repair for a tiered image: file extents may also point
// into the slow region [slowBase, slowBase+slowBlocks) — the same block
// numbering CheckTiered accepts — and such records are kept rather than
// truncated as out-of-range. The slow device itself is not touched (its
// writes are durable and unpoisonable in this model); only the PM-side
// metadata referencing it is mended. slowBlocks = 0 repairs a pure-PM
// image.
func RepairTiered(dev *pmem.Device, slowBlocks int64) (*RepairReport, error) {
	rep := &RepairReport{}
	sbBuf := make([]byte, sbSize)
	if err := dev.ReadAtChecked(sbBuf, 0); err != nil {
		return nil, fmt.Errorf("winefs: superblock unreadable, cannot repair: %w", err)
	}
	sb := decodeSuperblock(sbBuf)
	if sb.magic != Magic {
		return nil, fmt.Errorf("winefs: bad superblock magic %#x, cannot repair", sb.magic)
	}
	if sb.totalBlocks*BlockSize > dev.Size() || sb.cpus <= 0 {
		return nil, fmt.Errorf("winefs: superblock geometry invalid (blocks=%d cpus=%d)", sb.totalBlocks, sb.cpus)
	}
	g := makeGeometry(sb.totalBlocks, int(sb.cpus), sb.inodesPerCPU)
	slowBase := (g.totalBlocks + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
	inSlow := func(blk, length int64) bool {
		return slowBlocks > 0 && blk >= slowBase && blk+length <= slowBase+slowBlocks
	}

	// Skeleton FS: just enough for the journal scan helpers. Never mounted,
	// never charged virtual time.
	skel := &FS{dev: dev, g: g, model: dev.Model()}
	skel.nextTxID = sb.nextTxID

	maxTxID := sb.nextTxID

	// Pass 1: journals. Roll back what is readable, clear what is not, and
	// re-format every journal region (zeroing clears poison).
	for c := 0; c < g.cpus; c++ {
		j := &journal{fs: skel, cpu: c, base: g.journalBase(c)}
		tx, seen, err := j.scanJournal()
		if seen > maxTxID {
			maxTxID = seen
		}
		switch {
		case err != nil:
			rep.JournalsCleared = append(rep.JournalsCleared, c)
			rep.notef("journal %d unreadable (%v): in-flight transaction discarded", c, err)
		case tx != nil:
			for i := len(tx.undo) - 1; i >= 0; i-- {
				e := tx.undo[i]
				dev.WriteAt(e.data[:e.n], e.addr)
			}
			if tx.txid > maxTxID {
				maxTxID = tx.txid
			}
			rep.JournalsRolledBack++
		}
		dev.ZeroRange(j.base, JournalBlocks*BlockSize)
		hdr := make([]byte, EntrySize)
		le := binary.LittleEndian
		le.PutUint32(hdr[0:], entryMagic)
		le.PutUint32(hdr[4:], 1) // wrap
		le.PutUint64(hdr[8:], 1) // tail
		le.PutUint64(hdr[16:], maxTxID)
		dev.WriteAt(hdr, j.base)
	}

	// Pass 2: inode tables. Zero unreadable slots, truncate extent lists at
	// the first bad record, and collect the survivors.
	inodes := map[uint64]*rnode{}
	blockOwner := map[int64]bool{}
	for c := 0; c < g.cpus; c++ {
		base := g.inodeTableBase(c)
		for s := int64(0); s < g.inodesPerCPU; s++ {
			slotAddr := base + s*InodeSize
			hdr := make([]byte, inoOffExtents)
			if err := dev.ReadAtChecked(hdr, slotAddr); err != nil {
				dev.ZeroRange(slotAddr, InodeSize)
				rep.InodesZeroed = append(rep.InodesZeroed, g.inoFor(c, s))
				continue
			}
			di := decodeInodeHeader(hdr)
			if di.magic != inodeMagic || di.typ == typeFree {
				continue
			}
			if di.typ != typeFile && di.typ != typeDir {
				dev.ZeroRange(slotAddr, InodeSize)
				rep.InodesZeroed = append(rep.InodesZeroed, g.inoFor(c, s))
				continue
			}
			ino := g.inoFor(c, s)
			node := &rnode{ino: ino, typ: di.typ, flags: di.flags, size: di.size, nlink: di.nlink, indirect: di.indirect}
			truncated := false
			indirect := []int64{}
			if di.indirect != 0 {
				if dev.CheckRange(di.indirect*BlockSize, BlockSize) != nil {
					truncated = true
					node.indirect = 0
				} else {
					indirect = append(indirect, di.indirect)
				}
			}
			buf := make([]byte, extentSize)
			n := int(di.extCount)
			for i := 0; i < n && !truncated; i++ {
				var addr int64
				if i < InlineExtents {
					addr = g.inodeAddr(ino) + inoOffExtents + int64(i)*extentSize
				} else {
					idx := i - InlineExtents
					chain := idx / extPerIndirect
					for len(indirect) <= chain && !truncated {
						last := indirect[len(indirect)-1]
						var pb [8]byte
						if err := dev.ReadAtChecked(pb[:], last*BlockSize); err != nil {
							truncated = true
							break
						}
						next := int64(binary.LittleEndian.Uint64(pb[:]))
						if next == 0 || dev.CheckRange(next*BlockSize, BlockSize) != nil {
							truncated = true
							break
						}
						indirect = append(indirect, next)
					}
					if truncated {
						break
					}
					addr = indirect[chain]*BlockSize + 8 + int64(idx%extPerIndirect)*extentSize
				}
				if err := dev.ReadAtChecked(buf, addr); err != nil {
					truncated = true
					break
				}
				e := decodeExtent(buf)
				pmOK := e.blk >= g.dataStart && e.blk+e.length <= g.totalBlocks
				// Slow-tier extents are legal for files only; directory and
				// indirect blocks are PM by construction, so a dir record
				// pointing past the device is corruption like any other.
				slowOK := di.typ == typeFile && inSlow(e.blk, e.length)
				if e.length <= 0 || (!pmOK && !slowOK) {
					truncated = true
					break
				}
				node.extents = append(node.extents, e)
				node.extCount++
			}
			if truncated {
				rep.ExtentsTruncated = append(rep.ExtentsTruncated, ino)
				// Clamp the size to the mapped range that survived.
				var maxByte int64
				for _, e := range node.extents {
					if end := (e.fileBlk + e.length) * BlockSize; end > maxByte {
						maxByte = end
					}
				}
				if node.size > maxByte {
					node.size = maxByte
				}
			}
			for _, e := range node.extents {
				for b := e.blk; b < e.blk+e.length; b++ {
					blockOwner[b] = true
				}
			}
			for _, ib := range indirect {
				blockOwner[ib] = true
			}
			inodes[ino] = node
		}
	}

	// Re-establish the root if it was lost.
	if inodes[1] == nil || inodes[1].typ != typeDir {
		inodes[1] = &rnode{ino: 1, typ: typeDir, nlink: 2}
		rep.notef("root inode recreated")
	}

	// Pass 3: directory entries. Zero unreadable blocks, drop entries that
	// point at dead inodes, and record the survivors as graph edges.
	children := map[uint64][]uint64{} // dir ino -> child inos
	for _, node := range inodes {
		if node.typ != typeDir {
			continue
		}
		buf := make([]byte, BlockSize)
		for _, e := range node.extents {
			for b := e.blk; b < e.blk+e.length; b++ {
				if err := dev.ReadAtChecked(buf, b*BlockSize); err != nil {
					dev.ZeroRange(b*BlockSize, BlockSize)
					rep.DirentBlocksZeroed++
					continue
				}
				for off := int64(0); off < BlockSize; off += DirentSize {
					child, _, valid := decodeDirent(buf[off : off+DirentSize])
					if !valid || child == 0 {
						continue
					}
					if inodes[child] == nil || child == node.ino {
						dev.WriteAt([]byte{0}, b*BlockSize+off+8)
						rep.DirentsDropped++
						continue
					}
					children[node.ino] = append(children[node.ino], child)
				}
			}
		}
	}

	// Pass 4: reachability from the root; quarantine orphans in /lost+found.
	reachable := map[uint64]bool{1: true}
	queue := []uint64{1}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, ch := range children[cur] {
			if !reachable[ch] {
				reachable[ch] = true
				queue = append(queue, ch)
			}
		}
	}
	// Only quarantine orphan *roots*: an orphan that is a child of another
	// orphan directory becomes reachable through its parent's lost+found
	// link and must not be linked twice.
	orphanChild := map[uint64]bool{}
	for ino, node := range inodes {
		if reachable[ino] || node.typ != typeDir {
			continue
		}
		for _, ch := range children[ino] {
			orphanChild[ch] = true
		}
	}
	var orphans []uint64
	for ino := range inodes {
		if !reachable[ino] && !orphanChild[ino] {
			orphans = append(orphans, ino)
		}
	}
	sort.Slice(orphans, func(i, k int) bool { return orphans[i] < orphans[k] })
	if len(orphans) > 0 {
		lf, err := quarantine(dev, g, inodes, children, blockOwner, orphans)
		if err != nil {
			rep.notef("quarantine incomplete: %v", err)
		} else {
			rep.Orphans = orphans
			rep.notef("%d orphans linked under /lost+found (ino %d)", len(orphans), lf)
		}
	}

	// Pass 5: recompute link counts. A file's nlink is its reference count;
	// a directory's is 2 plus its child directories.
	refcount := map[uint64]int{}
	for _, chs := range children {
		for _, ch := range chs {
			refcount[ch]++
		}
	}
	for ino, node := range inodes {
		want := uint32(refcount[ino])
		if node.typ == typeDir {
			want = 2
			for _, ch := range children[ino] {
				if inodes[ch] != nil && inodes[ch].typ == typeDir {
					want++
				}
			}
		}
		if node.nlink != want {
			node.nlink = want
			rep.NlinksFixed++
		}
		writeRnodeHeader(dev, g, node)
	}

	// Pass 6: invalidate the serialised freelist so the next mount rebuilds
	// the allocator from the inode tables we just made consistent.
	dev.ZeroRange(g.unmountStart*BlockSize, g.unmountBlocks*BlockSize)

	// Pass 7: superblock — dirty, so the next mount runs the scan path, with
	// the TxID high-water mark preserved.
	sb.clean = false
	sb.nextTxID = maxTxID
	dev.WriteAt(sb.encode(), 0)

	// Residual poison over the data area is deliberate: those bytes are user
	// data we cannot reconstruct, and EIO is the honest answer until the
	// application overwrites them.
	for _, line := range dev.PoisonedLines(0, dev.Size()) {
		if line >= g.dataStart*BlockSize {
			rep.DataPoisonLines++
		}
	}

	post := CheckTiered(dev, slowBlocks)
	rep.PostErrors = post.Errors
	rep.Clean = post.OK()
	return rep, nil
}

// writeRnodeHeader persists a repaired inode header (and nothing else: the
// surviving extent records are already on PM).
func writeRnodeHeader(dev *pmem.Device, g geometry, node *rnode) {
	di := dinode{
		magic:    inodeMagic,
		typ:      node.typ,
		flags:    node.flags,
		size:     node.size,
		nlink:    node.nlink,
		extCount: uint32(node.extCount),
		indirect: node.indirect,
	}
	dev.WriteAt(di.encodeHeader(), g.inodeAddr(node.ino))
}

// quarantine links every orphan under /lost+found, creating the directory
// (and growing the root) from free resources when needed. Returns the
// /lost+found inode number.
func quarantine(dev *pmem.Device, g geometry, inodes map[uint64]*rnode, children map[uint64][]uint64, blockOwner map[int64]bool, orphans []uint64) (uint64, error) {
	// Find (or create) /lost+found directly under the root.
	root := inodes[1]
	var lf *rnode
	// An existing reachable child named lost+found cannot be identified here
	// (names were not kept); always create a fresh one — repair runs are
	// rare and each gets its own quarantine directory only if orphans exist.
	slot, err := freeInodeSlot(dev, g)
	if err != nil {
		return 0, err
	}
	lf = &rnode{ino: slot, typ: typeDir, nlink: 2}
	inodes[slot] = lf

	// Helper: allocate a free data block (not owned by any surviving inode).
	nextBlk := g.dataStart
	allocBlk := func() (int64, error) {
		for ; nextBlk < g.totalBlocks; nextBlk++ {
			if !blockOwner[nextBlk] {
				blockOwner[nextBlk] = true
				b := nextBlk
				nextBlk++
				dev.ZeroRange(b*BlockSize, BlockSize)
				return b, nil
			}
		}
		return 0, fmt.Errorf("no free block for quarantine")
	}

	// Helper: append a dirent to a directory node, reusing the first free
	// slot in its existing blocks or growing it by one block. Extent records
	// go inline (repair needs a handful of blocks, well within
	// InlineExtents).
	appendDirent := func(dir *rnode, ino uint64, name string) error {
		buf := make([]byte, DirentSize)
		for _, e := range dir.extents {
			for b := e.blk; b < e.blk+e.length; b++ {
				for off := int64(0); off < BlockSize; off += DirentSize {
					addr := b*BlockSize + off
					if err := dev.ReadAtChecked(buf, addr); err != nil {
						continue
					}
					cino, _, valid := decodeDirent(buf)
					if valid && cino != 0 {
						continue
					}
					var db [DirentSize]byte
					encodeDirent(db[:], ino, name)
					dev.WriteAt(db[:], addr)
					children[dir.ino] = append(children[dir.ino], ino)
					return nil
				}
			}
		}
		if dir.extCount >= InlineExtents {
			return fmt.Errorf("quarantine dir full")
		}
		b, err := allocBlk()
		if err != nil {
			return err
		}
		var fileBlk int64
		if n := len(dir.extents); n > 0 {
			last := dir.extents[n-1]
			fileBlk = last.fileBlk + last.length
		}
		e := wextent{fileBlk: fileBlk, blk: b, length: 1}
		dir.extents = append(dir.extents, e)
		var eb [extentSize]byte
		encodeExtent(eb[:], e)
		dev.WriteAt(eb[:], g.inodeAddr(dir.ino)+inoOffExtents+int64(dir.extCount)*extentSize)
		dir.extCount++
		if end := (fileBlk + 1) * BlockSize; end > dir.size {
			dir.size = end
		}
		var db [DirentSize]byte
		encodeDirent(db[:], ino, name)
		dev.WriteAt(db[:], b*BlockSize)
		children[dir.ino] = append(children[dir.ino], ino)
		return nil
	}

	// Quarantine into a fresh directory: ignore the root's existing layout
	// and append the lost+found entry through the same growth helper.
	if err := appendDirent(root, lf.ino, "lost+found"); err != nil {
		return 0, err
	}
	for _, o := range orphans {
		if err := appendDirent(lf, o, fmt.Sprintf("lost+%d", o)); err != nil {
			return lf.ino, err
		}
	}
	return lf.ino, nil
}

// freeInodeSlot finds a free inode slot (scanning every per-CPU table) for
// repair-time directory creation.
func freeInodeSlot(dev *pmem.Device, g geometry) (uint64, error) {
	hdr := make([]byte, inoOffExtents)
	for c := 0; c < g.cpus; c++ {
		base := g.inodeTableBase(c)
		for s := int64(0); s < g.inodesPerCPU; s++ {
			if err := dev.ReadAtChecked(hdr, base+s*InodeSize); err != nil {
				continue
			}
			di := decodeInodeHeader(hdr)
			if di.magic != inodeMagic || di.typ == typeFree {
				if g.inoFor(c, s) == 1 {
					continue // never hand out the root slot
				}
				dev.ZeroRange(base+s*InodeSize, InodeSize)
				return g.inoFor(c, s), nil
			}
		}
	}
	return 0, fmt.Errorf("no free inode slot for quarantine")
}

// JournalRegion returns the byte range [lo, hi) of CPU c's journal on a
// formatted device. Fault-injection harnesses use it to aim poison and torn
// writes at journal metadata. It returns (0, 0) when the superblock is
// unreadable or the CPU index is out of range.
func JournalRegion(dev *pmem.Device, c int) (lo, hi int64) {
	sbBuf := make([]byte, sbSize)
	if err := dev.ReadAtChecked(sbBuf, 0); err != nil {
		return 0, 0
	}
	sb := decodeSuperblock(sbBuf)
	if sb.magic != Magic || c < 0 || c >= int(sb.cpus) {
		return 0, 0
	}
	g := makeGeometry(sb.totalBlocks, int(sb.cpus), sb.inodesPerCPU)
	lo = g.journalBase(c)
	return lo, lo + JournalBlocks*BlockSize
}
