package winefs_test

import (
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/geriatrix"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

// TestAblationAlignment removes the aligned-extent pool and verifies the
// design claim it isolates: without alignment awareness, an aged WineFS
// loses its aligned free space like any other file system, and a large
// file can no longer be mapped with hugepages.
func TestAblationAlignment(t *testing.T) {
	frac := map[bool]float64{}
	huge := map[bool]int64{}
	for _, ablate := range []bool{false, true} {
		ctx := sim.NewCtx(1, 0)
		dev := pmem.New(512 << 20)
		fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4, AblateAlignment: ablate})
		if err != nil {
			t.Fatal(err)
		}
		ager := geriatrix.New(fs, geriatrix.Config{TargetUtil: 0.7, ChurnFactor: 1, Seed: 5})
		if _, err := ager.Run(ctx); err != nil {
			t.Fatal(err)
		}
		frac[ablate] = alloc.AlignedFreeFraction(fs.FreeExtents())

		f, err := fs.Create(ctx, "/probe")
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Fallocate(ctx, 0, 8<<20); err != nil {
			t.Fatal(err)
		}
		m, err := f.Mmap(ctx, 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		bench := sim.NewCtx(2, 0)
		bench.AdvanceTo(ctx.Now())
		if err := m.Touch(bench, 0, 8<<20, true); err != nil {
			t.Fatal(err)
		}
		huge[ablate] = bench.Counters.HugeFaults
	}
	if frac[true] > frac[false]/2 {
		t.Errorf("ablated allocator should fragment: with=%.2f without=%.2f", frac[false], frac[true])
	}
	if huge[false] == 0 {
		t.Error("full WineFS should map the probe with hugepages")
	}
	if huge[true] != 0 {
		t.Errorf("ablated WineFS got %d hugepage faults — alignment should be gone", huge[true])
	}
}

// TestAblationSingleJournal pins every transaction to one journal and
// verifies the §3.4 concurrency claim: metadata throughput stops scaling.
func TestAblationSingleJournal(t *testing.T) {
	perIter := map[bool]int64{}
	for _, ablate := range []bool{false, true} {
		dev := pmem.New(512 << 20)
		setup := sim.NewCtx(1, 0)
		fs, err := winefs.Mkfs(setup, dev, winefs.Options{CPUs: 8, AblateSingleJournal: ablate})
		if err != nil {
			t.Fatal(err)
		}
		for th := 0; th < 8; th++ {
			if err := fs.Mkdir(setup, fmt.Sprintf("/d%d", th)); err != nil {
				t.Fatal(err)
			}
		}
		end := setup.Now()
		done := make(chan int64, 8)
		for th := 0; th < 8; th++ {
			go func(th int) {
				ctx := sim.NewCtx(10+th, th)
				ctx.AdvanceTo(end)
				for i := 0; i < 100; i++ {
					path := fmt.Sprintf("/d%d/f%d", th, i)
					f, err := fs.Create(ctx, path)
					if err != nil {
						panic(err)
					}
					f.Append(ctx, make([]byte, 4096))
					fs.Unlink(ctx, path)
				}
				done <- ctx.Now() - end
			}(th)
		}
		var maxNS int64
		for i := 0; i < 8; i++ {
			if ns := <-done; ns > maxNS {
				maxNS = ns
			}
		}
		perIter[ablate] = maxNS / 100
	}
	// The single journal serialises all 8 threads' transactions: expect a
	// clear slowdown versus per-CPU journals.
	if perIter[true] < perIter[false]*2 {
		t.Errorf("single journal not a bottleneck: per-CPU=%dns single=%dns",
			perIter[false], perIter[true])
	}
}

// TestAblationCorrectness: both ablated variants must still be correct
// file systems (content integrity and crash recovery intact).
func TestAblationCorrectness(t *testing.T) {
	for _, opts := range []winefs.Options{
		{CPUs: 2, AblateAlignment: true},
		{CPUs: 2, AblateSingleJournal: true},
	} {
		ctx := sim.NewCtx(1, 0)
		dev := pmem.New(128 << 20)
		fs, err := winefs.Mkfs(ctx, dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := fs.Create(ctx, "/x")
		data := []byte("ablation does not break correctness")
		f.WriteAt(ctx, data, 0)
		// Crash (no unmount) and remount.
		rctx := sim.NewCtx(2, 0)
		rfs, err := winefs.Mount(rctx, dev, opts)
		if err != nil {
			t.Fatal(err)
		}
		g, err := rfs.Open(rctx, "/x")
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(data))
		g.ReadAt(rctx, buf, 0)
		if string(buf) != string(data) {
			t.Fatalf("content lost: %q", buf)
		}
		if rep := winefs.Check(dev); !rep.OK() {
			t.Fatalf("fsck: %v", rep.Errors)
		}
	}
}
