package winefs

import (
	"sort"

	"repro/internal/sim"
)

// Online background defragmentation (§3.5): unlike reactive rewriting —
// which fixes one fragmented file because somebody mmapped it — the
// defragmenter works from the allocator's point of view. It scans the
// per-CPU hole pools for hugepage chunks that are only partially free,
// migrates the remaining live blocks elsewhere (copy-on-write through
// the journal, exactly like a rewrite), and lets the hole-merge path
// promote the emptied chunk back into the aligned FIFO. A held chunk is
// invisible to foreground allocation for the duration, so the re-formed
// extent cannot be re-fragmented under the defragmenter's feet.
//
// The pass then drains the reactive-rewrite queue — the re-formed
// aligned extents are exactly what those rewrites were waiting for —
// and notifies live mappings so they re-promote to hugepages without
// waiting for a refault.
//
// All device work is charged to the caller's thread context; a Pacer
// bounds the duty cycle so the background thread steals a configurable
// fraction of device bandwidth instead of the 25-40% an unthrottled
// defragmenter takes from foreground mmap traffic (§4).

// DefragStats summarises one defragmentation pass.
type DefragStats struct {
	ChunksScanned  int64 // candidate chunks examined
	MigratedBlocks int64 // live blocks copied out of fragmented chunks
	MigratedBytes  int64 // same, in bytes
	Recovered2M    int64 // hugepage extents re-formed
	Rewrites       int   // queued reactive rewrites drained by this pass
	SkippedBusy    int64 // candidates abandoned (layout changed / migration failed)
	SkippedMeta    int64 // candidates pinned by metadata blocks
}

// Clean reports whether the pass made no progress — nothing migrated,
// nothing recovered, nothing rewritten. (Chunks may still have been
// scanned: meta-pinned candidates are rescanned forever and do not
// count as work.)
func (s DefragStats) Clean() bool {
	return s.MigratedBlocks == 0 && s.Recovered2M == 0 && s.Rewrites == 0
}

// DefragOptions tunes one pass.
type DefragOptions struct {
	// Pacer throttles the migration copies to a duty-cycle budget.
	// nil runs unthrottled.
	Pacer *sim.Pacer
	// MaxChunks caps candidate chunks per pass (0 = 32).
	MaxChunks int
	// MaxMigrateBlocks caps live blocks moved per pass (0 = 8192, one
	// aligned pool's worth of copying).
	MaxMigrateBlocks int64
}

type defragCand struct {
	base int64 // chunk base block
	free int64 // free blocks currently inside the chunk
}

// DefragPass runs one bounded pass of the online defragmenter. Passes
// serialise on fs.defragMu; foreground operations interleave freely —
// each migration takes the same per-inode locks a writer would. The
// per-group cursor checkpoints scan progress in DRAM; a crash mid-pass
// loses only the cursor (each migration is individually journaled), and
// the next mount simply rescans.
func (fs *FS) DefragPass(ctx *sim.Ctx, opt DefragOptions) (DefragStats, error) {
	var st DefragStats
	if err := fs.writable(); err != nil {
		return st, err
	}
	fs.defragMu.Lock()
	defer fs.defragMu.Unlock()
	if fs.unmounted.Load() {
		return st, nil
	}
	sp := ctx.StartSpan("defrag.pass")
	defer ctx.EndSpan(sp)

	maxChunks := opt.MaxChunks
	if maxChunks <= 0 {
		maxChunks = 32
	}
	budget := opt.MaxMigrateBlocks
	if budget <= 0 {
		budget = 8192
	}
	if len(fs.defragCursor) != len(fs.alloc.groups) {
		fs.defragCursor = make([]int64, len(fs.alloc.groups))
	}

	for gi, g := range fs.alloc.groups {
		if g.noPromote {
			continue // alignment ablation: nothing to re-form
		}
		if fs.unmounted.Load() || fs.writable() != nil {
			break
		}
		if st.MigratedBlocks >= budget || st.ChunksScanned >= int64(maxChunks) {
			break
		}
		cands, next := g.defragCandidates(fs.defragCursor[gi], maxChunks-int(st.ChunksScanned))
		fs.defragCursor[gi] = next
		for _, c := range cands {
			if fs.unmounted.Load() || fs.writable() != nil {
				break
			}
			if st.MigratedBlocks >= budget {
				break
			}
			fs.defragChunk(ctx, g, c.base, opt.Pacer, &st)
		}
	}

	// Phase 2: the re-formed aligned extents are what the reactive
	// rewrite queue has been waiting for — drain it on the same budget,
	// re-promoting live mappings as each file lands aligned.
	n := fs.runRewriter(ctx, opt.Pacer)
	st.Rewrites += n
	ctx.Counters.DefragRewrites += int64(n)
	ctx.Counters.DefragPasses++
	return st, nil
}

// defragCandidates collects up to limit partially-free hugepage chunks,
// scanning from the cursor block for fairness across passes, ordered
// cheapest-first (most free blocks = fewest live blocks to migrate).
// Returns the candidates and the new cursor.
func (g *group) defragCandidates(cursor int64, limit int) ([]defragCand, int64) {
	if limit <= 0 {
		return nil, cursor
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// Tally free blocks per chunk. The hole invariant (no hole fully
	// contains an aligned chunk) means every chunk a hole touches is
	// partially free — exactly the §3.5 targets.
	free := make(map[int64]int64)
	g.holes.Ascend(func(hs, hl int64) bool {
		for b := hs / BlocksPerHuge * BlocksPerHuge; b < hs+hl; b += BlocksPerHuge {
			lo, hi := max64(hs, b), min64(hs+hl, b+BlocksPerHuge)
			if lo < hi {
				free[b] += hi - lo
			}
		}
		return true
	})
	if len(free) == 0 {
		return nil, 0
	}
	bases := make([]int64, 0, len(free))
	for b := range free {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	// Rotate so the scan resumes at the cursor, then take the window.
	start := sort.Search(len(bases), func(i int) bool { return bases[i] >= cursor })
	var window []int64
	for i := 0; i < len(bases) && len(window) < limit; i++ {
		window = append(window, bases[(start+i)%len(bases)])
	}
	next := int64(0)
	if len(window) > 0 {
		next = window[len(window)-1] + BlocksPerHuge
	}
	out := make([]defragCand, 0, len(window))
	for _, b := range window {
		out = append(out, defragCand{base: b, free: free[b]})
	}
	// Cheapest first: chunks that are mostly free re-form a hugepage
	// extent with the least copying.
	sort.Slice(out, func(i, j int) bool { return out[i].free > out[j].free })
	return out, next
}

// defragChunk reclaims one candidate chunk: hold its free space, migrate
// the live blocks out, release the hold (which promotes the chunk into
// the aligned FIFO if it came back fully free).
func (fs *FS) defragChunk(ctx *sim.Ctx, g *group, base int64, pacer *sim.Pacer, st *DefragStats) {
	st.ChunksScanned++
	ctx.Counters.DefragChunksScanned++
	sp := ctx.StartSpan("defrag.chunk")
	defer ctx.EndSpan(sp)

	release := func() bool {
		g.mu.Lock()
		full := g.releaseHoldLocked()
		g.mu.Unlock()
		return full
	}

	g.mu.Lock()
	held := g.holdChunkLocked(base)
	g.mu.Unlock()
	ctx.Advance(allocCost)
	if held <= 0 || held >= BlocksPerHuge {
		// The layout changed between scan and hold: the chunk is now
		// fully allocated (nothing to recover) or fully free (already
		// promoted). Releasing an empty hold is a no-op either way.
		release()
		st.SkippedBusy++
		ctx.Counters.DefragSkippedBusy++
		return
	}
	end := base + BlocksPerHuge

	// Owner scan — AFTER the hold, so no new allocation can land inside
	// the chunk and the owner set is frozen. Metadata blocks (directory
	// extents, indirect extent blocks) are position-dependent on PM and
	// cannot be migrated by replaceRange: they pin the chunk.
	var owners []*inode
	meta := false
	for _, ino := range fs.snapshotInodes() {
		ino.mu.RLock()
		overlaps := false
		for _, e := range ino.extents {
			if e.blk < end && e.blk+e.length > base {
				overlaps = true
				break
			}
		}
		for _, b := range ino.indirect {
			if b >= base && b < end {
				meta = true
			}
		}
		if overlaps && ino.typ != typeFile {
			meta = true
		}
		ino.mu.RUnlock()
		if overlaps && !meta {
			owners = append(owners, ino)
		}
		if meta {
			break
		}
	}
	if meta {
		release()
		st.SkippedMeta++
		ctx.Counters.DefragSkippedMeta++
		return
	}
	// The shard snapshot iterates a map; fix the migration order so a
	// pass is reproducible for a given image.
	sort.Slice(owners, func(i, j int) bool { return owners[i].ino < owners[j].ino })

	// Feasibility: the chunk's live blocks must fit in hole space OUTSIDE
	// the hold (migration never splits aligned extents — that would just
	// move the fragmentation). Without this check a pass that runs out of
	// hole space mid-chunk copies data, recovers nothing, and consumes
	// the holes a later pass would have needed: perpetual churn instead
	// of convergence. Best-effort under concurrency (foreground
	// allocations can still race the migration), exact when quiescent.
	var avail int64
	for _, og := range fs.alloc.groups {
		og.mu.Lock()
		avail += og.holeBlocks.Load()
		og.mu.Unlock()
	}
	if avail < BlocksPerHuge-held {
		release()
		st.SkippedBusy++
		ctx.Counters.DefragSkippedBusy++
		return
	}

	ok := true
	for _, ino := range owners {
		if !fs.migrateOut(ctx, ino, base, end, pacer, st) {
			ok = false
			break
		}
	}
	if release() {
		st.Recovered2M++
		ctx.Counters.DefragRecovered2M++
	} else if !ok {
		st.SkippedBusy++
		ctx.Counters.DefragSkippedBusy++
	}
}

// migrateOut copies ino's blocks that live inside [base, end) to freshly
// allocated space outside the chunk and swaps the extent map, one
// journaled replaceRange per run. Returns false if the chunk could not
// be fully vacated (allocation failure or media fault).
func (fs *FS) migrateOut(ctx *sim.Ctx, ino *inode, base, end int64, pacer *sim.Pacer, st *DefragStats) bool {
	h := fs.locks.Lock(ctx, ino.ino)
	ok := func() bool {
		ino.mu.Lock()
		defer ino.mu.Unlock()
		if ino.typ != typeFile {
			// Unlinked (or retyped) since the scan: its blocks were
			// freed — and diverted into the hold — already.
			return true
		}
		// Re-verify the overlap under the lock: a concurrent truncate or
		// CoW may have vacated some or all of the chunk on its own.
		type runSpan struct{ fileLo, n int64 }
		var runs []runSpan
		for _, e := range ino.extents {
			lo, hi := max64(e.blk, base), min64(e.blk+e.length, end)
			if lo < hi {
				runs = append(runs, runSpan{fileLo: e.fileBlk + lo - e.blk, n: hi - lo})
			}
		}
		for _, r := range runs {
			burst := ctx.Now()
			newExts, got := fs.alloc.allocHoles(ctx, fs.g.cpuOfBlock(base), r.n)
			if !got {
				return false // no hole space to migrate into
			}
			buf := make([]byte, r.n*BlockSize)
			if err := fs.readRangeLocked(ctx, ino, buf, r.fileLo*BlockSize); err != nil {
				for _, e := range newExts {
					fs.alloc.free(ctx, e)
				}
				return false
			}
			var off int64
			for _, ne := range newExts {
				fs.dev.Write(ctx, buf[off:off+ne.Len*BlockSize], ne.StartByte())
				fs.dev.Flush(ctx, ne.StartByte(), ne.Len*BlockSize)
				off += ne.Len * BlockSize
			}
			fs.dev.Fence(ctx)
			tx := fs.begin(ctx)
			f := &File{fs: fs, ino: ino}
			// replaceRange shoots down live translations, swaps the map,
			// and frees the displaced blocks — which the allocator
			// diverts into the hold, never back into the pools.
			if err := f.replaceRange(ctx, tx, r.fileLo, r.fileLo+r.n, newExts); err != nil {
				_ = fs.failTx(tx, "defrag", err)
				for _, e := range newExts {
					fs.alloc.free(ctx, e)
				}
				return false
			}
			tx.commit()
			st.MigratedBlocks += r.n
			st.MigratedBytes += r.n * BlockSize
			ctx.Counters.DefragMigratedBlocks += r.n
			ctx.Counters.DefragMigratedBytes += r.n * BlockSize
			pacer.Pace(ctx, ctx.Now()-burst)
		}
		return true
	}()
	h.Unlock(ctx)
	// A mapped file the migration just touched may still be fragmented:
	// hand it to the reactive rewriter so phase 2 fixes the whole layout
	// and re-promotes the mapping (must not hold ino.mu here).
	ino.mu.RLock()
	mapped := len(ino.mappings) > 0
	ino.mu.RUnlock()
	if mapped {
		fs.maybeQueueRewrite(ino)
	}
	return ok
}
