package winefs

import "repro/internal/sim"

// NUMA-awareness (§3.6, "Minimizing remote NUMA accesses"): WineFS routes
// each process' writes to a "home" NUMA node — chosen as the node with the
// most free space when the process first writes — on the insight that
// remote writes are more expensive than remote reads and that temporal
// locality makes reads of freshly written data local for free. Children
// inherit their parent's home node.

// homeCPU returns the CPU whose pool the thread's allocations should use:
// a CPU on the thread's home NUMA node. If the home node has run out of
// free space a new home is selected and the thread migrates.
func (fs *FS) homeCPU(ctx *sim.Ctx) int {
	fs.homeMu.Lock()
	node, ok := fs.homes[ctx.Thread]
	if ok && fs.nodeFreeBlocks(node) == 0 {
		ok = false // home exhausted: pick a new one
	}
	if !ok {
		node = fs.nodeWithMostFree()
		fs.homes[ctx.Thread] = node
	}
	fs.homeMu.Unlock()
	// Map the home node to one of its CPUs, spreading threads across the
	// node's pools deterministically.
	perNode := fs.g.cpus / fs.dev.Nodes()
	if perNode == 0 {
		perNode = 1
	}
	cpu := node*perNode + ctx.Thread%perNode
	if cpu >= fs.g.cpus {
		cpu = fs.g.cpus - 1
	}
	// Model the (rare) migration: if the thread is currently on a CPU of a
	// different node, charge a migration cost and move it.
	if fs.dev.NodeOfCPU(ctx.CPU) != node {
		ctx.Advance(migrateCost)
		ctx.CPU = cpu
	}
	return cpu
}

// migrateCost is the virtual-time cost of migrating a thread to its home
// NUMA node on a write (§3.6, "Writes": "If required, the process is
// migrated to its home NUMA node").
const migrateCost = 3000

// nodeWithMostFree picks the NUMA node with the most free blocks (§3.6:
// "the assigned home NUMA node is the NUMA node with most free space").
func (fs *FS) nodeWithMostFree() int {
	best, bestFree := 0, int64(-1)
	for n := 0; n < fs.dev.Nodes(); n++ {
		f := fs.nodeFreeBlocks(n)
		if f > bestFree {
			best, bestFree = n, f
		}
	}
	return best
}

// nodeFreeBlocks sums free space across the allocation groups whose pools
// live on the given node.
func (fs *FS) nodeFreeBlocks(node int) int64 {
	var free int64
	for _, g := range fs.alloc.groups {
		start, _ := fs.g.poolRange(g.cpu)
		if fs.dev.NodeOf(start*BlockSize) != node {
			continue
		}
		g.mu.Lock()
		free += g.freeBlocks()
		g.mu.Unlock()
	}
	return free
}

// InheritHome gives a child thread its parent's home NUMA node (§3.6,
// "Child process").
func (fs *FS) InheritHome(parentThread, childThread int) {
	fs.homeMu.Lock()
	defer fs.homeMu.Unlock()
	if node, ok := fs.homes[parentThread]; ok {
		fs.homes[childThread] = node
	}
}

// HomeNode reports the thread's current home node, if assigned.
func (fs *FS) HomeNode(thread int) (int, bool) {
	fs.homeMu.Lock()
	defer fs.homeMu.Unlock()
	n, ok := fs.homes[thread]
	return n, ok
}
