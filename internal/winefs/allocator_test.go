package winefs

import (
	"testing"
	"testing/quick"

	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/sim"
)

// TestAllocatorInvariants drives the alignment-aware allocator with random
// mixed-size allocations and frees, and checks after every step:
//
//  1. conservation — free + outstanding == pool capacity;
//  2. no overlap — handed-out extents never intersect;
//  3. the hole invariant — no unaligned hole fully contains an aligned
//     hugepage chunk (such chunks must live in the aligned FIFO);
//  4. full restoration — freeing everything returns every group to a pure
//     aligned pool with zero holes.
func TestAllocatorInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		ctx := sim.NewCtx(1, 0)
		dev := pmem.New(256 << 20)
		fs, err := Mkfs(ctx, dev, Options{CPUs: 2})
		if err != nil {
			return false
		}
		a := fs.alloc
		total, _ := a.stats()

		type grant struct{ ex []alloc.Extent }
		var outstanding []grant
		var outBlocks int64
		used := map[int64]bool{}

		check := func() bool {
			free, _ := a.stats()
			if free+outBlocks != total {
				t.Logf("conservation: free=%d out=%d total=%d", free, outBlocks, total)
				return false
			}
			for _, g := range a.groups {
				bad := false
				g.holes.Ascend(func(start, length int64) bool {
					first := (start + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
					if first+BlocksPerHuge <= start+length {
						bad = true
						return false
					}
					return true
				})
				if bad {
					t.Log("hole invariant violated")
					return false
				}
			}
			return true
		}

		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // allocate
				blocks := int64(op%2048) + 1
				cpu := int(op) % 2
				ex, err := a.alloc(ctx, cpu, blocks, op%16 == 0)
				if err != nil {
					continue
				}
				for _, e := range ex {
					for b := e.Start; b < e.End(); b++ {
						if used[b] {
							t.Logf("double allocation of block %d", b)
							return false
						}
						used[b] = true
					}
				}
				outstanding = append(outstanding, grant{ex})
				for _, e := range ex {
					outBlocks += e.Len
				}
			case 2: // free the oldest grant
				if len(outstanding) == 0 {
					continue
				}
				g := outstanding[0]
				outstanding = outstanding[1:]
				for _, e := range g.ex {
					a.free(ctx, e)
					outBlocks -= e.Len
					for b := e.Start; b < e.End(); b++ {
						delete(used, b)
					}
				}
			}
			if !check() {
				return false
			}
		}
		// Free everything: the aligned pools must fully regenerate.
		for _, g := range outstanding {
			for _, e := range g.ex {
				a.free(ctx, e)
			}
		}
		for _, g := range a.groups {
			if g.holeBlocks.Load() != 0 {
				t.Logf("residual holes: %d blocks", g.holeBlocks.Load())
				return false
			}
		}
		free, aligned := a.stats()
		return free == total && aligned*BlocksPerHuge == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocatorAlignedFIFO verifies §3.6's FIFO discipline: extents are
// taken from the head and freed ones appended at the tail.
func TestAllocatorAlignedFIFO(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(128 << 20)
	fs, _ := Mkfs(ctx, dev, Options{CPUs: 1})
	a := fs.alloc
	first, ok := a.allocAligned(ctx, 0)
	if !ok {
		t.Fatal("no aligned extent")
	}
	second, _ := a.allocAligned(ctx, 0)
	if second != first+BlocksPerHuge {
		t.Fatalf("head order wrong: %d then %d", first, second)
	}
	// Free the first: it must come back last, not immediately.
	a.free(ctx, alloc.Extent{Start: first, Len: BlocksPerHuge})
	third, _ := a.allocAligned(ctx, 0)
	if third == first {
		t.Fatal("freed extent reused immediately (LIFO, want FIFO)")
	}
}
