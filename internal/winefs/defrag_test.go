package winefs_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/mmu"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vmm"
	"repro/internal/winefs"
)

// fragmentFS builds the classic aged layout: pairs of 1MiB files split
// every hugepage chunk, then the even-numbered files are deleted so each
// chunk is half live, half free — no free chunk is aligned, but half the
// space is free. Returns the surviving files and their patterns.
func fragmentFS(t *testing.T, ctx *sim.Ctx, fs *winefs.FS, n int) map[string]byte {
	t.Helper()
	buf := make([]byte, 1<<20)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("/f%d", i)
		f, err := fs.Create(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(i + 1)
		}
		if _, err := f.WriteAt(ctx, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	live := make(map[string]byte)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("/f%d", i)
		if i%2 == 0 {
			if err := fs.Unlink(ctx, name); err != nil {
				t.Fatal(err)
			}
		} else {
			live[name] = byte(i + 1)
		}
	}
	return live
}

func checkLive(t *testing.T, ctx *sim.Ctx, fs *winefs.FS, live map[string]byte) {
	t.Helper()
	buf := make([]byte, 1<<20)
	for name, pat := range live {
		f, err := fs.Open(ctx, name)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		if _, err := f.ReadAt(ctx, buf, 0); err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		for j, b := range buf {
			if b != pat {
				t.Fatalf("%s byte %d = %#x, want %#x (defrag corrupted a migrated file)", name, j, b, pat)
			}
		}
	}
}

// TestDefragRecoversAlignedExtents is the tentpole's core property: a
// pass over the half-free aged layout migrates the live halves together
// and re-forms 2MiB aligned extents, with the §3.6 audit invariants
// holding immediately afterwards and every migrated byte intact.
func TestDefragRecoversAlignedExtents(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(256 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	live := fragmentFS(t, ctx, fs, 12)
	before := fs.StatFS(ctx)

	bg := sim.NewCtx(2, 1)
	bg.AdvanceTo(ctx.Now())
	st, err := fs.DefragPass(bg, winefs.DefragOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered2M < 2 {
		t.Fatalf("Recovered2M = %d, want >= 2 (scanned %d, migrated %d, busy %d, meta %d)",
			st.Recovered2M, st.ChunksScanned, st.MigratedBlocks, st.SkippedBusy, st.SkippedMeta)
	}
	if st.MigratedBlocks == 0 {
		t.Fatal("pass recovered chunks without migrating anything")
	}
	after := fs.StatFS(ctx)
	if after.FreeAligned2M <= before.FreeAligned2M {
		t.Fatalf("FreeAligned2M %d -> %d, want growth", before.FreeAligned2M, after.FreeAligned2M)
	}
	if after.FreeBlocks != before.FreeBlocks {
		t.Fatalf("defrag changed total free space: %d -> %d", before.FreeBlocks, after.FreeBlocks)
	}
	// Satellite: the audit invariants hold immediately after the pass —
	// no hold left behind, nothing in both pools, tiling exact.
	if err := fs.Audit(bg); err != nil {
		t.Fatalf("audit after defrag pass: %v", err)
	}
	if bg.Counters.DefragRecovered2M != st.Recovered2M {
		t.Fatalf("counter DefragRecovered2M=%d, stats say %d", bg.Counters.DefragRecovered2M, st.Recovered2M)
	}
	checkLive(t, ctx, fs, live)
	if rep := winefs.Check(dev); !rep.OK() {
		t.Fatalf("fsck after defrag: %v", rep.Errors)
	}
}

// TestDefragMigrationBudget: a pass must stop migrating once it hits
// MaxMigrateBlocks (one extra in-flight run may finish).
func TestDefragMigrationBudget(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, pmem.New(256<<20), winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	fragmentFS(t, ctx, fs, 12)
	bg := sim.NewCtx(2, 1)
	st, err := fs.DefragPass(bg, winefs.DefragOptions{MaxMigrateBlocks: 256})
	if err != nil {
		t.Fatal(err)
	}
	if st.MigratedBlocks > 512 {
		t.Fatalf("MigratedBlocks = %d, budget was 256 (one run of slack allowed)", st.MigratedBlocks)
	}
	if err := fs.Audit(bg); err != nil {
		t.Fatalf("audit after budget-limited pass: %v", err)
	}
}

// TestDefragPacerInjectsIdle: a throttled pass must give back idle
// virtual time between migration bursts (§4's interference bound).
func TestDefragPacerInjectsIdle(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, pmem.New(256<<20), winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	fragmentFS(t, ctx, fs, 8)
	bg := sim.NewCtx(2, 1)
	pacer := sim.NewPacer(0.1)
	if _, err := fs.DefragPass(bg, winefs.DefragOptions{Pacer: pacer}); err != nil {
		t.Fatal(err)
	}
	if pacer.PausedNS == 0 || bg.Counters.DefragThrottleNS == 0 {
		t.Fatalf("throttled pass injected no idle time (paused=%d, counter=%d)",
			pacer.PausedNS, bg.Counters.DefragThrottleNS)
	}
	// At a 10% duty cycle the injected idle dwarfs the work time.
	if bg.Counters.DefragThrottleNS < bg.Counters.CopyNS {
		t.Fatalf("throttle %dns < copy %dns; duty cycle not enforced",
			bg.Counters.DefragThrottleNS, bg.Counters.CopyNS)
	}
}

// TestDefragSkipsMetaPinnedChunks: directory extents cannot be migrated
// (dirent PM addresses are position-dependent), so a chunk holding them
// is skipped, counted, and left exactly as found.
func TestDefragSkipsMetaPinnedChunks(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(256 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// /big takes half a chunk; the root directory's growth (300 entries)
	// lands its extent blocks in the other half. Deleting /big leaves a
	// half-free chunk pinned by directory metadata.
	big, err := fs.Create(ctx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.WriteAt(ctx, make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		f, err := fs.Create(ctx, fmt.Sprintf("/e%d", i))
		if err != nil {
			t.Fatal(err)
		}
		f.Close(ctx)
	}
	if err := fs.Unlink(ctx, "/big"); err != nil {
		t.Fatal(err)
	}
	bg := sim.NewCtx(2, 1)
	st, err := fs.DefragPass(bg, winefs.DefragOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SkippedMeta == 0 {
		t.Fatalf("expected a metadata-pinned skip (scanned %d, recovered %d)",
			st.ChunksScanned, st.Recovered2M)
	}
	if err := fs.Audit(bg); err != nil {
		t.Fatalf("audit after meta skip: %v", err)
	}
	if rep := winefs.Check(dev); !rep.OK() {
		t.Fatalf("fsck: %v", rep.Errors)
	}
}

// TestDefragRepromotesLiveMappings is the tentpole end-to-end: an aged,
// fragmented, live-mapped file is base-page mapped; one defrag pass
// re-forms aligned space, the queued rewrite lands the file on it, and
// the promotion notification upgrades the live mapping to hugepages
// without a single refault from the application.
func TestDefragRepromotesLiveMappings(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(512 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := fs.Create(ctx, "/hot")
	payload := make([]byte, 4<<20)
	for i := range payload {
		payload[i] = byte(i / 4096)
	}
	for off := int64(0); off < int64(len(payload)); off += 64 << 10 {
		if _, err := f.WriteAt(ctx, payload[off:off+64<<10], off); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := mmu.HugeEligible(f.Extents(), 0); ok {
		t.Skip("file happened to be aligned already")
	}

	m, err := vmm.Map(ctx, f, 0, vmm.Config{Mode: vmm.ModeReadOnly, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)
	if err := m.Touch(ctx, 0, int64(len(payload)), false); err != nil {
		t.Fatal(err)
	}
	hugeBefore, total := m.FaultedChunks()
	if total == 0 || hugeBefore == total {
		t.Skipf("mapping faulted %d/%d huge before defrag; nothing to promote", hugeBefore, total)
	}

	bg := sim.NewCtx(2, 3)
	bg.AdvanceTo(ctx.Now())
	st, err := fs.DefragPass(bg, winefs.DefragOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rewrites == 0 {
		t.Fatalf("defrag pass drained no rewrites (queue len %d)", fs.RewriteQueueLen())
	}
	if bg.Counters.DefragRepromotions == 0 || bg.Counters.VMMPromotions == 0 {
		t.Fatalf("no promotion notifications (repromote=%d, vmm=%d)",
			bg.Counters.DefragRepromotions, bg.Counters.VMMPromotions)
	}
	hugeAfter, _ := m.FaultedChunks()
	if hugeAfter <= hugeBefore {
		t.Fatalf("huge chunk coverage %d -> %d after defrag; promotion did not land", hugeBefore, hugeAfter)
	}

	// The application's view: same mapping, same bytes, no new faults
	// beyond what promotion itself installed.
	post := sim.NewCtx(3, 0)
	post.AdvanceTo(bg.Now())
	buf := make([]byte, 4096)
	for _, off := range []int64{0, 1 << 20, 3<<20 + 12345} {
		if err := m.Read(post, buf, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, payload[off:off+4096]) {
			t.Fatalf("post-defrag read at %d corrupted", off)
		}
	}
	if post.Counters.PageFaults+post.Counters.HugeFaults > 0 {
		t.Fatalf("reads after re-promotion refaulted (%d base, %d huge) — notification should have installed the translations",
			post.Counters.PageFaults, post.Counters.HugeFaults)
	}
}

// TestDefragRace8Threads races the defragmenter against foreground
// writers, truncates, unlink/create churn, and live mmap readers on 8
// OS threads (run under -race by `make defrag-race`). The properties:
// no stale reads through live mappings, no lost writes, and a clean
// audit + fsck once the dust settles.
func TestDefragRace8Threads(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(512 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Age the image first so the defragmenter has real work.
	live := fragmentFS(t, ctx, fs, 16)

	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// 3 writers: rewrite their own file with a per-iteration pattern and
	// read it straight back.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := sim.NewCtx(100+w, w)
			name := fmt.Sprintf("/w%d", w)
			f, err := fs.Create(c, name)
			if err != nil {
				report(fmt.Errorf("writer %d create: %v", w, err))
				return
			}
			buf := make([]byte, 256<<10)
			got := make([]byte, len(buf))
			for i := 0; i < iters; i++ {
				pat := byte(w*iters + i + 1)
				for j := range buf {
					buf[j] = pat
				}
				if _, err := f.WriteAt(c, buf, 0); err != nil {
					report(fmt.Errorf("writer %d: %v", w, err))
					return
				}
				if _, err := f.ReadAt(c, got, 0); err != nil {
					report(fmt.Errorf("writer %d readback: %v", w, err))
					return
				}
				if !bytes.Equal(got, buf) {
					report(fmt.Errorf("writer %d iter %d: lost write", w, i))
					return
				}
			}
		}(w)
	}

	// 1 truncator: grow and shrink its file.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := sim.NewCtx(110, 3)
		f, err := fs.Create(c, "/trunc")
		if err != nil {
			report(fmt.Errorf("trunc create: %v", err))
			return
		}
		data := make([]byte, 1<<20)
		for i := 0; i < iters; i++ {
			if _, err := f.WriteAt(c, data, 0); err != nil {
				report(fmt.Errorf("trunc write: %v", err))
				return
			}
			if err := f.Truncate(c, int64(4096*(i%7))); err != nil {
				report(fmt.Errorf("trunc: %v", err))
				return
			}
		}
	}()

	// 1 churner: create/unlink cycles to recycle inode numbers under the
	// rewrite queue's nose.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := sim.NewCtx(111, 4)
		data := make([]byte, 128<<10)
		for i := 0; i < iters; i++ {
			name := fmt.Sprintf("/churn%d", i%3)
			f, err := fs.Create(c, name)
			if err != nil {
				report(fmt.Errorf("churn create: %v", err))
				return
			}
			if _, err := f.WriteAt(c, data, 0); err != nil {
				report(fmt.Errorf("churn write: %v", err))
				return
			}
			if err := fs.Unlink(c, name); err != nil {
				report(fmt.Errorf("churn unlink: %v", err))
				return
			}
		}
	}()

	// 2 mmap readers: map a stable aged file and keep reading its
	// pattern while the defragmenter migrates and rewrites underneath.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := sim.NewCtx(120+r, 5+r)
			name := fmt.Sprintf("/f%d", 2*r+1) // live files from fragmentFS
			pat := live[name]
			f, err := fs.Open(c, name)
			if err != nil {
				report(fmt.Errorf("mapper %d open: %v", r, err))
				return
			}
			m, err := f.Mmap(c, 1<<20)
			if err != nil {
				report(fmt.Errorf("mapper %d mmap: %v", r, err))
				return
			}
			buf := make([]byte, 4096)
			for i := 0; i < iters; i++ {
				off := int64((i * 37 % 256) * 4096)
				if err := m.Read(c, buf, off); err != nil {
					report(fmt.Errorf("mapper %d read: %v", r, err))
					return
				}
				for j, b := range buf {
					if b != pat {
						report(fmt.Errorf("mapper %d iter %d byte %d: %#x want %#x (stale translation)", r, i, j, b, pat))
						return
					}
				}
			}
		}(r)
	}

	// 1 defragmenter: continuous throttled passes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := sim.NewCtx(130, 7)
		pacer := sim.NewPacer(0.5)
		for i := 0; i < 10; i++ {
			if _, err := fs.DefragPass(c, winefs.DefragOptions{Pacer: pacer, MaxChunks: 8}); err != nil {
				report(fmt.Errorf("defrag pass: %v", err))
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	quiet := sim.NewCtx(200, 0)
	if err := fs.Audit(quiet); err != nil {
		t.Fatalf("audit after race: %v", err)
	}
	checkLive(t, quiet, fs, live)
	if rep := winefs.Check(dev); !rep.OK() {
		t.Fatalf("fsck after race: %v", rep.Errors)
	}
}

// TestDefragCrashRecovery: crash at every fence boundary of a defrag
// pass and remount. Each migration is one journal transaction, so every
// crash state must mount clean, pass fsck + audit, and show every live
// file's bytes either fully migrated or fully in place — never torn.
func TestDefragCrashRecovery(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(256 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	live := fragmentFS(t, ctx, fs, 8)
	if err := fs.Unmount(ctx); err != nil {
		t.Fatal(err)
	}
	fs, err = winefs.Mount(ctx, dev, winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}

	base := dev.Snapshot()
	dev.StartTrace()
	bg := sim.NewCtx(2, 1)
	st, err := fs.DefragPass(bg, winefs.DefragOptions{})
	trace := dev.StopTrace()
	if err != nil {
		t.Fatal(err)
	}
	if st.Recovered2M == 0 {
		t.Fatal("pass recovered nothing; crash exploration would be vacuous")
	}
	maxEpoch := 0
	for _, s := range trace {
		if s.Epoch > maxEpoch {
			maxEpoch = s.Epoch
		}
	}
	// Crash at every fence boundary (prefix of whole epochs): the
	// journal must make each boundary a consistent state.
	step := 1
	if maxEpoch > 64 {
		step = maxEpoch / 64
	}
	for e := 0; e <= maxEpoch+1; e += step {
		var durable []pmem.Store
		for _, s := range trace {
			if s.Epoch < e {
				durable = append(durable, s)
			}
		}
		img := base.Clone()
		img.Apply(durable)
		scratch := pmem.New(256 << 20)
		scratch.Restore(img)
		rctx := sim.NewCtx(3, 0)
		rfs, err := winefs.Mount(rctx, scratch, winefs.Options{CPUs: 2})
		if err != nil {
			t.Fatalf("epoch %d: mount after crash: %v", e, err)
		}
		if rep := winefs.Check(scratch); !rep.OK() {
			t.Fatalf("epoch %d: fsck after crash: %v", e, rep.Errors)
		}
		if err := rfs.Audit(rctx); err != nil {
			t.Fatalf("epoch %d: audit after crash recovery: %v", e, err)
		}
		checkLive(t, rctx, rfs, live)
	}
}
