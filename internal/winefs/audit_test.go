package winefs

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func auditFS(t *testing.T) (*FS, *sim.Ctx) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	fs, err := Mkfs(ctx, pmem.New(256<<20), Options{CPUs: 4, Mode: vfs.Strict})
	if err != nil {
		t.Fatal(err)
	}
	return fs, ctx
}

func TestAuditCleanAfterMkfs(t *testing.T) {
	fs, ctx := auditFS(t)
	if err := fs.Audit(ctx); err != nil {
		t.Fatalf("fresh FS fails audit: %v", err)
	}
}

// TestAuditCleanAfterChurn: create/write/grow/truncate/delete churn must
// leave the allocator accounting fully reconciled — free + used tiles the
// pool, caches match trees, StatFS agrees.
func TestAuditCleanAfterChurn(t *testing.T) {
	fs, ctx := auditFS(t)
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	var files []string
	for i := 0; i < 60; i++ {
		p := fmt.Sprintf("/d/f%03d", i)
		f, err := fs.Create(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		// Mixed sizes: small hole allocations, hugepage-crossing extents,
		// fallocate slack.
		switch i % 4 {
		case 0:
			_, err = f.Append(ctx, make([]byte, 1000))
		case 1:
			_, err = f.WriteAt(ctx, make([]byte, 3<<20), 0)
		case 2:
			err = f.Fallocate(ctx, 0, 2<<20)
		case 3:
			if _, err = f.Append(ctx, make([]byte, 8192)); err == nil {
				err = f.Truncate(ctx, 100)
			}
		}
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		f.Close(ctx)
		files = append(files, p)
	}
	for i, p := range files {
		if i%3 == 0 {
			if err := fs.Unlink(ctx, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := fs.Audit(ctx); err != nil {
		t.Fatalf("audit after churn: %v", err)
	}
	// The audit itself is read-only: a second pass still reconciles.
	if err := fs.Audit(ctx); err != nil {
		t.Fatalf("second audit: %v", err)
	}
}

// TestAuditDetectsCacheDrift: corrupting the cached holeBlocks counter must
// be reported — this is exactly the accounting-drift class the auditor
// exists to catch.
func TestAuditDetectsCacheDrift(t *testing.T) {
	fs, ctx := auditFS(t)
	f, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Append(ctx, make([]byte, 1000))
	f.Close(ctx)

	g := fs.alloc.groups[0]
	g.mu.Lock()
	g.holeBlocks.Add(7)
	g.mu.Unlock()

	err = fs.Audit(ctx)
	var ae *AuditError
	if !errors.As(err, &ae) {
		t.Fatalf("audit missed the drift: %v", err)
	}
	found := false
	for _, v := range ae.Violations {
		if strings.Contains(v, "holeBlocks") {
			found = true
		}
	}
	if !found {
		t.Fatalf("drift not named: %v", ae.Violations)
	}

	g.mu.Lock()
	g.holeBlocks.Add(-7)
	g.mu.Unlock()
	if err := fs.Audit(ctx); err != nil {
		t.Fatalf("audit after repair: %v", err)
	}
}

// TestAuditDetectsLeak: dropping a free extent on the floor (allocated,
// never recorded, never freed) must show up as a tiling violation.
func TestAuditDetectsLeak(t *testing.T) {
	fs, ctx := auditFS(t)
	if _, ok := fs.alloc.allocAligned(ctx, 0); !ok {
		t.Fatal("allocAligned failed")
	}
	// The extent now belongs to no inode and no free pool: leaked.
	err := fs.Audit(ctx)
	var ae *AuditError
	if !errors.As(err, &ae) {
		t.Fatalf("audit missed the leak: %v", err)
	}
	if !strings.Contains(ae.Error(), "tiling") && !strings.Contains(ae.Error(), "leak") {
		t.Fatalf("leak not named: %v", ae.Violations)
	}
}

// TestAuditDetectsPromotionViolation: a hole covering a whole aligned
// chunk violates the §3.6 promotion invariant.
func TestAuditDetectsPromotionViolation(t *testing.T) {
	fs, ctx := auditFS(t)
	g := fs.alloc.groups[0]
	g.mu.Lock()
	// Steal an aligned extent and reinsert it as a raw hole, bypassing
	// addHoleLocked's promotion.
	b, ok := g.takeAlignedLocked()
	if !ok {
		g.mu.Unlock()
		t.Fatal("no aligned extent")
	}
	g.insertHoleLocked(b, BlocksPerHuge)
	g.mu.Unlock()

	err := fs.Audit(ctx)
	var ae *AuditError
	if !errors.As(err, &ae) {
		t.Fatalf("audit missed the promotion violation: %v", err)
	}
	found := false
	for _, v := range ae.Violations {
		if strings.Contains(v, "promotion invariant") {
			found = true
		}
	}
	if !found {
		t.Fatalf("promotion violation not named: %v", ae.Violations)
	}
}

// TestAuditDetectsIndexSkew: the by-start and by-size hole indexes must
// stay in lockstep.
func TestAuditDetectsIndexSkew(t *testing.T) {
	fs, ctx := auditFS(t)
	f, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Append(ctx, make([]byte, 1000))
	f.Close(ctx)
	if err := fs.Unlink(ctx, "/f"); err != nil {
		t.Fatal(err)
	}

	// Find any hole and remove it from the by-size index only.
	var corrupted bool
	for _, g := range fs.alloc.groups {
		g.mu.Lock()
		g.holes.Ascend(func(start, length int64) bool {
			g.holesBySize.Delete(holeKey{length, start})
			corrupted = true
			return false
		})
		g.mu.Unlock()
		if corrupted {
			break
		}
	}
	if !corrupted {
		t.Skip("no holes to corrupt")
	}
	var ae *AuditError
	if err := fs.Audit(ctx); !errors.As(err, &ae) {
		t.Fatalf("audit missed the index skew: %v", err)
	}
}
