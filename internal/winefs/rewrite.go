package winefs

import (
	"repro/internal/alloc"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// Reactive rewriting (§3.6, "Reactively rewriting a file"): when a file is
// memory-mapped and found fragmented — allocated from unaligned holes even
// though it is large enough to use hugepages — it is queued, and a
// background thread later reads it and rewrites it with big (aligned)
// allocations, switching the directory's view to the new layout in one
// journal transaction. The paper notes this is an extremely rare path for
// well-behaved mmap applications.

// maybeQueueRewrite checks a file's layout at mmap time and queues it for
// rewriting if any full 2MiB chunk of it cannot be hugepage-mapped.
func (fs *FS) maybeQueueRewrite(ino *inode) {
	ino.mu.RLock()
	size := ino.size
	exts := ino.mmuExtentsRLocked()
	ino.mu.RUnlock()
	if size < mmu.HugePage {
		return
	}
	fragmented := false
	for chunk := int64(0); chunk+mmu.HugePage <= size; chunk += mmu.HugePage {
		if _, ok := mmu.HugeEligible(exts, chunk); !ok {
			fragmented = true
			break
		}
	}
	if !fragmented {
		return
	}
	fs.rewriteMu.Lock()
	if fs.rewriteQueued == nil {
		fs.rewriteQueued = make(map[*inode]bool)
	}
	// rewriteQueued stays set from enqueue until the rewrite completes,
	// so a second mmap while the file is queued — or mid-rewrite — cannot
	// double-enqueue it.
	if !fs.rewriteQueued[ino] {
		fs.rewriteQueued[ino] = true
		fs.rewriteQ = append(fs.rewriteQ, ino)
	}
	fs.rewriteMu.Unlock()
}

// dropRewrite removes a dying inode from the rewrite queue (unlink/rmdir
// while queued). If the inode is mid-rewrite (marked but already popped),
// only the guard is cleared; rewriteFile itself re-checks the inode type
// and size under the lock and backs out.
func (fs *FS) dropRewrite(ino *inode) {
	fs.rewriteMu.Lock()
	defer fs.rewriteMu.Unlock()
	if !fs.rewriteQueued[ino] {
		return
	}
	delete(fs.rewriteQueued, ino)
	for i, q := range fs.rewriteQ {
		if q == ino {
			fs.rewriteQ = append(fs.rewriteQ[:i], fs.rewriteQ[i+1:]...)
			break
		}
	}
}

// RewriteQueueLen reports how many files await reactive rewriting.
func (fs *FS) RewriteQueueLen() int {
	fs.rewriteMu.Lock()
	defer fs.rewriteMu.Unlock()
	return len(fs.rewriteQ)
}

// RunRewriter drains the rewrite queue, acting as the paper's background
// thread. The caller provides the thread context the work is charged to
// (experiments run it on a dedicated simulated thread so its bandwidth
// consumption competes with foreground work, §4's defragmentation
// interference discussion). Returns the number of files rewritten.
func (fs *FS) RunRewriter(ctx *sim.Ctx) int {
	return fs.runRewriter(ctx, nil)
}

// runRewriter is RunRewriter with an optional duty-cycle pacer (the
// defragmenter's throttled drain shares this path).
func (fs *FS) runRewriter(ctx *sim.Ctx, pacer *sim.Pacer) int {
	done := 0
	for {
		if fs.unmounted.Load() {
			return done
		}
		fs.rewriteMu.Lock()
		if len(fs.rewriteQ) == 0 {
			fs.rewriteMu.Unlock()
			return done
		}
		ino := fs.rewriteQ[0]
		fs.rewriteQ = fs.rewriteQ[1:]
		fs.rewriteMu.Unlock()
		// Identity check: the inode may have been freed — and its number
		// reused by a new file — while queued. The shard map holds the
		// live object for the number; rewriting anything else would churn
		// a file that was never mmapped fragmented.
		var retry bool
		if fs.getInode(ino.ino) == ino {
			var ok bool
			ok, retry = fs.rewriteFile(ctx, ino, pacer)
			if ok {
				done++
				ctx.Counters.Rewrites++
				// Live mappings were shot down by the rewrite; re-promote
				// them now instead of waiting for refaults (must run
				// without ino.mu held — the hook probes back through
				// ProbeHuge).
				fs.notifyPromote(ctx, ino)
			}
		}
		fs.rewriteMu.Lock()
		if retry && !fs.unmounted.Load() {
			// Aligned space ran out mid-drain: push the file back (guard
			// stays set) and stop — the next defrag pass re-forms more
			// aligned extents before retrying.
			fs.rewriteQ = append(fs.rewriteQ, ino)
			fs.rewriteMu.Unlock()
			return done
		}
		delete(fs.rewriteQueued, ino)
		fs.rewriteMu.Unlock()
	}
}

// rewriteFile re-allocates the whole file from aligned extents, copies the
// data across, and swaps the extent map in one transaction. A non-nil
// pacer throttles the copy to its duty-cycle budget, burst by burst.
// retry=true means the rewrite failed only for lack of space — worth
// retrying after the defragmenter re-forms aligned extents.
func (fs *FS) rewriteFile(ctx *sim.Ctx, ino *inode, pacer *sim.Pacer) (done, retry bool) {
	if fs.writable() != nil {
		return false, false
	}
	h := fs.locks.Lock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.Lock()
	defer ino.mu.Unlock()
	if ino.typ != typeFile || ino.size < mmu.HugePage {
		return false, false
	}
	blocks := (ino.size + BlockSize - 1) / BlockSize
	tx := fs.begin(ctx)
	newExts, err := fs.alloc.alloc(ctx, tx.cpu, blocks, true)
	if err != nil {
		tx.commit()
		return false, true
	}
	// The allocator quietly falls back to hole space when the aligned
	// pools run dry — fine for ordinary writes, useless here: a rewrite
	// that lands on unaligned holes burns a full copy of the file and
	// still cannot be hugepage-mapped. Insist on a hugepage-pure layout
	// and otherwise put the file back in the queue for after the
	// defragmenter has re-formed aligned extents.
	if !hugePure(newExts) {
		for _, e := range newExts {
			fs.alloc.free(ctx, e)
		}
		tx.commit()
		return false, true
	}
	// Copy old contents (reading through the old map) into the new blocks.
	// A media fault here aborts the rewrite: the old (fragmented but intact)
	// layout stays in place and the application keeps getting EIO only for
	// the genuinely poisoned bytes.
	buf := make([]byte, alloc.HugeBytes)
	var copied int64
	for _, ne := range newExts {
		remaining := ne.Len
		dst := ne.Start
		for remaining > 0 && copied < blocks {
			n := remaining
			if n > int64(len(buf))/BlockSize {
				n = int64(len(buf)) / BlockSize
			}
			if copied+n > blocks {
				n = blocks - copied
			}
			burst := ctx.Now()
			if err := fs.readRangeLocked(ctx, ino, buf[:n*BlockSize], copied*BlockSize); err != nil {
				tx.abort()
				for _, e := range newExts {
					fs.alloc.free(ctx, e)
				}
				return false, false
			}
			fs.dev.Write(ctx, buf[:n*BlockSize], dst*BlockSize)
			dst += n
			copied += n
			remaining -= n
			pacer.Pace(ctx, ctx.Now()-burst)
		}
	}
	// Swap the extent map: free the old layout, install the new.
	old := ino.extents
	oldSlots := ino.slots
	ino.extents = nil
	ino.slots = nil
	fileBlk := int64(0)
	for _, ne := range newExts {
		l := ne.Len
		if fileBlk+l > blocks {
			l = blocks - fileBlk
		}
		if l <= 0 {
			fs.alloc.free(ctx, ne)
			continue
		}
		ino.extents = append(ino.extents, wextent{fileBlk: fileBlk, blk: ne.Start, length: l})
		ino.slots = append(ino.slots, len(ino.slots))
		fileBlk += l
		if l < ne.Len {
			fs.alloc.free(ctx, alloc.Extent{Start: ne.Start + l, Len: ne.Len - l})
		}
	}
	ino.gen++
	err = nil
	for i := range ino.extents {
		if err = fs.writeExtentSlot(ctx, tx, ino, i); err != nil {
			break
		}
	}
	if err == nil {
		err = fs.writeInodeHeader(ctx, tx, ino)
	}
	if err != nil {
		// The DRAM map has already been swapped; roll back PM and restore it.
		_ = fs.failTx(tx, "rewrite", err)
		for _, ne := range newExts {
			fs.alloc.free(ctx, ne)
		}
		ino.extents = old
		ino.slots = oldSlots
		ino.gen++
		return false, false
	}
	tx.commit()
	// Shoot down any live mappings before the old blocks are freed:
	// subsequent accesses re-fault against the new (aligned) layout.
	for _, m := range ino.mappings {
		m.Invalidate()
	}
	fs.alloc.freeAll(ctx, old)
	return true, false
}

// hugePure reports whether an aligned-requested allocation actually came
// out hugepage-pure: every extent starts on a 2MiB boundary and, except
// for the final one, covers whole 2MiB chunks. Any hole-space fallback
// extent breaks one of the two.
func hugePure(exts []alloc.Extent) bool {
	for i, e := range exts {
		if e.Start%BlocksPerHuge != 0 {
			return false
		}
		if i < len(exts)-1 && e.Len%BlocksPerHuge != 0 {
			return false
		}
	}
	return true
}

// readRangeLocked reads file bytes through the extent map (caller holds
// ino.mu). Holes read as zero; poisoned lines or corrupt extent pointers
// surface as an error.
func (fs *FS) readRangeLocked(ctx *sim.Ctx, ino *inode, p []byte, off int64) error {
	read := 0
	for read < len(p) {
		pos := off + int64(read)
		blk := pos / BlockSize
		in := pos % BlockSize
		phys, run, ok := ino.findRun(blk)
		if !ok {
			holeEnd := ino.nextExtentStart(blk, (off+int64(len(p))+BlockSize-1)/BlockSize) * BlockSize
			n := holeEnd - pos
			if n > int64(len(p)-read) {
				n = int64(len(p) - read)
			}
			z := p[read : read+int(n)]
			for i := range z {
				z[i] = 0
			}
			read += int(n)
			continue
		}
		n := run*BlockSize - in
		if n > int64(len(p)-read) {
			n = int64(len(p) - read)
		}
		if err := fs.dataCheckRange(phys*BlockSize+in, n); err != nil {
			return err
		}
		if err := fs.dataReadChecked(ctx, p[read:read+int(n)], phys*BlockSize+in); err != nil {
			return err
		}
		read += int(n)
	}
	return nil
}
