package winefs

import (
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// This file is the winefs side of the zero-copy mapping subsystem
// (internal/vmm): vfs.Mapper plus the lease-coordination hooks. The
// fault handler itself lives in file.go (Fault); here are the lifecycle
// pieces — attach/detach bookkeeping, msync durability, hole punching,
// and the mapped-inode reporting the file server's lease table consults.

// MapSpace implements vfs.Mapper.
func (f *File) MapSpace() *mmu.AddressSpace { return f.fs.as }

// MapSyscallNS implements vfs.Mapper.
func (f *File) MapSyscallNS() int64 { return f.fs.model.SyscallNS }

// AttachMapping implements vfs.Mapper: register a live mapping for
// layout-change shootdowns. Mapping a file whose layout defeats
// hugepages queues it for reactive rewriting (§3.6), and any client
// leases on the inode are revoked — DAX stores bypass every cache
// protocol, so remote caching and local mappings are mutually exclusive.
func (f *File) AttachMapping(m *mmu.Mapping) {
	f.fs.maybeQueueRewrite(f.ino)
	f.ino.mu.Lock()
	f.ino.mappings = append(f.ino.mappings, m)
	f.ino.mu.Unlock()
	if hook := f.fs.mapHook.Load(); hook != nil {
		(*hook)(f.ino.ino)
	}
}

// DetachMapping implements vfs.Mapper.
func (f *File) DetachMapping(m *mmu.Mapping) {
	f.ino.mu.Lock()
	for i, mm := range f.ino.mappings {
		if mm == m {
			f.ino.mappings = append(f.ino.mappings[:i], f.ino.mappings[i+1:]...)
			break
		}
	}
	f.ino.mu.Unlock()
}

// MsyncRange implements vfs.Mapper: make DAX stores to [off, off+n)
// durable. Stores through a mapping already sit in PM (they went through
// the mapped lines directly), so durability is clwb over the backed
// lines plus one sfence; the metadata that backed them was journaled at
// fault time, so no further journal barrier is required in either
// consistency mode (DESIGN.md §11). Holes in the range have nothing to
// flush.
func (f *File) MsyncRange(ctx *sim.Ctx, off, n int64) error {
	if n <= 0 {
		return nil
	}
	fs := f.fs
	ino := f.ino
	startBlk := off / BlockSize
	endBlk := (off + n + BlockSize - 1) / BlockSize
	ino.mu.RLock()
	for _, e := range ino.extents {
		lo := max64(e.fileBlk, startBlk)
		hi := min64(e.fileBlk+e.length, endBlk)
		if lo >= hi {
			continue
		}
		fs.dev.Flush(ctx, (e.blk+lo-e.fileBlk)*BlockSize, (hi-lo)*BlockSize)
	}
	ino.mu.RUnlock()
	fs.dev.Fence(ctx)
	return nil
}

// PunchHole implements vfs.HolePuncher: deallocate the whole blocks of
// [off, off+n) and zero the partial edges, so the range reads back as
// zeros and the freed blocks return to their allocator pools. Live
// mappings over the file are shot down before the blocks can be reused;
// refaults see the hole (demand-zero inside the file, vfs.ErrMapFault
// past EOF).
func (f *File) PunchHole(ctx *sim.Ctx, off, n int64) error {
	ctx.Syscall(f.fs.model.SyscallNS)
	if err := f.fs.writable(); err != nil {
		return err
	}
	if off < 0 || n <= 0 {
		return mmu.ErrOutOfRange
	}
	fs := f.fs
	ino := f.ino
	h := fs.locks.Lock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.Lock()
	defer ino.mu.Unlock()

	if off >= ino.size {
		return nil
	}
	if off+n > ino.size {
		n = ino.size - off
	}
	// Zero the partial edge bytes in place; only whole blocks deallocate.
	startBlk := (off + BlockSize - 1) / BlockSize
	endBlk := (off + n) / BlockSize
	zero := func(b, zOff, zN int64) {
		if phys, _, ok := ino.findRun(b); ok {
			fs.dev.Zero(ctx, phys*BlockSize+zOff, zN)
		}
	}
	if off%BlockSize != 0 {
		head := min64(n, BlockSize-off%BlockSize)
		zero(off/BlockSize, off%BlockSize, head)
	}
	if (off+n)%BlockSize != 0 && (off+n)/BlockSize >= startBlk {
		zero((off+n)/BlockSize, 0, (off+n)%BlockSize)
	}
	if startBlk >= endBlk {
		return nil
	}
	// replaceRange shoots down live translations before the blocks return
	// to the allocator (same rule as truncate); refaults block on ino.mu
	// until the new layout is in place.
	tx := fs.begin(ctx)
	if err := f.replaceRange(ctx, tx, startBlk, endBlk, nil); err != nil {
		return fs.failTx(tx, "punch", err)
	}
	tx.commit()
	return nil
}

// ProbeHuge implements vfs.HugeProber: report, without faulting or
// allocating, whether the 2MiB file chunk at chunkOff is hugepage-
// eligible. install (if non-nil) runs under the inode's layout read
// lock, so a translation it plants cannot race a concurrent layout
// change freeing the probed blocks — truncate/punch/rewrite take the
// write lock and shoot mappings down before any block returns to the
// allocator.
func (f *File) ProbeHuge(chunkOff int64, install func(phys int64)) bool {
	ino := f.ino
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	if chunkOff < 0 || chunkOff%mmu.HugePage != 0 || chunkOff+mmu.HugePage > ino.size {
		return false
	}
	phys, run, ok := ino.findRun(chunkOff / BlockSize)
	if !ok || phys%BlocksPerHuge != 0 || run < BlocksPerHuge {
		return false
	}
	if install != nil {
		install(phys * BlockSize)
	}
	return true
}

// notifyPromote tells every live mapping over ino that its layout just
// improved (a reactive rewrite or a defrag migration re-formed aligned
// extents), so the mapping subsystem re-promotes eligible chunks without
// waiting for a refault. Callers must NOT hold ino.mu: the vmm hook
// probes eligibility back through ProbeHuge, which takes the read lock.
func (fs *FS) notifyPromote(ctx *sim.Ctx, ino *inode) {
	ino.mu.RLock()
	maps := append([]*mmu.Mapping(nil), ino.mappings...)
	ino.mu.RUnlock()
	for _, m := range maps {
		m.NotifyPromote(ctx)
	}
}

// MappedCount implements vfs.MapTracker: how many live mappings cover
// the inode. The file server refuses to grant client leases while this
// is non-zero.
func (fs *FS) MappedCount(ino uint64) int {
	in := fs.getInode(ino)
	if in == nil {
		return 0
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.mappings)
}

// SetMapHook implements vfs.MapNotifier.
func (fs *FS) SetMapHook(hook func(ino uint64)) {
	if hook == nil {
		fs.mapHook.Store(nil)
		return
	}
	fs.mapHook.Store(&hook)
}

var _ vfs.Mapper = (*File)(nil)
var _ vfs.HugeProber = (*File)(nil)
var _ vfs.HolePuncher = (*File)(nil)
var _ vfs.MapTracker = (*FS)(nil)
var _ vfs.MapNotifier = (*FS)(nil)
