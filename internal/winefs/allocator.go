package winefs

import (
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/rbtree"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// holeKey orders the by-size index of the hole pool: smallest adequate
// hole first, ties broken by lowest address.
type holeKey struct {
	length int64
	start  int64
}

func holeLess(a, b holeKey) bool {
	if a.length != b.length {
		return a.length < b.length
	}
	return a.start < b.start
}

// group is one per-CPU allocation group (Figure 5): a FIFO list of free
// aligned 2MiB extents and a red-black tree of free unaligned holes, plus
// the CPU's inode free list. DRAM-only; rebuilt at mount.
type group struct {
	cpu int
	mu  sync.Mutex
	res sim.Resource

	// noPromote disables merging holes back into aligned extents
	// (alignment ablation).
	noPromote bool

	// aligned is the FIFO of free hugepage extents: allocation removes
	// from the head, frees append at the tail (§3.6, "Aligned extent pool").
	aligned []int64
	// holes indexes free unaligned extents by start block; holesBySize is
	// the companion index used to find an adequate hole in O(log n).
	holes       *rbtree.Tree[int64, int64]
	holesBySize *rbtree.Tree[holeKey, struct{}]
	// holeBlocks is atomic so the cross-CPU steal scan (mostHoles) can
	// read every group's count without taking every group's mutex;
	// mutations still happen under g.mu.
	holeBlocks atomic.Int64

	inodeFree []int64 // free inode slots in this CPU's table

	// holdBase, when >= 0, marks the hugepage chunk
	// [holdBase, holdBase+BlocksPerHuge) as under online-defrag
	// reclamation (§3.5): its free sub-ranges live in holdParts instead
	// of the pools, so foreground allocation cannot hand them out while
	// the defragmenter migrates the chunk's remaining live blocks, and
	// blocks freed inside the chunk (the migrations' displaced extents)
	// are diverted straight to holdParts. Audit checks holdParts stay
	// disjoint from both pools and still count in the space tiling.
	holdBase  int64
	holdParts []alloc.Extent
}

func newGroup(cpu int) *group {
	return &group{
		cpu:         cpu,
		holes:       rbtree.New[int64, int64](func(a, b int64) bool { return a < b }),
		holesBySize: rbtree.New[holeKey, struct{}](holeLess),
		holdBase:    -1,
	}
}

// freeBlocks returns the group's total free block count.
func (g *group) freeBlocks() int64 {
	return int64(len(g.aligned))*BlocksPerHuge + g.holeBlocks.Load()
}

// addHoleLocked inserts a free range, merging with neighbours and then
// promoting any fully covered aligned hugepage chunks into the aligned
// pool (§3.6, "Unaligned extent pool": "if the extents can be merged into
// an aligned extent, it is merged and tracked in the aligned extent pool").
// Invariant: no hole ever fully contains an aligned hugepage chunk.
func (g *group) addHoleLocked(start, length int64) {
	if length <= 0 {
		return
	}
	// Merge with the predecessor if adjacent.
	if ps, pl, ok := g.holes.Floor(start); ok && ps+pl == start {
		g.removeHoleLocked(ps, pl)
		start, length = ps, pl+length
	}
	// Merge with the successor if adjacent.
	if ns, nl, ok := g.holes.Ceiling(start); ok && start+length == ns {
		g.removeHoleLocked(ns, nl)
		length += nl
	}
	// Promote aligned chunks.
	if g.noPromote {
		g.insertHoleLocked(start, length)
		return
	}
	first := (start + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
	last := (start + length) / BlocksPerHuge * BlocksPerHuge
	if first < last {
		for b := first; b < last; b += BlocksPerHuge {
			g.aligned = append(g.aligned, b) // tail of the FIFO
		}
		if start < first {
			g.insertHoleLocked(start, first-start)
		}
		if last < start+length {
			g.insertHoleLocked(last, start+length-last)
		}
		return
	}
	g.insertHoleLocked(start, length)
}

func (g *group) insertHoleLocked(start, length int64) {
	g.holes.Set(start, length)
	g.holesBySize.Set(holeKey{length, start}, struct{}{})
	g.holeBlocks.Add(length)
}

func (g *group) removeHoleLocked(start, length int64) {
	g.holes.Delete(start)
	g.holesBySize.Delete(holeKey{length, start})
	g.holeBlocks.Add(-length)
}

// takeAlignedLocked pops the FIFO head, or returns false.
func (g *group) takeAlignedLocked() (int64, bool) {
	if len(g.aligned) == 0 {
		return 0, false
	}
	b := g.aligned[0]
	g.aligned = g.aligned[1:]
	return b, true
}

// takeHoleLocked carves `need` blocks from the smallest adequate hole. If
// no hole is large enough it returns the largest available hole whole (the
// caller loops). Returns (start, got, ok).
func (g *group) takeHoleLocked(need int64) (int64, int64, bool) {
	if k, _, ok := g.holesBySize.Ceiling(holeKey{need, 0}); ok {
		g.removeHoleLocked(k.start, k.length)
		if k.length > need {
			g.insertHoleLocked(k.start+need, k.length-need)
		}
		return k.start, need, true
	}
	// No single hole fits: take the largest one entirely.
	if k, _, ok := g.holesBySize.Max(); ok {
		g.removeHoleLocked(k.start, k.length)
		return k.start, k.length, true
	}
	return 0, 0, false
}

// allocator is WineFS's alignment-aware allocator (§3.4). The partition is
// split into per-CPU groups; requests are decomposed into hugepage-sized
// pieces served from aligned pools and a remainder served from holes.
type allocator struct {
	fs     *FS
	groups []*group
	// noAlignment (ablation) serves everything from holes and never
	// promotes free space back to the aligned pool.
	noAlignment bool
}

func newAllocator(fs *FS) *allocator {
	a := &allocator{fs: fs}
	for c := 0; c < fs.g.cpus; c++ {
		a.groups = append(a.groups, newGroup(c))
	}
	return a
}

// initEmpty fills every group with its whole (hugepage-aligned) pool, as
// after mkfs.
func (a *allocator) initEmpty() {
	for c, g := range a.groups {
		g.noPromote = a.noAlignment
		start, end := a.fs.g.poolRange(c)
		if a.noAlignment {
			g.insertHoleLocked(start, end-start)
			continue
		}
		for b := start; b < end; b += BlocksPerHuge {
			g.aligned = append(g.aligned, b)
		}
	}
}

// allocCost is the virtual-time cost of one allocator invocation (DRAM
// tree/list manipulation).
const allocCost = 120

// mostAligned returns the group with the most free aligned extents,
// excluding `except` (§3.4: cross-CPU policy).
func (a *allocator) mostAligned(except int) *group {
	var best *group
	bestN := 0
	for _, g := range a.groups {
		if g.cpu == except {
			continue
		}
		g.mu.Lock()
		n := len(g.aligned)
		g.mu.Unlock()
		if n > bestN {
			best, bestN = g, n
		}
	}
	return best
}

// mostHoles returns the group with the most free unaligned blocks,
// excluding `except`.
func (a *allocator) mostHoles(except int) *group {
	var best *group
	var bestN int64
	for _, g := range a.groups {
		if g.cpu == except {
			continue
		}
		n := g.holeBlocks.Load()
		if n > bestN {
			best, bestN = g, n
		}
	}
	return best
}

// allocAligned obtains one aligned hugepage extent: local pool first, then
// the remote pool with the most aligned extents, then — only if no aligned
// extent exists anywhere — hole space.
func (a *allocator) allocAligned(ctx *sim.Ctx, cpu int) (int64, bool) {
	g := a.groups[cpu]
	g.mu.Lock()
	b, ok := g.takeAlignedLocked()
	g.mu.Unlock()
	ctx.Advance(allocCost)
	if ok {
		return b, true
	}
	if rg := a.mostAligned(cpu); rg != nil {
		rg.mu.Lock()
		b, ok = rg.takeAlignedLocked()
		rg.mu.Unlock()
		if ok {
			ctx.Counters.AllocSteals++
			return b, true
		}
	}
	return 0, false
}

// allocSmall obtains `need` blocks of unaligned space, possibly as several
// extents: local holes first, then the remote pool with the most hole
// space, finally by breaking an aligned extent (counted as an AllocSplit).
func (a *allocator) allocSmall(ctx *sim.Ctx, cpu int, need int64) ([]alloc.Extent, bool) {
	var out []alloc.Extent
	remaining := need
	tryGroup := func(g *group, steal bool) {
		for remaining > 0 {
			g.mu.Lock()
			start, got, ok := g.takeHoleLocked(remaining)
			g.mu.Unlock()
			ctx.Advance(allocCost)
			if !ok {
				return
			}
			out = append(out, alloc.Extent{Start: start, Len: got})
			remaining -= got
			if steal {
				ctx.Counters.AllocSteals++
			}
		}
	}
	tryGroup(a.groups[cpu], false)
	for remaining > 0 {
		rg := a.mostHoles(cpu)
		if rg == nil {
			break
		}
		if rg.holeBlocks.Load() == 0 {
			break
		}
		tryGroup(rg, true)
	}
	// Last resort: break an aligned extent; the remainder becomes a hole.
	for remaining > 0 {
		b, ok := a.allocAligned(ctx, cpu)
		if !ok {
			// Roll back partial allocations.
			for _, e := range out {
				a.free(ctx, e)
			}
			return nil, false
		}
		ctx.Counters.AllocSplits++
		take := remaining
		if take > BlocksPerHuge {
			take = BlocksPerHuge
		}
		out = append(out, alloc.Extent{Start: b, Len: take})
		if take < BlocksPerHuge {
			og := a.groups[a.fs.g.cpuOfBlock(b)]
			og.mu.Lock()
			og.addHoleLocked(b+take, BlocksPerHuge-take)
			og.mu.Unlock()
		}
		remaining -= take
	}
	return out, true
}

// allocHoles is allocSmall restricted to hole space (no aligned-extent
// splitting): the online defragmenter migrates displaced blocks into
// existing holes only — breaking an aligned extent to vacate another
// would churn forever at net-zero recovery.
func (a *allocator) allocHoles(ctx *sim.Ctx, cpu int, need int64) ([]alloc.Extent, bool) {
	var out []alloc.Extent
	remaining := need
	tryGroup := func(g *group, steal bool) {
		for remaining > 0 {
			g.mu.Lock()
			start, got, ok := g.takeHoleLocked(remaining)
			g.mu.Unlock()
			ctx.Advance(allocCost)
			if !ok {
				return
			}
			out = append(out, alloc.Extent{Start: start, Len: got})
			remaining -= got
			if steal {
				ctx.Counters.AllocSteals++
			}
		}
	}
	tryGroup(a.groups[cpu], false)
	for remaining > 0 {
		rg := a.mostHoles(cpu)
		if rg == nil {
			break
		}
		if rg.holeBlocks.Load() == 0 {
			break
		}
		tryGroup(rg, true)
	}
	if remaining > 0 {
		for _, e := range out {
			a.free(ctx, e)
		}
		return nil, false
	}
	return coalesce(out), true
}

// alloc satisfies a request of `blocks` blocks (§3.4, "Allocation"):
// the request is split into hugepage-sized pieces (served aligned) and a
// remainder (served from holes). When wantAligned is set — large requests
// or files carrying the alignment xattr — the remainder is rounded up to a
// full aligned extent so the file stays hugepage-mappable.
func (a *allocator) alloc(ctx *sim.Ctx, cpu int, blocks int64, wantAligned bool) ([]alloc.Extent, error) {
	if blocks <= 0 {
		return nil, nil
	}
	var out []alloc.Extent
	fail := func() ([]alloc.Extent, error) {
		for _, e := range out {
			a.free(ctx, e)
		}
		return nil, vfs.ErrNoSpace
	}
	hugePieces := blocks / BlocksPerHuge
	rem := blocks % BlocksPerHuge
	if wantAligned && rem > 0 {
		// Keep the file's layout hugepage-pure: allocate a full extent for
		// the tail as well. The file keeps only `rem` blocks of it; the
		// slack returns to the hole pool immediately.
		hugePieces++
		rem = 0
	}
	for i := int64(0); i < hugePieces; i++ {
		b, ok := a.allocAligned(ctx, cpu)
		if !ok {
			// Aligned space exhausted: fall back to hole space for the rest.
			left := blocks - totalLen(out)
			small, ok2 := a.allocSmall(ctx, cpu, left)
			if !ok2 {
				return fail()
			}
			out = append(out, small...)
			return coalesce(out), nil
		}
		need := blocks - totalLen(out)
		take := int64(BlocksPerHuge)
		if take > need {
			take = need
		}
		out = append(out, alloc.Extent{Start: b, Len: take})
		if take < BlocksPerHuge {
			// Slack from the rounded-up tail extent returns as a hole.
			og := a.groups[a.fs.g.cpuOfBlock(b)]
			og.mu.Lock()
			og.addHoleLocked(b+take, BlocksPerHuge-take)
			og.mu.Unlock()
		}
	}
	if rem > 0 {
		small, ok := a.allocSmall(ctx, cpu, rem)
		if !ok {
			return fail()
		}
		out = append(out, small...)
	}
	return coalesce(out), nil
}

func totalLen(ex []alloc.Extent) int64 {
	var n int64
	for _, e := range ex {
		n += e.Len
	}
	return n
}

// coalesce merges physically adjacent extents in allocation order.
func coalesce(ex []alloc.Extent) []alloc.Extent {
	if len(ex) < 2 {
		return ex
	}
	out := ex[:1]
	for _, e := range ex[1:] {
		last := &out[len(out)-1]
		if last.End() == e.Start {
			last.Len += e.Len
		} else {
			out = append(out, e)
		}
	}
	return out
}

// free returns an extent to the pool of the CPU it was allocated from
// (§3.4: "when the allocated extent is freed, it is inserted back into the
// free-space of the original data pool"), merging and promoting to the
// aligned pool where possible.
func (a *allocator) free(ctx *sim.Ctx, e alloc.Extent) {
	if e.Len <= 0 {
		return
	}
	// Slow-tier blocks go back to the tier pool, not the PM groups (this
	// single routing point covers every free path: unlink, truncate, CoW
	// displacement, replaceRange, rollbacks).
	if t := a.fs.tier; t != nil && e.Start >= t.base {
		t.pool.Free(e.Start, e.Len)
		ctx.Advance(allocCost)
		t.dev.DiscardRange((e.Start-t.base)*BlockSize, e.Len*BlockSize)
		return
	}
	// An extent may span multiple CPU pools (cross-CPU steal then merge);
	// split along pool boundaries.
	for e.Len > 0 {
		cpu := a.fs.g.cpuOfBlock(e.Start)
		_, poolEnd := a.fs.g.poolRange(cpu)
		take := e.Len
		if e.Start+take > poolEnd {
			take = poolEnd - e.Start
		}
		g := a.groups[cpu]
		g.mu.Lock()
		g.freeRangeLocked(e.Start, take)
		g.mu.Unlock()
		ctx.Advance(allocCost)
		a.fs.dev.DiscardRange(e.StartByte(), take*BlockSize)
		e.Start += take
		e.Len -= take
	}
}

// freeAll frees a list of file extents.
func (a *allocator) freeAll(ctx *sim.Ctx, ex []wextent) {
	for _, e := range ex {
		a.free(ctx, alloc.Extent{Start: e.blk, Len: e.length})
	}
}

// freeExtents snapshots the global free-space extent list.
func (a *allocator) freeExtents() []alloc.Extent {
	var out []alloc.Extent
	for _, g := range a.groups {
		g.mu.Lock()
		for _, b := range g.aligned {
			out = append(out, alloc.Extent{Start: b, Len: BlocksPerHuge})
		}
		g.holes.Ascend(func(start, length int64) bool {
			out = append(out, alloc.Extent{Start: start, Len: length})
			return true
		})
		g.mu.Unlock()
	}
	return alloc.Merge(out)
}

// stats returns total and aligned free counts.
func (a *allocator) stats() (freeBlocks, alignedExtents int64) {
	for _, g := range a.groups {
		g.mu.Lock()
		freeBlocks += g.freeBlocks()
		alignedExtents += int64(len(g.aligned))
		g.mu.Unlock()
	}
	return
}

// markUsed removes a specific range from the free pools during recovery
// rebuild. The range must currently be free. Used-block reconstruction
// feeds file extents back in via this.
func (a *allocator) markUsed(start, length int64) {
	// Slow-tier extents replay into the tier pool (crash-path rebuild).
	if t := a.fs.tier; t != nil && start >= t.base {
		t.pool.MarkUsed(start, length)
		return
	}
	for length > 0 {
		cpu := a.fs.g.cpuOfBlock(start)
		_, poolEnd := a.fs.g.poolRange(cpu)
		take := length
		if start+take > poolEnd {
			take = poolEnd - start
		}
		g := a.groups[cpu]
		g.mu.Lock()
		g.carveLocked(start, take)
		g.mu.Unlock()
		start += take
		length -= take
	}
}

// carveLocked removes [start, start+length) from this group's free space.
func (g *group) carveLocked(start, length int64) {
	end := start + length
	// From aligned extents overlapping the range.
	keep := g.aligned[:0]
	for _, b := range g.aligned {
		if b+BlocksPerHuge <= start || b >= end {
			keep = append(keep, b)
			continue
		}
		// Partially or fully covered: the uncovered parts become holes.
		if b < start {
			g.insertHoleLocked(b, start-b)
		}
		if b+BlocksPerHuge > end {
			g.insertHoleLocked(end, b+BlocksPerHuge-end)
		}
	}
	g.aligned = keep
	// From holes overlapping the range: a hole beginning before `start`
	// may still overlap, so begin at the floor predecessor.
	type cut struct{ s, l int64 }
	var cuts []cut
	from := start
	if fs, _, ok := g.holes.Floor(start); ok {
		from = fs
	}
	g.holes.AscendFrom(from, func(hs, hl int64) bool {
		if hs >= end {
			return false
		}
		if hs+hl > start {
			cuts = append(cuts, cut{hs, hl})
		}
		return true
	})
	for _, c := range cuts {
		g.removeHoleLocked(c.s, c.l)
		if c.s < start {
			g.insertHoleLocked(c.s, start-c.s)
		}
		if c.s+c.l > end {
			g.insertHoleLocked(end, c.s+c.l-end)
		}
	}
}

// freeRangeLocked is the hold-aware form of addHoleLocked: the part of
// the range inside a held chunk is diverted to holdParts (it must not
// become allocatable while the defragmenter reclaims the chunk); the
// rest enters the pools normally.
func (g *group) freeRangeLocked(start, length int64) {
	if g.holdBase >= 0 {
		hb, he := g.holdBase, g.holdBase+BlocksPerHuge
		if start < he && start+length > hb {
			if start < hb {
				g.addHoleLocked(start, hb-start)
			}
			if start+length > he {
				g.addHoleLocked(he, start+length-he)
			}
			s, e := max64(start, hb), min64(start+length, he)
			g.holdParts = append(g.holdParts, alloc.Extent{Start: s, Len: e - s})
			return
		}
	}
	g.addHoleLocked(start, length)
}

// holdChunkLocked begins reclaiming the hugepage chunk at base: every
// free sub-range inside it moves from the hole pool into holdParts (a
// hole straddling the chunk edge is split). The chunk cannot be in the
// aligned pool — a fully free chunk would have been promoted — so only
// holes are carved. Returns the number of blocks captured.
func (g *group) holdChunkLocked(base int64) int64 {
	g.holdBase = base
	g.holdParts = g.holdParts[:0]
	end := base + BlocksPerHuge
	type cut struct{ s, l int64 }
	var cuts []cut
	from := base
	if fs, _, ok := g.holes.Floor(base); ok {
		from = fs
	}
	g.holes.AscendFrom(from, func(hs, hl int64) bool {
		if hs >= end {
			return false
		}
		if hs+hl > base {
			cuts = append(cuts, cut{hs, hl})
		}
		return true
	})
	var held int64
	for _, c := range cuts {
		g.removeHoleLocked(c.s, c.l)
		if c.s < base {
			g.insertHoleLocked(c.s, base-c.s)
		}
		if c.s+c.l > end {
			g.insertHoleLocked(end, c.s+c.l-end)
		}
		s, e := max64(c.s, base), min64(c.s+c.l, end)
		g.holdParts = append(g.holdParts, alloc.Extent{Start: s, Len: e - s})
		held += e - s
	}
	return held
}

// releaseHoldLocked ends the reclamation: held ranges return to the
// pools through the normal merge path, so a fully reclaimed chunk
// promotes itself into the aligned FIFO. Reports whether the whole
// chunk came back free (the pass re-formed a 2MiB extent).
func (g *group) releaseHoldLocked() bool {
	parts := g.holdParts
	var total int64
	for _, p := range parts {
		total += p.Len
	}
	g.holdParts = nil
	g.holdBase = -1
	for _, p := range parts {
		g.addHoleLocked(p.Start, p.Len)
	}
	return total == BlocksPerHuge
}

// heldBlocks sums the blocks parked in holdParts (caller holds g.mu).
func (g *group) heldBlocksLocked() int64 {
	var n int64
	for _, p := range g.holdParts {
		n += p.Len
	}
	return n
}
