package winefs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/vfs"
)

// mkTiered builds a tiered FS: pmSize of PM plus slowSize of simulated SSD.
func mkTiered(t *testing.T, pmSize, slowSize int64) (*FS, *sim.Ctx, *pmem.Device, *tier.SlowDevice) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(pmSize)
	slow := tier.NewSlow(tier.DefaultSlowConfig(slowSize))
	fs, err := Mkfs(ctx, dev, Options{CPUs: 1, InodesPerCPU: 512, Tier: &TierOptions{Slow: slow}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { slow.Release() })
	return fs, ctx, dev, slow
}

func patternBuf(n int64, seed byte) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(int(seed) + i*7)
	}
	return buf
}

// inoOf resolves a path to its DRAM inode (test helper).
func inoOf(t *testing.T, ctx *sim.Ctx, fs *FS, path string) *inode {
	t.Helper()
	fi, err := fs.Stat(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	return fs.getInode(fi.Ino)
}

// slowBlocksOf counts how many of the file's blocks live on the slow tier.
func slowBlocksOf(fs *FS, ino *inode) (slow, pm int64) {
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	for _, e := range ino.extents {
		if fs.isSlow(e.blk) {
			slow += e.length
		} else {
			pm += e.length
		}
	}
	return
}

// TestTierSpillInsteadOfENOSPC is the PM-exhaustion satellite: filling PM
// past its high-water mark must transparently spill new data to the slow
// tier — never surface ErrNoSpace while the slow tier has headroom — and
// the spill must be visible in the alloc_spill counters.
func TestTierSpillInsteadOfENOSPC(t *testing.T) {
	fs, ctx, _, _ := mkTiered(t, 64<<20, 64<<20)
	st, ok := fs.TierStats()
	if !ok {
		t.Fatal("TierStats on tiered mount returned !ok")
	}
	// Write 1.5x the PM data capacity across a handful of files.
	totalBlocks := st.PMTotalBlocks + st.SlowTotalBlocks/4
	chunk := patternBuf(1<<20, 3)
	var written int64
	for i := 0; written < totalBlocks*BlockSize; i++ {
		name := "/f" + string(rune('a'+i%8))
		var f vfs.File
		var err error
		if i < 8 {
			f, err = fs.Create(ctx, name)
		} else {
			f, err = fs.Open(ctx, name)
		}
		if err != nil {
			t.Fatalf("open %s after %d bytes: %v", name, written, err)
		}
		if _, err := f.Append(ctx, chunk); err != nil {
			t.Fatalf("append after %d of %d bytes: %v", written, totalBlocks*BlockSize, err)
		}
		written += int64(len(chunk))
	}
	if ctx.Counters.AllocSpillBlocks == 0 {
		t.Fatal("no spill happened despite writing past PM capacity")
	}
	if ctx.Counters.AllocSpillExtents == 0 {
		t.Fatal("spill blocks counted but no spill extents")
	}
	st, _ = fs.TierStats()
	if st.SlowFreeBlocks == st.SlowTotalBlocks {
		t.Fatal("slow tier still empty after spill")
	}
	// PM stayed at or under the high-water mark plus metadata growth: the
	// spill left headroom instead of running PM to zero.
	if st.PMFreeBlocks == 0 {
		t.Fatal("spill policy ran PM completely dry (no metadata headroom)")
	}
	// Spilled data reads back correctly, and cold reads are charged
	// slow-device costs.
	rctx := sim.NewCtx(2, 0)
	f, err := fs.Open(rctx, "/fa")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(chunk))
	if _, err := f.ReadAt(rctx, got, f.Size()-int64(len(chunk))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, chunk) {
		t.Fatal("spilled tail reads back wrong data")
	}
	if err := fs.Audit(ctx); err != nil {
		t.Fatalf("audit after spill: %v", err)
	}
	// At least one of the files has a slow extent whose read was charged.
	var sawSlow bool
	for _, name := range []string{"/fa", "/fb", "/fc", "/fd", "/fe", "/ff", "/fg", "/fh"} {
		ino := inoOf(t, rctx, fs, name)
		if s, _ := slowBlocksOf(fs, ino); s > 0 {
			sawSlow = true
			break
		}
	}
	if !sawSlow {
		t.Fatal("spill counters nonzero but no file has slow extents")
	}
	cctx := sim.NewCtx(3, 0)
	for _, name := range []string{"/fa", "/fb", "/fc", "/fd"} {
		f, err := fs.Open(cctx, name)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1<<20)
		for off := int64(0); off < f.Size(); off += int64(len(buf)) {
			if _, err := f.ReadAt(cctx, buf, off); err != nil {
				t.Fatal(err)
			}
		}
	}
	if cctx.Counters.SlowReads == 0 || cctx.Counters.SlowReadBytes == 0 {
		t.Fatal("reads over spilled data were not charged slow-device costs")
	}
}

// TestTierENOSPCWhenBothTiersFull: ErrNoSpace is still the answer once BOTH
// tiers are exhausted.
func TestTierENOSPCWhenBothTiersFull(t *testing.T) {
	fs, ctx, _, _ := mkTiered(t, 32<<20, 8<<20)
	chunk := patternBuf(1<<20, 9)
	f, err := fs.Create(ctx, "/fill")
	if err != nil {
		t.Fatal(err)
	}
	var sawNoSpace bool
	for i := 0; i < 64; i++ {
		if _, err := f.Append(ctx, chunk); err != nil {
			if !errors.Is(err, vfs.ErrNoSpace) {
				t.Fatalf("fill failed with %v, want ErrNoSpace", err)
			}
			sawNoSpace = true
			break
		}
	}
	if !sawNoSpace {
		t.Fatal("filled 64MiB into 32+8MiB without ENOSPC")
	}
	st, _ := fs.TierStats()
	if st.SlowFreeBlocks > st.SlowTotalBlocks/10 {
		t.Fatalf("ENOSPC with %d of %d slow blocks still free", st.SlowFreeBlocks, st.SlowTotalBlocks)
	}
}

// TestTierPassDemotesColdPromotesHot drives one full migration cycle: with
// PM over the high-water mark the coldest file moves down; once its data is
// re-read past the promotion threshold it moves back up. Content must
// survive both trips and the audit must stay clean throughout.
func TestTierPassDemotesColdPromotesHot(t *testing.T) {
	fs, ctx, _, _ := mkTiered(t, 64<<20, 64<<20)
	const fileBytes = 4 << 20
	hotData := patternBuf(fileBytes, 0x10)
	coldData := patternBuf(fileBytes, 0x60)
	hot, err := fs.Create(ctx, "/hot")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hot.WriteAt(ctx, hotData, 0); err != nil {
		t.Fatal(err)
	}
	cold, err := fs.Create(ctx, "/cold")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cold.WriteAt(ctx, coldData, 0); err != nil {
		t.Fatal(err)
	}
	// Heat up /hot.
	buf := make([]byte, fileBytes)
	for i := 0; i < 5; i++ {
		if _, err := hot.ReadAt(ctx, buf, 0); err != nil {
			t.Fatal(err)
		}
	}

	// Force a demotion pass big enough for /cold only: coldest-first order
	// must pick /cold and leave /hot on PM.
	fs.tier.highWater = 0.01
	fs.tier.lowWater = 0.005
	st, err := fs.TierPass(ctx, TierPassOptions{MaxMigrateBlocks: fileBytes / BlockSize})
	if err != nil {
		t.Fatal(err)
	}
	if st.Demotions == 0 || st.DemotedBlocks != fileBytes/BlockSize {
		t.Fatalf("demotion pass: %+v, want %d blocks demoted", st, fileBytes/BlockSize)
	}
	coldIno := inoOf(t, ctx, fs, "/cold")
	hotIno := inoOf(t, ctx, fs, "/hot")
	if s, p := slowBlocksOf(fs, coldIno); s != fileBytes/BlockSize || p != 0 {
		t.Fatalf("/cold after demotion: slow=%d pm=%d, want all slow", s, p)
	}
	if s, _ := slowBlocksOf(fs, hotIno); s != 0 {
		t.Fatalf("/hot demoted (%d slow blocks) despite being hotter", s)
	}
	if err := fs.Audit(ctx); err != nil {
		t.Fatalf("audit after demotion: %v", err)
	}
	if got := make([]byte, fileBytes); true {
		if _, err := cold.ReadAt(ctx, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, coldData) {
			t.Fatal("/cold content wrong after demotion")
		}
	}

	// Re-reading /cold past the promotion threshold earns it back to PM.
	// The bar is size-proportional (one touch per 16 blocks), so a 4MiB
	// file needs a real re-read streak, not a token one.
	fs.tier.highWater = 0.95
	fs.tier.lowWater = 0.85
	for i := 0; i < 80; i++ {
		if _, err := cold.ReadAt(ctx, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	st, err = fs.TierPass(ctx, TierPassOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Promotions == 0 || st.PromotedBlocks != fileBytes/BlockSize {
		t.Fatalf("promotion pass: %+v, want %d blocks promoted", st, fileBytes/BlockSize)
	}
	if s, p := slowBlocksOf(fs, coldIno); s != 0 || p != fileBytes/BlockSize {
		t.Fatalf("/cold after promotion: slow=%d pm=%d, want all PM", s, p)
	}
	got := make([]byte, fileBytes)
	if _, err := cold.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, coldData) {
		t.Fatal("/cold content wrong after promotion")
	}
	if err := fs.Audit(ctx); err != nil {
		t.Fatalf("audit after promotion: %v", err)
	}
	if ctx.Counters.TierDemotions == 0 || ctx.Counters.TierPromotions == 0 || ctx.Counters.TierPasses < 2 {
		t.Fatalf("tier counters not maintained: demote=%d promote=%d passes=%d",
			ctx.Counters.TierDemotions, ctx.Counters.TierPromotions, ctx.Counters.TierPasses)
	}
}

// TestTierRemountRebuildsSlowPool: the slow pool is DRAM-only, so both the
// clean-unmount path and the crash path must rebuild it from the extent
// scan — without double-allocating blocks that are already referenced.
func TestTierRemountRebuildsSlowPool(t *testing.T) {
	fs, ctx, dev, slow := mkTiered(t, 64<<20, 32<<20)
	data := patternBuf(2<<20, 0x21)
	f, err := fs.Create(ctx, "/spilled")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	// Demote everything so /spilled definitely has slow extents.
	fs.tier.highWater = 0.01
	fs.tier.lowWater = 0.005
	if _, err := fs.TierPass(ctx, TierPassOptions{}); err != nil {
		t.Fatal(err)
	}
	ino := inoOf(t, ctx, fs, "/spilled")
	slowUsed, _ := slowBlocksOf(fs, ino)
	if slowUsed == 0 {
		t.Fatal("setup: no slow extents to rebuild")
	}

	check := func(tag string, rfs *FS, rctx *sim.Ctx) {
		st, ok := rfs.TierStats()
		if !ok {
			t.Fatalf("%s: remount lost the tier", tag)
		}
		if st.SlowTotalBlocks-st.SlowFreeBlocks != slowUsed {
			t.Fatalf("%s: pool shows %d slow blocks used, want %d",
				tag, st.SlowTotalBlocks-st.SlowFreeBlocks, slowUsed)
		}
		rf, err := rfs.Open(rctx, "/spilled")
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := rf.ReadAt(rctx, got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: content wrong after remount", tag)
		}
		if err := rfs.Audit(rctx); err != nil {
			t.Fatalf("%s: audit: %v", tag, err)
		}
		// New writes must not land on the supposedly-used slow blocks: fill
		// some more and re-audit (the audit's overlap scan would catch it).
		g, err := rfs.Create(rctx, "/more-"+tag)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Append(rctx, data); err != nil {
			t.Fatal(err)
		}
		if _, err := rfs.TierPass(rctx, TierPassOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := rfs.Audit(rctx); err != nil {
			t.Fatalf("%s: audit after new writes: %v", tag, err)
		}
	}

	// Crash path first (snapshot the dirty image before the clean unmount).
	crashImg := dev.Snapshot()
	scratch := pmem.New(64 << 20)
	scratch.Restore(crashImg)
	cctx := sim.NewCtx(2, 0)
	cfs, err := Mount(cctx, scratch, Options{CPUs: 1, InodesPerCPU: 512, Tier: &TierOptions{Slow: slow, HighWater: 0.01, LowWater: 0.005}})
	if err != nil {
		t.Fatalf("crash-path mount: %v", err)
	}
	check("crash", cfs, cctx)

	// Clean path.
	if err := fs.Unmount(ctx); err != nil {
		t.Fatal(err)
	}
	rctx := sim.NewCtx(3, 0)
	rfs, err := Mount(rctx, dev, Options{CPUs: 1, InodesPerCPU: 512, Tier: &TierOptions{Slow: slow, HighWater: 0.01, LowWater: 0.005}})
	if err != nil {
		t.Fatalf("clean-path mount: %v", err)
	}
	check("clean", rfs, rctx)
}

// TestTierUntieredUnchanged: a pure-PM mount must not notice the tier code
// at all — no counters, no stats, identical behaviour.
func TestTierUntieredUnchanged(t *testing.T) {
	fs, ctx, _ := mk(t)
	if _, ok := fs.TierStats(); ok {
		t.Fatal("untired mount reports tier stats")
	}
	if fs.Tiered() {
		t.Fatal("untired mount claims to be tiered")
	}
	st, err := fs.TierPass(ctx, TierPassOptions{})
	if err != nil || st.Demotions != 0 || st.Promotions != 0 {
		t.Fatalf("TierPass on untiered mount: %+v, %v", st, err)
	}
	f, err := fs.Create(ctx, "/plain")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(ctx, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if ctx.Counters.SlowReads != 0 || ctx.Counters.AllocSpillBlocks != 0 || ctx.Counters.TierPasses != 0 {
		t.Fatalf("untiered mount touched tier counters: %+v", ctx.Counters)
	}
}
