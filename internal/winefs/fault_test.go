package winefs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// nsString is a canonical namespace snapshot for oracle comparisons.
func nsString(t *testing.T, ctx *sim.Ctx, fs *FS) string {
	t.Helper()
	var lines []string
	var walk func(dir string)
	walk = func(dir string) {
		ents, err := fs.ReadDir(ctx, dir)
		if err != nil {
			t.Fatalf("readdir %s: %v", dir, err)
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if e.IsDir {
				lines = append(lines, p+" dir")
				walk(p)
			} else {
				fi, err := fs.Stat(ctx, p)
				if err != nil {
					t.Fatalf("stat %s: %v", p, err)
				}
				lines = append(lines, fmt.Sprintf("%s file %d", p, fi.Size))
			}
		}
	}
	walk("/")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestTxOverflowAbortsCleanly: satellite of the fault work — an oversized
// raw transaction must fail with the typed ErrTxOverflow (not a panic) and
// abort must roll every logged range back.
func TestTxOverflowAbortsCleanly(t *testing.T) {
	fs, ctx, dev := mk(t)
	base := fs.g.inodeAddr(3)
	orig := make([]byte, MaxTxEntries*undoBytes)
	for i := range orig {
		orig[i] = byte(i)
	}
	dev.WriteAt(orig, base)

	tx := fs.beginTx(ctx, 0)
	var err error
	mutated := 0
	for i := 0; i < MaxTxEntries+2; i++ {
		addr := base + int64(i)*undoBytes
		if err = tx.undo(ctx, addr, undoBytes); err != nil {
			break
		}
		dev.WriteAt([]byte("XXXXXXXXXXXXXXXXXXXXXXXXXXXXXXXX"), addr)
		mutated++
	}
	if !errors.Is(err, ErrTxOverflow) {
		t.Fatalf("overflow returned %v, want ErrTxOverflow", err)
	}
	// The START entry and the COMMIT slot each take one of the reserved
	// entries: overflow fires while the transaction can still be resolved.
	if mutated != MaxTxEntries-2 {
		t.Fatalf("logged %d entries before overflow, want %d", mutated, MaxTxEntries-2)
	}
	tx.abort(ctx)
	got := make([]byte, len(orig))
	dev.ReadAt(got, base)
	if string(got) != string(orig) {
		t.Fatal("abort did not roll back logged ranges")
	}
	if ctx.Counters.JournalAborts == 0 {
		t.Fatal("abort not counted")
	}
	if tx2, _, _ := fs.journals[0].scanJournal(); tx2 != nil {
		t.Fatal("journal not quiescent after abort")
	}
}

// TestDegradedMountReadOnly: a mount that hits poisoned metadata must come
// up read-only with the reason recorded, keep serving what it could read,
// and refuse every mutation with ErrReadOnly.
func TestDegradedMountReadOnly(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(64 << 20)
	fs, err := Mkfs(ctx, dev, Options{CPUs: 1, InodesPerCPU: 512})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(ctx, "/keep")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("persistent contents survive degradation!")
	if _, err := f.Append(ctx, data); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	di, err := fs.Stat(ctx, "/d")
	if err != nil {
		t.Fatal(err)
	}
	// Crash (no unmount) with /d's inode slot poisoned.
	dev.Poison(fs.g.inodeAddr(di.Ino), 1)

	rctx := sim.NewCtx(2, 0)
	rfs, err := Mount(rctx, dev, Options{CPUs: 1, InodesPerCPU: 512})
	if err != nil {
		t.Fatalf("mount should degrade, not fail: %v", err)
	}
	reason, degraded := rfs.Degraded()
	if !degraded || reason == "" {
		t.Fatalf("Degraded() = %q, %v; want reason, true", reason, degraded)
	}
	// Survivors stay readable.
	kf, err := rfs.Open(rctx, "/keep")
	if err != nil {
		t.Fatalf("open survivor: %v", err)
	}
	buf := make([]byte, len(data))
	if _, err := kf.ReadAt(rctx, buf, 0); err != nil || string(buf) != string(data) {
		t.Fatalf("read survivor: %q, %v", buf, err)
	}
	// Every mutation path refuses with ErrReadOnly.
	if err := rfs.Mkdir(rctx, "/x"); !errors.Is(err, vfs.ErrReadOnly) {
		t.Fatalf("mkdir: %v, want ErrReadOnly", err)
	}
	if _, err := rfs.Create(rctx, "/x"); !errors.Is(err, vfs.ErrReadOnly) {
		t.Fatalf("create: %v, want ErrReadOnly", err)
	}
	if err := rfs.Unlink(rctx, "/keep"); !errors.Is(err, vfs.ErrReadOnly) {
		t.Fatalf("unlink: %v, want ErrReadOnly", err)
	}
	if _, err := kf.Append(rctx, []byte("no")); !errors.Is(err, vfs.ErrReadOnly) {
		t.Fatalf("append: %v, want ErrReadOnly", err)
	}
	if err := kf.Truncate(rctx, 0); !errors.Is(err, vfs.ErrReadOnly) {
		t.Fatalf("truncate: %v, want ErrReadOnly", err)
	}
	// A degraded unmount must not mark the superblock clean.
	if err := rfs.Unmount(rctx); err == nil {
		t.Fatal("degraded unmount succeeded (would mark superblock clean)")
	}
}

// TestPoisonedDataReadsEIO: poisoned file data surfaces as EIO through the
// vfs read path — never as garbage bytes — while healthy ranges of the same
// file keep reading correctly.
func TestPoisonedDataReadsEIO(t *testing.T) {
	fs, ctx, dev := mk(t)
	f, err := fs.Create(ctx, "/f")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 8192)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if _, err := f.Append(ctx, data); err != nil {
		t.Fatal(err)
	}
	fi, _ := fs.Stat(ctx, "/f")
	ino := fs.getInode(fi.Ino)
	if len(ino.extents) == 0 {
		t.Fatal("no extents")
	}
	// Poison one cache line in the middle of the first block.
	dev.Poison(ino.extents[0].blk*BlockSize+256, 1)

	buf := make([]byte, 64)
	// A read over the poisoned line fails with EIO.
	if _, err := f.ReadAt(ctx, buf, 256); !errors.Is(err, vfs.ErrIO) {
		t.Fatalf("poisoned read: %v, want ErrIO", err)
	}
	// Reads before and after the line still return exact bytes.
	if _, err := f.ReadAt(ctx, buf, 0); err != nil || string(buf) != string(data[:64]) {
		t.Fatalf("head read: %q, %v", buf, err)
	}
	if _, err := f.ReadAt(ctx, buf, 4096); err != nil || string(buf) != string(data[4096:4160]) {
		t.Fatalf("tail read: %q, %v", buf, err)
	}
}

// TestWraparoundCrashRecovery is the journal wraparound satellite: an
// operation whose transaction commits in the very last reservable slots
// before the journal wraps, followed by a crash, must recover to exactly
// the same namespace as the identical operation in a fresh journal.
func TestWraparoundCrashRecovery(t *testing.T) {
	run := func(nearWrap bool) (string, int) {
		ctx := sim.NewCtx(1, 0)
		dev := pmem.New(64 << 20)
		fs, err := Mkfs(ctx, dev, Options{CPUs: 1, InodesPerCPU: 512})
		if err != nil {
			t.Fatal(err)
		}
		if err := fs.Mkdir(ctx, "/d"); err != nil {
			t.Fatal(err)
		}
		j := fs.journals[0]
		entries := fs.g.journalEntries()
		if nearWrap {
			// Advance the journal with committed no-op transactions until
			// the next reservation only just fits: the create below commits
			// in the final slots before the wrap point.
			for j.tail+2*MaxTxEntries <= entries {
				tx := fs.beginTx(ctx, 0)
				if err := tx.undo(ctx, fs.g.inodeAddr(1), 16); err != nil {
					t.Fatal(err)
				}
				tx.commit(ctx)
			}
			if j.tail+MaxTxEntries > entries {
				t.Fatalf("overshot: tail=%d entries=%d", j.tail, entries)
			}
		}
		wrapBefore := j.wrap
		f, err := fs.Create(ctx, "/d/f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Append(ctx, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		if nearWrap && j.wrap == wrapBefore && j.tail+MaxTxEntries <= entries {
			t.Fatalf("create/append never reached the wrap region: tail=%d", j.tail)
		}
		// Crash: remount the raw image on a fresh device.
		scratch := pmem.New(64 << 20)
		scratch.Restore(dev.Snapshot())
		rctx := sim.NewCtx(2, 0)
		rfs, err := Mount(rctx, scratch, Options{CPUs: 1, InodesPerCPU: 512})
		if err != nil {
			t.Fatalf("recovery mount: %v", err)
		}
		if reason, degraded := rfs.Degraded(); degraded {
			t.Fatalf("recovery degraded: %s", reason)
		}
		if rep := Check(scratch); !rep.OK() {
			t.Fatalf("post-recovery fsck: %v", rep.Errors)
		}
		return nsString(t, rctx, rfs), int(j.wrap)
	}
	control, _ := run(false)
	wrapped, wrap := run(true)
	if wrap < 1 {
		t.Fatalf("wrap counter = %d", wrap)
	}
	if control != wrapped {
		t.Fatalf("wraparound recovery diverged:\nfresh: %q\n wrap: %q", control, wrapped)
	}
}

// TestRepairQuarantinesOrphan: a live inode whose only dirent is lost must
// be moved into /lost+found by Repair, not destroyed.
func TestRepairQuarantinesOrphan(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(64 << 20)
	fs, err := Mkfs(ctx, dev, Options{CPUs: 1, InodesPerCPU: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(ctx, "/d/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(ctx, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	fi, _ := fs.Stat(ctx, "/d/f")
	di, _ := fs.Stat(ctx, "/d")

	// Knock out the dirent for "f" on PM.
	dino := fs.getInode(di.Ino)
	found := false
	buf := make([]byte, DirentSize)
	for _, e := range dino.extents {
		for b := e.blk; b < e.blk+e.length && !found; b++ {
			for off := int64(0); off < BlockSize; off += DirentSize {
				dev.ReadAt(buf, b*BlockSize+off)
				cino, name, valid := decodeDirent(buf)
				if valid && cino == fi.Ino && name == "f" {
					dev.WriteAt([]byte{0}, b*BlockSize+off+8)
					found = true
					break
				}
			}
		}
	}
	if !found {
		t.Fatal("dirent for /d/f not found on device")
	}

	rep, err := Repair(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("repair not clean: %v", rep.PostErrors)
	}
	if len(rep.Orphans) != 1 || rep.Orphans[0] != fi.Ino {
		t.Fatalf("orphans = %v, want [%d]", rep.Orphans, fi.Ino)
	}

	mctx := sim.NewCtx(2, 0)
	mfs, err := Mount(mctx, dev, Options{CPUs: 1, InodesPerCPU: 512})
	if err != nil {
		t.Fatal(err)
	}
	if reason, degraded := mfs.Degraded(); degraded {
		t.Fatalf("post-repair degraded: %s", reason)
	}
	lost := fmt.Sprintf("/lost+found/lost+%d", fi.Ino)
	lfi, err := mfs.Stat(mctx, lost)
	if err != nil {
		t.Fatalf("quarantined file missing at %s: %v", lost, err)
	}
	if lfi.Size != 4096 {
		t.Fatalf("quarantined size = %d, want 4096", lfi.Size)
	}
	// Its data survived quarantine.
	lf, err := mfs.Open(mctx, lost)
	if err != nil {
		t.Fatal(err)
	}
	rbuf := make([]byte, 4096)
	if _, err := lf.ReadAt(mctx, rbuf, 0); err != nil {
		t.Fatalf("read quarantined data: %v", err)
	}
}

// TestRepairTruncatesBadExtents: a poisoned extent record costs the file
// its tail, never its head, and never the whole file system.
func TestRepairTruncatesBadExtents(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(64 << 20)
	fs, err := Mkfs(ctx, dev, Options{CPUs: 1, InodesPerCPU: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave appends to two files so each accumulates multiple extent
	// records.
	fa, _ := fs.Create(ctx, "/a")
	fb, _ := fs.Create(ctx, "/b")
	for i := 0; i < 6; i++ {
		if _, err := fa.Append(ctx, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.Append(ctx, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	fi, _ := fs.Stat(ctx, "/a")
	ino := fs.getInode(fi.Ino)
	if len(ino.extents) < 5 {
		t.Skip("allocator merged extents; cannot build a multi-record file")
	}
	// Poison the cache line holding inline extent records 4..7. Poison is
	// 64-byte granular and extent records are 16 bytes, so records 0..3
	// (the first line) survive: the repaired file keeps its first 4 blocks.
	dev.Poison(fs.g.inodeAddr(fi.Ino)+inoOffExtents+4*extentSize, 1)

	rep, err := Repair(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatalf("repair not clean: %v", rep.PostErrors)
	}
	if len(rep.ExtentsTruncated) != 1 || rep.ExtentsTruncated[0] != fi.Ino {
		t.Fatalf("truncated = %v, want [%d]", rep.ExtentsTruncated, fi.Ino)
	}

	mctx := sim.NewCtx(2, 0)
	mfs, err := Mount(mctx, dev, Options{CPUs: 1, InodesPerCPU: 512})
	if err != nil {
		t.Fatal(err)
	}
	afi, err := mfs.Stat(mctx, "/a")
	if err != nil {
		t.Fatalf("/a lost entirely: %v", err)
	}
	if afi.Size == 0 || afi.Size >= 6*4096 {
		t.Fatalf("size = %d, want head-only truncation in (0, 24576)", afi.Size)
	}
	// The surviving head is still readable, and /b is untouched.
	af, _ := mfs.Open(mctx, "/a")
	if _, err := af.ReadAt(mctx, make([]byte, afi.Size), 0); err != nil {
		t.Fatalf("read surviving head: %v", err)
	}
	bfi, err := mfs.Stat(mctx, "/b")
	if err != nil || bfi.Size != 6*4096 {
		t.Fatalf("/b damaged: size=%d err=%v", bfi.Size, err)
	}
}
