// Package winefs implements the paper's contribution: a hugepage-aware
// persistent-memory file system that ages gracefully.
//
// The design follows §3 of the paper end to end:
//
//   - the partition is split per logical CPU; each CPU owns a journal, an
//     inode table, and a data pool (Figure 5);
//   - a novel alignment-aware allocator keeps two pools per CPU — aligned
//     2MiB extents in a FIFO list and unaligned "holes" in a red-black tree
//     with first-fit allocation;
//   - crash consistency uses per-CPU fine-grained undo journals with
//     64-byte entries, a shared atomic transaction ID, and per-journal
//     wraparound counters;
//   - metadata lives at fixed, in-place-updated locations so it never
//     fragments the data area ("controlled fragmentation");
//   - data atomicity in strict mode is hybrid: journaling for aligned
//     extents (layout preserved), copy-on-write into fresh holes for
//     unaligned extents;
//   - DRAM red-black trees index directories and free space;
//   - on clean unmount the DRAM allocator state is serialised to PM; after
//     a crash it is rebuilt by scanning the per-CPU inode tables in
//     parallel, after rolling back uncommitted journal transactions.
package winefs

import (
	"encoding/binary"

	"repro/internal/alloc"
)

const (
	// BlockSize is the file-system block size.
	BlockSize = alloc.BlockSize
	// BlocksPerHuge is the number of blocks per 2MiB aligned extent.
	BlocksPerHuge = alloc.BlocksPerHuge

	// Magic identifies a WineFS superblock.
	Magic = 0x57494e45 // "WINE"

	// InodeSize is the on-PM inode slot size.
	InodeSize = 512
	// InodesPerBlock is how many inode slots fit one block.
	InodesPerBlock = BlockSize / InodeSize

	// InlineExtents is the number of extent slots inside the inode.
	InlineExtents = 12
	// extentSize is the on-PM size of one extent record.
	extentSize = 16
	// extPerIndirect is how many extent records fit an indirect block
	// (minus the 8-byte next pointer).
	extPerIndirect = (BlockSize - 8) / extentSize

	// JournalBlocks is the per-CPU journal size in blocks (64 × 4KiB =
	// 256KiB = 4096 entries: generous given transactions are ≤10 entries
	// and reclaimed immediately).
	JournalBlocks = 64
	// EntrySize is the journal entry size: one cache line (§3.5).
	EntrySize = 64
	// MaxTxEntries is the most log entries any system call needs (§3.6:
	// "across all system calls, the maximum number of log-entries required
	// are 10, occupying 640 bytes").
	MaxTxEntries = 10

	// DirentSize is the on-PM directory entry size.
	DirentSize = 64
	// MaxNameLen is the longest file name a dirent can hold.
	MaxNameLen = DirentSize - 10

	// inodeMagic marks a live inode slot.
	inodeMagic = 0xA11E
)

// Inode type codes.
const (
	typeFree = 0
	typeFile = 1
	typeDir  = 2
)

// Inode flags.
const (
	flagAligned = 1 << 0 // the file carries the alignment xattr (§3.6)
)

// geometry computes and caches all on-PM offsets. Everything is derived
// from the device size and CPU count at mkfs time and re-derived at mount.
type geometry struct {
	totalBlocks  int64
	cpus         int
	inodesPerCPU int64

	unmountStart    int64 // block of the serialized-freelist area
	unmountBlocks   int64
	cpuRegionStart  int64 // first per-CPU metadata block
	cpuRegionBlocks int64 // journal + inode table, per CPU
	dataStart       int64 // first data block
	dataBlocks      int64 // total data blocks
	poolBlocks      int64 // data blocks per CPU pool
}

func makeGeometry(totalBlocks int64, cpus int, inodesPerCPU int64) geometry {
	g := geometry{totalBlocks: totalBlocks, cpus: cpus, inodesPerCPU: inodesPerCPU}
	if g.inodesPerCPU == 0 {
		// Default: one inode per 32 data blocks, at least 512 per CPU.
		g.inodesPerCPU = totalBlocks / 32 / int64(cpus)
		if g.inodesPerCPU < 512 {
			g.inodesPerCPU = 512
		}
	}
	// Round inode count to whole blocks.
	g.inodesPerCPU = (g.inodesPerCPU + InodesPerBlock - 1) / InodesPerBlock * InodesPerBlock
	g.unmountStart = 1 // block 0 is the superblock
	g.unmountBlocks = totalBlocks / 512
	if g.unmountBlocks < 16 {
		g.unmountBlocks = 16
	}
	g.cpuRegionStart = g.unmountStart + g.unmountBlocks
	inodeBlocks := g.inodesPerCPU / InodesPerBlock
	g.cpuRegionBlocks = JournalBlocks + inodeBlocks
	metaEnd := g.cpuRegionStart + g.cpuRegionBlocks*int64(cpus)
	// Data area starts at the next hugepage boundary so pools begin aligned.
	g.dataStart = (metaEnd + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
	g.dataBlocks = totalBlocks - g.dataStart
	// Each CPU pool is a whole number of hugepage extents.
	g.poolBlocks = g.dataBlocks / int64(cpus) / BlocksPerHuge * BlocksPerHuge
	return g
}

// journalBase returns the byte address of cpu's journal region (header
// entry + entry array).
func (g *geometry) journalBase(cpu int) int64 {
	return (g.cpuRegionStart + g.cpuRegionBlocks*int64(cpu)) * BlockSize
}

// journalEntries is the usable entry count per journal (slot 0 is the
// header).
func (g *geometry) journalEntries() int64 {
	return JournalBlocks*BlockSize/EntrySize - 1
}

// inodeTableBase returns the byte address of cpu's inode table.
func (g *geometry) inodeTableBase(cpu int) int64 {
	return (g.cpuRegionStart + g.cpuRegionBlocks*int64(cpu) + JournalBlocks) * BlockSize
}

// inodeAddr returns the byte address of an inode slot. Ino 0 is invalid;
// ino n lives on CPU (n-1)/inodesPerCPU at slot (n-1)%inodesPerCPU.
func (g *geometry) inodeAddr(ino uint64) int64 {
	idx := int64(ino - 1)
	cpu := int(idx / g.inodesPerCPU)
	slot := idx % g.inodesPerCPU
	return g.inodeTableBase(cpu) + slot*InodeSize
}

// inoFor composes an inode number from CPU and slot.
func (g *geometry) inoFor(cpu int, slot int64) uint64 {
	return uint64(int64(cpu)*g.inodesPerCPU+slot) + 1
}

// cpuOfIno returns the CPU whose table holds ino.
func (g *geometry) cpuOfIno(ino uint64) int {
	return int(int64(ino-1) / g.inodesPerCPU)
}

// poolRange returns cpu's data pool as [start, end) blocks.
func (g *geometry) poolRange(cpu int) (start, end int64) {
	start = g.dataStart + int64(cpu)*g.poolBlocks
	return start, start + g.poolBlocks
}

// cpuOfBlock returns the CPU whose pool contains the block, for returning
// freed extents to their original pool (§3.4).
func (g *geometry) cpuOfBlock(blk int64) int {
	c := int((blk - g.dataStart) / g.poolBlocks)
	if c < 0 {
		c = 0
	}
	if c >= g.cpus {
		c = g.cpus - 1
	}
	return c
}

// --- superblock -----------------------------------------------------------

type superblock struct {
	magic        uint32
	version      uint32
	totalBlocks  int64
	cpus         int32
	inodesPerCPU int64
	clean        bool
	nextTxID     uint64 // persisted at unmount so TxIDs keep increasing
}

const sbSize = 64

func (sb *superblock) encode() []byte {
	b := make([]byte, sbSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], sb.magic)
	le.PutUint32(b[4:], sb.version)
	le.PutUint64(b[8:], uint64(sb.totalBlocks))
	le.PutUint32(b[16:], uint32(sb.cpus))
	le.PutUint64(b[20:], uint64(sb.inodesPerCPU))
	if sb.clean {
		b[28] = 1
	}
	le.PutUint64(b[32:], sb.nextTxID)
	return b
}

func decodeSuperblock(b []byte) superblock {
	le := binary.LittleEndian
	return superblock{
		magic:        le.Uint32(b[0:]),
		version:      le.Uint32(b[4:]),
		totalBlocks:  int64(le.Uint64(b[8:])),
		cpus:         int32(le.Uint32(b[16:])),
		inodesPerCPU: int64(le.Uint64(b[20:])),
		clean:        b[28] == 1,
		nextTxID:     le.Uint64(b[32:]),
	}
}

// --- on-PM inode ----------------------------------------------------------

// wextent is a file extent: fileBlk is the logical block offset within the
// file, blk the physical block, and len the run length in blocks. Files may
// be sparse (gaps in fileBlk).
type wextent struct {
	fileBlk int64
	blk     int64
	length  int64

	// heat counts recent accesses for tier placement (DRAM-only: not
	// encoded in the 16-byte PM record, so it resets to cold at mount).
	// Bumped atomically under a shared ino.mu, aged by TierPass.
	heat int64
}

func encodeExtent(b []byte, e wextent) {
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(e.fileBlk))
	le.PutUint32(b[4:], uint32(e.blk))
	le.PutUint32(b[8:], uint32(e.length))
	le.PutUint32(b[12:], 0)
}

func decodeExtent(b []byte) wextent {
	le := binary.LittleEndian
	return wextent{
		fileBlk: int64(le.Uint32(b[0:])),
		blk:     int64(le.Uint32(b[4:])),
		length:  int64(le.Uint32(b[8:])),
	}
}

// dinode is the decoded on-PM inode header.
type dinode struct {
	magic    uint16
	typ      uint8
	flags    uint32
	size     int64
	nlink    uint32
	extCount uint32
	indirect int64 // block number of first indirect extent block, 0 = none
}

// Inode header field offsets within the 512-byte slot. The first 32 bytes
// form "piece 0", journaled as a unit; extent slots are journaled
// individually (16B each, two per 32-byte undo record at worst).
const (
	inoOffMagic    = 0
	inoOffType     = 2
	inoOffFlags    = 4
	inoOffSize     = 8
	inoOffNlink    = 16
	inoOffExtCount = 20
	inoOffIndirect = 24
	inoOffExtents  = 64
)

func (di *dinode) encodeHeader() []byte {
	b := make([]byte, inoOffExtents)
	le := binary.LittleEndian
	le.PutUint16(b[inoOffMagic:], di.magic)
	b[inoOffType] = di.typ
	le.PutUint32(b[inoOffFlags:], di.flags)
	le.PutUint64(b[inoOffSize:], uint64(di.size))
	le.PutUint32(b[inoOffNlink:], di.nlink)
	le.PutUint32(b[inoOffExtCount:], di.extCount)
	le.PutUint64(b[inoOffIndirect:], uint64(di.indirect))
	return b
}

func decodeInodeHeader(b []byte) dinode {
	le := binary.LittleEndian
	return dinode{
		magic:    le.Uint16(b[inoOffMagic:]),
		typ:      b[inoOffType],
		flags:    le.Uint32(b[inoOffFlags:]),
		size:     int64(le.Uint64(b[inoOffSize:])),
		nlink:    le.Uint32(b[inoOffNlink:]),
		extCount: le.Uint32(b[inoOffExtCount:]),
		indirect: int64(le.Uint64(b[inoOffIndirect:])),
	}
}

// --- on-PM dirent ---------------------------------------------------------

// dirent layout: ino u64 | valid u8 | nameLen u8 | name[54].
func encodeDirent(b []byte, ino uint64, name string) {
	le := binary.LittleEndian
	for i := range b[:DirentSize] {
		b[i] = 0
	}
	le.PutUint64(b[0:], ino)
	b[8] = 1
	b[9] = uint8(len(name))
	copy(b[10:], name)
}

func decodeDirent(b []byte) (ino uint64, name string, valid bool) {
	le := binary.LittleEndian
	ino = le.Uint64(b[0:])
	valid = b[8] == 1
	n := int(b[9])
	if n > MaxNameLen {
		n = MaxNameLen
	}
	name = string(b[10 : 10+n])
	return
}
