package winefs_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/geriatrix"
	"repro/internal/mmu"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

// TestSoakLifecycle drives one WineFS instance through the full lifecycle
// the paper envisions: age it with churn, run an mmap application on the
// aged FS, crash it mid-life, recover, verify everything with fsck and
// content checks, unmount cleanly, and remount — several times over.
func TestSoakLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	dev := pmem.New(1 << 30)
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: age to 60%.
	ager := geriatrix.New(fs, geriatrix.Config{TargetUtil: 0.6, ChurnFactor: 0.5, Seed: 9})
	if _, err := ager.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if err := fs.Audit(ctx); err != nil {
		t.Fatalf("audit after aging: %v", err)
	}

	payloads := map[string][]byte{}
	for cycle := 0; cycle < 3; cycle++ {
		// Phase 2: an mmap application writes recognisable data.
		name := fmt.Sprintf("/app%d", cycle)
		f, err := fs.Create(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		size := int64(8 << 20)
		if err := f.Fallocate(ctx, 0, size); err != nil {
			t.Fatal(err)
		}
		m, err := f.Mmap(ctx, size)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{byte(0x10 + cycle)}, int(size))
		if err := m.Write(ctx, payload, 0); err != nil {
			t.Fatal(err)
		}
		payloads[name] = payload
		// Aged WineFS still maps the app file with hugepages.
		if _, huge := m.MappedPages(); huge == 0 {
			t.Fatalf("cycle %d: aged WineFS gave no hugepages", cycle)
		}

		// Phase 3: more churn.
		if err := ager.RaiseUtil(ctx, 0.6+float64(cycle)*0.05); err != nil {
			t.Fatal(err)
		}
		if err := fs.Audit(ctx); err != nil {
			t.Fatalf("cycle %d: audit after churn: %v", cycle, err)
		}

		// Phase 4: crash (no unmount), recover, verify.
		rctx := sim.NewCtx(10+cycle, 0)
		rfs, err := winefs.Mount(rctx, dev, winefs.Options{CPUs: 4})
		if err != nil {
			t.Fatalf("cycle %d: recovery mount: %v", cycle, err)
		}
		if rep := winefs.Check(dev); !rep.OK() {
			t.Fatalf("cycle %d: fsck after crash: %v", cycle, rep.Errors[0])
		}
		// The rebuilt allocator must reconcile exactly, even after a crash.
		if err := rfs.Audit(rctx); err != nil {
			t.Fatalf("cycle %d: audit after recovery: %v", cycle, err)
		}
		for n, want := range payloads {
			g, err := rfs.Open(rctx, n)
			if err != nil {
				t.Fatalf("cycle %d: open %s: %v", cycle, n, err)
			}
			got := make([]byte, 4096)
			for _, off := range []int64{0, int64(len(want)) / 2, int64(len(want)) - 4096} {
				if _, err := g.ReadAt(rctx, got, off); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want[off:off+4096]) {
					t.Fatalf("cycle %d: %s corrupted at %d", cycle, n, off)
				}
			}
		}

		// Phase 5: clean unmount + remount; continue on the new instance.
		// saveFreeState serialises the allocator from a snapshot taken with
		// every group locked at once; the free-extent list must round-trip
		// through the unmount record exactly — a torn snapshot would leak
		// or double-count blocks here.
		freeBefore := rfs.FreeExtents()
		if err := rfs.Unmount(rctx); err != nil {
			t.Fatal(err)
		}
		cctx := sim.NewCtx(20+cycle, 0)
		fs, err = winefs.Mount(cctx, dev, winefs.Options{CPUs: 4})
		if err != nil {
			t.Fatal(err)
		}
		if freeAfter := fs.FreeExtents(); !reflect.DeepEqual(freeBefore, freeAfter) {
			t.Fatalf("cycle %d: free space changed across unmount/remount: %d extents before, %d after",
				cycle, len(freeBefore), len(freeAfter))
		}
		ctx = cctx
		// Re-bind the ager to the fresh instance: recreate its view by
		// re-discovering live files (the ager tracks paths only).
		ager = geriatrix.New(fs, geriatrix.Config{TargetUtil: 0.6, ChurnFactor: 0.1, Seed: uint64(100 + cycle)})
		if _, err := ager.Run(ctx); err != nil && err != vfs.ErrNoSpace {
			t.Fatal(err)
		}
		if err := fs.Audit(ctx); err != nil {
			t.Fatalf("cycle %d: audit after remount churn: %v", cycle, err)
		}
	}
	_ = mmu.HugePage
}

// TestThreadMigrationKeepsJournal covers §3.6 "Handling thread
// migrations": a transaction created on one CPU finishes in that CPU's
// journal even if the scheduler moves the thread mid-operation. With our
// API the binding is structural (the txn holds its journal), so the test
// asserts the observable contract: operations from a migrating thread are
// crash-consistent and fsck-clean.
func TestThreadMigrationKeepsJournal(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(256 << 20)
	fs, _ := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	for i := 0; i < 50; i++ {
		ctx.CPU = i % 4 // the scheduler migrates the thread between ops
		name := fmt.Sprintf("/m%d", i)
		f, err := fs.Create(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Append(ctx, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := fs.Unlink(ctx, name); err != nil {
				t.Fatal(err)
			}
		}
	}
	rctx := sim.NewCtx(2, 0)
	if _, err := winefs.Mount(rctx, dev, winefs.Options{CPUs: 4}); err != nil {
		t.Fatal(err)
	}
	if rep := winefs.Check(dev); !rep.OK() {
		t.Fatalf("fsck: %v", rep.Errors)
	}
}
