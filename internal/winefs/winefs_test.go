package winefs_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/mmu"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

func newFS(t *testing.T, size int64, opts winefs.Options) (*winefs.FS, *sim.Ctx) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(size)
	fs, err := winefs.Mkfs(ctx, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	return fs, ctx
}

func defaultFS(t *testing.T) (*winefs.FS, *sim.Ctx) {
	return newFS(t, 256<<20, winefs.Options{CPUs: 4, Mode: vfs.Strict})
}

func TestCreateWriteRead(t *testing.T) {
	fs, ctx := defaultFS(t)
	f, err := fs.Create(ctx, "/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("wine ages gracefully")
	if n, err := f.WriteAt(ctx, data, 0); err != nil || n != len(data) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := f.ReadAt(ctx, got, 0); err != nil || n != len(data) {
		t.Fatalf("read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: %q", got)
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("size = %d", f.Size())
	}
	// Read past EOF.
	if n, err := f.ReadAt(ctx, got, 1000); err != nil || n != 0 {
		t.Fatalf("past-EOF read: n=%d err=%v", n, err)
	}
}

// TestRootPathOpsRejected: every spelling that cleans to "/" has no final
// path element, so namespace-mutating ops must refuse it (via
// vfs.SplitParent) instead of manufacturing a nameless dirent.
func TestRootPathOpsRejected(t *testing.T) {
	fs, ctx := defaultFS(t)
	if err := fs.Mkdir(ctx, "/scratch"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/", "", "//", "/.", "/scratch/..", "/../."} {
		if _, err := fs.Create(ctx, p); err != vfs.ErrExist {
			t.Errorf("Create(%q) = %v, want ErrExist", p, err)
		}
		if err := fs.Mkdir(ctx, p); err != vfs.ErrExist {
			t.Errorf("Mkdir(%q) = %v, want ErrExist", p, err)
		}
		if err := fs.Unlink(ctx, p); err != vfs.ErrExist {
			t.Errorf("Unlink(%q) = %v, want ErrExist", p, err)
		}
		if err := fs.Rmdir(ctx, p); err != vfs.ErrExist {
			t.Errorf("Rmdir(%q) = %v, want ErrExist", p, err)
		}
		if err := fs.Rename(ctx, p, "/elsewhere"); err != vfs.ErrExist {
			t.Errorf("Rename(%q, /elsewhere) = %v, want ErrExist", p, err)
		}
		if err := fs.Rename(ctx, "/scratch", p); err != vfs.ErrExist {
			t.Errorf("Rename(/scratch, %q) = %v, want ErrExist", p, err)
		}
	}
	// Read-only ops on the root keep working.
	if fi, err := fs.Stat(ctx, "/"); err != nil || !fi.IsDir {
		t.Fatalf("Stat(/) = %+v, %v", fi, err)
	}
	if _, err := fs.ReadDir(ctx, "/"); err != nil {
		t.Fatalf("ReadDir(/) = %v", err)
	}
	// No empty-named dirent appeared anywhere.
	ents, err := fs.ReadDir(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name == "" {
			t.Fatal("empty-named dirent manufactured in root")
		}
	}
}

func TestCreateInSubdir(t *testing.T) {
	fs, ctx := defaultFS(t)
	if err := fs.Mkdir(ctx, "/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir(ctx, "/a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(ctx, "/a/b/f"); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat(ctx, "/a/b/f")
	if err != nil || fi.IsDir {
		t.Fatalf("stat: %+v err=%v", fi, err)
	}
	if _, err := fs.Create(ctx, "/missing/f"); err != vfs.ErrNotExist {
		t.Fatalf("create in missing dir: %v", err)
	}
	if err := fs.Mkdir(ctx, "/a"); err != vfs.ErrExist {
		t.Fatalf("duplicate mkdir: %v", err)
	}
}

func TestUnlinkAndSpaceReclaim(t *testing.T) {
	fs, ctx := defaultFS(t)
	// Warm the root directory so its dirent block is already allocated.
	fs.Create(ctx, "/warm")
	before := fs.StatFS(ctx).FreeBlocks
	f, _ := fs.Create(ctx, "/big")
	if err := f.Fallocate(ctx, 0, 8<<20); err != nil {
		t.Fatal(err)
	}
	mid := fs.StatFS(ctx).FreeBlocks
	if before-mid < (8<<20)/winefs.BlockSize {
		t.Fatalf("allocation did not consume space: %d -> %d", before, mid)
	}
	if err := fs.Unlink(ctx, "/big"); err != nil {
		t.Fatal(err)
	}
	after := fs.StatFS(ctx).FreeBlocks
	if after != before {
		t.Fatalf("space leak after unlink: before=%d after=%d", before, after)
	}
	if _, err := fs.Open(ctx, "/big"); err != vfs.ErrNotExist {
		t.Fatalf("open deleted: %v", err)
	}
}

func TestAlignedPoolRestoredAfterDelete(t *testing.T) {
	// The allocator invariant at the heart of aging resistance: freeing a
	// hugepage-sized file restores the aligned extent pool exactly.
	fs, ctx := defaultFS(t)
	fs.Create(ctx, "/warm") // pre-allocate the root dirent block
	a0 := fs.StatFS(ctx).FreeAligned2M
	f, _ := fs.Create(ctx, "/x")
	if err := f.Fallocate(ctx, 0, 16*alloc.HugeBytes); err != nil {
		t.Fatal(err)
	}
	if got := fs.StatFS(ctx).FreeAligned2M; got != a0-16 {
		t.Fatalf("aligned extents after alloc = %d, want %d", got, a0-16)
	}
	if err := fs.Unlink(ctx, "/x"); err != nil {
		t.Fatal(err)
	}
	if got := fs.StatFS(ctx).FreeAligned2M; got != a0 {
		t.Fatalf("aligned extents after delete = %d, want %d", got, a0)
	}
}

func TestSmallFilesUseHoles(t *testing.T) {
	// Small allocations must come from holes (broken-up aligned extents),
	// not consume one aligned extent each.
	fs, ctx := defaultFS(t)
	a0 := fs.StatFS(ctx).FreeAligned2M
	for i := 0; i < 100; i++ {
		f, err := fs.Create(ctx, fmt.Sprintf("/small%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(ctx, make([]byte, 4096), 0); err != nil {
			t.Fatal(err)
		}
	}
	used := a0 - fs.StatFS(ctx).FreeAligned2M
	// 100 small files (+dir blocks) should fit in a handful of broken
	// extents, not one per file.
	if used > 3 {
		t.Fatalf("small files consumed %d aligned extents", used)
	}
}

func TestLargeFileGetsAlignedExtents(t *testing.T) {
	fs, ctx := defaultFS(t)
	f, _ := fs.Create(ctx, "/large")
	data := make([]byte, 4*alloc.HugeBytes)
	if _, err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	exts := f.Extents()
	for chunk := int64(0); chunk < 4*mmu.HugePage; chunk += mmu.HugePage {
		if _, ok := mmu.HugeEligible(exts, chunk); !ok {
			t.Fatalf("chunk %d of large file not hugepage-eligible: %+v", chunk, exts)
		}
	}
}

func TestMmapLargeFileUsesHugepages(t *testing.T) {
	fs, ctx := defaultFS(t)
	f, _ := fs.Create(ctx, "/m")
	if err := f.Fallocate(ctx, 0, 4*alloc.HugeBytes); err != nil {
		t.Fatal(err)
	}
	m, err := f.Mmap(ctx, 4*mmu.HugePage)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Reset()
	if err := m.Touch(ctx, 0, 4*mmu.HugePage, true); err != nil {
		t.Fatal(err)
	}
	if ctx.Counters.HugeFaults != 4 || ctx.Counters.PageFaults != 0 {
		t.Fatalf("faults: huge=%d base=%d", ctx.Counters.HugeFaults, ctx.Counters.PageFaults)
	}
}

func TestSparseMmapAllocatesOnFault(t *testing.T) {
	// LMDB-style: ftruncate to a large size, fault on demand. WineFS should
	// serve whole aligned chunks so even sparse mappings get hugepages.
	fs, ctx := defaultFS(t)
	f, _ := fs.Create(ctx, "/sparse")
	if err := f.Truncate(ctx, 8*mmu.HugePage); err != nil {
		t.Fatal(err)
	}
	if got := fs.StatFS(ctx).FreeBlocks; got == 0 {
		t.Fatal("truncate should not allocate")
	}
	m, err := f.Mmap(ctx, 8*mmu.HugePage)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Reset()
	// Touch one byte in chunk 3.
	if err := m.Write(ctx, []byte{42}, 3*mmu.HugePage+100); err != nil {
		t.Fatal(err)
	}
	if ctx.Counters.HugeFaults != 1 {
		t.Fatalf("sparse fault not served with hugepage: huge=%d base=%d",
			ctx.Counters.HugeFaults, ctx.Counters.PageFaults)
	}
	// The data must be readable through the file interface too.
	var b [1]byte
	if _, err := f.ReadAt(ctx, b[:], 3*mmu.HugePage+100); err != nil || b[0] != 42 {
		t.Fatalf("read through syscall: %v %d", err, b[0])
	}
}

func TestSparseReadIsZero(t *testing.T) {
	fs, ctx := defaultFS(t)
	f, _ := fs.Create(ctx, "/s")
	if err := f.Truncate(ctx, 1<<20); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = 0xff
	}
	if _, err := f.ReadAt(ctx, buf, 8192); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("sparse read not zero")
		}
	}
}

func TestOverwriteStrictPreservesContent(t *testing.T) {
	fs, ctx := defaultFS(t)
	f, _ := fs.Create(ctx, "/o")
	base := make([]byte, 64<<10)
	for i := range base {
		base[i] = byte(i % 251)
	}
	if _, err := f.WriteAt(ctx, base, 0); err != nil {
		t.Fatal(err)
	}
	// Overwrite a misaligned middle range (hole-backed file → CoW path).
	patch := bytes.Repeat([]byte{0xEE}, 5000)
	if _, err := f.WriteAt(ctx, patch, 1234); err != nil {
		t.Fatal(err)
	}
	want := append([]byte{}, base...)
	copy(want[1234:], patch)
	got := make([]byte, len(base))
	if _, err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("overwrite corrupted file")
	}
	if ctx.Counters.CoWCopies == 0 {
		t.Fatal("expected CoW for hole-backed overwrite in strict mode")
	}
}

func TestOverwriteAlignedUsesDataJournal(t *testing.T) {
	fs, ctx := defaultFS(t)
	f, _ := fs.Create(ctx, "/aj")
	if _, err := f.WriteAt(ctx, make([]byte, 2*alloc.HugeBytes), 0); err != nil {
		t.Fatal(err)
	}
	ctx.Reset()
	if _, err := f.WriteAt(ctx, make([]byte, 8192), 4096); err != nil {
		t.Fatal(err)
	}
	if ctx.Counters.CoWCopies != 0 {
		t.Fatal("aligned-extent overwrite must not CoW (it would lose hugepages)")
	}
	if ctx.Counters.JournalBytes < 8192 {
		t.Fatalf("expected data journaling, journal bytes = %d", ctx.Counters.JournalBytes)
	}
	// Layout must still be hugepage-eligible.
	if _, ok := mmu.HugeEligible(f.Extents(), 0); !ok {
		t.Fatal("overwrite destroyed alignment")
	}
}

func TestRelaxedModeSkipsDataAtomicity(t *testing.T) {
	fs, ctx := newFS(t, 256<<20, winefs.Options{CPUs: 4, Mode: vfs.Relaxed})
	f, _ := fs.Create(ctx, "/r")
	if _, err := f.WriteAt(ctx, make([]byte, 64<<10), 0); err != nil {
		t.Fatal(err)
	}
	ctx.Reset()
	if _, err := f.WriteAt(ctx, make([]byte, 8192), 1000); err != nil {
		t.Fatal(err)
	}
	if ctx.Counters.CoWCopies != 0 {
		t.Fatal("relaxed mode must not CoW")
	}
	if err := f.Fsync(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestAppendGrowsWithoutCopy(t *testing.T) {
	// The WiredTiger case (§5.5): unaligned appends continue in the
	// partially filled last block without copying old data.
	fs, ctx := defaultFS(t)
	f, _ := fs.Create(ctx, "/wt")
	chunk := make([]byte, 1000) // unaligned append size
	for i := 0; i < 50; i++ {
		for j := range chunk {
			chunk[j] = byte(i)
		}
		if _, err := f.Append(ctx, chunk); err != nil {
			t.Fatal(err)
		}
	}
	if f.Size() != 50000 {
		t.Fatalf("size after appends = %d", f.Size())
	}
	got := make([]byte, 1000)
	if _, err := f.ReadAt(ctx, got, 17*1000); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 17 {
			t.Fatalf("append data corrupted: %d", b)
		}
	}
	if ctx.Counters.CoWCopies != 0 {
		t.Fatal("appends must not trigger CoW")
	}
}

func TestRename(t *testing.T) {
	fs, ctx := defaultFS(t)
	fs.Mkdir(ctx, "/d1")
	fs.Mkdir(ctx, "/d2")
	f, _ := fs.Create(ctx, "/d1/f")
	f.WriteAt(ctx, []byte("payload"), 0)
	if err := fs.Rename(ctx, "/d1/f", "/d2/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(ctx, "/d1/f"); err != vfs.ErrNotExist {
		t.Fatalf("old path: %v", err)
	}
	g, err := fs.Open(ctx, "/d2/g")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	g.ReadAt(ctx, buf, 0)
	if string(buf) != "payload" {
		t.Fatalf("content after rename: %q", buf)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	fs, ctx := defaultFS(t)
	a, _ := fs.Create(ctx, "/a")
	a.WriteAt(ctx, []byte("AAA"), 0)
	b, _ := fs.Create(ctx, "/b")
	b.WriteAt(ctx, []byte("BBBBBB"), 0)
	free0 := fs.StatFS(ctx).FreeBlocks
	if err := fs.Rename(ctx, "/a", "/b"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Open(ctx, "/b")
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 3 {
		t.Fatalf("replaced target size = %d", got.Size())
	}
	if fs.StatFS(ctx).FreeBlocks <= free0 {
		t.Fatal("victim's blocks were not freed")
	}
}

func TestRmdirSemantics(t *testing.T) {
	fs, ctx := defaultFS(t)
	fs.Mkdir(ctx, "/d")
	fs.Create(ctx, "/d/f")
	if err := fs.Rmdir(ctx, "/d"); err != vfs.ErrNotEmpty {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	fs.Unlink(ctx, "/d/f")
	if err := fs.Rmdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(ctx, "/d"); err != vfs.ErrNotExist {
		t.Fatalf("rmdir twice: %v", err)
	}
}

func TestReadDir(t *testing.T) {
	fs, ctx := defaultFS(t)
	names := []string{"zeta", "alpha", "mid"}
	for _, n := range names {
		fs.Create(ctx, "/"+n)
	}
	fs.Mkdir(ctx, "/sub")
	ents, err := fs.ReadDir(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("readdir count = %d", len(ents))
	}
	// rbtree index yields sorted order.
	if ents[0].Name != "alpha" || ents[3].Name != "zeta" {
		t.Fatalf("order: %+v", ents)
	}
	for _, e := range ents {
		if e.Name == "sub" && !e.IsDir {
			t.Fatal("sub not marked dir")
		}
	}
}

func TestManyFilesInDirectory(t *testing.T) {
	// Forces directory growth across multiple dirent blocks.
	fs, ctx := defaultFS(t)
	const n = 500
	for i := 0; i < n; i++ {
		if _, err := fs.Create(ctx, fmt.Sprintf("/f%04d", i)); err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	ents, _ := fs.ReadDir(ctx, "/")
	if len(ents) != n {
		t.Fatalf("count = %d", len(ents))
	}
	// Delete half, re-create with different names (slot reuse).
	for i := 0; i < n; i += 2 {
		if err := fs.Unlink(ctx, fmt.Sprintf("/f%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := fs.Create(ctx, fmt.Sprintf("/g%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	ents, _ = fs.ReadDir(ctx, "/")
	if len(ents) != n/2+100 {
		t.Fatalf("after churn = %d", len(ents))
	}
}

func TestXattrAlignedHint(t *testing.T) {
	fs, ctx := defaultFS(t)
	f, _ := fs.Create(ctx, "/hint")
	if _, ok := f.GetXattr(ctx, vfs.XattrAligned); ok {
		t.Fatal("fresh file has aligned xattr")
	}
	if err := f.SetXattr(ctx, vfs.XattrAligned, []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, ok := f.GetXattr(ctx, vfs.XattrAligned); !ok {
		t.Fatal("xattr not set")
	}
	// With the hint, even a small-ish write gets an aligned extent
	// (rsync/cp receive-side behaviour, §3.6).
	if _, err := f.WriteAt(ctx, make([]byte, 300<<10), 0); err != nil {
		t.Fatal(err)
	}
	exts := f.Extents()
	if len(exts) == 0 || exts[0].Phys%mmu.HugePage != 0 {
		t.Fatalf("hinted file not aligned: %+v", exts)
	}
}

func TestTruncateShrinkFreesBlocks(t *testing.T) {
	fs, ctx := defaultFS(t)
	f, _ := fs.Create(ctx, "/t")
	f.WriteAt(ctx, make([]byte, 8<<20), 0)
	free0 := fs.StatFS(ctx).FreeBlocks
	if err := f.Truncate(ctx, 1<<20); err != nil {
		t.Fatal(err)
	}
	free1 := fs.StatFS(ctx).FreeBlocks
	if free1-free0 < (7<<20)/winefs.BlockSize-1 {
		t.Fatalf("truncate freed %d blocks", free1-free0)
	}
	if f.Size() != 1<<20 {
		t.Fatalf("size = %d", f.Size())
	}
	// Content below the cut must survive.
	buf := make([]byte, 100)
	if _, err := f.ReadAt(ctx, buf, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestUnmountMountCleanRoundTrip(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(256 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	fs.Mkdir(ctx, "/d")
	f, _ := fs.Create(ctx, "/d/file")
	f.WriteAt(ctx, []byte("persistent"), 0)
	f.Fallocate(ctx, 0, 4<<20)
	free0 := fs.StatFS(ctx).FreeBlocks
	aligned0 := fs.StatFS(ctx).FreeAligned2M
	if err := fs.Unmount(ctx); err != nil {
		t.Fatal(err)
	}

	fs2, err := winefs.Mount(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := fs2.StatFS(ctx)
	if st.FreeBlocks != free0 || st.FreeAligned2M != aligned0 {
		t.Fatalf("free state mismatch: %d/%d vs %d/%d",
			st.FreeBlocks, st.FreeAligned2M, free0, aligned0)
	}
	g, err := fs2.Open(ctx, "/d/file")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	g.ReadAt(ctx, buf, 0)
	if string(buf) != "persistent" {
		t.Fatalf("content after remount: %q", buf)
	}
}

func TestDirtyMountRebuildsState(t *testing.T) {
	// Simulate a crash (no unmount): mount must scan and rebuild free
	// lists exactly.
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(256 << 20)
	fs, _ := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	for i := 0; i < 50; i++ {
		f, _ := fs.Create(ctx, fmt.Sprintf("/f%d", i))
		f.WriteAt(ctx, make([]byte, 100<<10), 0)
	}
	fs.Unlink(ctx, "/f10")
	fs.Unlink(ctx, "/f20")
	free0 := fs.StatFS(ctx).FreeBlocks
	files0 := fs.FilesCount()
	// No Unmount: superblock stays dirty.

	fs2, err := winefs.Mount(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fs2.FilesCount() != files0 {
		t.Fatalf("files after crash mount = %d, want %d", fs2.FilesCount(), files0)
	}
	if got := fs2.StatFS(ctx).FreeBlocks; got != free0 {
		t.Fatalf("free blocks after rebuild = %d, want %d", got, free0)
	}
	// Everything still readable.
	f, err := fs2.Open(ctx, "/f30")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100<<10 {
		t.Fatalf("size = %d", f.Size())
	}
	if _, err := fs2.Open(ctx, "/f10"); err != vfs.ErrNotExist {
		t.Fatalf("deleted file resurrected: %v", err)
	}
}

func TestReactiveRewrite(t *testing.T) {
	fs, ctx := defaultFS(t)
	f, _ := fs.Create(ctx, "/frag")
	// Build a fragmented 4MiB file via many small writes (hole-backed).
	chunk := make([]byte, 64<<10)
	for off := int64(0); off < 4<<20; off += int64(len(chunk)) {
		if _, err := f.WriteAt(ctx, chunk, off); err != nil {
			t.Fatal(err)
		}
	}
	// Force interleaving: create another small file between writes is
	// omitted; small writes already land in holes.
	if _, ok := mmu.HugeEligible(f.Extents(), 0); ok {
		t.Skip("file happened to be aligned; fragmentation not reproduced")
	}
	if _, err := f.Mmap(ctx, 4<<20); err != nil {
		t.Fatal(err)
	}
	if fs.RewriteQueueLen() != 1 {
		t.Fatalf("rewrite queue = %d", fs.RewriteQueueLen())
	}
	bg := sim.NewCtx(99, 3)
	if n := fs.RunRewriter(bg); n != 1 {
		t.Fatalf("rewriter processed %d", n)
	}
	// After rewriting, the file must be hugepage-eligible everywhere.
	exts := f.Extents()
	for chunkOff := int64(0); chunkOff < 4<<20; chunkOff += mmu.HugePage {
		if _, ok := mmu.HugeEligible(exts, chunkOff); !ok {
			t.Fatalf("chunk %d still fragmented after rewrite", chunkOff)
		}
	}
}

func TestHolePromotionMaintainsAlignedPool(t *testing.T) {
	// Fill with small files, delete them all: the aligned pool must be
	// fully restored (holes merge back into aligned extents).
	fs, ctx := defaultFS(t)
	a0 := fs.StatFS(ctx).FreeAligned2M
	const n = 200
	for i := 0; i < n; i++ {
		f, _ := fs.Create(ctx, fmt.Sprintf("/s%d", i))
		f.WriteAt(ctx, make([]byte, 12<<10), 0)
	}
	for i := 0; i < n; i++ {
		if err := fs.Unlink(ctx, fmt.Sprintf("/s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Root dir blocks remain allocated; allow a small deficit.
	if got := fs.StatFS(ctx).FreeAligned2M; got < a0-2 {
		t.Fatalf("aligned pool after churn = %d, want ≥ %d", got, a0-2)
	}
}

func TestConcurrentCreatesScaleAcrossCPUs(t *testing.T) {
	fs, _ := newFS(t, 512<<20, winefs.Options{CPUs: 8})
	const threads = 8
	done := make(chan *sim.Ctx, threads)
	for th := 0; th < threads; th++ {
		go func(th int) {
			ctx := sim.NewCtx(th+10, th)
			dir := fmt.Sprintf("/t%d", th)
			if err := fs.Mkdir(ctx, dir); err != nil {
				panic(err)
			}
			for i := 0; i < 50; i++ {
				f, err := fs.Create(ctx, fmt.Sprintf("%s/f%d", dir, i))
				if err != nil {
					panic(err)
				}
				if _, err := f.Append(ctx, make([]byte, 4096)); err != nil {
					panic(err)
				}
				if err := f.Fsync(ctx); err != nil {
					panic(err)
				}
				if err := fs.Unlink(ctx, fmt.Sprintf("%s/f%d", dir, i)); err != nil {
					panic(err)
				}
			}
			done <- ctx
		}(th)
	}
	var maxNS int64
	for i := 0; i < threads; i++ {
		c := <-done
		if c.Now() > maxNS {
			maxNS = c.Now()
		}
		// Per-CPU journals: threads on distinct CPUs must not contend on
		// journal resources.
		if c.Counters.LockWaitNS > maxNS/4 {
			t.Fatalf("thread waited %dns of %dns — unexpected contention",
				c.Counters.LockWaitNS, maxNS)
		}
	}
	ctx := sim.NewCtx(1, 0)
	ents, _ := fs.ReadDir(ctx, "/")
	if len(ents) != threads {
		t.Fatalf("dirs = %d", len(ents))
	}
}

func TestNUMAHomeNodePlacement(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.NewWithConfig(pmem.Config{Size: 256 << 20, Nodes: 2, CPUs: 8})
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 8, NUMAAware: true})
	if err != nil {
		t.Fatal(err)
	}
	// Thread on CPU 6 (node 1): its home should stick and allocations land
	// on one node.
	w := sim.NewCtx(42, 6)
	f, err := fs.Create(w, "/n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(w, make([]byte, 4<<20), 0); err != nil {
		t.Fatal(err)
	}
	home, ok := fs.HomeNode(42)
	if !ok {
		t.Fatal("no home node assigned")
	}
	for _, e := range f.Extents() {
		if dev.NodeOf(e.Phys) != home {
			t.Fatalf("extent at %d on node %d, home is %d", e.Phys, dev.NodeOf(e.Phys), home)
		}
	}
	// Child inherits the parent's home.
	fs.InheritHome(42, 43)
	if h, ok := fs.HomeNode(43); !ok || h != home {
		t.Fatalf("child home = %d, %v", h, ok)
	}
}

func TestDeepDirectoryTree(t *testing.T) {
	fs, ctx := defaultFS(t)
	path := ""
	for i := 0; i < 20; i++ {
		path = fmt.Sprintf("%s/d%d", path, i)
		if err := fs.Mkdir(ctx, path); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fs.Create(ctx, path+"/leaf")
	if err != nil {
		t.Fatal(err)
	}
	f.WriteAt(ctx, []byte("deep"), 0)
	fi, err := fs.Stat(ctx, path+"/leaf")
	if err != nil || fi.Size != 4 {
		t.Fatalf("deep stat: %+v %v", fi, err)
	}
}

func TestNoSpace(t *testing.T) {
	fs, ctx := newFS(t, 32<<20, winefs.Options{CPUs: 1})
	f, _ := fs.Create(ctx, "/fill")
	err := f.Fallocate(ctx, 0, 64<<20)
	if err != vfs.ErrNoSpace {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	// Failed allocation must not leak space permanently.
	st := fs.StatFS(ctx)
	if st.FreeBlocks == 0 {
		t.Fatal("failed allocation leaked all space")
	}
}
