package winefs

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

func newConcFS(t *testing.T, cpus int) *FS {
	t.Helper()
	dev := pmem.New(256 << 20)
	ctx := sim.NewCtx(1, 0)
	fs, err := Mkfs(ctx, dev, Options{CPUs: cpus, Mode: vfs.Strict})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestRenameNoDeadlock is the lock-ordering regression test for Rename's
// two-inode lock: 8 goroutines rename between the same two directories in
// both directions at once. With naive lock-in-argument-order acquisition
// the a→b and b→a renames would acquire the two parent locks in opposite
// orders and deadlock; the inode-number ordering rule must keep this
// making progress. Run under -race in CI.
func TestRenameNoDeadlock(t *testing.T) {
	fs := newConcFS(t, 8)
	setup := sim.NewCtx(2, 0)
	for _, d := range []string{"/a", "/b"} {
		if err := fs.Mkdir(setup, d); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 8
	for w := 0; w < workers; w++ {
		f, err := fs.Create(setup, fmt.Sprintf("/a/f%d", w))
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(setup); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := sim.NewCtx(100+w, w%8)
			a, b := fmt.Sprintf("/a/f%d", w), fmt.Sprintf("/b/f%d", w)
			for i := 0; i < 200; i++ {
				// Half the workers bounce a→b→a, the other half b→a→b, so
				// both directions are always in flight.
				src, dst := a, b
				if (w+i)%2 == 1 {
					src, dst = b, a
				}
				if err := fs.Rename(ctx, src, dst); err != nil && err != vfs.ErrNotExist && err != vfs.ErrExist {
					t.Errorf("worker %d: rename %s -> %s: %v", w, src, dst, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	after := sim.NewCtx(3, 0)
	if err := fs.Audit(after); err != nil {
		t.Fatalf("audit after rename storm: %v", err)
	}
	ents, err := fs.ReadDir(after, "/a")
	if err != nil {
		t.Fatal(err)
	}
	bents, err := fs.ReadDir(after, "/b")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ents) + len(bents); got != workers {
		t.Fatalf("files lost or duplicated by rename storm: %d in /a + %d in /b, want %d total",
			len(ents), len(bents), workers)
	}
}

// TestLockTableChurnNoLeak asserts the per-inode lock table does not grow
// across create/delete churn: destroyInode must Drop the freed inode's
// entry, so the table tracks live inodes, not historical ones.
func TestLockTableChurnNoLeak(t *testing.T) {
	fs := newConcFS(t, 4)
	ctx := sim.NewCtx(2, 0)

	churn := func(name string) {
		f, err := fs.Create(ctx, name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Append(ctx, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(ctx); err != nil {
			t.Fatal(err)
		}
		if err := fs.Unlink(ctx, name); err != nil {
			t.Fatal(err)
		}
	}

	churn("/warmup") // populate the root-dir (and any one-off) entries
	base := fs.locks.Len()
	for i := 0; i < 500; i++ {
		churn(fmt.Sprintf("/churn%d", i))
	}
	if got := fs.locks.Len(); got != base {
		t.Fatalf("lock table leaked: %d entries after churn, %d before", got, base)
	}

	// Concurrent churn across CPUs must drain back to the same size too.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wctx := sim.NewCtx(100+w, w%4)
			for i := 0; i < 100; i++ {
				name := fmt.Sprintf("/w%d_%d", w, i)
				f, err := fs.Create(wctx, name)
				if err != nil {
					t.Error(err)
					return
				}
				if err := f.Close(wctx); err != nil {
					t.Error(err)
					return
				}
				if err := fs.Unlink(wctx, name); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := fs.locks.Len(); got != base {
		t.Fatalf("lock table leaked under concurrent churn: %d entries, want %d", got, base)
	}
}

// TestSnapshotCoherentUnderChurn hammers the sharded inode map from
// mutating goroutines while readers take the coherent all-shard snapshots
// that Audit, StatFS and saveFreeState rely on. The assertions are
// intentionally weak (counts in range, no panic); the real check is the
// race detector over snapshotInodes' all-shards locking.
func TestSnapshotCoherentUnderChurn(t *testing.T) {
	fs := newConcFS(t, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := sim.NewCtx(100+w, w%4)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("/s%d_%d", w, i%8)
				if f, err := fs.Create(ctx, name); err == nil {
					_, _ = f.Append(ctx, make([]byte, 4096))
					_ = f.Close(ctx)
				}
				if i%2 == 1 {
					_ = fs.Unlink(ctx, name)
				}
			}
		}(w)
	}
	rctx := sim.NewCtx(200, 0)
	for i := 0; i < 300; i++ {
		if n := len(fs.snapshotInodes()); n < 1 {
			t.Errorf("snapshot lost the root inode: %d inodes", n)
			break
		}
		st := fs.StatFS(rctx)
		if st.FreeBlocks < 0 || st.FreeBlocks > st.TotalBlocks {
			t.Errorf("torn StatFS: free=%d total=%d", st.FreeBlocks, st.TotalBlocks)
			break
		}
	}
	close(stop)
	wg.Wait()
	if err := fs.Audit(rctx); err != nil {
		t.Fatalf("audit after churn: %v", err)
	}
}

// contendedSequence runs a fixed, host-sequential workload in which the
// second thread's lock acquisitions must skip the first thread's booked
// occupations — deterministic virtual-time contention with no host-level
// racing, so two runs are exactly comparable. Returns the waiting thread's
// context.
func contendedSequence(t *testing.T, fs *FS, tracer *trace.Tracer) *sim.Ctx {
	t.Helper()
	ctxA := sim.NewCtx(10, 0)
	ctxB := sim.NewCtx(11, 1)
	if tracer != nil {
		ctxA.Trace = tracer.NewContext(ctxA.Thread)
		ctxB.Trace = tracer.NewContext(ctxB.Thread)
	}
	f, err := fs.Create(ctxA, "/contended")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Fallocate(ctxA, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	// A's writes book exclusive and range occupations well past B's clock.
	buf := make([]byte, 1<<18)
	if _, err := f.WriteAt(ctxA, buf, 0); err != nil {
		t.Fatal(err)
	}
	// B starts at virtual 0 and must wait out A's bookings: an overlapping
	// data write (range lock) and then a truncate (exclusive lock).
	g, err := fs.Open(ctxB, "/contended")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt(ctxB, make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Truncate(ctxB, 1<<19); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(ctxB); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(ctxA); err != nil {
		t.Fatal(err)
	}
	return ctxB
}

// TestTraceLockWaitAttributionEquality runs the same deterministic
// contended sequence untraced and traced and requires identical lock-wait
// attribution and virtual clocks: tracing spans observe time, they must
// never advance it or double-charge waits.
func TestTraceLockWaitAttributionEquality(t *testing.T) {
	plain := contendedSequence(t, newConcFS(t, 4), nil)

	tracer := trace.New(trace.NewCollect())
	traced := contendedSequence(t, newConcFS(t, 4), tracer)
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	if plain.Counters.LockWaitNS == 0 {
		t.Fatal("sequence produced no lock wait; contention scenario is broken")
	}
	if got, want := traced.Counters.LockWaitNS, plain.Counters.LockWaitNS; got != want {
		t.Errorf("LockWaitNS diverged: traced %d, untraced %d", got, want)
	}
	if got, want := traced.Now(), plain.Now(); got != want {
		t.Errorf("virtual clock diverged: traced %d, untraced %d", got, want)
	}
	if got, want := *traced.Counters, *plain.Counters; got != want {
		t.Errorf("counters diverged: traced %+v, untraced %+v", got, want)
	}
}
