package winefs

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// File is an open WineFS file handle.
type File struct {
	fs     *FS
	ino    *inode
	closed bool
	// dirtyBytes tracks unflushed data in relaxed mode, paid at fsync.
	dirtyBytes int64
}

var _ vfs.File = (*File)(nil)

// Ino implements vfs.File.
func (f *File) Ino() uint64 { return f.ino.ino }

// Size implements vfs.File.
func (f *File) Size() int64 {
	f.ino.mu.RLock()
	defer f.ino.mu.RUnlock()
	return f.ino.size
}

// Close implements vfs.File.
func (f *File) Close(ctx *sim.Ctx) error {
	f.closed = true
	return nil
}

// findRun returns the physical block and contiguous run length backing
// fileBlk, via binary search over the sorted extent list. Caller holds
// ino.mu.
func (ino *inode) findRun(fileBlk int64) (phys int64, run int64, ok bool) {
	exts := ino.extents
	i := sort.Search(len(exts), func(i int) bool {
		return exts[i].fileBlk+exts[i].length > fileBlk
	})
	if i == len(exts) || exts[i].fileBlk > fileBlk {
		return 0, 0, false
	}
	e := exts[i]
	return e.blk + (fileBlk - e.fileBlk), e.length - (fileBlk - e.fileBlk), true
}

// nextExtentStart returns the first extent fileBlk strictly greater than
// fileBlk, or max if none. Caller holds ino.mu.
func (ino *inode) nextExtentStart(fileBlk, max int64) int64 {
	exts := ino.extents
	i := sort.Search(len(exts), func(i int) bool { return exts[i].fileBlk > fileBlk })
	if i == len(exts) || exts[i].fileBlk >= max {
		return max
	}
	return exts[i].fileBlk
}

// ReadAt implements vfs.File. Reads past EOF are truncated; holes in
// sparse files read as zeros.
func (f *File) ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	ctx.Syscall(f.fs.model.SyscallNS)
	ino := f.ino
	// Shared inode lock: concurrent readers (and disjoint range writers)
	// overlap in virtual time; only exclusive metadata ops are waited for.
	h := f.fs.locks.RLock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.RLock()
	defer ino.mu.RUnlock()
	if off >= ino.size {
		return 0, nil
	}
	if off+int64(len(p)) > ino.size {
		p = p[:ino.size-off]
	}
	read := 0
	for read < len(p) {
		pos := off + int64(read)
		blk := pos / BlockSize
		in := pos % BlockSize
		phys, run, ok := ino.findRun(blk)
		if !ok {
			// Sparse hole: zero fill up to the next extent.
			holeEnd := ino.nextExtentStart(blk, (off+int64(len(p))+BlockSize-1)/BlockSize) * BlockSize
			n := holeEnd - pos
			if n > int64(len(p)-read) {
				n = int64(len(p) - read)
			}
			z := p[read : read+int(n)]
			for i := range z {
				z[i] = 0
			}
			read += int(n)
			continue
		}
		n := run*BlockSize - in
		if n > int64(len(p)-read) {
			n = int64(len(p) - read)
		}
		// A corrupt extent record can point anywhere; a poisoned line fails
		// the read. Either way the application gets EIO, never garbage.
		if err := f.fs.dataCheckRange(phys*BlockSize+in, n); err != nil {
			return read, mapDevErr(err)
		}
		if err := f.fs.dataReadChecked(ctx, p[read:read+int(n)], phys*BlockSize+in); err != nil {
			return read, mapDevErr(err)
		}
		f.fs.touchExtent(ino, blk)
		read += int(n)
	}
	return read, nil
}

// recAppend adds an extent to the file, merging with a logically and
// physically adjacent neighbour when possible (sequential appends carve
// contiguous space from the same hole, so merging keeps appended files in
// a few large extents — without it every 4KiB append would add a record).
func (fs *FS) recAppend(ctx *sim.Ctx, tx *mtx, ino *inode, e wextent) error {
	// Try to extend the predecessor covering fileBlk-1.
	i := sort.Search(len(ino.extents), func(i int) bool {
		return ino.extents[i].fileBlk > e.fileBlk
	})
	if i > 0 {
		p := &ino.extents[i-1]
		if p.fileBlk+p.length == e.fileBlk && p.blk+p.length == e.blk {
			p.length += e.length
			ino.gen++
			return fs.writeExtentSlot(ctx, tx, ino, i-1)
		}
	}
	// Or prepend to the successor.
	if i < len(ino.extents) {
		nx := &ino.extents[i]
		if e.fileBlk+e.length == nx.fileBlk && e.blk+e.length == nx.blk {
			nx.fileBlk = e.fileBlk
			nx.blk = e.blk
			nx.length += e.length
			ino.gen++
			return fs.writeExtentSlot(ctx, tx, ino, i)
		}
	}
	ino.extents = append(ino.extents, e)
	ino.slots = append(ino.slots, len(ino.extents)-1)
	ino.gen++
	if err := fs.writeExtentSlot(ctx, tx, ino, len(ino.extents)-1); err != nil {
		return err
	}
	sortExtents(ino)
	return nil
}

// recUpdate persists DRAM extent i to its PM record.
func (fs *FS) recUpdate(ctx *sim.Ctx, tx *mtx, ino *inode, i int) error {
	ino.gen++
	return fs.writeExtentSlot(ctx, tx, ino, i)
}

// recRemove deletes DRAM extent i, keeping PM records dense by moving the
// last record into the vacated slot.
func (fs *FS) recRemove(ctx *sim.Ctx, tx *mtx, ino *inode, i int) error {
	ino.gen++
	r := ino.slots[i]
	last := len(ino.extents) - 1
	lastRec := last // record count-1
	if r != lastRec {
		// Find the DRAM entry occupying the last record and move it to r.
		for k := range ino.slots {
			if ino.slots[k] == lastRec {
				ino.slots[k] = r
				if err := fs.writeExtentSlot(ctx, tx, ino, k); err != nil {
					return err
				}
				break
			}
		}
	}
	ino.extents = append(ino.extents[:i], ino.extents[i+1:]...)
	ino.slots = append(ino.slots[:i], ino.slots[i+1:]...)
	return nil
}

// allocRange allocates backing for every unbacked block in
// [startBlk, endBlk), zeroing only [zeroSkipStart, zeroSkipEnd) edges as
// needed (the skipped byte range is about to be overwritten by the caller).
// wantAligned forces the alignment-aware allocator's aligned path.
func (f *File) allocRange(ctx *sim.Ctx, tx *mtx, startBlk, endBlk int64, wantAligned bool, skipZeroStart, skipZeroEnd int64) error {
	fs := f.fs
	ino := f.ino
	b := startBlk
	for b < endBlk {
		if _, run, ok := ino.findRun(b); ok {
			b += run
			continue
		}
		gapEnd := ino.nextExtentStart(b, endBlk)
		need := gapEnd - b
		// Hugepage-sized pieces always come from the aligned pool (inside
		// alloc); round the tail up to a full aligned extent only for
		// xattr-hinted files starting at an aligned file offset.
		roundUp := wantAligned && b%BlocksPerHuge == 0
		exts, err := fs.allocData(ctx, tx.cpu, need, roundUp)
		if err != nil {
			return err
		}
		fileBlk := b
		for _, e := range exts {
			// Zero the parts of the new blocks the caller won't overwrite.
			zs := fileBlk * BlockSize
			ze := (fileBlk + e.Len) * BlockSize
			f.zeroEdges(ctx, e, zs, ze, skipZeroStart, skipZeroEnd)
			if err := fs.recAppend(ctx, tx, ino, wextent{fileBlk: fileBlk, blk: e.Start, length: e.Len}); err != nil {
				return err
			}
			fileBlk += e.Len
		}
		b = gapEnd
	}
	return nil
}

// zeroEdges zeroes the portions of a fresh extent (covering file bytes
// [zs, ze)) that fall outside the caller's impending write [skipS, skipE).
func (f *File) zeroEdges(ctx *sim.Ctx, e alloc.Extent, zs, ze, skipS, skipE int64) {
	physBase := e.StartByte()
	if skipE <= zs || skipS >= ze {
		f.fs.dataZero(ctx, physBase, ze-zs)
		return
	}
	if skipS > zs {
		f.fs.dataZero(ctx, physBase, skipS-zs)
	}
	if skipE < ze {
		f.fs.dataZero(ctx, physBase+(skipE-zs), ze-skipE)
	}
}

// WriteAt implements vfs.File.
func (f *File) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	return f.write(ctx, p, off)
}

// Append implements vfs.File.
func (f *File) Append(ctx *sim.Ctx, p []byte) (int, error) {
	f.ino.mu.RLock()
	off := f.ino.size
	f.ino.mu.RUnlock()
	return f.write(ctx, p, off)
}

// rangeWritableLocked reports whether [off, end) can be served as a pure
// in-place overwrite under a byte-range lock: fully backed, within the
// current size, and — in strict mode — every backing extent on the
// data-journal path (copy-on-write rewrites the extent map, which is
// metadata and therefore needs the exclusive inode lock). Caller holds
// ino.mu.
func (ino *inode) rangeWritableLocked(mode vfs.ConsistencyMode, off, end int64) bool {
	if end > ino.size {
		return false
	}
	endBlk := (end + BlockSize - 1) / BlockSize
	for b := off / BlockSize; b < endBlk; {
		_, run, ok := ino.findRun(b)
		if !ok {
			return false
		}
		if mode == vfs.Strict && !ino.extentAlignedAtLocked(b) {
			return false
		}
		b += run
	}
	return true
}

func (f *File) write(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	ctx.Syscall(f.fs.model.SyscallNS)
	if err := f.fs.writable(); err != nil {
		return 0, err
	}
	if len(p) == 0 {
		return 0, nil
	}
	fs := f.fs
	ino := f.ino

	// Fast path: an overwrite of already-allocated bytes changes no
	// metadata, so it only needs to exclude writers touching overlapping
	// byte ranges — disjoint writers to the same file proceed in parallel
	// in virtual time. Probe without the lock, then recheck with the range
	// held (a concurrent truncate or CoW may have changed the layout).
	ino.mu.RLock()
	fast := ino.rangeWritableLocked(fs.mode, off, off+int64(len(p)))
	ino.mu.RUnlock()
	if fast {
		if n, ok, err := f.writeRange(ctx, p, off); ok {
			return n, err
		}
	}

	h := fs.locks.Lock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.Lock()
	defer ino.mu.Unlock()

	n := int64(len(p))
	end := off + n
	startBlk := off / BlockSize
	endBlk := (end + BlockSize - 1) / BlockSize
	oldSize := ino.size

	// A pure in-place overwrite (no allocation, no size change) touches no
	// metadata: it needs no journal transaction at all — only the hybrid
	// data-atomicity machinery. The transaction is created lazily by the
	// paths that mutate metadata.
	var tx *mtx
	getTx := func() *mtx {
		if tx == nil {
			tx = fs.begin(ctx)
		}
		return tx
	}
	finish := func() {
		if tx != nil {
			tx.commit()
		}
	}
	// fail rolls back the open transaction (if any) and maps the error; a
	// media fault additionally degrades the file system to read-only.
	fail := func(err error) error {
		if tx != nil {
			return fs.failTx(tx, "write", err)
		}
		if isMediaErr(err) {
			fs.degrade("media error during write: %v", err)
		}
		return mapDevErr(err)
	}

	// A write starting past a mid-block EOF exposes the stale tail of the
	// old last block: zero it so the gap reads as zero.
	if off > oldSize && oldSize%BlockSize != 0 {
		if phys, _, ok := ino.findRun(oldSize / BlockSize); ok {
			tail := min64(BlockSize-oldSize%BlockSize, off-oldSize)
			fs.dataZero(ctx, phys*BlockSize+oldSize%BlockSize, tail)
		}
	}

	needAlloc := false
	for b := startBlk; b < endBlk; {
		_, run, ok := ino.findRun(b)
		if !ok {
			needAlloc = true
			break
		}
		b += run
	}
	if needAlloc {
		// Hugepage-sized pieces of the request are served from the aligned
		// pool automatically; only the xattr hint forces the tail to round
		// up to a full aligned extent (§3.6).
		wantAligned := ino.flags&flagAligned != 0
		if err := f.allocRange(ctx, getTx(), startBlk, endBlk, wantAligned, off, end); err != nil {
			return 0, fail(err)
		}
	}

	// Strict mode must make the data update atomic. The hybrid scheme
	// (§3.4, "Data Atomicity") journals in-place updates of aligned extents
	// and copies-on-write updates of unaligned holes. Only bytes that
	// existed before this call (off < oldSize) are overwrites.
	if err := f.writeData(ctx, getTx, p, off, oldSize); err != nil {
		return 0, fail(err)
	}
	if end > ino.size {
		old := ino.size
		ino.size = end
		if err := fs.writeInodeHeader(ctx, getTx(), ino); err != nil {
			ino.size = old
			return 0, fail(err)
		}
	}
	finish()
	if fs.mode == vfs.Relaxed {
		f.dirtyBytes += n
	}
	return len(p), nil
}

// writeRange is the byte-range fast path: bytes [off, off+len(p)) are
// overwritten in place while holding the inode shared plus the range
// exclusively. ok=false means the layout changed between the caller's
// probe and the lock (truncate, CoW) — the range has been released and the
// caller must retry on the exclusive slow path.
func (f *File) writeRange(ctx *sim.Ctx, p []byte, off int64) (n int, ok bool, err error) {
	fs := f.fs
	ino := f.ino
	h := fs.locks.LockRange(ctx, ino.ino, off, int64(len(p)))
	defer h.Unlock(ctx)
	ino.mu.Lock()
	defer ino.mu.Unlock()
	if !ino.rangeWritableLocked(fs.mode, off, off+int64(len(p))) {
		return 0, false, nil
	}
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		blk := pos / BlockSize
		in := pos % BlockSize
		phys, run, found := ino.findRun(blk)
		if !found {
			return 0, false, nil // unreachable after the recheck
		}
		chunk := run*BlockSize - in
		if chunk > int64(len(p)-written) {
			chunk = int64(len(p) - written)
		}
		if fs.mode == vfs.Strict {
			// Data journaling only: the recheck guarantees no block needs
			// copy-on-write, so the extent map is never touched here.
			fs.chargeDataJournal(ctx, chunk)
		}
		fs.dataWrite(ctx, p[written:written+int(chunk)], phys*BlockSize+in)
		if fs.mode == vfs.Strict {
			fs.dataFlush(ctx, phys*BlockSize+in, chunk)
		}
		fs.touchExtent(ino, blk)
		written += int(chunk)
	}
	if fs.mode == vfs.Strict {
		fs.dev.Fence(ctx)
	} else {
		f.dirtyBytes += int64(len(p))
	}
	return len(p), true, nil
}

// writeData moves p into the file at off, applying the hybrid atomicity
// policy for the overwritten prefix. getTx materialises the journal
// transaction lazily (only the CoW path needs one).
func (f *File) writeData(ctx *sim.Ctx, getTx func() *mtx, p []byte, off, oldSize int64) error {
	fs := f.fs
	ino := f.ino
	overwriteEnd := oldSize
	if off+int64(len(p)) < overwriteEnd {
		overwriteEnd = off + int64(len(p))
	}
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		blk := pos / BlockSize
		in := pos % BlockSize
		phys, run, ok := ino.findRun(blk)
		if !ok {
			return vfs.ErrNoSpace // allocRange must have covered everything
		}
		chunk := run*BlockSize - in
		if chunk > int64(len(p)-written) {
			chunk = int64(len(p) - written)
		}
		isOverwrite := pos < overwriteEnd
		if isOverwrite && fs.mode == vfs.Strict {
			ovEnd := pos + chunk
			if ovEnd > overwriteEnd {
				ovEnd = overwriteEnd
			}
			if f.extentAlignedAt(blk) {
				// Data journaling: old contents logged, then updated in
				// place — the layout (and hence hugepages) is preserved.
				fs.chargeDataJournal(ctx, ovEnd-pos)
			} else {
				// Copy-on-write into fresh holes.
				if err := f.cowRange(ctx, getTx(), p[written:written+int(chunk)], pos); err != nil {
					return err
				}
				written += int(chunk)
				continue
			}
		}
		fs.dataWrite(ctx, p[written:written+int(chunk)], phys*BlockSize+in)
		if fs.mode == vfs.Strict {
			fs.dataFlush(ctx, phys*BlockSize+in, chunk)
		}
		fs.touchExtent(ino, blk)
		written += int(chunk)
	}
	if fs.mode == vfs.Strict {
		fs.dev.Fence(ctx)
	}
	return nil
}

// dataJournalMinBlocks is the extent size above which WineFS prefers data
// journaling over copy-on-write even when the extent is not hugepage
// aligned: §3.4's trade-off is "incurring the extra write for preserving
// data layout (when it matters), and using copy-on-write when preserving
// the data layout does not matter" — layout matters for any large
// contiguous run, not only for already-aligned ones.
const dataJournalMinBlocks = 64

// extentAlignedAtLocked reports whether the extent backing fileBlk should
// be updated via data journaling (aligned hugepage extent, or a large
// contiguous run whose layout is worth preserving).
func (ino *inode) extentAlignedAtLocked(fileBlk int64) bool {
	exts := ino.extents
	i := sort.Search(len(exts), func(i int) bool {
		return exts[i].fileBlk+exts[i].length > fileBlk
	})
	if i == len(exts) || exts[i].fileBlk > fileBlk {
		return false
	}
	e := exts[i]
	if e.blk%BlocksPerHuge == 0 && e.length >= BlocksPerHuge {
		return true
	}
	return e.length >= dataJournalMinBlocks
}

func (f *File) extentAlignedAt(fileBlk int64) bool {
	return f.ino.extentAlignedAtLocked(fileBlk)
}

// chargeDataJournal accounts the extra journal write data journaling costs
// (the data is written twice: once to the journal, once in place).
func (fs *FS) chargeDataJournal(ctx *sim.Ctx, n int64) {
	ctx.Counters.JournalBytes += n
	// The data journal is written with sequential non-temporal stores at a
	// fraction of the random in-place cost.
	ns := int64(float64(n) * fs.model.CopyWriteNSPerByte * 0.6)
	if n <= 256 {
		ns = fs.model.WriteLat64
	}
	ctx.Advance(ns)
	ctx.Counters.PMWriteBytes += n
}

// cowRange implements copy-on-write for a byte range backed by unaligned
// holes: new hole blocks are allocated, untouched edge bytes copied over,
// the new data written, and the extent map switched in the transaction.
func (f *File) cowRange(ctx *sim.Ctx, tx *mtx, p []byte, off int64) error {
	fs := f.fs
	ino := f.ino
	startBlk := off / BlockSize
	end := off + int64(len(p))
	endBlk := (end + BlockSize - 1) / BlockSize
	nBlks := endBlk - startBlk

	newExts, ok := fs.allocDataSmall(ctx, tx.cpu, nBlks)
	if !ok {
		return vfs.ErrNoSpace
	}
	ctx.Counters.CoWCopies += nBlks

	// Copy edge bytes the write doesn't cover, then lay down the new data.
	var newBlks []int64
	for _, e := range newExts {
		for b := e.Start; b < e.End(); b++ {
			newBlks = append(newBlks, b)
		}
	}
	buf := make([]byte, BlockSize)
	for i, nb := range newBlks {
		fileBlk := startBlk + int64(i)
		oldPhys, _, okOld := ino.findRun(fileBlk)
		bs := fileBlk * BlockSize
		be := bs + BlockSize
		ws := off
		if ws < bs {
			ws = bs
		}
		we := end
		if we > be {
			we = be
		}
		if okOld && (ws > bs || we < be) {
			if err := fs.dataReadChecked(ctx, buf, oldPhys*BlockSize); err != nil {
				return err
			}
			fs.dataWrite(ctx, buf, nb*BlockSize)
		}
		fs.dataWrite(ctx, p[ws-off:we-off], nb*BlockSize+(ws-bs))
		fs.dataFlush(ctx, nb*BlockSize, BlockSize)
	}
	fs.dev.Fence(ctx)

	// Atomically swap the extent map for [startBlk, endBlk).
	if err := f.replaceRange(ctx, tx, startBlk, endBlk, newExts); err != nil {
		return err
	}
	return nil
}

// replaceRange rewrites the extent map so [startBlk, endBlk) is backed by
// newExts (in order), freeing the displaced blocks. Caller holds ino.mu.
func (f *File) replaceRange(ctx *sim.Ctx, tx *mtx, startBlk, endBlk int64, newExts []alloc.Extent) error {
	fs := f.fs
	ino := f.ino
	// Shoot down mapped translations before the displaced blocks return
	// to the allocator: a mapping that kept them would read recycled
	// memory. Refaults resolve through the new extents.
	for _, m := range ino.mappings {
		m.Invalidate()
	}
	// 1. Detach the old mapping over the range.
	var freed []alloc.Extent
	for i := 0; i < len(ino.extents); {
		e := ino.extents[i]
		eEnd := e.fileBlk + e.length
		if eEnd <= startBlk || e.fileBlk >= endBlk {
			i++
			continue
		}
		ovS := max64(e.fileBlk, startBlk)
		ovE := min64(eEnd, endBlk)
		freed = append(freed, alloc.Extent{Start: e.blk + (ovS - e.fileBlk), Len: ovE - ovS})
		switch {
		case ovS == e.fileBlk && ovE == eEnd:
			if err := fs.recRemove(ctx, tx, ino, i); err != nil {
				return err
			}
		case ovS == e.fileBlk:
			ino.extents[i].fileBlk = ovE
			ino.extents[i].blk += ovE - e.fileBlk
			ino.extents[i].length = eEnd - ovE
			if err := fs.recUpdate(ctx, tx, ino, i); err != nil {
				return err
			}
			i++
		case ovE == eEnd:
			ino.extents[i].length = ovS - e.fileBlk
			if err := fs.recUpdate(ctx, tx, ino, i); err != nil {
				return err
			}
			i++
		default:
			// Split: head stays, tail appended.
			tail := wextent{fileBlk: ovE, blk: e.blk + (ovE - e.fileBlk), length: eEnd - ovE}
			ino.extents[i].length = ovS - e.fileBlk
			if err := fs.recUpdate(ctx, tx, ino, i); err != nil {
				return err
			}
			if err := fs.recAppend(ctx, tx, ino, tail); err != nil {
				return err
			}
			i++
		}
	}
	// 2. Attach the new mapping.
	fileBlk := startBlk
	for _, e := range newExts {
		l := e.Len
		if fileBlk+l > endBlk {
			l = endBlk - fileBlk
		}
		if err := fs.recAppend(ctx, tx, ino, wextent{fileBlk: fileBlk, blk: e.Start, length: l}); err != nil {
			return err
		}
		fileBlk += l
	}
	if err := fs.writeInodeHeader(ctx, tx, ino); err != nil {
		return err
	}
	// 3. Free the displaced blocks.
	for _, e := range freed {
		fs.alloc.free(ctx, e)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Truncate implements vfs.File. Growing is sparse (no allocation —
// LMDB-style ftruncate); shrinking frees whole blocks past the new end.
func (f *File) Truncate(ctx *sim.Ctx, size int64) error {
	ctx.Syscall(f.fs.model.SyscallNS)
	if err := f.fs.writable(); err != nil {
		return err
	}
	fs := f.fs
	ino := f.ino
	h := fs.locks.Lock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.Lock()
	defer ino.mu.Unlock()

	tx := fs.begin(ctx)
	if size < ino.size {
		// POSIX: if the file grows again later, bytes past the new EOF must
		// read as zero — zero the stale tail of the last kept block now.
		if size%BlockSize != 0 {
			if phys, _, ok := ino.findRun(size / BlockSize); ok {
				tail := BlockSize - size%BlockSize
				fs.dataZero(ctx, phys*BlockSize+size%BlockSize, tail)
			}
		}
		keepBlks := (size + BlockSize - 1) / BlockSize
		var freed []alloc.Extent
		for i := 0; i < len(ino.extents); {
			e := ino.extents[i]
			eEnd := e.fileBlk + e.length
			if eEnd <= keepBlks {
				i++
				continue
			}
			if e.fileBlk >= keepBlks {
				freed = append(freed, alloc.Extent{Start: e.blk, Len: e.length})
				if err := fs.recRemove(ctx, tx, ino, i); err != nil {
					return fs.failTx(tx, "truncate", err)
				}
				continue
			}
			cut := keepBlks - e.fileBlk
			freed = append(freed, alloc.Extent{Start: e.blk + cut, Len: e.length - cut})
			ino.extents[i].length = cut
			if err := fs.recUpdate(ctx, tx, ino, i); err != nil {
				return fs.failTx(tx, "truncate", err)
			}
			i++
		}
		if len(freed) > 0 {
			// Shoot down live mapping translations covering the freed
			// blocks before they can be reallocated: later faults re-read
			// the layout and the new size, so an access past the new EOF
			// gets vfs.ErrMapFault, never a recycled extent.
			for _, m := range ino.mappings {
				m.Invalidate()
			}
		}
		for _, e := range freed {
			fs.alloc.free(ctx, e)
		}
	}
	old := ino.size
	ino.size = size
	if err := fs.writeInodeHeader(ctx, tx, ino); err != nil {
		ino.size = old
		return fs.failTx(tx, "truncate", err)
	}
	tx.commit()
	return nil
}

// Fallocate implements vfs.File: preallocates and zero-fills the range
// (zeroing at allocation time keeps WineFS page faults cheap, in contrast
// to ext4-DAX's zero-on-fault — see Table 2 discussion).
func (f *File) Fallocate(ctx *sim.Ctx, off, n int64) error {
	ctx.Syscall(f.fs.model.SyscallNS)
	if err := f.fs.writable(); err != nil {
		return err
	}
	fs := f.fs
	ino := f.ino
	h := fs.locks.Lock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.Lock()
	defer ino.mu.Unlock()

	startBlk := off / BlockSize
	endBlk := (off + n + BlockSize - 1) / BlockSize
	tx := fs.begin(ctx)
	wantAligned := ino.flags&flagAligned != 0
	// skip-zero range is empty: zero everything newly allocated.
	if err := f.allocRange(ctx, tx, startBlk, endBlk, wantAligned, -1, -1); err != nil {
		return fs.failTx(tx, "fallocate", err)
	}
	old := ino.size
	if off+n > ino.size {
		ino.size = off + n
	}
	if err := fs.writeInodeHeader(ctx, tx, ino); err != nil {
		ino.size = old
		return fs.failTx(tx, "fallocate", err)
	}
	tx.commit()
	return nil
}

// Fsync implements vfs.File. All WineFS metadata (and, in strict mode,
// data) is already durable when the syscall returns, so fsync only pays
// the residual flush of relaxed-mode data plus a fence — this is why
// fsync-heavy workloads (varmail, Figure 9) do well.
func (f *File) Fsync(ctx *sim.Ctx) error {
	ctx.Syscall(f.fs.model.SyscallNS)
	if f.dirtyBytes > 0 {
		lines := (f.dirtyBytes + 63) / 64
		ctx.Advance(lines * f.fs.model.FlushLat / 8)
		f.dirtyBytes = 0
	}
	f.fs.dev.Fence(ctx)
	return nil
}

// Extents implements vfs.File.
func (f *File) Extents() []mmu.Extent {
	f.ino.mu.RLock()
	defer f.ino.mu.RUnlock()
	return f.ino.mmuExtentsRLocked()
}

// mmuExtentsLocked converts (and caches) the extent list in mmu form.
// Caller holds ino.mu EXCLUSIVELY — the cache fields are written here, and
// concurrent shared-lock holders read them (mmuExtentsRLocked).
func (ino *inode) mmuExtentsLocked() []mmu.Extent {
	if ino.mmapGen == ino.gen && ino.mmapExt != nil {
		return ino.mmapExt
	}
	out := ino.buildMMUExtents()
	ino.mmapExt = out
	ino.mmapGen = ino.gen
	return out
}

// mmuExtentsRLocked is mmuExtentsLocked for shared-lock holders: it serves
// a fresh cache but rebuilds WITHOUT storing on a miss (two concurrent
// readers writing the cache fields would race).
func (ino *inode) mmuExtentsRLocked() []mmu.Extent {
	if ino.mmapGen == ino.gen && ino.mmapExt != nil {
		return ino.mmapExt
	}
	return ino.buildMMUExtents()
}

func (ino *inode) buildMMUExtents() []mmu.Extent {
	out := make([]mmu.Extent, 0, len(ino.extents))
	for _, e := range ino.extents {
		// Slow-tier extents are not byte-addressable and cannot be mapped:
		// they are left out, so a DAX fault on their range misses and the
		// fault path promotes them to PM first (Fault).
		if ino.fs.isSlow(e.blk) {
			continue
		}
		out = append(out, mmu.Extent{
			FileOff: e.fileBlk * BlockSize,
			Phys:    e.blk * BlockSize,
			Len:     e.length * BlockSize,
		})
	}
	return out
}

// SetPathXattr sets an extended attribute by path — usable on directories
// as well as files (directory-level alignment inheritance, §3.6).
func (fs *FS) SetPathXattr(ctx *sim.Ctx, path, name string, value []byte) error {
	ctx.Syscall(fs.model.SyscallNS)
	if name != vfs.XattrAligned {
		return nil
	}
	if err := fs.writable(); err != nil {
		return err
	}
	ino, err := fs.resolve(ctx, path)
	if err != nil {
		return err
	}
	h := fs.locks.Lock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.Lock()
	defer ino.mu.Unlock()
	tx := fs.begin(ctx)
	oldFlags := ino.flags
	ino.flags |= flagAligned
	if err := fs.writeInodeHeader(ctx, tx, ino); err != nil {
		ino.flags = oldFlags
		return fs.failTx(tx, "setxattr", err)
	}
	tx.commit()
	return nil
}

// SetXattr implements vfs.File. Setting XattrAligned persists the
// alignment hint (§3.6, "Supporting extended attributes").
func (f *File) SetXattr(ctx *sim.Ctx, name string, value []byte) error {
	ctx.Syscall(f.fs.model.SyscallNS)
	if name != vfs.XattrAligned {
		return nil // only the alignment attribute is modelled
	}
	if err := f.fs.writable(); err != nil {
		return err
	}
	fs := f.fs
	ino := f.ino
	h := fs.locks.Lock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.Lock()
	defer ino.mu.Unlock()
	tx := fs.begin(ctx)
	oldFlags := ino.flags
	ino.flags |= flagAligned
	if err := fs.writeInodeHeader(ctx, tx, ino); err != nil {
		ino.flags = oldFlags
		return fs.failTx(tx, "setxattr", err)
	}
	tx.commit()
	return nil
}

// GetXattr implements vfs.File.
func (f *File) GetXattr(ctx *sim.Ctx, name string) ([]byte, bool) {
	ctx.Syscall(f.fs.model.SyscallNS)
	if name != vfs.XattrAligned {
		return nil, false
	}
	h := f.fs.locks.RLock(ctx, f.ino.ino)
	defer h.Unlock(ctx)
	f.ino.mu.RLock()
	defer f.ino.mu.RUnlock()
	if f.ino.flags&flagAligned != 0 {
		return []byte("1"), true
	}
	return nil, false
}

// Mmap implements vfs.File. If the file should be hugepage-mapped but its
// layout prevents it, the file is queued for reactive rewriting (§3.6).
func (f *File) Mmap(ctx *sim.Ctx, length int64) (*mmu.Mapping, error) {
	ctx.Syscall(f.fs.model.SyscallNS)
	if length <= 0 {
		length = f.Size()
	}
	if length <= 0 {
		return nil, mmu.ErrOutOfRange
	}
	f.fs.maybeQueueRewrite(f.ino)
	m := f.fs.as.NewMapping(length, f)
	f.ino.mu.Lock()
	f.ino.mappings = append(f.ino.mappings, m)
	f.ino.mu.Unlock()
	return m, nil
}

// Fault implements mmu.FaultHandler: resolve the base page at pageOff.
// Pages inside an aligned, fully backed 2MiB chunk map as hugepages;
// unbacked pages are allocated on demand (sparse ftruncate growth), taking
// a whole aligned extent when the chunk lies within the file so the fault
// can still be served with a hugepage.
func (f *File) Fault(ctx *sim.Ctx, pageOff int64) (mmu.FaultResult, error) {
	fs := f.fs
	ino := f.ino
	chunkOff := pageOff / mmu.HugePage * mmu.HugePage

	ino.mu.RLock()
	exts := ino.mmuExtentsRLocked()
	size := ino.size
	ino.mu.RUnlock()

	if phys, ok := mmu.HugeEligible(exts, chunkOff); ok {
		return mmu.FaultResult{Huge: true, Phys: phys}, nil
	}
	if phys, ok := mmu.PhysAt(exts, pageOff); ok {
		return mmu.FaultResult{Phys: phys}, nil
	}

	// Demand allocation under the inode lock. A degraded (read-only) file
	// system cannot back new pages.
	if err := fs.writable(); err != nil {
		return mmu.FaultResult{}, err
	}
	h := fs.locks.Lock(ctx, ino.ino)
	defer h.Unlock(ctx)
	ino.mu.Lock()
	defer ino.mu.Unlock()

	// Re-check after taking the lock.
	exts = ino.mmuExtentsLocked()
	if phys, ok := mmu.HugeEligible(exts, chunkOff); ok {
		return mmu.FaultResult{Huge: true, Phys: phys}, nil
	}
	if phys, ok := mmu.PhysAt(exts, pageOff); ok {
		return mmu.FaultResult{Phys: phys}, nil
	}

	// The page may be backed on the slow tier (mmuExtentsLocked skips those
	// extents — they are not byte-addressable). Promote it to PM and serve
	// the fault from the new location; falling through to demand allocation
	// would double-back the page and orphan the slow copy.
	if fblk := pageOff / BlockSize; fs.isSlow(blkAt(ino, fblk)) {
		if err := fs.writable(); err != nil {
			return mmu.FaultResult{}, err
		}
		if !fs.promoteRunLocked(ctx, ino, fblk) {
			return mmu.FaultResult{}, vfs.ErrNoSpace
		}
		exts = ino.mmuExtentsLocked()
		if phys, ok := mmu.HugeEligible(exts, chunkOff); ok {
			return mmu.FaultResult{Huge: true, Phys: phys}, nil
		}
		if phys, ok := mmu.PhysAt(exts, pageOff); ok {
			return mmu.FaultResult{Phys: phys}, nil
		}
		return mmu.FaultResult{}, fmt.Errorf("winefs: fault at %d not backed after promotion: %w", pageOff, vfs.ErrMapFault)
	}

	// SIGBUS rule: demand allocation only backs pages inside the current
	// file size (re-read under the lock — a racing truncate/unlink may
	// have shrunk it since the unlocked probe). mmap rounds the file out
	// to a page boundary; anything past that is a typed fault error.
	size = ino.size
	if pageOff >= (size+BlockSize-1)/BlockSize*BlockSize {
		return mmu.FaultResult{}, fmt.Errorf("winefs: fault at %d beyond eof %d: %w", pageOff, size, vfs.ErrMapFault)
	}

	tx := fs.begin(ctx)
	chunkBlk := chunkOff / BlockSize
	chunkFree := true
	for b := chunkBlk; b < chunkBlk+BlocksPerHuge; b++ {
		if _, _, ok := ino.findRun(b); ok {
			chunkFree = false
			break
		}
	}
	if chunkFree && chunkOff+mmu.HugePage <= size {
		// The whole chunk is unbacked and within the file: allocate one
		// aligned extent and serve a hugepage fault.
		if blk, ok := fs.alloc.allocAligned(ctx, tx.cpu); ok {
			fs.dev.Zero(ctx, blk*BlockSize, alloc.HugeBytes)
			if err := fs.recAppend(ctx, tx, ino, wextent{fileBlk: chunkBlk, blk: blk, length: BlocksPerHuge}); err != nil {
				return mmu.FaultResult{}, fs.failTx(tx, "fault", err)
			}
			tx.commit()
			return mmu.FaultResult{Huge: true, Phys: blk * BlockSize}, nil
		}
	}
	// Fall back to a single base page from the hole pool.
	small, ok := fs.alloc.allocSmall(ctx, tx.cpu, 1)
	if !ok {
		tx.commit()
		return mmu.FaultResult{}, vfs.ErrNoSpace
	}
	blk := small[0].Start
	fs.dev.Zero(ctx, blk*BlockSize, BlockSize)
	if err := fs.recAppend(ctx, tx, ino, wextent{fileBlk: pageOff / BlockSize, blk: blk, length: 1}); err != nil {
		return mmu.FaultResult{}, fs.failTx(tx, "fault", err)
	}
	tx.commit()
	return mmu.FaultResult{Phys: blk * BlockSize}, nil
}
