package winefs

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/vfs"
	"repro/internal/vmm"
)

// TestTierMigrationVsMmapRace is the `make tier-race` workload: threads
// hammer a live DAX mapping while migration passes demote and promote the
// extents underneath. The invalidate-before-free ordering in replaceRange
// means every mapped access either resolves through a current PM
// translation (refaulting promotes demoted extents back up) or fails with
// the typed fault error — never reads freed or slow-tier memory. Run under
// -race it also checks the heat counters and the tier pool locking.
func TestTierMigrationVsMmapRace(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(128 << 20)
	slow := tier.NewSlow(tier.DefaultSlowConfig(64 << 20))
	defer slow.Release()
	fs, err := Mkfs(ctx, dev, Options{CPUs: 2, Mode: vfs.Strict, Tier: &TierOptions{Slow: slow}})
	if err != nil {
		t.Fatal(err)
	}
	const size = 8 << 20
	data := patternBuf(size, 0x42)
	f, err := fs.Create(ctx, "/mapped")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, data, 0); err != nil {
		t.Fatal(err)
	}
	m, err := vmm.Map(ctx, f, size, vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close(ctx)
	if err := m.Read(ctx, make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}

	// Drive migration from one thread while others read the mapping.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mctx := sim.NewCtx(50, 1)
		for i := 0; i < 12; i++ {
			if i%2 == 0 {
				// Demote: drop the water marks so the pass sheds extents.
				fs.tier.highWater = 0.001
				fs.tier.lowWater = 0.0005
			} else {
				// Promote: raise them back so refaulted extents return.
				fs.tier.highWater = 0.95
				fs.tier.lowWater = 0.85
			}
			if _, err := fs.TierPass(mctx, TierPassOptions{MaxMigrateBlocks: 1024}); err != nil {
				t.Errorf("tier pass %d: %v", i, err)
			}
		}
	}()
	for th := 0; th < 6; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			tctx := sim.NewCtx(100+th, th%2)
			rng := sim.NewRand(uint64(th)*524287 + 1)
			buf := make([]byte, 256)
			for i := 0; i < 300; i++ {
				off := rng.Int63n(size - int64(len(buf)))
				err := m.Read(tctx, buf, off)
				if err != nil {
					if errors.Is(err, vfs.ErrMapFault) || errors.Is(err, vfs.ErrNoSpace) {
						continue // invalidated mid-access or promotion raced an allocation; refault next round
					}
					t.Errorf("thread %d op %d: %v", th, i, err)
					return
				}
				// A successful mapped read must return current bytes, never
				// a freed block's recycled content.
				want := data[off : off+int64(len(buf))]
				if !bytes.Equal(buf, want) {
					t.Errorf("thread %d op %d: mapped read at %d returned stale bytes", th, i, off)
					return
				}
			}
		}(th)
	}
	wg.Wait()

	// Quiesce: promote everything back and verify end-state integrity.
	fs.tier.highWater = 0.95
	fs.tier.lowWater = 0.85
	rctx := sim.NewCtx(200, 0)
	got := make([]byte, size)
	if _, err := f.ReadAt(rctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file content corrupted by concurrent migration")
	}
	if err := fs.Audit(rctx); err != nil {
		t.Fatal(err)
	}
}
