package winefs

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/sim"
)

// Audit is the runtime invariant auditor: it cross-checks the allocator's
// cached per-group accounting against the ground truth recomputed from its
// trees, verifies the hole-pool promotion invariant ("no hole ever fully
// contains an aligned hugepage chunk", §3.6), checks every free extent for
// bounds and overlap, and reconciles the totals against both StatFS and the
// sum of every inode's extents — so a leak or double-free anywhere in the
// FS shows up as a named violation instead of silent drift.
//
// Audit assumes a quiescent file system (no in-flight operations); the
// soak test and the fault campaign call it between phases. It returns nil
// when every invariant holds, or an error listing every violation found.
func (fs *FS) Audit(ctx *sim.Ctx) error {
	var violations []string
	addf := func(format string, args ...interface{}) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}

	// Phase 1: per-group internal consistency. All group locks are held
	// simultaneously (index order; group locks are never nested elsewhere)
	// so phases 2-4 check one coherent instant — with one group at a time,
	// blocks mid-flight between groups would read as overlaps or leaks.
	type freeExt struct {
		start, length int64
		aligned       bool
		held          bool // parked in a defrag hold, not allocatable
		cpu           int
	}
	var free []freeExt
	var freeBlocks, alignedExtents, heldBlocks int64
	for _, g := range fs.alloc.groups {
		g.mu.Lock()
	}
	for _, g := range fs.alloc.groups {
		poolStart, poolEnd := fs.g.poolRange(g.cpu)

		// Cached holeBlocks vs the sum over the by-start tree.
		var recomputed int64
		nHoles := 0
		g.holes.Ascend(func(start, length int64) bool {
			recomputed += length
			nHoles++
			if length <= 0 {
				addf("group %d: hole [%d,+%d) has non-positive length", g.cpu, start, length)
			}
			if start < poolStart || start+length > poolEnd {
				addf("group %d: hole [%d,+%d) outside pool [%d,%d)", g.cpu, start, length, poolStart, poolEnd)
			}
			if _, ok := g.holesBySize.Get(holeKey{length, start}); !ok {
				addf("group %d: hole [%d,+%d) missing from by-size index", g.cpu, start, length)
			}
			if !g.noPromote {
				// Promotion invariant: the first aligned chunk boundary at or
				// after start must not fit a whole hugepage inside the hole.
				first := (start + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
				if first+BlocksPerHuge <= start+length {
					addf("group %d: hole [%d,+%d) fully contains aligned chunk %d (promotion invariant)",
						g.cpu, start, length, first)
				}
			}
			free = append(free, freeExt{start, length, false, false, g.cpu})
			return true
		})
		if recomputed != g.holeBlocks.Load() {
			addf("group %d: cached holeBlocks=%d but tree sums to %d", g.cpu, g.holeBlocks.Load(), recomputed)
		}
		if bySize := g.holesBySize.Len(); bySize != nHoles {
			addf("group %d: %d holes but %d by-size entries", g.cpu, nHoles, bySize)
		}

		seen := make(map[int64]bool, len(g.aligned))
		for _, b := range g.aligned {
			if b%BlocksPerHuge != 0 {
				addf("group %d: aligned extent %d not hugepage-aligned", g.cpu, b)
			}
			if b < poolStart || b+BlocksPerHuge > poolEnd {
				addf("group %d: aligned extent %d outside pool [%d,%d)", g.cpu, b, poolStart, poolEnd)
			}
			if seen[b] {
				addf("group %d: aligned extent %d listed twice", g.cpu, b)
			}
			seen[b] = true
			free = append(free, freeExt{b, BlocksPerHuge, true, false, g.cpu})
		}
		freeBlocks += g.freeBlocks()
		alignedExtents += int64(len(g.aligned))

		// Defrag hold (§3.5): a chunk under online reclamation parks its
		// free sub-ranges in holdParts. They must lie inside the held
		// chunk and — checked globally in phase 2 — stay disjoint from
		// both pools; they still count as free space in the tiling.
		if g.holdBase < 0 && len(g.holdParts) > 0 {
			addf("group %d: %d hold parts but no chunk held", g.cpu, len(g.holdParts))
		}
		if g.holdBase >= 0 {
			if g.holdBase%BlocksPerHuge != 0 {
				addf("group %d: held chunk base %d not hugepage-aligned", g.cpu, g.holdBase)
			}
			for _, p := range g.holdParts {
				if p.Start < g.holdBase || p.End() > g.holdBase+BlocksPerHuge {
					addf("group %d: hold part [%d,+%d) outside held chunk %d",
						g.cpu, p.Start, p.Len, g.holdBase)
				}
				free = append(free, freeExt{p.Start, p.Len, false, true, g.cpu})
				heldBlocks += p.Len
			}
		}
	}
	for i := len(fs.alloc.groups) - 1; i >= 0; i-- {
		fs.alloc.groups[i].mu.Unlock()
	}

	// Phase 2: global free-space disjointness. Every free extent — aligned
	// or hole, any group — must occupy its own blocks.
	sort.Slice(free, func(i, j int) bool { return free[i].start < free[j].start })
	for i := 1; i < len(free); i++ {
		prev, cur := free[i-1], free[i]
		if prev.start+prev.length <= cur.start {
			continue
		}
		switch {
		case prev.held || cur.held:
			// §3.5: a chunk under defrag reclamation is invisible to the
			// allocator — its held ranges re-entering a pool would let
			// foreground allocation re-fragment the chunk mid-migration.
			addf("defrag hold violation: held range overlaps free pool (group %d [%d,+%d) vs group %d [%d,+%d))",
				prev.cpu, prev.start, prev.length, cur.cpu, cur.start, cur.length)
		case prev.aligned != cur.aligned:
			// §3.6 promotion invariant, named: the same blocks sit in the
			// aligned FIFO and the unaligned hole pool simultaneously.
			addf("promotion invariant violation: blocks in both aligned and unaligned pools (group %d [%d,+%d) vs group %d [%d,+%d))",
				prev.cpu, prev.start, prev.length, cur.cpu, cur.start, cur.length)
		default:
			addf("free extents overlap: group %d [%d,+%d) and group %d [%d,+%d)",
				prev.cpu, prev.start, prev.length, cur.cpu, cur.start, cur.length)
		}
	}

	// Phase 3: totals vs StatFS (the public accounting) and FreeExtents.
	st := fs.StatFS(ctx)
	if st.FreeBlocks != freeBlocks {
		addf("StatFS.FreeBlocks=%d but groups sum to %d", st.FreeBlocks, freeBlocks)
	}
	if st.FreeAligned2M != alignedExtents {
		addf("StatFS.FreeAligned2M=%d but groups sum to %d", st.FreeAligned2M, alignedExtents)
	}
	var merged int64
	for _, e := range fs.alloc.freeExtents() {
		merged += e.Len
	}
	if merged != freeBlocks {
		addf("FreeExtents() covers %d blocks but groups sum to %d", merged, freeBlocks)
	}

	// Phase 4: full tiling. Every pool block is either free or referenced by
	// exactly one inode (file/dir extents plus indirect metadata blocks), so
	// free + used must equal the pool size; a mismatch is a leak (lost
	// blocks) or a double-accounting (negative leak). On tiered mounts the
	// used sum splits by tier: PM extents tile the PM pools, slow extents
	// tile the slow region against the tier pool.
	var used, usedSlow int64
	var slowUsed []alloc.Extent
	for _, ino := range fs.snapshotInodes() {
		ino.mu.RLock()
		for _, e := range ino.extents {
			if fs.isSlow(e.blk) {
				usedSlow += e.length
				slowUsed = append(slowUsed, alloc.Extent{Start: e.blk, Len: e.length})
			} else {
				used += e.length
			}
		}
		used += int64(len(ino.indirect)) // indirect blocks are PM-only
		ino.mu.RUnlock()
	}
	total := fs.g.poolBlocks * int64(fs.g.cpus)
	if freeBlocks+heldBlocks+used != total {
		addf("tiling: free=%d + held=%d + used=%d = %d, want %d (leak of %d blocks)",
			freeBlocks, heldBlocks, used, freeBlocks+heldBlocks+used, total,
			total-freeBlocks-heldBlocks-used)
	}

	// Phase 5 (tiered mounts): slow-region tiling and disjointness. Used
	// slow extents must be pairwise disjoint, inside the region, and tile
	// it exactly against the tier pool's free list.
	if t := fs.tier; t != nil {
		slowFree := t.pool.FreeBlocks()
		if slowFree+usedSlow != t.blocks {
			addf("slow tiling: free=%d + used=%d = %d, want %d (leak of %d blocks)",
				slowFree, usedSlow, slowFree+usedSlow, t.blocks, t.blocks-slowFree-usedSlow)
		}
		for _, e := range t.pool.FreeExtents() {
			if e.Start < t.base || e.End() > t.base+t.blocks {
				addf("slow free extent [%d,+%d) outside region [%d,%d)", e.Start, e.Len, t.base, t.base+t.blocks)
			}
			slowUsed = append(slowUsed, e) // free joins used for the overlap scan
		}
		sort.Slice(slowUsed, func(i, j int) bool { return slowUsed[i].Start < slowUsed[j].Start })
		for i := 1; i < len(slowUsed); i++ {
			if slowUsed[i-1].End() > slowUsed[i].Start {
				addf("slow extents overlap: [%d,+%d) and [%d,+%d)",
					slowUsed[i-1].Start, slowUsed[i-1].Len, slowUsed[i].Start, slowUsed[i].Len)
			}
		}
		for _, e := range slowUsed {
			if e.Start < t.base || e.End() > t.base+t.blocks {
				addf("slow used extent [%d,+%d) outside region [%d,%d)", e.Start, e.Len, t.base, t.base+t.blocks)
			}
		}
	}

	if len(violations) == 0 {
		return nil
	}
	return &AuditError{Violations: violations}
}

// AuditError reports every invariant violation an Audit pass found.
type AuditError struct {
	Violations []string
}

func (e *AuditError) Error() string {
	if len(e.Violations) == 1 {
		return "winefs audit: " + e.Violations[0]
	}
	return fmt.Sprintf("winefs audit: %d violations, first: %s", len(e.Violations), e.Violations[0])
}

// auditUsedExtents is a test hook: the per-inode extent list as the audit
// sees it, merged.
func (fs *FS) auditUsedExtents() []alloc.Extent {
	var out []alloc.Extent
	for _, ino := range fs.snapshotInodes() {
		ino.mu.RLock()
		for _, e := range ino.extents {
			out = append(out, alloc.Extent{Start: e.blk, Len: e.length})
		}
		for _, b := range ino.indirect {
			out = append(out, alloc.Extent{Start: b, Len: 1})
		}
		ino.mu.RUnlock()
	}
	return alloc.Merge(out)
}
