package fsbase

import (
	"sync"

	"repro/internal/pmem"
	"repro/internal/sim"
)

// MetaKind classifies a metadata operation for the MetaOp hook.
type MetaKind int

const (
	// MetaNamespace covers creates, unlinks, renames, mkdir/rmdir.
	MetaNamespace MetaKind = iota
	// MetaData covers size and extent-map updates from the data path.
	MetaData
)

// JBD2 models ext4/xfs-style block journaling: metadata records accumulate
// in a running transaction; commit — forced by fsync — is a stop-the-world
// flush through one global resource. This is the scalability bottleneck
// Figure 10 shows for ext4-DAX, xfs-DAX, and (by inheritance) SplitFS.
type JBD2 struct {
	model *pmem.CostModel
	res   sim.Resource
	mu    sync.Mutex
	// pending counts journal bytes logged since the last commit.
	pending int64
}

// NewJBD2 returns a journal model using the device's cost parameters.
func NewJBD2(model *pmem.CostModel) *JBD2 {
	return &JBD2{model: model}
}

// jbd2CommitFixedNS is the fixed cost of a JBD2 commit (descriptor block,
// commit block, barriers).
const jbd2CommitFixedNS = 14000

// Log records `entries` 64-byte metadata records in the running
// transaction. Writing to the in-memory journal buffer is cheap; the
// expense comes at commit.
// jbd2HandleNS is the per-operation cost of starting/stopping a JBD2
// handle and dirtying the touched metadata buffers.
const jbd2HandleNS = 500

func (j *JBD2) Log(ctx *sim.Ctx, entries int) {
	n := int64(entries) * 64
	j.mu.Lock()
	j.pending += n
	j.mu.Unlock()
	ctx.Counters.JournalBytes += n
	ctx.Advance(jbd2HandleNS + int64(entries)*j.model.WriteLat64/2)
}

// Commit flushes the running transaction: the caller (an fsync) occupies
// the global journal resource while the pending records, plus its own
// dirty data, are made durable. All concurrent fsyncs serialise here.
func (j *JBD2) Commit(ctx *sim.Ctx, dirtyBytes int64) {
	j.mu.Lock()
	pending := j.pending
	j.pending = 0
	j.mu.Unlock()
	// Journal records are written twice (journal + checkpoint later);
	// charge the journal write plus per-line flushes of dirty data.
	hold := jbd2CommitFixedNS +
		int64(float64(pending)*j.model.CopyWriteNSPerByte*2) +
		(dirtyBytes+63)/64*j.model.FlushLat/8
	j.res.Use(ctx, hold)
	ctx.Counters.JournalCommits++
	ctx.Counters.PMWriteBytes += pending
}

// SingleJournal models PMFS's one fine-grained undo journal: every
// metadata operation synchronously writes its entries through a single
// shared resource. Holds are short (fine-grained journaling scales
// decently, §5.6) but all CPUs share the one journal.
type SingleJournal struct {
	model *pmem.CostModel
	res   sim.Resource
}

// NewSingleJournal returns PMFS's journal model.
func NewSingleJournal(model *pmem.CostModel) *SingleJournal {
	return &SingleJournal{model: model}
}

// Op journals one synchronous metadata operation of `entries` records.
func (s *SingleJournal) Op(ctx *sim.Ctx, entries int) {
	n := int64(entries) * 64
	hold := int64(entries)*(s.model.WriteLat64+s.model.FlushLat) + 2*s.model.FenceLat
	s.res.Use(ctx, hold)
	ctx.Counters.JournalBytes += n
	ctx.Counters.PMWriteBytes += n
	ctx.Counters.JournalCommits++
}

// PerInodeLog models NOVA's per-inode metadata logs: appends are
// contention-free across inodes and synchronous. The log consumes real
// free-space blocks (allocated by the caller), which is exactly the
// fragmentation driver the paper identifies.
type PerInodeLog struct {
	model *pmem.CostModel
}

// NewPerInodeLog returns NOVA's log cost model.
func NewPerInodeLog(model *pmem.CostModel) *PerInodeLog {
	return &PerInodeLog{model: model}
}

// Append charges `entries` 64B log appends plus flush+fence.
func (l *PerInodeLog) Append(ctx *sim.Ctx, entries int) {
	n := int64(entries) * 64
	ctx.Advance(int64(entries)*(l.model.WriteLat64+l.model.FlushLat) + l.model.FenceLat)
	ctx.Counters.JournalBytes += n
	ctx.Counters.PMWriteBytes += n
	ctx.Counters.JournalCommits++
}
