package fsbase

import (
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// vfs.Mapper over the shared base: every fsbase-derived file system
// (ext4-DAX, xfs-DAX, NOVA, PMFS, SplitFS, Strata) gets the zero-copy
// mapping subsystem (internal/vmm) through these five methods. The fault
// handler itself is File.Fault in file.go.

// MapSpace implements vfs.Mapper.
func (f *File) MapSpace() *mmu.AddressSpace { return f.fs.as }

// MapSyscallNS implements vfs.Mapper.
func (f *File) MapSyscallNS() int64 { return f.fs.model.SyscallNS }

// AttachMapping implements vfs.Mapper.
func (f *File) AttachMapping(m *mmu.Mapping) {
	f.node.mu.Lock()
	f.node.mappings = append(f.node.mappings, m)
	f.node.mu.Unlock()
}

// DetachMapping implements vfs.Mapper.
func (f *File) DetachMapping(m *mmu.Mapping) {
	f.node.mu.Lock()
	for i, mm := range f.node.mappings {
		if mm == m {
			f.node.mappings = append(f.node.mappings[:i], f.node.mappings[i+1:]...)
			break
		}
	}
	f.node.mu.Unlock()
}

// MsyncRange implements vfs.Mapper: DAX stores already sit in PM, so
// durability for [off, off+n) is clwb over the backed lines plus one
// sfence. Holes have nothing to flush.
func (f *File) MsyncRange(ctx *sim.Ctx, off, n int64) error {
	if n <= 0 {
		return nil
	}
	fs := f.fs
	node := f.node
	startBlk := off / BlockSize
	endBlk := (off + n + BlockSize - 1) / BlockSize
	node.mu.RLock()
	for _, e := range node.extents {
		lo, hi := e.FileBlk, e.FileBlk+e.Len
		if lo < startBlk {
			lo = startBlk
		}
		if hi > endBlk {
			hi = endBlk
		}
		if lo >= hi {
			continue
		}
		fs.dev.Flush(ctx, (e.Blk+lo-e.FileBlk)*BlockSize, (hi-lo)*BlockSize)
	}
	node.mu.RUnlock()
	fs.dev.Fence(ctx)
	return nil
}

var _ vfs.Mapper = (*File)(nil)
