// Package fsbase provides the shared machinery for the six baseline file
// systems the paper compares WineFS against (ext4-DAX, xfs-DAX, PMFS,
// NOVA, SplitFS, Strata).
//
// The baselines matter to the reproduction through four policy axes, which
// Hooks captures:
//
//   - allocation policy (contiguity-first vs alignment-aware vs per-CPU);
//   - metadata consistency mechanism and its concurrency (global JBD2
//     batch, single fine-grained journal, per-inode logs);
//   - data-path behaviour on overwrites and unaligned appends (in-place vs
//     copy-on-write vs log + digestion);
//   - fault-time behaviour (zero-on-fault vs zero-on-allocate).
//
// Everything else — namespace, extent maps, sparse files, mmap fault
// resolution with the structural hugepage test — is shared here. Baselines
// keep their metadata in DRAM only (they are not crash-tested; WineFS, the
// system under study, has a fully persistent implementation in
// internal/winefs).
package fsbase

import (
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/mmu"
	"repro/internal/pmem"
	"repro/internal/rbtree"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// BlockSize aliases the common block size.
const BlockSize = alloc.BlockSize

// AllocHint carries context into an allocation policy decision.
type AllocHint struct {
	// Node is the file being extended (nil for internal allocations).
	Node *Node
	// FileBlk is the logical block the new space will back.
	FileBlk int64
	// Goal is the physical block just past the file's previous extent
	// (contiguity goal), or -1 when there is none.
	Goal int64
	// Large indicates a hugepage-sized-or-bigger request.
	Large bool
}

// OverwriteAction is a policy's answer for how to update existing bytes.
type OverwriteAction int

const (
	// InPlace overwrites directly (metadata-consistency file systems).
	InPlace OverwriteAction = iota
	// CoW redirects the affected blocks to freshly allocated space,
	// copying untouched old bytes (NOVA, Strata).
	CoW
)

// Hooks parameterises a baseline file system.
type Hooks interface {
	Name() string
	Mode() vfs.ConsistencyMode

	// Alloc obtains blocks for a file range; Free returns them.
	Alloc(ctx *sim.Ctx, blocks int64, hint AllocHint) ([]alloc.Extent, error)
	Free(ctx *sim.Ctx, ex []alloc.Extent)
	FreeExtents() []alloc.Extent
	FreeBlocks() int64
	TotalBlocks() int64

	// MetaOp charges the cost of making a metadata operation of roughly
	// `entries` 64-byte records consistent, on behalf of node n (may be
	// nil for namespace-level ops). kind distinguishes namespace changes
	// from data-path metadata (size/extent updates): SplitFS stages the
	// latter in user space until fsync.
	MetaOp(ctx *sim.Ctx, n *Node, entries int, kind MetaKind)
	// DirLookup charges one directory-resolution step in a directory
	// currently holding `entries` entries (PMFS scans linearly; the others
	// index in DRAM).
	DirLookup(ctx *sim.Ctx, entries int)
	// Overwrite decides how to update blocks that contain existing data.
	Overwrite(ctx *sim.Ctx, n *Node, off, length int64) OverwriteAction
	// DataWrite charges any policy-specific extra cost per written byte
	// (Strata's log+digest double copy, SplitFS's staging).
	DataWrite(ctx *sim.Ctx, n *Node, length int64)
	// Fsync charges the durability cost for `dirty` outstanding bytes
	// (ext4/xfs: stop-the-world journal commit; others: cheap).
	Fsync(ctx *sim.Ctx, n *Node, dirty int64)
	// ZeroOnFault selects ext4-style deferred zeroing of fallocated space.
	ZeroOnFault() bool
	// OnCreate/OnDelete run per-inode side effects (NOVA allocates the
	// per-inode log here — the fragmentation driver §2.6 calls out).
	OnCreate(ctx *sim.Ctx, n *Node)
	OnDelete(ctx *sim.Ctx, n *Node)
}

// Ext is one file extent. Unwritten marks fallocated-but-unzeroed space
// (ext4 semantics: zeroing happens at fault/write time).
type Ext struct {
	FileBlk   int64
	Blk       int64
	Len       int64
	Unwritten bool
}

// Node is a file or directory.
type Node struct {
	Ino   uint64
	IsDir bool

	mu      sync.RWMutex
	size    int64
	extents []Ext // sorted by FileBlk
	nlink   int

	children *rbtree.Tree[string, *Node] // directories

	gen     uint64
	mmapGen uint64
	mmapExt []mmu.Extent
	// mappings are the live memory mappings over this node; layout
	// changes (truncate, delete) shoot their translations down before
	// freed blocks can be reused.
	mappings []*mmu.Mapping

	dirty int64 // bytes written since last fsync

	// LogBlocks is per-inode log space (NOVA); tracked so deletes free it
	// and fragmentation analyses see it.
	LogBlocks []alloc.Extent
	// LogEntries counts live log records (drives NOVA GC).
	LogEntries int64
}

// Size returns the node's current size.
func (n *Node) Size() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.size
}

// ExtentCount returns the number of extents (fragmentation gauge).
func (n *Node) ExtentCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.extents)
}

// FS is a mounted baseline file system.
type FS struct {
	hooks Hooks
	dev   *pmem.Device
	as    *mmu.AddressSpace
	model *pmem.CostModel
	locks *vfs.LockTable

	mu      sync.RWMutex
	root    *Node
	nodes   map[uint64]*Node
	nextIno uint64
	files   int64
}

// New builds a baseline FS over dev with the given policy hooks.
func New(dev *pmem.Device, hooks Hooks) *FS {
	fs := &FS{
		hooks:   hooks,
		dev:     dev,
		as:      mmu.NewAddressSpace(dev),
		model:   dev.Model(),
		locks:   vfs.NewLockTable(),
		nodes:   make(map[uint64]*Node),
		nextIno: 1,
	}
	fs.root = fs.newNode(true)
	return fs
}

func (fs *FS) newNode(isDir bool) *Node {
	fs.mu.Lock()
	ino := fs.nextIno
	fs.nextIno++
	n := &Node{Ino: ino, IsDir: isDir, nlink: 1}
	if isDir {
		n.nlink = 2
		n.children = rbtree.New[string, *Node](func(a, b string) bool { return a < b })
	}
	fs.nodes[ino] = n
	fs.mu.Unlock()
	return n
}

// Device returns the underlying device.
func (fs *FS) Device() *pmem.Device { return fs.dev }

// AddressSpace returns the FS's process address space.
func (fs *FS) AddressSpace() *mmu.AddressSpace { return fs.as }

// Hooks exposes the policy object (tests).
func (fs *FS) Hooks() Hooks { return fs.hooks }

// Name implements vfs.FS.
func (fs *FS) Name() string { return fs.hooks.Name() }

// Mode implements vfs.FS.
func (fs *FS) Mode() vfs.ConsistencyMode { return fs.hooks.Mode() }

// resolve walks a path, charging the policy's per-step lookup cost.
func (fs *FS) resolve(ctx *sim.Ctx, path string) (*Node, error) {
	cur := fs.root
	for _, comp := range vfs.Components(path) {
		cur.mu.RLock()
		if !cur.IsDir {
			cur.mu.RUnlock()
			return nil, vfs.ErrNotDir
		}
		fs.hooks.DirLookup(ctx, cur.children.Len())
		next, ok := cur.children.Get(comp)
		cur.mu.RUnlock()
		if !ok {
			return nil, vfs.ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

func (fs *FS) resolveParent(ctx *sim.Ctx, path string) (*Node, string, error) {
	dir, name, err := vfs.SplitParent(path)
	if err != nil {
		return nil, "", err
	}
	p, err := fs.resolve(ctx, dir)
	if err != nil {
		return nil, "", err
	}
	if !p.IsDir {
		return nil, "", vfs.ErrNotDir
	}
	return p, name, nil
}

// Create implements vfs.FS.
func (fs *FS) Create(ctx *sim.Ctx, path string) (vfs.File, error) {
	ctx.Syscall(fs.model.SyscallNS)
	parent, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return nil, err
	}
	h := fs.locks.Lock(ctx, parent.Ino)
	defer h.Unlock(ctx)
	parent.mu.Lock()
	if existing, ok := parent.children.Get(name); ok {
		parent.mu.Unlock()
		if existing.IsDir {
			return nil, vfs.ErrIsDir
		}
		return &File{fs: fs, node: existing}, nil
	}
	child := fs.newNode(false)
	parent.children.Set(name, child)
	parent.mu.Unlock()
	fs.hooks.MetaOp(ctx, parent, 4, MetaNamespace)
	fs.hooks.OnCreate(ctx, child)
	fs.mu.Lock()
	fs.files++
	fs.mu.Unlock()
	return &File{fs: fs, node: child}, nil
}

// Open implements vfs.FS.
func (fs *FS) Open(ctx *sim.Ctx, path string) (vfs.File, error) {
	ctx.Syscall(fs.model.SyscallNS)
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return nil, err
	}
	if n.IsDir {
		return nil, vfs.ErrIsDir
	}
	return &File{fs: fs, node: n}, nil
}

// Mkdir implements vfs.FS.
func (fs *FS) Mkdir(ctx *sim.Ctx, path string) error {
	ctx.Syscall(fs.model.SyscallNS)
	parent, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	h := fs.locks.Lock(ctx, parent.Ino)
	defer h.Unlock(ctx)
	parent.mu.Lock()
	if _, ok := parent.children.Get(name); ok {
		parent.mu.Unlock()
		return vfs.ErrExist
	}
	child := fs.newNode(true)
	parent.children.Set(name, child)
	parent.nlink++
	parent.mu.Unlock()
	fs.hooks.MetaOp(ctx, parent, 4, MetaNamespace)
	fs.hooks.OnCreate(ctx, child)
	return nil
}

// Unlink implements vfs.FS.
func (fs *FS) Unlink(ctx *sim.Ctx, path string) error {
	ctx.Syscall(fs.model.SyscallNS)
	parent, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	h := fs.locks.Lock(ctx, parent.Ino)
	defer h.Unlock(ctx)
	parent.mu.Lock()
	target, ok := parent.children.Get(name)
	if !ok {
		parent.mu.Unlock()
		return vfs.ErrNotExist
	}
	if target.IsDir {
		parent.mu.Unlock()
		return vfs.ErrIsDir
	}
	parent.children.Delete(name)
	parent.mu.Unlock()
	fs.hooks.MetaOp(ctx, parent, 3, MetaNamespace)
	fs.destroy(ctx, target)
	fs.mu.Lock()
	fs.files--
	fs.mu.Unlock()
	return nil
}

func (fs *FS) destroy(ctx *sim.Ctx, n *Node) {
	fs.hooks.OnDelete(ctx, n)
	n.mu.Lock()
	var ex []alloc.Extent
	for _, e := range n.extents {
		ex = append(ex, alloc.Extent{Start: e.Blk, Len: e.Len})
	}
	n.extents = nil
	n.size = 0
	n.gen++
	maps := n.mappings
	n.mappings = nil
	n.mu.Unlock()
	// Unlink-under-mmap: shoot down live translations before the blocks
	// return to the allocator; later faults see size 0 and report
	// vfs.ErrMapFault.
	for _, m := range maps {
		m.Invalidate()
	}
	fs.hooks.Free(ctx, ex)
	fs.mu.Lock()
	delete(fs.nodes, n.Ino)
	fs.mu.Unlock()
	fs.locks.Drop(n.Ino)
}

// Rmdir implements vfs.FS.
func (fs *FS) Rmdir(ctx *sim.Ctx, path string) error {
	ctx.Syscall(fs.model.SyscallNS)
	parent, name, err := fs.resolveParent(ctx, path)
	if err != nil {
		return err
	}
	h := fs.locks.Lock(ctx, parent.Ino)
	defer h.Unlock(ctx)
	parent.mu.Lock()
	target, ok := parent.children.Get(name)
	if !ok {
		parent.mu.Unlock()
		return vfs.ErrNotExist
	}
	if !target.IsDir {
		parent.mu.Unlock()
		return vfs.ErrNotDir
	}
	target.mu.RLock()
	empty := target.children.Len() == 0
	target.mu.RUnlock()
	if !empty {
		parent.mu.Unlock()
		return vfs.ErrNotEmpty
	}
	parent.children.Delete(name)
	parent.nlink--
	parent.mu.Unlock()
	fs.hooks.MetaOp(ctx, parent, 3, MetaNamespace)
	fs.destroy(ctx, target)
	return nil
}

// Rename implements vfs.FS.
func (fs *FS) Rename(ctx *sim.Ctx, oldPath, newPath string) error {
	ctx.Syscall(fs.model.SyscallNS)
	oldParent, oldName, err := fs.resolveParent(ctx, oldPath)
	if err != nil {
		return err
	}
	newParent, newName, err := fs.resolveParent(ctx, newPath)
	if err != nil {
		return err
	}
	first, second := oldParent, newParent
	if first.Ino > second.Ino {
		first, second = second, first
	}
	h1 := fs.locks.Lock(ctx, first.Ino)
	var h2 *vfs.LockHandle
	if second.Ino != first.Ino {
		h2 = fs.locks.Lock(ctx, second.Ino)
	}
	defer func() {
		if h2 != nil {
			h2.Unlock(ctx)
		}
		h1.Unlock(ctx)
	}()

	oldParent.mu.Lock()
	moved, ok := oldParent.children.Get(oldName)
	if !ok {
		oldParent.mu.Unlock()
		return vfs.ErrNotExist
	}
	oldParent.children.Delete(oldName)
	oldParent.mu.Unlock()

	newParent.mu.Lock()
	victim, replacing := newParent.children.Get(newName)
	if replacing && victim.IsDir {
		victim.mu.RLock()
		empty := victim.children.Len() == 0
		victim.mu.RUnlock()
		if !empty {
			newParent.children.Set(newName, victim)
			newParent.mu.Unlock()
			oldParent.mu.Lock()
			oldParent.children.Set(oldName, moved)
			oldParent.mu.Unlock()
			return vfs.ErrNotEmpty
		}
	}
	newParent.children.Set(newName, moved)
	newParent.mu.Unlock()
	fs.hooks.MetaOp(ctx, newParent, 6, MetaNamespace)
	if replacing {
		fs.destroy(ctx, victim)
		if !victim.IsDir {
			fs.mu.Lock()
			fs.files--
			fs.mu.Unlock()
		}
	}
	return nil
}

// Stat implements vfs.FS.
func (fs *FS) Stat(ctx *sim.Ctx, path string) (vfs.FileInfo, error) {
	ctx.Syscall(fs.model.SyscallNS)
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return vfs.FileInfo{Ino: n.Ino, Size: n.size, IsDir: n.IsDir, Nlink: n.nlink}, nil
}

// ReadDir implements vfs.FS.
func (fs *FS) ReadDir(ctx *sim.Ctx, path string) ([]vfs.DirEntry, error) {
	ctx.Syscall(fs.model.SyscallNS)
	n, err := fs.resolve(ctx, path)
	if err != nil {
		return nil, err
	}
	if !n.IsDir {
		return nil, vfs.ErrNotDir
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []vfs.DirEntry
	n.children.Ascend(func(name string, c *Node) bool {
		fs.hooks.DirLookup(ctx, 1)
		out = append(out, vfs.DirEntry{Name: name, Ino: c.Ino, IsDir: c.IsDir})
		return true
	})
	return out, nil
}

// StatFS implements vfs.FS.
func (fs *FS) StatFS(ctx *sim.Ctx) vfs.StatFS {
	fs.mu.RLock()
	files := fs.files
	fs.mu.RUnlock()
	return vfs.StatFS{
		TotalBlocks:   fs.hooks.TotalBlocks(),
		FreeBlocks:    fs.hooks.FreeBlocks(),
		FreeAligned2M: alloc.AlignedRegions(fs.hooks.FreeExtents()),
		Files:         files,
	}
}

// FreeExtents implements vfs.FS.
func (fs *FS) FreeExtents() []alloc.Extent { return fs.hooks.FreeExtents() }

// Unmount implements vfs.FS (baselines keep no serialised DRAM state).
func (fs *FS) Unmount(ctx *sim.Ctx) error { return nil }

// String aids debugging.
func (fs *FS) String() string { return fmt.Sprintf("%s(files=%d)", fs.Name(), fs.files) }
