package fsbase

import (
	"fmt"
	"sort"

	"repro/internal/alloc"
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// File is an open baseline-FS file handle.
type File struct {
	fs   *FS
	node *Node
}

var _ vfs.File = (*File)(nil)

// Ino implements vfs.File.
func (f *File) Ino() uint64 { return f.node.Ino }

// Size implements vfs.File.
func (f *File) Size() int64 { return f.node.Size() }

// Close implements vfs.File.
func (f *File) Close(ctx *sim.Ctx) error { return nil }

// findRun locates the extent run backing fileBlk. Caller holds node.mu.
func (n *Node) findRun(fileBlk int64) (phys int64, run int64, unwritten bool, ok bool) {
	i := sort.Search(len(n.extents), func(i int) bool {
		return n.extents[i].FileBlk+n.extents[i].Len > fileBlk
	})
	if i == len(n.extents) || n.extents[i].FileBlk > fileBlk {
		return 0, 0, false, false
	}
	e := n.extents[i]
	return e.Blk + (fileBlk - e.FileBlk), e.Len - (fileBlk - e.FileBlk), e.Unwritten, true
}

func (n *Node) nextExtentStart(fileBlk, max int64) int64 {
	i := sort.Search(len(n.extents), func(i int) bool { return n.extents[i].FileBlk > fileBlk })
	if i == len(n.extents) || n.extents[i].FileBlk >= max {
		return max
	}
	return n.extents[i].FileBlk
}

func (n *Node) insertExtent(e Ext) {
	// Merge with predecessor when contiguous and same unwritten state.
	i := sort.Search(len(n.extents), func(i int) bool { return n.extents[i].FileBlk > e.FileBlk })
	if i > 0 {
		p := &n.extents[i-1]
		if p.FileBlk+p.Len == e.FileBlk && p.Blk+p.Len == e.Blk && p.Unwritten == e.Unwritten {
			p.Len += e.Len
			n.gen++
			return
		}
	}
	n.extents = append(n.extents, Ext{})
	copy(n.extents[i+1:], n.extents[i:])
	n.extents[i] = e
	n.gen++
}

// ReadAt implements vfs.File.
func (f *File) ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	ctx.Syscall(f.fs.model.SyscallNS)
	n := f.node
	n.mu.RLock()
	defer n.mu.RUnlock()
	if off >= n.size {
		return 0, nil
	}
	if off+int64(len(p)) > n.size {
		p = p[:n.size-off]
	}
	read := 0
	for read < len(p) {
		pos := off + int64(read)
		blk := pos / BlockSize
		in := pos % BlockSize
		phys, run, unwritten, ok := n.findRun(blk)
		if !ok || unwritten {
			// Hole or unwritten fallocated space reads as zero.
			var end int64
			if !ok {
				end = n.nextExtentStart(blk, (off+int64(len(p))+BlockSize-1)/BlockSize) * BlockSize
			} else {
				end = (blk + run) * BlockSize
			}
			k := end - pos
			if k > int64(len(p)-read) {
				k = int64(len(p) - read)
			}
			z := p[read : read+int(k)]
			for i := range z {
				z[i] = 0
			}
			read += int(k)
			continue
		}
		k := run*BlockSize - in
		if k > int64(len(p)-read) {
			k = int64(len(p) - read)
		}
		f.fs.dev.Read(ctx, p[read:read+int(k)], phys*BlockSize+in)
		read += int(k)
	}
	return read, nil
}

// WriteAt implements vfs.File.
func (f *File) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	return f.write(ctx, p, off)
}

// Append implements vfs.File.
func (f *File) Append(ctx *sim.Ctx, p []byte) (int, error) {
	f.node.mu.RLock()
	off := f.node.size
	f.node.mu.RUnlock()
	return f.write(ctx, p, off)
}

func (f *File) write(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	ctx.Syscall(f.fs.model.SyscallNS)
	if len(p) == 0 {
		return 0, nil
	}
	fs := f.fs
	n := f.node
	h := fs.locks.Lock(ctx, n.Ino)
	defer h.Unlock(ctx)
	n.mu.Lock()
	defer n.mu.Unlock()

	length := int64(len(p))
	end := off + length
	oldSize := n.size
	startBlk := off / BlockSize
	endBlk := (end + BlockSize - 1) / BlockSize

	// Zero the stale tail of a mid-block EOF when writing past it.
	if off > oldSize && oldSize%BlockSize != 0 {
		if phys, _, unwritten, ok := n.findRun(oldSize / BlockSize); ok && !unwritten {
			tail := min64(BlockSize-oldSize%BlockSize, off-oldSize)
			fs.dev.Zero(ctx, phys*BlockSize+oldSize%BlockSize, tail)
		}
	}

	// Allocate unbacked blocks.
	newExtents := 0
	for b := startBlk; b < endBlk; {
		if _, run, _, ok := n.findRun(b); ok {
			b += run
			continue
		}
		gapEnd := n.nextExtentStart(b, endBlk)
		need := gapEnd - b
		goal := int64(-1)
		if len(n.extents) > 0 {
			last := n.extents[len(n.extents)-1]
			if last.FileBlk+last.Len == b {
				goal = last.Blk + last.Len
			}
		}
		exts, err := fs.hooks.Alloc(ctx, need, AllocHint{
			Node: n, FileBlk: b, Goal: goal, Large: need >= alloc.BlocksPerHuge,
		})
		if err != nil {
			return 0, err
		}
		fileBlk := b
		for _, e := range exts {
			// Zero the edge bytes the write won't cover.
			f.zeroEdges(ctx, e, fileBlk*BlockSize, (fileBlk+e.Len)*BlockSize, off, end)
			n.insertExtent(Ext{FileBlk: fileBlk, Blk: e.Start, Len: e.Len})
			fileBlk += e.Len
			newExtents++
		}
		b = gapEnd
	}

	// Overwrite policy for bytes that already existed.
	overwriteEnd := min64(end, oldSize)
	written := 0
	for written < len(p) {
		pos := off + int64(written)
		blk := pos / BlockSize
		in := pos % BlockSize
		phys, run, unwritten, ok := n.findRun(blk)
		if !ok {
			return written, vfs.ErrNoSpace
		}
		chunk := run*BlockSize - in
		if chunk > int64(len(p)-written) {
			chunk = int64(len(p) - written)
		}
		// A block "has old data" if any byte of it precedes oldSize.
		hasOld := blk*BlockSize < overwriteEnd && !unwritten
		if hasOld && fs.hooks.Overwrite(ctx, n, pos, chunk) == CoW {
			if err := f.cow(ctx, p[written:written+int(chunk)], pos); err != nil {
				return written, err
			}
			written += int(chunk)
			continue
		}
		if unwritten {
			// ext4 semantics: converting an unwritten range zeroes the
			// block edges the write leaves untouched.
			f.clearUnwrittenAround(ctx, blk, (pos+chunk+BlockSize-1)/BlockSize)
		}
		fs.dev.Write(ctx, p[written:written+int(chunk)], phys*BlockSize+in)
		written += int(chunk)
	}
	fs.hooks.DataWrite(ctx, n, length)
	if end > n.size {
		n.size = end
	}
	n.dirty += length
	fs.hooks.MetaOp(ctx, n, 1+newExtents, MetaData)
	return len(p), nil
}

// clearUnwrittenAround converts the unwritten extents overlapping
// [startBlk, endBlk) to written, charging the zeroing of their edges.
func (f *File) clearUnwrittenAround(ctx *sim.Ctx, startBlk, endBlk int64) {
	n := f.node
	for i := range n.extents {
		e := &n.extents[i]
		if !e.Unwritten || e.FileBlk+e.Len <= startBlk || e.FileBlk >= endBlk {
			continue
		}
		// Zero the whole extent's device range outside the write: charged
		// coarsely as the extent's edges (one block each side).
		f.fs.dev.Zero(ctx, e.Blk*BlockSize, min64(e.Len, 2)*BlockSize)
		e.Unwritten = false
	}
	n.gen++
}

func (f *File) zeroEdges(ctx *sim.Ctx, e alloc.Extent, zs, ze, skipS, skipE int64) {
	physBase := e.StartByte()
	if skipE <= zs || skipS >= ze {
		f.fs.dev.Zero(ctx, physBase, ze-zs)
		return
	}
	if skipS > zs {
		f.fs.dev.Zero(ctx, physBase, skipS-zs)
	}
	if skipE < ze {
		f.fs.dev.Zero(ctx, physBase+(skipE-zs), ze-skipE)
	}
}

// cow redirects the blocks covering [off, off+len(p)) to new allocations,
// copying old partial content (NOVA's 4KiB CoW granularity — the write
// amplification §5.5's WiredTiger analysis describes).
func (f *File) cow(ctx *sim.Ctx, p []byte, off int64) error {
	fs := f.fs
	n := f.node
	startBlk := off / BlockSize
	end := off + int64(len(p))
	endBlk := (end + BlockSize - 1) / BlockSize

	exts, err := fs.hooks.Alloc(ctx, endBlk-startBlk, AllocHint{Node: n, FileBlk: startBlk, Goal: -1})
	if err != nil {
		return err
	}
	ctx.Counters.CoWCopies += endBlk - startBlk
	var newBlks []int64
	for _, e := range exts {
		for b := e.Start; b < e.End(); b++ {
			newBlks = append(newBlks, b)
		}
	}
	buf := make([]byte, BlockSize)
	for i, nb := range newBlks {
		fileBlk := startBlk + int64(i)
		oldPhys, _, _, okOld := n.findRun(fileBlk)
		bs := fileBlk * BlockSize
		be := bs + BlockSize
		ws, we := max64(off, bs), min64(end, be)
		if okOld && (ws > bs || we < be) {
			fs.dev.Read(ctx, buf, oldPhys*BlockSize)
			fs.dev.Write(ctx, buf, nb*BlockSize)
		}
		fs.dev.Write(ctx, p[ws-off:we-off], nb*BlockSize+(ws-bs))
		// Data+metadata consistency: the new block must be durable before
		// the log entry that publishes it.
		fs.dev.Flush(ctx, nb*BlockSize, BlockSize)
	}
	fs.dev.Fence(ctx)
	f.replaceRange(ctx, startBlk, endBlk, exts)
	return nil
}

// replaceRange swaps the mapping of [startBlk, endBlk) to newExts, freeing
// the displaced blocks. Caller holds node.mu.
func (f *File) replaceRange(ctx *sim.Ctx, startBlk, endBlk int64, newExts []alloc.Extent) {
	n := f.node
	var freed []alloc.Extent
	var keep []Ext
	for _, e := range n.extents {
		eEnd := e.FileBlk + e.Len
		if eEnd <= startBlk || e.FileBlk >= endBlk {
			keep = append(keep, e)
			continue
		}
		ovS, ovE := max64(e.FileBlk, startBlk), min64(eEnd, endBlk)
		freed = append(freed, alloc.Extent{Start: e.Blk + (ovS - e.FileBlk), Len: ovE - ovS})
		if e.FileBlk < ovS {
			keep = append(keep, Ext{FileBlk: e.FileBlk, Blk: e.Blk, Len: ovS - e.FileBlk, Unwritten: e.Unwritten})
		}
		if ovE < eEnd {
			keep = append(keep, Ext{FileBlk: ovE, Blk: e.Blk + (ovE - e.FileBlk), Len: eEnd - ovE, Unwritten: e.Unwritten})
		}
	}
	fileBlk := startBlk
	for _, e := range newExts {
		l := min64(e.Len, endBlk-fileBlk)
		if l <= 0 {
			f.fs.hooks.Free(ctx, []alloc.Extent{e})
			continue
		}
		keep = append(keep, Ext{FileBlk: fileBlk, Blk: e.Start, Len: l})
		if l < e.Len {
			f.fs.hooks.Free(ctx, []alloc.Extent{{Start: e.Start + l, Len: e.Len - l}})
		}
		fileBlk += l
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].FileBlk < keep[j].FileBlk })
	n.extents = keep
	n.gen++
	f.fs.hooks.Free(ctx, freed)
}

// Truncate implements vfs.File (grow = sparse, shrink = free).
func (f *File) Truncate(ctx *sim.Ctx, size int64) error {
	ctx.Syscall(f.fs.model.SyscallNS)
	fs := f.fs
	n := f.node
	h := fs.locks.Lock(ctx, n.Ino)
	defer h.Unlock(ctx)
	n.mu.Lock()
	defer n.mu.Unlock()
	if size < n.size {
		// POSIX: zero the stale tail of the last kept block so a later
		// grow reads zeros past the new EOF.
		if size%BlockSize != 0 {
			if phys, _, unwritten, ok := n.findRun(size / BlockSize); ok && !unwritten {
				fs.dev.Zero(ctx, phys*BlockSize+size%BlockSize, BlockSize-size%BlockSize)
			}
		}
		keepBlks := (size + BlockSize - 1) / BlockSize
		var freed []alloc.Extent
		var keep []Ext
		for _, e := range n.extents {
			eEnd := e.FileBlk + e.Len
			if eEnd <= keepBlks {
				keep = append(keep, e)
				continue
			}
			if e.FileBlk >= keepBlks {
				freed = append(freed, alloc.Extent{Start: e.Blk, Len: e.Len})
				continue
			}
			cut := keepBlks - e.FileBlk
			keep = append(keep, Ext{FileBlk: e.FileBlk, Blk: e.Blk, Len: cut, Unwritten: e.Unwritten})
			freed = append(freed, alloc.Extent{Start: e.Blk + cut, Len: e.Len - cut})
		}
		n.extents = keep
		n.gen++
		if len(freed) > 0 {
			// Shoot down live mapping translations before the freed
			// blocks can be reused; faults past the new EOF now get
			// vfs.ErrMapFault instead of a recycled extent.
			for _, m := range n.mappings {
				m.Invalidate()
			}
		}
		fs.hooks.Free(ctx, freed)
	}
	n.size = size
	fs.hooks.MetaOp(ctx, n, 1, MetaData)
	return nil
}

// Fallocate implements vfs.File.
func (f *File) Fallocate(ctx *sim.Ctx, off, length int64) error {
	ctx.Syscall(f.fs.model.SyscallNS)
	fs := f.fs
	n := f.node
	h := fs.locks.Lock(ctx, n.Ino)
	defer h.Unlock(ctx)
	n.mu.Lock()
	defer n.mu.Unlock()

	startBlk := off / BlockSize
	endBlk := (off + length + BlockSize - 1) / BlockSize
	newExtents := 0
	for b := startBlk; b < endBlk; {
		if _, run, _, ok := n.findRun(b); ok {
			b += run
			continue
		}
		gapEnd := n.nextExtentStart(b, endBlk)
		need := gapEnd - b
		goal := int64(-1)
		if len(n.extents) > 0 {
			last := n.extents[len(n.extents)-1]
			if last.FileBlk+last.Len == b {
				goal = last.Blk + last.Len
			}
		}
		exts, err := fs.hooks.Alloc(ctx, need, AllocHint{Node: n, FileBlk: b, Goal: goal, Large: need >= alloc.BlocksPerHuge})
		if err != nil {
			return err
		}
		fileBlk := b
		for _, e := range exts {
			unwritten := fs.hooks.ZeroOnFault()
			if !unwritten {
				// NOVA-style: zero the space now so faults are cheap.
				fs.dev.Zero(ctx, e.StartByte(), e.Bytes())
			}
			n.insertExtent(Ext{FileBlk: fileBlk, Blk: e.Start, Len: e.Len, Unwritten: unwritten})
			fileBlk += e.Len
			newExtents++
		}
		b = gapEnd
	}
	if off+length > n.size {
		n.size = off + length
	}
	fs.hooks.MetaOp(ctx, n, 1+newExtents, MetaData)
	return nil
}

// Fsync implements vfs.File.
func (f *File) Fsync(ctx *sim.Ctx) error {
	ctx.Syscall(f.fs.model.SyscallNS)
	n := f.node
	n.mu.Lock()
	dirty := n.dirty
	n.dirty = 0
	n.mu.Unlock()
	f.fs.hooks.Fsync(ctx, n, dirty)
	return nil
}

// Extents implements vfs.File.
func (f *File) Extents() []mmu.Extent {
	f.node.mu.RLock()
	defer f.node.mu.RUnlock()
	return f.node.mmuExtentsLocked()
}

func (n *Node) mmuExtentsLocked() []mmu.Extent {
	if n.mmapGen == n.gen && n.mmapExt != nil {
		return n.mmapExt
	}
	out := make([]mmu.Extent, 0, len(n.extents))
	for _, e := range n.extents {
		out = append(out, mmu.Extent{
			FileOff: e.FileBlk * BlockSize,
			Phys:    e.Blk * BlockSize,
			Len:     e.Len * BlockSize,
		})
	}
	n.mmapExt = out
	n.mmapGen = n.gen
	return out
}

// SetXattr implements vfs.File. Baselines accept but do not act on the
// alignment attribute (they have no alignment machinery to feed it to).
func (f *File) SetXattr(ctx *sim.Ctx, name string, value []byte) error {
	ctx.Syscall(f.fs.model.SyscallNS)
	return nil
}

// GetXattr implements vfs.File.
func (f *File) GetXattr(ctx *sim.Ctx, name string) ([]byte, bool) {
	ctx.Syscall(f.fs.model.SyscallNS)
	return nil, false
}

// Mmap implements vfs.File.
func (f *File) Mmap(ctx *sim.Ctx, length int64) (*mmu.Mapping, error) {
	ctx.Syscall(f.fs.model.SyscallNS)
	if length <= 0 {
		length = f.Size()
	}
	if length <= 0 {
		return nil, mmu.ErrOutOfRange
	}
	return f.fs.as.NewMapping(length, f), nil
}

// Fault implements mmu.FaultHandler for baseline file systems: hugepages
// when the layout happens to permit them; zero-on-fault charges for
// unwritten (fallocated) space; 4KiB demand allocation for sparse holes.
func (f *File) Fault(ctx *sim.Ctx, pageOff int64) (mmu.FaultResult, error) {
	fs := f.fs
	n := f.node
	chunkOff := pageOff / mmu.HugePage * mmu.HugePage

	n.mu.Lock()
	defer n.mu.Unlock()
	exts := n.mmuExtentsLocked()
	if phys, ok := mmu.HugeEligible(exts, chunkOff); ok {
		if f.faultZero(ctx, chunkOff/BlockSize, mmu.PagesPerHuge) {
			fs.dev.Zero(ctx, phys, mmu.HugePage)
		}
		return mmu.FaultResult{Huge: true, Phys: phys}, nil
	}
	if phys, ok := mmu.PhysAt(exts, pageOff); ok {
		if f.faultZero(ctx, pageOff/BlockSize, 1) {
			fs.dev.Zero(ctx, phys, BlockSize)
		}
		return mmu.FaultResult{Phys: phys}, nil
	}
	// SIGBUS rule: demand allocation only backs pages inside the current
	// size; past the page-rounded EOF the access is a typed fault error
	// (the file may have been truncated under the mapping).
	if pageOff >= (n.size+BlockSize-1)/BlockSize*BlockSize {
		return mmu.FaultResult{}, fmt.Errorf("%s: fault at %d beyond eof %d: %w", fs.Name(), pageOff, n.size, vfs.ErrMapFault)
	}
	// Sparse hole: demand-allocate one base page.
	exts2, err := fs.hooks.Alloc(ctx, 1, AllocHint{Node: n, FileBlk: pageOff / BlockSize, Goal: -1})
	if err != nil {
		return mmu.FaultResult{}, err
	}
	blk := exts2[0].Start
	fs.dev.Zero(ctx, blk*BlockSize, BlockSize)
	n.insertExtent(Ext{FileBlk: pageOff / BlockSize, Blk: blk, Len: 1})
	fs.hooks.MetaOp(ctx, n, 1, MetaData)
	return mmu.FaultResult{Phys: blk * BlockSize}, nil
}

// faultZero reports whether the pages at [blk, blk+count) are unwritten
// (needing fault-time zeroing) and marks exactly that range written,
// splitting extents as needed — so every fault into fallocated space pays
// its own zeroing (the ext4-DAX behaviour Table 2's discussion describes).
// Caller holds n.mu.
func (f *File) faultZero(ctx *sim.Ctx, blk, count int64) bool {
	if !f.fs.hooks.ZeroOnFault() {
		return false
	}
	n := f.node
	zero := false
	var out []Ext
	for _, e := range n.extents {
		eEnd := e.FileBlk + e.Len
		if !e.Unwritten || eEnd <= blk || e.FileBlk >= blk+count {
			out = append(out, e)
			continue
		}
		zero = true
		ovS, ovE := max64(e.FileBlk, blk), min64(eEnd, blk+count)
		if e.FileBlk < ovS {
			out = append(out, Ext{FileBlk: e.FileBlk, Blk: e.Blk, Len: ovS - e.FileBlk, Unwritten: true})
		}
		out = append(out, Ext{FileBlk: ovS, Blk: e.Blk + (ovS - e.FileBlk), Len: ovE - ovS})
		if ovE < eEnd {
			out = append(out, Ext{FileBlk: ovE, Blk: e.Blk + (ovE - e.FileBlk), Len: eEnd - ovE, Unwritten: true})
		}
	}
	if zero {
		n.extents = out
		n.gen++
	}
	return zero
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
