package fsbase

import (
	"sync"

	"repro/internal/alloc"
	"repro/internal/sim"
)

// AllocSearchNS is the virtual-time cost of one allocator invocation.
const AllocSearchNS = 300

// LockedPool wraps alloc.Pool with a mutex and the allocation strategies
// the baseline file systems combine: goal extension (contiguity first),
// best-effort alignment, and best-fit with multi-extent fallback.
type LockedPool struct {
	mu     sync.Mutex
	pool   *alloc.Pool
	start  int64
	total  int64
	cursor int64 // stream-allocation hint (next-fit / aligned window base)
}

// NewLockedPool builds a pool over the free range [start, start+blocks).
func NewLockedPool(start, blocks int64) *LockedPool {
	p := &LockedPool{pool: alloc.NewPool(), start: start, total: blocks, cursor: start}
	p.pool.Add(start, blocks)
	return p
}

// Total returns the pool's capacity in blocks.
func (p *LockedPool) Total() int64 { return p.total }

// Owns reports whether blk lies in this pool's address range (multi-pool
// file systems return frees to the owning pool).
func (p *LockedPool) Owns(blk int64) bool {
	return blk >= p.start && blk < p.start+p.total
}

// Free returns the current free block count.
func (p *LockedPool) Free() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pool.FreeBlocks()
}

// Extents snapshots the free extents.
func (p *LockedPool) Extents() []alloc.Extent {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pool.Extents()
}

// Release returns extents to the pool.
func (p *LockedPool) Release(ctx *sim.Ctx, ex []alloc.Extent) {
	p.mu.Lock()
	for _, e := range ex {
		if e.Len > 0 {
			p.pool.Add(e.Start, e.Len)
		}
	}
	p.mu.Unlock()
	if ctx != nil {
		ctx.Advance(AllocSearchNS / 2)
	}
}

// Strategy flags for Take.
type Strategy struct {
	// Goal attempts contiguity-first extension at this block (ignored when
	// negative). Checked before anything else — the locality preference
	// that makes ext4 "use only 3k of 12k available aligned extents".
	Goal int64
	// TryAligned attempts a hugepage-aligned placement after the goal but
	// before the general search (ext4 mballoc normalisation for large
	// requests; NOVA's exact-2MiB-multiple path).
	TryAligned bool
	// AlignWindow bounds the aligned search to this many blocks after the
	// stream cursor (0 = search the whole pool). Models mballoc searching
	// only a few block groups around the goal.
	AlignWindow int64
	// NextFit selects stream allocation for the general search: carve from
	// the first adequate hole after the rotating cursor, rather than
	// best-fit. This is how contiguity-first allocators behave under real
	// multi-file load and is the main fragmentation driver.
	NextFit bool
}

// Take allocates `need` blocks, possibly as multiple extents. Returns
// nil + false when space is exhausted.
func (p *LockedPool) Take(ctx *sim.Ctx, need int64, s Strategy) ([]alloc.Extent, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ctx.Advance(AllocSearchNS)
	if s.Goal >= 0 && p.pool.TakeAt(s.Goal, need) {
		p.cursor = s.Goal + need
		return []alloc.Extent{{Start: s.Goal, Len: need}}, true
	}
	if s.TryAligned {
		var e alloc.Extent
		var ok bool
		if s.AlignWindow > 0 {
			lo := p.cursor
			if lo < p.start || lo >= p.start+p.total {
				lo = p.start
			}
			e, ok = p.pool.TakeAlignedInRange(lo, lo+s.AlignWindow, need)
			if !ok && lo+s.AlignWindow > p.start+p.total {
				// Window wrapped past the end: also search the beginning.
				e, ok = p.pool.TakeAlignedInRange(p.start, p.start+s.AlignWindow, need)
			}
		} else {
			e, ok = p.pool.TakeAligned(need)
		}
		if ok {
			p.cursor = e.End()
			return []alloc.Extent{e}, true
		}
	}
	var out []alloc.Extent
	remaining := need
	for remaining > 0 {
		var e alloc.Extent
		var ok bool
		if s.NextFit {
			e, ok = p.pool.TakeNextFit(p.cursor, remaining)
		} else {
			e, ok = p.pool.TakeBestFit(remaining)
		}
		if ok {
			p.cursor = e.End()
			out = append(out, e)
			remaining -= e.Len
			continue
		}
		e, ok = p.pool.TakeLargest()
		if !ok {
			// Out of space: roll back.
			for _, o := range out {
				p.pool.Add(o.Start, o.Len)
			}
			return nil, false
		}
		p.cursor = e.End()
		out = append(out, e)
		remaining -= e.Len
	}
	return out, true
}
