package experiments

import (
	"fmt"

	"repro/internal/apps/part"
	"repro/internal/perf"
	"repro/internal/sim"
)

// Fig8Result holds the per-FS lookup latency distributions of Figure 8.
type Fig8Result struct {
	// Hist[fs] is the latency histogram of hot-set lookups.
	Hist map[string]*perf.Histogram
}

// Fig8 reproduces Figure 8: the latency distribution of P-ART lookups.
// The tree's pool is memory-mapped and pre-faulted; a hot set of keys is
// then looked up in random order. No page faults occur — the separation
// between file systems comes from TLB misses and the LLC pollution of
// page walks, so WineFS (hugepage pool) shows substantially lower median
// latency than the fragmented file systems (paper: 56% lower median, 2×
// fewer TLB misses, far fewer LLC misses).
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.Defaults()
	res := &Fig8Result{Hist: map[string]*perf.Histogram{}}
	for _, name := range MmapGroup() {
		if name == "PMFS" {
			continue
		}
		h, err := fig8One(cfg, name)
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", name, err)
		}
		res.Hist[name] = h
	}
	return res, nil
}

func fig8One(cfg Config, name string) (*perf.Histogram, error) {
	fs, _, ctx, err := cfg.newFS(name)
	if err != nil {
		return nil, err
	}
	if _, err := cfg.age(ctx, fs, 0.75); err != nil {
		return nil, err
	}
	pool := cfg.scale(64<<20, 256<<20)
	tree, err := part.New(ctx, fs, "/part.pool", pool)
	if err != nil {
		return nil, err
	}
	// Insert keys; page tables are set up during inserts (§5.4).
	inserts := cfg.scale(250000, 800000)
	rng := sim.NewRand(cfg.Seed + 33)
	keys := make([]uint64, inserts)
	ictx := sim.NewCtx(90, 0)
	ictx.AdvanceTo(ctx.Now())
	for i := range keys {
		keys[i] = rng.Uint64()
		if err := tree.Insert(ictx, keys[i], uint64(i)); err != nil {
			if err == part.ErrFull {
				keys = keys[:i]
				break
			}
			return nil, err
		}
	}
	// Hot set of 1/160 of the keys (paper: 125K of 60M — scaled ratio is
	// larger to keep the run meaningful), looked up in random order.
	hotN := len(keys) / 12
	if hotN < 64 {
		hotN = len(keys)
	}
	hot := keys[:hotN]
	lookups := int(cfg.scale(60000, 400000))
	lctx := sim.NewCtx(91, 0)
	lctx.AdvanceTo(ictx.Now())
	hist := &perf.Histogram{}
	for i := 0; i < lookups; i++ {
		k := hot[rng.Intn(len(hot))]
		t0 := lctx.Now()
		if _, ok, err := tree.Lookup(lctx, k); err != nil || !ok {
			return nil, fmt.Errorf("lookup miss: %v", err)
		}
		hist.Record(lctx.Now() - t0)
	}
	if lctx.Counters.TotalFaults() != 0 {
		return nil, fmt.Errorf("faults during pre-faulted lookups: %d", lctx.Counters.TotalFaults())
	}
	return hist, nil
}
