package experiments

import (
	"repro/internal/mmu"
	"repro/internal/pmem"
	"repro/internal/sim"
)

// Fig2Row is one bar of Figure 2's breakdown.
type Fig2Row struct {
	Config  string
	TotalUS float64
	CopyUS  float64
	FaultUS float64 // page-fault handling + page-table setup
}

// Fig2 reproduces Figure 2: the time to memory-map and write one 2MiB
// file, with and without hugepages. The paper's result: with hugepages
// most time is data copy; with base pages two thirds of the time goes to
// page-fault handling, and the whole operation is ~2× slower.
//
// The experiment is run at the MMU level (it is file-system independent):
// identical 2MiB regions, one physically aligned (hugepage-mappable), one
// deliberately misaligned by one base page.
func Fig2(cfg Config) ([]Fig2Row, error) {
	cfg = cfg.Defaults()
	dev := pmem.New(64 << 20)
	as := mmu.NewAddressSpace(dev)

	run := func(aligned bool) (Fig2Row, error) {
		phys := int64(8 << 20)
		if !aligned {
			phys += mmu.BasePage // one-page misalignment forbids hugepages
		}
		h := &staticHandler{extents: []mmu.Extent{{FileOff: 0, Phys: phys, Len: mmu.HugePage}}}
		m := as.NewMapping(mmu.HugePage, h)
		ctx := sim.NewCtx(1, 0)
		if err := m.Touch(ctx, 0, mmu.HugePage, true); err != nil {
			return Fig2Row{}, err
		}
		c := ctx.Counters
		return Fig2Row{
			TotalUS: float64(ctx.Now()) / 1000,
			CopyUS:  float64(c.CopyNS) / 1000,
			FaultUS: float64(c.FaultNS+c.PageWalkNS) / 1000,
		}, nil
	}
	huge, err := run(true)
	if err != nil {
		return nil, err
	}
	huge.Config = "hugepages"
	base, err := run(false)
	if err != nil {
		return nil, err
	}
	base.Config = "base pages"
	return []Fig2Row{huge, base}, nil
}

// staticHandler serves faults from a fixed extent list.
type staticHandler struct {
	extents []mmu.Extent
}

// Fault implements mmu.FaultHandler.
func (h *staticHandler) Fault(ctx *sim.Ctx, pageOff int64) (mmu.FaultResult, error) {
	chunkOff := pageOff / mmu.HugePage * mmu.HugePage
	if phys, ok := mmu.HugeEligible(h.extents, chunkOff); ok {
		return mmu.FaultResult{Huge: true, Phys: phys}, nil
	}
	phys, ok := mmu.PhysAt(h.extents, pageOff)
	if !ok {
		return mmu.FaultResult{}, mmu.ErrOutOfRange
	}
	return mmu.FaultResult{Phys: phys}, nil
}
