package experiments

import (
	"fmt"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Fig1 reproduces Figure 1: write bandwidth to memory-mapped files on
// un-aged (left) and aged (right) file systems, as capacity utilisation
// rises. The paper's result: ext4-DAX and NOVA lose ~50% of bandwidth by
// 60% utilisation when aged; WineFS holds its bandwidth to 90%.
//
// Method (§5.1, §5.3): a partition is brought to each utilisation level —
// by plain filling (un-aged) or by Geriatrix create/delete churn (aged) —
// then a large file is created, memory-mapped, and written sequentially
// with memcpy; bandwidth = bytes / virtual time.
func Fig1(cfg Config) (unaged, aged []perf.Series, err error) {
	cfg = cfg.Defaults()
	utils := []float64{0.0, 0.30, 0.60, 0.90}
	fsNames := []string{"ext4-DAX", "NOVA", "WineFS"}
	for _, name := range fsNames {
		u := perf.Series{Label: name}
		a := perf.Series{Label: name}
		for _, util := range utils {
			bw, err := fig1Point(cfg, name, util, false)
			if err != nil {
				return nil, nil, fmt.Errorf("fig1 %s unaged %.0f%%: %w", name, util*100, err)
			}
			u.Points = append(u.Points, perf.Point{X: util * 100, Y: bw})
			bw, err = fig1Point(cfg, name, util, true)
			if err != nil {
				return nil, nil, fmt.Errorf("fig1 %s aged %.0f%%: %w", name, util*100, err)
			}
			a.Points = append(a.Points, perf.Point{X: util * 100, Y: bw})
		}
		unaged = append(unaged, u)
		aged = append(aged, a)
	}
	return unaged, aged, nil
}

// fig1Point measures mmap write bandwidth (GB/s) at one utilisation level.
func fig1Point(cfg Config, name string, util float64, age bool) (float64, error) {
	fs, _, ctx, err := cfg.newFS(name)
	if err != nil {
		return 0, err
	}
	if util > 0 {
		if age {
			if _, err := cfg.age(ctx, fs, util); err != nil {
				return 0, err
			}
		} else {
			if err := fillClean(ctx, fs, util); err != nil {
				return 0, err
			}
		}
	}
	// The benchmark file: large enough to exercise many hugepage chunks
	// but small enough to fit the remaining space.
	st := fs.StatFS(ctx)
	size := cfg.scale(32<<20, 128<<20)
	if free := st.FreeBlocks * 4096 / 2; size > free {
		size = free / (2 << 20) * (2 << 20)
	}
	if size < 4<<20 {
		return 0, fmt.Errorf("no room for benchmark file at util %.2f", util)
	}
	f, err := fs.Create(ctx, "/bench.mmap")
	if err != nil {
		return 0, err
	}
	if err := f.Fallocate(ctx, 0, size); err != nil {
		return 0, err
	}
	m, err := f.Mmap(ctx, size)
	if err != nil {
		return 0, err
	}
	// Measurement begins after every setup booking on the device port: a
	// fresh context at virtual time 0 would spuriously contend with the
	// aging/fill phase's calendar entries.
	bench := sim.NewCtx(99, 0)
	bench.AdvanceTo(ctx.Now())
	start := bench.Now()
	if err := m.Touch(bench, 0, size, true); err != nil {
		return 0, err
	}
	if bench.Now() == start {
		return 0, fmt.Errorf("zero-time write")
	}
	return float64(size) / float64(bench.Now()-start), nil // bytes/ns == GB/s
}

// fillClean brings utilisation up with large sequential files and no
// deletes — the "new file system" condition of Figure 1(a).
func fillClean(ctx *sim.Ctx, fs vfs.FS, util float64) error {
	st := fs.StatFS(ctx)
	total := st.TotalBlocks * 4096
	const fileSize = 16 << 20
	i := 0
	for {
		st = fs.StatFS(ctx)
		if 1-float64(st.FreeBlocks)/float64(st.TotalBlocks) >= util {
			return nil
		}
		f, err := fs.Create(ctx, fmt.Sprintf("/fill%05d", i))
		if err != nil {
			return err
		}
		size := int64(fileSize)
		if size > total/50 {
			size = total / 50
		}
		// Whole hugepage multiples: the un-aged condition fills with large
		// files whose extents tile exactly.
		size = size / (2 << 20) * (2 << 20)
		if size == 0 {
			size = 2 << 20
		}
		if err := f.Fallocate(ctx, 0, size); err != nil {
			if err == vfs.ErrNoSpace {
				return nil
			}
			return err
		}
		i++
	}
}
