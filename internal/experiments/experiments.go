// Package experiments contains one runner per table and figure in the
// paper's evaluation (§5), plus the discussion-section experiments (§4).
// Each runner builds the file systems fresh on simulated devices, ages
// them where the paper does, drives the paper's workload, and returns the
// series/rows the paper plots. EXPERIMENTS.md records paper-vs-measured
// for every one of them.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fstest"
	"repro/internal/geriatrix"
	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Config sizes the experiment fleet. Quick mode shrinks everything so the
// whole suite runs in seconds (used by tests); full mode is the default
// for cmd/winebench and the benchmarks.
type Config struct {
	// DeviceSize per file-system instance.
	DeviceSize int64
	// CPUs per file system (per-CPU journals/pools).
	CPUs int
	// Quick selects reduced workload sizes.
	Quick bool
	// Seed fixes all random streams.
	Seed uint64
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.DeviceSize == 0 {
		if c.Quick {
			c.DeviceSize = 512 << 20
		} else {
			c.DeviceSize = 2 << 30
		}
	}
	if c.CPUs == 0 {
		c.CPUs = 8
	}
	return c
}

// scale returns q in quick mode, f otherwise.
func (c Config) scale(q, f int64) int64 {
	if c.Quick {
		return q
	}
	return f
}

// newFS builds a named file system on a fresh device.
func (c Config) newFS(name string) (vfs.FS, *pmem.Device, *sim.Ctx, error) {
	m, ok := fstest.ByName(name, c.CPUs)
	if !ok {
		return nil, nil, nil, fmt.Errorf("experiments: unknown fs %q", name)
	}
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(c.DeviceSize)
	fs, err := m.Make(ctx, dev)
	return fs, dev, ctx, err
}

// age runs the Geriatrix protocol to the target utilisation (§5.1: the
// Agrawal profile, churn measured in multiples of capacity).
func (c Config) age(ctx *sim.Ctx, fs vfs.FS, util float64) (*geriatrix.Ager, error) {
	churn := 2.0
	if c.Quick {
		churn = 0.5
	}
	ager := geriatrix.New(fs, geriatrix.Config{
		TargetUtil:  util,
		ChurnFactor: churn,
		Seed:        c.Seed + 101,
	})
	_, err := ager.Run(ctx)
	return ager, err
}

// RelaxedGroup is the metadata-consistency comparison set (§5.1).
func RelaxedGroup() []string {
	return []string{"ext4-DAX", "xfs-DAX", "PMFS", "NOVA-relaxed", "SplitFS", "WineFS-relaxed"}
}

// StrictGroup is the data+metadata-consistency comparison set.
func StrictGroup() []string {
	return []string{"NOVA", "Strata", "WineFS"}
}

// MmapGroup is the Figure 1/6(a)/7(a-c) set.
func MmapGroup() []string {
	return []string{"ext4-DAX", "xfs-DAX", "NOVA", "SplitFS", "PMFS", "WineFS"}
}

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 8
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, cell)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// SeriesTable renders a set of series (one column per series, rows by X).
func SeriesTable(title, xLabel string, series []perf.Series, fmtY func(float64) string) *Table {
	t := &Table{Title: title, Header: []string{xLabel}}
	for _, s := range series {
		t.Header = append(t.Header, s.Label)
	}
	// Collect the union of X values in order.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = fmtY(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// FmtGBs formats a bandwidth in GB/s.
func FmtGBs(v float64) string { return fmt.Sprintf("%.2f", v) }

// FmtOps formats an ops/s rate compactly.
func FmtOps(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// FmtCount formats large counts compactly.
func FmtCount(v float64) string { return FmtOps(v) }
