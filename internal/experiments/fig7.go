package experiments

import (
	"fmt"

	"repro/internal/apps/lmdb"
	"repro/internal/apps/pmemkv"
	"repro/internal/apps/rocksdb"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/workloads"
)

// Fig7Result holds application throughput and fault counts on aged file
// systems (Figure 7 panels a–c and the Table 2 fault counts, which come
// from the same runs).
type Fig7Result struct {
	// YCSB[fs][workload] = ops/s for the RocksDB-analogue runs.
	YCSB map[string]map[string]float64
	// LMDB[fs] = fillseqbatch ops/s; PmemKV[fs] = fillseq ops/s.
	LMDB   map[string]float64
	PmemKV map[string]float64
	// Faults[fs][app] = page-fault counts (Table 2).
	Faults map[string]map[string]int64
}

// Fig7 reproduces Figure 7 (and collects Table 2): RocksDB under YCSB,
// LMDB under fillseqbatch, and PmemKV under fillseq, each on file systems
// aged to 75% utilisation. Expected shapes: WineFS wins everywhere — up to
// ~2× over NOVA on LMDB and ~70% over ext4-DAX on PmemKV — because only
// WineFS still maps these stores with hugepages; the others take orders of
// magnitude more page faults (Table 2).
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.Defaults()
	res := &Fig7Result{
		YCSB:   map[string]map[string]float64{},
		LMDB:   map[string]float64{},
		PmemKV: map[string]float64{},
		Faults: map[string]map[string]int64{},
	}
	names := []string{"ext4-DAX", "xfs-DAX", "SplitFS",
		"NOVA", "WineFS", "NOVA-relaxed", "WineFS-relaxed"}
	for _, name := range names {
		faults := map[string]int64{}
		res.Faults[name] = faults

		// --- YCSB on the RocksDB analogue ---
		fs, err := fig7AgedFS(cfg, name)
		if err != nil {
			return nil, err
		}
		ycsb, yFaults, err := fig7YCSB(cfg, fs)
		if err != nil {
			return nil, fmt.Errorf("fig7 ycsb on %s: %w", name, err)
		}
		res.YCSB[name] = ycsb
		for k, v := range yFaults {
			faults[k] = v
		}

		// --- LMDB fillseqbatch ---
		fs, err = fig7AgedFS(cfg, name)
		if err != nil {
			return nil, err
		}
		ops, f, err := fig7LMDB(cfg, fs)
		if err != nil {
			return nil, fmt.Errorf("fig7 lmdb on %s: %w", name, err)
		}
		res.LMDB[name] = ops
		faults["lmdb-fillseqbatch"] = f

		// --- PmemKV fillseq ---
		fs, err = fig7AgedFS(cfg, name)
		if err != nil {
			return nil, err
		}
		ops, f, err = fig7PmemKV(cfg, fs)
		if err != nil {
			return nil, fmt.Errorf("fig7 pmemkv on %s: %w", name, err)
		}
		res.PmemKV[name] = ops
		faults["pmemkv-fillseq"] = f
	}
	return res, nil
}

func fig7AgedFS(cfg Config, name string) (vfs.FS, error) {
	fs, _, ctx, err := cfg.newFS(name)
	if err != nil {
		return nil, err
	}
	if _, err := cfg.age(ctx, fs, 0.75); err != nil {
		return nil, fmt.Errorf("aging %s: %w", name, err)
	}
	return fs, nil
}

func fig7YCSB(cfg Config, fs vfs.FS) (map[string]float64, map[string]int64, error) {
	ctx := sim.NewCtx(70, 0)
	db, err := rocksdb.Open(ctx, fs, rocksdb.Options{
		MemtableBytes: cfg.scale(1<<20, 4<<20),
	})
	if err != nil {
		return nil, nil, err
	}
	ycfg := workloads.YCSBConfig{
		Records:    cfg.scale(4000, 50000),
		Operations: cfg.scale(4000, 50000),
		ValueSize:  1024,
		Seed:       cfg.Seed,
	}
	out := map[string]float64{}
	faults := map[string]int64{}
	clock := ctx.Now()
	for _, kind := range workloads.AllYCSB() {
		runCtx := sim.NewCtx(71+int(kind), 0)
		runCtx.AdvanceTo(clock)
		r, err := workloads.YCSBRun(runCtx, db, kind, ycfg)
		if err != nil {
			return nil, nil, err
		}
		out[kind.String()] = r.Throughput()
		faults["ycsb-"+kind.String()] = runCtx.Counters.TotalFaults()
		clock = runCtx.Now()
	}
	return out, faults, nil
}

func fig7LMDB(cfg Config, fs vfs.FS) (float64, int64, error) {
	ctx := sim.NewCtx(80, 0)
	// Map size sized to the dataset (sparse: only faulted pages allocate).
	records := cfg.scale(4000, 50000)
	db, err := lmdb.Open(ctx, fs, lmdb.Options{
		MapSize: cfg.scale(64<<20, 512<<20),
		Path:    "/fig7.mdb",
	})
	if err != nil {
		return 0, 0, err
	}
	ops, ns, err := workloads.DBBench(ctx, db, workloads.FillSeqBatch, workloads.DBBenchConfig{
		Records: records, ValueSize: 1024, BatchSize: 100, Seed: cfg.Seed,
	})
	if err != nil {
		return 0, 0, err
	}
	return float64(ops) / (float64(ns) / 1e9), ctx.Counters.TotalFaults(), nil
}

func fig7PmemKV(cfg Config, fs vfs.FS) (float64, int64, error) {
	ctx := sim.NewCtx(81, 0)
	db, err := pmemkv.OpenSized(ctx, fs, "/fig7kv", cfg.scale(16<<20, 128<<20))
	if err != nil {
		return 0, 0, err
	}
	ops, ns, err := workloads.DBBench(ctx, db, workloads.FillSeq, workloads.DBBenchConfig{
		Records: cfg.scale(4000, 30000), ValueSize: 4096, Seed: cfg.Seed,
	})
	if err != nil {
		return 0, 0, err
	}
	return float64(ops) / (float64(ns) / 1e9), ctx.Counters.TotalFaults(), nil
}

// Fig7Table renders panel data relative to ext4-DAX like the paper.
func Fig7Table(res *Fig7Result) *Table {
	t := &Table{
		Title:  "Figure 7: application throughput on aged FSs (relative to ext4-DAX)",
		Header: []string{"fs", "ycsb-A", "ycsb-C", "ycsb-F", "lmdb", "pmemkv"},
	}
	base := map[string]float64{
		"ycsb-A": res.YCSB["ext4-DAX"]["A"],
		"ycsb-C": res.YCSB["ext4-DAX"]["C"],
		"ycsb-F": res.YCSB["ext4-DAX"]["F"],
		"lmdb":   res.LMDB["ext4-DAX"],
		"pmemkv": res.PmemKV["ext4-DAX"],
	}
	rel := func(v, b float64) string {
		if b == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f", v/b)
	}
	for _, name := range MmapGroup() {
		if name == "PMFS" {
			continue
		}
		t.Rows = append(t.Rows, []string{
			name,
			rel(res.YCSB[name]["A"], base["ycsb-A"]),
			rel(res.YCSB[name]["C"], base["ycsb-C"]),
			rel(res.YCSB[name]["F"], base["ycsb-F"]),
			rel(res.LMDB[name], base["lmdb"]),
			rel(res.PmemKV[name], base["pmemkv"]),
		})
	}
	return t
}

// Table2 renders the fault counts like the paper's Table 2 (absolute for
// WineFS, multiples of WineFS for the rest).
func Table2(res *Fig7Result) *Table {
	apps := []string{"ycsb-Load", "ycsb-A", "ycsb-C", "lmdb-fillseqbatch", "pmemkv-fillseq"}
	t := &Table{
		Title:  "Table 2: page faults on aged FSs (WineFS absolute; others ×WineFS)",
		Header: append([]string{"fs"}, apps...),
	}
	wf := res.Faults["WineFS"]
	for _, name := range MmapGroup() {
		if name == "PMFS" {
			continue
		}
		row := []string{name}
		for _, app := range apps {
			v := res.Faults[name][app]
			if name == "WineFS" {
				row = append(row, FmtCount(float64(v)))
			} else if wf[app] > 0 {
				row = append(row, fmt.Sprintf("%.1fx", float64(v)/float64(wf[app])))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
