package experiments

import (
	"fmt"

	"repro/internal/perf"
	"repro/internal/workloads"
)

// Fig10 reproduces Figure 10: throughput of the create/append-4KiB/fsync/
// unlink microbenchmark as the thread count grows, per file system.
// Expected shapes: WineFS and NOVA scale best (per-CPU journals / per-inode
// logs); PMFS scales reasonably (fine-grained single journal); ext4-DAX,
// xfs-DAX and SplitFS plateau early (stop-the-world JBD2 commit on fsync).
func Fig10(cfg Config) ([]perf.Series, error) {
	cfg = cfg.Defaults()
	threads := []int{1, 2, 4, 8, 16}
	names := []string{"ext4-DAX", "xfs-DAX", "PMFS", "NOVA", "SplitFS", "WineFS"}
	// The machine has (at least) as many logical CPUs as the largest thread
	// count; per-CPU designs get one journal/pool per logical CPU (§5.1).
	machineCfg := cfg
	if machineCfg.CPUs < 16 {
		machineCfg.CPUs = 16
	}
	var out []perf.Series
	for _, name := range names {
		s := perf.Series{Label: name}
		for _, th := range threads {
			fs, _, _, err := machineCfg.newFS(name)
			if err != nil {
				return nil, err
			}
			tput, err := workloads.Scalability(fs, workloads.ScalabilityConfig{
				Threads:      th,
				OpsPerThread: int(cfg.scale(50, 300)),
			})
			if err != nil {
				return nil, fmt.Errorf("fig10 %s %d threads: %w", name, th, err)
			}
			s.Points = append(s.Points, perf.Point{X: float64(th), Y: tput / 1000}) // kIOPS
		}
		out = append(out, s)
	}
	return out, nil
}
