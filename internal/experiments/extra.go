package experiments

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/geriatrix"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

// RecoveryResult is one point of the §5.2 recovery-time experiment.
type RecoveryResult struct {
	Files      int
	RecoveryNS int64
}

// Recovery reproduces §5.2's crash-recovery measurement: WineFS recovers
// by rolling back uncommitted journal transactions and scanning the
// per-CPU inode tables in parallel, so "the recovery time depends on the
// number of files, and not the total amount of data" (paper: 3.5M files /
// 675GB in 7.8s). We measure virtual recovery time across file counts and
// additionally verify the data-volume independence.
func Recovery(cfg Config) ([]RecoveryResult, error) {
	cfg = cfg.Defaults()
	counts := []int{100, 1000, 5000}
	if cfg.Quick {
		counts = []int{50, 200, 800}
	}
	var out []RecoveryResult
	for _, n := range counts {
		ns, err := recoveryPoint(cfg, n, 16<<10)
		if err != nil {
			return nil, err
		}
		out = append(out, RecoveryResult{Files: n, RecoveryNS: ns})
	}
	return out, nil
}

// RecoveryDataIndependence returns recovery times for the same file count
// at two very different data volumes; they should be close.
func RecoveryDataIndependence(cfg Config) (small, large int64, err error) {
	cfg = cfg.Defaults()
	n := int(cfg.scale(200, 1000))
	small, err = recoveryPoint(cfg, n, 8<<10)
	if err != nil {
		return
	}
	large, err = recoveryPoint(cfg, n, 512<<10)
	return
}

func recoveryPoint(cfg Config, files int, fileSize int64) (int64, error) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(cfg.DeviceSize)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cfg.CPUs})
	if err != nil {
		return 0, err
	}
	for i := 0; i < files; i++ {
		f, err := fs.Create(ctx, fmt.Sprintf("/r%06d", i))
		if err != nil {
			return 0, err
		}
		if err := f.Fallocate(ctx, 0, fileSize); err != nil {
			return 0, err
		}
	}
	// Crash: no unmount. Mount runs journal recovery + parallel scan.
	rctx := sim.NewCtx(2, 0)
	if _, err := winefs.Mount(rctx, dev, winefs.Options{CPUs: cfg.CPUs}); err != nil {
		return 0, err
	}
	return rctx.Now(), nil
}

// DefragResult reports the §4 defragmentation-interference experiment.
type DefragResult struct {
	// BaselineGBs is foreground mmap read bandwidth alone; WithDefragGBs is
	// the same workload while a defragmentation pass rewrites another file.
	BaselineGBs    float64
	WithDefragGBs  float64
	SlowdownPct    float64
	FilesRewritten int
}

// Defrag reproduces the §4 experiment: "we read a fragmented 5GB file and
// rewrote it with aligned extents. In parallel, we also ran a foreground
// workload that performed memory-mapped reads on another file. We observed
// a slowdown of 25-40%". Here the rewriter is WineFS's reactive-rewrite
// background thread, competing for device bandwidth with a foreground
// mmap reader in virtual time.
func Defrag(cfg Config) (*DefragResult, error) {
	cfg = cfg.Defaults()
	fs, _, ctx, err := cfg.newFS("WineFS")
	if err != nil {
		return nil, err
	}
	wfs := fs.(*winefs.FS)

	// Foreground file: aligned, mapped, pre-faulted.
	fgSize := cfg.scale(16<<20, 64<<20)
	fg, err := fs.Create(ctx, "/foreground")
	if err != nil {
		return nil, err
	}
	if err := fg.Fallocate(ctx, 0, fgSize); err != nil {
		return nil, err
	}
	fgMap, err := fg.Mmap(ctx, fgSize)
	if err != nil {
		return nil, err
	}
	if err := fgMap.Prefault(ctx); err != nil {
		return nil, err
	}

	// Victim file: fragmented (built from small writes), large.
	vicSize := cfg.scale(32<<20, 160<<20)
	vic, err := fs.Create(ctx, "/victim")
	if err != nil {
		return nil, err
	}
	chunk := make([]byte, 64<<10)
	for off := int64(0); off < vicSize; off += int64(len(chunk)) {
		if _, err := vic.WriteAt(ctx, chunk, off); err != nil {
			return nil, err
		}
	}
	if _, err := vic.Mmap(ctx, vicSize); err != nil { // queues the rewrite
		return nil, err
	}

	read := func(c *sim.Ctx) (float64, error) {
		start := c.Now()
		passes := int64(3)
		for p := int64(0); p < passes; p++ {
			if err := fgMap.Touch(c, 0, fgSize, false); err != nil {
				return 0, err
			}
		}
		return float64(fgSize*passes) / float64(c.Now()-start), nil
	}

	// Baseline: foreground alone, starting after every setup booking.
	bctx := sim.NewCtx(100, 0)
	bctx.AdvanceTo(ctx.Now())
	base, err := read(bctx)
	if err != nil {
		return nil, err
	}

	// Contended: the rewriter (background thread) and the foreground reads
	// share the same virtual-time window, starting together. The rewriter's
	// device-port occupations are booked first; the foreground reads then
	// weave into the remaining gaps — i.e. the background defragmentation
	// steals bandwidth from the foreground, as in §4.
	bg := sim.NewCtx(101, cfg.CPUs-1)
	bg.AdvanceTo(bctx.Now())
	rewritten := wfs.RunRewriter(bg)
	fgc := sim.NewCtx(102, 0)
	fgc.AdvanceTo(bctx.Now())
	cont, err := read(fgc)
	if err != nil {
		return nil, err
	}

	res := &DefragResult{
		BaselineGBs:    base,
		WithDefragGBs:  cont,
		FilesRewritten: rewritten,
	}
	if base > 0 {
		res.SlowdownPct = (1 - cont/base) * 100
	}
	return res, nil
}

// HPCResult reports the §4 Wang-HPC-profile comparison.
type HPCResult struct {
	// AlignedFreeFraction at 50% utilisation per FS.
	Ext4   float64
	WineFS float64
}

// HPC reproduces the §4 observation: under an HPC aging profile at only
// 50% utilisation, "only 28% of the free-space is aligned and unfragmented
// in ext4-DAX, while more than 90% ... in WineFS".
func HPC(cfg Config) (*HPCResult, error) {
	cfg = cfg.Defaults()
	frac := func(name string) (float64, error) {
		fs, _, ctx, err := cfg.newFS(name)
		if err != nil {
			return 0, err
		}
		churn := 8.0
		if cfg.Quick {
			churn = 6
		}
		ager := geriatrix.New(fs, geriatrix.Config{
			TargetUtil:  0.5,
			ChurnFactor: churn,
			Profile:     geriatrix.WangHPC(),
			Seed:        cfg.Seed + 55,
		})
		if _, err := ager.Run(ctx); err != nil {
			return 0, err
		}
		return alloc.AlignedFreeFraction(fs.FreeExtents()), nil
	}
	e, err := frac("ext4-DAX")
	if err != nil {
		return nil, err
	}
	w, err := frac("WineFS")
	if err != nil {
		return nil, err
	}
	return &HPCResult{Ext4: e, WineFS: w}, nil
}

// NUMAResult reports the §3.6 NUMA-awareness experiment.
type NUMAResult struct {
	// RemoteWriteFrac is the fraction of written bytes that landed on a
	// remote NUMA node, with the policy off and on.
	RemoteFracOff float64
	RemoteFracOn  float64
	// WriteNSOff/On are the per-thread virtual times for the write phase.
	WriteNSOff int64
	WriteNSOn  int64
}

// NUMA validates §3.6's "minimizing remote NUMA accesses" design: with the
// home-node policy on, every thread's allocations (and therefore writes)
// land on its home node, eliminating remote writes; with it off, threads
// allocate wherever their current CPU's pool happens to live.
func NUMA(cfg Config) (*NUMAResult, error) {
	cfg = cfg.Defaults()
	res := &NUMAResult{}
	run := func(aware bool) (float64, int64, error) {
		dev := pmem.NewWithConfig(pmem.Config{Size: cfg.DeviceSize, Nodes: 2, CPUs: cfg.CPUs})
		ctx := sim.NewCtx(1, 0)
		fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cfg.CPUs, NUMAAware: aware})
		if err != nil {
			return 0, 0, err
		}
		// One writer thread that the scheduler has placed on a node-1 CPU
		// while most free space is on node 0: without the policy its writes
		// go to its local pool's node; with it, the FS routes to the home
		// node chosen by free space. To create the imbalance, fill most of
		// node 1's pools first.
		filler := sim.NewCtx(2, cfg.CPUs-1)
		ff, err := fs.Create(filler, "/fill")
		if err != nil {
			return 0, 0, err
		}
		if err := ff.Fallocate(filler, 0, cfg.DeviceSize/4); err != nil {
			return 0, 0, err
		}

		w := sim.NewCtx(3, cfg.CPUs-1) // runs on a node-1 CPU
		w.AdvanceTo(filler.Now())
		f, err := fs.Create(w, "/data")
		if err != nil {
			return 0, 0, err
		}
		start := w.Now()
		total := cfg.scale(16<<20, 64<<20)
		chunk := make([]byte, 1<<20)
		var remoteBytes int64
		for off := int64(0); off < total; off += int64(len(chunk)) {
			if _, err := f.WriteAt(w, chunk, off); err != nil {
				return 0, 0, err
			}
		}
		for _, e := range f.Extents() {
			if dev.NodeOf(e.Phys) != dev.NodeOfCPU(w.CPU) {
				remoteBytes += e.Len
			}
		}
		return float64(remoteBytes) / float64(total), w.Now() - start, nil
	}
	var err error
	res.RemoteFracOff, res.WriteNSOff, err = run(false)
	if err != nil {
		return nil, err
	}
	res.RemoteFracOn, res.WriteNSOn, err = run(true)
	if err != nil {
		return nil, err
	}
	return res, nil
}
