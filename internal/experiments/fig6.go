package experiments

import (
	"fmt"

	"repro/internal/sim"
)

// Fig6Result holds throughput (GB/s) per file system per access pattern,
// for the three panels of Figure 6: memory-mapped access, POSIX with
// metadata consistency (weak), POSIX with data consistency (strong).
type Fig6Result struct {
	Patterns []string // seq-write, rand-write, seq-read, rand-read
	Mmap     map[string][]float64
	Weak     map[string][]float64
	Strong   map[string][]float64
}

// Fig6 reproduces Figure 6: sequential/random read/write throughput on
// aged file systems, via mmap and via system calls (fsync every 10 ops).
// Expected shapes: WineFS leads the mmap panel by >2× over NOVA (it keeps
// hugepages when aged); on the syscall panels WineFS matches or beats the
// best system (ext4/xfs pay for costly fsync on appends; NOVA pays log
// maintenance on overwrites).
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.Defaults()
	res := &Fig6Result{
		Patterns: []string{"seq-write", "rand-write", "seq-read", "rand-read"},
		Mmap:     map[string][]float64{},
		Weak:     map[string][]float64{},
		Strong:   map[string][]float64{},
	}
	for _, name := range MmapGroup() {
		vals, err := fig6Mmap(cfg, name)
		if err != nil {
			return nil, fmt.Errorf("fig6 mmap %s: %w", name, err)
		}
		res.Mmap[name] = vals
	}
	for _, name := range RelaxedGroup() {
		vals, err := fig6Posix(cfg, name)
		if err != nil {
			return nil, fmt.Errorf("fig6 weak %s: %w", name, err)
		}
		res.Weak[name] = vals
	}
	for _, name := range StrictGroup() {
		vals, err := fig6Posix(cfg, name)
		if err != nil {
			return nil, fmt.Errorf("fig6 strong %s: %w", name, err)
		}
		res.Strong[name] = vals
	}
	return res, nil
}

// fig6Mmap ages the FS to 75%, maps a large file and measures memcpy
// throughput for the four patterns (§5.3's 50GiB file, scaled).
func fig6Mmap(cfg Config, name string) ([]float64, error) {
	fs, _, ctx, err := cfg.newFS(name)
	if err != nil {
		return nil, err
	}
	if name != "PMFS" { // §5.1: PMFS cannot be aged in reasonable time
		if _, err := cfg.age(ctx, fs, 0.75); err != nil {
			return nil, err
		}
	}
	size := cfg.scale(32<<20, 128<<20)
	f, err := fs.Create(ctx, "/fig6.mmap")
	if err != nil {
		return nil, err
	}
	if err := f.Fallocate(ctx, 0, size); err != nil {
		return nil, err
	}
	m, err := f.Mmap(ctx, size)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 4)
	const chunk = 16 << 10
	rng := sim.NewRand(cfg.Seed + 21)

	// Phases run back to back in virtual time, each starting after the
	// previous phase's (and the setup's) device-port bookings.
	clock := ctx.Now()
	measure := func(idx int, access func(c *sim.Ctx) (int64, error)) error {
		c := sim.NewCtx(50+idx, 0)
		c.AdvanceTo(clock)
		start := c.Now()
		bytes, err := access(c)
		if err != nil {
			return err
		}
		if c.Now() > start {
			out[idx] = float64(bytes) / float64(c.Now()-start)
		}
		clock = c.Now()
		return nil
	}
	// seq write
	if err := measure(0, func(c *sim.Ctx) (int64, error) {
		return size, m.Touch(c, 0, size, true)
	}); err != nil {
		return nil, err
	}
	// rand write (16KiB chunks)
	if err := measure(1, func(c *sim.Ctx) (int64, error) {
		n := size / chunk
		for i := int64(0); i < n; i++ {
			off := rng.Int63n(size/chunk) * chunk
			if err := m.Touch(c, off, chunk, true); err != nil {
				return 0, err
			}
		}
		return size, nil
	}); err != nil {
		return nil, err
	}
	// seq read
	if err := measure(2, func(c *sim.Ctx) (int64, error) {
		return size, m.Touch(c, 0, size, false)
	}); err != nil {
		return nil, err
	}
	// rand read
	if err := measure(3, func(c *sim.Ctx) (int64, error) {
		n := size / chunk
		for i := int64(0); i < n; i++ {
			off := rng.Int63n(size/chunk) * chunk
			if err := m.Touch(c, off, chunk, false); err != nil {
				return 0, err
			}
		}
		return size, nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// fig6Posix measures 4KiB syscall appends/overwrites/reads with an fsync
// every 10 operations (§5.3's system-call benchmark).
func fig6Posix(cfg Config, name string) ([]float64, error) {
	fs, _, ctx, err := cfg.newFS(name)
	if err != nil {
		return nil, err
	}
	size := cfg.scale(16<<20, 64<<20)
	f, err := fs.Create(ctx, "/fig6.posix")
	if err != nil {
		return nil, err
	}
	out := make([]float64, 4)
	buf := make([]byte, 4096)
	rng := sim.NewRand(cfg.Seed + 22)
	blocks := size / 4096

	// seq write: appends filling the file.
	c := sim.NewCtx(60, 0)
	c.AdvanceTo(ctx.Now())
	phaseStart := c.Now()
	for i := int64(0); i < blocks; i++ {
		if _, err := f.Append(c, buf); err != nil {
			return nil, err
		}
		if i%10 == 9 {
			if err := f.Fsync(c); err != nil {
				return nil, err
			}
		}
	}
	out[0] = float64(size) / float64(c.Now()-phaseStart)

	// rand write: in-place 4KiB overwrites.
	prev := c.Now()
	c = sim.NewCtx(61, 0)
	c.AdvanceTo(prev)
	phaseStart = c.Now()
	for i := int64(0); i < blocks; i++ {
		off := rng.Int63n(blocks) * 4096
		if _, err := f.WriteAt(c, buf, off); err != nil {
			return nil, err
		}
		if i%10 == 9 {
			if err := f.Fsync(c); err != nil {
				return nil, err
			}
		}
	}
	out[1] = float64(size) / float64(c.Now()-phaseStart)

	// seq read.
	prev = c.Now()
	c = sim.NewCtx(62, 0)
	c.AdvanceTo(prev)
	phaseStart = c.Now()
	for i := int64(0); i < blocks; i++ {
		if _, err := f.ReadAt(c, buf, i*4096); err != nil {
			return nil, err
		}
	}
	out[2] = float64(size) / float64(c.Now()-phaseStart)

	// rand read.
	prev = c.Now()
	c = sim.NewCtx(63, 0)
	c.AdvanceTo(prev)
	phaseStart = c.Now()
	for i := int64(0); i < blocks; i++ {
		if _, err := f.ReadAt(c, buf, rng.Int63n(blocks)*4096); err != nil {
			return nil, err
		}
	}
	out[3] = float64(size) / float64(c.Now()-phaseStart)
	return out, nil
}
