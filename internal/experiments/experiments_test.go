package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Quick: true, CPUs: 4, Seed: 42}.Defaults()
}

func TestFig1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	unaged, aged, err := Fig1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := func(label string, agedSet bool) []float64 {
		set := unaged
		if agedSet {
			set = aged
		}
		for _, s := range set {
			if s.Label == label {
				out := make([]float64, len(s.Points))
				for i, p := range s.Points {
					out[i] = p.Y
				}
				return out
			}
		}
		t.Fatalf("series %s missing", label)
		return nil
	}
	// Un-aged: file systems keep most of their bandwidth even at 90%.
	// (NOVA's per-inode log blocks fragment even a cleanly filled pool, so
	// it is allowed a deeper dip — see EXPERIMENTS.md.)
	for _, name := range []string{"ext4-DAX", "WineFS"} {
		u := byLabel(name, false)
		if u[len(u)-1] < 0.7*u[0] {
			t.Errorf("unaged %s lost bandwidth: %v", name, u)
		}
	}
	if u := byLabel("NOVA", false); u[len(u)-1] < 0.5*u[0] {
		t.Errorf("unaged NOVA collapsed: %v", u)
	}
	// Aged: ext4/NOVA lose ≥25% by 90%; WineFS keeps ≥80%.
	for _, name := range []string{"ext4-DAX", "NOVA"} {
		a := byLabel(name, true)
		if a[len(a)-1] > 0.75*a[0] {
			t.Errorf("aged %s did not degrade: %v", name, a)
		}
	}
	w := byLabel("WineFS", true)
	if w[len(w)-1] < 0.8*w[0] {
		t.Errorf("aged WineFS degraded: %v", w)
	}
}

func TestFig2Breakdown(t *testing.T) {
	rows, err := Fig2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	huge, base := rows[0], rows[1]
	// Paper: base pages ~2× slower, two-thirds of time in fault handling.
	slow := base.TotalUS / huge.TotalUS
	if slow < 1.5 || slow > 4 {
		t.Errorf("base/huge total = %.2f, want ≈2", slow)
	}
	if base.FaultUS < base.CopyUS {
		t.Errorf("base: fault time (%f) should dominate copy (%f)", base.FaultUS, base.CopyUS)
	}
	if huge.CopyUS < huge.FaultUS {
		t.Errorf("huge: copy time (%f) should dominate fault (%f)", huge.CopyUS, huge.FaultUS)
	}
}

func TestFig3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	series, err := Fig3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]float64{}
	for _, s := range series {
		last[s.Label] = s.Points[len(s.Points)-1].Y
	}
	if last["WineFS"] < 60 {
		t.Errorf("WineFS aligned free at 90%% = %.1f%%, want high", last["WineFS"])
	}
	if last["NOVA"] > last["WineFS"]/2 {
		t.Errorf("NOVA should be far more fragmented: NOVA=%.1f WineFS=%.1f",
			last["NOVA"], last["WineFS"])
	}
	if last["ext4-DAX"] > last["WineFS"]/2 {
		t.Errorf("ext4 should be far more fragmented: ext4=%.1f WineFS=%.1f",
			last["ext4-DAX"], last["WineFS"])
	}
}

func TestFig4MedianRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := Fig4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.MedianRatio()
	// Paper: ~10× median gap. Accept a broad band around it.
	if ratio < 3 {
		t.Errorf("base/huge median latency ratio = %.1f, want >> 1 (paper ~10x)", ratio)
	}
	if res.Huge.Count() == 0 || res.Base.Count() == 0 {
		t.Fatal("empty histograms")
	}
}

func TestFig6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := Fig6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Aged mmap: WineFS beats NOVA and ext4-DAX on sequential writes
	// (paper: 2.6× over NOVA).
	wf := res.Mmap["WineFS"][0]
	if wf <= res.Mmap["NOVA"][0] || wf <= res.Mmap["ext4-DAX"][0] {
		t.Errorf("aged mmap seq-write: WineFS=%.2f NOVA=%.2f ext4=%.2f",
			wf, res.Mmap["NOVA"][0], res.Mmap["ext4-DAX"][0])
	}
	// POSIX weak appends: WineFS-relaxed should be at least competitive
	// with ext4-DAX (which pays for costly fsync).
	if res.Weak["WineFS-relaxed"][0] < res.Weak["ext4-DAX"][0] {
		t.Errorf("posix seq-write: WineFS-relaxed=%.3f < ext4=%.3f",
			res.Weak["WineFS-relaxed"][0], res.Weak["ext4-DAX"][0])
	}
	// POSIX strong overwrites: WineFS > NOVA (log maintenance).
	if res.Strong["WineFS"][1] < res.Strong["NOVA"][1] {
		t.Errorf("posix rand-write strong: WineFS=%.3f < NOVA=%.3f",
			res.Strong["WineFS"][1], res.Strong["NOVA"][1])
	}
}

func TestFig7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := Fig7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// LMDB: WineFS ahead of both NOVA and ext4-DAX (paper: 2× / 54%).
	if res.LMDB["WineFS"] <= res.LMDB["NOVA"] {
		t.Errorf("lmdb: WineFS=%.0f <= NOVA=%.0f", res.LMDB["WineFS"], res.LMDB["NOVA"])
	}
	if res.LMDB["WineFS"] <= res.LMDB["ext4-DAX"] {
		t.Errorf("lmdb: WineFS=%.0f <= ext4=%.0f", res.LMDB["WineFS"], res.LMDB["ext4-DAX"])
	}
	// PmemKV: WineFS ahead of ext4-DAX (paper: 70%).
	if res.PmemKV["WineFS"] <= res.PmemKV["ext4-DAX"] {
		t.Errorf("pmemkv: WineFS=%.0f <= ext4=%.0f", res.PmemKV["WineFS"], res.PmemKV["ext4-DAX"])
	}
	// Table 2: WineFS takes the fewest faults on LMDB by a wide margin.
	wf := res.Faults["WineFS"]["lmdb-fillseqbatch"]
	for _, other := range []string{"ext4-DAX", "xfs-DAX", "NOVA"} {
		if of := res.Faults[other]["lmdb-fillseqbatch"]; of < wf*10 {
			t.Errorf("faults lmdb: %s=%d vs WineFS=%d — want ≥10x", other, of, wf)
		}
	}
}

func TestFig8MedianOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	wf := res.Hist["WineFS"].Median()
	for _, other := range []string{"NOVA", "xfs-DAX", "ext4-DAX"} {
		if m := res.Hist[other].Median(); m <= wf {
			t.Errorf("P-ART median: %s=%dns <= WineFS=%dns", other, m, wf)
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := Fig9(quickCfg(), []string{"ext4-DAX", "NOVA", "WineFS", "WineFS-relaxed"})
	if err != nil {
		t.Fatal(err)
	}
	// varmail: WineFS-relaxed ≥ ext4-DAX within noise (§5.5: "WineFS and
	// NOVA-relaxed outperform ext4-DAX by up-to 5%").
	if res.Filebench["WineFS-relaxed"]["varmail"] < 0.9*res.Filebench["ext4-DAX"]["varmail"] {
		t.Errorf("varmail: WineFS-relaxed=%.0f < ext4=%.0f",
			res.Filebench["WineFS-relaxed"]["varmail"], res.Filebench["ext4-DAX"]["varmail"])
	}
	// pgbench: WineFS ≥ NOVA (paper: +15% on overwrites).
	if res.Pgbench["WineFS"] < res.Pgbench["NOVA"] {
		t.Errorf("pgbench: WineFS=%.0f < NOVA=%.0f", res.Pgbench["WineFS"], res.Pgbench["NOVA"])
	}
	// WiredTiger fill: WineFS ≥ NOVA (paper: +60% — unaligned appends).
	if res.WTFill["WineFS"] < res.WTFill["NOVA"] {
		t.Errorf("wt fill: WineFS=%.0f < NOVA=%.0f", res.WTFill["WineFS"], res.WTFill["NOVA"])
	}
	// WiredTiger read: roughly equal across FSs (within 30%).
	hi, lo := res.WTRead["WineFS"], res.WTRead["NOVA"]
	if lo > hi {
		hi, lo = lo, hi
	}
	if lo < 0.5*hi {
		t.Errorf("wt read should be FS-insensitive: WineFS=%.0f NOVA=%.0f",
			res.WTRead["WineFS"], res.WTRead["NOVA"])
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	series, err := Fig10(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) []float64 {
		for _, s := range series {
			if s.Label == label {
				out := make([]float64, len(s.Points))
				for i, p := range s.Points {
					out[i] = p.Y
				}
				return out
			}
		}
		t.Fatalf("missing %s", label)
		return nil
	}
	wf := get("WineFS")
	ext4 := get("ext4-DAX")
	nova := get("NOVA")
	// WineFS scales: 16 threads ≥ 4× single thread.
	if wf[len(wf)-1] < 4*wf[0] {
		t.Errorf("WineFS scalability: %v", wf)
	}
	// ext4 scales worse than WineFS at 16 threads (relative speedup).
	if ext4[len(ext4)-1]/ext4[0] > wf[len(wf)-1]/wf[0] {
		t.Errorf("ext4 speedup %v should trail WineFS %v", ext4, wf)
	}
	// NOVA and WineFS have the best absolute throughput at 16 threads.
	if ext4[len(ext4)-1] > wf[len(wf)-1] || ext4[len(ext4)-1] > nova[len(nova)-1] {
		t.Errorf("ext4 should not lead at 16 threads: ext4=%v wf=%v nova=%v", ext4, wf, nova)
	}
}

func TestRecoveryScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	pts, err := Recovery(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 3 || pts[2].RecoveryNS <= pts[0].RecoveryNS {
		t.Errorf("recovery time should grow with files: %+v", pts)
	}
	small, large, err := RecoveryDataIndependence(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// §5.2: depends on file count, not data volume — within 2×.
	if large > 2*small {
		t.Errorf("recovery depends on data volume: small=%d large=%d", small, large)
	}
}

func TestDefragInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := Defrag(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesRewritten != 1 {
		t.Fatalf("rewriter processed %d files", res.FilesRewritten)
	}
	// Paper: 25–40% slowdown. Accept 10–70% in the scaled setting.
	if res.SlowdownPct < 10 || res.SlowdownPct > 70 {
		t.Errorf("defrag slowdown = %.1f%%, want 25-40%% regime (base=%.2f with=%.2f)",
			res.SlowdownPct, res.BaselineGBs, res.WithDefragGBs)
	}
}

func TestHPCProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := HPC(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ext4 28% vs WineFS >90% at 50% utilisation. Our scaled churn
	// separates them less dramatically; assert the ordering and a clear gap.
	if res.WineFS < 0.85 {
		t.Errorf("WineFS aligned fraction = %.2f, want >0.85", res.WineFS)
	}
	if res.Ext4 > 0.8 || res.WineFS-res.Ext4 < 0.1 {
		t.Errorf("ext4 should fragment clearly worse: ext4=%.2f winefs=%.2f", res.Ext4, res.WineFS)
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{
		Title:  "test",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var sb strings.Builder
	tab.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "test") || !strings.Contains(out, "333") {
		t.Fatalf("table output: %s", out)
	}
}

func TestNUMAHomeNodePolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	res, err := NUMA(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// With the policy, the thread is migrated to its home node and its
	// writes mostly stay local (pool boundaries don't align perfectly with
	// node boundaries, so a small remote residue remains).
	if res.RemoteFracOn > 0.25 {
		t.Errorf("NUMA-aware remote-write fraction = %.2f, want small", res.RemoteFracOn)
	}
	if res.RemoteFracOff < 0.5 {
		t.Errorf("policy-off remote fraction = %.2f, want mostly remote (imbalanced fill)", res.RemoteFracOff)
	}
	if res.RemoteFracOn > res.RemoteFracOff/2 {
		t.Errorf("policy did not reduce remote writes: on=%.2f off=%.2f",
			res.RemoteFracOn, res.RemoteFracOff)
	}
	if res.WriteNSOn > res.WriteNSOff {
		t.Errorf("NUMA awareness slowed writes: on=%d off=%d", res.WriteNSOn, res.WriteNSOff)
	}
}
