package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// Fig9Result holds the clean-FS POSIX application results of Figure 9:
// per file system, throughput for the four Filebench personalities,
// pgbench TPC-B read-write, and WiredTiger fill/read.
type Fig9Result struct {
	// Filebench[fs][personality] = ops/s.
	Filebench map[string]map[string]float64
	// Pgbench[fs] = TPS; WTFill/WTRead[fs] = ops/s.
	Pgbench map[string]float64
	WTFill  map[string]float64
	WTRead  map[string]float64
}

// Fig9 reproduces Figure 9 on newly created file systems (§5.5: "aging
// does not impact system call performance on PM. We therefore use newly
// created file systems"). Expected shapes: WineFS ≥ the best baseline
// everywhere; ext4/xfs suffer on varmail (costly fsync); NOVA loses ~15%
// on pgbench overwrites and ~60% on WiredTiger's unaligned appends.
func Fig9(cfg Config, names []string) (*Fig9Result, error) {
	cfg = cfg.Defaults()
	if names == nil {
		names = append(append([]string{}, RelaxedGroup()...), StrictGroup()...)
	}
	res := &Fig9Result{
		Filebench: map[string]map[string]float64{},
		Pgbench:   map[string]float64{},
		WTFill:    map[string]float64{},
		WTRead:    map[string]float64{},
	}
	for _, name := range names {
		fb := map[string]float64{}
		res.Filebench[name] = fb
		for _, p := range workloads.AllPersonalities() {
			fs, _, _, err := cfg.newFS(name)
			if err != nil {
				return nil, err
			}
			r, err := workloads.Filebench(fs, p, workloads.FilebenchConfig{
				Threads:      cfg.CPUs, // paper: thread count ≤ core count
				Files:        int(cfg.scale(300, 2000)),
				OpsPerThread: int(cfg.scale(30, 200)),
				Seed:         cfg.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("fig9 %s %s: %w", name, p, err)
			}
			fb[p.String()] = r.Throughput()
		}

		fs, _, _, err := cfg.newFS(name)
		if err != nil {
			return nil, err
		}
		pg, err := workloads.Pgbench(fs, workloads.PgbenchConfig{
			Threads:       cfg.CPUs,
			DatabaseBytes: cfg.scale(32<<20, 256<<20),
			TxPerThread:   int(cfg.scale(40, 300)),
			Seed:          cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("fig9 %s pgbench: %w", name, err)
		}
		res.Pgbench[name] = pg.TPS()

		fs, _, _, err = cfg.newFS(name)
		if err != nil {
			return nil, err
		}
		wctx := sim.NewCtx(95, 0)
		wcfg := workloads.WiredTigerConfig{Records: cfg.scale(3000, 20000), Seed: cfg.Seed}
		ops, ns, offsets, err := workloads.WiredTigerFill(wctx, fs, wcfg)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s wt fill: %w", name, err)
		}
		res.WTFill[name] = float64(ops) / (float64(ns) / 1e9)
		rops, rns, err := workloads.WiredTigerRead(wctx, fs, wcfg, offsets)
		if err != nil {
			return nil, fmt.Errorf("fig9 %s wt read: %w", name, err)
		}
		res.WTRead[name] = float64(rops) / (float64(rns) / 1e9)
	}
	return res, nil
}

// Fig9Table renders one group's results.
func Fig9Table(res *Fig9Result, names []string, title string) *Table {
	t := &Table{
		Title: title,
		Header: []string{"fs", "varmail", "fileserver", "webserver", "webproxy",
			"pgbench-TPS", "wt-fill", "wt-read"},
	}
	for _, name := range names {
		fb := res.Filebench[name]
		t.Rows = append(t.Rows, []string{
			name,
			FmtOps(fb["varmail"]), FmtOps(fb["fileserver"]),
			FmtOps(fb["webserver"]), FmtOps(fb["webproxy"]),
			FmtOps(res.Pgbench[name]),
			FmtOps(res.WTFill[name]), FmtOps(res.WTRead[name]),
		})
	}
	return t
}
