package experiments

import (
	"repro/internal/mmu"
	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
)

// Fig4Result carries the two latency distributions of Figure 4.
type Fig4Result struct {
	Huge perf.Histogram
	Base perf.Histogram
}

// MedianRatio returns base-page median latency over hugepage median.
func (r *Fig4Result) MedianRatio() float64 {
	h := r.Huge.Median()
	if h == 0 {
		return 0
	}
	return float64(r.Base.Median()) / float64(h)
}

// Fig4 reproduces Figure 4: the latency CDF of random reads from a large,
// memory-mapped, *pre-faulted* PM array, with 2MiB vs 4KiB pages. No page
// faults occur; the difference is pure TLB reach and the LLC pollution of
// page-table walks — the paper reports ~10× higher median latency with
// base pages because the read element "has been knocked out of the
// processor cache by page table entries".
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.Defaults()
	// Scale the array and LLC together: the paper's machine pairs a ~38MiB
	// LLC with a multi-GiB array; we pair the model's 8MiB LLC with a
	// 256MiB array and a hot set sized at half the LLC.
	model := pmem.DefaultModel()
	arr := cfg.scale(64<<20, 256<<20)
	dev := pmem.NewWithConfig(pmem.Config{Size: arr * 2, Model: &model})
	as := mmu.NewAddressSpace(dev)

	reads := int(cfg.scale(40000, 400000))
	hotLines := int(model.LLCBytes / pmem.CacheLine / 2)

	run := func(aligned bool, hist *perf.Histogram) error {
		phys := arr / 2
		if !aligned {
			phys += mmu.BasePage
		}
		h := &staticHandler{extents: []mmu.Extent{{FileOff: 0, Phys: phys, Len: arr}}}
		m := as.NewMapping(arr, h)
		ctx := sim.NewCtx(1, 0)
		if err := m.Prefault(ctx); err != nil {
			return err
		}
		as.FlushTLB()
		as.FlushCache()
		rng := sim.NewRand(cfg.Seed + 9)
		// Hot set of addresses (the paper reads a hot array region whose
		// data would fit in cache were it not for PTE pollution).
		hot := make([]int64, hotLines)
		for i := range hot {
			hot[i] = rng.Int63n(arr/64) * 64
		}
		buf := make([]byte, 8)
		// Warm pass.
		for _, off := range hot {
			if err := m.Read(ctx, buf, off); err != nil {
				return err
			}
		}
		for i := 0; i < reads; i++ {
			off := hot[rng.Intn(len(hot))]
			t0 := ctx.Now()
			if err := m.Read(ctx, buf, off); err != nil {
				return err
			}
			hist.Record(ctx.Now() - t0)
		}
		return nil
	}
	res := &Fig4Result{}
	if err := run(true, &res.Huge); err != nil {
		return nil, err
	}
	if err := run(false, &res.Base); err != nil {
		return nil, err
	}
	return res, nil
}
