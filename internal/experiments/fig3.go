package experiments

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/geriatrix"
	"repro/internal/perf"
)

// Fig3 reproduces Figure 3: the percentage of free space that remains in
// 2MiB-aligned, contiguous regions as utilisation rises under Geriatrix
// aging. The paper's result: ext4-DAX and NOVA fragment steadily — NOVA
// reaching "close to zero 2MB aligned and contiguous regions" by 70%
// utilisation — while (shown here additionally) WineFS retains almost all
// of its aligned free space.
func Fig3(cfg Config) ([]perf.Series, error) {
	cfg = cfg.Defaults()
	utils := []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90}
	fsNames := []string{"ext4-DAX", "NOVA", "WineFS"}
	var out []perf.Series
	for _, name := range fsNames {
		fs, _, ctx, err := cfg.newFS(name)
		if err != nil {
			return nil, err
		}
		// One continuous aging run per FS, sampling at each utilisation.
		churn := 1.0
		if cfg.Quick {
			churn = 0.25
		}
		ager := geriatrix.New(fs, geriatrix.Config{
			TargetUtil:  utils[0],
			ChurnFactor: churn,
			Seed:        cfg.Seed + 3,
		})
		if _, err := ager.Run(ctx); err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", name, err)
		}
		s := perf.Series{Label: name}
		for _, u := range utils {
			if err := ager.RaiseUtil(ctx, u); err != nil {
				return nil, fmt.Errorf("fig3 %s raise %.2f: %w", name, u, err)
			}
			frac := alloc.AlignedFreeFraction(fs.FreeExtents())
			s.Points = append(s.Points, perf.Point{X: u * 100, Y: frac * 100})
		}
		out = append(out, s)
	}
	return out, nil
}
