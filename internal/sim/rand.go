package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random generator
// (xorshift128+) used everywhere the reproduction needs randomness:
// workload key choice, aging file sizes, crash-state sampling. Seeding is
// explicit so every experiment is reproducible run-to-run.
type Rand struct {
	s0, s1 uint64
}

// NewRand returns a generator seeded from seed via splitmix64 so that
// small, similar seeds still produce well-separated streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.s0
	y := r.s1
	r.s0 = y
	x ^= x << 23
	r.s1 = x ^ y ^ (x >> 17) ^ (y >> 26)
	return r.s1 + y
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform random int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomises the order of n elements using the provided swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Zipf draws from a Zipfian distribution over [0, n) with skew theta,
// using the rejection-inversion-free "quick zipf" approximation common in
// YCSB-style generators.
type Zipf struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
	r     *Rand
}

// NewZipf builds a Zipfian generator over [0, n). theta must be in (0, 1);
// YCSB's default is 0.99.
func NewZipf(r *Rand, n int64, theta float64) *Zipf {
	z := &Zipf{n: n, theta: theta, r: r}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() int64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	if v < 0 {
		v = 0
	}
	return v
}

func zetaStatic(n int64, theta float64) float64 {
	// Sum the head exactly and approximate the tail with the integral of
	// x^-theta, keeping construction cheap for huge keyspaces.
	const exact = 10000
	sum := 0.0
	m := n
	if m > exact {
		m = exact
	}
	for i := int64(1); i <= m; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	if n > exact {
		sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(exact), 1-theta)) / (1 - theta)
	}
	return sum
}
