package sim

import "testing"

// Two readers overlapping in virtual time share the resource: neither
// waits, even though their occupations overlap.
func TestRWResourceReadersShare(t *testing.T) {
	var r RWResource
	a := NewCtx(1, 0)
	b := NewCtx(2, 1)

	sa := r.RLock(a)
	a.Advance(1000)
	r.RUnlock(a, sa)

	// b starts inside a's occupation but is a reader too.
	b.Advance(500)
	sb := r.RLock(b)
	if b.Now() != 500 {
		t.Fatalf("reader waited: now=%d, want 500", b.Now())
	}
	b.Advance(1000)
	r.RUnlock(b, sb)
	if a.Counters.LockWaitNS != 0 || b.Counters.LockWaitNS != 0 {
		t.Fatalf("reader lock wait: a=%d b=%d, want 0", a.Counters.LockWaitNS, b.Counters.LockWaitNS)
	}
}

// A writer arriving inside a booked reader occupation queues behind it and
// the wait is attributed to LockWaitNS.
func TestRWResourceWriterWaitsForReaders(t *testing.T) {
	var r RWResource
	a := NewCtx(1, 0)
	w := NewCtx(2, 1)

	sa := r.RLock(a)
	a.Advance(1000)
	r.RUnlock(a, sa) // reader occupied [0, 1000)

	w.Advance(400)
	r.Lock(w)
	if w.Now() != 1000 {
		t.Fatalf("writer acquired at %d, want 1000", w.Now())
	}
	if w.Counters.LockWaitNS != 600 {
		t.Fatalf("writer LockWaitNS=%d, want 600", w.Counters.LockWaitNS)
	}
	w.Advance(100)
	r.Unlock(w)
}

// A reader arriving inside a booked writer occupation queues behind it; a
// reader arriving before it does not (calendar semantics: at that instant
// the resource really was free).
func TestRWResourceReaderWaitsForWriter(t *testing.T) {
	var r RWResource
	w := NewCtx(1, 0)
	w.Advance(1000)
	r.Lock(w)
	w.Advance(500)
	r.Unlock(w) // writer occupied [1000, 1500)

	in := NewCtx(2, 1)
	in.Advance(1200)
	s := r.RLock(in)
	if in.Now() != 1500 || in.Counters.LockWaitNS != 300 {
		t.Fatalf("reader inside writer span: now=%d wait=%d, want 1500/300", in.Now(), in.Counters.LockWaitNS)
	}
	r.RUnlock(in, s)

	before := NewCtx(3, 2)
	before.Advance(100)
	s = r.RLock(before)
	if before.Now() != 100 {
		t.Fatalf("reader before writer span waited: now=%d, want 100", before.Now())
	}
	r.RUnlock(before, s)
}

// Writers exclude each other exactly like Resource.
func TestRWResourceWritersSerialize(t *testing.T) {
	var r RWResource
	a := NewCtx(1, 0)
	b := NewCtx(2, 1)
	r.Lock(a)
	a.Advance(700)
	r.Unlock(a)

	r.Lock(b) // arrives at 0, inside a's [0, 700)
	if b.Now() != 700 {
		t.Fatalf("second writer acquired at %d, want 700", b.Now())
	}
	r.Unlock(b)
}

// A writer's wait is bounded by the bookings present when it acquires: it
// skips only intervals containing its instant, so a long history of
// disjoint reader occupations costs nothing.
func TestRWResourceWriterStarvationBound(t *testing.T) {
	var r RWResource
	var maxEnd int64
	for i := 0; i < 20; i++ {
		rd := NewCtx(10+i, 0)
		rd.Advance(int64(i) * 50) // overlapping chain: [0,100) [50,150) ...
		s := r.RLock(rd)
		rd.Advance(100)
		r.RUnlock(rd, s)
		if rd.Now() > maxEnd {
			maxEnd = rd.Now()
		}
	}
	w := NewCtx(1, 0)
	r.Lock(w)
	defer r.Unlock(w)
	if w.Now() > maxEnd {
		t.Fatalf("writer admitted at %d, after every reader end %d", w.Now(), maxEnd)
	}
	if w.Counters.LockWaitNS != w.Now() {
		t.Fatalf("wait accounting: LockWaitNS=%d, clock=%d", w.Counters.LockWaitNS, w.Now())
	}
}

func TestInsertUnion(t *testing.T) {
	var s []span
	s = insertUnion(s, span{10, 20})
	s = insertUnion(s, span{30, 40})
	s = insertUnion(s, span{15, 35}) // bridges both
	if len(s) != 1 || s[0] != (span{10, 40}) {
		t.Fatalf("union = %v, want [{10 40}]", s)
	}
	s = insertUnion(s, span{40, 50}) // adjacent merges
	if len(s) != 1 || s[0] != (span{10, 50}) {
		t.Fatalf("adjacent union = %v, want [{10 50}]", s)
	}
	s = insertUnion(s, span{60, 70})
	if len(s) != 2 {
		t.Fatalf("disjoint union = %v, want 2 spans", s)
	}
	if got := skipBusy(s, 65); got != 70 {
		t.Fatalf("skipBusy(65) = %d, want 70", got)
	}
	if got := skipBusy(s, 55); got != 55 {
		t.Fatalf("skipBusy(55) = %d, want 55", got)
	}
}
