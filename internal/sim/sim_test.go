package sim

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestCtxClock(t *testing.T) {
	ctx := NewCtx(1, 0)
	if ctx.Now() != 0 {
		t.Fatalf("new ctx clock = %d, want 0", ctx.Now())
	}
	ctx.Advance(100)
	ctx.Advance(-50) // ignored
	if got := ctx.Now(); got != 100 {
		t.Fatalf("clock = %d, want 100", got)
	}
	ctx.AdvanceTo(50) // in the past, ignored
	if got := ctx.Now(); got != 100 {
		t.Fatalf("clock after AdvanceTo(past) = %d, want 100", got)
	}
	ctx.AdvanceTo(500)
	if got := ctx.Now(); got != 500 {
		t.Fatalf("clock after AdvanceTo = %d, want 500", got)
	}
	ctx.Reset()
	if ctx.Now() != 0 || ctx.Counters.PageFaults != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestResourceSerialises(t *testing.T) {
	var r Resource
	a := NewCtx(1, 0)
	b := NewCtx(2, 1)
	start := r.Use(a, 100)
	if start != 0 || a.Now() != 100 {
		t.Fatalf("first use: start=%d now=%d", start, a.Now())
	}
	// b arrives at t=0 but the resource is busy until 100.
	start = r.Use(b, 50)
	if start != 100 {
		t.Fatalf("second use start = %d, want 100", start)
	}
	if b.Now() != 150 {
		t.Fatalf("b clock = %d, want 150", b.Now())
	}
	if b.Counters.LockWaitNS != 100 {
		t.Fatalf("b lock wait = %d, want 100", b.Counters.LockWaitNS)
	}
}

func TestResourceAcquireRelease(t *testing.T) {
	var r Resource
	a := NewCtx(1, 0)
	r.Acquire(a)
	a.Advance(70)
	r.Release(a)
	b := NewCtx(2, 0)
	r.Acquire(b)
	if b.Now() != 70 {
		t.Fatalf("b jumped to %d, want 70", b.Now())
	}
	r.Release(b)
}

func TestResourceConcurrentUse(t *testing.T) {
	// Many goroutines each occupy the resource; total busy time must equal
	// the sum of holds regardless of interleaving.
	var r Resource
	const n = 32
	const hold = 10
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ctx := NewCtx(id, id)
			r.Use(ctx, hold)
		}(i)
	}
	wg.Wait()
	if got := r.BusyUntil(); got != n*hold {
		t.Fatalf("busyUntil = %d, want %d", got, n*hold)
	}
}

func TestBandwidth(t *testing.T) {
	bw := NewBandwidth(1e9) // 1 GB/s = 1 ns/byte
	ctx := NewCtx(1, 0)
	bw.Transfer(ctx, 1000)
	if ctx.Now() != 1000 {
		t.Fatalf("transfer time = %d, want 1000", ctx.Now())
	}
	if c := bw.Cost(500); c != 500 {
		t.Fatalf("cost = %d, want 500", c)
	}
	// Infinite bandwidth.
	inf := NewBandwidth(0)
	inf.Transfer(ctx, 1<<30)
	if ctx.Now() != 1000 {
		t.Fatal("infinite bandwidth advanced the clock")
	}
}

func TestBandwidthContention(t *testing.T) {
	bw := NewBandwidth(1e9)
	a := NewCtx(1, 0)
	b := NewCtx(2, 1)
	bw.Transfer(a, 1000)
	bw.Transfer(b, 1000)
	if b.Now() != 2000 {
		t.Fatalf("second transfer finished at %d, want 2000 (serialised)", b.Now())
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d times", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if v := r.Int63n(1 << 40); v < 0 || v >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(9)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation at %d", v)
		}
		seen[v] = true
	}
}

func TestRandUniformity(t *testing.T) {
	// Property: Intn over a fixed range is roughly uniform.
	check := func(seed uint64) bool {
		r := NewRand(seed)
		const buckets = 8
		const draws = 8000
		var counts [buckets]int
		for i := 0; i < draws; i++ {
			counts[r.Intn(buckets)]++
		}
		for _, c := range counts {
			if c < draws/buckets/2 || c > draws/buckets*2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(1)
	z := NewZipf(r, 1000, 0.99)
	counts := make(map[int64]int)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate and the top-10 should hold a large share.
	if counts[0] < counts[10] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[10]=%d", counts[0], counts[10])
	}
	top := 0
	for k := int64(0); k < 10; k++ {
		top += counts[k]
	}
	if float64(top)/draws < 0.3 {
		t.Fatalf("top-10 share %f too small for theta=0.99", float64(top)/draws)
	}
}

// TestSyscallCharges: the preamble helper must count the call, charge
// SyscallNS and advance the clock by exactly the model cost.
func TestSyscallCharges(t *testing.T) {
	ctx := NewCtx(1, 0)
	ctx.Syscall(250)
	ctx.Syscall(250)
	if ctx.Counters.Syscalls != 2 || ctx.Counters.SyscallNS != 500 || ctx.Now() != 500 {
		t.Fatalf("syscalls=%d syscallNS=%d now=%d",
			ctx.Counters.Syscalls, ctx.Counters.SyscallNS, ctx.Now())
	}
}

// TestSpansObserveButNeverAdvance: StartSpan/EndSpan must attribute counter
// deltas to the span without moving the virtual clock, and a nil Trace must
// cost nothing and return nil.
func TestSpansObserveButNeverAdvance(t *testing.T) {
	ctx := NewCtx(1, 0)
	if sp := ctx.StartSpan("off"); sp != nil {
		t.Fatal("span opened with tracing disabled")
	}
	ctx.EndSpan(nil) // must not panic

	sink := trace.NewCollect()
	ctx.Trace = trace.New(sink).NewContext(ctx.Thread)
	ctx.Syscall(100)
	before := ctx.Now()
	sp := ctx.StartSpan("op")
	ctx.Syscall(40)
	ctx.Counters.JournalNS += 7
	ctx.EndSpan(sp)
	if got := ctx.Now() - before; got != 40 {
		t.Fatalf("span advanced the clock: delta=%d, want 40 (the syscall only)", got)
	}
	spans := sink.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	got := spans[0]
	if got.DurNS != 40 || got.Cost.SyscallNS != 40 || got.Cost.JournalNS != 7 {
		t.Fatalf("span %+v cost %+v", got, got.Cost)
	}
	// The pre-span syscall must not leak into the breakdown.
	if got.Cost.SyscallNS >= 100 {
		t.Fatal("breakdown includes cost accrued before StartSpan")
	}
}

// TestUseQuantaEquivalence pins the batched booking API to its contract:
// UseQuanta must be bit-identical — same final clock, same LockWaitNS,
// same calendar state observable through later contention — to the
// per-quantum Use loop it replaced, including the ragged final quantum
// and holds under one quantum.
func TestUseQuantaEquivalence(t *testing.T) {
	for _, tc := range []struct{ hold, quantum int64 }{
		{7000, 700},  // even split
		{7001, 700},  // ragged tail quantum
		{699, 700},   // single short occupation
		{700, 700},   // exactly one quantum
		{1, 1},       // degenerate
		{65536, 700}, // long transfer
	} {
		ra, rb := &Resource{}, &Resource{}
		ca, cb := NewCtx(1, 0), NewCtx(1, 0)
		rb.UseQuanta(cb, tc.hold, tc.quantum)
		for rem := tc.hold; rem > 0; rem -= tc.quantum {
			q := tc.quantum
			if rem < q {
				q = rem
			}
			ra.Use(ca, q)
		}
		if ca.now != cb.now {
			t.Errorf("hold=%d quantum=%d: clock %d (loop) vs %d (batched)",
				tc.hold, tc.quantum, ca.now, cb.now)
		}
		if ca.Counters.LockWaitNS != cb.Counters.LockWaitNS {
			t.Errorf("hold=%d quantum=%d: LockWaitNS %d vs %d",
				tc.hold, tc.quantum, ca.Counters.LockWaitNS, cb.Counters.LockWaitNS)
		}
		// A second thread arriving mid-occupation must queue identically:
		// the calendars the two APIs leave behind are the same.
		oa, ob := NewCtx(2, 1), NewCtx(2, 1)
		oa.now, ob.now = tc.hold/2, tc.hold/2
		ra.Use(oa, 10)
		rb.Use(ob, 10)
		if oa.now != ob.now || oa.Counters.LockWaitNS != ob.Counters.LockWaitNS {
			t.Errorf("hold=%d quantum=%d: follower clock %d/%d wait %d/%d diverge",
				tc.hold, tc.quantum, oa.now, ob.now,
				oa.Counters.LockWaitNS, ob.Counters.LockWaitNS)
		}
	}
}
