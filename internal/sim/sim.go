// Package sim provides the deterministic virtual-time substrate that every
// component of the reproduction runs on.
//
// Each simulated thread owns a Ctx carrying a nanosecond-resolution virtual
// clock and a pointer to its performance counters. Costs (persistent-memory
// accesses, page faults, TLB walks, journal writes, lock waits) advance the
// clock; nothing in the repository consults wall-clock time for results.
//
// Shared hardware and software resources — a file system's journal, a
// device's write bandwidth, a VFS inode lock — are modelled by Resource: a
// mutual-exclusion region with a busy-until timestamp in virtual time.
// When a thread acquires a Resource its clock first jumps forward to the
// moment the resource frees up, so contention delays emerge naturally and
// deterministically (given a deterministic arrival order) rather than from
// host scheduling.
package sim

import (
	"sort"
	"sync"

	"repro/internal/perf"
	"repro/internal/trace"
)

// Ctx is the per-simulated-thread execution context. It is not safe for
// concurrent use; each goroutine driving simulated work must own its own Ctx.
type Ctx struct {
	// Thread is a unique identifier for the simulated thread.
	Thread int
	// CPU is the logical CPU the thread currently runs on. File systems with
	// per-CPU structures (WineFS, NOVA) key their pools off this value.
	CPU int
	// Counters accumulates performance events for this thread.
	Counters *perf.Counters
	// Trace is the thread's span stack; nil (the default) disables tracing
	// entirely, leaving only a pointer test on the instrumented paths.
	// Spans observe the virtual clock and counters but never advance them.
	Trace *trace.Context

	now int64
	rng *Rand
}

// NewCtx returns a context for simulated thread id pinned to the given CPU,
// with fresh counters and a seeded deterministic RNG.
func NewCtx(thread, cpu int) *Ctx {
	return &Ctx{
		Thread:   thread,
		CPU:      cpu,
		Counters: &perf.Counters{},
		rng:      NewRand(uint64(thread)*0x9e3779b97f4a7c15 + 1),
	}
}

// Now returns the thread's current virtual time in nanoseconds.
func (c *Ctx) Now() int64 { return c.now }

// Advance moves the thread's virtual clock forward by ns nanoseconds.
// Negative advances are ignored: virtual time never runs backwards.
func (c *Ctx) Advance(ns int64) {
	if ns > 0 {
		c.now += ns
	}
}

// AdvanceTo moves the clock forward to t if t is in the future.
func (c *Ctx) AdvanceTo(t int64) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero and clears counters. Used between
// measurement phases of an experiment.
func (c *Ctx) Reset() {
	c.now = 0
	c.Counters.Reset()
}

// Rand returns the context's deterministic random source.
func (c *Ctx) Rand() *Rand { return c.rng }

// Syscall charges one syscall entry: the counter and its virtual-time cost.
// Every vfs.FS implementation's operation preamble funnels through here so
// syscall time lands in one place (Counters.SyscallNS) for span breakdowns.
func (c *Ctx) Syscall(ns int64) {
	c.Counters.Syscalls++
	c.Counters.SyscallNS += ns
	c.Advance(ns)
}

// breakdown snapshots the counter fields that span breakdowns report.
func (c *Ctx) breakdown() trace.Breakdown {
	return trace.Breakdown{
		SyscallNS:  c.Counters.SyscallNS,
		LockWaitNS: c.Counters.LockWaitNS,
		JournalNS:  c.Counters.JournalNS,
		CopyNS:     c.Counters.CopyNS,
		FaultNS:    c.Counters.FaultNS,
		ZeroNS:     c.Counters.ZeroNS,
	}
}

// StartSpan opens a traced span at the current virtual time, snapshotting
// the thread's cost counters. Returns nil — at the cost of one pointer test
// — when tracing is disabled; EndSpan ignores a nil span, so call sites
// need no guards of their own.
func (c *Ctx) StartSpan(name string) *trace.Span {
	if c.Trace == nil {
		return nil
	}
	sp := c.Trace.Start(name, c.now)
	sp.Mark = c.breakdown()
	return sp
}

// EndSpan seals sp at the current virtual time, attributing the counter
// deltas since StartSpan as the span's cost breakdown, and emits it.
func (c *Ctx) EndSpan(sp *trace.Span) {
	if sp == nil {
		return
	}
	sp.Cost = c.breakdown().Sub(sp.Mark)
	c.Trace.End(sp, c.now)
}

// Resource models a shared serialisation point (a journal, a lock, a
// bandwidth-limited device port) in virtual time.
//
// Occupations are booked on a calendar of busy intervals: a thread asking
// to occupy the resource receives the earliest free interval at or after
// its *own* virtual time. This matters because simulated threads run on
// host goroutines whose scheduling is unrelated to virtual time — a thread
// whose clock reads 5µs must not queue behind an occupation another thread
// booked at 500µs, because at instant 5µs the resource really was free.
// Calendar booking makes contention a function of virtual-time overlap
// only, independent of host scheduling, and therefore deterministic in
// distribution.
//
// Resource is safe for concurrent use by multiple goroutines.
type Resource struct {
	mu    sync.Mutex
	spans []span // sorted, disjoint busy intervals
	// acquireStart is the booked start of an in-progress Acquire/Release
	// occupation (the real mutex stays locked in between).
	acquireStart int64
}

type span struct{ start, end int64 }

// maxSpans bounds calendar memory; the oldest intervals are dropped first
// (live threads' clocks only move forward, so the distant past is never
// booked again in practice).
const maxSpans = 1024

// bookLocked finds the earliest t >= from such that [t, t+hold) is free,
// inserts the interval, and returns t. Caller holds r.mu.
func (r *Resource) bookLocked(from, hold int64) int64 {
	t := from
	// Fast path: booking at or past the calendar frontier. Threads' clocks
	// mostly move forward, so the overwhelmingly common case appends to (or
	// extends) the final span without a binary search or a copy.
	if n := len(r.spans); n == 0 || t >= r.spans[n-1].end {
		if n > 0 && r.spans[n-1].end == t {
			r.spans[n-1].end = t + hold
		} else {
			r.spans = append(r.spans, span{t, t + hold})
			if len(r.spans) > maxSpans {
				// Reslice rather than copy-back: append reallocates once
				// the array tail fills, amortising the trim to O(1).
				r.spans = r.spans[len(r.spans)-maxSpans:]
			}
		}
		return t
	}
	// Find the first span that ends after t.
	i := sort.Search(len(r.spans), func(i int) bool { return r.spans[i].end > t })
	for i < len(r.spans) {
		if t+hold <= r.spans[i].start {
			break // fits in the gap before span i
		}
		if r.spans[i].end > t {
			t = r.spans[i].end
		}
		i++
	}
	// Insert [t, t+hold) before index i, merging with neighbours.
	mergePrev := i > 0 && r.spans[i-1].end == t
	mergeNext := i < len(r.spans) && t+hold == r.spans[i].start
	switch {
	case mergePrev && mergeNext:
		r.spans[i-1].end = r.spans[i].end
		r.spans = append(r.spans[:i], r.spans[i+1:]...)
	case mergePrev:
		r.spans[i-1].end = t + hold
	case mergeNext:
		r.spans[i].start = t
	default:
		r.spans = append(r.spans, span{})
		copy(r.spans[i+1:], r.spans[i:])
		r.spans[i] = span{t, t + hold}
	}
	if len(r.spans) > maxSpans {
		r.spans = r.spans[len(r.spans)-maxSpans:]
	}
	return t
}

// Use occupies the resource for hold nanoseconds at the earliest free
// interval at or after the thread's current time. It advances the thread's
// clock to the end of the occupation and returns the occupation's start.
func (r *Resource) Use(ctx *Ctx, hold int64) (start int64) {
	if hold < 0 {
		hold = 0
	}
	r.mu.Lock()
	start = r.bookLocked(ctx.now, hold)
	r.mu.Unlock()
	if waited := start - ctx.now; waited > 0 && ctx.Counters != nil {
		ctx.Counters.LockWaitNS += waited
	}
	ctx.now = start + hold
	return start
}

// UseQuanta occupies the resource for hold nanoseconds split into
// occupations of at most quantum nanoseconds each, booked back to back
// under one lock acquisition. It is exactly equivalent — same bookings,
// same clock, same LockWaitNS — to calling Use once per quantum, but costs
// one mutex round-trip instead of ceil(hold/quantum): this is the batched
// charging path for bulk device transfers, whose quantum-sliced port
// occupations dominated the per-call engine overhead.
func (r *Resource) UseQuanta(ctx *Ctx, hold, quantum int64) {
	if hold < 1 {
		hold = 1
	}
	if quantum <= 0 || hold <= quantum {
		r.Use(ctx, hold)
		return
	}
	var waited int64
	r.mu.Lock()
	for hold > 0 {
		q := hold
		if q > quantum {
			q = quantum
		}
		start := r.bookLocked(ctx.now, q)
		waited += start - ctx.now
		ctx.now = start + q
		hold -= q
	}
	r.mu.Unlock()
	if waited > 0 && ctx.Counters != nil {
		ctx.Counters.LockWaitNS += waited
	}
}

// Acquire begins an occupation whose duration is not known in advance: the
// thread's clock jumps to the first free instant at or after its current
// time, and the underlying mutex is held until Release, serialising the
// goroutines so the calendar stays consistent.
func (r *Resource) Acquire(ctx *Ctx) {
	r.mu.Lock()
	t := ctx.now
	i := sort.Search(len(r.spans), func(i int) bool { return r.spans[i].end > t })
	for i < len(r.spans) && r.spans[i].start <= t {
		t = r.spans[i].end
		i++
	}
	if waited := t - ctx.now; waited > 0 && ctx.Counters != nil {
		ctx.Counters.LockWaitNS += waited
	}
	ctx.now = t
	r.acquireStart = t
}

// Release ends an occupation started with Acquire: the interval from the
// acquire instant to the thread's current time is booked busy.
func (r *Resource) Release(ctx *Ctx) {
	if ctx.now > r.acquireStart {
		r.bookLocked(r.acquireStart, ctx.now-r.acquireStart)
	}
	r.mu.Unlock()
}

// BusyUntil reports the end of the last booked interval (tests).
func (r *Resource) BusyUntil() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.spans) == 0 {
		return 0
	}
	return r.spans[len(r.spans)-1].end
}

// Bandwidth models a shared channel with a fixed byte rate (e.g. the
// aggregate write bandwidth of a persistent-memory socket). Transfers are
// serialised in virtual time like a Resource, with the hold time computed
// from the transfer size.
type Bandwidth struct {
	res Resource
	// nsPerByte is the inverse rate. A 12 GB/s channel is 1/12 ns per byte.
	nsPerByte float64
}

// NewBandwidth returns a channel limited to bytesPerSec bytes per virtual
// second. A zero or negative rate yields an infinitely fast channel.
func NewBandwidth(bytesPerSec float64) *Bandwidth {
	b := &Bandwidth{}
	if bytesPerSec > 0 {
		b.nsPerByte = 1e9 / bytesPerSec
	}
	return b
}

// Transfer occupies the channel for n bytes and advances the thread's clock.
func (b *Bandwidth) Transfer(ctx *Ctx, n int64) {
	if n <= 0 || b.nsPerByte == 0 {
		return
	}
	hold := int64(float64(n) * b.nsPerByte)
	if hold < 1 {
		hold = 1
	}
	b.res.Use(ctx, hold)
}

// Cost returns the uncontended transfer time for n bytes.
func (b *Bandwidth) Cost(n int64) int64 {
	if n <= 0 || b.nsPerByte == 0 {
		return 0
	}
	return int64(float64(n) * b.nsPerByte)
}

// Pacer enforces a duty-cycle bandwidth budget on a background virtual
// thread (the paper's §3.5 maintenance thread). The thread reports each
// burst of booked work; the pacer then advances the thread's clock by
// work*(1-b)/b, so over any window the thread occupies at most fraction b
// of virtual time and foreground bookings weave into the injected idle
// gaps. A budget of 1 (or more) is unthrottled; that regime reproduces
// the paper's §4 measurement of background defragmentation stealing
// 25-40% of foreground mmap bandwidth.
type Pacer struct {
	budget float64
	// PausedNS accumulates the idle time injected so far.
	PausedNS int64
}

// NewPacer returns a pacer holding the thread to the given fraction of
// virtual time. Budgets <= 0 default to 0.1 (10%); budgets >= 1 disable
// throttling.
func NewPacer(budget float64) *Pacer {
	if budget <= 0 {
		budget = 0.1
	}
	return &Pacer{budget: budget}
}

// Budget reports the configured duty-cycle fraction.
func (p *Pacer) Budget() float64 {
	if p == nil {
		return 1
	}
	return p.budget
}

// Pace records workNS of just-completed work and sleeps the thread for
// the complementary share of the duty cycle. Returns the pause injected.
// A nil pacer is unthrottled, so call sites need no guards.
func (p *Pacer) Pace(ctx *Ctx, workNS int64) int64 {
	if p == nil || workNS <= 0 || p.budget >= 1 {
		return 0
	}
	pause := int64(float64(workNS) * (1 - p.budget) / p.budget)
	if pause <= 0 {
		return 0
	}
	ctx.Advance(pause)
	p.PausedNS += pause
	ctx.Counters.DefragThrottleNS += pause
	return pause
}
