package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelRunner executes independent virtual-thread jobs on real host
// cores. It exists because determinism makes this safe: a simulated
// thread's virtual-time results (clock, counters, traces) depend only on
// its own inputs and on the virtual-time calendars of the Resources it
// shares — never on host scheduling. Two jobs that share NO Resource
// (separate campaign seeds each booting their own device and file system,
// separate bench points each on a fresh FS) therefore produce bit-identical
// results whether they run back to back on one core or concurrently on
// sixteen.
//
// The determinism argument, precisely:
//
//  1. Each job i writes only into its own index-i result slot (the job
//     closure must uphold this; the runner hands out disjoint indices).
//  2. Jobs share no sim.Resource, no Device, no FS — so no virtual-time
//     calendar sees bookings from two jobs, and no job's clock can observe
//     another job's progress.
//  3. The caller merges result slots in index order after Run returns.
//
// Under 1–3, the merged counters, clocks and traces are a pure function of
// (job inputs, index order) — host core count and scheduling cannot leak
// in. The determinism golden test locks this: a campaign run under
// ParallelRunner must match the sequential loop bit for bit.
//
// Jobs that DO share a Resource (the fxmark threads inside one bench
// point) still run concurrently today on plain goroutines; their
// contention-derived timings are deterministic in distribution only, and
// the bench baselines already treat them with tolerance. ParallelRunner is
// for the outer, share-nothing level: seeds, points, images.
type ParallelRunner struct {
	// Workers bounds concurrent jobs. 0 means GOMAXPROCS. Memory-heavy
	// jobs (each bench point backs up to a GiB of device chunks) should
	// set an explicit cap.
	Workers int
}

// Run executes job(0..n-1) across the worker pool and returns when every
// job finished. Indices are handed out in order; completion order is
// unspecified, which is why results must go into per-index slots.
func (r *ParallelRunner) Run(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}

// RunErr is Run for jobs that fail: it returns the per-index errors, nil
// entries for successes. The slice order is index order, independent of
// completion order.
func (r *ParallelRunner) RunErr(n int, job func(i int) error) []error {
	errs := make([]error, n)
	r.Run(n, func(i int) { errs[i] = job(i) })
	return errs
}
