package sim

import (
	"sync/atomic"
	"testing"
)

// Engine microbenchmarks: the booking primitives every simulated operation
// funnels through. Run with `make bench-engine` (or go test -bench). The
// interesting signals are ns/op on the uncontended fast path (the common
// case after the append-at-tail fast path in bookLocked) and allocs/op,
// which must stay zero.

func BenchmarkResourceUse(b *testing.B) {
	r := &Resource{}
	ctx := NewCtx(1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Use(ctx, 100)
	}
}

// BenchmarkResourceUseQuanta books a 10-quantum occupation per iteration —
// the shape of one pmem port transfer. The per-quantum Use loop this API
// replaced paid ten lock round-trips for the same calendar outcome.
func BenchmarkResourceUseQuanta(b *testing.B) {
	r := &Resource{}
	ctx := NewCtx(1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.UseQuanta(ctx, 7000, 700)
	}
}

func BenchmarkResourceUsePerQuantumLoop(b *testing.B) {
	r := &Resource{}
	ctx := NewCtx(1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for rem := int64(7000); rem > 0; rem -= 700 {
			q := int64(700)
			if rem < q {
				q = rem
			}
			r.Use(ctx, q)
		}
	}
}

// BenchmarkResourceAcquireContended hammers one Resource from every
// GOMAXPROCS worker — the host-lock contention shape of a shared inode
// lock under the fxmark overlap-write case.
func BenchmarkResourceAcquireContended(b *testing.B) {
	r := &Resource{}
	var id atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		ctx := NewCtx(int(id.Add(1)), 0)
		for pb.Next() {
			r.Acquire(ctx)
			ctx.Advance(50)
			r.Release(ctx)
		}
	})
}
