package sim

import (
	"sort"
	"sync"
)

// RWResource models a shared serialisation point that distinguishes shared
// (reader) from exclusive (writer) occupations in virtual time — the VFS
// inode rwsem. Readers overlap freely with other readers; writers exclude
// everyone. Like Resource, contention is a function of virtual-time overlap
// only: occupations are booked on calendars, and an acquiring thread's
// clock jumps past conflicting bookings that contain its current instant,
// with the jump attributed to Counters.LockWaitNS.
//
// Occupation durations are not known in advance (the caller does work
// between acquire and release), so a host-level sync.RWMutex is held across
// each occupation. That serialises conflicting *goroutines* so the calendar
// stays consistent — by the time an acquirer books its start, every
// conflicting occupation has already been booked — while conflict-free
// goroutines (reader/reader) proceed in parallel on the host too. Host
// scheduling never advances virtual clocks, so this does not distort the
// simulated timeline; sync.RWMutex's writer preference also bounds writer
// starvation at the host level.
//
// RWResource is safe for concurrent use by multiple goroutines.
type RWResource struct {
	host sync.RWMutex // held between acquire and release

	mu sync.Mutex // guards the calendars
	// wr and rd are merged unions of past exclusive and shared occupation
	// intervals. Writers skip past both; readers skip past wr only.
	wr     []span
	rd     []span
	wstart int64 // booked start of the in-progress exclusive occupation
}

// Lock begins an exclusive occupation: the thread's clock jumps to the
// first instant not covered by any booked occupation (shared or exclusive),
// and conflicting goroutines block at the host level until Unlock.
func (r *RWResource) Lock(ctx *Ctx) {
	r.host.Lock()
	r.mu.Lock()
	t := ctx.now
	for {
		t2 := skipBusy(r.wr, t)
		t2 = skipBusy(r.rd, t2)
		if t2 == t {
			break
		}
		t = t2
	}
	r.wstart = t
	r.mu.Unlock()
	if waited := t - ctx.now; waited > 0 && ctx.Counters != nil {
		ctx.Counters.LockWaitNS += waited
	}
	ctx.now = t
}

// Unlock ends an exclusive occupation, booking [lock instant, now) on the
// exclusive calendar.
func (r *RWResource) Unlock(ctx *Ctx) {
	r.mu.Lock()
	if ctx.now > r.wstart {
		r.wr = insertUnion(r.wr, span{r.wstart, ctx.now})
	}
	r.mu.Unlock()
	r.host.Unlock()
}

// RLock begins a shared occupation: the clock jumps past exclusive bookings
// only (readers never wait for readers). The returned start must be handed
// back to RUnlock — unlike the exclusive side, many shared occupations can
// be in flight at once, so the resource cannot hold a single start field.
func (r *RWResource) RLock(ctx *Ctx) (start int64) {
	r.host.RLock()
	r.mu.Lock()
	t := ctx.now
	for {
		t2 := skipBusy(r.wr, t)
		if t2 == t {
			break
		}
		t = t2
	}
	r.mu.Unlock()
	if waited := t - ctx.now; waited > 0 && ctx.Counters != nil {
		ctx.Counters.LockWaitNS += waited
	}
	ctx.now = t
	return t
}

// RUnlock ends a shared occupation started at start, booking it on the
// shared calendar so later writers queue behind it.
func (r *RWResource) RUnlock(ctx *Ctx, start int64) {
	r.mu.Lock()
	if ctx.now > start {
		r.rd = insertUnion(r.rd, span{start, ctx.now})
	}
	r.mu.Unlock()
	r.host.RUnlock()
}

// BusyUntil reports the end of the last booked interval on either calendar
// (tests).
func (r *RWResource) BusyUntil() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var max int64
	if n := len(r.wr); n > 0 && r.wr[n-1].end > max {
		max = r.wr[n-1].end
	}
	if n := len(r.rd); n > 0 && r.rd[n-1].end > max {
		max = r.rd[n-1].end
	}
	return max
}

// skipBusy returns the end of the span containing t, or t if no span does.
// spans must be sorted and disjoint.
func skipBusy(spans []span, t int64) int64 {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].end > t })
	if i < len(spans) && spans[i].start <= t {
		return spans[i].end
	}
	return t
}

// insertUnion inserts s into a sorted, disjoint span list, merging with any
// overlapping or adjacent neighbours, and bounds the list length by
// dropping the oldest intervals (clocks only move forward, so the distant
// past is never consulted again).
func insertUnion(spans []span, s span) []span {
	// First span whose end reaches s.start: everything before it is
	// strictly earlier and untouched.
	lo := sort.Search(len(spans), func(i int) bool { return spans[i].end >= s.start })
	hi := lo
	for hi < len(spans) && spans[hi].start <= s.end {
		if spans[hi].start < s.start {
			s.start = spans[hi].start
		}
		if spans[hi].end > s.end {
			s.end = spans[hi].end
		}
		hi++
	}
	var out []span
	switch {
	case hi > lo:
		// s swallows spans[lo:hi]; overwrite the first and close the gap.
		spans[lo] = s
		out = append(spans[:lo+1], spans[hi:]...)
	case lo == len(spans):
		// Past the frontier — the common case, since clocks move forward.
		out = append(spans, s)
	default:
		spans = append(spans, span{})
		copy(spans[lo+1:], spans[lo:])
		spans[lo] = s
		out = spans
	}
	if len(out) > maxSpans {
		// Reslice rather than copy: append reallocates when the array's
		// tail room runs out, amortising the trim to O(1) per insert.
		out = out[len(out)-maxSpans:]
	}
	return out
}
