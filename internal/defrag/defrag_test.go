package defrag_test

import (
	"fmt"
	"testing"

	"repro/internal/defrag"
	"repro/internal/metrics"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

func agedFS(t *testing.T) (*sim.Ctx, *winefs.FS) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, pmem.New(256<<20), winefs.Options{CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	for i := 0; i < 12; i++ {
		f, err := fs.Create(ctx, fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(ctx, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i += 2 {
		if err := fs.Unlink(ctx, fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return ctx, fs
}

// TestRunnerConverges: Run loops passes until the image is clean, the
// counter snapshot feeds the metrics registry, and a second Run finds
// nothing left to do.
func TestRunnerConverges(t *testing.T) {
	ctx, fs := agedFS(t)
	r := defrag.New(fs, defrag.Config{Budget: 0.2})
	bg := sim.NewCtx(2, 1)
	bg.AdvanceTo(ctx.Now())
	sum, err := r.Run(bg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Recovered2M == 0 {
		t.Fatalf("runner recovered nothing: %+v", sum)
	}
	if r.ThrottledNS() == 0 {
		t.Fatal("budget 0.2 injected no throttle time")
	}
	if err := fs.Audit(bg); err != nil {
		t.Fatalf("audit after runner: %v", err)
	}

	c := r.Counters()
	if c.DefragPasses == 0 || c.DefragRecovered2M != sum.Recovered2M {
		t.Fatalf("counter snapshot out of sync: passes=%d recovered=%d want %d",
			c.DefragPasses, c.DefragRecovered2M, sum.Recovered2M)
	}
	fams := metrics.DefragFamilies(&c)
	if len(fams) == 0 {
		t.Fatal("no defrag_* metric families")
	}
	found := false
	for _, f := range fams {
		if f.Name == "defrag_recovered2m_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("defrag_recovered2m_total missing from families")
	}

	again, err := r.Run(sim.NewCtx(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if again.Recovered2M != 0 || again.MigratedBlocks != 0 {
		t.Fatalf("second run still found work: %+v", again)
	}
}
