// Package defrag is the online background defragmenter's driver (§3.5):
// it owns the pacing policy and pass loop around winefs.DefragPass, and
// exposes a race-free counter snapshot for the daemon's metrics
// endpoint. The heavy lifting — candidate scanning, holds, migrations,
// rewrite draining, re-promotion — lives in the file system itself,
// because it needs the allocator's and the journal's locks; this
// package decides when and how hard to run it.
package defrag

import (
	"sync"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/winefs"
)

// Config tunes the runner.
type Config struct {
	// Budget is the duty-cycle fraction of device time the defragmenter
	// may consume (§4: unthrottled it steals 25-40% of foreground mmap
	// bandwidth). <= 0 selects the 0.1 default; >= 1 runs unthrottled.
	Budget float64
	// MaxChunks caps candidate chunks per pass (0 = winefs default).
	MaxChunks int
	// MaxMigrateBlocks caps blocks migrated per pass (0 = winefs default).
	MaxMigrateBlocks int64
	// MaxPasses bounds Run's pass loop (0 = 16). Aged images converge
	// over several passes: each migration can split a hole elsewhere,
	// leaving small stragglers for the next pass to sweep up.
	MaxPasses int
}

// Runner drives repeated defragmentation passes over one file system.
// It is safe for one goroutine to Step/Run while others read Totals or
// Counters (the daemon's metrics scrape).
type Runner struct {
	fs    *winefs.FS
	cfg   Config
	pacer *sim.Pacer

	mu       sync.Mutex
	last     winefs.DefragStats
	passes   int64
	counters perf.Counters // snapshot of the defrag thread's counters
}

// New builds a Runner; the Pacer is shared across passes so the duty
// cycle is enforced over the thread's lifetime, not reset per pass.
func New(fs *winefs.FS, cfg Config) *Runner {
	var p *sim.Pacer
	if cfg.Budget < 1 {
		p = sim.NewPacer(cfg.Budget)
	}
	return &Runner{fs: fs, cfg: cfg, pacer: p}
}

// Step runs one defragmentation pass on the given thread context.
func (r *Runner) Step(ctx *sim.Ctx) (winefs.DefragStats, error) {
	st, err := r.fs.DefragPass(ctx, winefs.DefragOptions{
		Pacer:            r.pacer,
		MaxChunks:        r.cfg.MaxChunks,
		MaxMigrateBlocks: r.cfg.MaxMigrateBlocks,
	})
	r.mu.Lock()
	r.last = st
	r.passes++
	r.counters = *ctx.Counters
	r.mu.Unlock()
	return st, err
}

// Run loops Step until a pass finds nothing to do or MaxPasses is hit,
// returning the accumulated stats. This is the paper's maintenance
// thread body: aged images need several passes (each bounded by the
// migration budget) to re-form their aligned pools.
func (r *Runner) Run(ctx *sim.Ctx) (winefs.DefragStats, error) {
	max := r.cfg.MaxPasses
	if max <= 0 {
		max = 16
	}
	var sum winefs.DefragStats
	for i := 0; i < max; i++ {
		st, err := r.Step(ctx)
		sum.ChunksScanned += st.ChunksScanned
		sum.MigratedBlocks += st.MigratedBlocks
		sum.MigratedBytes += st.MigratedBytes
		sum.Recovered2M += st.Recovered2M
		sum.Rewrites += st.Rewrites
		sum.SkippedBusy += st.SkippedBusy
		sum.SkippedMeta += st.SkippedMeta
		if err != nil {
			return sum, err
		}
		if st.Clean() {
			break
		}
	}
	return sum, nil
}

// Last returns the most recent pass's stats and the total pass count.
func (r *Runner) Last() (winefs.DefragStats, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last, r.passes
}

// Counters returns a copy of the defrag thread's perf counters as of
// the last completed pass — the daemon's registry reads defrag_* metric
// families from this without racing the maintenance goroutine.
func (r *Runner) Counters() perf.Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters
}

// ThrottledNS reports the idle time the pacer has injected so far.
func (r *Runner) ThrottledNS() int64 {
	if r.pacer == nil {
		return 0
	}
	return r.pacer.PausedNS
}
