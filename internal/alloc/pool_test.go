package alloc

import (
	"testing"
	"testing/quick"
)

func TestPoolAddMerge(t *testing.T) {
	p := NewPool()
	p.Add(0, 100)
	p.Add(200, 100)
	if p.Holes() != 2 || p.FreeBlocks() != 200 {
		t.Fatalf("holes=%d free=%d", p.Holes(), p.FreeBlocks())
	}
	p.Add(100, 100) // bridges the two
	if p.Holes() != 1 || p.FreeBlocks() != 300 {
		t.Fatalf("after merge: holes=%d free=%d", p.Holes(), p.FreeBlocks())
	}
}

func TestPoolTakeAt(t *testing.T) {
	p := NewPool()
	p.Add(0, 1000)
	if !p.TakeAt(100, 50) {
		t.Fatal("TakeAt inside a free extent failed")
	}
	if p.TakeAt(100, 50) {
		t.Fatal("double TakeAt succeeded")
	}
	if p.TakeAt(990, 20) {
		t.Fatal("TakeAt past the end succeeded")
	}
	if p.FreeBlocks() != 950 || p.Holes() != 2 {
		t.Fatalf("free=%d holes=%d", p.FreeBlocks(), p.Holes())
	}
}

func TestPoolBestFit(t *testing.T) {
	p := NewPool()
	p.Add(0, 10)
	p.Add(100, 50)
	p.Add(200, 20)
	e, ok := p.TakeBestFit(15)
	if !ok || e.Start != 200 || e.Len != 15 {
		t.Fatalf("best fit = %+v", e)
	}
	// Largest: the 50-block hole.
	e, ok = p.TakeLargest()
	if !ok || e.Start != 100 || e.Len != 50 {
		t.Fatalf("largest = %+v", e)
	}
}

func TestPoolNextFitWraps(t *testing.T) {
	p := NewPool()
	p.Add(0, 100)
	p.Add(1000, 100)
	// Cursor past both: wraps to the first.
	e, ok := p.TakeNextFit(5000, 50)
	if !ok || e.Start != 0 {
		t.Fatalf("wrap next-fit = %+v ok=%v", e, ok)
	}
	// Cursor between: picks the second.
	e, ok = p.TakeNextFit(500, 50)
	if !ok || e.Start != 1000 {
		t.Fatalf("forward next-fit = %+v", e)
	}
	// Both remaining holes are 50 blocks: an 80-block request fails.
	if _, ok := p.TakeNextFit(0, 80); ok {
		t.Fatal("next-fit found space that does not exist")
	}
	// But a 50-block request still succeeds from the first hole.
	e, ok = p.TakeNextFit(0, 50)
	if !ok || e.Start != 50 {
		t.Fatalf("size-filtered next-fit = %+v", e)
	}
}

func TestPoolAlignedInRange(t *testing.T) {
	p := NewPool()
	p.Add(100, 3*BlocksPerHuge) // covers aligned boundaries at 512, 1024
	// Window excludes all boundaries.
	if _, ok := p.TakeAlignedInRange(0, 400, BlocksPerHuge); ok {
		t.Fatal("found aligned start outside window")
	}
	e, ok := p.TakeAlignedInRange(0, 600, BlocksPerHuge)
	if !ok || e.Start != 512 || e.Len != BlocksPerHuge {
		t.Fatalf("aligned-in-range = %+v", e)
	}
	// The carve must leave the head and tail as holes.
	if p.FreeBlocks() != 3*BlocksPerHuge-BlocksPerHuge {
		t.Fatalf("free = %d", p.FreeBlocks())
	}
}

func TestPoolTakeAligned(t *testing.T) {
	p := NewPool()
	p.Add(1, 511) // no aligned boundary fits
	if _, ok := p.TakeAligned(BlocksPerHuge); ok {
		t.Fatal("aligned take from unalignable space")
	}
	p.Add(512, 512)
	e, ok := p.TakeAligned(BlocksPerHuge)
	if !ok || e.Start != 512 {
		t.Fatalf("aligned = %+v", e)
	}
}

func TestPoolCarve(t *testing.T) {
	p := NewPool()
	p.Add(0, 1000)
	p.Carve(100, 200)
	if p.FreeBlocks() != 800 || p.Holes() != 2 {
		t.Fatalf("free=%d holes=%d", p.FreeBlocks(), p.Holes())
	}
	// Carving an already-carved range is a no-op.
	p.Carve(150, 100)
	if p.FreeBlocks() != 800 {
		t.Fatalf("free=%d", p.FreeBlocks())
	}
	// A carve straddling free and used space removes only the free part.
	p.Carve(250, 100) // [250,350): only [300,350) is free
	if p.FreeBlocks() != 750 {
		t.Fatalf("straddling carve: free=%d", p.FreeBlocks())
	}
}

// TestPoolConservation: any sequence of takes and adds conserves blocks —
// nothing is lost or double-counted.
func TestPoolConservation(t *testing.T) {
	f := func(ops []uint16) bool {
		p := NewPool()
		const total = 4096
		p.Add(0, total)
		outstanding := []Extent{}
		var outBlocks int64
		for _, op := range ops {
			switch op % 3 {
			case 0:
				need := int64(op%127) + 1
				if e, ok := p.TakeBestFit(need); ok {
					outstanding = append(outstanding, e)
					outBlocks += e.Len
				}
			case 1:
				need := int64(op%511) + 1
				if e, ok := p.TakeNextFit(int64(op), need); ok {
					outstanding = append(outstanding, e)
					outBlocks += e.Len
				}
			case 2:
				if len(outstanding) > 0 {
					e := outstanding[len(outstanding)-1]
					outstanding = outstanding[:len(outstanding)-1]
					p.Add(e.Start, e.Len)
					outBlocks -= e.Len
				}
			}
			if p.FreeBlocks()+outBlocks != total {
				return false
			}
		}
		// Returning everything restores one fully merged extent.
		for _, e := range outstanding {
			p.Add(e.Start, e.Len)
		}
		return p.FreeBlocks() == total && p.Holes() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolNoOverlap: extents handed out concurrently-in-sequence never
// overlap each other.
func TestPoolNoOverlap(t *testing.T) {
	f := func(seed uint8, takes []uint8) bool {
		p := NewPool()
		p.Add(int64(seed), 8192)
		used := map[int64]bool{}
		for _, tk := range takes {
			need := int64(tk%64) + 1
			e, ok := p.TakeBestFit(need)
			if !ok {
				break
			}
			for b := e.Start; b < e.End(); b++ {
				if used[b] {
					return false
				}
				used[b] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
