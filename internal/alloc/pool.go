package alloc

import "repro/internal/rbtree"

// Pool is a free-space extent pool with merge-on-free, used by the baseline
// file systems' allocators (the WineFS allocator keeps its own structure
// because it segregates aligned extents into a FIFO). Two red-black
// indexes: by start (for merging and goal extension) and by (size, start)
// (for best-fit queries). Not safe for concurrent use; callers lock.
type Pool struct {
	byStart *rbtree.Tree[int64, int64]
	bySize  *rbtree.Tree[sizeKey, struct{}]
	blocks  int64
}

type sizeKey struct {
	length int64
	start  int64
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{
		byStart: rbtree.New[int64, int64](func(a, b int64) bool { return a < b }),
		bySize: rbtree.New[sizeKey, struct{}](func(a, b sizeKey) bool {
			if a.length != b.length {
				return a.length < b.length
			}
			return a.start < b.start
		}),
	}
}

// FreeBlocks returns the total free block count.
func (p *Pool) FreeBlocks() int64 { return p.blocks }

// Holes returns the number of distinct free extents (fragmentation gauge).
func (p *Pool) Holes() int { return p.byStart.Len() }

func (p *Pool) insert(start, length int64) {
	p.byStart.Set(start, length)
	p.bySize.Set(sizeKey{length, start}, struct{}{})
	p.blocks += length
}

func (p *Pool) remove(start, length int64) {
	p.byStart.Delete(start)
	p.bySize.Delete(sizeKey{length, start})
	p.blocks -= length
}

// Add returns a free range to the pool, merging with adjacent extents.
func (p *Pool) Add(start, length int64) {
	if length <= 0 {
		return
	}
	if ps, pl, ok := p.byStart.Floor(start); ok && ps+pl == start {
		p.remove(ps, pl)
		start, length = ps, pl+length
	}
	if ns, nl, ok := p.byStart.Ceiling(start); ok && start+length == ns {
		p.remove(ns, nl)
		length += nl
	}
	p.insert(start, length)
}

// TakeAt carves exactly [start, start+length) if it is entirely free
// (goal extension). Reports success.
func (p *Pool) TakeAt(start, length int64) bool {
	hs, hl, ok := p.byStart.Floor(start)
	if !ok || hs+hl < start+length {
		return false
	}
	p.remove(hs, hl)
	if hs < start {
		p.insert(hs, start-hs)
	}
	if hs+hl > start+length {
		p.insert(start+length, hs+hl-(start+length))
	}
	return true
}

// TakeBestFit carves `need` blocks from the smallest adequate extent.
func (p *Pool) TakeBestFit(need int64) (Extent, bool) {
	k, _, ok := p.bySize.Ceiling(sizeKey{need, 0})
	if !ok {
		return Extent{}, false
	}
	p.remove(k.start, k.length)
	if k.length > need {
		p.insert(k.start+need, k.length-need)
	}
	return Extent{Start: k.start, Len: need}, true
}

// TakeLargest removes and returns the largest extent whole.
func (p *Pool) TakeLargest() (Extent, bool) {
	k, _, ok := p.bySize.Max()
	if !ok {
		return Extent{}, false
	}
	p.remove(k.start, k.length)
	return Extent{Start: k.start, Len: k.length}, true
}

// TakeAligned carves `need` blocks starting at a hugepage-aligned block,
// searching adequate extents from smallest to largest. Used by allocators
// that make a best-effort alignment attempt (ext4 mballoc normalisation,
// NOVA's exact-multiple path).
func (p *Pool) TakeAligned(need int64) (Extent, bool) {
	var found *sizeKey
	p.bySize.AscendFrom(sizeKey{need, 0}, func(k sizeKey, _ struct{}) bool {
		first := (k.start + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
		if first+need <= k.start+k.length {
			kk := k
			found = &kk
			return false
		}
		return true
	})
	if found == nil {
		return Extent{}, false
	}
	k := *found
	first := (k.start + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
	p.remove(k.start, k.length)
	if first > k.start {
		p.insert(k.start, first-k.start)
	}
	if first+need < k.start+k.length {
		p.insert(first+need, k.start+k.length-(first+need))
	}
	return Extent{Start: first, Len: need}, true
}

// TakeNextFit carves `need` blocks from the first adequate extent at or
// after block `from`, wrapping around once — the stream-allocation
// behaviour of aged contiguity-first allocators (successive allocations
// march across the partition, interleaving unrelated files: the
// fragmentation mechanism behind Figure 3's baseline curves).
func (p *Pool) TakeNextFit(from, need int64) (Extent, bool) {
	var hit *Extent
	scan := func(lo int64, wrapAt int64) bool {
		p.byStart.AscendFrom(lo, func(s, l int64) bool {
			if wrapAt >= 0 && s >= wrapAt {
				return false
			}
			if l >= need {
				hit = &Extent{Start: s, Len: l}
				return false
			}
			return true
		})
		return hit != nil
	}
	if !scan(from, -1) && !scan(0, from) {
		return Extent{}, false
	}
	p.remove(hit.Start, hit.Len)
	if hit.Len > need {
		p.insert(hit.Start+need, hit.Len-need)
	}
	return Extent{Start: hit.Start, Len: need}, true
}

// TakeAlignedInRange carves `need` blocks starting at a hugepage-aligned
// boundary within [lo, hi) — the locality-bounded alignment attempt of
// mballoc-style allocators, which search only a few block groups around
// the goal. This is why aged ext4-DAX "ends up using only 3k aligned
// extents" of the 12k available (§2.5): availability outside the searched
// window doesn't help.
func (p *Pool) TakeAlignedInRange(lo, hi, need int64) (Extent, bool) {
	var found *Extent
	start := lo
	if fs, _, ok := p.byStart.Floor(lo); ok {
		start = fs
	}
	p.byStart.AscendFrom(start, func(s, l int64) bool {
		if s >= hi {
			return false
		}
		first := s
		if first < lo {
			first = lo
		}
		first = (first + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
		if first < hi && first+need <= s+l {
			found = &Extent{Start: s, Len: l}
			return false
		}
		return true
	})
	if found == nil {
		return Extent{}, false
	}
	s, l := found.Start, found.Len
	first := s
	if first < lo {
		first = lo
	}
	first = (first + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
	p.remove(s, l)
	if first > s {
		p.insert(s, first-s)
	}
	if first+need < s+l {
		p.insert(first+need, s+l-(first+need))
	}
	return Extent{Start: first, Len: need}, true
}

// Carve removes [start, start+length) from the pool wherever it overlaps
// free extents (used-state reconstruction).
func (p *Pool) Carve(start, length int64) {
	end := start + length
	from := start
	if fs, _, ok := p.byStart.Floor(start); ok {
		from = fs
	}
	type cut struct{ s, l int64 }
	var cuts []cut
	p.byStart.AscendFrom(from, func(hs, hl int64) bool {
		if hs >= end {
			return false
		}
		if hs+hl > start {
			cuts = append(cuts, cut{hs, hl})
		}
		return true
	})
	for _, c := range cuts {
		p.remove(c.s, c.l)
		if c.s < start {
			p.insert(c.s, start-c.s)
		}
		if c.s+c.l > end {
			p.insert(end, c.s+c.l-end)
		}
	}
}

// Extents snapshots the pool's free extents in address order.
func (p *Pool) Extents() []Extent {
	out := make([]Extent, 0, p.byStart.Len())
	p.byStart.Ascend(func(s, l int64) bool {
		out = append(out, Extent{Start: s, Len: l})
		return true
	})
	return out
}
