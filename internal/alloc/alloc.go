// Package alloc holds the extent types and free-space analysis helpers
// shared by every file system in the reproduction.
//
// All allocators in this repository work in 4KiB blocks. A "hugepage
// extent" is 512 consecutive blocks starting at a 512-block-aligned offset;
// whether a file system preserves such extents as it ages is the paper's
// central question (Figure 3).
package alloc

import "sort"

const (
	// BlockSize is the file-system block size in bytes.
	BlockSize = 4096
	// BlocksPerHuge is the number of blocks in one 2MiB hugepage extent.
	BlocksPerHuge = 512
	// HugeBytes is the hugepage size in bytes.
	HugeBytes = BlockSize * BlocksPerHuge
)

// Extent is a contiguous run of blocks [Start, Start+Len).
type Extent struct {
	Start int64 // block number
	Len   int64 // in blocks
}

// End returns the first block after the extent.
func (e Extent) End() int64 { return e.Start + e.Len }

// Bytes returns the extent length in bytes.
func (e Extent) Bytes() int64 { return e.Len * BlockSize }

// StartByte returns the extent's first byte address.
func (e Extent) StartByte() int64 { return e.Start * BlockSize }

// IsAligned reports whether the extent starts on a hugepage boundary and
// covers at least one full hugepage.
func (e Extent) IsAligned() bool {
	return e.Start%BlocksPerHuge == 0 && e.Len >= BlocksPerHuge
}

// AlignedRegions counts the 2MiB-aligned, physically contiguous, fully free
// hugepage regions inside the given free extents — the quantity Figure 3
// plots. Extents need not be sorted or disjoint-merged; they must not
// overlap.
func AlignedRegions(free []Extent) int64 {
	if len(free) == 0 {
		return 0
	}
	sorted := make([]Extent, len(free))
	copy(sorted, free)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var count int64
	var curStart, curEnd int64 = -1, -1
	flush := func() {
		if curStart < 0 {
			return
		}
		first := (curStart + BlocksPerHuge - 1) / BlocksPerHuge * BlocksPerHuge
		for b := first; b+BlocksPerHuge <= curEnd; b += BlocksPerHuge {
			count++
		}
	}
	for _, e := range sorted {
		if e.Len <= 0 {
			continue
		}
		if curStart >= 0 && e.Start == curEnd {
			curEnd = e.End()
			continue
		}
		flush()
		curStart, curEnd = e.Start, e.End()
	}
	flush()
	return count
}

// TotalBlocks sums the lengths of the extents.
func TotalBlocks(extents []Extent) int64 {
	var n int64
	for _, e := range extents {
		n += e.Len
	}
	return n
}

// AlignedFreeFraction returns the fraction of free space that lies inside
// aligned+contiguous hugepage regions (0 when no space is free).
func AlignedFreeFraction(free []Extent) float64 {
	total := TotalBlocks(free)
	if total == 0 {
		return 0
	}
	return float64(AlignedRegions(free)*BlocksPerHuge) / float64(total)
}

// Merge coalesces adjacent/overlapping extents and returns a sorted,
// disjoint list.
func Merge(extents []Extent) []Extent {
	if len(extents) == 0 {
		return nil
	}
	s := make([]Extent, 0, len(extents))
	for _, e := range extents {
		if e.Len > 0 {
			s = append(s, e)
		}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	out := s[:0]
	for _, e := range s {
		if len(out) > 0 && e.Start <= out[len(out)-1].End() {
			last := &out[len(out)-1]
			if e.End() > last.End() {
				last.Len = e.End() - last.Start
			}
			continue
		}
		out = append(out, e)
	}
	return out
}
