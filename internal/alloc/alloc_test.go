package alloc

import (
	"testing"
	"testing/quick"
)

func TestExtentBasics(t *testing.T) {
	e := Extent{Start: 512, Len: 512}
	if !e.IsAligned() {
		t.Fatal("512-block extent at 512 should be aligned")
	}
	if e.End() != 1024 || e.Bytes() != 2<<20 || e.StartByte() != 2<<20 {
		t.Fatal("extent arithmetic wrong")
	}
	if (Extent{Start: 1, Len: 512}).IsAligned() {
		t.Fatal("unaligned start reported aligned")
	}
	if (Extent{Start: 0, Len: 511}).IsAligned() {
		t.Fatal("short extent reported aligned")
	}
}

func TestAlignedRegions(t *testing.T) {
	cases := []struct {
		name string
		free []Extent
		want int64
	}{
		{"empty", nil, 0},
		{"one aligned", []Extent{{0, 512}}, 1},
		{"two contiguous", []Extent{{0, 1024}}, 2},
		{"adjacent extents merge", []Extent{{0, 256}, {256, 256}}, 1},
		{"offset by one block", []Extent{{1, 512}}, 0},
		{"spanning a boundary", []Extent{{256, 768}}, 1}, // covers [512,1024)
		{"fragmented", []Extent{{0, 100}, {200, 100}, {400, 100}}, 0},
		{"unsorted input", []Extent{{1024, 512}, {0, 512}}, 2},
		{"gap between aligned", []Extent{{0, 512}, {1024, 512}}, 2},
	}
	for _, c := range cases {
		if got := AlignedRegions(c.free); got != c.want {
			t.Errorf("%s: AlignedRegions = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestAlignedFreeFraction(t *testing.T) {
	if f := AlignedFreeFraction(nil); f != 0 {
		t.Fatal("empty fraction nonzero")
	}
	// 512 of 1024 free blocks in aligned regions.
	free := []Extent{{0, 512}, {10000, 512}} // 10000 not aligned (10000%512=272)
	if f := AlignedFreeFraction(free); f != 0.5 {
		t.Fatalf("fraction = %f, want 0.5", f)
	}
}

func TestMerge(t *testing.T) {
	in := []Extent{{10, 5}, {0, 10}, {20, 5}, {15, 5}, {30, 0}}
	out := Merge(in)
	if len(out) != 1 || out[0].Start != 0 || out[0].Len != 25 {
		t.Fatalf("merge = %+v", out)
	}
}

func TestMergeProperty(t *testing.T) {
	// Property: Merge output is sorted, disjoint, covers the same blocks.
	f := func(starts []uint16, lens []uint8) bool {
		n := len(starts)
		if len(lens) < n {
			n = len(lens)
		}
		var in []Extent
		covered := make(map[int64]bool)
		for i := 0; i < n; i++ {
			e := Extent{Start: int64(starts[i]), Len: int64(lens[i] % 32)}
			in = append(in, e)
			for b := e.Start; b < e.End(); b++ {
				covered[b] = true
			}
		}
		out := Merge(in)
		var outCovered int64
		for i, e := range out {
			if e.Len <= 0 {
				return false
			}
			if i > 0 && out[i-1].End() >= e.Start {
				return false // not disjoint/sorted with gap
			}
			for b := e.Start; b < e.End(); b++ {
				if !covered[b] {
					return false
				}
			}
			outCovered += e.Len
		}
		return outCovered == int64(len(covered))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignedRegionsProperty(t *testing.T) {
	// Property: region count equals brute-force count over the block bitmap.
	f := func(starts []uint16, lens []uint8) bool {
		n := len(starts)
		if len(lens) < n {
			n = len(lens)
		}
		var in []Extent
		const space = 1 << 16
		bitmap := make([]bool, space+4096)
		for i := 0; i < n; i++ {
			e := Extent{Start: int64(starts[i]), Len: int64(lens[i])}
			in = append(in, e)
			for b := e.Start; b < e.End(); b++ {
				bitmap[b] = true
			}
		}
		// AlignedRegions requires non-overlapping input; merge first.
		merged := Merge(in)
		var brute int64
		for b := int64(0); b+BlocksPerHuge <= int64(len(bitmap)); b += BlocksPerHuge {
			all := true
			for i := int64(0); i < BlocksPerHuge; i++ {
				if !bitmap[b+i] {
					all = false
					break
				}
			}
			if all {
				brute++
			}
		}
		return AlignedRegions(merged) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
