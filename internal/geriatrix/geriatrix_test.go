package geriatrix

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/ext4dax"
	"repro/internal/nova"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

func TestAgrawalProfileShape(t *testing.T) {
	p := Agrawal()
	r := sim.NewRand(1)
	var totalBytes, largeBytes int64
	var largeCount, n int64
	for i := 0; i < 200000; i++ {
		s := p.Sample(r)
		if s <= 0 {
			t.Fatalf("non-positive size %d", s)
		}
		totalBytes += s
		if s >= 2<<20 {
			largeBytes += s
			largeCount++
		}
		n++
	}
	largeFrac := float64(largeBytes) / float64(totalBytes)
	// §5.1: "56% of the total capacity is occupied by large files".
	if largeFrac < 0.45 || largeFrac > 0.67 {
		t.Fatalf("large-file byte share = %.2f, want ≈0.56", largeFrac)
	}
	if float64(largeCount)/float64(n) > 0.10 {
		t.Fatalf("too many large files: %.3f", float64(largeCount)/float64(n))
	}
}

func TestWangHPCProfileHeavierTail(t *testing.T) {
	r := sim.NewRand(2)
	hpc, agr := WangHPC(), Agrawal()
	var hpcBytes, agrBytes int64
	for i := 0; i < 50000; i++ {
		hpcBytes += hpc.Sample(r)
		agrBytes += agr.Sample(r)
	}
	if hpcBytes <= agrBytes {
		t.Fatalf("HPC profile should average larger files: hpc=%d agrawal=%d", hpcBytes, agrBytes)
	}
}

func TestAgingReachesTarget(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(512 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	ager := New(fs, Config{TargetUtil: 0.6, ChurnFactor: 0.5, Seed: 3})
	st, err := ager.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalUtil < 0.55 || st.FinalUtil > 0.70 {
		t.Fatalf("final util = %.2f, want ≈0.6", st.FinalUtil)
	}
	if st.Deleted == 0 {
		t.Fatal("churn phase deleted nothing")
	}
	if st.BytesWritten < int64(0.5*float64(512<<20)) {
		t.Fatalf("churn volume too small: %d", st.BytesWritten)
	}
	if st.LiveFiles == 0 || len(ager.LiveFiles()) != st.LiveFiles {
		t.Fatal("live-file bookkeeping inconsistent")
	}
}

// TestAgingFragmentsBaselinesMoreThanWineFS is the repository's core
// qualitative claim (Figure 3): after identical aging, WineFS retains far
// more aligned free 2MiB regions than NOVA and ext4-DAX.
func TestAgingFragmentsBaselinesMoreThanWineFS(t *testing.T) {
	if testing.Short() {
		t.Skip("aging run")
	}
	frac := map[string]float64{}
	for _, name := range []string{"WineFS", "ext4-DAX", "NOVA"} {
		ctx := sim.NewCtx(1, 0)
		dev := pmem.New(1 << 30)
		var fs vfs.FS
		var err error
		switch name {
		case "WineFS":
			fs, err = winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
		case "ext4-DAX":
			fs = ext4dax.New(dev)
		case "NOVA":
			fs = nova.New(dev, nova.Options{CPUs: 4})
		}
		if err != nil {
			t.Fatal(err)
		}
		ager := New(fs, Config{TargetUtil: 0.7, ChurnFactor: 2, Seed: 11})
		if _, err := ager.Run(ctx); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		frac[name] = alloc.AlignedFreeFraction(fs.FreeExtents())
		t.Logf("%s: aligned free fraction at 70%% util = %.3f", name, frac[name])
	}
	if frac["WineFS"] <= frac["NOVA"] || frac["WineFS"] <= frac["ext4-DAX"] {
		t.Fatalf("WineFS should retain the most aligned free space: %v", frac)
	}
	// §2.3: "at about 70% utilization, NOVA had close to zero 2MB extents".
	if frac["NOVA"] > 0.5 {
		t.Fatalf("NOVA insufficiently fragmented: %.3f", frac["NOVA"])
	}
	if frac["WineFS"] < 0.6 {
		t.Fatalf("WineFS lost too many aligned regions: %.3f", frac["WineFS"])
	}
}
