// Package geriatrix reimplements the aging methodology the paper uses
// (Kadekodi et al., ATC'18): drive a file system through far more
// create/delete churn than its capacity, following a realistic file-size
// profile, until it reaches a target utilisation in a naturally fragmented
// state. Fragmentation is never injected — it emerges from each file
// system's own allocation policy, which is exactly what Figures 1, 3 and 7
// measure.
//
// Two profiles are provided, matching §5.1 and §4:
//
//   - Agrawal: the widely cited desktop profile — a mix of small (<2MiB)
//     and large (>=2MiB) files with 56% of capacity in large files;
//   - WangHPC: Wang's HPC-site profile with a heavier large-file tail,
//     which fragments contiguity-first allocators even faster.
//
// Sizes are scaled: the paper ages a 500GiB partition with 165TiB of
// writes; we age GiB-scale partitions with proportional churn.
package geriatrix

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Profile is a file-size distribution.
type Profile struct {
	Name string
	// Sample draws one file size in bytes.
	Sample func(r *sim.Rand) int64
}

// Agrawal returns the paper's default profile: 56% of bytes in large
// (>=2MiB) files, the rest in small files drawn from a skewed distribution.
func Agrawal() Profile {
	return Profile{
		Name: "agrawal",
		Sample: func(r *sim.Rand) int64 {
			// ~3.1% of files are large; with these magnitudes large files
			// carry ≈56% of total bytes (validated in tests).
			if r.Float64() < 0.031 {
				// Large: 2–10 MiB.
				return (2 + r.Int63n(9)) << 20
			}
			// Small: log-uniform 2KiB–512KiB.
			exp := 11 + r.Intn(9) // 2^11 .. 2^19
			base := int64(1) << exp
			return base + r.Int63n(base)
		},
	}
}

// WangHPC returns the HPC profile from §4: fewer, much larger files plus
// many tiny ones, stressing alignment preservation harder.
func WangHPC() Profile {
	return Profile{
		Name: "wang-hpc",
		Sample: func(r *sim.Rand) int64 {
			v := r.Float64()
			switch {
			case v < 0.10:
				// Checkpoint-style large files: 4–32 MiB.
				return (4 + r.Int63n(29)) << 20
			case v < 0.35:
				// Mid-size: 64KiB–2MiB.
				return (64 + r.Int63n(1985)) << 10
			default:
				// Tiny metadata/config files.
				return (1 + r.Int63n(32)) << 10
			}
		},
	}
}

// Config controls an aging run.
type Config struct {
	// TargetUtil is the utilisation to age to, in [0, 1).
	TargetUtil float64
	// ChurnFactor is how many multiples of the partition capacity to write
	// as create/delete churn after the fill phase (the paper's 165TiB on
	// 500GiB ≈ 330×; scaled runs default to 2–4×).
	ChurnFactor float64
	// Profile is the file-size distribution (default Agrawal).
	Profile Profile
	// Seed fixes the random stream.
	Seed uint64
	// Dirs is the number of directories files are spread over (default 16).
	Dirs int
}

// Stats reports what an aging run did.
type Stats struct {
	Created      int64
	Deleted      int64
	BytesWritten int64
	FinalUtil    float64
	LiveFiles    int
}

// Ager ages one file system instance and tracks its live file set so
// utilisation can be driven up and down.
type Ager struct {
	fs   vfs.FS
	cfg  Config
	rng  *sim.Rand
	next int64
	live []agedFile
	st   Stats
}

type agedFile struct {
	path string
	size int64
}

// New prepares an ager for fs.
func New(fs vfs.FS, cfg Config) *Ager {
	if cfg.Profile.Sample == nil {
		cfg.Profile = Agrawal()
	}
	if cfg.Dirs <= 0 {
		cfg.Dirs = 16
	}
	if cfg.ChurnFactor == 0 {
		cfg.ChurnFactor = 2
	}
	return &Ager{fs: fs, cfg: cfg, rng: sim.NewRand(cfg.Seed + 0x9E3779B9)}
}

// Stats returns the run's statistics so far.
func (a *Ager) Stats() Stats { return a.st }

// LiveFiles returns the paths of currently live aged files.
func (a *Ager) LiveFiles() []string {
	out := make([]string, len(a.live))
	for i, f := range a.live {
		out[i] = f.path
	}
	return out
}

func (a *Ager) util(ctx *sim.Ctx) float64 {
	st := a.fs.StatFS(ctx)
	if st.TotalBlocks == 0 {
		return 1
	}
	return 1 - float64(st.FreeBlocks)/float64(st.TotalBlocks)
}

// createOne makes one profile-sized file via fallocate (aging exercises
// the allocator; file contents are irrelevant).
func (a *Ager) createOne(ctx *sim.Ctx) error {
	size := a.cfg.Profile.Sample(a.rng)
	dir := fmt.Sprintf("/aged%02d", a.next%int64(a.cfg.Dirs))
	path := fmt.Sprintf("%s/f%08d", dir, a.next)
	a.next++
	f, err := a.fs.Create(ctx, path)
	if err != nil {
		return err
	}
	if err := f.Fallocate(ctx, 0, size); err != nil {
		a.fs.Unlink(ctx, path)
		return err
	}
	f.Close(ctx)
	a.live = append(a.live, agedFile{path, size})
	a.st.Created++
	a.st.BytesWritten += size
	return nil
}

// deleteOne removes a uniformly random live file.
func (a *Ager) deleteOne(ctx *sim.Ctx) error {
	if len(a.live) == 0 {
		return nil
	}
	i := a.rng.Intn(len(a.live))
	f := a.live[i]
	a.live[i] = a.live[len(a.live)-1]
	a.live = a.live[:len(a.live)-1]
	if err := a.fs.Unlink(ctx, f.path); err != nil {
		return err
	}
	a.st.Deleted++
	return nil
}

// Run executes the full aging protocol: make directories, fill to the
// target utilisation, then churn creates+deletes (keeping utilisation
// around the target) until ChurnFactor × capacity has been written.
func (a *Ager) Run(ctx *sim.Ctx) (Stats, error) {
	for d := 0; d < a.cfg.Dirs; d++ {
		if err := a.fs.Mkdir(ctx, fmt.Sprintf("/aged%02d", d)); err != nil && err != vfs.ErrExist {
			return a.st, err
		}
	}
	// Fill phase.
	for a.util(ctx) < a.cfg.TargetUtil {
		if err := a.createOne(ctx); err != nil {
			if err == vfs.ErrNoSpace {
				break
			}
			return a.st, err
		}
	}
	// Churn phase.
	st := a.fs.StatFS(ctx)
	capacity := st.TotalBlocks * 4096
	budget := int64(a.cfg.ChurnFactor * float64(capacity))
	start := a.st.BytesWritten
	for a.st.BytesWritten-start < budget {
		if a.util(ctx) > a.cfg.TargetUtil {
			if len(a.live) == 0 {
				// Nothing of ours left to delete (the utilisation is held
				// up by files this ager doesn't own): churn cannot proceed.
				break
			}
			if err := a.deleteOne(ctx); err != nil {
				return a.st, err
			}
			continue
		}
		if err := a.createOne(ctx); err != nil {
			if err == vfs.ErrNoSpace {
				// Delete a couple of files and retry.
				for k := 0; k < 2 && len(a.live) > 0; k++ {
					if derr := a.deleteOne(ctx); derr != nil {
						return a.st, derr
					}
				}
				continue
			}
			return a.st, err
		}
	}
	a.st.FinalUtil = a.util(ctx)
	a.st.LiveFiles = len(a.live)
	return a.st, nil
}

// RaiseUtil ages further to a higher utilisation with light churn —
// Figure 1 and Figure 3 sweep utilisation upward through this.
func (a *Ager) RaiseUtil(ctx *sim.Ctx, target float64) error {
	for a.util(ctx) < target {
		if err := a.createOne(ctx); err != nil {
			if err == vfs.ErrNoSpace {
				return nil
			}
			return err
		}
		// A delete every few creates keeps churning the free space.
		if a.st.Created%5 == 0 && len(a.live) > 3 {
			if err := a.deleteOne(ctx); err != nil {
				return err
			}
			// Replace the deleted capacity immediately.
			if err := a.createOne(ctx); err != nil && err != vfs.ErrNoSpace {
				return err
			}
		}
	}
	return nil
}
