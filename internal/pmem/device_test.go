package pmem

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := New(16 << 20)
	data := []byte("hello persistent world")
	d.WriteAt(data, 12345)
	got := make([]byte, len(data))
	d.ReadAt(got, 12345)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip: got %q", got)
	}
}

func TestUnbackedReadsZero(t *testing.T) {
	d := New(16 << 20)
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = 0xff
	}
	d.ReadAt(buf, 4<<20)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("unbacked byte %d = %x", i, b)
		}
	}
}

func TestCrossChunkWrite(t *testing.T) {
	d := New(16 << 20)
	data := make([]byte, 3*ChunkSize/2)
	for i := range data {
		data[i] = byte(i % 251)
	}
	off := int64(ChunkSize - 1000) // straddles a chunk boundary
	d.WriteAt(data, off)
	got := make([]byte, len(data))
	d.ReadAt(got, off)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-chunk write corrupted data")
	}
}

func TestZeroRangeAndDiscard(t *testing.T) {
	d := New(16 << 20)
	data := make([]byte, ChunkSize*2)
	for i := range data {
		data[i] = 0xab
	}
	d.WriteAt(data, 0)
	d.ZeroRange(100, 50)
	got := make([]byte, 200)
	d.ReadAt(got, 0)
	for i := 0; i < 100; i++ {
		if got[i] != 0xab {
			t.Fatalf("byte %d clobbered", i)
		}
	}
	for i := 100; i < 150; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d not zeroed", i)
		}
	}
	before := d.HostBytes()
	d.DiscardRange(0, ChunkSize)
	if d.HostBytes() >= before {
		t.Fatal("discard did not release host memory")
	}
}

func TestCostCharging(t *testing.T) {
	d := New(16 << 20)
	ctx := sim.NewCtx(1, 0)
	small := make([]byte, 64)
	d.Write(ctx, small, 0)
	if ctx.Now() < d.Model().WriteLat64 {
		t.Fatalf("small write cost %d < latency %d", ctx.Now(), d.Model().WriteLat64)
	}
	if ctx.Counters.PMWriteBytes != 64 {
		t.Fatalf("PMWriteBytes = %d", ctx.Counters.PMWriteBytes)
	}
	t0 := ctx.Now()
	big := make([]byte, 1<<20)
	d.Write(ctx, big, 0)
	perByte := float64(ctx.Now()-t0) / float64(1<<20)
	if perByte < d.Model().CopyWriteNSPerByte {
		t.Fatalf("bulk write cost %f ns/B below copy cost", perByte)
	}
	// Reads should be cheaper per byte than writes (higher bandwidth).
	r0 := ctx.Now()
	d.Read(ctx, big, 0)
	readPerByte := float64(ctx.Now()-r0) / float64(1<<20)
	if readPerByte >= perByte {
		t.Fatalf("read %f ns/B not cheaper than write %f ns/B", readPerByte, perByte)
	}
}

func TestFlushFenceCosts(t *testing.T) {
	d := New(16 << 20)
	ctx := sim.NewCtx(1, 0)
	d.Flush(ctx, 0, 64)
	if ctx.Now() != d.Model().FlushLat {
		t.Fatalf("single-line flush = %d, want %d", ctx.Now(), d.Model().FlushLat)
	}
	before := ctx.Now()
	d.Fence(ctx)
	if ctx.Now()-before != d.Model().FenceLat {
		t.Fatal("fence cost wrong")
	}
}

func TestNUMAMapping(t *testing.T) {
	d := NewWithConfig(Config{Size: 64 << 20, Nodes: 2, CPUs: 8})
	if d.NodeOf(0) != 0 || d.NodeOf(d.Size()-1) != 1 {
		t.Fatal("NodeOf striping wrong")
	}
	if d.NodeOfCPU(0) != 0 || d.NodeOfCPU(7) != 1 {
		t.Fatal("NodeOfCPU mapping wrong")
	}
	// Remote access should cost more than local.
	local := sim.NewCtx(1, 0)
	remote := sim.NewCtx(2, 7)
	buf := make([]byte, 64)
	d.Read(local, buf, 0)
	d.Read(remote, buf, 0)
	if remote.Now() <= local.Now() {
		t.Fatalf("remote read %d not slower than local %d", remote.Now(), local.Now())
	}
}

func TestTraceEpochs(t *testing.T) {
	d := New(16 << 20)
	ctx := sim.NewCtx(1, 0)
	d.StartTrace()
	d.WriteAt([]byte{1}, 0)
	d.WriteAt([]byte{2}, 1)
	d.Fence(ctx)
	d.WriteAt([]byte{3}, 2)
	trace := d.StopTrace()
	if len(trace) != 3 {
		t.Fatalf("trace has %d stores, want 3", len(trace))
	}
	if trace[0].Epoch != 0 || trace[1].Epoch != 0 || trace[2].Epoch != 1 {
		t.Fatalf("epochs = %d,%d,%d", trace[0].Epoch, trace[1].Epoch, trace[2].Epoch)
	}
	// Stores after StopTrace are not recorded.
	d.WriteAt([]byte{4}, 3)
	if tr := d.StopTrace(); tr != nil {
		t.Fatal("trace recorded after stop")
	}
}

func TestSnapshotRestoreApply(t *testing.T) {
	d := New(16 << 20)
	d.WriteAt([]byte("base"), 0)
	img := d.Snapshot()

	d.StartTrace()
	d.WriteAt([]byte("mod1"), 0)
	d.WriteAt([]byte("tail"), 100)
	trace := d.StopTrace()

	// Build a crash state with only the first store applied.
	crash := img.Clone()
	crash.Apply(trace[:1])
	d.Restore(crash)

	got := make([]byte, 4)
	d.ReadAt(got, 0)
	if string(got) != "mod1" {
		t.Fatalf("applied store missing: %q", got)
	}
	d.ReadAt(got, 100)
	if string(got) != "\x00\x00\x00\x00" {
		t.Fatalf("unapplied store present: %q", got)
	}
	// Restoring the original snapshot gets back the base content.
	d.Restore(img)
	d.ReadAt(got, 0)
	if string(got) != "base" {
		t.Fatalf("snapshot restore: %q", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New(64 << 20)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			buf := make([]byte, 4096)
			for i := range buf {
				buf[i] = byte(g)
			}
			base := int64(g) * (8 << 20)
			for i := 0; i < 100; i++ {
				d.WriteAt(buf, base+int64(i)*4096)
				d.ReadAt(buf, base+int64(i)*4096)
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
