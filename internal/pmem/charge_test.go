package pmem

import (
	"testing"

	"repro/internal/sim"
)

// TestChargeAmountsPerOp locks the exact virtual-time charge of every
// device-level operation under DefaultModel. These numbers ARE the
// simulation's physics: any engine refactor (batching, pooling, fast
// paths) must leave them bit-identical, and any deliberate model change
// must update this table consciously. Derivations mirror the charge
// functions:
//
//	small read/write (≤4 lines):  Lat64 + (lines-1)*Lat64/4
//	bulk read:   ReadLat64  + n*CopyReadNSPerByte  (+ port transfer)
//	bulk write:  WriteLat64 + n*CopyWriteNSPerByte (+ port transfer)
//	flush:       FlushLat + (lines-1)*FlushLat/8
//	fence:       FenceLat
//	zero:        n*ZeroNSPerByte (+ port transfer)
//
// Port transfers book on an uncontended calendar here, so they extend the
// clock by exactly the transfer hold time.
func TestChargeAmountsPerOp(t *testing.T) {
	m := DefaultModel()
	xfer := func(n int64, bw float64) int64 { // transfer hold, uncontended
		return int64(float64(n) / bw * 1e9)
	}
	cases := []struct {
		name string
		op   func(d *Device, ctx *sim.Ctx)
		want int64
	}{
		{"read 1B = one line", func(d *Device, ctx *sim.Ctx) {
			d.Read(ctx, make([]byte, 1), 0)
		}, m.ReadLat64}, // 300
		{"read 64B = one line", func(d *Device, ctx *sim.Ctx) {
			d.Read(ctx, make([]byte, 64), 0)
		}, m.ReadLat64}, // 300
		{"read 256B = four lines", func(d *Device, ctx *sim.Ctx) {
			d.Read(ctx, make([]byte, 256), 0)
		}, m.ReadLat64 + 3*m.ReadLat64/4}, // 525
		{"read 4KiB bulk", func(d *Device, ctx *sim.Ctx) {
			d.Read(ctx, make([]byte, 4096), 0)
		}, m.ReadLat64 + int64(4096*m.CopyReadNSPerByte) + xfer(4096, m.ReadBandwidth)}, // 300+491+409
		{"write 64B = one line", func(d *Device, ctx *sim.Ctx) {
			d.Write(ctx, make([]byte, 64), 0)
		}, m.WriteLat64}, // 100
		{"write 256B = four lines", func(d *Device, ctx *sim.Ctx) {
			d.Write(ctx, make([]byte, 256), 0)
		}, m.WriteLat64 + 3*m.WriteLat64/4}, // 175
		{"write 4KiB bulk", func(d *Device, ctx *sim.Ctx) {
			d.Write(ctx, make([]byte, 4096), 0)
		}, m.WriteLat64 + int64(4096*m.CopyWriteNSPerByte) + xfer(4096, m.WriteBandwidth)}, // 100+1024+1024
		{"flush one line", func(d *Device, ctx *sim.Ctx) {
			d.Flush(ctx, 0, 64)
		}, m.FlushLat}, // 40
		{"flush 4KiB = 64 lines", func(d *Device, ctx *sim.Ctx) {
			d.Flush(ctx, 0, 4096)
		}, m.FlushLat + 63*m.FlushLat/8}, // 355
		{"flush straddling lines", func(d *Device, ctx *sim.Ctx) {
			d.Flush(ctx, 63, 2) // 2 bytes over a line boundary = 2 lines
		}, m.FlushLat + m.FlushLat/8}, // 45
		{"fence", func(d *Device, ctx *sim.Ctx) {
			d.Fence(ctx)
		}, m.FenceLat}, // 30
		{"zero 4KiB", func(d *Device, ctx *sim.Ctx) {
			d.Zero(ctx, 0, 4096)
		}, int64(4096*m.ZeroNSPerByte) + xfer(4096, m.WriteBandwidth)}, // 819+1024
	}
	for _, tc := range cases {
		d := New(16 << 20)
		ctx := sim.NewCtx(1, 0)
		before := ctx.Now()
		tc.op(d, ctx)
		got := ctx.Now() - before
		if got != tc.want {
			t.Errorf("%s: charged %dns, want %dns", tc.name, got, tc.want)
		}
		d.Release()
	}
}

// TestChargeZeroAndNegativeAreNoOps pins the audit outcome for degenerate
// charges: zero-length operations must not advance the clock, and the
// Advance primitive must ignore negative values (virtual time never runs
// backwards, even if a cost computation underflows).
func TestChargeZeroAndNegativeAreNoOps(t *testing.T) {
	d := New(1 << 20)
	defer d.Release()
	ctx := sim.NewCtx(1, 0)
	d.Read(ctx, nil, 0)
	d.Write(ctx, nil, 0)
	d.Flush(ctx, 0, 0)
	d.Zero(ctx, 0, 0)
	ctx.Advance(-5)
	if ctx.Now() != 0 {
		t.Fatalf("degenerate ops advanced the clock to %d", ctx.Now())
	}
}
