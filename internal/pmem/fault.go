package pmem

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Media faults. Real Optane DIMMs report uncorrectable media errors as
// poisoned cache lines: a load from a poisoned line raises a machine check
// (surfaced to the kernel as -EIO through the pmem driver's badblocks
// machinery), while a full-line store clears the poison and re-arms the
// line. The simulated device models exactly that:
//
//   - lines can be poisoned explicitly (Poison) or by scripted read rules
//     (FaultPlan.Reads) that trip on the Nth access to a byte range;
//   - the checked read paths (ReadAtChecked / ReadChecked) return a typed
//     *MediaError when any covered line is poisoned — they never return
//     corrupt bytes silently;
//   - WriteAt / ZeroRange clear poison on every line they fully overwrite
//     (partial-line writes leave the line poisoned, as on hardware);
//   - a FaultPlan can also tear stores at a fence epoch: each cache line of
//     every store issued in the chosen epoch is dropped with a seeded
//     probability, modelling the partial persistence of in-flight
//     non-temporal stores at a power cut.
//
// All decisions are deterministic given the plan's seed, so fault
// campaigns are reproducible run-to-run.

// MediaError is an uncorrectable media error: a load touched at least one
// poisoned cache line. Off/Len describe the attempted access, Line the
// first poisoned line (byte address of its start).
type MediaError struct {
	Off  int64
	Len  int64
	Line int64
}

func (e *MediaError) Error() string {
	return fmt.Sprintf("pmem: media error reading [%d,%d): poisoned line at %d", e.Off, e.Off+e.Len, e.Line)
}

// RangeError reports an access outside the device, as an error instead of
// the panic used for direct programmer error.
type RangeError struct {
	Off, Len, Size int64
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("pmem: access [%d,%d) outside device of size %d", e.Off, e.Off+e.Len, e.Size)
}

// ReadRule scripts a media error: the Nth checked read that intersects
// [Start, End) fails. End == 0 means the device end.
type ReadRule struct {
	Start, End int64
	// Nth fails only the Nth matching read (1-based). 0 fails every
	// matching read.
	Nth int
	// Transient errors do not leave the line poisoned (a retry succeeds);
	// persistent ones (the default) poison every line the read touched.
	Transient bool

	hits int
}

// FaultPlan scripts deterministic media faults on a Device. Install with
// Device.SetFaultPlan; a nil plan disables injection (existing poison
// persists until overwritten).
type FaultPlan struct {
	// Seed drives every probabilistic decision (torn-line drops).
	Seed uint64
	// Reads are scripted read failures, checked in order.
	Reads []ReadRule
	// TornFence selects the fence epoch whose stores are torn, counted
	// from plan installation (epoch 0 is the interval up to the first
	// fence). -1 disables tearing.
	TornFence int
	// TornKeep is the probability each cache line of a store in the torn
	// epoch persists (0 drops everything, 1 keeps everything).
	TornKeep float64

	rng   *sim.Rand
	epoch int
}

// faultState is the per-device fault bookkeeping, lazily allocated.
type faultState struct {
	mu     sync.Mutex
	poison map[int64]struct{} // poisoned lines, keyed by line start address
	plan   *FaultPlan

	poisonedReads int64 // checked reads that returned a MediaError
	tornLines     int64 // cache lines dropped by torn-write injection
}

func (d *Device) faults() *faultState {
	d.faultOnce.Do(func() { d.fault = &faultState{poison: make(map[int64]struct{})} })
	return d.fault
}

// SetFaultPlan installs (or, with nil, removes) a fault plan. The torn-
// fence epoch counter restarts at zero.
func (d *Device) SetFaultPlan(p *FaultPlan) {
	f := d.faults()
	f.mu.Lock()
	defer f.mu.Unlock()
	if p != nil {
		p.rng = sim.NewRand(p.Seed)
		p.epoch = 0
	}
	f.plan = p
}

// Poison marks every cache line intersecting [off, off+n) as an
// uncorrectable media error. Checked reads of those lines fail until a
// full-line write clears them.
func (d *Device) Poison(off, n int64) {
	d.checkRange(off, n)
	f := d.faults()
	f.mu.Lock()
	defer f.mu.Unlock()
	for line := off / CacheLine * CacheLine; line < off+n; line += CacheLine {
		f.poison[line] = struct{}{}
	}
}

// ClearPoison removes poison from every line intersecting [off, off+n)
// without changing contents (fsck repair uses it after rewriting metadata).
func (d *Device) ClearPoison(off, n int64) {
	if d.fault == nil {
		return
	}
	f := d.fault
	f.mu.Lock()
	defer f.mu.Unlock()
	for line := off / CacheLine * CacheLine; line < off+n; line += CacheLine {
		delete(f.poison, line)
	}
}

// PoisonedLines returns the start addresses of poisoned lines intersecting
// [off, off+n), in ascending order.
func (d *Device) PoisonedLines(off, n int64) []int64 {
	if d.fault == nil {
		return nil
	}
	f := d.fault
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []int64
	for line := off / CacheLine * CacheLine; line < off+n; line += CacheLine {
		if _, ok := f.poison[line]; ok {
			out = append(out, line)
		}
	}
	return out
}

// FaultStats reports how many checked reads failed and how many store
// lines were torn since the device was created.
func (d *Device) FaultStats() (poisonedReads, tornLines int64) {
	if d.fault == nil {
		return 0, 0
	}
	f := d.fault
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.poisonedReads, f.tornLines
}

// CheckRange reports whether [off, off+n) lies inside the device, as an
// error. File systems use it to validate untrusted on-PM pointers (extent
// records, indirect chains) so corruption surfaces as EIO instead of a
// crash; the panicking checkRange remains for trusted internal accesses.
func (d *Device) CheckRange(off, n int64) error {
	if off < 0 || n < 0 || off+n > d.size {
		return &RangeError{Off: off, Len: n, Size: d.size}
	}
	return nil
}

// checkFaults is the read-side fault gate: it applies scripted read rules,
// then fails if any covered line is poisoned.
func (d *Device) checkFaults(off, n int64) error {
	if d.fault == nil {
		return nil
	}
	f := d.fault
	f.mu.Lock()
	defer f.mu.Unlock()
	if p := f.plan; p != nil {
		for i := range p.Reads {
			r := &p.Reads[i]
			end := r.End
			if end == 0 {
				end = d.size
			}
			if off >= end || off+n <= r.Start {
				continue
			}
			r.hits++
			if r.Nth != 0 && r.hits != r.Nth {
				continue
			}
			if !r.Transient {
				for line := off / CacheLine * CacheLine; line < off+n; line += CacheLine {
					f.poison[line] = struct{}{}
				}
			}
			f.poisonedReads++
			return &MediaError{Off: off, Len: n, Line: off / CacheLine * CacheLine}
		}
	}
	if len(f.poison) > 0 {
		for line := off / CacheLine * CacheLine; line < off+n; line += CacheLine {
			if _, ok := f.poison[line]; ok {
				f.poisonedReads++
				return &MediaError{Off: off, Len: n, Line: line}
			}
		}
	}
	return nil
}

// ReadAtChecked is ReadAt with the media-fault gate: it fills buf only
// when every covered line is healthy, and returns a *MediaError (or
// *RangeError) otherwise. buf contents are unspecified on error.
func (d *Device) ReadAtChecked(buf []byte, off int64) error {
	if err := d.CheckRange(off, int64(len(buf))); err != nil {
		return err
	}
	if err := d.checkFaults(off, int64(len(buf))); err != nil {
		return err
	}
	d.ReadAt(buf, off)
	return nil
}

// ReadChecked is Read with the media-fault gate. Virtual time is charged
// even on failure: the load was issued and machine-checked.
func (d *Device) ReadChecked(ctx *sim.Ctx, buf []byte, off int64) error {
	if err := d.CheckRange(off, int64(len(buf))); err != nil {
		return err
	}
	err := d.checkFaults(off, int64(len(buf)))
	d.chargeRead(ctx, off, int64(len(buf)))
	if err != nil {
		return err
	}
	d.ReadAt(buf, off)
	return nil
}

// clearPoisonCovered removes poison from lines fully inside [off, off+n):
// a full-line store rewrites the line and re-arms it, while a partial
// write leaves the rest of the line as garbage, so the poison stays.
func (d *Device) clearPoisonCovered(off, n int64) {
	if d.fault == nil {
		return
	}
	f := d.fault
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.poison) == 0 {
		return
	}
	first := (off + CacheLine - 1) / CacheLine * CacheLine
	last := (off + n) / CacheLine * CacheLine
	for line := first; line < last; line += CacheLine {
		delete(f.poison, line)
	}
}

// tearStore applies torn-write injection to a store of data at off:
// it returns the (possibly shortened) segments that actually persist.
// Caller must hold no fault locks.
func (d *Device) tearStore(off int64, data []byte) []Store {
	if d.fault == nil {
		return []Store{{Off: off, Data: data}}
	}
	f := d.fault
	f.mu.Lock()
	p := f.plan
	if p == nil || p.TornFence < 0 || p.epoch != p.TornFence {
		f.mu.Unlock()
		return []Store{{Off: off, Data: data}}
	}
	// Decide per cache line, deterministically from the plan's seed.
	var kept []Store
	var cur *Store
	pos := off
	rest := data
	for len(rest) > 0 {
		lineEnd := pos/CacheLine*CacheLine + CacheLine
		n := lineEnd - pos
		if n > int64(len(rest)) {
			n = int64(len(rest))
		}
		if p.rng.Float64() < p.TornKeep {
			if cur != nil && cur.Off+int64(len(cur.Data)) == pos {
				cur.Data = append(cur.Data, rest[:n]...)
			} else {
				kept = append(kept, Store{Off: pos, Data: append([]byte(nil), rest[:n]...)})
				cur = &kept[len(kept)-1]
			}
		} else {
			f.tornLines++
			cur = nil
		}
		pos += n
		rest = rest[n:]
	}
	f.mu.Unlock()
	return kept
}

// advancePlanEpoch moves the torn-fence epoch forward at each fence.
func (d *Device) advancePlanEpoch() {
	if d.fault == nil {
		return
	}
	f := d.fault
	f.mu.Lock()
	if f.plan != nil {
		f.plan.epoch++
	}
	f.mu.Unlock()
}

// TearStores rewrites a recorded crash trace so that each cache line of
// every store in epoch tornEpoch persists with probability keep (decided
// by rng); stores in other epochs pass through unchanged. The crash
// harness applies the result to a snapshot to build torn-write crash
// images.
func TearStores(stores []Store, tornEpoch int, keep float64, rng *sim.Rand) []Store {
	var out []Store
	for _, s := range stores {
		if s.Epoch != tornEpoch {
			out = append(out, s)
			continue
		}
		pos := s.Off
		rest := s.Data
		var cur *Store
		for len(rest) > 0 {
			lineEnd := pos/CacheLine*CacheLine + CacheLine
			n := lineEnd - pos
			if n > int64(len(rest)) {
				n = int64(len(rest))
			}
			if rng.Float64() < keep {
				if cur != nil && cur.Off+int64(len(cur.Data)) == pos {
					cur.Data = append(cur.Data, rest[:n]...)
				} else {
					out = append(out, Store{Off: pos, Data: append([]byte(nil), rest[:n]...), Epoch: s.Epoch})
					cur = &out[len(out)-1]
				}
			} else {
				cur = nil
			}
			pos += n
			rest = rest[n:]
		}
	}
	return out
}
